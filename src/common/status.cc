#include "common/status.h"

namespace caqp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kShardUnavailable:
      return "ShardUnavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace caqp
