// Deterministic pseudo-random number generation for data generators,
// workload generators and tests. A thin wrapper over std::mt19937_64 with
// convenience draws; every generator in CAQP takes an explicit seed so that
// experiments are exactly reproducible.

#ifndef CAQP_COMMON_RNG_H_
#define CAQP_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "common/check.h"

namespace caqp {

/// Seeded random source. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CAQP_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Derives an independent child RNG; used to give each mote / attribute its
  /// own stream so adding one does not perturb the others.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace caqp

#endif  // CAQP_COMMON_RNG_H_
