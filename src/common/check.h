// Internal invariant checking. CAQP follows the Google C++ style: the library
// does not throw exceptions for programmer errors; it aborts with a message.
// CHECK macros are always on (they guard planner invariants whose violation
// would silently produce wrong plans); DCHECK compiles out in NDEBUG builds.

#ifndef CAQP_COMMON_CHECK_H_
#define CAQP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace caqp {
namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace caqp

#define CAQP_CHECK(expr)                                   \
  do {                                                     \
    if (!(expr)) {                                         \
      ::caqp::internal::CheckFail(__FILE__, __LINE__, #expr); \
    }                                                      \
  } while (0)

#define CAQP_CHECK_OP(a, op, b) CAQP_CHECK((a)op(b))
#define CAQP_CHECK_EQ(a, b) CAQP_CHECK_OP(a, ==, b)
#define CAQP_CHECK_NE(a, b) CAQP_CHECK_OP(a, !=, b)
#define CAQP_CHECK_LT(a, b) CAQP_CHECK_OP(a, <, b)
#define CAQP_CHECK_LE(a, b) CAQP_CHECK_OP(a, <=, b)
#define CAQP_CHECK_GT(a, b) CAQP_CHECK_OP(a, >, b)
#define CAQP_CHECK_GE(a, b) CAQP_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define CAQP_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define CAQP_DCHECK(expr) CAQP_CHECK(expr)
#endif

#endif  // CAQP_COMMON_CHECK_H_
