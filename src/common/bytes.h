// Byte-oriented serialization used for plan dissemination (the plan size
// zeta(P) in the paper's Section 2.4 is the length of this encoding).
// Integers use LEB128 varints so that small attribute ids and split values --
// the common case on motes -- cost one byte.

#ifndef CAQP_COMMON_BYTES_H_
#define CAQP_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace caqp {

/// Append-only byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Zig-zag + LEB128 for possibly-negative values.
  void PutSignedVarint(int64_t v);
  /// IEEE-754 double, little-endian.
  void PutDouble(double v);
  /// Length-prefixed string.
  void PutString(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Sequential reader over a byte buffer. All getters return an error Status
/// (never abort) on truncated or malformed input, since plan bytes may arrive
/// over a (simulated) radio.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  Status GetU8(uint8_t* out);
  Status GetVarint(uint64_t* out);
  Status GetSignedVarint(int64_t* out);
  Status GetDouble(double* out);
  Status GetString(std::string* out);

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace caqp

#endif  // CAQP_COMMON_BYTES_H_
