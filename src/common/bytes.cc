#include "common/bytes.h"

#include <cstring>

namespace caqp {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutSignedVarint(int64_t v) {
  // Zig-zag: maps small-magnitude signed values to small unsigned ones.
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint(zz);
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

Status ByteReader::GetU8(uint8_t* out) {
  if (pos_ >= size_) return Status::DataLoss("truncated: u8");
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::DataLoss("truncated: varint");
    if (shift >= 64) return Status::DataLoss("varint too long");
    uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = result;
  return Status::OK();
}

Status ByteReader::GetSignedVarint(int64_t* out) {
  uint64_t zz;
  CAQP_RETURN_IF_ERROR(GetVarint(&zz));
  *out = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status ByteReader::GetDouble(double* out) {
  if (size_ - pos_ < 8) return Status::DataLoss("truncated: double");
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t len;
  CAQP_RETURN_IF_ERROR(GetVarint(&len));
  if (len > remaining()) return Status::DataLoss("truncated: string body");
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

}  // namespace caqp
