// Status / Result: lightweight absl-style error propagation for fallible
// operations (parsing, file I/O, deserialization). Planner-internal logic
// uses CHECK macros instead; Status is reserved for errors a caller can
// legitimately hit with bad external input.

#ifndef CAQP_COMMON_STATUS_H_
#define CAQP_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace caqp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kDataLoss,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  /// A specific executor shard is unreachable/down. Distinct from
  /// kUnavailable (whole-service overload / load shedding) so the dist tier
  /// can degrade one partition without the caller confusing it with
  /// back-pressure; the message carries the shard id.
  kShardUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CAQP_CHECK(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ShardUnavailable(std::string msg) {
    return Status(StatusCode::kShardUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error Status. Dereferencing a non-OK Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    CAQP_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    CAQP_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    CAQP_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    CAQP_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace caqp

/// Propagates a non-OK status out of the enclosing function.
#define CAQP_RETURN_IF_ERROR(expr)       \
  do {                                   \
    ::caqp::Status _st = (expr);         \
    if (!_st.ok()) return _st;           \
  } while (0)

#endif  // CAQP_COMMON_STATUS_H_
