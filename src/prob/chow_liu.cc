#include "prob/chow_liu.h"

#include <algorithm>
#include <cmath>

namespace caqp {

namespace {

/// Smoothed pairwise joint P(X_a, X_b) as a Ka x Kb matrix.
std::vector<std::vector<double>> PairJoint(const Dataset& data, AttrId a,
                                           AttrId b, double alpha) {
  const uint32_t ka = data.schema().domain_size(a);
  const uint32_t kb = data.schema().domain_size(b);
  std::vector<std::vector<double>> joint(ka, std::vector<double>(kb, alpha));
  const auto& ca = data.column(a);
  const auto& cb = data.column(b);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    joint[ca[r]][cb[r]] += 1.0;
  }
  double total = 0.0;
  for (const auto& row : joint) {
    for (double w : row) total += w;
  }
  for (auto& row : joint) {
    for (double& w : row) w /= total;
  }
  return joint;
}

double MutualInformationOf(const std::vector<std::vector<double>>& joint) {
  const size_t ka = joint.size();
  const size_t kb = joint[0].size();
  std::vector<double> pa(ka, 0.0), pb(kb, 0.0);
  for (size_t i = 0; i < ka; ++i) {
    for (size_t j = 0; j < kb; ++j) {
      pa[i] += joint[i][j];
      pb[j] += joint[i][j];
    }
  }
  double mi = 0.0;
  for (size_t i = 0; i < ka; ++i) {
    for (size_t j = 0; j < kb; ++j) {
      const double p = joint[i][j];
      if (p > 0 && pa[i] > 0 && pb[j] > 0) {
        mi += p * std::log(p / (pa[i] * pb[j]));
      }
    }
  }
  return std::max(0.0, mi);
}

}  // namespace

ChowLiuEstimator::ChowLiuEstimator(const Dataset& data, Options opts)
    : schema_(data.schema()), opts_(opts) {
  const size_t n = schema_.num_attributes();
  CAQP_CHECK_GE(n, 1u);
  nodes_.resize(n);

  // Smoothed node marginals.
  for (size_t a = 0; a < n; ++a) {
    const uint32_t k = schema_.domain_size(static_cast<AttrId>(a));
    std::vector<double> m(k, opts_.laplace_alpha);
    for (Value v : data.column(static_cast<AttrId>(a))) m[v] += 1.0;
    double total = 0.0;
    for (double w : m) total += w;
    for (double& w : m) w /= total;
    nodes_[a].marginal = std::move(m);
  }

  // Pairwise mutual information; O(n^2) joints, each one dataset pass.
  std::vector<std::vector<double>> mi(n, std::vector<double>(n, 0.0));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      const double v = MutualInformationOf(
          PairJoint(data, static_cast<AttrId>(a), static_cast<AttrId>(b),
                    opts_.laplace_alpha));
      mi[a][b] = mi[b][a] = v;
    }
  }

  // Prim's algorithm for the maximum spanning tree, rooted at attribute 0.
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, -1.0);
  std::vector<AttrId> best_parent(n, kInvalidAttr);
  in_tree[0] = true;
  topo_order_.push_back(0);
  for (size_t b = 1; b < n; ++b) {
    best[b] = mi[0][b];
    best_parent[b] = 0;
  }
  for (size_t step = 1; step < n; ++step) {
    size_t pick = 0;
    double pick_mi = -1.0;
    for (size_t b = 0; b < n; ++b) {
      if (!in_tree[b] && best[b] > pick_mi) {
        pick_mi = best[b];
        pick = b;
      }
    }
    in_tree[pick] = true;
    nodes_[pick].parent = best_parent[pick];
    nodes_[pick].edge_mi = pick_mi;
    nodes_[best_parent[pick]].children.push_back(static_cast<AttrId>(pick));
    topo_order_.push_back(static_cast<AttrId>(pick));
    for (size_t b = 0; b < n; ++b) {
      if (!in_tree[b] && mi[pick][b] > best[b]) {
        best[b] = mi[pick][b];
        best_parent[b] = static_cast<AttrId>(pick);
      }
    }
  }

  // Conditional tables P(child | parent) from smoothed pairwise joints.
  for (size_t a = 0; a < n; ++a) {
    Node& node = nodes_[a];
    const uint32_t k = schema_.domain_size(static_cast<AttrId>(a));
    if (node.parent == kInvalidAttr) {
      node.cond.assign(1, node.marginal);
      continue;
    }
    const uint32_t kp = schema_.domain_size(node.parent);
    auto joint = PairJoint(data, node.parent, static_cast<AttrId>(a),
                           opts_.laplace_alpha);
    node.cond.assign(kp, std::vector<double>(k, 0.0));
    for (uint32_t pv = 0; pv < kp; ++pv) {
      double rowsum = 0.0;
      for (uint32_t v = 0; v < k; ++v) rowsum += joint[pv][v];
      for (uint32_t v = 0; v < k; ++v) {
        node.cond[pv][v] = rowsum > 0 ? joint[pv][v] / rowsum : 1.0 / k;
      }
    }
  }
}

std::vector<std::vector<double>> ChowLiuEstimator::EvidenceWeights(
    const RangeVec& given) const {
  const size_t n = nodes_.size();
  std::vector<std::vector<double>> w(n);
  // Children before parents: walk topo order backwards.
  for (size_t idx = n; idx-- > 0;) {
    const AttrId a = topo_order_[idx];
    const Node& node = nodes_[a];
    const uint32_t k = schema_.domain_size(a);
    w[a].assign(k, 0.0);
    for (Value v = given[a].lo; v <= given[a].hi; ++v) {
      double prod = 1.0;
      for (AttrId c : node.children) {
        const Node& child = nodes_[c];
        double sum = 0.0;
        for (Value u = given[c].lo; u <= given[c].hi; ++u) {
          sum += child.cond[v][u] * w[c][u];
        }
        prod *= sum;
      }
      w[a][v] = prod;
    }
  }
  return w;
}

Histogram ChowLiuEstimator::Marginal(const RangeVec& given, AttrId attr) {
  CAQP_CHECK(schema_.ValidRanges(given));
  // P(X_attr = v, evidence) = P(v, evidence above attr) * W[attr][v].
  // Computing "evidence above" exactly would need a downward pass; instead we
  // reroot: treat attr as the root of the (undirected) tree and run one
  // upward pass. For simplicity and symmetry we temporarily express the
  // upward pass against the existing rooting using the belief recursion:
  //   P(v, E) = pi(v) * W[attr][v],
  // where pi is obtained by a root-to-attr chain walk.
  const auto w = EvidenceWeights(given);

  // pi[attr][v]: prior-and-upstream-evidence weight. Computed by walking the
  // unique root->attr path, marginalizing intermediate nodes.
  std::vector<AttrId> path;  // attr, parent(attr), ..., root
  for (AttrId a = attr; a != kInvalidAttr; a = nodes_[a].parent) {
    path.push_back(a);
  }
  // Start at the root with its prior restricted by its own evidence and the
  // evidence in subtrees hanging off the path.
  std::vector<double> pi;
  for (size_t i = path.size(); i-- > 0;) {
    const AttrId a = path[i];
    const Node& na = nodes_[a];
    const uint32_t k = schema_.domain_size(a);
    std::vector<double> cur(k, 0.0);
    const AttrId down = (i > 0) ? path[i - 1] : kInvalidAttr;
    for (Value v = given[a].lo; v <= given[a].hi; ++v) {
      double base;
      if (na.parent == kInvalidAttr) {
        base = na.marginal[v];
      } else {
        // Combine with the incoming pi over the parent's values.
        base = 0.0;
        const AttrId p = na.parent;
        for (Value pv = given[p].lo; pv <= given[p].hi; ++pv) {
          base += pi[pv] * na.cond[pv][v];
        }
      }
      // Evidence from child subtrees other than the path continuation.
      double prod = 1.0;
      for (AttrId c : na.children) {
        if (c == down) continue;
        double sum = 0.0;
        for (Value u = given[c].lo; u <= given[c].hi; ++u) {
          sum += nodes_[c].cond[v][u] * w[c][u];
        }
        prod *= sum;
      }
      cur[v] = base * prod;
    }
    pi = std::move(cur);
  }

  // At the last path step (a == attr, down == kInvalidAttr) no child was
  // skipped, so pi[v] already equals P(X_attr = v, evidence) in full.
  Histogram h(schema_.domain_size(attr));
  for (Value v = given[attr].lo; v <= given[attr].hi; ++v) {
    if (pi[v] > 0) h.Add(v, pi[v]);
  }
  return h;
}

double ChowLiuEstimator::ReachProbability(const RangeVec& given) {
  CAQP_CHECK(schema_.ValidRanges(given));
  const auto w = EvidenceWeights(given);
  const AttrId root = topo_order_[0];
  double p = 0.0;
  for (Value v = given[root].lo; v <= given[root].hi; ++v) {
    p += nodes_[root].marginal[v] * w[root][v];
  }
  return p;
}

Tuple ChowLiuEstimator::SampleConditioned(
    const RangeVec& given, const std::vector<std::vector<double>>& weights,
    Rng& rng) const {
  Tuple t(nodes_.size(), 0);
  for (AttrId a : topo_order_) {
    const Node& node = nodes_[a];
    // Unnormalized posterior over values of a given the sampled parent.
    double total = 0.0;
    std::vector<double> mass(given[a].Width(), 0.0);
    for (Value v = given[a].lo; v <= given[a].hi; ++v) {
      const double prior = (node.parent == kInvalidAttr)
                               ? node.marginal[v]
                               : node.cond[t[node.parent]][v];
      mass[v - given[a].lo] = prior * weights[a][v];
      total += mass[v - given[a].lo];
    }
    if (total <= 0) {
      // Evidence with zero model mass (possible only through underflow);
      // fall back to the range's lowest value.
      t[a] = given[a].lo;
      continue;
    }
    double u = rng.Uniform(0.0, total);
    Value chosen = given[a].hi;
    for (Value v = given[a].lo; v <= given[a].hi; ++v) {
      u -= mass[v - given[a].lo];
      if (u <= 0) {
        chosen = v;
        break;
      }
    }
    t[a] = chosen;
  }
  return t;
}

MaskDistribution ChowLiuEstimator::PredicateMasks(
    const RangeVec& given, const std::vector<Predicate>& preds) {
  CAQP_CHECK_LE(preds.size(), 64u);
  const auto w = EvidenceWeights(given);
  Rng rng(opts_.seed ^ RangeVectorHash()(given));
  MaskDistribution dist;
  for (size_t s = 0; s < opts_.sample_count; ++s) {
    const Tuple t = SampleConditioned(given, w, rng);
    dist.Add(PredicateMask(preds, t), 1.0);
  }
  dist.Aggregate();
  return dist;
}

std::vector<MaskDistribution> ChowLiuEstimator::PerValuePredicateMasks(
    const RangeVec& given, AttrId attr, const std::vector<Predicate>& preds) {
  CAQP_CHECK_LE(preds.size(), 64u);
  const ValueRange range = given[attr];
  const auto w = EvidenceWeights(given);
  Rng rng(opts_.seed ^ (RangeVectorHash()(given) * 1315423911ULL) ^ attr);
  std::vector<MaskDistribution> out(range.Width());
  for (size_t s = 0; s < opts_.sample_count; ++s) {
    const Tuple t = SampleConditioned(given, w, rng);
    out[t[attr] - range.lo].Add(PredicateMask(preds, t), 1.0);
  }
  for (MaskDistribution& d : out) d.Aggregate();
  return out;
}

double ChowLiuEstimator::LogLikelihood(const Tuple& t) const {
  CAQP_CHECK(schema_.ValidTuple(t));
  double ll = 0.0;
  for (size_t a = 0; a < nodes_.size(); ++a) {
    const Node& node = nodes_[a];
    const double p = (node.parent == kInvalidAttr)
                         ? node.marginal[t[a]]
                         : node.cond[t[node.parent]][t[a]];
    ll += std::log(std::max(p, 1e-300));
  }
  return ll;
}

}  // namespace caqp
