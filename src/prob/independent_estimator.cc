#include "prob/independent_estimator.h"

namespace caqp {

IndependentEstimator::IndependentEstimator(const Dataset& data)
    : schema_(data.schema()) {
  marginals_.reserve(schema_.num_attributes());
  for (size_t a = 0; a < schema_.num_attributes(); ++a) {
    Histogram h(schema_.domain_size(static_cast<AttrId>(a)));
    for (Value v : data.column(static_cast<AttrId>(a))) h.Add(v);
    marginals_.push_back(std::move(h));
  }
}

Histogram IndependentEstimator::Marginal(const RangeVec& given, AttrId attr) {
  CAQP_CHECK(schema_.ValidRanges(given));
  // Under independence, conditioning on other attributes does nothing;
  // conditioning on this attribute's own range truncates the marginal.
  Histogram out(schema_.domain_size(attr));
  const Histogram& m = marginals_[attr];
  for (Value v = given[attr].lo; v <= given[attr].hi; ++v) {
    if (m.Count(v) > 0) out.Add(v, m.Count(v));
  }
  return out;
}

double IndependentEstimator::ReachProbability(const RangeVec& given) {
  CAQP_CHECK(schema_.ValidRanges(given));
  double p = 1.0;
  for (size_t a = 0; a < given.size(); ++a) {
    p *= marginals_[a].Probability(given[a]);
  }
  return p;
}

double IndependentEstimator::IndepPredProb(const RangeVec& given,
                                           const Predicate& p) {
  const Histogram h = Marginal(given, p.attr);
  const double in = h.Probability(ValueRange{p.lo, p.hi});
  return p.negated ? 1.0 - in : in;
}

MaskDistribution IndependentEstimator::PredicateMasks(
    const RangeVec& given, const std::vector<Predicate>& preds) {
  CAQP_CHECK_LE(preds.size(), 20u);  // Product enumeration is 2^m.
  std::vector<double> probs(preds.size());
  for (size_t j = 0; j < preds.size(); ++j) {
    probs[j] = IndepPredProb(given, preds[j]);
  }
  MaskDistribution dist;
  const uint64_t limit = uint64_t{1} << preds.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    double w = 1.0;
    for (size_t j = 0; j < preds.size(); ++j) {
      w *= ((mask >> j) & 1) ? probs[j] : 1.0 - probs[j];
    }
    if (w > 0) dist.Add(mask, w);
  }
  dist.Aggregate();
  return dist;
}

std::vector<MaskDistribution> IndependentEstimator::PerValuePredicateMasks(
    const RangeVec& given, AttrId attr, const std::vector<Predicate>& preds) {
  // Under independence the predicate joint is unchanged by conditioning on
  // X_attr == v, except for predicates over `attr` itself.
  const ValueRange range = given[attr];
  std::vector<MaskDistribution> out;
  out.reserve(range.Width());
  const Histogram h = Marginal(given, attr);
  for (Value v = range.lo; v <= range.hi; ++v) {
    RangeVec point = Refined(given, attr, ValueRange{v, v});
    MaskDistribution d = PredicateMasks(point, preds);
    // Scale by P(X_attr == v | given) so prefix unions over values form the
    // conditional "< x" distributions exactly as with counting.
    const double pv = h.ValueProbability(v);
    MaskDistribution scaled;
    for (const auto& [mask, w] : d.entries()) {
      const double t = d.total();
      if (t > 0 && pv > 0) scaled.Add(mask, w / t * pv);
    }
    scaled.Aggregate();
    out.push_back(std::move(scaled));
  }
  return out;
}

}  // namespace caqp
