#include "prob/histogram.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace caqp {

double Histogram::RangeCount(const ValueRange& r) const {
  CAQP_DCHECK(r.hi < counts_.size());
  double sum = 0.0;
  for (Value v = r.lo; v <= r.hi; ++v) sum += counts_[v];
  return sum;
}

double Histogram::Probability(const ValueRange& r) const {
  return total_ > 0 ? RangeCount(r) / total_ : 0.0;
}

double Histogram::Mean() const {
  if (total_ <= 0) return 0.0;
  double m = 0.0;
  for (size_t v = 0; v < counts_.size(); ++v) m += v * counts_[v];
  return m / total_;
}

double Histogram::StdDev() const {
  if (total_ <= 0) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (size_t v = 0; v < counts_.size(); ++v) {
    const double d = static_cast<double>(v) - mean;
    ss += d * d * counts_[v];
  }
  return std::sqrt(ss / total_);
}

void MaskDistribution::Aggregate() {
  if (entries_.size() <= 1) return;
  std::unordered_map<uint64_t, double> agg;
  agg.reserve(entries_.size());
  for (const auto& [mask, w] : entries_) agg[mask] += w;
  entries_.assign(agg.begin(), agg.end());
  std::sort(entries_.begin(), entries_.end());
}

double MaskDistribution::MassAllTrue(uint64_t subset) const {
  double sum = 0.0;
  for (const auto& [mask, w] : entries_) {
    if ((mask & subset) == subset) sum += w;
  }
  return sum;
}

double MaskDistribution::ProbTrueGiven(int bit, uint64_t given_true,
                                       double fallback) const {
  const double denom = MassAllTrue(given_true);
  if (denom <= 0) return fallback;
  return MassAllTrue(given_true | (uint64_t{1} << bit)) / denom;
}

MaskDistribution MaskDistribution::ConditionTrue(int bit) const {
  MaskDistribution out;
  const uint64_t b = uint64_t{1} << bit;
  for (const auto& [mask, w] : entries_) {
    if (mask & b) out.Add(mask, w);
  }
  out.Aggregate();
  return out;
}

MaskDistribution MaskDistribution::Subtract(const MaskDistribution& other) const {
  std::unordered_map<uint64_t, double> agg;
  agg.reserve(entries_.size());
  for (const auto& [mask, w] : entries_) agg[mask] += w;
  for (const auto& [mask, w] : other.entries_) agg[mask] -= w;
  MaskDistribution out;
  for (const auto& [mask, w] : agg) {
    // Clamp tiny negative residue from floating-point cancellation.
    if (w > 1e-12) out.Add(mask, w);
  }
  out.Aggregate();
  return out;
}

void MaskDistribution::Merge(const MaskDistribution& other) {
  for (const auto& [mask, w] : other.entries_) Add(mask, w);
  Aggregate();
}

}  // namespace caqp
