// Subproblem bookkeeping for the planners.
//
// A planner subproblem (paper Section 3.2) is the vector of per-attribute
// value ranges implied by the conditioning predicates applied so far:
// Subproblem(phi, R_1=[a_1,b_1], ..., R_n=[a_n,b_n]). An attribute has been
// *acquired* on a plan path iff its range has been narrowed from the full
// domain (the first split on an attribute pays its acquisition cost; later
// splits are free).

#ifndef CAQP_PROB_SUBPROBLEM_H_
#define CAQP_PROB_SUBPROBLEM_H_

#include <vector>

#include "core/predicate.h"
#include "core/query.h"
#include "core/schema.h"
#include "core/types.h"

namespace caqp {

/// One range per schema attribute.
using RangeVec = std::vector<ValueRange>;

/// Bitset over attribute ids. The library supports schemas with up to 64
/// attributes (the paper's largest dataset, Garden-11, has 34).
struct AttrSet {
  uint64_t bits = 0;

  static AttrSet None() { return AttrSet{0}; }
  bool Contains(AttrId a) const { return (bits >> a) & 1; }
  void Insert(AttrId a) { bits |= uint64_t{1} << a; }
  void Remove(AttrId a) { bits &= ~(uint64_t{1} << a); }
  AttrSet Union(AttrSet o) const { return AttrSet{bits | o.bits}; }
  int Count() const { return __builtin_popcountll(bits); }
  bool operator==(const AttrSet& o) const = default;
};

/// True iff `ranges[attr]` spans the attribute's whole domain.
inline bool IsFullRange(const Schema& schema, const RangeVec& ranges,
                        AttrId attr) {
  return ranges[attr].lo == 0 &&
         ranges[attr].hi == schema.domain_size(attr) - 1;
}

/// Attributes whose range has been narrowed, i.e., acquired on this path.
AttrSet AcquiredAttrs(const Schema& schema, const RangeVec& ranges);

/// Copy of `ranges` with attribute `attr` narrowed to `r`. The new range
/// must be a sub-range of the old one.
RangeVec Refined(const RangeVec& ranges, AttrId attr, ValueRange r);

/// Predicates of `conjunct` still undetermined by `ranges` (three-valued
/// evaluation returns kUnknown).
std::vector<Predicate> UndeterminedPredicates(const Conjunct& conjunct,
                                              const RangeVec& ranges);

/// Truth bitmask of `preds` on a concrete value vector: bit j set iff
/// preds[j] matches. Used to build MaskDistributions from data.
uint64_t PredicateMask(const std::vector<Predicate>& preds, const Tuple& t);

}  // namespace caqp

#endif  // CAQP_PROB_SUBPROBLEM_H_
