#include "prob/subproblem.h"

namespace caqp {

AttrSet AcquiredAttrs(const Schema& schema, const RangeVec& ranges) {
  CAQP_DCHECK(ranges.size() == schema.num_attributes());
  AttrSet set;
  for (size_t a = 0; a < ranges.size(); ++a) {
    if (!IsFullRange(schema, ranges, static_cast<AttrId>(a))) {
      set.Insert(static_cast<AttrId>(a));
    }
  }
  return set;
}

RangeVec Refined(const RangeVec& ranges, AttrId attr, ValueRange r) {
  CAQP_DCHECK(attr < ranges.size());
  CAQP_DCHECK(ranges[attr].lo <= r.lo && r.hi <= ranges[attr].hi);
  CAQP_DCHECK(r.lo <= r.hi);
  RangeVec out = ranges;
  out[attr] = r;
  return out;
}

std::vector<Predicate> UndeterminedPredicates(const Conjunct& conjunct,
                                              const RangeVec& ranges) {
  std::vector<Predicate> out;
  for (const Predicate& p : conjunct) {
    if (p.EvaluateOnRange(ranges[p.attr]) == Truth::kUnknown) {
      out.push_back(p);
    }
  }
  return out;
}

uint64_t PredicateMask(const std::vector<Predicate>& preds, const Tuple& t) {
  CAQP_DCHECK(preds.size() <= 64);
  uint64_t mask = 0;
  for (size_t j = 0; j < preds.size(); ++j) {
    if (preds[j].Matches(t)) mask |= uint64_t{1} << j;
  }
  return mask;
}

}  // namespace caqp
