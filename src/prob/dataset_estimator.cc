#include "prob/dataset_estimator.h"

#include <numeric>

namespace caqp {

DatasetEstimator::DatasetEstimator(const Dataset& data) : data_(data) {
  Scope root;
  root.ranges = data_.schema().FullRanges();
  root.rows.resize(data_.num_rows());
  std::iota(root.rows.begin(), root.rows.end(), RowId{0});
  stack_.push_back(std::move(root));
}

bool DatasetEstimator::Covers(const RangeVec& outer, const RangeVec& inner) {
  CAQP_DCHECK(outer.size() == inner.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    if (inner[i].lo < outer[i].lo || inner[i].hi > outer[i].hi) return false;
  }
  return true;
}

std::vector<RowId> DatasetEstimator::FilterRows(const std::vector<RowId>& rows,
                                                const RangeVec& from,
                                                const RangeVec& target) const {
  // Only test the attributes actually narrowed relative to `from`.
  std::vector<AttrId> changed;
  for (size_t a = 0; a < target.size(); ++a) {
    if (target[a].lo != from[a].lo || target[a].hi != from[a].hi) {
      changed.push_back(static_cast<AttrId>(a));
    }
  }
  if (changed.empty()) return rows;
  std::vector<RowId> out;
  out.reserve(rows.size());
  for (RowId r : rows) {
    bool ok = true;
    for (AttrId a : changed) {
      const Value v = data_.at(r, a);
      if (v < target[a].lo || v > target[a].hi) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(r);
  }
  return out;
}

const std::vector<RowId>& DatasetEstimator::ResolveRows(const RangeVec& given) {
  CAQP_CHECK(data_.schema().ValidRanges(given));
  // Deepest-first: scopes narrow toward the top of the stack, so the first
  // covering scope from the top needs the least filtering.
  for (size_t i = stack_.size(); i-- > 0;) {
    const Scope& s = stack_[i];
    if (s.ranges == given) return s.rows;
    if (Covers(s.ranges, given)) {
      scratch_rows_ = FilterRows(s.rows, s.ranges, given);
      return scratch_rows_;
    }
  }
  CAQP_CHECK(false);  // Root covers everything; unreachable.
}

void DatasetEstimator::PushScope(const RangeVec& ranges) {
  CAQP_CHECK(data_.schema().ValidRanges(ranges));
  // Find the deepest covering scope and filter from it.
  for (size_t i = stack_.size(); i-- > 0;) {
    if (Covers(stack_[i].ranges, ranges)) {
      Scope s;
      s.rows = FilterRows(stack_[i].rows, stack_[i].ranges, ranges);
      s.ranges = ranges;
      stack_.push_back(std::move(s));
      return;
    }
  }
  CAQP_CHECK(false);  // Root covers everything.
}

void DatasetEstimator::PopScope() {
  CAQP_CHECK_GT(stack_.size(), 1u);  // The root scope is permanent.
  stack_.pop_back();
}

std::vector<RowId> DatasetEstimator::RowsMatching(const RangeVec& given) {
  return ResolveRows(given);
}

Histogram DatasetEstimator::Marginal(const RangeVec& given, AttrId attr) {
  const std::vector<RowId>& rows = ResolveRows(given);
  Histogram h(data_.schema().domain_size(attr));
  const std::vector<Value>& col = data_.column(attr);
  for (RowId r : rows) h.Add(col[r]);
  return h;
}

double DatasetEstimator::ReachProbability(const RangeVec& given) {
  if (data_.num_rows() == 0) return 0.0;
  const std::vector<RowId>& rows = ResolveRows(given);
  return static_cast<double>(rows.size()) /
         static_cast<double>(data_.num_rows());
}

MaskDistribution DatasetEstimator::PredicateMasks(
    const RangeVec& given, const std::vector<Predicate>& preds) {
  CAQP_CHECK_LE(preds.size(), 64u);
  const std::vector<RowId>& rows = ResolveRows(given);
  MaskDistribution dist;
  for (RowId r : rows) {
    uint64_t mask = 0;
    for (size_t j = 0; j < preds.size(); ++j) {
      if (preds[j].Matches(data_.at(r, preds[j].attr))) {
        mask |= uint64_t{1} << j;
      }
    }
    dist.Add(mask, 1.0);
  }
  dist.Aggregate();
  return dist;
}

std::vector<MaskDistribution> DatasetEstimator::PerValuePredicateMasks(
    const RangeVec& given, AttrId attr, const std::vector<Predicate>& preds) {
  CAQP_CHECK_LE(preds.size(), 64u);
  const ValueRange range = given[attr];
  const std::vector<RowId>& rows = ResolveRows(given);
  std::vector<MaskDistribution> out(range.Width());
  const std::vector<Value>& col = data_.column(attr);
  for (RowId r : rows) {
    const Value v = col[r];
    CAQP_DCHECK(range.Contains(v));
    uint64_t mask = 0;
    for (size_t j = 0; j < preds.size(); ++j) {
      if (preds[j].Matches(data_.at(r, preds[j].attr))) {
        mask |= uint64_t{1} << j;
      }
    }
    out[v - range.lo].Add(mask, 1.0);
  }
  for (MaskDistribution& d : out) d.Aggregate();
  return out;
}

}  // namespace caqp
