// IndependentEstimator: conditional probabilities under the attribute-
// independence assumption of a traditional optimizer. Marginals are learned
// from a dataset once; all conditioning is ignored except for renormalizing
// within the conditioned range of the queried attribute itself.
//
// This is the statistical model the paper's Naive baseline lives in, and it
// doubles as an ablation: running GreedyPlan with this estimator shows that
// the benefit of conditional plans comes from *correlations*, not from the
// plan shape alone (an independence model never makes a split look useful).
//
// Thread-safe after construction: the per-attribute marginals are never
// mutated by queries, so one instance may serve concurrent planners.

#ifndef CAQP_PROB_INDEPENDENT_ESTIMATOR_H_
#define CAQP_PROB_INDEPENDENT_ESTIMATOR_H_

#include <vector>

#include "core/dataset.h"
#include "prob/estimator.h"

namespace caqp {

class IndependentEstimator : public CondProbEstimator {
 public:
  explicit IndependentEstimator(const Dataset& data);

  const Schema& schema() const override { return schema_; }

  Histogram Marginal(const RangeVec& given, AttrId attr) override;
  double ReachProbability(const RangeVec& given) override;
  MaskDistribution PredicateMasks(const RangeVec& given,
                                  const std::vector<Predicate>& preds) override;
  std::vector<MaskDistribution> PerValuePredicateMasks(
      const RangeVec& given, AttrId attr,
      const std::vector<Predicate>& preds) override;

 private:
  /// P(pred | given) under independence: marginal restricted to given[attr].
  double IndepPredProb(const RangeVec& given, const Predicate& p);

  Schema schema_;
  std::vector<Histogram> marginals_;  // one per attribute
};

}  // namespace caqp

#endif  // CAQP_PROB_INDEPENDENT_ESTIMATOR_H_
