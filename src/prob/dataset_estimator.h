// DatasetEstimator: exact conditional probabilities by counting over a
// historical dataset (paper Sections 2.3 and 5).
//
// The planners explore subproblems depth-first, each refining its parent's
// ranges on a single attribute. The estimator exploits this with a *scope
// stack* of row selections: PushScope filters the parent's rows once, and
// every probability asked at that subproblem is O(rows_in_scope). Queries
// for ranges that are not on the stack (e.g., GreedySplit probing candidate
// children) are answered by filtering down from the nearest enclosing scope.

// NOT thread-safe: the scope stack and scratch row buffer are mutated by
// every probability query. Use one instance per thread (caqp::serve gives
// each worker its own PlanBuilder bundle for exactly this reason).

#ifndef CAQP_PROB_DATASET_ESTIMATOR_H_
#define CAQP_PROB_DATASET_ESTIMATOR_H_

#include <vector>

#include "core/dataset.h"
#include "prob/estimator.h"

namespace caqp {

class DatasetEstimator : public CondProbEstimator {
 public:
  /// The dataset must outlive the estimator.
  explicit DatasetEstimator(const Dataset& data);

  const Schema& schema() const override { return data_.schema(); }

  Histogram Marginal(const RangeVec& given, AttrId attr) override;
  double ReachProbability(const RangeVec& given) override;
  MaskDistribution PredicateMasks(const RangeVec& given,
                                  const std::vector<Predicate>& preds) override;
  std::vector<MaskDistribution> PerValuePredicateMasks(
      const RangeVec& given, AttrId attr,
      const std::vector<Predicate>& preds) override;

  void PushScope(const RangeVec& ranges) override;
  void PopScope() override;

  /// Rows matching the ranges, resolved via the scope stack. Exposed for
  /// tests and for metrics.
  std::vector<RowId> RowsMatching(const RangeVec& given);

  const Dataset& dataset() const { return data_; }

 private:
  struct Scope {
    RangeVec ranges;
    std::vector<RowId> rows;
  };

  /// True iff `outer` contains `inner` attribute-wise.
  static bool Covers(const RangeVec& outer, const RangeVec& inner);

  /// Filters `rows` down to those matching `target`, testing only attributes
  /// whose range differs from `from`.
  std::vector<RowId> FilterRows(const std::vector<RowId>& rows,
                                const RangeVec& from,
                                const RangeVec& target) const;

  /// Returns the rows for `given`: exact stack hit, or filter from the
  /// deepest stack entry covering `given`.
  const std::vector<RowId>& ResolveRows(const RangeVec& given);

  const Dataset& data_;
  std::vector<Scope> stack_;  // stack_[0] is the root (all rows).
  /// Scratch result for off-stack queries (valid until the next call).
  std::vector<RowId> scratch_rows_;
};

}  // namespace caqp

#endif  // CAQP_PROB_DATASET_ESTIMATOR_H_
