// CondProbEstimator: the oracle interface the planners use for every
// conditional probability (paper Sections 2.3 and 5). Implementations:
//
//  * DatasetEstimator     -- exact counting over a historical dataset, with
//                            the per-subproblem row indices and incremental
//                            histograms of Section 5.
//  * IndependentEstimator -- attribute-independence approximation (the
//                            assumption baked into the Naive optimizer);
//                            useful as an ablation.
//  * ChowLiuEstimator     -- tree-structured graphical model (Section 7,
//                            "Graphical Models"): compact, smooth estimates
//                            that do not degrade as subproblems shrink.
//
// All conditioning is expressed as a RangeVec: one inclusive value range per
// schema attribute ("X_1 in R_1 AND ... AND X_n in R_n"), which is exactly
// the shape of every subproblem the planners generate.
//
// Thread safety: the interface is deliberately non-const (implementations
// may keep incremental per-query state), so an estimator instance is safe to
// share across threads only if its implementation says so:
//  * IndependentEstimator and ChowLiuEstimator mutate nothing after
//    construction -- safe for concurrent use.
//  * DatasetEstimator keeps a scope stack and a scratch row buffer -- NOT
//    safe to share; use one instance per thread.
// Planner thread safety (opt/planner.h) is exactly the thread safety of the
// estimator the planner references.

#ifndef CAQP_PROB_ESTIMATOR_H_
#define CAQP_PROB_ESTIMATOR_H_

#include <vector>

#include "core/predicate.h"
#include "core/schema.h"
#include "prob/histogram.h"
#include "prob/subproblem.h"

namespace caqp {

class CondProbEstimator {
 public:
  virtual ~CondProbEstimator() = default;

  virtual const Schema& schema() const = 0;

  /// Normalized-by-construction weighted histogram of `attr` conditioned on
  /// the ranges: counts restricted to tuples satisfying X_i in given[i] for
  /// all i. (Callers normalize via Histogram::Probability.)
  virtual Histogram Marginal(const RangeVec& given, AttrId attr) = 0;

  /// P(X_1 in given[1] AND ... AND X_n in given[n]): the probability a tuple
  /// reaches this subproblem, used as the leaf-expansion weight in
  /// GreedyPlan (Figure 7).
  virtual double ReachProbability(const RangeVec& given) = 0;

  /// Joint distribution over the truth bitmasks of `preds`, conditioned on
  /// the ranges. preds.size() <= 64.
  virtual MaskDistribution PredicateMasks(
      const RangeVec& given, const std::vector<Predicate>& preds) = 0;

  /// For a split-point sweep on `attr` (current range given[attr] = [a,b]):
  /// one MaskDistribution per value v in [a,b] (index 0 == value a), i.e.,
  /// the joint of predicate truths restricted to X_attr == v. Prefix unions
  /// of these give the "<x" side of every candidate split in one pass
  /// (Section 5.2's incremental rule).
  virtual std::vector<MaskDistribution> PerValuePredicateMasks(
      const RangeVec& given, AttrId attr,
      const std::vector<Predicate>& preds) = 0;

  // ---- Derived conveniences (implemented on top of the virtuals) ----

  /// P(X_attr in r | given).
  double RangeProbability(const RangeVec& given, AttrId attr, ValueRange r) {
    return Marginal(given, attr).Probability(r);
  }

  /// P(pred true | given).
  double PredicateProbability(const RangeVec& given, const Predicate& pred) {
    const double in =
        RangeProbability(given, pred.attr, ValueRange{pred.lo, pred.hi});
    return pred.negated ? 1.0 - in : in;
  }

  /// Optional scope hints: planners bracket their depth-first recursion with
  /// Push/Pop so dataset-backed estimators can maintain an incremental stack
  /// of row selections instead of re-filtering from the root. Estimators that
  /// do not benefit ignore these.
  virtual void PushScope(const RangeVec& /*ranges*/) {}
  virtual void PopScope() {}
};

/// RAII helper for PushScope/PopScope.
class ScopedEstimatorScope {
 public:
  ScopedEstimatorScope(CondProbEstimator& est, const RangeVec& ranges)
      : est_(est) {
    est_.PushScope(ranges);
  }
  ~ScopedEstimatorScope() { est_.PopScope(); }

  ScopedEstimatorScope(const ScopedEstimatorScope&) = delete;
  ScopedEstimatorScope& operator=(const ScopedEstimatorScope&) = delete;

 private:
  CondProbEstimator& est_;
};

}  // namespace caqp

#endif  // CAQP_PROB_ESTIMATOR_H_
