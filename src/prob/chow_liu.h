// ChowLiuEstimator: a tree-structured probabilistic graphical model over the
// attributes, fit by the Chow-Liu procedure (maximum-spanning tree on
// pairwise mutual information). This implements the "Graphical Models"
// extension of the paper's Section 7: direct counting needs a linear scan per
// probability and degrades after a few splits (each split halves the data a
// subproblem sees, so estimates get noisy); a tree model is O(n K^2) per
// query and is smoothed, so deep subproblems keep low-variance estimates.
//
// Range evidence (the RangeVec conditioning used by all planners) is exact:
// marginals and reach probabilities come from evidence-weighted message
// passing on the tree. Predicate-mask joints are estimated by exact
// ancestral sampling from the conditioned tree (deterministic per query:
// the sampler is reseeded from a hash of the evidence).
//
// Thread-safe after construction: the fitted tree is read-only and each
// query's sampler state is local to the call, so one instance may serve
// concurrent planners.

#ifndef CAQP_PROB_CHOW_LIU_H_
#define CAQP_PROB_CHOW_LIU_H_

#include <vector>

#include "common/rng.h"
#include "core/dataset.h"
#include "prob/estimator.h"

namespace caqp {

class ChowLiuEstimator : public CondProbEstimator {
 public:
  struct Options {
    /// Laplace smoothing added to every pairwise joint cell.
    double laplace_alpha = 0.5;
    /// Samples drawn per PredicateMasks / PerValuePredicateMasks call.
    size_t sample_count = 8192;
    /// Base seed for the per-call deterministic sampler.
    uint64_t seed = 0x9e3779b9;
  };

  explicit ChowLiuEstimator(const Dataset& data, Options opts);
  explicit ChowLiuEstimator(const Dataset& data)
      : ChowLiuEstimator(data, Options()) {}

  const Schema& schema() const override { return schema_; }

  Histogram Marginal(const RangeVec& given, AttrId attr) override;
  double ReachProbability(const RangeVec& given) override;
  MaskDistribution PredicateMasks(const RangeVec& given,
                                  const std::vector<Predicate>& preds) override;
  std::vector<MaskDistribution> PerValuePredicateMasks(
      const RangeVec& given, AttrId attr,
      const std::vector<Predicate>& preds) override;

  /// Tree structure introspection: parent of `a` in the rooted tree
  /// (kInvalidAttr for the root).
  AttrId ParentOf(AttrId a) const { return nodes_[a].parent; }

  /// The mutual information of the tree edge into `a` (0 for the root).
  double EdgeMutualInformation(AttrId a) const { return nodes_[a].edge_mi; }

  /// Log-likelihood of a tuple under the fitted model (for tests).
  double LogLikelihood(const Tuple& t) const;

 private:
  struct Node {
    AttrId parent = kInvalidAttr;
    std::vector<AttrId> children;
    double edge_mi = 0.0;
    /// Node marginal P(X_a = v), smoothed.
    std::vector<double> marginal;
    /// cond[pv][v] = P(X_a = v | X_parent = pv); for the root, cond has one
    /// row equal to the marginal.
    std::vector<std::vector<double>> cond;
  };

  /// Evidence weights W[a][v] = P(evidence in the subtree below a | X_a = v),
  /// for nodes in topological (parent-before-child) order.
  std::vector<std::vector<double>> EvidenceWeights(const RangeVec& given) const;

  /// Draws one tuple by ancestral sampling from the evidence-conditioned
  /// tree. `weights` must come from EvidenceWeights(given).
  Tuple SampleConditioned(const RangeVec& given,
                          const std::vector<std::vector<double>>& weights,
                          Rng& rng) const;

  Schema schema_;
  Options opts_;
  std::vector<Node> nodes_;
  /// Node ids in parent-before-child order, nodes_order_[0] == root.
  std::vector<AttrId> topo_order_;
};

}  // namespace caqp

#endif  // CAQP_PROB_CHOW_LIU_H_
