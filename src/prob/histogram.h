// One-dimensional value histograms and predicate-mask joint distributions:
// the two statistics every planner consumes (paper Section 5).

#ifndef CAQP_PROB_HISTOGRAM_H_
#define CAQP_PROB_HISTOGRAM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.h"

namespace caqp {

/// Weighted counts over one attribute's domain [0, K).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(uint32_t domain) : counts_(domain, 0.0) {}

  void Add(Value v, double w = 1.0) {
    CAQP_DCHECK(v < counts_.size());
    counts_[v] += w;
    total_ += w;
  }

  uint32_t domain() const { return static_cast<uint32_t>(counts_.size()); }
  double total() const { return total_; }
  double Count(Value v) const {
    CAQP_DCHECK(v < counts_.size());
    return counts_[v];
  }

  /// Total weight in the inclusive range [r.lo, r.hi].
  double RangeCount(const ValueRange& r) const;

  /// P(X in r) under the histogram; 0 if the histogram is empty.
  double Probability(const ValueRange& r) const;

  /// P(X == v); 0 if empty.
  double ValueProbability(Value v) const {
    return total_ > 0 ? Count(v) / total_ : 0.0;
  }

  /// Empirical mean of the value index (used by workload generators to pick
  /// predicate widths in units of standard deviations, Section 6.1).
  double Mean() const;
  /// Empirical standard deviation of the value index.
  double StdDev() const;

 private:
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Joint distribution over the truth values of a small predicate set,
/// aggregated as (bitmask, weight) pairs: bit j of the mask is predicate j's
/// truth. This is the "normalized joint histogram over the rediscretized
/// attributes X'_1..X'_m" of Section 5.2, stored sparsely (the number of
/// distinct masks is bounded by the number of tuples, not 2^m).
class MaskDistribution {
 public:
  MaskDistribution() = default;

  void Add(uint64_t mask, double w) {
    entries_.emplace_back(mask, w);
    total_ += w;
  }

  /// Collapses duplicate masks (call once after bulk adds).
  void Aggregate();

  const std::vector<std::pair<uint64_t, double>>& entries() const {
    return entries_;
  }
  double total() const { return total_; }
  bool empty() const { return entries_.empty(); }

  /// Total weight of outcomes where every predicate in `subset` is true.
  double MassAllTrue(uint64_t subset) const;

  /// P(predicate `bit` true | all predicates in `given_true` true).
  /// Returns fallback if the conditioning event has zero mass.
  double ProbTrueGiven(int bit, uint64_t given_true,
                       double fallback = 0.5) const;

  /// Removes outcomes where predicate `bit` is false and drops that bit's
  /// conditioning (keeps the bit in place); used by greedy sequential
  /// planning which conditions on chosen predicates being satisfied.
  MaskDistribution ConditionTrue(int bit) const;

  /// this - other, entry-wise by mask; used for the incremental ">= split"
  /// side of a split-point sweep (Section 5.2's Eq. (7) analogue).
  MaskDistribution Subtract(const MaskDistribution& other) const;

  /// Merges another distribution into this one (weights add).
  void Merge(const MaskDistribution& other);

 private:
  std::vector<std::pair<uint64_t, double>> entries_;
  double total_ = 0.0;
};

}  // namespace caqp

#endif  // CAQP_PROB_HISTOGRAM_H_
