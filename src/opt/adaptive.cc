#include "opt/adaptive.h"

#include "exec/executor.h"
#include "plan/plan_cost.h"
#include "prob/dataset_estimator.h"

namespace caqp {

AdaptivePlanner::AdaptivePlanner(const Schema& schema, const Query& query,
                                 const AcquisitionCostModel& cost_model,
                                 Options options)
    : schema_(schema),
      query_(query),
      cost_model_(cost_model),
      options_(options) {
  CAQP_CHECK(options_.split_points != nullptr);
  CAQP_CHECK(options_.seq_solver != nullptr);
  CAQP_CHECK(query_.IsConjunctive());
  CAQP_CHECK(query_.ValidFor(schema_));
  // Cold start: evaluate the query predicates in declaration order until the
  // first window provides statistics.
  plan_ = Plan(PlanNode::Sequential(query_.predicates()));
}

double AdaptivePlanner::Observe(const Tuple& tuple) {
  CAQP_CHECK(schema_.ValidTuple(tuple));
  TupleSource source(tuple);
  const ExecutionResult res =
      ExecutePlan(plan_, schema_, cost_model_, source);
  ++stats_.tuples_seen;
  stats_.total_cost += res.cost;

  window_.push_back(tuple);
  if (window_.size() > options_.window_size) window_.pop_front();
  if (++since_replan_ >= options_.replan_interval &&
      window_.size() >= options_.replan_interval) {
    since_replan_ = 0;
    MaybeReplan();
  }
  return res.cost;
}

void AdaptivePlanner::MaybeReplan() {
  ++stats_.replans_considered;
  Dataset window_data(schema_);
  for (const Tuple& t : window_) window_data.Append(t);
  DatasetEstimator estimator(window_data);

  GreedyPlanner::Options gopts;
  gopts.split_points = options_.split_points;
  gopts.seq_solver = options_.seq_solver;
  gopts.max_splits = options_.max_splits;
  GreedyPlanner planner(estimator, cost_model_, gopts);
  Plan candidate = planner.BuildPlan(query_);

  const double current_cost =
      ExpectedPlanCost(plan_, estimator, cost_model_);
  const double candidate_cost =
      ExpectedPlanCost(candidate, estimator, cost_model_);
  if (candidate_cost <
      current_cost * (1.0 - options_.improvement_threshold)) {
    plan_ = std::move(candidate);
    ++stats_.replans_adopted;
    if (options_.on_plan_adopted) options_.on_plan_adopted();
  }
}

}  // namespace caqp
