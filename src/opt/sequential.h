// Sequential-plan solvers (paper Section 4.1).
//
// A sequential plan evaluates the (still undetermined) query predicates in a
// fixed order, stopping at the first false predicate. The two solvers --
// OptSeq (optimal, O(m 2^m) subset DP) and GreedySeq (Munagala et al.'s
// 4-approximation) -- both consume a SeqProblem: the predicates, their joint
// truth distribution conditioned on the current subproblem, and a marginal
// acquisition cost callback (set-dependent, so Section 7's sensor-board cost
// model composes with every solver).

#ifndef CAQP_OPT_SEQUENTIAL_H_
#define CAQP_OPT_SEQUENTIAL_H_

#include <functional>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "prob/histogram.h"

namespace caqp {

struct SeqProblem {
  /// Predicates to order; all are undetermined at the subproblem. size<=64.
  std::vector<Predicate> preds;
  /// Joint truth distribution of `preds` (bit j == preds[j]) conditioned on
  /// the subproblem ranges.
  const MaskDistribution* masks = nullptr;
  /// cost(i, evaluated) = marginal acquisition cost of preds[i]'s attribute
  /// after the predicates in the bitmask `evaluated` have been evaluated
  /// (their attributes acquired). Returns 0 for attributes acquired earlier
  /// on the plan path.
  std::function<double(size_t, uint64_t)> cost;
};

struct SeqSolution {
  /// Expected acquisition cost of the ordered plan under the problem's
  /// distribution (Equation (3) restricted to a chain).
  double expected_cost = 0.0;
  /// Evaluation order as indices into SeqProblem::preds.
  std::vector<size_t> order;

  /// The order as predicates, for building a Sequential plan leaf.
  std::vector<Predicate> OrderedPredicates(const SeqProblem& p) const {
    std::vector<Predicate> out;
    out.reserve(order.size());
    for (size_t i : order) out.push_back(p.preds[i]);
    return out;
  }
};

class SequentialSolver {
 public:
  virtual ~SequentialSolver() = default;
  virtual std::string Name() const = 0;
  virtual SeqSolution Solve(const SeqProblem& problem) const = 0;
};

/// Expected cost of a *given* order under a SeqProblem: shared by solvers
/// and tests (e.g., to brute-force all m! orders against OptSeq).
double SequentialOrderCost(const SeqProblem& problem,
                           const std::vector<size_t>& order);

}  // namespace caqp

#endif  // CAQP_OPT_SEQUENTIAL_H_
