// ExhaustivePlan (paper Section 3.2, Figure 5): depth-first dynamic program
// over attribute-range subproblems with memoization, computing the minimum
// expected-cost conditional plan.
//
// Deviations from the paper's pseudo-code, all conservative:
//  * Memoization-first instead of branch-and-bound: the paper threads a
//    cost bound C-bar through the recursion and skips caching pruned
//    results. In our experiments that re-solves the same subproblem under
//    ever-growing bounds hundreds of times; solving each distinct
//    subproblem exactly once (bound = infinity) and caching it is strictly
//    faster on the SPSF-restricted grids where Exhaustive is feasible at
//    all. The paper's candidate-level pruning (skip an attribute whose
//    observation cost alone exceeds the best candidate so far, and abandon
//    a candidate once its partial cost does) is kept -- it is safe because
//    child results are exact.
//  * Sequential completion: at every subproblem the optimal sequential plan
//    over the undetermined query predicates is admitted as a candidate
//    "leaf". This keeps the planner total under restricted split-point sets
//    (where grid splits alone may be unable to resolve the query) and
//    guarantees C(Exhaustive) <= C(OptSeq). With an unrestricted grid the
//    returned cost equals the paper's optimum, since a sequential completion
//    is itself expressible as grid splits.
//
// Worst-case complexity is O(n K K^{2n}) subproblem work (paper Section
// 3.2) -- only feasible for few attributes with small domains; benches use
// SPSF restriction to keep it tractable, exactly as the paper does. With r_i
// candidate points per attribute the number of distinct subproblems is
// bounded by prod_i (r_i + 1)(r_i + 2) / 2.

#ifndef CAQP_OPT_EXHAUSTIVE_H_
#define CAQP_OPT_EXHAUSTIVE_H_

#include "opt/optseq.h"
#include "opt/planner.h"
#include "opt/split_points.h"

namespace caqp {

class ExhaustivePlanner : public Planner {
 public:
  struct Options {
    /// Candidate conditioning split points (SPSF restriction). Required.
    const SplitPointSet* split_points = nullptr;
    /// Safety valve: abort if the DP visits more subproblems than this.
    size_t max_subproblems = 20'000'000;
  };

  struct Stats {
    size_t subproblems_solved = 0;  ///< memo misses: distinct subproblems
    size_t cache_hits = 0;          ///< memo hits
    size_t candidates_tried = 0;    ///< (attribute, split point) pairs costed
    /// Attributes skipped because their observation cost alone already
    /// exceeded the best candidate (paper's candidate-level pruning).
    size_t observe_prunes = 0;
    /// Candidates abandoned after costing the "<" child because the partial
    /// sum already exceeded the best candidate.
    size_t candidate_abandons = 0;
  };

  ExhaustivePlanner(CondProbEstimator& estimator,
                    const AcquisitionCostModel& cost_model, Options options)
      : estimator_(estimator), cost_model_(cost_model), options_(options) {
    CAQP_CHECK(options_.split_points != nullptr);
  }

  std::string Name() const override { return "Exhaustive"; }
  CondProbEstimator* estimator() const override { return &estimator_; }

  /// Expected cost of the last built plan per the DP (== Equation (3) value
  /// under the training estimator). See opt/planner.h for when diagnostics
  /// may be read.
  double LastPlanCost() const { return last_cost_; }
  const Stats& stats() const { return stats_; }

 protected:
  Plan BuildPlanImpl(const Query& query,
                     obs::PlannerStats& stats) const override;

 private:
  /// Per-build scratch (defined in exhaustive.cc): the DP memo table, the
  /// node arena the recursion builds into, split/verdict interning tables,
  /// and counters. Lives on the BuildPlan stack so concurrent builds on one
  /// instance never share mutable state. The DP never allocates PlanNode
  /// trees: subplans are uint32 handles into the arena, a memo hit returns
  /// the cached handle itself (O(1), no deep clones), and the winning root
  /// is materialized into a pointer tree exactly once at the end. Memo-hit
  /// structural identity therefore holds by construction -- two hits on one
  /// subproblem yield the same node, not equal copies.
  struct BuildContext;

  /// Solves a subproblem exactly; returns (expected cost, arena handle).
  /// Results are memoized by range vector.
  std::pair<double, uint32_t> Solve(const Query& query, const RangeVec& ranges,
                                    BuildContext& ctx) const;

  /// Zero-or-known-cost completion leaf once splits are no longer useful:
  /// the optimal sequential plan (conjunctive) or a generic acquire-and-test
  /// leaf (DNF), with its expected cost under the estimator.
  std::pair<double, uint32_t> CompletionLeaf(const Query& query,
                                             const RangeVec& ranges,
                                             BuildContext& ctx) const;

  CondProbEstimator& estimator_;
  const AcquisitionCostModel& cost_model_;
  Options options_;
  OptSeqSolver optseq_;
  /// Most-recent-build diagnostics, committed under Planner::diag_mu_.
  mutable Stats stats_;
  mutable double last_cost_ = 0.0;
};

}  // namespace caqp

#endif  // CAQP_OPT_EXHAUSTIVE_H_
