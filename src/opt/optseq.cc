#include "opt/optseq.h"

#include <algorithm>
#include <limits>

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

double SequentialOrderCost(const SeqProblem& problem,
                           const std::vector<size_t>& order) {
  const MaskDistribution& masks = *problem.masks;
  if (masks.total() <= 0) return 0.0;
  double cost = 0.0;
  uint64_t evaluated = 0;
  for (size_t i : order) {
    const double p_reach = masks.MassAllTrue(evaluated) / masks.total();
    if (p_reach <= 0) break;
    cost += p_reach * problem.cost(i, evaluated);
    evaluated |= uint64_t{1} << i;
  }
  return cost;
}

SeqSolution OptSeqSolver::Solve(const SeqProblem& problem) const {
  const size_t m = problem.preds.size();
  CAQP_CHECK(problem.masks != nullptr);
  SeqSolution sol;
  if (m == 0) return sol;
  CAQP_CHECK_LE(m, 20u);  // O(m 2^m) DP.
  CAQP_OBS_COUNTER_INC("opt.optseq.solves");
  CAQP_OBS_COUNTER_ADD("opt.optseq.subsets", uint64_t{1} << m);

  const uint64_t full = (uint64_t{1} << m) - 1;

  // A[S] = total mass of outcomes where every predicate in S is true.
  // Built by a superset-sum (SOS) transform over the sparse mask entries.
  std::vector<double> all_true(uint64_t{1} << m, 0.0);
  for (const auto& [mask, w] : problem.masks->entries()) {
    all_true[mask & full] += w;
  }
  for (size_t j = 0; j < m; ++j) {
    const uint64_t bit = uint64_t{1} << j;
    for (uint64_t s = 0; s <= full; ++s) {
      if (!(s & bit)) all_true[s] += all_true[s | bit];
    }
  }
  const double total = all_true[0];

  // J[S] = optimal expected completion cost given predicates in S observed
  // true. Processed by decreasing popcount (J[full] = 0).
  std::vector<double> j_cost(uint64_t{1} << m, 0.0);
  std::vector<int> choice(uint64_t{1} << m, -1);
  std::vector<uint64_t> by_popcount;
  by_popcount.reserve(uint64_t{1} << m);
  for (uint64_t s = 0; s <= full; ++s) by_popcount.push_back(s);
  std::sort(by_popcount.begin(), by_popcount.end(),
            [](uint64_t a, uint64_t b) {
              return __builtin_popcountll(a) > __builtin_popcountll(b);
            });

  for (uint64_t s : by_popcount) {
    if (s == full) continue;
    if (all_true[s] <= 0) {
      // Unreachable conditioning event: expected completion cost 0 (no
      // tuple ever gets here); order choice is arbitrary.
      j_cost[s] = 0.0;
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    int best_i = -1;
    for (size_t i = 0; i < m; ++i) {
      const uint64_t bit = uint64_t{1} << i;
      if (s & bit) continue;
      const double p_true = all_true[s | bit] / all_true[s];
      const double c = problem.cost(i, s) + p_true * j_cost[s | bit];
      if (c < best) {
        best = c;
        best_i = static_cast<int>(i);
      }
    }
    j_cost[s] = best;
    choice[s] = best_i;
  }

  sol.expected_cost = (total > 0) ? j_cost[0] : 0.0;

  // Reconstruct the order along the all-true path; fill unreachable tail in
  // index order (cost-irrelevant but the plan must evaluate every
  // predicate to be correct on unseen data).
  uint64_t s = 0;
  while (s != full) {
    int i = choice[s];
    if (i < 0) {
      for (size_t k = 0; k < m; ++k) {
        if (!(s & (uint64_t{1} << k))) {
          i = static_cast<int>(k);
          break;
        }
      }
    }
    sol.order.push_back(static_cast<size_t>(i));
    s |= uint64_t{1} << i;
  }
  return sol;
}

}  // namespace caqp
