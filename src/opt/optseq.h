// OptSeq (paper Section 4.1.2): the optimal sequential plan for a
// conjunctive query, via dynamic programming over subsets of evaluated
// predicates. The paper observes that the exhaustive planner, restricted to
// conditioning only on the query predicates themselves (re-discretizing each
// query attribute to the binary "predicate satisfied?" variable), reduces to
// exactly this DP. Complexity O(m 2^m); the solver refuses m > 20.

#ifndef CAQP_OPT_OPTSEQ_H_
#define CAQP_OPT_OPTSEQ_H_

#include "opt/sequential.h"

namespace caqp {

class OptSeqSolver : public SequentialSolver {
 public:
  std::string Name() const override { return "OptSeq"; }
  SeqSolution Solve(const SeqProblem& problem) const override;
};

}  // namespace caqp

#endif  // CAQP_OPT_OPTSEQ_H_
