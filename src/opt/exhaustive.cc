#include "opt/exhaustive.h"

#include <algorithm>
#include <limits>

#include "opt/greedyseq.h"

namespace caqp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True iff every attribute referenced by the query has been acquired
/// (range narrowed) -- the second base case of Figure 5: all remaining tests
/// are free, so the completion cost is 0.
bool AllQueryAttrsAcquired(const Query& query, const Schema& schema,
                           const RangeVec& ranges) {
  for (AttrId a : query.ReferencedAttributes()) {
    if (IsFullRange(schema, ranges, a)) return false;
  }
  return true;
}

/// Acquisition order for generic (DNF) completion leaves: referenced
/// attributes, cheapest first, so early exits spend little.
std::vector<AttrId> GenericAcquireOrder(const Query& query,
                                        const Schema& schema) {
  std::vector<AttrId> order = query.ReferencedAttributes();
  std::stable_sort(order.begin(), order.end(), [&](AttrId a, AttrId b) {
    return schema.cost(a) < schema.cost(b);
  });
  return order;
}

/// A leaf that decides the query correctly from `ranges` onward, regardless
/// of any probability estimates. Used for branches with zero training mass:
/// they may still be reached by unseen test tuples and must not err.
std::unique_ptr<PlanNode> CorrectLeaf(const Query& query, const Schema& schema,
                                      const RangeVec& ranges) {
  const Truth t = query.EvaluateOnRanges(ranges);
  if (t != Truth::kUnknown) return PlanNode::Verdict(t == Truth::kTrue);
  if (query.IsConjunctive()) {
    return PlanNode::Sequential(
        UndeterminedPredicates(query.predicates(), ranges));
  }
  return PlanNode::Generic(query, GenericAcquireOrder(query, schema));
}

/// Expected cost of a generic acquire-and-test leaf under the estimator:
/// acquire attributes in order, charging marginal costs, stopping when
/// three-valued evaluation resolves the query.
double GenericLeafCost(const Query& query, const std::vector<AttrId>& order,
                       size_t k, const RangeVec& ranges,
                       CondProbEstimator& est,
                       const AcquisitionCostModel& cm) {
  if (query.EvaluateOnRanges(ranges) != Truth::kUnknown) return 0.0;
  if (k >= order.size()) return 0.0;
  const AttrId attr = order[k];
  const AttrSet acquired = AcquiredAttrs(est.schema(), ranges);
  double cost = acquired.Contains(attr) ? 0.0 : cm.Cost(attr, acquired);
  const Histogram h = est.Marginal(ranges, attr);
  if (h.total() <= 0) return 0.0;
  for (Value v = ranges[attr].lo; v <= ranges[attr].hi; ++v) {
    const double p = h.Count(v) / h.total();
    if (p > 0) {
      cost += p * GenericLeafCost(query, order, k + 1,
                                  Refined(ranges, attr, ValueRange{v, v}),
                                  est, cm);
    }
  }
  return cost;
}

}  // namespace

std::pair<double, std::unique_ptr<PlanNode>> ExhaustivePlanner::CompletionLeaf(
    const Query& query, const RangeVec& ranges) const {
  if (query.IsConjunctive()) {
    const size_t m =
        UndeterminedPredicates(query.predicates(), ranges).size();
    if (m <= 14) {
      SequentialLeaf leaf = SolveSequentialLeaf(query, ranges, estimator_,
                                                cost_model_, optseq_);
      return {leaf.expected_cost, std::move(leaf.leaf)};
    }
    GreedySeqSolver greedy;
    SequentialLeaf leaf =
        SolveSequentialLeaf(query, ranges, estimator_, cost_model_, greedy);
    return {leaf.expected_cost, std::move(leaf.leaf)};
  }
  std::vector<AttrId> order = GenericAcquireOrder(query, estimator_.schema());
  const double cost = GenericLeafCost(query, order, 0, ranges, estimator_,
                                      cost_model_);
  return {cost, PlanNode::Generic(query, std::move(order))};
}

std::pair<double, std::unique_ptr<PlanNode>> ExhaustivePlanner::Solve(
    const Query& query, const RangeVec& ranges, BuildContext& ctx) const {
  const Schema& schema = estimator_.schema();

  // Base case 1: ranges determine the truth of the WHERE clause.
  const Truth truth = query.EvaluateOnRanges(ranges);
  if (truth != Truth::kUnknown) {
    return {0.0, PlanNode::Verdict(truth == Truth::kTrue)};
  }
  // Base case 2: every query attribute acquired; residual tests are free.
  if (AllQueryAttrsAcquired(query, schema, ranges)) {
    return {0.0, CorrectLeaf(query, schema, ranges)};
  }

  if (auto it = ctx.cache.find(ranges); it != ctx.cache.end()) {
    ++ctx.stats.cache_hits;
    return {it->second.cost, it->second.node->Clone()};
  }
  ++ctx.stats.subproblems_solved;
  CAQP_CHECK_LE(ctx.stats.subproblems_solved, options_.max_subproblems);

  double cmin = kInf;
  std::unique_ptr<PlanNode> best;

  // Candidate 0: finish with the optimal sequential completion (see header).
  {
    auto [cost, node] = CompletionLeaf(query, ranges);
    if (cost < cmin) {
      cmin = cost;
      best = std::move(node);
    }
  }

  const AttrSet acquired = AcquiredAttrs(schema, ranges);
  const size_t n = schema.num_attributes();
  for (size_t ai = 0; ai < n; ++ai) {
    const AttrId attr = static_cast<AttrId>(ai);
    const ValueRange r = ranges[attr];
    if (r.Width() <= 1) continue;  // Nothing left to split.

    const double observe =
        acquired.Contains(attr) ? 0.0 : cost_model_.Cost(attr, acquired);
    if (observe >= cmin) {
      ++ctx.stats.observe_prunes;
      continue;
    }

    const Histogram h = estimator_.Marginal(ranges, attr);
    if (h.total() <= 0) continue;  // Unreachable; completion leaf covers it.

    for (Value x : options_.split_points->PointsFor(attr)) {
      if (x <= r.lo || x > r.hi) continue;
      ++ctx.stats.candidates_tried;

      const ValueRange lt_r{r.lo, static_cast<Value>(x - 1)};
      const ValueRange ge_r{x, r.hi};
      const double p_lt = h.RangeCount(lt_r) / h.total();
      const double p_ge = 1.0 - p_lt;

      double acc = observe;
      std::unique_ptr<PlanNode> lt_node, ge_node;

      const RangeVec lt_ranges = Refined(ranges, attr, lt_r);
      if (p_lt > 0) {
        ScopedEstimatorScope scope(estimator_, lt_ranges);
        auto [cost, node] = Solve(query, lt_ranges, ctx);
        acc += p_lt * cost;
        lt_node = std::move(node);
      } else {
        lt_node = CorrectLeaf(query, schema, lt_ranges);
      }
      // Exact child costs make abandoning a partially-costed candidate safe.
      if (acc >= cmin) {
        ++ctx.stats.candidate_abandons;
        continue;
      }

      const RangeVec ge_ranges = Refined(ranges, attr, ge_r);
      if (p_ge > 0) {
        ScopedEstimatorScope scope(estimator_, ge_ranges);
        auto [cost, node] = Solve(query, ge_ranges, ctx);
        acc += p_ge * cost;
        ge_node = std::move(node);
      } else {
        ge_node = CorrectLeaf(query, schema, ge_ranges);
      }

      if (acc < cmin) {
        cmin = acc;
        best = PlanNode::Split(attr, x, std::move(lt_node),
                               std::move(ge_node));
      }
    }
  }

  // The completion leaf always yields a finite candidate, so `best` exists.
  CAQP_CHECK(best != nullptr);
  CacheEntry& entry = ctx.cache[ranges];
  entry.cost = cmin;
  entry.node = best->Clone();
  return {cmin, std::move(best)};
}

Plan ExhaustivePlanner::BuildPlanImpl(const Query& query,
                                      obs::PlannerStats& stats) const {
  CAQP_CHECK(query.ValidFor(estimator_.schema()));
  BuildContext ctx;
  auto [cost, node] = Solve(query, estimator_.schema().FullRanges(), ctx);
  CAQP_CHECK(node != nullptr);
  stats.memo_hits = ctx.stats.cache_hits;
  stats.memo_misses = ctx.stats.subproblems_solved;
  stats.bound_prunes =
      ctx.stats.observe_prunes + ctx.stats.candidate_abandons;
  stats.candidates_tried = ctx.stats.candidates_tried;
  stats.expected_cost = cost;
  {
    std::lock_guard<std::mutex> lock(diag_mu_);
    stats_ = ctx.stats;
    last_cost_ = cost;
  }
  return Plan(std::move(node));
}

}  // namespace caqp
