#include "opt/exhaustive.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "opt/greedyseq.h"

namespace caqp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kNoNode = 0xffffffffu;

/// True iff every attribute referenced by the query has been acquired
/// (range narrowed) -- the second base case of Figure 5: all remaining tests
/// are free, so the completion cost is 0.
bool AllQueryAttrsAcquired(const Query& query, const Schema& schema,
                           const RangeVec& ranges) {
  for (AttrId a : query.ReferencedAttributes()) {
    if (IsFullRange(schema, ranges, a)) return false;
  }
  return true;
}

/// Acquisition order for generic (DNF) completion leaves: referenced
/// attributes, cheapest first, so early exits spend little.
std::vector<AttrId> GenericAcquireOrder(const Query& query,
                                        const Schema& schema) {
  std::vector<AttrId> order = query.ReferencedAttributes();
  std::stable_sort(order.begin(), order.end(), [&](AttrId a, AttrId b) {
    return schema.cost(a) < schema.cost(b);
  });
  return order;
}

/// Expected cost of a generic acquire-and-test leaf under the estimator:
/// acquire attributes in order, charging marginal costs, stopping when
/// three-valued evaluation resolves the query.
double GenericLeafCost(const Query& query, const std::vector<AttrId>& order,
                       size_t k, const RangeVec& ranges,
                       CondProbEstimator& est,
                       const AcquisitionCostModel& cm) {
  if (query.EvaluateOnRanges(ranges) != Truth::kUnknown) return 0.0;
  if (k >= order.size()) return 0.0;
  const AttrId attr = order[k];
  const AttrSet acquired = AcquiredAttrs(est.schema(), ranges);
  double cost = acquired.Contains(attr) ? 0.0 : cm.Cost(attr, acquired);
  const Histogram h = est.Marginal(ranges, attr);
  if (h.total() <= 0) return 0.0;
  for (Value v = ranges[attr].lo; v <= ranges[attr].hi; ++v) {
    const double p = h.Count(v) / h.total();
    if (p > 0) {
      cost += p * GenericLeafCost(query, order, k + 1,
                                  Refined(ranges, attr, ValueRange{v, v}),
                                  est, cm);
    }
  }
  return cost;
}

/// DP-internal plan node: PlanNode's payload with uint32 child handles into
/// the arena instead of owning pointers. Generic leaves don't store their
/// residual query -- it is always the query being planned.
struct ArenaNode {
  PlanNode::Kind kind = PlanNode::Kind::kVerdict;
  bool verdict = false;
  AttrId attr = 0;
  Value split_value = 0;
  uint32_t lt = kNoNode;
  uint32_t ge = kNoNode;
  std::vector<Predicate> sequence;
  std::vector<AttrId> acquire_order;
};

struct SplitKey {
  AttrId attr;
  Value x;
  uint32_t lt;
  uint32_t ge;
  bool operator==(const SplitKey&) const = default;
};

struct SplitKeyHash {
  size_t operator()(const SplitKey& k) const {
    size_t h = HashCombine(k.attr, k.x);
    h = HashCombine(h, k.lt);
    return HashCombine(h, k.ge);
  }
};

}  // namespace

struct ExhaustivePlanner::BuildContext {
  struct CacheEntry {
    double cost = 0.0;
    uint32_t node = kNoNode;
  };

  std::unordered_map<RangeVec, CacheEntry, RangeVectorHash> cache;
  std::vector<ArenaNode> arena;
  /// Interners: identical splits/verdicts share one arena node, so the DAG
  /// the DP builds stays proportional to the number of distinct subplans.
  std::unordered_map<SplitKey, uint32_t, SplitKeyHash> split_intern;
  uint32_t verdicts[2] = {kNoNode, kNoNode};
  Stats stats;

  uint32_t Verdict(bool v) {
    uint32_t& h = verdicts[v ? 1 : 0];
    if (h == kNoNode) {
      h = static_cast<uint32_t>(arena.size());
      ArenaNode n;
      n.kind = PlanNode::Kind::kVerdict;
      n.verdict = v;
      arena.push_back(std::move(n));
    }
    return h;
  }

  uint32_t Sequential(std::vector<Predicate> seq) {
    ArenaNode n;
    n.kind = PlanNode::Kind::kSequential;
    n.sequence = std::move(seq);
    arena.push_back(std::move(n));
    return static_cast<uint32_t>(arena.size() - 1);
  }

  uint32_t Generic(std::vector<AttrId> order) {
    ArenaNode n;
    n.kind = PlanNode::Kind::kGeneric;
    n.acquire_order = std::move(order);
    arena.push_back(std::move(n));
    return static_cast<uint32_t>(arena.size() - 1);
  }

  uint32_t Split(AttrId attr, Value x, uint32_t lt, uint32_t ge) {
    const SplitKey key{attr, x, lt, ge};
    if (auto it = split_intern.find(key); it != split_intern.end()) {
      return it->second;
    }
    ArenaNode n;
    n.kind = PlanNode::Kind::kSplit;
    n.attr = attr;
    n.split_value = x;
    n.lt = lt;
    n.ge = ge;
    arena.push_back(std::move(n));
    const uint32_t h = static_cast<uint32_t>(arena.size() - 1);
    split_intern.emplace(key, h);
    return h;
  }

  /// Absorbs an externally-built leaf (e.g. from SolveSequentialLeaf) into
  /// the arena. Leaves only; the DP never produces external subtrees.
  uint32_t Absorb(const PlanNode& n) {
    switch (n.kind) {
      case PlanNode::Kind::kVerdict:
        return Verdict(n.verdict);
      case PlanNode::Kind::kSequential:
        return Sequential(n.sequence);
      case PlanNode::Kind::kGeneric:
        return Generic(n.acquire_order);
      case PlanNode::Kind::kSplit:
        return Split(n.attr, n.split_value, Absorb(*n.lt), Absorb(*n.ge));
    }
    CAQP_CHECK(false);
    return kNoNode;
  }

  /// Reconstructs the pointer tree for a handle. Interned (shared) arena
  /// nodes expand to independent subtrees, matching what the pre-arena DP
  /// produced via deep clones -- but only once, for the winning root.
  std::unique_ptr<PlanNode> Materialize(uint32_t h, const Query& query) const {
    const ArenaNode& n = arena[h];
    switch (n.kind) {
      case PlanNode::Kind::kVerdict:
        return PlanNode::Verdict(n.verdict);
      case PlanNode::Kind::kSequential:
        return PlanNode::Sequential(n.sequence);
      case PlanNode::Kind::kGeneric:
        return PlanNode::Generic(query, n.acquire_order);
      case PlanNode::Kind::kSplit:
        return PlanNode::Split(n.attr, n.split_value,
                               Materialize(n.lt, query),
                               Materialize(n.ge, query));
    }
    CAQP_CHECK(false);
    return nullptr;
  }

  /// A leaf that decides the query correctly from `ranges` onward,
  /// regardless of any probability estimates. Used for branches with zero
  /// training mass: they may still be reached by unseen test tuples and
  /// must not err.
  uint32_t CorrectLeaf(const Query& query, const Schema& schema,
                       const RangeVec& ranges) {
    const Truth t = query.EvaluateOnRanges(ranges);
    if (t != Truth::kUnknown) return Verdict(t == Truth::kTrue);
    if (query.IsConjunctive()) {
      return Sequential(UndeterminedPredicates(query.predicates(), ranges));
    }
    return Generic(GenericAcquireOrder(query, schema));
  }
};

std::pair<double, uint32_t> ExhaustivePlanner::CompletionLeaf(
    const Query& query, const RangeVec& ranges, BuildContext& ctx) const {
  if (query.IsConjunctive()) {
    const size_t m =
        UndeterminedPredicates(query.predicates(), ranges).size();
    if (m <= 14) {
      SequentialLeaf leaf = SolveSequentialLeaf(query, ranges, estimator_,
                                                cost_model_, optseq_);
      return {leaf.expected_cost, ctx.Absorb(*leaf.leaf)};
    }
    GreedySeqSolver greedy;
    SequentialLeaf leaf =
        SolveSequentialLeaf(query, ranges, estimator_, cost_model_, greedy);
    return {leaf.expected_cost, ctx.Absorb(*leaf.leaf)};
  }
  std::vector<AttrId> order = GenericAcquireOrder(query, estimator_.schema());
  const double cost = GenericLeafCost(query, order, 0, ranges, estimator_,
                                      cost_model_);
  return {cost, ctx.Generic(std::move(order))};
}

std::pair<double, uint32_t> ExhaustivePlanner::Solve(const Query& query,
                                                     const RangeVec& ranges,
                                                     BuildContext& ctx) const {
  const Schema& schema = estimator_.schema();

  // Base case 1: ranges determine the truth of the WHERE clause.
  const Truth truth = query.EvaluateOnRanges(ranges);
  if (truth != Truth::kUnknown) {
    return {0.0, ctx.Verdict(truth == Truth::kTrue)};
  }
  // Base case 2: every query attribute acquired; residual tests are free.
  if (AllQueryAttrsAcquired(query, schema, ranges)) {
    return {0.0, ctx.CorrectLeaf(query, schema, ranges)};
  }

  if (auto it = ctx.cache.find(ranges); it != ctx.cache.end()) {
    ++ctx.stats.cache_hits;
    return {it->second.cost, it->second.node};
  }
  ++ctx.stats.subproblems_solved;
  CAQP_CHECK_LE(ctx.stats.subproblems_solved, options_.max_subproblems);

  double cmin = kInf;
  uint32_t best = kNoNode;

  // Candidate 0: finish with the optimal sequential completion (see header).
  {
    auto [cost, node] = CompletionLeaf(query, ranges, ctx);
    if (cost < cmin) {
      cmin = cost;
      best = node;
    }
  }

  const AttrSet acquired = AcquiredAttrs(schema, ranges);
  const size_t n = schema.num_attributes();
  for (size_t ai = 0; ai < n; ++ai) {
    const AttrId attr = static_cast<AttrId>(ai);
    const ValueRange r = ranges[attr];
    if (r.Width() <= 1) continue;  // Nothing left to split.

    const double observe =
        acquired.Contains(attr) ? 0.0 : cost_model_.Cost(attr, acquired);
    if (observe >= cmin) {
      ++ctx.stats.observe_prunes;
      continue;
    }

    const Histogram h = estimator_.Marginal(ranges, attr);
    if (h.total() <= 0) continue;  // Unreachable; completion leaf covers it.

    for (Value x : options_.split_points->PointsFor(attr)) {
      if (x <= r.lo || x > r.hi) continue;
      ++ctx.stats.candidates_tried;

      const ValueRange lt_r{r.lo, static_cast<Value>(x - 1)};
      const ValueRange ge_r{x, r.hi};
      const double p_lt = h.RangeCount(lt_r) / h.total();
      const double p_ge = 1.0 - p_lt;

      double acc = observe;
      uint32_t lt_node = kNoNode, ge_node = kNoNode;

      const RangeVec lt_ranges = Refined(ranges, attr, lt_r);
      if (p_lt > 0) {
        ScopedEstimatorScope scope(estimator_, lt_ranges);
        auto [cost, node] = Solve(query, lt_ranges, ctx);
        acc += p_lt * cost;
        lt_node = node;
      } else {
        lt_node = ctx.CorrectLeaf(query, schema, lt_ranges);
      }
      // Exact child costs make abandoning a partially-costed candidate safe.
      if (acc >= cmin) {
        ++ctx.stats.candidate_abandons;
        continue;
      }

      const RangeVec ge_ranges = Refined(ranges, attr, ge_r);
      if (p_ge > 0) {
        ScopedEstimatorScope scope(estimator_, ge_ranges);
        auto [cost, node] = Solve(query, ge_ranges, ctx);
        acc += p_ge * cost;
        ge_node = node;
      } else {
        ge_node = ctx.CorrectLeaf(query, schema, ge_ranges);
      }

      if (acc < cmin) {
        cmin = acc;
        best = ctx.Split(attr, x, lt_node, ge_node);
      }
    }
  }

  // The completion leaf always yields a finite candidate, so `best` exists.
  CAQP_CHECK(best != kNoNode);
  ctx.cache[ranges] = BuildContext::CacheEntry{cmin, best};
  return {cmin, best};
}

Plan ExhaustivePlanner::BuildPlanImpl(const Query& query,
                                      obs::PlannerStats& stats) const {
  CAQP_CHECK(query.ValidFor(estimator_.schema()));
  BuildContext ctx;
  auto [cost, root] = Solve(query, estimator_.schema().FullRanges(), ctx);
  CAQP_CHECK(root != kNoNode);
  std::unique_ptr<PlanNode> node = ctx.Materialize(root, query);
  stats.memo_hits = ctx.stats.cache_hits;
  stats.memo_misses = ctx.stats.subproblems_solved;
  stats.bound_prunes =
      ctx.stats.observe_prunes + ctx.stats.candidate_abandons;
  stats.candidates_tried = ctx.stats.candidates_tried;
  stats.expected_cost = cost;
  {
    std::lock_guard<std::mutex> lock(diag_mu_);
    stats_ = ctx.stats;
    last_cost_ = cost;
  }
  return Plan(std::move(node));
}

}  // namespace caqp
