// Minmax-regret planning over an uncertainty box (opt/uncertainty.h).
//
// The regret of a plan P at a scenario s of the box is
//     regret(P, s) = ScenarioPlanCost(P, s) - min_Q ScenarioPlanCost(Q, s)
// where Q ranges over the candidate plan set; RegretPlanner picks the
// candidate minimizing max_s regret(P, s) over the box's corner scenarios
// (Alyoubi/Helmer/Wood, arXiv 1507.08257, applied to acquisitional
// conditional plans). Minmax regret — rather than plain minmax cost — is
// what keeps the robust plan competitive on *every* scenario instead of
// hedging only against the single most expensive corner.
//
// Candidate set: the wrapped point planner's plan (always candidate 0, and
// the tie-break winner, so a degenerate box reproduces the point plan
// bit-identically) plus, for conjunctive queries, sequential orderings of
// the query's predicates — all n! of them when n is small, otherwise the
// per-scenario greedy orderings (rank by shifted cost / (1 - p'), the
// classic selectivity-ordering rule evaluated at each corner). Conditional
// plans from the point planner keep their splits; the ordering candidates
// give the regret sweep the alternatives a drifted world makes attractive.
//
// Falls back to the point planner verbatim when the box is degenerate or
// the query is not conjunctive.

#ifndef CAQP_OPT_REGRET_H_
#define CAQP_OPT_REGRET_H_

#include <functional>
#include <vector>

#include "opt/planner.h"
#include "opt/uncertainty.h"

namespace caqp {
namespace opt {

class RegretPlanner : public Planner {
 public:
  struct Options {
    /// Point-estimate planner supplying candidate 0 and the degenerate-box
    /// fallback. Required; must outlive this planner and share its
    /// estimator's thread-safety story (opt/planner.h).
    const Planner* point_planner = nullptr;
    /// The uncertainty box to plan under when no provider is set.
    UncertaintyBox box;
    /// When set, called once per BuildPlan to fetch the current box
    /// (overrides `box`). Lets serve workers follow a SharedUncertaintyBox
    /// the drift loop widens at runtime.
    std::function<UncertaintyBox()> box_provider;
    /// Corner-scenario budget per build (see CornerScenarios).
    size_t max_scenarios = 64;
    /// Enumerate all n! orderings while the conjunctive query has at most
    /// this many predicates; above it, only per-scenario greedy orderings.
    size_t max_enumerated_predicates = 6;
  };

  struct Stats {
    size_t scenarios = 0;           ///< corner scenarios priced
    size_t candidates = 0;          ///< candidate plans costed
    double worst_case_regret = 0.0; ///< max-regret of the chosen plan
    double point_plan_regret = 0.0; ///< max-regret of candidate 0
    bool degenerate_fallback = false; ///< true when the box was degenerate
  };

  RegretPlanner(CondProbEstimator& estimator,
                const AcquisitionCostModel& cost_model, Options options)
      : estimator_(estimator), cost_model_(cost_model),
        options_(std::move(options)) {
    CAQP_CHECK(options_.point_planner != nullptr);
  }

  std::string Name() const override { return "Regret"; }
  CondProbEstimator* estimator() const override { return &estimator_; }

  /// Worst-case regret of the last built plan over the box's corners (0 on
  /// the degenerate-fallback path). See opt/planner.h for when diagnostics
  /// may be read.
  double LastWorstCaseRegret() const { return stats_.worst_case_regret; }
  const Stats& stats() const { return stats_; }

 protected:
  Plan BuildPlanImpl(const Query& query,
                     obs::PlannerStats& stats) const override;

 private:
  CondProbEstimator& estimator_;
  const AcquisitionCostModel& cost_model_;
  Options options_;
  /// Most-recent-build diagnostics, committed under Planner::diag_mu_.
  mutable Stats stats_;
};

/// The candidate set RegretPlanner sweeps, exposed so bench_regret can
/// score other planners' plans against the same reference set. `point_plan`
/// (cloned as candidate 0 when non-null) plus sequential orderings of the
/// query's predicates: all permutations when there are at most
/// `max_enumerated` predicates, else the deduped per-scenario greedy
/// orderings. Non-conjunctive queries yield only the point plan.
std::vector<Plan> RegretCandidatePlans(const Query& query,
                                       CondProbEstimator& estimator,
                                       const AcquisitionCostModel& cost_model,
                                       const std::vector<CostScenario>& scenarios,
                                       const Plan* point_plan,
                                       size_t max_enumerated = 6);

}  // namespace opt
}  // namespace caqp

#endif  // CAQP_OPT_REGRET_H_
