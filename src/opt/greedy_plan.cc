#include "opt/greedy_plan.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "plan/plan_serde.h"

namespace caqp {

struct GreedyPlanner::GNode {
  RangeVec ranges;
  double reach_prob = 1.0;

  // Leaf state: either the subproblem is determined, or a sequential base
  // plan over the undetermined predicates.
  bool determined = false;
  bool verdict = false;
  std::vector<Predicate> preds;        // undetermined predicates here
  MaskDistribution masks;              // their joint, conditioned on ranges
  double seq_cost = 0.0;               // expected cost of the base plan
  std::vector<Predicate> seq_order;    // base plan evaluation order

  // Locally optimal split (Figure 6) once GreedySplit has run.
  bool has_split = false;
  AttrId split_attr = kInvalidAttr;
  Value split_x = 0;
  double split_observe = 0.0;  // acquisition cost paid at the split node
  double split_p_lt = 0.0;     // P(X < x | ranges)
  double split_cost = 0.0;     // Equation (6) value
  std::unique_ptr<GNode> lt, ge;

  bool expanded = false;
};

namespace {

/// Re-indexes a mask distribution onto the predicate subset `keep` (bit k of
/// the result is predicate keep[k] of the original).
MaskDistribution ProjectMasks(const MaskDistribution& dist,
                              const std::vector<size_t>& keep) {
  MaskDistribution out;
  for (const auto& [mask, w] : dist.entries()) {
    uint64_t projected = 0;
    for (size_t k = 0; k < keep.size(); ++k) {
      if ((mask >> keep[k]) & 1) projected |= uint64_t{1} << k;
    }
    out.Add(projected, w);
  }
  out.Aggregate();
  return out;
}

MaskDistribution FromMap(const std::unordered_map<uint64_t, double>& map) {
  MaskDistribution out;
  for (const auto& [mask, w] : map) {
    if (w > 1e-12) out.Add(mask, w);
  }
  out.Aggregate();
  return out;
}

}  // namespace

void GreedyPlanner::SolveLeafState(GNode* node, const MaskDistribution& masks,
                                   Stats& stats) const {
  node->masks = masks;
  if (node->determined || node->preds.empty()) {
    node->seq_cost = 0.0;
    return;
  }
  SeqProblem prob;
  prob.preds = node->preds;
  prob.masks = &node->masks;
  prob.cost = MakeSeqCostFn(estimator_.schema(), cost_model_, node->ranges,
                            node->preds);
  ++stats.seq_solves;
  const SeqSolution sol = options_.seq_solver->Solve(prob);
  node->seq_cost = sol.expected_cost;
  node->seq_order = sol.OrderedPredicates(prob);
}

// Builds a child GNode for `parent` with attribute `attr` narrowed to
// `child_range`; `child_masks` is the parent-predicate-indexed joint
// restricted to the child. Returns the node with its undetermined predicates
// selected; the caller solves the base plan.
std::unique_ptr<GreedyPlanner::GNode> GreedyPlanner::MakeChildShell(
    const GNode& parent, AttrId attr, ValueRange child_range,
    const MaskDistribution& child_masks, MaskDistribution* projected_out) {
  auto child = std::make_unique<GreedyPlanner::GNode>();
  child->ranges = Refined(parent.ranges, attr, child_range);

  std::vector<size_t> keep;
  bool any_false = false;
  for (size_t j = 0; j < parent.preds.size(); ++j) {
    const Predicate& p = parent.preds[j];
    const Truth t = p.EvaluateOnRange(child->ranges[p.attr]);
    if (t == Truth::kFalse) {
      any_false = true;
      break;
    }
    if (t == Truth::kUnknown) keep.push_back(j);
  }
  if (any_false) {
    child->determined = true;
    child->verdict = false;
    return child;
  }
  if (keep.empty()) {
    child->determined = true;
    child->verdict = true;
    return child;
  }
  child->preds.reserve(keep.size());
  for (size_t j : keep) child->preds.push_back(parent.preds[j]);
  *projected_out = ProjectMasks(child_masks, keep);
  return child;
}

size_t GreedyPlanner::LeafBytes(const GNode& node) {
  std::unique_ptr<PlanNode> leaf =
      node.determined ? PlanNode::Verdict(node.verdict)
                      : PlanNode::Sequential(node.seq_order);
  return PlanSizeBytes(Plan(std::move(leaf)));
}

void GreedyPlanner::GreedySplit(GNode* node, Stats& stats) const {
  node->has_split = false;
  if (node->determined || node->preds.empty()) return;
  if (node->masks.total() <= 0) return;  // No training mass: keep the leaf.
  ++stats.split_searches;

  ScopedEstimatorScope scope(estimator_, node->ranges);
  const Schema& schema = estimator_.schema();
  const AttrSet acquired = AcquiredAttrs(schema, node->ranges);
  const double parent_total = node->masks.total();

  // A split is only worth keeping if it beats the sequential base plan.
  double cmin = node->seq_cost - options_.min_gain;

  for (size_t ai = 0; ai < schema.num_attributes(); ++ai) {
    const AttrId attr = static_cast<AttrId>(ai);
    const ValueRange r = node->ranges[attr];
    if (r.Width() <= 1) continue;

    const double observe =
        acquired.Contains(attr) ? 0.0 : cost_model_.Cost(attr, acquired);
    if (observe >= cmin) continue;

    const std::vector<Value>& pts = options_.split_points->PointsFor(attr);
    bool any_candidate = false;
    for (Value x : pts) {
      if (x > r.lo && x <= r.hi) {
        any_candidate = true;
        break;
      }
    }
    if (!any_candidate) continue;

    // Per-value predicate joints: one dataset pass per attribute, then each
    // candidate's "< x" side is an incremental prefix union (Section 5.2).
    const std::vector<MaskDistribution> per_value =
        estimator_.PerValuePredicateMasks(node->ranges, attr, node->preds);

    std::unordered_map<uint64_t, double> lt_map;
    double lt_total = 0.0;
    Value cursor = r.lo;
    for (Value x : pts) {
      if (x <= r.lo || x > r.hi) continue;
      while (cursor < x) {
        for (const auto& [mask, w] : per_value[cursor - r.lo].entries()) {
          lt_map[mask] += w;
          lt_total += w;
        }
        ++cursor;
      }
      ++stats.candidates_tried;

      const double p_lt = lt_total / parent_total;
      const double p_ge = 1.0 - p_lt;

      const MaskDistribution lt_dist = FromMap(lt_map);
      // ">= x" side by subtraction from the parent joint (Eq. (7) analogue).
      std::unordered_map<uint64_t, double> ge_map;
      for (const auto& [mask, w] : node->masks.entries()) ge_map[mask] += w;
      for (const auto& [mask, w] : lt_map) ge_map[mask] -= w;
      const MaskDistribution ge_dist = FromMap(ge_map);

      MaskDistribution lt_proj;
      auto lt_child =
          MakeChildShell(*node, attr, ValueRange{r.lo, static_cast<Value>(x - 1)},
                         lt_dist, &lt_proj);
      SolveLeafState(lt_child.get(), lt_proj, stats);
      double cand = observe + p_lt * lt_child->seq_cost;
      if (cand >= cmin) continue;

      MaskDistribution ge_proj;
      auto ge_child = MakeChildShell(*node, attr, ValueRange{x, r.hi},
                                     ge_dist, &ge_proj);
      SolveLeafState(ge_child.get(), ge_proj, stats);
      cand += p_ge * ge_child->seq_cost;

      if (cand < cmin) {
        cmin = cand;
        node->has_split = true;
        node->split_attr = attr;
        node->split_x = x;
        node->split_observe = observe;
        node->split_p_lt = p_lt;
        node->split_cost = cand;
        node->lt = std::move(lt_child);
        node->ge = std::move(ge_child);
      }
    }
  }
}

std::unique_ptr<PlanNode> GreedyPlanner::Materialize(const GNode& node) const {
  if (node.expanded) {
    return PlanNode::Split(node.split_attr, node.split_x,
                           Materialize(*node.lt), Materialize(*node.ge));
  }
  if (node.determined) return PlanNode::Verdict(node.verdict);
  return PlanNode::Sequential(node.seq_order);
}

double GreedyPlanner::SubtreeExpectedCost(const GNode& node) const {
  if (!node.expanded) return node.determined ? 0.0 : node.seq_cost;
  return node.split_observe + node.split_p_lt * SubtreeExpectedCost(*node.lt) +
         (1.0 - node.split_p_lt) * SubtreeExpectedCost(*node.ge);
}

Plan GreedyPlanner::BuildPlanImpl(const Query& query,
                                  obs::PlannerStats& pstats) const {
  const Schema& schema = estimator_.schema();
  CAQP_CHECK(query.ValidFor(schema));
  CAQP_CHECK(query.IsConjunctive());
  Stats stats;

  auto root = std::make_unique<GNode>();
  root->ranges = schema.FullRanges();
  root->reach_prob = 1.0;

  const Truth truth = query.EvaluateOnRanges(root->ranges);
  if (truth != Truth::kUnknown) {
    std::lock_guard<std::mutex> lock(diag_mu_);
    stats_ = stats;
    last_cost_ = 0.0;
    return Plan(PlanNode::Verdict(truth == Truth::kTrue));
  }
  root->preds = UndeterminedPredicates(query.predicates(), root->ranges);
  SolveLeafState(root.get(),
                 estimator_.PredicateMasks(root->ranges, root->preds), stats);
  GreedySplit(root.get(), stats);

  struct QueueEntry {
    double priority;
    GNode* node;
    bool operator<(const QueueEntry& o) const {
      return priority < o.priority;
    }
  };
  std::priority_queue<QueueEntry> queue;
  auto maybe_enqueue = [&](GNode* n) {
    if (!n->has_split) return;
    const double gain = n->reach_prob * (n->seq_cost - n->split_cost);
    if (gain > options_.min_gain) {
      queue.push({gain, n});
      stats.queue_high_water = std::max(stats.queue_high_water, queue.size());
    }
  };
  maybe_enqueue(root.get());

  while (stats.splits_made < options_.max_splits && !queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    GNode* node = top.node;
    CAQP_CHECK(!node->expanded);

    if (options_.size_penalty_alpha > 0 || options_.max_plan_bytes > 0) {
      // Section 2.4: size-aware expansion. `delta` is the marginal
      // serialized cost of replacing this leaf with a split node.
      const size_t before = LeafBytes(*node);
      // kind + attr + value + ">="-child-index varints (flat wire format).
      const size_t split_header = 1 + 2 + 2 + 2;
      const size_t after =
          split_header + LeafBytes(*node->lt) + LeafBytes(*node->ge);
      const double delta =
          static_cast<double>(after) - static_cast<double>(before);
      if (options_.size_penalty_alpha > 0 &&
          top.priority <= options_.size_penalty_alpha * delta) {
        ++stats.expansions_skipped;
        continue;  // The saving does not cover shipping the bigger plan.
      }
      if (options_.max_plan_bytes > 0) {
        const size_t current = PlanSizeBytes(Plan(Materialize(*root)));
        if (current + static_cast<size_t>(std::max(0.0, delta)) >
            options_.max_plan_bytes) {
          ++stats.expansions_skipped;
          continue;  // Would no longer fit in device RAM.
        }
      }
    }

    node->expanded = true;
    if (stats.splits_made == 0) stats.benefit_first = top.priority;
    stats.benefit_last = top.priority;
    stats.benefit_total += top.priority;
    ++stats.splits_made;
    for (GNode* child : {node->lt.get(), node->ge.get()}) {
      child->reach_prob = estimator_.ReachProbability(child->ranges);
      GreedySplit(child, stats);
      maybe_enqueue(child);
    }
  }

  const double cost = SubtreeExpectedCost(*root);
  pstats.split_searches = stats.split_searches;
  pstats.splits_considered = stats.candidates_tried;
  pstats.splits_taken = stats.splits_made;
  pstats.queue_high_water = stats.queue_high_water;
  pstats.expansions_skipped = stats.expansions_skipped;
  pstats.benefit_first = stats.benefit_first;
  pstats.benefit_last = stats.benefit_last;
  pstats.benefit_total = stats.benefit_total;
  pstats.seq_solves = stats.seq_solves;
  pstats.expected_cost = cost;
  {
    std::lock_guard<std::mutex> lock(diag_mu_);
    stats_ = stats;
    last_cost_ = cost;
  }
  return Plan(Materialize(*root));
}

}  // namespace caqp
