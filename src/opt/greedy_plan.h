// GreedyPlan (paper Section 4.2, Figures 6-7): the polynomial-time heuristic
// conditional planner.
//
// GREEDYSPLIT finds, for a subproblem, the binary conditioning split
// T(X_i >= x) that minimizes
//     C'_i + P(< x) * SeqCost(subproblem_<) + P(>= x) * SeqCost(subproblem_>=)
// where SeqCost is the expected cost of the *sequential* base plan (OptSeq or
// GreedySeq) for each child. GREEDYPLAN grows the conditional plan leaf by
// leaf through a priority queue ordered by
//     P(reach leaf) * (SeqCost(leaf) - best split cost)
// until MAXSIZE splits are placed (the paper's plan-size bound for mote RAM),
// the queue is exhausted, or -- our Section 2.4 extension -- the expected
// gain of the best expansion no longer covers alpha * (marginal plan bytes).
//
// "Heuristic-k" in the paper's evaluation is this planner with max_splits=k;
// max_splits=0 degenerates to the sequential base plan (CorrSeq).

#ifndef CAQP_OPT_GREEDY_PLAN_H_
#define CAQP_OPT_GREEDY_PLAN_H_

#include <memory>

#include "opt/planner.h"
#include "opt/split_points.h"

namespace caqp {

class GreedyPlanner : public Planner {
 public:
  struct Options {
    /// Candidate conditioning points (SPSF restriction). Required.
    const SplitPointSet* split_points = nullptr;
    /// Base sequential planner used at every (sub)leaf. Required.
    const SequentialSolver* seq_solver = nullptr;
    /// Maximum number of conditioning splits (the paper's MAXSIZE).
    size_t max_splits = 5;
    /// Plan-size penalty (Section 2.4): expand a leaf only while
    /// expected_gain > size_penalty_alpha * marginal_serialized_bytes.
    /// 0 disables the size term.
    double size_penalty_alpha = 0.0;
    /// Hard bound on the serialized plan size (Section 2.4's "bound the
    /// plan size to be under some fixed size ... to easily fit into device
    /// RAM"). Expansions that would push zeta(P) past this are skipped.
    /// 0 disables the bound.
    size_t max_plan_bytes = 0;
    /// Minimum expected gain for a split to be adopted at all.
    double min_gain = 1e-9;
  };

  struct Stats {
    size_t splits_made = 0;      ///< splits adopted into the plan
    size_t split_searches = 0;   ///< GREEDYSPLIT invocations
    size_t candidates_tried = 0; ///< candidate splits costed
    size_t queue_high_water = 0; ///< max expansion-queue length observed
    /// Queue pops rejected by the size penalty or the hard byte bound.
    size_t expansions_skipped = 0;
    size_t seq_solves = 0;       ///< base sequential-plan solver calls
    double benefit_first = 0.0;  ///< expected gain of the first expansion
    double benefit_last = 0.0;   ///< expected gain of the last expansion
    double benefit_total = 0.0;  ///< summed expected gains of all expansions
  };

  GreedyPlanner(CondProbEstimator& estimator,
                const AcquisitionCostModel& cost_model, Options options)
      : estimator_(estimator), cost_model_(cost_model), options_(options) {
    CAQP_CHECK(options_.split_points != nullptr);
    CAQP_CHECK(options_.seq_solver != nullptr);
  }

  std::string Name() const override {
    return "Heuristic-" + std::to_string(options_.max_splits);
  }
  CondProbEstimator* estimator() const override { return &estimator_; }

  /// The Equation (6)-style expected cost of the last built plan under the
  /// training estimator. See opt/planner.h for when diagnostics may be read.
  double LastPlanCost() const { return last_cost_; }
  const Stats& stats() const { return stats_; }

 protected:
  /// Conjunctive queries only (sequential base plans are conjunctive).
  Plan BuildPlanImpl(const Query& query,
                     obs::PlannerStats& stats) const override;

 private:
  struct GNode;

  /// Fills node->split_* with the locally optimal binary split (Figure 6);
  /// leaves has_split=false if no split strictly improves on the leaf's
  /// sequential plan. `stats` is the per-build counter block.
  void GreedySplit(GNode* node, Stats& stats) const;

  /// Child subproblem shell for a candidate split: refined ranges, child
  /// predicate set, projected mask distribution (base plan still unsolved).
  static std::unique_ptr<GNode> MakeChildShell(const GNode& parent,
                                               AttrId attr,
                                               ValueRange child_range,
                                               const MaskDistribution& masks,
                                               MaskDistribution* projected);

  /// Serialized size of `node` if emitted as a plan leaf.
  static size_t LeafBytes(const GNode& node);

  /// Solves the sequential base plan for a child subproblem given its
  /// projected mask distribution.
  void SolveLeafState(GNode* node, const MaskDistribution& masks,
                      Stats& stats) const;

  std::unique_ptr<PlanNode> Materialize(const GNode& node) const;
  double SubtreeExpectedCost(const GNode& node) const;

  CondProbEstimator& estimator_;
  const AcquisitionCostModel& cost_model_;
  Options options_;
  /// Most-recent-build diagnostics, committed under Planner::diag_mu_.
  mutable Stats stats_;
  mutable double last_cost_ = 0.0;
};

}  // namespace caqp

#endif  // CAQP_OPT_GREEDY_PLAN_H_
