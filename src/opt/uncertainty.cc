#include "opt/uncertainty.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "fault/fault.h"
#include "obs/calibration.h"

namespace caqp {
namespace opt {

namespace {

double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

double Clamp01(double v) { return Clamp(v, 0.0, 1.0); }

/// Expected-attempts multiplier for a transient-failure rate f under
/// retry-until-success. Rates are clamped below 1 so a (mis)configured
/// box can never divide by zero.
double FaultMultiplier(double f) { return 1.0 / (1.0 - Clamp(f, 0.0, 0.99)); }

}  // namespace

UncertaintyBox UncertaintyBox::Uniform(double eps) {
  UncertaintyBox box;
  eps = Clamp01(eps);
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    box.shift_lo[a] = -eps;
    box.shift_hi[a] = eps;
  }
  return box;
}

UncertaintyBox UncertaintyBox::FromCalibration(
    const obs::CalibrationReport& report, double scale, double cap,
    uint64_t min_evals) {
  UncertaintyBox box;
  cap = Clamp01(cap);
  for (const obs::AttrCalibration& a : report.attrs) {
    if (a.attr == kInvalidAttr ||
        static_cast<size_t>(a.attr) >= kEstimateMaxAttrs) {
      continue;
    }
    if (a.evals < min_evals) continue;
    const double d = Clamp(scale * a.signed_drift(), -cap, cap);
    const size_t i = static_cast<size_t>(a.attr);
    // Directional: the interval spans from "no drift" to "exactly the drift
    // we measured", so the box hedges the move we observed without also
    // hedging the (unobserved) opposite move.
    box.shift_lo[i] = std::min(0.0, d);
    box.shift_hi[i] = std::max(0.0, d);
  }
  return box;
}

UncertaintyBox UncertaintyBox::FromFaultSpec(const FaultSpec& spec, double eps,
                                             double max_rate) {
  UncertaintyBox box;
  max_rate = Clamp(max_rate, 0.0, 0.99);
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    const double r = spec.TransientFor(static_cast<AttrId>(a));
    if (r <= 0.0 && eps <= 0.0) continue;
    box.fault_lo[a] = Clamp(r - eps, 0.0, max_rate);
    box.fault_hi[a] = Clamp(r + eps, 0.0, max_rate);
  }
  return box;
}

void UncertaintyBox::MergeFrom(const UncertaintyBox& other) {
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    shift_lo[a] = std::min(shift_lo[a], other.shift_lo[a]);
    shift_hi[a] = std::max(shift_hi[a], other.shift_hi[a]);
    fault_lo[a] = std::min(fault_lo[a], other.fault_lo[a]);
    fault_hi[a] = std::max(fault_hi[a], other.fault_hi[a]);
  }
}

double UncertaintyBox::max_width() const {
  double w = 0.0;
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    w = std::max(w, std::max(shift_width(a), fault_width(a)));
  }
  return w;
}

bool UncertaintyBox::degenerate(double tol) const {
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    if (std::abs(shift_lo[a]) > tol || std::abs(shift_hi[a]) > tol) {
      return false;
    }
    // A degenerate fault interval at a nonzero rate still perturbs costs
    // relative to the (fault-free) point estimates, so only zero counts.
    if (std::abs(fault_lo[a]) > tol || std::abs(fault_hi[a]) > tol) {
      return false;
    }
  }
  return true;
}

std::string UncertaintyBox::ToString() const {
  std::ostringstream out;
  bool any = false;
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    const bool has_shift = shift_lo[a] != 0.0 || shift_hi[a] != 0.0;
    const bool has_fault = fault_lo[a] != 0.0 || fault_hi[a] != 0.0;
    if (!has_shift && !has_fault) continue;
    if (any) out << " ";
    any = true;
    out << "a" << a << ":";
    if (has_shift) out << "shift[" << shift_lo[a] << "," << shift_hi[a] << "]";
    if (has_fault) out << "fault[" << fault_lo[a] << "," << fault_hi[a] << "]";
  }
  return any ? out.str() : "(point)";
}

std::vector<CostScenario> CornerScenarios(const UncertaintyBox& box,
                                          size_t max_scenarios) {
  constexpr double kTol = 1e-12;
  if (max_scenarios == 0) max_scenarios = 1;

  // Dimensions: attributes with a non-degenerate interval. Each dimension's
  // lo/hi choice moves the attribute's shift and fault ends together (the
  // standard corner coupling; shift-lo/fault-hi mixed corners are covered
  // well enough by the per-attribute flips for regret ranking).
  std::vector<size_t> dims;
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    if (box.shift_width(a) > kTol || box.fault_width(a) > kTol) {
      dims.push_back(a);
    }
  }

  CostScenario nominal;
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    nominal.shift[a] = Clamp(0.0, box.shift_lo[a], box.shift_hi[a]);
    nominal.fault[a] = box.fault_lo[a];
  }
  std::vector<CostScenario> out;
  out.push_back(nominal);
  if (dims.empty()) return out;

  const auto corner = [&](uint64_t bits) {
    CostScenario s = nominal;
    for (size_t d = 0; d < dims.size(); ++d) {
      const size_t a = dims[d];
      const bool hi = (bits >> d) & 1;
      s.shift[a] = hi ? box.shift_hi[a] : box.shift_lo[a];
      s.fault[a] = hi ? box.fault_hi[a] : box.fault_lo[a];
    }
    return s;
  };

  std::vector<uint64_t> picked;
  const auto add = [&](uint64_t bits) {
    if (out.size() >= max_scenarios) return;
    if (std::find(picked.begin(), picked.end(), bits) != picked.end()) return;
    picked.push_back(bits);
    out.push_back(corner(bits));
  };

  const size_t k = dims.size();
  if (k < 64 && (uint64_t{1} << k) <= max_scenarios) {
    for (uint64_t bits = 0; bits < (uint64_t{1} << k); ++bits) add(bits);
    return out;
  }
  // Too many corners: extremes first, then single flips off each extreme,
  // then a Gray-code sweep for whatever budget remains. Deterministic, so
  // two evaluations of the same box always price the same scenario set.
  const uint64_t all =
      k >= 64 ? ~uint64_t{0} : ((uint64_t{1} << k) - 1);
  add(0);
  add(all);
  for (size_t d = 0; d < k && out.size() < max_scenarios; ++d) {
    add(uint64_t{1} << d);
    add(all ^ (uint64_t{1} << d));
  }
  for (uint64_t i = 0; out.size() < max_scenarios; ++i) {
    add((i ^ (i >> 1)) & all);  // Gray code
    if (i == all) break;
  }
  return out;
}

namespace {

/// ExpectedCoster (plan/plan_cost.cc) with the scenario's perturbations:
/// pass probabilities shifted additively per attribute and acquisition
/// costs multiplied by the retry factor of the scenario's fault rate. Keep
/// the recursion structure (incl. degenerate-split routing and
/// zero-probability pruning) in lockstep with plan_cost.cc so a zero
/// scenario is bit-for-bit ExpectedPlanCost.
class ScenarioCoster {
 public:
  ScenarioCoster(const CompiledPlan& plan, CondProbEstimator& est,
                 const AcquisitionCostModel& cm, const CostScenario& scenario)
      : plan_(plan),
        est_(est),
        cm_(cm),
        scenario_(scenario),
        schema_(est.schema()) {}

  double Cost(uint32_t index, const RangeVec& ranges) {
    const CompiledPlan::Node& node = plan_.node(index);
    switch (node.kind) {
      case CompiledPlan::Kind::kVerdict:
        return 0.0;
      case CompiledPlan::Kind::kSequential:
        return SequentialCost(plan_.sequence(node), ranges);
      case CompiledPlan::Kind::kGeneric:
        return GenericCost(node, 0, ranges);
      case CompiledPlan::Kind::kSplit:
        break;
    }
    const AttrSet acquired = AcquiredAttrs(schema_, ranges);
    const double observe =
        acquired.Contains(node.attr) ? 0.0 : Charge(node.attr, acquired);
    const ValueRange r = ranges[node.attr];
    if (node.split_value <= r.lo) return observe + Cost(node.a, ranges);
    if (node.split_value > r.hi) {
      return observe + Cost(CompiledPlan::LtChild(index), ranges);
    }

    const ValueRange lt_r{r.lo, static_cast<Value>(node.split_value - 1)};
    const ValueRange ge_r{node.split_value, r.hi};
    // The split's "pass" is the >= branch (plan_estimates.h semantics), so
    // the shift perturbs p_ge and p_lt follows as its complement.
    const double p_lt = est_.RangeProbability(ranges, node.attr, lt_r);
    const double p_ge =
        Clamp01(1.0 - p_lt + scenario_.shift[node.attr]);
    const double p_lt_s = 1.0 - p_ge;
    double cost = observe;
    if (p_lt_s > 0) {
      cost += p_lt_s * Cost(CompiledPlan::LtChild(index),
                            Refined(ranges, node.attr, lt_r));
    }
    if (p_ge > 0) {
      cost += p_ge * Cost(node.a, Refined(ranges, node.attr, ge_r));
    }
    return cost;
  }

 private:
  double Charge(AttrId attr, const AttrSet& acquired) const {
    return cm_.Cost(attr, acquired) * FaultMultiplier(scenario_.fault[attr]);
  }

  double SequentialCost(std::span<const Predicate> seq,
                        const RangeVec& ranges) {
    if (seq.empty()) return 0.0;
    const std::vector<Predicate> preds(seq.begin(), seq.end());
    const MaskDistribution masks = est_.PredicateMasks(ranges, preds);
    if (masks.total() <= 0) return 0.0;
    AttrSet acquired = AcquiredAttrs(schema_, ranges);
    double cost = 0.0;
    double reach = 1.0;  // shifted P(all predicates so far passed)
    double point_prefix_mass = masks.total();
    uint64_t prefix = 0;
    for (size_t i = 0; i < seq.size(); ++i) {
      if (reach <= 0 || point_prefix_mass <= 0) break;
      const AttrId a = seq[i].attr;
      if (!acquired.Contains(a)) {
        cost += reach * Charge(a, acquired);
        acquired.Insert(a);
      }
      // Point conditional pass probability of predicate i given the prefix
      // passed, then shifted by the attribute's scenario shift; the chain
      // of shifted conditionals replaces plan_cost.cc's mass quotient.
      prefix |= uint64_t{1} << i;
      const double next_mass = masks.MassAllTrue(prefix);
      const double p_point = next_mass / point_prefix_mass;
      reach *= Clamp01(p_point + scenario_.shift[a]);
      point_prefix_mass = next_mass;
    }
    return cost;
  }

  double GenericCost(const CompiledPlan::Node& node, size_t k,
                     const RangeVec& ranges) {
    const Query& query = plan_.residual_query(node);
    if (query.EvaluateOnRanges(ranges) != Truth::kUnknown) {
      return 0.0;
    }
    const std::span<const AttrId> order = plan_.acquire_order(node);
    if (k >= order.size()) return 0.0;
    const AttrId attr = order[k];
    const AttrSet acquired = AcquiredAttrs(schema_, ranges);
    double cost = acquired.Contains(attr) ? 0.0 : Charge(attr, acquired);
    const Histogram h = est_.Marginal(ranges, attr);
    if (h.total() <= 0) return 0.0;
    for (Value v = ranges[attr].lo; v <= ranges[attr].hi; ++v) {
      const double p = h.Count(v) / h.total();
      if (p > 0) {
        cost += p * GenericCost(node, k + 1,
                                Refined(ranges, attr, ValueRange{v, v}));
      }
    }
    return cost;
  }

  const CompiledPlan& plan_;
  CondProbEstimator& est_;
  const AcquisitionCostModel& cm_;
  const CostScenario& scenario_;
  const Schema& schema_;
};

}  // namespace

double ScenarioPlanCost(const CompiledPlan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model,
                        const CostScenario& scenario) {
  ScenarioCoster coster(plan, estimator, cost_model, scenario);
  return coster.Cost(0, estimator.schema().FullRanges());
}

CostBounds ExpectedPlanCostBounds(const CompiledPlan& plan,
                                  CondProbEstimator& estimator,
                                  const AcquisitionCostModel& cost_model,
                                  const UncertaintyBox& box,
                                  size_t max_scenarios) {
  const std::vector<CostScenario> scenarios =
      CornerScenarios(box, max_scenarios);
  CostBounds bounds;
  bool first = true;
  for (const CostScenario& s : scenarios) {
    const double c = ScenarioPlanCost(plan, estimator, cost_model, s);
    if (first) {
      bounds.lo = bounds.hi = c;
      first = false;
    } else {
      bounds.lo = std::min(bounds.lo, c);
      bounds.hi = std::max(bounds.hi, c);
    }
  }
  return bounds;
}

void StampEstimatesWithBox(PlanEstimates& estimates, const UncertaintyBox& box,
                           CostBounds bounds) {
  estimates.has_cost_bounds = true;
  estimates.cost_lo = bounds.lo;
  estimates.cost_hi = bounds.hi;
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    estimates.box_shift_lo[a] = box.shift_lo[a];
    estimates.box_shift_hi[a] = box.shift_hi[a];
  }
}

}  // namespace opt
}  // namespace caqp
