#include "opt/cost_model.h"

namespace caqp {

SensorBoardCostModel::SensorBoardCostModel(const Schema& schema,
                                           std::vector<int> board_of,
                                           std::vector<double> board_powerup)
    : schema_(schema),
      board_of_(std::move(board_of)),
      board_powerup_(std::move(board_powerup)) {
  CAQP_CHECK_EQ(board_of_.size(), schema_.num_attributes());
  for (int b : board_of_) {
    CAQP_CHECK_LT(b, static_cast<int>(board_powerup_.size()));
  }
}

double SensorBoardCostModel::Cost(AttrId attr, const AttrSet& acquired) const {
  double cost = schema_.cost(attr);
  const int board = board_of_[attr];
  if (board >= 0) {
    // Board already powered iff some already-acquired attribute shares it.
    bool powered = false;
    for (size_t a = 0; a < board_of_.size(); ++a) {
      if (board_of_[a] == board && acquired.Contains(static_cast<AttrId>(a))) {
        powered = true;
        break;
      }
    }
    if (!powered) cost += board_powerup_[board];
  }
  return cost;
}

}  // namespace caqp
