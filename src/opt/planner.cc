#include "opt/planner.h"

namespace caqp {

std::function<double(size_t, uint64_t)> MakeSeqCostFn(
    const Schema& schema, const AcquisitionCostModel& cost_model,
    const RangeVec& ranges, const std::vector<Predicate>& preds) {
  const AttrSet base = AcquiredAttrs(schema, ranges);
  return [&cost_model, base, preds](size_t i, uint64_t evaluated) {
    AttrSet acquired = base;
    for (size_t j = 0; j < preds.size(); ++j) {
      if ((evaluated >> j) & 1) acquired.Insert(preds[j].attr);
    }
    const AttrId a = preds[i].attr;
    return acquired.Contains(a) ? 0.0 : cost_model.Cost(a, acquired);
  };
}

SequentialLeaf SolveSequentialLeaf(const Query& query, const RangeVec& ranges,
                                   CondProbEstimator& estimator,
                                   const AcquisitionCostModel& cost_model,
                                   const SequentialSolver& solver) {
  CAQP_CHECK(query.IsConjunctive());
  SequentialLeaf out;

  const Truth truth = query.EvaluateOnRanges(ranges);
  if (truth != Truth::kUnknown) {
    out.leaf = PlanNode::Verdict(truth == Truth::kTrue);
    return out;
  }

  SeqProblem prob;
  prob.preds = UndeterminedPredicates(query.predicates(), ranges);
  CAQP_CHECK(!prob.preds.empty());  // Unknown truth implies undetermined preds.
  const MaskDistribution masks = estimator.PredicateMasks(ranges, prob.preds);
  prob.masks = &masks;
  prob.cost = MakeSeqCostFn(estimator.schema(), cost_model, ranges,
                            prob.preds);
  const SeqSolution sol = solver.Solve(prob);
  out.expected_cost = sol.expected_cost;
  out.leaf = PlanNode::Sequential(sol.OrderedPredicates(prob));
  return out;
}

Plan SequentialPlanner::BuildPlanImpl(const Query& query,
                                      obs::PlannerStats& stats) const {
  CAQP_CHECK(query.ValidFor(estimator_.schema()));
  SequentialLeaf leaf =
      SolveSequentialLeaf(query, estimator_.schema().FullRanges(), estimator_,
                          cost_model_, solver_);
  stats.seq_solves = 1;
  stats.expected_cost = leaf.expected_cost;
  return Plan(std::move(leaf.leaf));
}

}  // namespace caqp
