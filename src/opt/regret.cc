#include "opt/regret.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "plan/compiled_plan.h"

namespace caqp {
namespace opt {

namespace {

double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

/// Sequential-plan candidate from predicate indices into `preds`.
Plan OrderingPlan(const std::vector<Predicate>& preds,
                  const std::vector<size_t>& order) {
  std::vector<Predicate> seq;
  seq.reserve(order.size());
  for (size_t i : order) seq.push_back(preds[i]);
  return Plan(PlanNode::Sequential(std::move(seq)));
}

}  // namespace

std::vector<Plan> RegretCandidatePlans(
    const Query& query, CondProbEstimator& estimator,
    const AcquisitionCostModel& cost_model,
    const std::vector<CostScenario>& scenarios, const Plan* point_plan,
    size_t max_enumerated) {
  std::vector<Plan> out;
  if (point_plan != nullptr) out.push_back(point_plan->Clone());
  if (!query.IsConjunctive()) return out;
  const std::vector<Predicate>& preds = query.predicates();
  const size_t n = preds.size();
  if (n == 0) return out;

  std::vector<std::vector<size_t>> orderings;
  const auto add_ordering = [&](const std::vector<size_t>& order) {
    if (std::find(orderings.begin(), orderings.end(), order) ==
        orderings.end()) {
      orderings.push_back(order);
    }
  };

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  if (n <= max_enumerated) {
    do {
      add_ordering(order);
    } while (std::next_permutation(order.begin(), order.end()));
  } else {
    // Too many predicates to enumerate: one greedy ordering per scenario,
    // ranking by the classic rule cost / (1 - p) with the scenario's
    // shifted pass probability (cheap, selective predicates first).
    const RangeVec full = estimator.schema().FullRanges();
    const AttrSet none;
    for (const CostScenario& s : scenarios) {
      std::vector<double> rank(n);
      for (size_t i = 0; i < n; ++i) {
        const double p = Clamp01(
            estimator.PredicateProbability(full, preds[i]) +
            s.shift[preds[i].attr]);
        const double drop = std::max(1e-9, 1.0 - p);
        rank[i] = cost_model.Cost(preds[i].attr, none) / drop;
      }
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return rank[a] < rank[b]; });
      add_ordering(order);
    }
  }

  out.reserve(out.size() + orderings.size());
  for (const std::vector<size_t>& o : orderings) {
    out.push_back(OrderingPlan(preds, o));
  }
  return out;
}

Plan RegretPlanner::BuildPlanImpl(const Query& query,
                                  obs::PlannerStats& stats) const {
  const UncertaintyBox box =
      options_.box_provider ? options_.box_provider() : options_.box;
  Plan point_plan = options_.point_planner->BuildPlan(query);

  if (box.degenerate() || !query.IsConjunctive()) {
    Stats s;
    s.degenerate_fallback = box.degenerate();
    s.candidates = 1;
    std::lock_guard<std::mutex> lock(diag_mu_);
    stats_ = s;
    return point_plan;
  }

  const std::vector<CostScenario> scenarios =
      CornerScenarios(box, options_.max_scenarios);
  std::vector<Plan> candidates =
      RegretCandidatePlans(query, estimator_, cost_model_, scenarios,
                           &point_plan, options_.max_enumerated_predicates);
  CAQP_CHECK(!candidates.empty());

  // cost[c][s]: candidate c priced at scenario s, on the compiled form so
  // the regret sweep shares ExpectedPlanCost's flat walk.
  const size_t nc = candidates.size();
  const size_t ns = scenarios.size();
  std::vector<std::vector<double>> cost(nc, std::vector<double>(ns));
  for (size_t c = 0; c < nc; ++c) {
    const CompiledPlan compiled = CompiledPlan::Compile(candidates[c]);
    for (size_t s = 0; s < ns; ++s) {
      cost[c][s] =
          ScenarioPlanCost(compiled, estimator_, cost_model_, scenarios[s]);
    }
  }

  std::vector<double> best(ns, std::numeric_limits<double>::infinity());
  for (size_t s = 0; s < ns; ++s) {
    for (size_t c = 0; c < nc; ++c) best[s] = std::min(best[s], cost[c][s]);
  }

  size_t winner = 0;
  double winner_regret = std::numeric_limits<double>::infinity();
  double point_regret = 0.0;
  for (size_t c = 0; c < nc; ++c) {
    double r = 0.0;
    for (size_t s = 0; s < ns; ++s) r = std::max(r, cost[c][s] - best[s]);
    if (c == 0) point_regret = r;
    // Strict < keeps ties on the lowest index, i.e. the point plan.
    if (r < winner_regret) {
      winner_regret = r;
      winner = c;
    }
  }

  stats.candidates_tried = nc * ns;
  stats.expected_cost = cost[winner][0];  // scenario 0 is nominal

  Stats s;
  s.scenarios = ns;
  s.candidates = nc;
  s.worst_case_regret = winner_regret;
  s.point_plan_regret = point_regret;
  {
    std::lock_guard<std::mutex> lock(diag_mu_);
    stats_ = s;
  }
  return std::move(candidates[winner]);
}

}  // namespace opt
}  // namespace caqp
