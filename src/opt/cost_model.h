// Acquisition cost models.
//
// The paper's base model charges a fixed per-attribute cost C_i the first
// time X_i is read for a tuple (Section 2.1). Section 7 ("Complex
// acquisition costs") motivates costs that depend on what has already been
// acquired -- e.g., a mote sensor board whose power-up cost is shared by all
// sensors on the board. AcquisitionCostModel abstracts both: Cost() returns
// the *marginal* cost of acquiring `attr` given the set already acquired for
// this tuple, and every planner and the executor route all charging through
// it.

#ifndef CAQP_OPT_COST_MODEL_H_
#define CAQP_OPT_COST_MODEL_H_

#include <array>
#include <vector>

#include "core/schema.h"
#include "prob/subproblem.h"

namespace caqp {

class AcquisitionCostModel {
 public:
  virtual ~AcquisitionCostModel() = default;

  /// Marginal cost of acquiring `attr` when the attributes in `acquired`
  /// have already been acquired for the current tuple. Callers only invoke
  /// this for attr not in `acquired`; re-reads are free by construction.
  virtual double Cost(AttrId attr, const AttrSet& acquired) const = 0;
};

/// The paper's model: Cost(attr, *) == schema.cost(attr).
class PerAttributeCostModel : public AcquisitionCostModel {
 public:
  explicit PerAttributeCostModel(const Schema& schema) : schema_(schema) {}
  double Cost(AttrId attr, const AttrSet& acquired) const override {
    (void)acquired;
    return schema_.cost(attr);
  }

 private:
  const Schema& schema_;
};

/// Section 7's sensor-board model: each attribute lives on a board; the
/// first acquisition from a board additionally pays that board's power-up
/// cost. Attributes not assigned to a board (board id < 0) pay only their
/// per-attribute cost.
class SensorBoardCostModel : public AcquisitionCostModel {
 public:
  /// `board_of[attr]` gives the board index of each attribute or -1;
  /// `board_powerup[b]` the power-up cost of board b.
  SensorBoardCostModel(const Schema& schema, std::vector<int> board_of,
                       std::vector<double> board_powerup);

  double Cost(AttrId attr, const AttrSet& acquired) const override;

 private:
  const Schema& schema_;
  std::vector<int> board_of_;
  std::vector<double> board_powerup_;
};

/// Decorator scaling every marginal charge of attribute a by a per-attribute
/// multiplier. opt/uncertainty.h uses it to price plans under transient
/// fault rates (retry-until-success at rate f => multiplier 1/(1-f)), but
/// the multipliers are arbitrary — any per-attribute cost inflation fits.
/// Attributes past the multiplier table (or with multiplier <= 0) charge the
/// base cost unchanged.
class FaultAdjustedCostModel : public AcquisitionCostModel {
 public:
  static constexpr size_t kMaxAttrs = 64;

  FaultAdjustedCostModel(const AcquisitionCostModel& base,
                         std::array<double, kMaxAttrs> multipliers)
      : base_(base), multipliers_(multipliers) {}

  double Cost(AttrId attr, const AttrSet& acquired) const override {
    double m = 1.0;
    if (attr != kInvalidAttr && static_cast<size_t>(attr) < kMaxAttrs &&
        multipliers_[attr] > 0.0) {
      m = multipliers_[attr];
    }
    return base_.Cost(attr, acquired) * m;
  }

 private:
  const AcquisitionCostModel& base_;
  std::array<double, kMaxAttrs> multipliers_;
};

}  // namespace caqp

#endif  // CAQP_OPT_COST_MODEL_H_
