// Adaptive replanning over data streams (paper Section 7, "Queries over
// data streams"): probabilities are maintained over a sliding window of
// recent tuples; periodically the planner re-estimates the current plan's
// expected cost and rebuilds the conditional plan when the distribution has
// drifted enough for a new plan to beat it by a relative margin.

#ifndef CAQP_OPT_ADAPTIVE_H_
#define CAQP_OPT_ADAPTIVE_H_

#include <deque>
#include <functional>

#include "opt/greedy_plan.h"
#include "plan/plan.h"

namespace caqp {

class AdaptivePlanner {
 public:
  struct Options {
    /// Tuples kept in the sliding window used to estimate probabilities.
    size_t window_size = 4000;
    /// Re-evaluate the plan after this many new tuples.
    size_t replan_interval = 1000;
    /// Adopt a new plan only if it improves the window-expected cost by this
    /// relative margin (hysteresis against plan thrashing).
    double improvement_threshold = 0.02;
    /// Settings for the GreedyPlanner used at each replan.
    const SplitPointSet* split_points = nullptr;
    const SequentialSolver* seq_solver = nullptr;
    size_t max_splits = 5;
    /// Invoked (on the Observe thread) each time a replan is adopted — i.e.
    /// the window distribution drifted enough that plans built from older
    /// statistics are stale. Serving layers hook cache invalidation here
    /// (serve::QueryService::InvalidationHook()).
    std::function<void()> on_plan_adopted;
  };

  struct Stats {
    size_t tuples_seen = 0;
    size_t replans_considered = 0;
    size_t replans_adopted = 0;
    double total_cost = 0.0;
  };

  AdaptivePlanner(const Schema& schema, const Query& query,
                  const AcquisitionCostModel& cost_model, Options options);

  /// Feeds one tuple: executes the current plan on it (charging acquisition
  /// costs), appends it to the window, and replans on schedule. Returns the
  /// acquisition cost paid for this tuple.
  double Observe(const Tuple& tuple);

  /// Current plan (initially Naive-less: a sequential scan of the query
  /// predicates until the first window fills).
  const Plan& plan() const { return plan_; }
  const Stats& stats() const { return stats_; }

 private:
  void MaybeReplan();

  Schema schema_;
  Query query_;
  const AcquisitionCostModel& cost_model_;
  Options options_;
  std::deque<Tuple> window_;
  Plan plan_;
  Stats stats_;
  size_t since_replan_ = 0;
};

}  // namespace caqp

#endif  // CAQP_OPT_ADAPTIVE_H_
