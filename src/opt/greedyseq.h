// GreedySeq (paper Section 4.1.3): the greedy sequential heuristic of
// Munagala et al. [20]. Repeatedly picks the unevaluated predicate phi_j
// minimizing C_j / (1 - p_j), where p_j is the probability phi_j is
// satisfied *given that every already-chosen predicate is satisfied* -- so
// unlike Naive it exploits correlations. 4-approximate; polynomial, so it is
// the base-plan solver for queries too large for OptSeq (Garden, Synthetic).

#ifndef CAQP_OPT_GREEDYSEQ_H_
#define CAQP_OPT_GREEDYSEQ_H_

#include "opt/sequential.h"

namespace caqp {

class GreedySeqSolver : public SequentialSolver {
 public:
  std::string Name() const override { return "GreedySeq"; }
  SeqSolution Solve(const SeqProblem& problem) const override;
};

}  // namespace caqp

#endif  // CAQP_OPT_GREEDYSEQ_H_
