#include "opt/naive.h"

#include <algorithm>
#include <limits>

namespace caqp {

Plan NaivePlanner::BuildPlanImpl(const Query& query,
                                 obs::PlannerStats& stats) const {
  (void)stats;  // Naive does no search; the shared fields all stay zero.
  CAQP_CHECK(query.ValidFor(estimator_.schema()));
  CAQP_CHECK(query.IsConjunctive());
  const Conjunct& preds = query.predicates();
  const RangeVec root = estimator_.schema().FullRanges();

  // Rank each predicate by cost / (1 - p) with the *marginal* pass
  // probability p: the classic expensive-predicate ordering, blind to
  // correlations. Ties and never-filtering predicates (p == 1) order by
  // cost, cheapest first.
  struct Ranked {
    double rank;
    double cost;
    size_t idx;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    const double p = estimator_.PredicateProbability(root, preds[i]);
    // Costs are marginal w.r.t. nothing acquired; Naive ignores cost
    // interactions (a traditional optimizer has a flat per-predicate cost).
    const double c = cost_model_.Cost(preds[i].attr, AttrSet::None());
    const double rank = (p >= 1.0) ? std::numeric_limits<double>::infinity()
                                   : c / (1.0 - p);
    ranked.push_back({rank, c, i});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.idx < b.idx;
  });

  std::vector<Predicate> order;
  order.reserve(preds.size());
  for (const Ranked& r : ranked) order.push_back(preds[r.idx]);
  return Plan(PlanNode::Sequential(std::move(order)));
}

}  // namespace caqp
