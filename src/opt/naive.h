// Naive (paper Section 4.1.1): the traditional optimizer baseline. Orders
// the query predicates by rank cost / (1 - selectivity), where selectivity
// is the *marginal* pass probability estimated from historical data, with no
// regard for correlations; produces a single sequential plan.

#ifndef CAQP_OPT_NAIVE_H_
#define CAQP_OPT_NAIVE_H_

#include "opt/planner.h"

namespace caqp {

class NaivePlanner : public Planner {
 public:
  NaivePlanner(CondProbEstimator& estimator,
               const AcquisitionCostModel& cost_model)
      : estimator_(estimator), cost_model_(cost_model) {}

  std::string Name() const override { return "Naive"; }
  CondProbEstimator* estimator() const override { return &estimator_; }

 protected:
  Plan BuildPlanImpl(const Query& query,
                     obs::PlannerStats& stats) const override;

 private:
  CondProbEstimator& estimator_;
  const AcquisitionCostModel& cost_model_;
};

}  // namespace caqp

#endif  // CAQP_OPT_NAIVE_H_
