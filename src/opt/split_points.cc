#include "opt/split_points.h"

#include <algorithm>
#include <cmath>

namespace caqp {

SplitPointSet SplitPointSet::AllPoints(const Schema& schema) {
  SplitPointSet s;
  s.points_.resize(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const uint32_t k = schema.domain_size(static_cast<AttrId>(a));
    s.points_[a].reserve(k - 1);
    for (uint32_t x = 1; x < k; ++x) {
      s.points_[a].push_back(static_cast<Value>(x));
    }
  }
  return s;
}

SplitPointSet SplitPointSet::EquiSpaced(
    const Schema& schema, const std::vector<uint32_t>& points_per_attr) {
  CAQP_CHECK_EQ(points_per_attr.size(), schema.num_attributes());
  SplitPointSet s;
  s.points_.resize(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const uint32_t k = schema.domain_size(static_cast<AttrId>(a));
    const uint32_t r = std::min(points_per_attr[a], k - 1);
    std::vector<Value>& pts = s.points_[a];
    for (uint32_t j = 1; j <= r; ++j) {
      // End-points of r+1 equal-sized ranges over [0, k).
      auto x = static_cast<uint32_t>(
          std::lround(static_cast<double>(k) * j / (r + 1)));
      x = std::max(1u, std::min(x, k - 1));
      pts.push_back(static_cast<Value>(x));
    }
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  }
  return s;
}

SplitPointSet SplitPointSet::FromLog10Spsf(const Schema& schema,
                                           double log10_spsf) {
  CAQP_CHECK_GE(log10_spsf, 0.0);
  const double n = static_cast<double>(schema.num_attributes());
  const double per_attr = std::pow(10.0, log10_spsf / n);
  std::vector<uint32_t> r(schema.num_attributes());
  for (size_t a = 0; a < r.size(); ++a) {
    r[a] = std::max(1u, static_cast<uint32_t>(std::lround(per_attr)));
  }
  return EquiSpaced(schema, r);
}

double SplitPointSet::Log10Spsf() const {
  double log_spsf = 0.0;
  for (const auto& pts : points_) {
    if (!pts.empty()) log_spsf += std::log10(static_cast<double>(pts.size()));
  }
  return log_spsf;
}

}  // namespace caqp
