// Candidate split points and the Split Point Selection Factor (SPSF),
// paper Section 4.3.
//
// A split point x for attribute X_i produces the conditioning predicate
// T(X_i >= x); valid split values are 1..K_i-1. To bound planning time the
// paper restricts each attribute to r_i equi-spaced candidate points and
// defines SPSF = prod_i r_i; Figure 8(b) studies how shrinking the SPSF
// degrades the exhaustive planner.

#ifndef CAQP_OPT_SPLIT_POINTS_H_
#define CAQP_OPT_SPLIT_POINTS_H_

#include <vector>

#include "core/schema.h"
#include "core/types.h"

namespace caqp {

class SplitPointSet {
 public:
  /// Every split point of every attribute (SPSF == prod (K_i - 1)).
  static SplitPointSet AllPoints(const Schema& schema);

  /// r_i equi-spaced points per attribute: the end-points of r_i + 1 equal
  /// ranges. Values are clamped to [1, K_i - 1] and deduplicated, so the
  /// effective r_i never exceeds K_i - 1.
  static SplitPointSet EquiSpaced(const Schema& schema,
                                  const std::vector<uint32_t>& points_per_attr);

  /// Distributes a log10(SPSF) budget uniformly over attributes:
  /// r_i ~= spsf^(1/n), capped at K_i - 1. This mirrors the paper's
  /// "SPSF of 10^8 / 10^14 / 10^n" experiment settings.
  static SplitPointSet FromLog10Spsf(const Schema& schema, double log10_spsf);

  /// Sorted ascending candidate split values for `attr`.
  const std::vector<Value>& PointsFor(AttrId attr) const {
    CAQP_DCHECK(attr < points_.size());
    return points_[attr];
  }

  /// log10 of the realized SPSF (sum of log10 r_i). Attributes with zero
  /// candidates contribute log10(1).
  double Log10Spsf() const;

  size_t num_attributes() const { return points_.size(); }

 private:
  std::vector<std::vector<Value>> points_;
};

}  // namespace caqp

#endif  // CAQP_OPT_SPLIT_POINTS_H_
