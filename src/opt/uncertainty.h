// Uncertainty boxes over the planner's beliefs, and interval cost
// evaluation of compiled plans.
//
// Every expected-cost number the planners optimize is computed from point
// estimates: predicate pass probabilities from a CondProbEstimator trained
// on history, and implicit fault-free acquisition. Both are guesses. An
// UncertaintyBox makes the guess error explicit as per-attribute intervals:
//
//  * shift intervals [shift_lo[a], shift_hi[a]] — additive perturbations of
//    every pass probability involving attribute a. A scenario with shift s
//    replaces each predicted pass probability p (P(X_a >= split) at split
//    nodes, the conditional predicate pass probability at sequential
//    leaves) with clamp01(p + s). Additive shifts are exactly the units of
//    the calibration layer's drift score (|observed - predicted| pass
//    rate, obs/calibration.h), so observed miscalibration converts to
//    interval widths with no rescaling.
//  * fault intervals [fault_lo[a], fault_hi[a]] — transient-failure rates
//    for acquisitions of attribute a. Under a retry-until-success
//    discipline a rate f multiplies the expected acquisition cost by
//    1/(1-f), which is how scenarios charge it (FaultAdjustedCostModel).
//
// A CostScenario is one point of the box; CornerScenarios enumerates the
// box's corners (capped), ScenarioPlanCost prices a compiled plan at one
// scenario with the same flat-plan walk as ExpectedPlanCost, and
// ExpectedPlanCostBounds reduces the corner sweep to a [lo, hi] cost
// interval. opt/regret.h builds the minmax-regret planner on top.
//
// Box construction closes two loops:
//  * UncertaintyBox::Uniform — the static widening knob
//    (caqp_plan --uncertainty=eps): symmetric +-eps on every queried
//    attribute.
//  * UncertaintyBox::FromCalibration — PR 6's CalibrationReport windows:
//    each attribute's *signed* drift (observed minus predicted pass rate)
//    becomes a directional interval spanning [0, drift] (or [drift, 0]),
//    i.e. "the world may have moved this far in the direction we already
//    measured". serve::DriftPolicy's widen mode feeds this from the firing
//    window, so sustained drift swaps cached plans for regret-optimal ones
//    instead of replanning on the same stale point estimates.
//  * UncertaintyBox::FromFaultSpec — PR 3 fault profiles: the configured
//    transient rates +- eps become the fault intervals.

#ifndef CAQP_OPT_UNCERTAINTY_H_
#define CAQP_OPT_UNCERTAINTY_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "opt/cost_model.h"
#include "plan/compiled_plan.h"
#include "plan/plan_estimates.h"
#include "prob/estimator.h"

namespace caqp {

struct FaultSpec;  // fault/fault.h

namespace obs {
struct CalibrationReport;  // obs/calibration.h
}

namespace opt {

/// Per-attribute belief intervals. Attribute indexing matches PlanEstimates'
/// rate tables (schemas are capped at kEstimateMaxAttrs = 64 attributes).
/// The default-constructed box is degenerate (all intervals are the point
/// {0} / {0}): planning under it is planning on the point estimates.
struct UncertaintyBox {
  /// Additive pass-probability shift interval per attribute;
  /// shift_lo[a] <= 0 <= shift_hi[a] need NOT hold (directional boxes from
  /// calibration span [0, drift]), but lo <= hi always does.
  std::array<double, kEstimateMaxAttrs> shift_lo{};
  std::array<double, kEstimateMaxAttrs> shift_hi{};
  /// Transient-fault-rate interval per attribute, in [0, 1).
  std::array<double, kEstimateMaxAttrs> fault_lo{};
  std::array<double, kEstimateMaxAttrs> fault_hi{};

  /// Symmetric +-eps pass-probability uncertainty on every attribute (the
  /// --uncertainty=eps knob). eps is clamped to [0, 1].
  static UncertaintyBox Uniform(double eps);

  /// Directional intervals from a calibration report (typically a drift
  /// window): for each attribute row with at least `min_evals` observed
  /// evaluations and a nonzero predicted side, the signed drift
  /// d = observed - predicted pass rate becomes the interval
  /// [min(0, scale*d), max(0, scale*d)], clamped to +-cap.
  static UncertaintyBox FromCalibration(const obs::CalibrationReport& report,
                                        double scale = 1.0, double cap = 1.0,
                                        uint64_t min_evals = 1);

  /// Fault intervals around a fault profile's transient rates:
  /// [max(0, r-eps), min(max_rate, r+eps)] per attribute, where r is
  /// FaultSpec::TransientFor(a). Shift intervals stay degenerate.
  static UncertaintyBox FromFaultSpec(const FaultSpec& spec, double eps = 0.0,
                                      double max_rate = 0.95);

  /// Pointwise union: the smallest box containing both. Used by the drift
  /// widen loop so consecutive windows only ever widen beliefs.
  void MergeFrom(const UncertaintyBox& other);

  /// Interval widths for attribute a.
  double shift_width(size_t a) const { return shift_hi[a] - shift_lo[a]; }
  double fault_width(size_t a) const { return fault_hi[a] - fault_lo[a]; }

  /// Largest interval width (shift or fault) over all attributes.
  double max_width() const;

  /// True when every interval is narrower than `tol` AND contains only
  /// (numerically) zero shift / zero extra fault — planning under the box
  /// degenerates to point-estimate planning.
  bool degenerate(double tol = 1e-12) const;

  /// "a3:shift[-0.1,0.2] a5:fault[0,0.3]" — attributes with nonzero
  /// intervals only; "(point)" for a degenerate box.
  std::string ToString() const;
};

/// One point of an UncertaintyBox: concrete shifts and fault rates.
struct CostScenario {
  std::array<double, kEstimateMaxAttrs> shift{};
  std::array<double, kEstimateMaxAttrs> fault{};
};

/// Corner enumeration of `box`, at most `max_scenarios` entries. The first
/// entry is always the nominal scenario (zero shift clamped into each
/// interval, fault = fault_lo). Each uncertain attribute is one dimension
/// whose lo/hi choice moves its shift and fault interval ends together;
/// when the full 2^k product exceeds the cap, the all-lo / all-hi corners
/// and all single-attribute flips are kept, then remaining corners fill in
/// deterministic (Gray-code) order. Never returns an empty vector.
std::vector<CostScenario> CornerScenarios(const UncertaintyBox& box,
                                          size_t max_scenarios = 64);

/// Expected acquisition cost of `plan` at one scenario: the
/// ExpectedPlanCost walk (plan/plan_cost.cc) with every pass probability
/// additively shifted by scenario.shift[attr] (clamped to [0,1]) and every
/// acquisition of attribute a charged cost * 1/(1 - scenario.fault[a]).
/// Generic leaves apply the fault multipliers but keep point probabilities
/// (their evaluation order is data-dependent; calibration treats them as
/// uncalibrated too). A zero scenario reproduces ExpectedPlanCost exactly.
double ScenarioPlanCost(const CompiledPlan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model,
                        const CostScenario& scenario);

/// Interval cost evaluation: [min, max] of ScenarioPlanCost over
/// CornerScenarios(box, max_scenarios). lo <= point cost <= hi whenever the
/// box contains the zero scenario.
struct CostBounds {
  double lo = 0.0;
  double hi = 0.0;
};
CostBounds ExpectedPlanCostBounds(const CompiledPlan& plan,
                                  CondProbEstimator& estimator,
                                  const AcquisitionCostModel& cost_model,
                                  const UncertaintyBox& box,
                                  size_t max_scenarios = 64);

/// Stamps the box and its cost interval onto a plan's predicted side tables
/// so calibration can score the robust plan against what it promised
/// (obs/calibration.h surfaces predicted_cost_lo/hi per plan).
void StampEstimatesWithBox(PlanEstimates& estimates, const UncertaintyBox& box,
                           CostBounds bounds);

/// Thread-safe holder for "the box the fleet currently plans under". The
/// serve drift loop Sets it when a window fires in widen mode; per-worker
/// planners read it via RegretPlanner::Options::box_provider. Get returns a
/// copy, so readers never hold the lock across planning.
class SharedUncertaintyBox {
 public:
  UncertaintyBox Get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return box_;
  }
  void Set(const UncertaintyBox& box) {
    std::lock_guard<std::mutex> lock(mu_);
    box_ = box;
  }
  /// Pointwise-union update (monotone widening).
  void Widen(const UncertaintyBox& box) {
    std::lock_guard<std::mutex> lock(mu_);
    box_.MergeFrom(box);
  }

 private:
  mutable std::mutex mu_;
  UncertaintyBox box_;
};

}  // namespace opt
}  // namespace caqp

#endif  // CAQP_OPT_UNCERTAINTY_H_
