// Planner interface and shared helpers: every optimizer (Naive, CorrSeq,
// Exhaustive, GreedyPlan) turns a Query into an executable Plan using a
// probability estimator, an acquisition cost model, and (for conditional
// planners) a candidate split-point set.

#ifndef CAQP_OPT_PLANNER_H_
#define CAQP_OPT_PLANNER_H_

#include <functional>
#include <mutex>
#include <string>

#include "core/query.h"
#include "obs/planner_stats.h"
#include "obs/span.h"
#include "opt/cost_model.h"
#include "opt/sequential.h"
#include "plan/plan.h"
#include "prob/estimator.h"

namespace caqp {

/// Thread-safety contract (caqp::serve shares planner instances):
///
///   BuildPlan is const and keeps all per-build scratch on the stack; the
///   diagnostic snapshot below is committed under an internal mutex when a
///   build finishes. One planner instance may therefore run concurrent
///   BuildPlan calls **iff the CondProbEstimator it references is itself
///   safe for concurrent use**:
///     * IndependentEstimator / ChowLiuEstimator — immutable after
///       construction, safe to share across threads.
///     * DatasetEstimator — maintains a scope stack and scratch row buffer,
///       NOT safe to share; give each thread its own instance (see
///       serve/query_service.h's per-worker PlanBuilder bundles).
///   Diagnostics (planner_stats(), per-planner stats(), LastPlanCost())
///   describe the most recently *completed* build and are unsynchronized on
///   the read side: read them only while no build is in flight.
class Planner {
 public:
  virtual ~Planner() = default;
  virtual std::string Name() const = 0;
  /// Builds a plan for `query`. The query must be valid for the estimator's
  /// schema; sequential planners additionally require a conjunctive query.
  Plan BuildPlan(const Query& query) const {
    // Span site for request tracing (obs/span.h): no-op unless the calling
    // thread is inside a serve request scope.
    CAQP_OBS_SPAN(build_span, "planner.build");
    obs::PlannerStats stats;
    stats.Reset(Name());
    Plan plan = BuildPlanImpl(query, stats);
    std::lock_guard<std::mutex> lock(diag_mu_);
    planner_stats_ = std::move(stats);
    return plan;
  }

  /// Uniform tracing view of the most recent completed BuildPlan call (memo
  /// hits, prunes, splits considered/taken, ... — see obs/planner_stats.h).
  /// Fields a planner doesn't track stay zero. See the thread-safety
  /// contract above.
  const obs::PlannerStats& planner_stats() const { return planner_stats_; }

  /// The estimator this planner builds plans against, or nullptr if the
  /// planner has none. Used by the serve layer to stamp predicted side
  /// tables (plan/plan_estimates.h) on freshly compiled plans with the same
  /// beliefs the build used. Thread-safety follows the estimator itself
  /// (see the contract above).
  virtual CondProbEstimator* estimator() const { return nullptr; }

 protected:
  /// Builds the plan, filling `stats` (already Reset to this planner's
  /// name). Implementations must not touch instance state except under
  /// diag_mu_ at the very end of the build.
  virtual Plan BuildPlanImpl(const Query& query,
                             obs::PlannerStats& stats) const = 0;

  /// Guards the most-recent-build diagnostics of this planner and its
  /// subclasses.
  mutable std::mutex diag_mu_;
  mutable obs::PlannerStats planner_stats_;
};

/// Builds the SeqProblem cost callback for predicates evaluated at a
/// subproblem: marginal cost of preds[i]'s attribute given the attributes
/// acquired by the subproblem ranges plus those of already-evaluated
/// predicates.
std::function<double(size_t, uint64_t)> MakeSeqCostFn(
    const Schema& schema, const AcquisitionCostModel& cost_model,
    const RangeVec& ranges, const std::vector<Predicate>& preds);

/// Solves the sequential problem for the undetermined predicates of a
/// conjunctive query at `ranges`, returning the solution plus the leaf node
/// realizing it. If the ranges already determine the conjunct, the leaf is a
/// Verdict and the cost is 0.
struct SequentialLeaf {
  double expected_cost = 0.0;
  std::unique_ptr<PlanNode> leaf;
};
SequentialLeaf SolveSequentialLeaf(const Query& query, const RangeVec& ranges,
                                   CondProbEstimator& estimator,
                                   const AcquisitionCostModel& cost_model,
                                   const SequentialSolver& solver);

/// Wraps a sequential solver as a full planner ("CorrSeq" in the paper's
/// evaluation: OptSeq for small queries, GreedySeq for large ones).
class SequentialPlanner : public Planner {
 public:
  SequentialPlanner(CondProbEstimator& estimator,
                    const AcquisitionCostModel& cost_model,
                    const SequentialSolver& solver, std::string name)
      : estimator_(estimator),
        cost_model_(cost_model),
        solver_(solver),
        name_(std::move(name)) {}

  std::string Name() const override { return name_; }
  CondProbEstimator* estimator() const override { return &estimator_; }

 protected:
  Plan BuildPlanImpl(const Query& query,
                     obs::PlannerStats& stats) const override;

 private:
  CondProbEstimator& estimator_;
  const AcquisitionCostModel& cost_model_;
  const SequentialSolver& solver_;
  std::string name_;
};

}  // namespace caqp

#endif  // CAQP_OPT_PLANNER_H_
