#include "opt/greedyseq.h"

#include <limits>

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

SeqSolution GreedySeqSolver::Solve(const SeqProblem& problem) const {
  const size_t m = problem.preds.size();
  CAQP_CHECK(problem.masks != nullptr);
  CAQP_CHECK_LE(m, 64u);
  SeqSolution sol;
  if (m == 0) return sol;
  CAQP_OBS_COUNTER_INC("opt.greedyseq.solves");
  CAQP_OBS_COUNTER_ADD("opt.greedyseq.preds", m);

  // Conditioned distribution: entries surviving "all chosen predicates
  // true". Shrinks as predicates are chosen, keeping each step cheap.
  MaskDistribution dist = *problem.masks;
  uint64_t evaluated = 0;
  double p_reach = 1.0;

  for (size_t step = 0; step < m; ++step) {
    // Per-candidate pass probability, one sweep over surviving entries.
    std::vector<double> true_mass(m, 0.0);
    for (const auto& [mask, w] : dist.entries()) {
      for (size_t j = 0; j < m; ++j) {
        if ((evaluated >> j) & 1) continue;
        if ((mask >> j) & 1) true_mass[j] += w;
      }
    }
    const double total = dist.total();

    size_t best = m;
    double best_rank = std::numeric_limits<double>::infinity();
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < m; ++j) {
      if ((evaluated >> j) & 1) continue;
      const double c = problem.cost(j, evaluated);
      // p_j = P(phi_j | chosen satisfied); with no surviving data fall back
      // to 1/2 (uninformative prior).
      const double p = total > 0 ? true_mass[j] / total : 0.5;
      double rank;
      if (p >= 1.0) {
        // Never filters: rank infinite; among such predicates prefer cheap.
        rank = std::numeric_limits<double>::infinity();
      } else {
        rank = c / (1.0 - p);
      }
      if (rank < best_rank ||
          (rank == best_rank && c < best_cost)) {
        best_rank = rank;
        best_cost = c;
        best = j;
      }
    }
    CAQP_CHECK_LT(best, m);

    sol.expected_cost += p_reach * problem.cost(best, evaluated);
    const double p_best =
        total > 0 ? true_mass[best] / total : 0.5;
    p_reach *= p_best;
    evaluated |= uint64_t{1} << best;
    sol.order.push_back(best);
    dist = dist.ConditionTrue(static_cast<int>(best));
  }
  return sol;
}

}  // namespace caqp
