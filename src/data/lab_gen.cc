#include "data/lab_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/discretizer.h"

namespace caqp {

namespace {

constexpr double kPi = 3.14159265358979323846;

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Dataset GenerateLabData(const LabDataOptions& options) {
  CAQP_CHECK_GE(options.num_motes, 2u);
  Schema schema;
  schema.AddAttribute("nodeid", static_cast<uint32_t>(options.num_motes),
                      options.cheap_cost);
  schema.AddAttribute("hour", 24, options.cheap_cost);
  schema.AddAttribute("voltage", options.voltage_bins, options.cheap_cost);
  schema.AddAttribute("light", options.light_bins, options.expensive_cost);
  schema.AddAttribute("temperature", options.temp_bins,
                      options.expensive_cost);
  schema.AddAttribute("humidity", options.humidity_bins,
                      options.expensive_cost);

  const UniformDiscretizer light_disc(0.0, 1200.0, options.light_bins);
  const UniformDiscretizer temp_disc(10.0, 35.0, options.temp_bins);
  const UniformDiscretizer humid_disc(20.0, 80.0, options.humidity_bins);
  const UniformDiscretizer volt_disc(2.2, 3.1, options.voltage_bins);

  Rng rng(options.seed);
  Dataset data(schema);

  // The back zone of the lab (high node ids) hosts late-night work sessions.
  const size_t back_zone_start = (options.num_motes * 3) / 5;

  // Per-mote fixed effects.
  std::vector<double> window_factor(options.num_motes);
  std::vector<double> volt_offset(options.num_motes);
  for (size_t m = 0; m < options.num_motes; ++m) {
    window_factor[m] = 0.6 + 0.4 * rng.Uniform();  // daylight exposure
    volt_offset[m] = rng.Gaussian(0.0, 0.03);
  }
  // Whether the back zone is occupied late tonight, re-drawn daily.
  bool night_session = false;
  size_t last_day = static_cast<size_t>(-1);

  Tuple t(schema.num_attributes());
  for (size_t row = 0; row < options.readings; ++row) {
    const size_t mote = row % options.num_motes;
    const size_t epoch = row / options.num_motes;
    const double minutes = static_cast<double>(epoch) * 2.0;
    const double hour_f = std::fmod(minutes / 60.0, 24.0);
    const size_t day = static_cast<size_t>(minutes / (60.0 * 24.0));
    const auto hour = static_cast<uint32_t>(hour_f);

    if (day != last_day) {
      last_day = day;
      night_session = rng.Bernoulli(0.35);
    }

    // --- light ---
    const double daylight =
        std::max(0.0, std::sin(kPi * (hour_f - 6.0) / 12.0)) * 650.0;
    const bool work_hours = hour_f >= 9.0 && hour_f < 18.0;
    const bool late_hours = hour_f >= 19.0 || hour_f < 1.0;
    double lamps = 0.0;
    if (work_hours && rng.Bernoulli(0.92)) lamps = 420.0;
    const bool back_zone = mote >= back_zone_start;
    if (back_zone && late_hours && night_session) lamps = 420.0;
    const double light =
        Clamp(daylight * window_factor[mote] + lamps + rng.Gaussian(0, 35.0),
              0.0, 1200.0);

    // --- temperature: diurnal + HVAC + light coupling ---
    const double diurnal = 5.5 * std::sin(kPi * (hour_f - 8.0) / 12.0);
    const double hvac = work_hours ? 1.5 : -1.5;  // heated/cooled toward day
    const double temp = Clamp(
        21.0 + diurnal + hvac + 0.004 * light + rng.Gaussian(0, 0.9), 10.0,
        35.0);

    // --- humidity: HVAC dries the air; nights are humid ---
    const bool night = hour_f < 6.0 || hour_f >= 20.0;
    const double humidity =
        Clamp(48.0 + (night ? 13.0 : 0.0) - (work_hours ? 7.0 : 0.0) +
                  rng.Gaussian(0, 2.5),
              20.0, 80.0);

    // --- voltage: slow decay ---
    const double frac = static_cast<double>(row) / options.readings;
    const double volt = Clamp(
        3.02 - 0.45 * frac + volt_offset[mote] + rng.Gaussian(0, 0.015), 2.2,
        3.1);

    t[0] = static_cast<Value>(mote);
    t[1] = static_cast<Value>(hour % 24);
    t[2] = volt_disc.ToBin(volt);
    t[3] = light_disc.ToBin(light);
    t[4] = temp_disc.ToBin(temp);
    t[5] = humid_disc.ToBin(humidity);
    data.Append(t);
  }
  return data;
}

LabAttrs ResolveLabAttrs(const Schema& schema) {
  LabAttrs a;
  a.nodeid = schema.FindAttribute("nodeid");
  a.hour = schema.FindAttribute("hour");
  a.voltage = schema.FindAttribute("voltage");
  a.light = schema.FindAttribute("light");
  a.temperature = schema.FindAttribute("temperature");
  a.humidity = schema.FindAttribute("humidity");
  CAQP_CHECK(a.nodeid != kInvalidAttr && a.hour != kInvalidAttr &&
             a.voltage != kInvalidAttr && a.light != kInvalidAttr &&
             a.temperature != kInvalidAttr && a.humidity != kInvalidAttr);
  return a;
}

}  // namespace caqp
