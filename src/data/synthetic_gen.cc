#include "data/synthetic_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.h"

namespace caqp {

Dataset GenerateSyntheticData(const SyntheticDataOptions& options) {
  CAQP_CHECK_GE(options.n, 2u);
  CAQP_CHECK_GE(options.gamma, 1u);
  CAQP_CHECK(options.agreement > 0.5 && options.agreement <= 1.0);

  const uint32_t group_size = options.gamma + 1;
  const uint32_t num_groups = (options.n + group_size - 1) / group_size;

  Schema schema;
  for (uint32_t a = 0; a < options.n; ++a) {
    const uint32_t group = a / group_size;
    const bool cheap = (a % group_size) == 0;  // first attr of each group
    schema.AddAttribute(
        "g" + std::to_string(group) + "_a" + std::to_string(a % group_size),
        2, cheap ? options.cheap_cost : options.expensive_cost);
  }

  // rho^2 + (1 - rho)^2 = agreement  =>  rho = (1 + sqrt(2*agreement-1))/2.
  const double rho = 0.5 * (1.0 + std::sqrt(2.0 * options.agreement - 1.0));
  // Marginal: q*rho + (1-q)*(1-rho) = sel => q = (sel - (1-rho))/(2rho - 1).
  const double q = std::clamp(
      (options.sel - (1.0 - rho)) / (2.0 * rho - 1.0), 0.0, 1.0);

  Rng rng(options.seed);
  Dataset data(schema);
  Tuple t(options.n);
  std::vector<bool> latent(num_groups);
  for (size_t row = 0; row < options.tuples; ++row) {
    for (uint32_t g = 0; g < num_groups; ++g) latent[g] = rng.Bernoulli(q);
    for (uint32_t a = 0; a < options.n; ++a) {
      const bool base = latent[a / group_size];
      const bool bit = rng.Bernoulli(rho) ? base : !base;
      t[a] = bit ? 1 : 0;
    }
    data.Append(t);
  }
  return data;
}

Query SyntheticAllExpensiveQuery(const Schema& schema) {
  Conjunct preds;
  double min_cost = schema.cost(0);
  for (size_t a = 1; a < schema.num_attributes(); ++a) {
    min_cost = std::min(min_cost, schema.cost(static_cast<AttrId>(a)));
  }
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (schema.cost(static_cast<AttrId>(a)) > min_cost) {
      preds.emplace_back(static_cast<AttrId>(a), Value{1}, Value{1});
    }
  }
  CAQP_CHECK(!preds.empty());
  return Query::Conjunction(std::move(preds));
}

size_t SyntheticExpensiveCount(const Schema& schema) {
  return SyntheticAllExpensiveQuery(schema).predicates().size();
}

}  // namespace caqp
