#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "prob/histogram.h"

namespace caqp {

std::vector<Query> GenerateLabQueries(const Dataset& train,
                                      const std::vector<AttrId>& target_attrs,
                                      const LabQueryOptions& options) {
  CAQP_CHECK(!target_attrs.empty());
  const Schema& schema = train.schema();

  // Per-attribute stddev in discretized units, from the training data.
  std::vector<double> widths(target_attrs.size());
  for (size_t i = 0; i < target_attrs.size(); ++i) {
    Histogram h(schema.domain_size(target_attrs[i]));
    for (Value v : train.column(target_attrs[i])) h.Add(v);
    widths[i] = std::max(1.0, options.width_stddevs * h.StdDev());
  }

  Rng rng(options.seed);
  std::vector<Query> queries;
  queries.reserve(options.num_queries);
  for (size_t qi = 0; qi < options.num_queries; ++qi) {
    Conjunct preds;
    for (size_t i = 0; i < target_attrs.size(); ++i) {
      const uint32_t k = schema.domain_size(target_attrs[i]);
      const auto lo =
          static_cast<Value>(rng.UniformInt(0, static_cast<int64_t>(k) - 1));
      const auto hi = static_cast<Value>(std::min<int64_t>(
          k - 1, lo + static_cast<int64_t>(std::lround(widths[i]))));
      preds.emplace_back(target_attrs[i], lo, hi);
    }
    queries.push_back(Query::Conjunction(std::move(preds)));
  }
  return queries;
}

std::vector<Query> GenerateGardenQueries(
    const Schema& schema, const std::vector<AttrId>& temperature_attrs,
    const std::vector<AttrId>& humidity_attrs,
    const GardenQueryOptions& options) {
  CAQP_CHECK(!temperature_attrs.empty());
  CAQP_CHECK(!humidity_attrs.empty());
  Rng rng(options.seed);

  auto draw_range = [&](AttrId sample_attr) {
    const uint32_t k = schema.domain_size(sample_attr);
    const double f =
        rng.Uniform(options.min_fraction, options.max_fraction);
    const auto width = static_cast<uint32_t>(
        std::max<int64_t>(1, std::lround(static_cast<double>(k) / f)));
    const auto max_lo = static_cast<int64_t>(k) - static_cast<int64_t>(width);
    const auto lo =
        static_cast<Value>(rng.UniformInt(0, std::max<int64_t>(0, max_lo)));
    const auto hi = static_cast<Value>(
        std::min<uint32_t>(k - 1, lo + width - 1));
    return ValueRange{lo, hi};
  };

  std::vector<Query> queries;
  queries.reserve(options.num_queries);
  for (size_t qi = 0; qi < options.num_queries; ++qi) {
    // Identical predicate per sensor type across all motes.
    const ValueRange temp_r = draw_range(temperature_attrs[0]);
    const ValueRange humid_r = draw_range(humidity_attrs[0]);
    const bool temp_neg = rng.Bernoulli(options.negate_probability);
    const bool humid_neg = rng.Bernoulli(options.negate_probability);

    Conjunct preds;
    for (AttrId a : temperature_attrs) {
      preds.emplace_back(a, temp_r.lo, temp_r.hi, temp_neg);
    }
    for (AttrId a : humidity_attrs) {
      preds.emplace_back(a, humid_r.lo, humid_r.hi, humid_neg);
    }
    queries.push_back(Query::Conjunction(std::move(preds)));
  }
  return queries;
}

}  // namespace caqp
