// Synthetic correlated dataset, implemented from the paper's description of
// the generator it adapts from Babu et al. [2] (Section 6 "Datasets"):
//
//  * n binary attributes, partitioned into groups of Gamma+1;
//  * any two attributes in the same group take identical values on ~80% of
//    tuples; attributes in different groups are independent;
//  * each attribute's marginal P(X = 1) is approximately `sel`;
//  * one attribute per group costs 1 unit (the cheap correlated proxy), the
//    rest cost 100 units;
//  * the benchmark query checks "every expensive attribute == 1".
//
// Mechanics: each group draws a latent bit g with P(g=1)=q, and each member
// copies g with probability rho, where rho solves rho^2 + (1-rho)^2 = 0.8
// (pairwise agreement) and q is set so the marginal equals sel, clamped to
// [0,1] (extreme `sel` values saturate, as they must: agreement 0.8 bounds
// the achievable marginals to [1-rho, rho]).

#ifndef CAQP_DATA_SYNTHETIC_GEN_H_
#define CAQP_DATA_SYNTHETIC_GEN_H_

#include "core/dataset.h"
#include "core/query.h"

namespace caqp {

struct SyntheticDataOptions {
  uint32_t n = 10;       ///< number of attributes
  uint32_t gamma = 1;    ///< correlation factor: group size = gamma + 1
  double sel = 0.5;      ///< target marginal P(X = 1)
  size_t tuples = 20000;
  uint64_t seed = 99;
  double expensive_cost = 100.0;
  double cheap_cost = 1.0;
  /// Pairwise within-group agreement probability (paper: 80%).
  double agreement = 0.8;
};

Dataset GenerateSyntheticData(const SyntheticDataOptions& options);

/// The paper's benchmark query: every expensive (cost > cheap) attribute
/// equals 1.
Query SyntheticAllExpensiveQuery(const Schema& schema);

/// Number of expensive attributes (== predicates in the benchmark query).
size_t SyntheticExpensiveCount(const Schema& schema);

}  // namespace caqp

#endif  // CAQP_DATA_SYNTHETIC_GEN_H_
