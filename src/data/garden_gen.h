// Garden dataset generator: a synthetic stand-in for the paper's botanical
// garden deployment (11 motes, each reporting temperature / voltage /
// humidity, queried as one network-state relation of 3*motes + 1
// attributes). The essential structure, which gives conditional plans their
// factor-4 win on Garden-11, is *cross-mote redundancy*: all motes sample
// the same forest microclimate, so one cheap observation (hour, or any one
// mote's voltage, which tracks temperature) carries information about every
// expensive attribute.
//
// Costs follow the paper: temperature and humidity cost 100 units; voltage
// and hour cost 1 unit.

#ifndef CAQP_DATA_GARDEN_GEN_H_
#define CAQP_DATA_GARDEN_GEN_H_

#include <vector>

#include "core/dataset.h"

namespace caqp {

struct GardenDataOptions {
  size_t num_motes = 11;  // 5 => Garden-5 (16 attrs), 11 => Garden-11 (34)
  size_t epochs = 30000;
  uint64_t seed = 777;
  uint32_t temp_bins = 12;
  uint32_t humidity_bins = 12;
  uint32_t voltage_bins = 8;
  double expensive_cost = 100.0;
  double cheap_cost = 1.0;
};

/// Per-mote attribute ids in a generated garden schema.
struct GardenAttrs {
  AttrId hour;
  std::vector<AttrId> temperature;  // one per mote
  std::vector<AttrId> voltage;
  std::vector<AttrId> humidity;
};

/// One row per epoch: hour, then (temp_i, volt_i, humid_i) per mote.
Dataset GenerateGardenData(const GardenDataOptions& options);

GardenAttrs ResolveGardenAttrs(const Schema& schema);

}  // namespace caqp

#endif  // CAQP_DATA_GARDEN_GEN_H_
