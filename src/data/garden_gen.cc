#include "data/garden_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.h"
#include "core/discretizer.h"

namespace caqp {

namespace {

constexpr double kPi = 3.14159265358979323846;

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Dataset GenerateGardenData(const GardenDataOptions& options) {
  CAQP_CHECK_GE(options.num_motes, 1u);
  Schema schema;
  schema.AddAttribute("hour", 24, options.cheap_cost);
  for (size_t m = 0; m < options.num_motes; ++m) {
    const std::string suffix = std::to_string(m);
    schema.AddAttribute("temp_" + suffix, options.temp_bins,
                        options.expensive_cost);
    schema.AddAttribute("volt_" + suffix, options.voltage_bins,
                        options.cheap_cost);
    schema.AddAttribute("humid_" + suffix, options.humidity_bins,
                        options.expensive_cost);
  }

  const UniformDiscretizer temp_disc(5.0, 30.0, options.temp_bins);
  const UniformDiscretizer humid_disc(30.0, 100.0, options.humidity_bins);
  const UniformDiscretizer volt_disc(2.4, 3.2, options.voltage_bins);

  Rng rng(options.seed);

  // Per-mote fixed effects: canopy shading and battery wear.
  std::vector<double> canopy(options.num_motes);
  std::vector<double> drain(options.num_motes);
  std::vector<double> humid_offset(options.num_motes);
  for (size_t m = 0; m < options.num_motes; ++m) {
    canopy[m] = rng.Gaussian(0.0, 0.8);
    drain[m] = 0.3 + 0.15 * rng.Uniform();
    humid_offset[m] = rng.Gaussian(0.0, 2.0);
  }

  Dataset data(schema);
  Tuple t(schema.num_attributes());
  double weather_walk = 0.0;  // slow synoptic-scale temperature drift
  for (size_t e = 0; e < options.epochs; ++e) {
    const double minutes = static_cast<double>(e) * 5.0;
    const double hour_f = std::fmod(minutes / 60.0, 24.0);

    weather_walk = Clamp(weather_walk + rng.Gaussian(0, 0.05), -2.5, 2.5);
    const double ambient_temp =
        16.0 + 6.5 * std::sin(kPi * (hour_f - 7.0) / 12.0) + weather_walk;
    const double ambient_humid =
        Clamp(72.0 - 2.2 * (ambient_temp - 16.0) + rng.Gaussian(0, 1.0), 30.0,
              100.0);

    t[0] = static_cast<Value>(static_cast<uint32_t>(hour_f) % 24);
    const double frac = static_cast<double>(e) / options.epochs;
    for (size_t m = 0; m < options.num_motes; ++m) {
      const double temp =
          Clamp(ambient_temp + canopy[m] + rng.Gaussian(0, 0.5), 5.0, 30.0);
      // Battery voltage sags under heat and drains over time: a cheap proxy
      // for the expensive temperature attribute.
      const double volt = Clamp(3.15 - drain[m] * frac +
                                    0.012 * (temp - 16.0) +
                                    rng.Gaussian(0, 0.012),
                                2.4, 3.2);
      const double humid = Clamp(
          ambient_humid + humid_offset[m] + rng.Gaussian(0, 1.8), 30.0, 100.0);
      t[1 + 3 * m] = temp_disc.ToBin(temp);
      t[2 + 3 * m] = volt_disc.ToBin(volt);
      t[3 + 3 * m] = humid_disc.ToBin(humid);
    }
    data.Append(t);
  }
  return data;
}

GardenAttrs ResolveGardenAttrs(const Schema& schema) {
  GardenAttrs a;
  a.hour = schema.FindAttribute("hour");
  CAQP_CHECK(a.hour != kInvalidAttr);
  for (size_t m = 0;; ++m) {
    const std::string suffix = std::to_string(m);
    const AttrId temp = schema.FindAttribute("temp_" + suffix);
    if (temp == kInvalidAttr) break;
    a.temperature.push_back(temp);
    a.voltage.push_back(schema.FindAttribute("volt_" + suffix));
    a.humidity.push_back(schema.FindAttribute("humid_" + suffix));
    CAQP_CHECK(a.voltage.back() != kInvalidAttr);
    CAQP_CHECK(a.humidity.back() != kInvalidAttr);
  }
  CAQP_CHECK(!a.temperature.empty());
  return a;
}

}  // namespace caqp
