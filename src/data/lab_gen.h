// Lab dataset generator: a synthetic stand-in for the Intel Research lab
// trace the paper uses (400k light/temperature/humidity readings from ~45
// motes at 2-minute intervals). The generator reproduces the correlation
// structure the paper's plans exploit:
//
//  * light is strongly banded by hour of day (the paper's Figure 1), with
//    lab lamps on during working hours;
//  * motes split into a front zone (low node ids) that is dark at night and
//    a back zone (node id >= ~60% of motes) with occasional late-night work
//    sessions -- driving the Figure 9 plan's nodeid split;
//  * temperature follows hour and light (HVAC active in the daytime);
//  * humidity is kept low while the HVAC runs and rises at night -- which is
//    why Figure 9's plan samples humidity first late at night;
//  * voltage decays slowly and is cheap, as are nodeid and hour.
//
// Costs follow the paper: 100 units for light/temperature/humidity, 1 unit
// for nodeid/hour/voltage.

#ifndef CAQP_DATA_LAB_GEN_H_
#define CAQP_DATA_LAB_GEN_H_

#include "core/dataset.h"

namespace caqp {

struct LabDataOptions {
  size_t num_motes = 10;
  size_t readings = 40000;
  uint64_t seed = 20050405;  // ICDE'05 :-)
  uint32_t light_bins = 16;
  uint32_t temp_bins = 16;
  uint32_t humidity_bins = 16;
  uint32_t voltage_bins = 8;
  double expensive_cost = 100.0;
  double cheap_cost = 1.0;
};

/// Attribute ids within the generated schema.
struct LabAttrs {
  AttrId nodeid;
  AttrId hour;
  AttrId voltage;
  AttrId light;
  AttrId temperature;
  AttrId humidity;
};

/// Generates the dataset; attribute order is nodeid, hour, voltage, light,
/// temperature, humidity. Rows are in time order (one mote reading per row,
/// motes round-robin every 2 simulated minutes), so Dataset::SplitAt gives
/// the paper's disjoint-time-window train/test split.
Dataset GenerateLabData(const LabDataOptions& options);

/// Resolves the well-known attribute ids from a generated schema.
LabAttrs ResolveLabAttrs(const Schema& schema);

}  // namespace caqp

#endif  // CAQP_DATA_LAB_GEN_H_
