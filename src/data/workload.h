// Query workload generators replicating the paper's experimental query
// construction (Sections 6.1 and 6.2).

#ifndef CAQP_DATA_WORKLOAD_H_
#define CAQP_DATA_WORKLOAD_H_

#include <vector>

#include "core/dataset.h"
#include "core/query.h"

namespace caqp {

/// Lab workload (Section 6.1): queries with one range predicate per target
/// attribute; each predicate's left endpoint is uniform over the domain and
/// its width is `width_stddevs` standard deviations of the attribute (per
/// the training data), clipped to the domain. Predicates end up passing a
/// large (~50%) fraction of tuples, the paper's "challenging setting".
struct LabQueryOptions {
  size_t num_queries = 95;
  double width_stddevs = 2.0;
  uint64_t seed = 4242;
};
std::vector<Query> GenerateLabQueries(const Dataset& train,
                                      const std::vector<AttrId>& target_attrs,
                                      const LabQueryOptions& options);

/// Garden workload (Section 6.2): identical range predicates over the
/// temperature and humidity of every mote; each query draws a range
/// covering domain_size / f values for f uniform in [min_fraction,
/// max_fraction], independently for temperature and humidity, and negates
/// each sensor type's predicates with probability `negate_probability`.
struct GardenQueryOptions {
  size_t num_queries = 90;
  double min_fraction = 1.25;
  double max_fraction = 3.25;
  double negate_probability = 0.5;
  uint64_t seed = 1717;
};
std::vector<Query> GenerateGardenQueries(
    const Schema& schema, const std::vector<AttrId>& temperature_attrs,
    const std::vector<AttrId>& humidity_attrs,
    const GardenQueryOptions& options);

}  // namespace caqp

#endif  // CAQP_DATA_WORKLOAD_H_
