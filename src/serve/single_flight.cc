#include "serve/single_flight.h"

#include <chrono>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace caqp {
namespace serve {

SingleFlight::Result SingleFlight::Do(const PlanCacheKey& key,
                                      const BuildFn& build,
                                      double follower_wait_seconds) {
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      // Follower: block on the leader's shared future, outside the lock so
      // the leader can publish and deregister.
      std::shared_future<std::shared_ptr<const CompiledPlan>> future =
          it->second->future;
      lock.unlock();
      CAQP_OBS_COUNTER_INC("serve.single_flight.followers");
      CAQP_OBS_SPAN(wait_span, "plan.wait_leader");
      if (follower_wait_seconds >= 0.0) {
        const auto wait = std::chrono::duration<double>(follower_wait_seconds);
        if (future.wait_for(wait) != std::future_status::ready) {
          CAQP_OBS_COUNTER_INC("serve.single_flight.follower_timeouts");
          return {nullptr, /*leader=*/false, /*timed_out=*/true};
        }
      }
      return {future.get(), /*leader=*/false};
    }
    flight = std::make_shared<Flight>();
    flight->future = flight->promise.get_future().share();
    flights_.emplace(key, flight);
  }

  // Leader: plan with no lock held, publish, then deregister. Requests for
  // this key that arrive after the erase re-plan — by then the plan is in
  // the cache, so they hit there instead.
  CAQP_OBS_COUNTER_INC("serve.single_flight.leaders");
  std::shared_ptr<const CompiledPlan> plan;
  {
    CAQP_OBS_SPAN(build_span, "plan.build_leader");
    plan = build();
  }
  CAQP_CHECK(plan != nullptr);
  flight->promise.set_value(plan);
  {
    std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(key);
  }
  return {std::move(plan), /*leader=*/true};
}

size_t SingleFlight::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

}  // namespace serve
}  // namespace caqp
