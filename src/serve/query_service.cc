#include "serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/check.h"
#include "core/query_signature.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "plan/plan_estimates.h"

namespace caqp {
namespace serve {

namespace {
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t NonZero(size_t n) { return n == 0 ? 1 : n; }
}  // namespace

QueryService::QueryService(const Schema& schema,
                           const AcquisitionCostModel& cost_model,
                           const PlanBuilderFactory& factory, Options options)
    : schema_(schema),
      cost_model_(cost_model),
      options_(options),
      cache_(ShardedPlanCache::Options{options.cache_capacity,
                                       options.cache_shards}),
      metrics_(NonZero(options.num_workers)),
      tracer_(NonZero(options.num_workers),
              obs::TraceRecorder::Options{
                  /*max_events_per_worker=*/options.max_span_events_per_worker,
                  /*flight_capacity=*/options.flight_capacity,
                  /*max_incidents=*/options.max_incidents}) {
  options_.num_workers = NonZero(options_.num_workers);
  builders_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    builders_.push_back(factory());
    CAQP_CHECK(builders_.back() != nullptr);
  }
  planner_fingerprint_ = builders_.front()->ConfigFingerprint();
  for (const std::unique_ptr<PlanBuilder>& b : builders_) {
    // A factory whose bundles disagree on config would alias cache entries.
    CAQP_CHECK(b->ConfigFingerprint() == planner_fingerprint_);
  }
  // Prefetch every hot-path metric ref out of the per-worker shards: the
  // request path below does no by-name lookups and each worker's updates
  // land on lines no other worker writes.
  worker_metrics_.resize(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    obs::MetricsRegistry& shard = metrics_.shard(i);
    WorkerMetrics& wm = worker_metrics_[i];
    wm.requests = &shard.GetCounter("serve.requests");
    wm.ok = &shard.GetCounter("serve.ok");
    wm.cache_hits = &shard.GetCounter("serve.worker.cache_hits");
    wm.planned = &shard.GetCounter("serve.planned");
    wm.fallbacks = &shard.GetCounter("serve.fallbacks");
    wm.deadline_exceeded = &shard.GetCounter("serve.deadline_exceeded");
    wm.planner_timeouts = &shard.GetCounter("serve.planner_timeouts");
    wm.latency = &shard.GetHistogram("serve.request_latency_seconds");
  }
  if (options_.enable_calibration) {
    calibration_ =
        std::make_unique<obs::CalibrationAggregator>(options_.num_workers);
  }
  if (options_.enable_slo) {
    // Wrap the user hook with the service's own burn reaction: a counter
    // bump, a flight-recorder incident (the ring holds the requests that
    // burned the budget), and arming the burn-shed window. Runs on a serve
    // worker, so everything here must stay cheap and thread-safe.
    obs::SloMonitor::Options slo_options = options_.slo;
    std::function<void(const obs::SloMonitor::BurnEvent&)> user_hook =
        std::move(slo_options.on_burn);
    slo_options.on_burn = [this, user_hook = std::move(user_hook)](
                              const obs::SloMonitor::BurnEvent& event) {
      CAQP_OBS_COUNTER_INC("serve.slo_burns");
      if (tracing_on()) {
        tracer_.RecordIncident(0, event.slo == obs::SloMonitor::Slo::kLatency
                                      ? "slo_burn_latency"
                                      : "slo_burn_availability");
      }
      if (options_.burn_shed_window_ns > 0) {
        burn_shed_until_ns_.store(event.at_ns + options_.burn_shed_window_ns,
                                  std::memory_order_relaxed);
      }
      if (user_hook) user_hook(event);
    };
    slo_ = std::make_unique<obs::SloMonitor>(std::move(slo_options));
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
}

QueryService::~QueryService() = default;  // pool_ drains first (last member)

std::future<QueryService::Response> QueryService::Submit(
    Query query, Tuple tuple, double deadline_seconds) {
  auto state = std::make_shared<std::promise<Response>>();
  std::future<Response> result = state->get_future();
  const uint64_t trace_id = tracer_.NewTraceId();

  if (options_.max_queue_depth > 0) {
    // Load shedding: admit-or-reject before touching the worker queue so a
    // saturated service fails fast instead of growing unbounded backlog.
    // During an armed burn-shed window (an SLO burn fired recently) the
    // limit halves: back off admission while the error budget is burning
    // instead of waiting for the queue to saturate.
    size_t limit = options_.max_queue_depth;
    const uint64_t shed_until =
        burn_shed_until_ns_.load(std::memory_order_relaxed);
    if (shed_until != 0 && obs::MonotonicNowNs() < shed_until) {
      limit = std::max<size_t>(1, limit / 2);
    }
    const size_t depth = pending_.fetch_add(1, std::memory_order_acq_rel);
    if (depth >= limit) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.fetch_add(1, std::memory_order_relaxed);
      CAQP_OBS_COUNTER_INC("serve.shed");
      if (tracing_on()) {
        // Shed requests never reach a worker, so there is no span ring to
        // dump — record a bare incident for the postmortem trail.
        tracer_.RecordIncident(trace_id, "load_shed");
      }
      // Shed requests count against the availability SLO too — they are
      // exactly the unusable answers the budget is supposed to bound.
      if (slo_ != nullptr) {
        slo_->RecordRequest(obs::MonotonicNowNs(), /*available=*/false,
                            /*latency_seconds=*/0.0);
      }
      Response r;
      r.status = Status::Unavailable("queue depth limit reached");
      r.trace_id = trace_id;
      state->set_value(std::move(r));
      return result;
    }
  } else {
    pending_.fetch_add(1, std::memory_order_acq_rel);
  }

  const double relative = deadline_seconds < 0.0
                              ? options_.default_deadline_seconds
                              : deadline_seconds;
  // Absolute pickup deadline; 0 disables the check.
  const double deadline = relative > 0.0 ? NowSeconds() + relative : 0.0;
  const uint64_t submit_ns = obs::MonotonicNowNs();
  pool_->Submit([this, state, deadline, trace_id, submit_ns,
                 query = std::move(query),
                 tuple = std::move(tuple)](size_t worker_id) {
    Response r = Handle(worker_id, query, tuple, deadline, trace_id, submit_ns);
    if (slo_ != nullptr) {
      // Availability is "usable answer": OK status AND a defined verdict.
      // Degradation to Unknown consumes availability budget even though
      // the request nominally succeeded.
      slo_->RecordRequest(obs::MonotonicNowNs(),
                          r.status.ok() && r.exec.defined(),
                          r.latency_seconds);
    }
    if (tracing_on()) {
      // The request span is closed by now, so the flight ring holds the
      // request's full span history when we dump it. The meta block joins
      // the incident against plan-cache entries and calibration rows.
      const obs::TraceRecorder::RequestMeta meta{r.query_sig,
                                                 planner_fingerprint_,
                                                 r.estimator_version};
      if (r.status.code() == StatusCode::kDeadlineExceeded) {
        tracer_.DumpFlight(worker_id, trace_id, "deadline_exceeded", meta);
      } else if (r.fallback) {
        tracer_.DumpFlight(worker_id, trace_id, "planner_timeout_fallback",
                           meta);
      }
    }
    state->set_value(std::move(r));
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  });
  return result;
}

QueryService::Response QueryService::SubmitAndWait(Query query, Tuple tuple,
                                                   double deadline_seconds) {
  return Submit(std::move(query), std::move(tuple), deadline_seconds).get();
}

QueryService::Response QueryService::Handle(size_t worker_id,
                                            const Query& query,
                                            const Tuple& tuple,
                                            double deadline, uint64_t trace_id,
                                            uint64_t submit_ns) {
  const double start = NowSeconds();
  WorkerMetrics& wm = worker_metrics_[worker_id];
  wm.requests->Increment();

  // scope binds this thread to the recorder; root is the whole-request span
  // (backdated to submission so the queue wait is inside it). Declaration
  // order matters: root must close while the scope is still bound.
  std::optional<obs::TraceRecorder::RequestScope> scope;
  std::optional<obs::ScopedSpan> root;
  if (tracing_on()) {
    scope.emplace(&tracer_, worker_id, trace_id);
    root.emplace("request", submit_ns);
    // The queue span ended the moment this worker picked the request up.
    obs::RecordSpan("queue", submit_ns, obs::MonotonicNowNs());
  }

  Response r;
  r.trace_id = trace_id;
  if (deadline > 0.0 && start > deadline) {
    // The request aged out in the queue; planning/executing now would only
    // burn worker time on an answer the client has abandoned.
    r.status = Status::DeadlineExceeded("deadline passed before worker pickup");
    wm.deadline_exceeded->Increment();
    return r;
  }
  r.query_sig = QuerySignature(query);
  r.estimator_version = estimator_version_.load(std::memory_order_acquire);
  if (tracing_on()) {
    // Every span this request records from here on carries the calibration
    // join key (obs/span.h).
    obs::SetRequestPlanContext(r.query_sig, planner_fingerprint_,
                               r.estimator_version);
  }
  PlanBuilder& builder = *builders_[worker_id];
  const PlanCacheKey key{r.query_sig, r.estimator_version,
                         planner_fingerprint_};

  {
    CAQP_OBS_SPAN(plan_span, "plan");
    if (options_.cache_capacity == 0) {
      // Plan-per-query baseline: no cache, no deduplication.
      r.plan = CompileForServe(builder, builder.Build(query));
      r.planned = true;
    } else {
      r.plan = cache_.Get(key);
      if (r.plan != nullptr) {
        r.cache_hit = true;
      } else {
        const double follower_wait = options_.planner_timeout_seconds > 0.0
                                         ? options_.planner_timeout_seconds
                                         : -1.0;
        SingleFlight::Result flight = flight_.Do(
            key,
            [&] {
              // Compile once at insert time: every cached-path execution
              // after this runs the flat IR with zero PlanNode clones or
              // copies.
              auto plan = CompileForServe(builder, builder.Build(query));
              cache_.Put(key, plan);
              return plan;
            },
            follower_wait);
        if (flight.timed_out) {
          // The leader is still planning; answer from the cheap fallback
          // plan rather than blocking past the timeout. The fallback is NOT
          // cached: the leader's (better) plan lands in the cache when it
          // finishes.
          wm.planner_timeouts->Increment();
          CAQP_OBS_SPAN(fallback_span, "plan.build_fallback");
          r.plan = CompileForServe(builder, builder.BuildFallback(query));
          r.fallback = true;
        } else {
          r.plan = std::move(flight.plan);
          r.planned = flight.leader;
        }
      }
    }
  }
  if (r.cache_hit) wm.cache_hits->Increment();
  if (r.planned) wm.planned->Increment();
  if (r.fallback) wm.fallbacks->Increment();

  ExecutionProfile* profile = nullptr;
  if (calibration_ != nullptr && !r.fallback) {
    // Fallback plans are transient (never cached) and can differ in shape
    // from the keyed plan, so they are excluded from calibration rather
    // than corrupting the per-node rows of the real plan under this key.
    profile = calibration_->Profile(
        worker_id,
        obs::CalibrationKey{r.query_sig, r.estimator_version,
                            planner_fingerprint_},
        r.plan);
    if (profile->num_nodes() != r.plan->NumNodes()) {
      // A racing builder produced a structurally different plan for the
      // same key (nondeterministic planner); per-node rows would misalign.
      profile = nullptr;
    }
  }
  TupleSource source(tuple);
  r.exec = ExecutePlan(*r.plan, schema_, cost_model_, source,
                       /*trace=*/nullptr, DegradationPolicy{}, profile);

  r.latency_seconds = NowSeconds() - start;
  if (r.ok()) wm.ok->Increment();
  // Lock-free worker-local histogram: the one place PR 2 funnelled every
  // completion through a global mutex (latency_mu_).
  wm.latency->Record(r.latency_seconds);
  return r;
}

std::shared_ptr<const CompiledPlan> QueryService::CompileForServe(
    PlanBuilder& builder, Plan plan) const {
  CompiledPlan compiled = CompiledPlan::Compile(plan);
  if (calibration_ != nullptr) {
    CondProbEstimator* estimator = builder.CalibrationEstimator();
    if (estimator != nullptr) {
      // Stamp what the planner believed at build time. Same worker thread
      // as Build, so non-shareable estimators (DatasetEstimator) are safe.
      auto estimates = std::make_shared<PlanEstimates>(
          EstimatePlan(compiled, *estimator, cost_model_));
      estimates->estimator_version =
          estimator_version_.load(std::memory_order_acquire);
      opt::UncertaintyBox box;
      if (builder.PlanningBox(&box) && !box.degenerate()) {
        // Robust builder: record the box and its interval cost promise so
        // calibration can score the plan against the range, not just the
        // point (obs::PlanCalibration::predicted_cost_lo/hi).
        opt::StampEstimatesWithBox(
            *estimates, box,
            opt::ExpectedPlanCostBounds(compiled, *estimator, cost_model_,
                                        box));
      }
      compiled.AttachEstimates(std::move(estimates));
    }
  }
  return std::make_shared<const CompiledPlan>(std::move(compiled));
}

obs::CalibrationReport QueryService::CalibrationSnapshot() const {
  if (calibration_ == nullptr) return obs::CalibrationReport{};
  return calibration_->Snapshot();
}

DriftStatus QueryService::CheckDrift() {
  DriftStatus status;
  if (calibration_ == nullptr) return status;
  std::lock_guard<std::mutex> lock(drift_mu_);
  obs::CalibrationReport cumulative = calibration_->Snapshot();
  status.window = cumulative.DeltaSince(drift_baseline_);
  drift_baseline_ = std::move(cumulative);
  status.max_drift = status.window.MaxDrift(options_.drift.min_window_evals);
  const DriftPolicy& policy = options_.drift;
  status.box = robust_box_;
  if (policy.threshold <= 0.0) return status;  // reporting only

  double effective = status.max_drift;
  if (policy.widen_on_drift) {
    // Excess drift: how far each attribute's signed calibration gap falls
    // *outside* the installed box's shift interval. Drift the box already
    // covers is hedged by the robust plans, so it must not re-fire — this
    // is what makes the widen loop converge in one invalidation instead of
    // thrashing on the residual gap every window.
    double excess = 0.0;
    for (const obs::AttrCalibration& a : status.window.attrs) {
      if (a.evals < policy.min_window_evals) continue;
      if (a.attr == kInvalidAttr ||
          static_cast<size_t>(a.attr) >= kEstimateMaxAttrs) {
        continue;
      }
      const double d = a.signed_drift();
      const size_t i = static_cast<size_t>(a.attr);
      excess = std::max(excess, std::max(d - robust_box_.shift_hi[i],
                                         robust_box_.shift_lo[i] - d));
    }
    status.excess_drift = std::max(0.0, excess);
    effective = status.excess_drift;
  } else {
    status.excess_drift = status.max_drift;
  }

  status.over_threshold = effective > policy.threshold;
  drift_streak_ = status.over_threshold ? drift_streak_ + 1 : 0;
  status.streak = drift_streak_;
  if (drift_streak_ >= policy.consecutive_windows) {
    if (policy.widen_on_drift) {
      // Widen first: the box the replanned plans hedge against must be
      // installed (and pushed via on_widen) before the retrain hook and
      // the invalidation force rebuilds.
      robust_box_.MergeFrom(opt::UncertaintyBox::FromCalibration(
          status.window, policy.widen_scale, policy.widen_cap,
          policy.min_window_evals));
      status.box = robust_box_;
      status.widened = true;
      if (policy.on_widen) policy.on_widen(robust_box_, status.window);
    }
    // Retrain hook next, so the replanned plans InvalidateCache forces
    // are built from refreshed beliefs, not the drifted ones.
    if (policy.on_drift) policy.on_drift(status.window);
    InvalidateCache();
    CAQP_OBS_COUNTER_INC("serve.drift_invalidations");
    drift_streak_ = 0;
    status.fired = true;
  }
  return status;
}

opt::UncertaintyBox QueryService::CurrentUncertaintyBox() const {
  std::lock_guard<std::mutex> lock(drift_mu_);
  return robust_box_;
}

void QueryService::InvalidateCache() {
  estimator_version_.fetch_add(1, std::memory_order_acq_rel);
  cache_.InvalidateAll();
  CAQP_OBS_COUNTER_INC("serve.invalidations");
}

std::function<void()> QueryService::InvalidationHook() {
  return [this] { InvalidateCache(); };
}

ServeReport QueryService::Report() const {
  const auto counter_in = [](const obs::RegistrySnapshot& snap,
                             const char* name) -> uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  const obs::RegistrySnapshot snap = metrics_.Snapshot();
  ServeReport rep;
  rep.requests = counter_in(snap, "serve.requests");
  rep.ok = counter_in(snap, "serve.ok");
  rep.cache_hits = counter_in(snap, "serve.worker.cache_hits");
  rep.planned = counter_in(snap, "serve.planned");
  rep.fallbacks = counter_in(snap, "serve.fallbacks");
  rep.deadline_exceeded = counter_in(snap, "serve.deadline_exceeded");
  rep.planner_timeouts = counter_in(snap, "serve.planner_timeouts");
  rep.shed = shed_.load(std::memory_order_relaxed);
  rep.pending = pending_.load(std::memory_order_relaxed);
  for (const auto& h : snap.histograms) {
    if (h.name == "serve.request_latency_seconds") rep.latency = h.hist;
  }
  rep.workers.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    const obs::RegistrySnapshot ws = metrics_.shard(i).Snapshot();
    WorkerReport w;
    w.worker = i;
    w.requests = counter_in(ws, "serve.requests");
    w.ok = counter_in(ws, "serve.ok");
    w.cache_hits = counter_in(ws, "serve.worker.cache_hits");
    w.planned = counter_in(ws, "serve.planned");
    w.fallbacks = counter_in(ws, "serve.fallbacks");
    w.deadline_exceeded = counter_in(ws, "serve.deadline_exceeded");
    w.planner_timeouts = counter_in(ws, "serve.planner_timeouts");
    for (const auto& h : ws.histograms) {
      if (h.name == "serve.request_latency_seconds") w.latency = h.hist;
    }
    rep.workers.push_back(std::move(w));
  }
  return rep;
}

std::string ServeReportToJson(const ServeReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("requests").UInt(report.requests);
  w.Key("ok").UInt(report.ok);
  w.Key("cache_hits").UInt(report.cache_hits);
  w.Key("planned").UInt(report.planned);
  w.Key("fallbacks").UInt(report.fallbacks);
  w.Key("deadline_exceeded").UInt(report.deadline_exceeded);
  w.Key("planner_timeouts").UInt(report.planner_timeouts);
  w.Key("shed").UInt(report.shed);
  w.Key("pending").UInt(report.pending);
  w.Key("latency");
  obs::WriteHistogram(w, report.latency);
  w.Key("workers").BeginArray();
  for (const WorkerReport& worker : report.workers) {
    w.BeginObject();
    w.Key("worker").UInt(worker.worker);
    w.Key("requests").UInt(worker.requests);
    w.Key("ok").UInt(worker.ok);
    w.Key("cache_hits").UInt(worker.cache_hits);
    w.Key("planned").UInt(worker.planned);
    w.Key("fallbacks").UInt(worker.fallbacks);
    w.Key("deadline_exceeded").UInt(worker.deadline_exceeded);
    w.Key("planner_timeouts").UInt(worker.planner_timeouts);
    // Compact per-worker latency summary; the full bucket layout is already
    // exported once in the aggregate histogram above.
    w.Key("latency");
    w.BeginObject();
    w.Key("count").UInt(worker.latency.count);
    w.Key("mean").Double(worker.latency.mean());
    w.Key("p50").Double(worker.latency.p50());
    w.Key("p99").Double(worker.latency.p99());
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace serve
}  // namespace caqp
