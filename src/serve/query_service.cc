#include "serve/query_service.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "core/query_signature.h"
#include "exec/executor.h"
#include "obs/registry.h"

namespace caqp {
namespace serve {

namespace {
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

QueryService::QueryService(const Schema& schema,
                           const AcquisitionCostModel& cost_model,
                           const PlanBuilderFactory& factory, Options options)
    : schema_(schema),
      cost_model_(cost_model),
      options_(options),
      cache_(ShardedPlanCache::Options{options.cache_capacity,
                                       options.cache_shards}) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  builders_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    builders_.push_back(factory());
    CAQP_CHECK(builders_.back() != nullptr);
  }
  planner_fingerprint_ = builders_.front()->ConfigFingerprint();
  for (const std::unique_ptr<PlanBuilder>& b : builders_) {
    // A factory whose bundles disagree on config would alias cache entries.
    CAQP_CHECK(b->ConfigFingerprint() == planner_fingerprint_);
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
}

QueryService::~QueryService() = default;  // pool_ drains first (last member)

std::future<QueryService::Response> QueryService::Submit(
    Query query, Tuple tuple, double deadline_seconds) {
  auto state = std::make_shared<std::promise<Response>>();
  std::future<Response> result = state->get_future();

  if (options_.max_queue_depth > 0) {
    // Load shedding: admit-or-reject before touching the worker queue so a
    // saturated service fails fast instead of growing unbounded backlog.
    const size_t depth = pending_.fetch_add(1, std::memory_order_acq_rel);
    if (depth >= options_.max_queue_depth) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      CAQP_OBS_COUNTER_INC("serve.shed");
      Response r;
      r.status = Status::Unavailable("queue depth limit reached");
      state->set_value(std::move(r));
      return result;
    }
  } else {
    pending_.fetch_add(1, std::memory_order_acq_rel);
  }

  const double relative = deadline_seconds < 0.0
                              ? options_.default_deadline_seconds
                              : deadline_seconds;
  // Absolute pickup deadline; 0 disables the check.
  const double deadline = relative > 0.0 ? NowSeconds() + relative : 0.0;
  pool_->Submit([this, state, deadline, query = std::move(query),
                 tuple = std::move(tuple)](size_t worker_id) {
    state->set_value(Handle(worker_id, query, tuple, deadline));
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  });
  return result;
}

QueryService::Response QueryService::SubmitAndWait(Query query, Tuple tuple,
                                                   double deadline_seconds) {
  return Submit(std::move(query), std::move(tuple), deadline_seconds).get();
}

QueryService::Response QueryService::Handle(size_t worker_id,
                                            const Query& query,
                                            const Tuple& tuple,
                                            double deadline) {
  const double start = NowSeconds();
  CAQP_OBS_COUNTER_INC("serve.requests");

  Response r;
  if (deadline > 0.0 && start > deadline) {
    // The request aged out in the queue; planning/executing now would only
    // burn worker time on an answer the client has abandoned.
    r.status = Status::DeadlineExceeded("deadline passed before worker pickup");
    CAQP_OBS_COUNTER_INC("serve.deadline_exceeded");
    return r;
  }
  r.query_sig = QuerySignature(query);
  r.estimator_version = estimator_version_.load(std::memory_order_acquire);
  PlanBuilder& builder = *builders_[worker_id];
  const PlanCacheKey key{r.query_sig, r.estimator_version,
                         planner_fingerprint_};

  if (options_.cache_capacity == 0) {
    // Plan-per-query baseline: no cache, no deduplication.
    r.plan = std::make_shared<const CompiledPlan>(
        CompiledPlan::Compile(builder.Build(query)));
    r.planned = true;
  } else {
    r.plan = cache_.Get(key);
    if (r.plan != nullptr) {
      r.cache_hit = true;
    } else {
      const double follower_wait = options_.planner_timeout_seconds > 0.0
                                       ? options_.planner_timeout_seconds
                                       : -1.0;
      SingleFlight::Result flight = flight_.Do(
          key,
          [&] {
            // Compile once at insert time: every cached-path execution after
            // this runs the flat IR with zero PlanNode clones or copies.
            auto plan = std::make_shared<const CompiledPlan>(
                CompiledPlan::Compile(builder.Build(query)));
            cache_.Put(key, plan);
            return plan;
          },
          follower_wait);
      if (flight.timed_out) {
        // The leader is still planning; answer from the cheap fallback plan
        // rather than blocking past the timeout. The fallback is NOT cached:
        // the leader's (better) plan lands in the cache when it finishes.
        CAQP_OBS_COUNTER_INC("serve.planner_timeouts");
        r.plan = std::make_shared<const CompiledPlan>(
            CompiledPlan::Compile(builder.BuildFallback(query)));
        r.fallback = true;
      } else {
        r.plan = std::move(flight.plan);
        r.planned = flight.leader;
      }
    }
  }

  TupleSource source(tuple);
  r.exec = ExecutePlan(*r.plan, schema_, cost_model_, source);

  r.latency_seconds = NowSeconds() - start;
  {
    // StreamingStat is single-writer; latency_mu_ serializes both the local
    // stat and the registry stat across workers.
    std::lock_guard<std::mutex> lock(latency_mu_);
    latency_.Record(r.latency_seconds);
    CAQP_OBS_STAT_RECORD("serve.request_latency_seconds", r.latency_seconds);
  }
  return r;
}

void QueryService::InvalidateCache() {
  estimator_version_.fetch_add(1, std::memory_order_acq_rel);
  cache_.InvalidateAll();
  CAQP_OBS_COUNTER_INC("serve.invalidations");
}

std::function<void()> QueryService::InvalidationHook() {
  return [this] { InvalidateCache(); };
}

obs::StreamingStat QueryService::LatencyStats() const {
  std::lock_guard<std::mutex> lock(latency_mu_);
  return latency_;
}

}  // namespace serve
}  // namespace caqp
