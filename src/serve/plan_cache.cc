#include "serve/plan_cache.h"

#include "common/check.h"
#include "obs/registry.h"

namespace caqp {
namespace serve {

ShardedPlanCache::ShardedPlanCache(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Ceiling split so the total budget is never silently under capacity.
  per_shard_capacity_ =
      (options_.capacity + options_.shards - 1) / options_.shards;
}

ShardedPlanCache::Shard& ShardedPlanCache::ShardFor(const PlanCacheKey& key) {
  // The low bits of the key hash pick the map bucket inside a shard; run a
  // full splitmix64 finalizer before picking the shard so the two choices
  // stay independent even for near-sequential signatures.
  uint64_t x = PlanCacheKeyHash{}(key);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return *shards_[x % shards_.size()];
}

std::shared_ptr<const CompiledPlan> ShardedPlanCache::Get(const PlanCacheKey& key) {
  if (options_.capacity == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CAQP_OBS_COUNTER_INC("serve.cache.misses");
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CAQP_OBS_COUNTER_INC("serve.cache.misses");
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  CAQP_OBS_COUNTER_INC("serve.cache.hits");
  return it->second->second;
}

void ShardedPlanCache::Put(const PlanCacheKey& key,
                           std::shared_ptr<const CompiledPlan> plan) {
  CAQP_CHECK(plan != nullptr);
  if (options_.capacity == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent single-flight leaders under different versions can race to
    // insert the same key; last write wins and refreshes recency.
    it->second->second = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(plan));
  shard.index.emplace(key, shard.lru.begin());
  inserts_.fetch_add(1, std::memory_order_relaxed);
  CAQP_OBS_COUNTER_INC("serve.cache.inserts");
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CAQP_OBS_COUNTER_INC("serve.cache.evictions");
  }
}

void ShardedPlanCache::InvalidateAll() {
  uint64_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->lru.size();
    shard->index.clear();
    shard->lru.clear();
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  CAQP_OBS_COUNTER_ADD("serve.cache.invalidated_entries", dropped);
  CAQP_OBS_COUNTER_INC("serve.cache.invalidations");
}

size_t ShardedPlanCache::size() const {
  size_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

ShardedPlanCache::Stats ShardedPlanCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace caqp
