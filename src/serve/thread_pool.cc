#include "serve/thread_pool.h"

#include <utility>

namespace caqp {
namespace serve {

ThreadPool::ThreadPool(size_t num_threads) {
  CAQP_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(Task task) {
  CAQP_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    CAQP_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker_id);
  }
}

}  // namespace serve
}  // namespace caqp
