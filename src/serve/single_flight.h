// Single-flight plan construction: when N requests for the same cache key
// miss at once, exactly one (the "leader") runs the expensive BuildPlan; the
// other N-1 ("followers") block on a shared future and receive the leader's
// plan. Without this, a burst of identical fresh queries stampedes the
// planner — the classic thundering-herd failure of a look-aside cache.
//
// The leader runs the build function on its own thread with no lock held,
// so distinct keys plan concurrently. Followers block; this is safe in the
// serve worker pool because a leader never waits on queued work (see
// thread_pool.h's Submit contract) — the wait chain is always
// follower -> leader -> done.

#ifndef CAQP_SERVE_SINGLE_FLIGHT_H_
#define CAQP_SERVE_SINGLE_FLIGHT_H_

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "plan/compiled_plan.h"
#include "serve/plan_cache.h"

namespace caqp {
namespace serve {

class SingleFlight {
 public:
  using BuildFn = std::function<std::shared_ptr<const CompiledPlan>()>;

  struct Result {
    std::shared_ptr<const CompiledPlan> plan;
    /// True iff this caller ran `build` (it was the leader).
    bool leader = false;
    /// True iff this caller was a follower that gave up waiting (plan is
    /// nullptr in that case). The leader keeps building regardless; its
    /// result still lands in the plan cache for later requests.
    bool timed_out = false;
  };

  /// Returns build() for the leader, and the leader's result for every
  /// follower that arrives before the leader finishes. `build` must not
  /// return nullptr and must not re-enter Do() for the same key.
  ///
  /// `follower_wait_seconds` bounds how long a follower blocks on the
  /// leader: negative waits forever; otherwise a follower that is still
  /// waiting after the timeout returns {nullptr, false, timed_out=true} so
  /// the caller can degrade (e.g. serve a cheap fallback plan). A leader is
  /// never preempted — it owns the build and always runs it to completion.
  Result Do(const PlanCacheKey& key, const BuildFn& build,
            double follower_wait_seconds = -1.0);

  /// Keys currently being planned (for metrics/tests).
  size_t InFlight() const;

 private:
  struct Flight {
    std::promise<std::shared_ptr<const CompiledPlan>> promise;
    std::shared_future<std::shared_ptr<const CompiledPlan>> future;
  };

  mutable std::mutex mu_;
  std::unordered_map<PlanCacheKey, std::shared_ptr<Flight>, PlanCacheKeyHash>
      flights_;  // guarded by mu_
};

}  // namespace serve
}  // namespace caqp

#endif  // CAQP_SERVE_SINGLE_FLIGHT_H_
