// Fixed-size worker thread pool for the serving layer.
//
// Deliberately minimal: a locked deque + condition variable is plenty for
// the serve workload, where each task plans (milliseconds) or executes a
// cached plan (microseconds) — queue contention is nowhere near the
// bottleneck. Tasks receive their worker index so QueryService can hand each
// worker thread-local planning state (see query_service.h) without any
// thread_local machinery.

#ifndef CAQP_SERVE_THREAD_POOL_H_
#define CAQP_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace caqp {
namespace serve {

class ThreadPool {
 public:
  /// A unit of work; `worker_id` is in [0, num_threads).
  using Task = std::function<void(size_t worker_id)>;

  explicit ThreadPool(size_t num_threads);
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after (or concurrently with) the
  /// destructor. Tasks may block (e.g. on a single-flight future) but must
  /// not wait for *queued* work that only another Submit could start.
  void Submit(Task task);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop(size_t worker_id);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;   // guarded by mu_
  bool shutdown_ = false;    // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace serve
}  // namespace caqp

#endif  // CAQP_SERVE_THREAD_POOL_H_
