// QueryService: the concurrent multi-query serving front end.
//
// A request is (query, tuple): compile-or-fetch a conditional plan for the
// query, execute it over the tuple's acquisition source, and return the
// verdict plus acquisition accounting. The paper's planners are expensive
// relative to plan execution (milliseconds of sampling/DP vs. microseconds
// of tree traversal), which is exactly the regime where a serving layer
// amortizes planning across a workload:
//
//   Submit -> canonical signature -> sharded plan cache (plan_cache.h)
//          -> miss: single-flight BuildPlan (single_flight.h)
//          -> ExecutePlan on the worker pool (thread_pool.h)
//
// Planning state is per worker: the factory supplied at construction is
// invoked once per worker thread, so estimators that are not shareable
// (DatasetEstimator's scope stack) still serve concurrent traffic safely.
// Thread-safe estimators (IndependentEstimator, ChowLiuEstimator) can back
// all bundles with one shared const Planner instead — see the thread-safety
// contract in opt/planner.h.
//
// Invalidation: InvalidateCache() bumps the estimator version (a component
// of every cache key) and eagerly clears the cache. Wire it to the adaptive
// replanner via AdaptivePlanner::Options::on_plan_adopted =
// service.InvalidationHook() so a detected distribution shift immediately
// stops serving stale plans.
//
// Observability (caqp::obs v2): per-request metrics — counts and the
// request-latency histogram behind Report() — are written to per-worker
// shards of an obs::ShardedRegistry, so the cached-request hot path never
// touches a cross-worker cache line (the PR 2 design funnelled every
// completion through one mutex-guarded StreamingStat). With
// Options::enable_tracing, each request also gets a SpanContext threaded
// through queueing, single-flight planning, execution, and dissemination
// (obs/span.h), and degraded requests (kDeadlineExceeded / kUnavailable /
// planner-timeout fallback) dump the worker's flight-recorder ring for
// postmortems. Export both with obs::TraceEventsToJson(trace_recorder()).
//
// Plan-quality calibration (this PR): with Options::enable_calibration,
// freshly compiled plans get predicted per-node selectivity/cost side
// tables stamped from the builder's estimator (plan/plan_estimates.h), and
// every execution feeds per-node observed counters into a per-worker
// obs::CalibrationAggregator keyed by (query signature, estimator version,
// planner fingerprint) — the plan-cache key, so calibration rows join
// exactly against cached plans, span events, and flight-recorder
// incidents. CalibrationSnapshot() merges the shards into a report with
// per-plan regret (realized minus predicted cost) and per-attribute drift
// scores. CheckDrift() compares consecutive snapshot windows against
// Options::drift and, when the drift score stays over threshold for K
// windows, bumps the estimator version (InvalidateCache), forcing
// replanning under whatever beliefs the builders now hold.

#ifndef CAQP_SERVE_QUERY_SERVICE_H_
#define CAQP_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "core/schema.h"
#include "exec/executor.h"
#include "obs/calibration.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/sharded_registry.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "opt/cost_model.h"
#include "opt/planner.h"
#include "opt/uncertainty.h"
#include "serve/plan_cache.h"
#include "serve/single_flight.h"
#include "serve/thread_pool.h"

namespace caqp {
namespace serve {

/// Per-worker planning bundle. QueryService calls Build from exactly one
/// thread at a time per instance, so implementations may hold non-shareable
/// state (e.g. a DatasetEstimator).
class PlanBuilder {
 public:
  virtual ~PlanBuilder() = default;
  virtual Plan Build(const Query& query) = 0;
  /// Cheap plan used when the service cannot wait for Build (a follower
  /// timed out on the single-flight leader, see Options::
  /// planner_timeout_seconds). Implementations should return something
  /// orders of magnitude cheaper to construct than Build — e.g. a
  /// sequential plan from GreedySeqSolver — at the price of a worse
  /// expected acquisition cost. Must still be a correct plan for `query`.
  /// Defaults to Build, which makes the timeout a no-op.
  virtual Plan BuildFallback(const Query& query) { return Build(query); }
  /// Stable fingerprint of the planner kind + options + training-data
  /// identity. Part of the cache key, so two services (or one service after
  /// a config change) never alias each other's plans. All bundles from one
  /// factory must agree on this value.
  virtual uint64_t ConfigFingerprint() const = 0;
  /// The estimator whose beliefs Build's plans encode, used (only when
  /// Options::enable_calibration) to stamp predicted side tables on freshly
  /// compiled plans. Called from the same worker thread as Build, so
  /// non-shareable estimators are fine. nullptr skips prediction stamping;
  /// observed counters are still collected.
  virtual CondProbEstimator* CalibrationEstimator() { return nullptr; }
  /// The uncertainty box Build's plans hedge against, when this builder
  /// plans robustly (e.g. wraps an opt::RegretPlanner following a
  /// SharedUncertaintyBox). Fill `*out` and return true to have
  /// CompileForServe stamp the box and its interval cost evaluation
  /// (ExpectedPlanCostBounds) onto the plan's estimates, so calibration
  /// scores the robust plan against the range it promised. Default: point
  /// planning, nothing stamped.
  virtual bool PlanningBox(opt::UncertaintyBox* out) {
    (void)out;
    return false;
  }
};

using PlanBuilderFactory = std::function<std::unique_ptr<PlanBuilder>()>;

/// Bundle over a shared const Planner (requires a thread-safe estimator —
/// see opt/planner.h). The planner must outlive the service.
class SharedPlannerBuilder : public PlanBuilder {
 public:
  SharedPlannerBuilder(const Planner& planner, uint64_t fingerprint)
      : planner_(planner), fingerprint_(fingerprint) {}
  Plan Build(const Query& query) override { return planner_.BuildPlan(query); }
  uint64_t ConfigFingerprint() const override { return fingerprint_; }
  CondProbEstimator* CalibrationEstimator() override {
    return planner_.estimator();
  }

 private:
  const Planner& planner_;
  uint64_t fingerprint_;
};

/// When and how calibration drift invalidates the plan cache. Drift is
/// evaluated per snapshot *window*: each CheckDrift() call diffs the
/// cumulative calibration report against the previous call's
/// (CalibrationReport::DeltaSince), takes the window's maximum
/// per-attribute drift score — |observed pass rate − predicted pass rate|
/// over attributes with at least `min_window_evals` evaluations — and
/// fires once the score exceeds `threshold` for `consecutive_windows`
/// windows in a row. Firing calls `on_drift` (with the offending window's
/// report) and then InvalidateCache(), so the next request per query
/// replans under the bumped estimator version.
struct DriftPolicy {
  /// Max per-attribute drift score that a window may reach before it
  /// counts toward the streak. <= 0 disables automatic invalidation
  /// (CheckDrift still reports, never fires).
  double threshold = 0.0;
  /// Consecutive over-threshold windows required before firing. Debounces
  /// one-off noisy windows; 1 fires immediately.
  int consecutive_windows = 2;
  /// Attributes with fewer predicate evaluations than this in the window
  /// are ignored for the drift score (small-sample noise gate).
  uint64_t min_window_evals = 1;
  /// Invoked (on the CheckDrift caller's thread) with the window report
  /// just before InvalidateCache, e.g. to retrain estimators so the
  /// replanned plans actually reflect the new distribution.
  std::function<void(const obs::CalibrationReport&)> on_drift;

  // --- "Widen, don't just invalidate" mode (opt/uncertainty.h) -----------
  /// When true, a firing window additionally converts its per-attribute
  /// *signed* drift into a directional UncertaintyBox
  /// (UncertaintyBox::FromCalibration) and merges it into the service's
  /// installed box, so robust builders replan hedged against the move that
  /// was just observed instead of re-trusting the same point estimates.
  /// Once a box is installed, the firing decision itself switches to
  /// *excess* drift — drift beyond what the installed box already covers —
  /// so a widened-and-replanned service does not keep invalidating on the
  /// residual gap it has already hedged (the loop converges in one
  /// invalidation for a one-off shift).
  bool widen_on_drift = false;
  /// Interval width per unit of drift (FromCalibration's scale).
  double widen_scale = 1.0;
  /// Per-attribute cap on interval half-width (FromCalibration's cap).
  double widen_cap = 1.0;
  /// Invoked (before on_drift) with the post-merge installed box and the
  /// firing window — the hook that pushes the box to whatever
  /// SharedUncertaintyBox the per-worker robust builders read.
  std::function<void(const opt::UncertaintyBox&,
                     const obs::CalibrationReport&)>
      on_widen;
};

/// What one CheckDrift() call saw and did.
struct DriftStatus {
  /// Calibration delta since the previous CheckDrift() call.
  obs::CalibrationReport window;
  /// Window's max per-attribute drift score (min_window_evals applied).
  double max_drift = 0.0;
  bool over_threshold = false;
  /// Consecutive over-threshold windows ending at this one.
  int streak = 0;
  /// True iff this call invalidated the cache (streak reached the policy's
  /// consecutive_windows). The streak resets to zero after firing.
  bool fired = false;
  /// Widen mode only: window's max drift in excess of the installed box
  /// (== max_drift while no box is installed). This is what the firing
  /// decision compares against the threshold in widen mode.
  double excess_drift = 0.0;
  /// True iff this call widened the installed box (fired in widen mode).
  bool widened = false;
  /// The installed box after this call (post-merge when widened).
  opt::UncertaintyBox box;
};

/// One worker's share of the request stream (its metric shard), so per-shard
/// views stay comparable across the serve and dist tiers. The worker queue
/// itself is shared (one deque feeds all workers — see thread_pool.h), so
/// queue depth is reported at the service level, not per worker.
struct WorkerReport {
  size_t worker = 0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t cache_hits = 0;
  uint64_t planned = 0;
  uint64_t fallbacks = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t planner_timeouts = 0;
  obs::HistogramSnapshot latency;
};

/// Aggregated view of the service's request stream, assembled from the
/// per-worker metric shards (plus the submit-side shed count). Latency
/// percentiles come from the merged obs::Histogram, so they reflect every
/// completed request, not a sample.
struct ServeReport {
  uint64_t requests = 0;  ///< requests handled by a worker (excludes shed)
  uint64_t ok = 0;
  uint64_t cache_hits = 0;
  uint64_t planned = 0;
  uint64_t fallbacks = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t planner_timeouts = 0;
  uint64_t shed = 0;  ///< rejected kUnavailable at Submit
  /// Requests admitted but not completed when the report was taken — the
  /// live queue depth the load shedder compares against max_queue_depth.
  /// Point-in-time: a request's response future is fulfilled just before
  /// its decrement, so this may read 1 high immediately after a wait.
  uint64_t pending = 0;
  /// Seconds from worker pickup to completion, every completed request.
  obs::HistogramSnapshot latency;
  /// Per-worker breakdown of the aggregate counters above.
  std::vector<WorkerReport> workers;
};

class QueryService {
 public:
  struct Options {
    size_t num_workers = 4;
    /// Total plan-cache entries; 0 disables caching AND single-flight, so
    /// every request plans for itself (the plan-per-query baseline that
    /// bench_serve compares against).
    size_t cache_capacity = 1024;
    size_t cache_shards = 8;
    /// Deadline applied to requests submitted without an explicit one.
    /// <= 0 means no deadline. A request whose deadline has already passed
    /// when a worker picks it up is answered kDeadlineExceeded without
    /// planning or executing.
    double default_deadline_seconds = 0.0;
    /// How long a single-flight follower waits for the leader's plan before
    /// degrading to PlanBuilder::BuildFallback. <= 0 waits forever. The
    /// leader is unaffected; its plan still lands in the cache.
    double planner_timeout_seconds = 0.0;
    /// Load shedding: requests submitted while this many are already
    /// pending are answered kUnavailable immediately, without touching the
    /// worker queue. 0 disables shedding.
    size_t max_queue_depth = 0;
    /// Record per-request spans (queue / plan / exec / ...) into
    /// trace_recorder() and flight-recorder dumps for degraded requests.
    /// Off by default: tracing buffers whole-run span events.
    bool enable_tracing = false;
    /// Span-ring entries per worker (see obs/span.h). A SpanEvent is 72
    /// bytes, so each worker's tracing footprint is roughly
    /// (max_span_events_per_worker + flight_capacity) * 72 bytes, plus up
    /// to max_incidents * flight_capacity * 72 bytes of retained incident
    /// dumps process-wide.
    size_t max_span_events_per_worker = size_t{1} << 15;
    /// Flight-recorder ring entries per worker (see obs/span.h).
    size_t flight_capacity = 128;
    /// Max flight-recorder incidents retained across all workers.
    size_t max_incidents = 8192;
    /// Multi-window SLO burn-rate monitoring (obs/slo.h): every completed
    /// request records availability (status OK and a defined verdict) and
    /// latency. A burn firing bumps serve.slo_burns, records an "slo_burn"
    /// flight-recorder incident (when tracing), arms burn shedding (below),
    /// and then invokes slo.on_burn if set.
    bool enable_slo = false;
    obs::SloMonitor::Options slo;
    /// For this long after a burn fires, Submit sheds at HALF
    /// max_queue_depth — backing off admission while the error budget is
    /// burning instead of waiting for the queue to saturate. 0 disables
    /// burn shedding (and it is inert anyway when max_queue_depth == 0).
    uint64_t burn_shed_window_ns = 5ull * 1000 * 1000 * 1000;
    /// Stamp predicted side tables on compiled plans and collect per-node
    /// observed counters into CalibrationSnapshot(). Off by default; when
    /// on, the per-execution counter cost still rides the global
    /// obs::Enabled() switch (obs disabled => counters skipped).
    bool enable_calibration = false;
    /// Automatic drift-triggered invalidation; see DriftPolicy. Only
    /// consulted by CheckDrift(), which the owner must call periodically
    /// (e.g. from a monitor thread) — the request path never checks drift.
    DriftPolicy drift;
  };

  struct Response {
    /// kOk, or why the request was not served: kDeadlineExceeded (deadline
    /// passed before worker pickup) / kUnavailable (load shed). On a
    /// non-OK status, plan is nullptr and exec is default-constructed.
    Status status;
    uint64_t query_sig = 0;
    uint64_t estimator_version = 0;
    /// Request identity in trace_recorder() span events and flight dumps.
    uint64_t trace_id = 0;
    bool cache_hit = false;
    /// True iff this request ran BuildPlan (cache miss + single-flight
    /// leader, or caching disabled).
    bool planned = false;
    /// True iff this request timed out waiting on the planning leader and
    /// was answered from PlanBuilder::BuildFallback instead.
    bool fallback = false;
    std::shared_ptr<const CompiledPlan> plan;
    ExecutionResult exec;
    /// Wall-clock seconds from worker pickup to completion.
    double latency_seconds = 0.0;

    bool ok() const { return status.ok(); }
  };

  /// `schema` and `cost_model` must outlive the service. `factory` is
  /// invoked options.num_workers times, once per worker.
  QueryService(const Schema& schema, const AcquisitionCostModel& cost_model,
               const PlanBuilderFactory& factory, Options options);

  /// Drains in-flight requests, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits one request. The returned future resolves on a worker thread
  /// (or immediately, when the request is load-shed). The query need not be
  /// canonicalized; the tuple must be valid for the schema.
  /// `deadline_seconds` is relative to submission: requests not picked up
  /// by a worker within it are answered kDeadlineExceeded. Negative uses
  /// Options::default_deadline_seconds; 0 means no deadline.
  std::future<Response> Submit(Query query, Tuple tuple,
                               double deadline_seconds = -1.0);

  /// Convenience synchronous form.
  Response SubmitAndWait(Query query, Tuple tuple,
                         double deadline_seconds = -1.0);

  /// Estimator refresh: bumps the version component of future cache keys
  /// and eagerly drops all cached plans. A request racing with the bump may
  /// still insert a plan under the old version; such entries are
  /// unreachable afterwards and age out of the LRU.
  void InvalidateCache();

  /// Callback form of InvalidateCache, shaped for
  /// AdaptivePlanner::Options::on_plan_adopted. Safe to call from any
  /// thread; must not outlive the service.
  std::function<void()> InvalidationHook();

  uint64_t estimator_version() const {
    return estimator_version_.load(std::memory_order_relaxed);
  }

  const ShardedPlanCache& cache() const { return cache_; }
  size_t num_workers() const { return pool_->num_threads(); }

  /// Merged request-stream counts + latency histogram. Snapshot cost is
  /// O(workers x metrics); safe to call concurrently with traffic.
  ServeReport Report() const;

  /// The per-worker metric shards behind Report(), for full JSON export.
  const obs::ShardedRegistry& metrics() const { return metrics_; }

  /// Span buffers + flight recorder. Populated only when
  /// Options::enable_tracing; export with obs::TraceEventsToJson.
  const obs::TraceRecorder& trace_recorder() const { return tracer_; }

  /// Burn-rate monitor, or nullptr unless Options::enable_slo. Snapshot its
  /// gauges for /metrics with GetSnapshot(obs::MonotonicNowNs()).
  const obs::SloMonitor* slo_monitor() const { return slo_.get(); }

  /// Burn fires so far (0 when SLO monitoring is off).
  uint64_t slo_burns_fired() const {
    return slo_ != nullptr ? slo_->burns_fired() : 0;
  }

  /// Cumulative calibration report (predicted vs. observed, per plan and
  /// per attribute) since service start. Empty report unless
  /// Options::enable_calibration. Safe to call concurrently with traffic.
  obs::CalibrationReport CalibrationSnapshot() const;

  /// Evaluates one drift window against Options::drift and fires
  /// InvalidateCache when the policy says so (see DriftPolicy). Serialized
  /// internally; call from a monitor thread at your snapshot cadence.
  /// No-op status (empty window) unless Options::enable_calibration.
  DriftStatus CheckDrift();

  /// The box installed by widen-mode drift firings so far (default box —
  /// degenerate — before the first firing). Thread-safe.
  opt::UncertaintyBox CurrentUncertaintyBox() const;

 private:
  /// Metric refs prefetched from one worker's shard at construction: the
  /// hot path does zero by-name lookups and writes only worker-local lines.
  struct WorkerMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* planned = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* planner_timeouts = nullptr;
    obs::Histogram* latency = nullptr;
  };

  Response Handle(size_t worker_id, const Query& query, const Tuple& tuple,
                  double deadline, uint64_t trace_id, uint64_t submit_ns);

  /// Compile + (when calibration is on and the builder exposes an
  /// estimator) stamp predicted side tables. All three plan-producing
  /// sites in Handle go through here so every executed plan carries the
  /// same metadata.
  std::shared_ptr<const CompiledPlan> CompileForServe(PlanBuilder& builder,
                                                      Plan plan) const;

  bool tracing_on() const { return options_.enable_tracing; }

  const Schema& schema_;
  const AcquisitionCostModel& cost_model_;
  Options options_;
  std::vector<std::unique_ptr<PlanBuilder>> builders_;  // one per worker
  uint64_t planner_fingerprint_ = 0;
  ShardedPlanCache cache_;
  SingleFlight flight_;
  std::atomic<uint64_t> estimator_version_{0};
  /// Requests admitted but not yet completed; drives load shedding.
  std::atomic<size_t> pending_{0};
  /// Shed happens on submitter threads, which own no shard; count it here.
  std::atomic<uint64_t> shed_{0};

  obs::ShardedRegistry metrics_;  // one shard per worker
  std::vector<WorkerMetrics> worker_metrics_;
  obs::TraceRecorder tracer_;

  /// Null unless Options::enable_slo.
  std::unique_ptr<obs::SloMonitor> slo_;
  /// Monotonic deadline of the active burn-shed window (0 = none armed).
  std::atomic<uint64_t> burn_shed_until_ns_{0};

  /// Predicted-vs-observed aggregation, one shard per worker. Null unless
  /// Options::enable_calibration.
  std::unique_ptr<obs::CalibrationAggregator> calibration_;
  /// Serializes CheckDrift callers and guards the window state below.
  mutable std::mutex drift_mu_;
  /// Cumulative report as of the previous CheckDrift (window baseline).
  obs::CalibrationReport drift_baseline_;
  int drift_streak_ = 0;
  /// Box accumulated by widen-mode firings (monotone under MergeFrom).
  opt::UncertaintyBox robust_box_;

  /// Last member: its destructor drains the queue while everything the
  /// workers touch is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

/// ServeReport as JSON: the counters verbatim plus the latency histogram in
/// obs::WriteHistogram's format (bucket entries carry [lo, hi) bounds).
std::string ServeReportToJson(const ServeReport& report);

}  // namespace serve
}  // namespace caqp

#endif  // CAQP_SERVE_QUERY_SERVICE_H_
