// Sharded LRU cache of compiled plans, keyed on
// (query signature, estimator version, planner-config fingerprint).
//
// Key semantics:
//  * query signature — QuerySignature(query) (core/query_signature.h):
//    canonicalized, so predicate/conjunct order never causes a miss.
//  * estimator version — a counter the owning QueryService bumps whenever
//    the statistics a planner would train on change (estimator refresh,
//    adaptive replanner adoption). Bumping orphans every cached plan without
//    touching the cache: old-version keys are simply never asked for again
//    and age out of the LRU. InvalidateAll() additionally drops them eagerly.
//  * planner fingerprint — PlanBuilder::ConfigFingerprint(): planner kind +
//    options + training-data identity, so services with different planner
//    configs never alias plans.
//
// Values are shared_ptr<const CompiledPlan>: a hit hands out a reference to the
// immutable compiled plan, never a deep copy, and eviction cannot free a
// plan still executing on another thread.
//
// Concurrency: the key space is split across `shards` independently locked
// LRU maps by the high bits of the key hash; LRU order is per-shard. Hit /
// miss / insert / eviction / invalidation counts feed both the local Stats
// snapshot and the caqp::obs registry ("serve.cache.*").

#ifndef CAQP_SERVE_PLAN_CACHE_H_
#define CAQP_SERVE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"
#include "plan/compiled_plan.h"

namespace caqp {
namespace serve {

struct PlanCacheKey {
  uint64_t query_sig = 0;
  uint64_t estimator_version = 0;
  uint64_t planner_fingerprint = 0;

  bool operator==(const PlanCacheKey&) const = default;
};

struct PlanCacheKeyHash {
  size_t operator()(const PlanCacheKey& k) const {
    size_t h = HashCombine(k.query_sig, k.estimator_version);
    return HashCombine(h, k.planner_fingerprint);
  }
};

class ShardedPlanCache {
 public:
  struct Options {
    /// Total entries across shards. 0 disables the cache entirely (every
    /// Get misses, Put is a no-op) — the plan-per-query baseline.
    size_t capacity = 1024;
    size_t shards = 8;
  };

  /// Point-in-time counter snapshot (monotonic over the cache lifetime).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  ///< entries dropped by InvalidateAll
  };

  explicit ShardedPlanCache(Options options);

  /// Returns the cached plan and refreshes its LRU position, or nullptr.
  std::shared_ptr<const CompiledPlan> Get(const PlanCacheKey& key);

  /// Inserts (or replaces) the plan for `key`, evicting the shard's
  /// least-recently-used entries if over budget.
  void Put(const PlanCacheKey& key, std::shared_ptr<const CompiledPlan> plan);

  /// Eagerly drops every entry (estimator refresh). Version-bumped keys
  /// would age out anyway; this frees their memory immediately.
  void InvalidateAll();

  /// Current entry count across shards (racy-by-design snapshot).
  size_t size() const;

  Stats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<PlanCacheKey, std::shared_ptr<const CompiledPlan>>> lru;
    std::unordered_map<PlanCacheKey,
                       std::list<std::pair<PlanCacheKey,
                                           std::shared_ptr<const CompiledPlan>>>::
                           iterator,
                       PlanCacheKeyHash>
        index;
  };

  Shard& ShardFor(const PlanCacheKey& key);

  Options options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace serve
}  // namespace caqp

#endif  // CAQP_SERVE_PLAN_CACHE_H_
