#include "exec/executor.h"

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

namespace {

// Templating on kTraced lets the no-trace instantiation drop every event
// hook at compile time: ExecutePlan with a null sink runs the exact same
// code as an uninstrumented executor (bench/bench_obs_overhead.cc measures
// the residual dispatch cost).
template <bool kTraced>
ExecutionResult ExecutePlanImpl(const Plan& plan, const Schema& schema,
                                const AcquisitionCostModel& cost_model,
                                AcquisitionSource& source, TraceSink* trace) {
  ExecutionResult out;
  // Cache of acquired values; valid where out.acquired has the bit set.
  std::vector<Value> values(schema.num_attributes(), 0);

  auto acquire = [&](AttrId a) -> Value {
    if (!out.acquired.Contains(a)) {
      const double marginal = cost_model.Cost(a, out.acquired);
      out.cost += marginal;
      out.acquired.Insert(a);
      ++out.acquisitions;
      values[a] = source.Acquire(a);
      if constexpr (kTraced) trace->OnAcquire(a, values[a], marginal);
    }
    return values[a];
  };

  const PlanNode* n = &plan.root();
  while (n->kind == PlanNode::Kind::kSplit) {
    const Value v = acquire(n->attr);
    const bool ge = v >= n->split_value;
    if constexpr (kTraced) trace->OnBranch(n->attr, n->split_value, ge);
    n = ge ? n->ge.get() : n->lt.get();
  }

  switch (n->kind) {
    case PlanNode::Kind::kVerdict:
      out.verdict = n->verdict;
      break;
    case PlanNode::Kind::kSequential: {
      out.verdict = true;
      for (const Predicate& p : n->sequence) {
        if (!p.Matches(acquire(p.attr))) {
          out.verdict = false;
          break;
        }
      }
      break;
    }
    case PlanNode::Kind::kGeneric: {
      RangeVec ranges = schema.FullRanges();
      for (size_t a = 0; a < schema.num_attributes(); ++a) {
        if (out.acquired.Contains(static_cast<AttrId>(a))) {
          ranges[a] = ValueRange{values[a], values[a]};
        }
      }
      Truth t = n->residual_query.EvaluateOnRanges(ranges);
      for (size_t k = 0; t == Truth::kUnknown && k < n->acquire_order.size();
           ++k) {
        const AttrId a = n->acquire_order[k];
        const Value v = acquire(a);
        ranges[a] = ValueRange{v, v};
        t = n->residual_query.EvaluateOnRanges(ranges);
      }
      CAQP_CHECK(t != Truth::kUnknown);
      out.verdict = (t == Truth::kTrue);
      break;
    }
    case PlanNode::Kind::kSplit:
      CAQP_CHECK(false);
  }
  if constexpr (kTraced) trace->OnVerdict(out.verdict, out.cost);
  return out;
}

}  // namespace

ExecutionResult ExecutePlan(const Plan& plan, const Schema& schema,
                            const AcquisitionCostModel& cost_model,
                            AcquisitionSource& source, TraceSink* trace) {
  ExecutionResult out =
      trace ? ExecutePlanImpl<true>(plan, schema, cost_model, source, trace)
            : ExecutePlanImpl<false>(plan, schema, cost_model, source, nullptr);
  CAQP_OBS_COUNTER_INC("exec.tuples");
  CAQP_OBS_COUNTER_ADD("exec.acquisitions",
                       static_cast<uint64_t>(out.acquisitions));
  return out;
}

}  // namespace caqp
