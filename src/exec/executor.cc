#include "exec/executor.h"

namespace caqp {

ExecutionResult ExecutePlan(const Plan& plan, const Schema& schema,
                            const AcquisitionCostModel& cost_model,
                            AcquisitionSource& source) {
  ExecutionResult out;
  // Cache of acquired values; valid where out.acquired has the bit set.
  std::vector<Value> values(schema.num_attributes(), 0);

  auto acquire = [&](AttrId a) -> Value {
    if (!out.acquired.Contains(a)) {
      out.cost += cost_model.Cost(a, out.acquired);
      out.acquired.Insert(a);
      ++out.acquisitions;
      values[a] = source.Acquire(a);
    }
    return values[a];
  };

  const PlanNode* n = &plan.root();
  while (n->kind == PlanNode::Kind::kSplit) {
    const Value v = acquire(n->attr);
    n = (v >= n->split_value) ? n->ge.get() : n->lt.get();
  }

  switch (n->kind) {
    case PlanNode::Kind::kVerdict:
      out.verdict = n->verdict;
      break;
    case PlanNode::Kind::kSequential: {
      out.verdict = true;
      for (const Predicate& p : n->sequence) {
        if (!p.Matches(acquire(p.attr))) {
          out.verdict = false;
          break;
        }
      }
      break;
    }
    case PlanNode::Kind::kGeneric: {
      RangeVec ranges = schema.FullRanges();
      for (size_t a = 0; a < schema.num_attributes(); ++a) {
        if (out.acquired.Contains(static_cast<AttrId>(a))) {
          ranges[a] = ValueRange{values[a], values[a]};
        }
      }
      Truth t = n->residual_query.EvaluateOnRanges(ranges);
      for (size_t k = 0; t == Truth::kUnknown && k < n->acquire_order.size();
           ++k) {
        const AttrId a = n->acquire_order[k];
        const Value v = acquire(a);
        ranges[a] = ValueRange{v, v};
        t = n->residual_query.EvaluateOnRanges(ranges);
      }
      CAQP_CHECK(t != Truth::kUnknown);
      out.verdict = (t == Truth::kTrue);
      break;
    }
    case PlanNode::Kind::kSplit:
      CAQP_CHECK(false);
  }
  return out;
}

}  // namespace caqp
