#include "exec/executor.h"

#include <algorithm>
#include <type_traits>

#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace caqp {
namespace internal {

// Templating on kTraced lets the no-trace instantiation drop every event
// hook at compile time: ExecutePlan with a null sink runs the exact same
// code as an uninstrumented executor (bench/bench_obs_overhead.cc measures
// the residual dispatch cost). kProfiled does the same for the calibration
// counter hooks (exec/exec_profile.h). aligned(64): these are the library's
// hottest loops, and cache-line-aligned entry keeps their per-tuple cost
// stable across otherwise-unrelated link-order changes — the overhead bench
// compares them against equally aligned mirrors at ns/tuple resolution.
template <bool kTraced, bool kProfiled>
__attribute__((aligned(64))) ExecutionResult ExecutePlanImpl(
    const Plan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    TraceSink* trace, const DegradationPolicy& policy,
    ExecutionProfile* profile) {
  ExecutionResult out;
  // Cache of acquired values; valid where out.acquired has the bit set.
  std::vector<Value> values(schema.num_attributes(), 0);
  const int max_attempts =
      policy.mode == DegradationPolicy::Mode::kRetry
          ? std::max(1, policy.max_attempts)
          : 1;

  // Acquires `a` (retrying per policy), returning true and filling *v on
  // success. Every attempt is charged: the sensor is energized whether or
  // not it returns a sample. A permanently failed attribute is remembered so
  // later plan references don't pay again for a sensor known to be dead.
  auto acquire = [&](AttrId a, Value* v) -> bool {
    if (out.acquired.Contains(a)) {
      *v = values[a];
      return true;
    }
    if (out.failed.Contains(a)) return false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      const AcquiredValue av = source.Acquire(a);
      double marginal = cost_model.Cost(a, out.acquired) * av.cost_multiplier;
      if (attempt > 0) {
        marginal *= policy.retry_cost_multiplier;
        ++out.retries;
      }
      out.cost += marginal;
      if (av.ok) {
        out.acquired.Insert(a);
        ++out.acquisitions;
        values[a] = av.value;
        if constexpr (kTraced) trace->OnAcquire(a, av.value, marginal);
        *v = av.value;
        return true;
      }
      if (av.permanent) break;  // stuck sensor: retrying cannot help
    }
    out.failed.Insert(a);
    return false;
  };

  // Sets the degraded outcome for a failed acquisition the plan could not
  // work around; returns true when execution must stop (kAbort).
  auto degrade = [&]() -> bool {
    out.verdict3 = Truth::kUnknown;
    if (policy.mode == DegradationPolicy::Mode::kAbort) {
      out.aborted = true;
      return true;
    }
    return false;
  };

  const PlanNode* n = &plan.root();
  Value v = 0;
  bool routed = true;
  while (n->kind == PlanNode::Kind::kSplit) {
    if constexpr (kProfiled) profile->NodeEval(n->id);
    if (!acquire(n->attr, &v)) {
      // A split cannot route without its attribute: no residual conjuncts
      // are visible here, so the verdict degrades straight to Unknown.
      if constexpr (kProfiled) profile->NodeUnknown(n->id);
      (void)degrade();
      routed = false;
      break;
    }
    const bool ge = v >= n->split_value;
    if constexpr (kTraced) trace->OnBranch(n->attr, n->split_value, ge);
    if constexpr (kProfiled) {
      profile->PredEval(n->attr, ge);
      if (ge) profile->NodePass(n->id);
    }
    n = ge ? n->ge.get() : n->lt.get();
  }

  if (routed) {
    if constexpr (kProfiled) profile->NodeEval(n->id);
    switch (n->kind) {
      case PlanNode::Kind::kVerdict:
        out.verdict3 = n->verdict ? Truth::kTrue : Truth::kFalse;
        break;
      case PlanNode::Kind::kSequential: {
        // Three-valued short-circuit AND: a failed acquisition leaves the
        // conjunct Unknown but scanning continues — a later false conjunct
        // still decides the verdict (defined kFalse).
        Truth t = Truth::kTrue;
        for (const Predicate& p : n->sequence) {
          if (!acquire(p.attr, &v)) {
            if (degrade()) break;
            t = Truth::kUnknown;
            continue;
          }
          const bool match = p.Matches(v);
          if constexpr (kProfiled) profile->PredEval(p.attr, match);
          if (!match) {
            t = Truth::kFalse;
            break;
          }
        }
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case PlanNode::Kind::kGeneric: {
        RangeVec ranges = schema.FullRanges();
        for (size_t a = 0; a < schema.num_attributes(); ++a) {
          if (out.acquired.Contains(static_cast<AttrId>(a))) {
            ranges[a] = ValueRange{values[a], values[a]};
          }
        }
        Truth t = n->residual_query.EvaluateOnRanges(ranges);
        for (size_t k = 0; t == Truth::kUnknown && k < n->acquire_order.size();
             ++k) {
          const AttrId a = n->acquire_order[k];
          if (!acquire(a, &v)) {
            if (degrade()) break;
            continue;  // range stays full; later attributes may still decide
          }
          ranges[a] = ValueRange{v, v};
          t = n->residual_query.EvaluateOnRanges(ranges);
        }
        // Without failures the acquisition order must resolve the query.
        CAQP_CHECK(t != Truth::kUnknown || out.failed.Count() > 0);
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case PlanNode::Kind::kSplit:
        CAQP_CHECK(false);
    }
    if constexpr (kProfiled) {
      if (out.verdict3 == Truth::kTrue) {
        profile->NodePass(n->id);
      } else if (out.verdict3 == Truth::kUnknown) {
        profile->NodeUnknown(n->id);
      }
    }
  }
  out.verdict = out.verdict3 == Truth::kTrue;
  if constexpr (kTraced) trace->OnVerdict(out.verdict, out.cost);
  if constexpr (kProfiled) {
    profile->EndExecution(out.cost, out.acquisitions,
                          out.verdict3 == Truth::kUnknown);
  }
  return out;
}

// Flat-form twin of ExecutePlanImpl. Kept textually parallel on purpose:
// the two must stay semantically identical bit for bit (the tree↔flat
// equivalence property test in tests/compiled_plan_test.cc enforces it
// across planners, workloads, and fault profiles).
template <bool kTraced, bool kProfiled>
__attribute__((aligned(64))) ExecutionResult ExecuteCompiledImpl(
    const CompiledPlan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    TraceSink* trace, const DegradationPolicy& policy,
    ExecutionProfile* profile) {
  ExecutionResult out;
  // AttrSet bounds schemas to 64 attributes library-wide, so a fixed scratch
  // buffer replaces the tree path's per-call vector; valid where
  // out.acquired has the bit set.
  CAQP_DCHECK(schema.num_attributes() <= 64);
  Value values[64];
  const int max_attempts =
      policy.mode == DegradationPolicy::Mode::kRetry
          ? std::max(1, policy.max_attempts)
          : 1;

  // Attempt loop for an attribute known to be neither acquired nor failed
  // yet (first-acquisition splits branch here directly, with no set lookup).
  auto attempt = [&](AttrId a, Value* v) -> bool {
    for (int att = 0; att < max_attempts; ++att) {
      const AcquiredValue av = source.Acquire(a);
      double marginal = cost_model.Cost(a, out.acquired) * av.cost_multiplier;
      if (att > 0) {
        marginal *= policy.retry_cost_multiplier;
        ++out.retries;
      }
      out.cost += marginal;
      if (av.ok) {
        out.acquired.Insert(a);
        ++out.acquisitions;
        values[a] = av.value;
        if constexpr (kTraced) trace->OnAcquire(a, av.value, marginal);
        *v = av.value;
        return true;
      }
      if (av.permanent) break;  // stuck sensor: retrying cannot help
    }
    out.failed.Insert(a);
    return false;
  };

  // Leaf-path acquisition: leaves may reference attributes the split walk
  // already acquired (or failed), so the full checks remain here.
  auto acquire = [&](AttrId a, Value* v) -> bool {
    if (out.acquired.Contains(a)) {
      *v = values[a];
      return true;
    }
    if (out.failed.Contains(a)) return false;
    return attempt(a, v);
  };

  auto degrade = [&]() -> bool {
    out.verdict3 = Truth::kUnknown;
    if (policy.mode == DegradationPolicy::Mode::kAbort) {
      out.aborted = true;
      return true;
    }
    return false;
  };

  uint32_t idx = 0;
  const CompiledPlan::Node* n = &plan.node(0);
  Value v = 0;
  bool routed = true;
  while (n->kind == CompiledPlan::Kind::kSplit) {
    if constexpr (kProfiled) profile->NodeEval(idx);
    if (n->first_acquisition()) {
      if (!attempt(n->attr, &v)) {
        // A split cannot route without its attribute: no residual conjuncts
        // are visible here, so the verdict degrades straight to Unknown.
        if constexpr (kProfiled) profile->NodeUnknown(idx);
        (void)degrade();
        routed = false;
        break;
      }
    } else {
      // A repeat split is only reachable when the first acquisition on this
      // path succeeded (a failure ends the walk above): cached value, no
      // set lookup.
      v = values[n->attr];
    }
    const bool ge = v >= n->split_value;
    if constexpr (kTraced) trace->OnBranch(n->attr, n->split_value, ge);
    if constexpr (kProfiled) {
      profile->PredEval(n->attr, ge);
      if (ge) profile->NodePass(idx);
    }
    idx = ge ? n->a : idx + 1;
    n = &plan.node(idx);
  }

  if (routed) {
    if constexpr (kProfiled) profile->NodeEval(idx);
    switch (n->kind) {
      case CompiledPlan::Kind::kVerdict:
        out.verdict3 = n->verdict() ? Truth::kTrue : Truth::kFalse;
        break;
      case CompiledPlan::Kind::kSequential: {
        Truth t = Truth::kTrue;
        for (const Predicate& p : plan.sequence(*n)) {
          if (!acquire(p.attr, &v)) {
            if (degrade()) break;
            t = Truth::kUnknown;
            continue;
          }
          const bool match = p.Matches(v);
          if constexpr (kProfiled) profile->PredEval(p.attr, match);
          if (!match) {
            t = Truth::kFalse;
            break;
          }
        }
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case CompiledPlan::Kind::kGeneric: {
        const Query& query = plan.residual_query(*n);
        RangeVec ranges = schema.FullRanges();
        for (size_t a = 0; a < schema.num_attributes(); ++a) {
          if (out.acquired.Contains(static_cast<AttrId>(a))) {
            ranges[a] = ValueRange{values[a], values[a]};
          }
        }
        Truth t = query.EvaluateOnRanges(ranges);
        for (const AttrId a : plan.acquire_order(*n)) {
          if (t != Truth::kUnknown) break;
          if (!acquire(a, &v)) {
            if (degrade()) break;
            continue;  // range stays full; later attributes may still decide
          }
          ranges[a] = ValueRange{v, v};
          t = query.EvaluateOnRanges(ranges);
        }
        // Without failures the acquisition order must resolve the query.
        CAQP_CHECK(t != Truth::kUnknown || out.failed.Count() > 0);
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case CompiledPlan::Kind::kSplit:
        CAQP_CHECK(false);
    }
    if constexpr (kProfiled) {
      if (out.verdict3 == Truth::kTrue) {
        profile->NodePass(idx);
      } else if (out.verdict3 == Truth::kUnknown) {
        profile->NodeUnknown(idx);
      }
    }
  }
  out.verdict = out.verdict3 == Truth::kTrue;
  if constexpr (kTraced) trace->OnVerdict(out.verdict, out.cost);
  if constexpr (kProfiled) {
    profile->EndExecution(out.cost, out.acquisitions,
                          out.verdict3 == Truth::kUnknown);
  }
  return out;
}

// The inline ExecutePlan wrappers (executor.h) call these instantiations
// directly when there is no trace sink and instrumentation is
// runtime-disabled, so the disabled path is the uninstrumented executor
// plus one inline load and a branch in the caller (bench_obs_overhead
// holds it under 5% per tuple). The traced/profiled instantiations are
// implicit: only the Obs dispatchers below reach them.
template ExecutionResult ExecutePlanImpl<false, false>(
    const Plan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    TraceSink* trace, const DegradationPolicy& policy,
    ExecutionProfile* profile);
template ExecutionResult ExecuteCompiledImpl<false, false>(
    const CompiledPlan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    TraceSink* trace, const DegradationPolicy& policy,
    ExecutionProfile* profile);

}  // namespace internal

namespace {

void EmitExecObs(const ExecutionResult& out) {
  // One gate for the whole emission: per-tuple cost when disabled is a
  // single relaxed load + branch instead of one per counter site (the flat
  // executor's <5% obs-off budget in bench_obs_overhead is only ~1.5 ns).
  if (!obs::Enabled()) return;
  CAQP_OBS_COUNTER_INC("exec.tuples");
  CAQP_OBS_COUNTER_ADD("exec.acquisitions",
                       static_cast<uint64_t>(out.acquisitions));
  if (out.retries > 0) {
    CAQP_OBS_COUNTER_ADD("exec.retries", static_cast<uint64_t>(out.retries));
  }
  if (out.failed.Count() > 0) {
    CAQP_OBS_COUNTER_ADD("exec.failed_attributes",
                         static_cast<uint64_t>(out.failed.Count()));
  }
  if (out.aborted) {
    CAQP_OBS_COUNTER_INC("exec.aborts");
  } else if (out.verdict3 == Truth::kUnknown) {
    CAQP_OBS_COUNTER_INC("exec.unknown_verdicts");
  }
}

}  // namespace

namespace internal {
namespace {

// Single kTraced/kProfiled/plan-form dispatch point shared by both Obs entry
// paths (and any future ones): the 2x2 trace/profile fan-out is written once
// here instead of per plan form.
template <bool kTraced, bool kProfiled, typename PlanT>
ExecutionResult DispatchImpl(const PlanT& plan, const Schema& schema,
                             const AcquisitionCostModel& cost_model,
                             AcquisitionSource& source, TraceSink* trace,
                             const DegradationPolicy& policy,
                             ExecutionProfile* profile) {
  if constexpr (std::is_same_v<PlanT, Plan>) {
    return ExecutePlanImpl<kTraced, kProfiled>(plan, schema, cost_model,
                                               source, trace, policy, profile);
  } else {
    return ExecuteCompiledImpl<kTraced, kProfiled>(
        plan, schema, cost_model, source, trace, policy, profile);
  }
}

template <typename PlanT>
ExecutionResult ExecuteObs(const PlanT& plan, const Schema& schema,
                           const AcquisitionCostModel& cost_model,
                           AcquisitionSource& source, TraceSink* trace,
                           const DegradationPolicy& policy,
                           ExecutionProfile* profile) {
  // Reached when instrumentation is enabled or a trace sink is present. The
  // whole obs block — the request-tracing span, the counter emission, and
  // calibration profiling — still sits behind one relaxed load, so a
  // traced-but-disabled run pays no obs cost. Spans additionally require
  // the thread to be bound to a serve request scope (obs/span.h).
  if (!obs::Enabled()) {
    return trace ? DispatchImpl<true, false>(plan, schema, cost_model, source,
                                             trace, policy, nullptr)
                 : DispatchImpl<false, false>(plan, schema, cost_model, source,
                                              nullptr, policy, nullptr);
  }
  CAQP_OBS_SPAN(exec_span, "exec");
  ExecutionResult out;
  if (profile != nullptr) {
    out = trace ? DispatchImpl<true, true>(plan, schema, cost_model, source,
                                           trace, policy, profile)
                : DispatchImpl<false, true>(plan, schema, cost_model, source,
                                            nullptr, policy, profile);
  } else {
    out = trace ? DispatchImpl<true, false>(plan, schema, cost_model, source,
                                            trace, policy, nullptr)
                : DispatchImpl<false, false>(plan, schema, cost_model, source,
                                             nullptr, policy, nullptr);
  }
  EmitExecObs(out);
  return out;
}

}  // namespace

ExecutionResult ExecutePlanObs(const Plan& plan, const Schema& schema,
                               const AcquisitionCostModel& cost_model,
                               AcquisitionSource& source, TraceSink* trace,
                               const DegradationPolicy& policy,
                               ExecutionProfile* profile) {
  return ExecuteObs(plan, schema, cost_model, source, trace, policy, profile);
}

ExecutionResult ExecuteCompiledObs(const CompiledPlan& plan,
                                   const Schema& schema,
                                   const AcquisitionCostModel& cost_model,
                                   AcquisitionSource& source, TraceSink* trace,
                                   const DegradationPolicy& policy,
                                   ExecutionProfile* profile) {
  return ExecuteObs(plan, schema, cost_model, source, trace, policy, profile);
}

}  // namespace internal

BatchExecutionStats ExecuteBatch(const CompiledPlan& plan, const Dataset& data,
                                 std::span<const RowId> rows,
                                 const AcquisitionCostModel& cost_model,
                                 std::vector<uint8_t>* verdicts) {
  CAQP_OBS_SPAN(batch_span, "exec.batch");
  const Schema& schema = data.schema();
  // Runtime check in every build mode: the Value scratch below is 64-wide,
  // and a wider schema would corrupt it silently in release builds. Schema
  // construction enforces the same bound; this guards hand-built schemas.
  CAQP_CHECK(schema.num_attributes() <= 64);
  BatchExecutionStats stats;
  stats.tuples = rows.size();
  if (verdicts != nullptr) {
    verdicts->clear();
    verdicts->reserve(rows.size());
  }
  Value values[64];
  for (const RowId row : rows) {
    AttrSet acquired;
    double cost = 0.0;
    // Infallible, dedup'd read of attribute `a` for this row.
    auto acquire = [&](AttrId a) -> Value {
      if (!acquired.Contains(a)) {
        cost += cost_model.Cost(a, acquired);
        acquired.Insert(a);
        ++stats.total_acquisitions;
        values[a] = data.at(row, a);
      }
      return values[a];
    };

    uint32_t idx = 0;
    const CompiledPlan::Node* n = &plan.node(0);
    while (n->kind == CompiledPlan::Kind::kSplit) {
      Value v;
      if (n->first_acquisition()) {
        cost += cost_model.Cost(n->attr, acquired);
        acquired.Insert(n->attr);
        ++stats.total_acquisitions;
        v = values[n->attr] = data.at(row, n->attr);
      } else {
        v = values[n->attr];
      }
      idx = (v >= n->split_value) ? n->a : idx + 1;
      n = &plan.node(idx);
    }

    bool verdict = false;
    switch (n->kind) {
      case CompiledPlan::Kind::kVerdict:
        verdict = n->verdict();
        break;
      case CompiledPlan::Kind::kSequential:
        verdict = true;
        for (const Predicate& p : plan.sequence(*n)) {
          if (!p.Matches(acquire(p.attr))) {
            verdict = false;
            break;
          }
        }
        break;
      case CompiledPlan::Kind::kGeneric: {
        const Query& query = plan.residual_query(*n);
        RangeVec ranges = schema.FullRanges();
        for (size_t a = 0; a < schema.num_attributes(); ++a) {
          if (acquired.Contains(static_cast<AttrId>(a))) {
            ranges[a] = ValueRange{values[a], values[a]};
          }
        }
        Truth t = query.EvaluateOnRanges(ranges);
        for (const AttrId a : plan.acquire_order(*n)) {
          if (t != Truth::kUnknown) break;
          const Value v = acquire(a);
          ranges[a] = ValueRange{v, v};
          t = query.EvaluateOnRanges(ranges);
        }
        CAQP_CHECK(t != Truth::kUnknown);
        verdict = (t == Truth::kTrue);
        break;
      }
      case CompiledPlan::Kind::kSplit:
        CAQP_CHECK(false);
    }
    stats.total_cost += cost;
    stats.acquired = stats.acquired.Union(acquired);
    if (verdict) ++stats.matches;
    if (verdicts != nullptr) verdicts->push_back(verdict ? 1 : 0);
  }
  CAQP_OBS_COUNTER_ADD("exec.tuples", static_cast<uint64_t>(stats.tuples));
  CAQP_OBS_COUNTER_ADD("exec.acquisitions",
                       static_cast<uint64_t>(stats.total_acquisitions));
  return stats;
}

}  // namespace caqp
