#include "exec/result_serde.h"

#include <cmath>
#include <limits>

#include "common/bytes.h"

namespace caqp {

namespace {
constexpr uint8_t kFlagAborted = 1u << 0;
constexpr uint8_t kFlagTraceContext = 1u << 1;
constexpr uint8_t kAllFlags = kFlagAborted | kFlagTraceContext;
}  // namespace

std::vector<uint8_t> SerializeExecutionResult(const ExecutionResult& result,
                                              const ResultTraceContext& trace) {
  ByteWriter w;
  w.PutU8(kResultWireFormatVersion);
  w.PutU8(static_cast<uint8_t>(result.verdict3));
  uint8_t flags = result.aborted ? kFlagAborted : 0;
  if (trace.present()) flags |= kFlagTraceContext;
  w.PutU8(flags);
  w.PutDouble(result.cost);
  w.PutVarint(static_cast<uint64_t>(result.acquisitions));
  w.PutVarint(static_cast<uint64_t>(result.retries));
  w.PutVarint(result.acquired.bits);
  w.PutVarint(result.failed.bits);
  if (trace.present()) {
    w.PutVarint(trace.trace_id);
    w.PutVarint(trace.root_span_id);
    w.PutVarint(trace.parent_span_id);
  }
  return w.bytes();
}

Result<ExecutionResult> DeserializeExecutionResult(
    const std::vector<uint8_t>& bytes) {
  return DeserializeExecutionResult(bytes, nullptr);
}

Result<ExecutionResult> DeserializeExecutionResult(
    const std::vector<uint8_t>& bytes, ResultTraceContext* trace) {
  if (trace != nullptr) *trace = ResultTraceContext{};
  ByteReader r(bytes);
  uint8_t version = 0;
  CAQP_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kResultWireFormatVersion) {
    return Status::InvalidArgument("unknown result wire format version");
  }
  uint8_t verdict3 = 0;
  CAQP_RETURN_IF_ERROR(r.GetU8(&verdict3));
  if (verdict3 > static_cast<uint8_t>(Truth::kUnknown)) {
    return Status::InvalidArgument("result verdict3 out of range");
  }
  uint8_t flags = 0;
  CAQP_RETURN_IF_ERROR(r.GetU8(&flags));
  if ((flags & ~kAllFlags) != 0) {
    return Status::InvalidArgument("result flags has reserved bits set");
  }
  double cost = 0.0;
  CAQP_RETURN_IF_ERROR(r.GetDouble(&cost));
  if (!std::isfinite(cost) || cost < 0.0) {
    return Status::InvalidArgument("result cost not finite and non-negative");
  }
  uint64_t acquisitions = 0;
  uint64_t retries = 0;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&acquisitions));
  CAQP_RETURN_IF_ERROR(r.GetVarint(&retries));
  constexpr uint64_t kMaxCount =
      static_cast<uint64_t>(std::numeric_limits<int>::max());
  if (acquisitions > kMaxCount || retries > kMaxCount) {
    return Status::InvalidArgument("result count overflows int");
  }
  ExecutionResult out;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&out.acquired.bits));
  CAQP_RETURN_IF_ERROR(r.GetVarint(&out.failed.bits));
  if ((flags & kFlagTraceContext) != 0) {
    uint64_t trace_id = 0;
    uint64_t root_span = 0;
    uint64_t parent_span = 0;
    CAQP_RETURN_IF_ERROR(r.GetVarint(&trace_id));
    CAQP_RETURN_IF_ERROR(r.GetVarint(&root_span));
    CAQP_RETURN_IF_ERROR(r.GetVarint(&parent_span));
    if (trace_id == 0) {
      return Status::InvalidArgument("result trace context with trace_id 0");
    }
    constexpr uint64_t kMaxSpan =
        static_cast<uint64_t>(std::numeric_limits<uint32_t>::max());
    if (root_span > kMaxSpan || parent_span > kMaxSpan) {
      return Status::InvalidArgument("result span id overflows uint32");
    }
    if (trace != nullptr) {
      trace->trace_id = trace_id;
      trace->root_span_id = static_cast<uint32_t>(root_span);
      trace->parent_span_id = static_cast<uint32_t>(parent_span);
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after result encoding");
  }
  out.verdict3 = static_cast<Truth>(verdict3);
  out.verdict = out.verdict3 == Truth::kTrue;
  out.aborted = (flags & kFlagAborted) != 0;
  out.cost = cost;
  out.acquisitions = static_cast<int>(acquisitions);
  out.retries = static_cast<int>(retries);
  return out;
}

}  // namespace caqp
