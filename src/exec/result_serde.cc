#include "exec/result_serde.h"

#include <cmath>
#include <limits>

#include "common/bytes.h"

namespace caqp {

namespace {
constexpr uint8_t kFlagAborted = 1u << 0;
constexpr uint8_t kAllFlags = kFlagAborted;
}  // namespace

std::vector<uint8_t> SerializeExecutionResult(const ExecutionResult& result) {
  ByteWriter w;
  w.PutU8(kResultWireFormatVersion);
  w.PutU8(static_cast<uint8_t>(result.verdict3));
  w.PutU8(result.aborted ? kFlagAborted : 0);
  w.PutDouble(result.cost);
  w.PutVarint(static_cast<uint64_t>(result.acquisitions));
  w.PutVarint(static_cast<uint64_t>(result.retries));
  w.PutVarint(result.acquired.bits);
  w.PutVarint(result.failed.bits);
  return w.bytes();
}

Result<ExecutionResult> DeserializeExecutionResult(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t version = 0;
  CAQP_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kResultWireFormatVersion) {
    return Status::InvalidArgument("unknown result wire format version");
  }
  uint8_t verdict3 = 0;
  CAQP_RETURN_IF_ERROR(r.GetU8(&verdict3));
  if (verdict3 > static_cast<uint8_t>(Truth::kUnknown)) {
    return Status::InvalidArgument("result verdict3 out of range");
  }
  uint8_t flags = 0;
  CAQP_RETURN_IF_ERROR(r.GetU8(&flags));
  if ((flags & ~kAllFlags) != 0) {
    return Status::InvalidArgument("result flags has reserved bits set");
  }
  double cost = 0.0;
  CAQP_RETURN_IF_ERROR(r.GetDouble(&cost));
  if (!std::isfinite(cost) || cost < 0.0) {
    return Status::InvalidArgument("result cost not finite and non-negative");
  }
  uint64_t acquisitions = 0;
  uint64_t retries = 0;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&acquisitions));
  CAQP_RETURN_IF_ERROR(r.GetVarint(&retries));
  constexpr uint64_t kMaxCount =
      static_cast<uint64_t>(std::numeric_limits<int>::max());
  if (acquisitions > kMaxCount || retries > kMaxCount) {
    return Status::InvalidArgument("result count overflows int");
  }
  ExecutionResult out;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&out.acquired.bits));
  CAQP_RETURN_IF_ERROR(r.GetVarint(&out.failed.bits));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after result encoding");
  }
  out.verdict3 = static_cast<Truth>(verdict3);
  out.verdict = out.verdict3 == Truth::kTrue;
  out.aborted = (flags & kFlagAborted) != 0;
  out.cost = cost;
  out.acquisitions = static_cast<int>(acquisitions);
  out.retries = static_cast<int>(retries);
  return out;
}

}  // namespace caqp
