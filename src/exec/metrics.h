// Aggregated execution metrics and the comparison statistics the paper's
// evaluation plots: normalized costs (relative to Naive) and cumulative
// frequency of performance gain (Figure 8(c), Figures 10-11).

#ifndef CAQP_EXEC_METRICS_H_
#define CAQP_EXEC_METRICS_H_

#include <cmath>
#include <string>
#include <vector>

namespace caqp {

/// Streaming accumulator for per-tuple execution costs. Tracks mean and
/// population variance online (Welford's algorithm: numerically stable,
/// one pass, no stored samples) plus min/max.
class CostAccumulator {
 public:
  void Add(double cost) {
    total_ += cost;
    ++count_;
    const double delta = cost - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (cost - mean_);
    if (count_ == 1 || cost < min_) min_ = cost;
    if (count_ == 1 || cost > max_) max_ = cost;
  }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double total() const { return total_; }
  size_t count() const { return count_; }

 private:
  double total_ = 0.0;
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ratios of baseline cost to algorithm cost, one per experiment; >1 means
/// the algorithm beat the baseline. Mirrors the paper's "performance gain".
struct GainStats {
  double mean = 0.0;
  double min = 0.0;    ///< worst case across experiments
  double max = 0.0;    ///< best case
  double median = 0.0;
  double variance = 0.0;  ///< population variance
  double p25 = 0.0;    ///< lower-quartile gain (linear interpolation)
  double p75 = 0.0;    ///< upper-quartile gain
  double p95 = 0.0;    ///< near-best-case gain
};

GainStats SummarizeGains(std::vector<double> gains);

/// q-th percentile (q in [0,100]) of `sorted` by linear interpolation
/// between order statistics. `sorted` must be ascending and non-empty.
double SortedPercentile(const std::vector<double>& sorted, double q);

/// Cumulative-frequency curve over gains: for each threshold x returns the
/// fraction of experiments with gain >= x (the Figure 8(c) / 10 / 11 plot).
/// `points` thresholds are spaced between min and max gain. Degenerate
/// inputs collapse: empty gains (or points < 2) give an empty curve, and
/// all-equal gains give the single point {gain, 1.0}.
std::vector<std::pair<double, double>> CumulativeGainCurve(
    std::vector<double> gains, int points = 20);

/// Formats a markdown-style table row; benches share this for output.
std::string FormatRow(const std::vector<std::string>& cells,
                      const std::vector<int>& widths);

}  // namespace caqp

#endif  // CAQP_EXEC_METRICS_H_
