// Aggregated execution metrics and the comparison statistics the paper's
// evaluation plots: normalized costs (relative to Naive) and cumulative
// frequency of performance gain (Figure 8(c), Figures 10-11).

#ifndef CAQP_EXEC_METRICS_H_
#define CAQP_EXEC_METRICS_H_

#include <string>
#include <vector>

namespace caqp {

/// Streaming accumulator for per-tuple execution costs.
class CostAccumulator {
 public:
  void Add(double cost) {
    total_ += cost;
    ++count_;
  }
  double mean() const { return count_ ? total_ / count_ : 0.0; }
  double total() const { return total_; }
  size_t count() const { return count_; }

 private:
  double total_ = 0.0;
  size_t count_ = 0;
};

/// Ratios of baseline cost to algorithm cost, one per experiment; >1 means
/// the algorithm beat the baseline. Mirrors the paper's "performance gain".
struct GainStats {
  double mean = 0.0;
  double min = 0.0;    ///< worst case across experiments
  double max = 0.0;    ///< best case
  double median = 0.0;
};

GainStats SummarizeGains(std::vector<double> gains);

/// Cumulative-frequency curve over gains: for each threshold x returns the
/// fraction of experiments with gain >= x (the Figure 8(c) / 10 / 11 plot).
/// `points` thresholds are spaced between min and max gain.
std::vector<std::pair<double, double>> CumulativeGainCurve(
    std::vector<double> gains, int points = 20);

/// Formats a markdown-style table row; benches share this for output.
std::string FormatRow(const std::vector<std::string>& cells,
                      const std::vector<int>& widths);

}  // namespace caqp

#endif  // CAQP_EXEC_METRICS_H_
