// Plan execution engine (the "simple traversal of a binary tree" that runs
// on motes, paper Section 2.5). The executor is deliberately tiny and
// allocation-free on the hot path: current sensor hardware is the reason the
// paper computes plans offline, so execution must stay cheap.
//
// Values are pulled through an AcquisitionSource, which lets the same engine
// run over a recorded dataset, a live simulated sensor, or (in tests) a
// source that records the acquisition order.
//
// Acquisition is fallible: real motes brown out, sensors stick, and radios
// time out (paper Section 2.4), so Acquire returns an AcquiredValue that may
// report failure. How the executor degrades is controlled by a
// DegradationPolicy:
//
//  * kUnknownVerdict (default) -- a missing attribute propagates Unknown
//    through the plan tree, *unless* the remaining conjuncts already decide
//    the verdict (three-valued logic: a later false conjunct still yields a
//    defined kFalse).
//  * kRetry -- each failed acquisition is retried up to max_attempts total
//    attempts (each attempt is charged; retries at retry_cost_multiplier x
//    the marginal cost); exhausted retries degrade like kUnknownVerdict.
//  * kAbort -- the first failed acquisition aborts execution; the result
//    carries aborted=true and an Unknown verdict.

#ifndef CAQP_EXEC_EXECUTOR_H_
#define CAQP_EXEC_EXECUTOR_H_

#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/schema.h"
#include "exec/exec_profile.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "opt/cost_model.h"
#include "plan/compiled_plan.h"
#include "plan/plan.h"
#include "prob/subproblem.h"

namespace caqp {

/// Outcome of one acquisition attempt. Implicitly constructible from a
/// Value so infallible sources keep writing `return tuple_[attr];`.
struct AcquiredValue {
  Value value = 0;
  bool ok = true;
  /// Permanent (stuck-sensor) failure: retrying cannot help.
  bool permanent = false;
  /// Latency/cost spike factor for this attempt; the executor scales the
  /// marginal acquisition cost by it.
  double cost_multiplier = 1.0;

  AcquiredValue(Value v) : value(v) {}  // NOLINT: implicit by design
  static AcquiredValue Failure(bool permanent_failure = false) {
    AcquiredValue out(Value{0});
    out.ok = false;
    out.permanent = permanent_failure;
    return out;
  }
};

/// Supplies attribute values for the tuple currently being evaluated.
/// Acquire() is called at most once per attribute per tuple when every
/// attempt succeeds; under kRetry it may be called up to max_attempts times
/// for a failing attribute.
class AcquisitionSource {
 public:
  virtual ~AcquisitionSource() = default;
  virtual AcquiredValue Acquire(AttrId attr) = 0;
};

/// Source backed by a fully materialized tuple.
class TupleSource : public AcquisitionSource {
 public:
  explicit TupleSource(const Tuple& t) : tuple_(t) {}
  AcquiredValue Acquire(AttrId attr) override {
    CAQP_DCHECK(attr < tuple_.size());
    return tuple_[attr];
  }

 private:
  const Tuple& tuple_;
};

/// How ExecutePlan degrades when an acquisition fails (see file comment).
struct DegradationPolicy {
  enum class Mode : uint8_t { kUnknownVerdict = 0, kRetry = 1, kAbort = 2 };

  Mode mode = Mode::kUnknownVerdict;
  /// Total attempts per acquisition, including the first (kRetry only).
  int max_attempts = 1;
  /// Marginal-cost factor charged for each attempt after the first.
  double retry_cost_multiplier = 1.0;

  static DegradationPolicy UnknownVerdict() { return {}; }
  static DegradationPolicy Retry(int max_attempts,
                                 double retry_cost_multiplier = 1.0) {
    DegradationPolicy p;
    p.mode = Mode::kRetry;
    p.max_attempts = max_attempts;
    p.retry_cost_multiplier = retry_cost_multiplier;
    return p;
  }
  static DegradationPolicy Abort() {
    DegradationPolicy p;
    p.mode = Mode::kAbort;
    return p;
  }
};

/// Outcome of executing one plan over one tuple.
struct ExecutionResult {
  bool verdict = false;            ///< verdict3 == kTrue (two-valued view)
  Truth verdict3 = Truth::kFalse;  ///< tri-state truth of the WHERE clause
  bool aborted = false;            ///< kAbort policy hit a failure
  double cost = 0.0;               ///< total acquisition cost charged
  int acquisitions = 0;            ///< distinct attributes acquired
  int retries = 0;                 ///< attempts beyond the first, summed
  AttrSet acquired;                ///< attributes successfully acquired
  AttrSet failed;                  ///< attributes that never yielded a value

  /// True iff execution completed with a defined (non-Unknown) verdict.
  bool defined() const { return !aborted && verdict3 != Truth::kUnknown; }
};

namespace internal {
// Out-of-line halves of the inline ExecutePlan wrappers below. The Impl
// templates (defined and explicitly instantiated for
// kTraced=kProfiled=false in executor.cc) are the executors themselves;
// calling Impl<false, false> straight from the inline wrapper keeps the
// common disabled-instrumentation case at one call, exactly like an
// uninstrumented build. Obs wraps execution in the "exec" span and counter
// emission (and handles the obs-disabled-but-traced case). kProfiled adds
// the per-node eval/pass/unknown counter hooks for calibration
// (exec/exec_profile.h); like tracing, the hooks vanish at compile time in
// the <*, false> instantiations.
template <bool kTraced, bool kProfiled>
ExecutionResult ExecutePlanImpl(const Plan& plan, const Schema& schema,
                                const AcquisitionCostModel& cost_model,
                                AcquisitionSource& source, TraceSink* trace,
                                const DegradationPolicy& policy,
                                ExecutionProfile* profile);
extern template ExecutionResult ExecutePlanImpl<false, false>(
    const Plan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    TraceSink* trace, const DegradationPolicy& policy,
    ExecutionProfile* profile);

template <bool kTraced, bool kProfiled>
ExecutionResult ExecuteCompiledImpl(const CompiledPlan& plan,
                                    const Schema& schema,
                                    const AcquisitionCostModel& cost_model,
                                    AcquisitionSource& source,
                                    TraceSink* trace,
                                    const DegradationPolicy& policy,
                                    ExecutionProfile* profile);
extern template ExecutionResult ExecuteCompiledImpl<false, false>(
    const CompiledPlan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    TraceSink* trace, const DegradationPolicy& policy,
    ExecutionProfile* profile);

ExecutionResult ExecutePlanObs(const Plan& plan, const Schema& schema,
                               const AcquisitionCostModel& cost_model,
                               AcquisitionSource& source, TraceSink* trace,
                               const DegradationPolicy& policy,
                               ExecutionProfile* profile);
ExecutionResult ExecuteCompiledObs(const CompiledPlan& plan,
                                   const Schema& schema,
                                   const AcquisitionCostModel& cost_model,
                                   AcquisitionSource& source, TraceSink* trace,
                                   const DegradationPolicy& policy,
                                   ExecutionProfile* profile);
}  // namespace internal

/// Evaluates `plan` for one tuple, acquiring attributes lazily from `source`
/// and charging `cost_model` for each acquisition attempt. Failed
/// acquisitions degrade per `policy`. If `trace` is non-null it receives
/// acquisition / branch / verdict events in traversal order (obs/trace.h);
/// the default null sink costs one untaken branch per event site. If
/// `profile` is non-null *and* instrumentation is runtime-enabled, per-node
/// eval/pass/unknown counters and realized cost are recorded into it
/// (exec/exec_profile.h; nodes are addressed by PlanNode::id / flat index).
/// Profiling rides the obs switch on purpose: with obs disabled the profile
/// is ignored and the call costs exactly what an unprofiled call costs.
///
/// Inline so the common case — no per-tuple trace, instrumentation
/// runtime-disabled — dispatches straight to the uninstrumented executor
/// for one relaxed load and a branch in the caller. This is a per-tuple
/// call; an extra out-of-line gating frame here costs measurable percent
/// (bench_obs_overhead holds the disabled path under 5%).
inline ExecutionResult ExecutePlan(const Plan& plan, const Schema& schema,
                                   const AcquisitionCostModel& cost_model,
                                   AcquisitionSource& source,
                                   TraceSink* trace = nullptr,
                                   const DegradationPolicy& policy = {},
                                   ExecutionProfile* profile = nullptr) {
  if (trace == nullptr && !obs::Enabled()) {
    return internal::ExecutePlanImpl<false, false>(plan, schema, cost_model,
                                                   source, nullptr, policy,
                                                   nullptr);
  }
  return internal::ExecutePlanObs(plan, schema, cost_model, source, trace,
                                  policy, profile);
}

/// Flat-form hot path: identical semantics (and bit-identical results) to
/// the tree overload, but iterates over the CompiledPlan node array — no
/// recursion, no pointer chasing, no per-tuple allocation, and no
/// acquired-set lookups on the split walk (the compiler precomputed the
/// first-acquisition flags). This is what motes and the serve layer run.
inline ExecutionResult ExecutePlan(const CompiledPlan& plan,
                                   const Schema& schema,
                                   const AcquisitionCostModel& cost_model,
                                   AcquisitionSource& source,
                                   TraceSink* trace = nullptr,
                                   const DegradationPolicy& policy = {},
                                   ExecutionProfile* profile = nullptr) {
  if (trace == nullptr && !obs::Enabled()) {
    return internal::ExecuteCompiledImpl<false, false>(
        plan, schema, cost_model, source, nullptr, policy, nullptr);
  }
  return internal::ExecuteCompiledObs(plan, schema, cost_model, source, trace,
                                      policy, profile);
}

/// Aggregate outcome of ExecuteBatch / ColumnarBatchExecutor::Execute.
struct BatchExecutionStats {
  size_t tuples = 0;
  size_t matches = 0;            ///< verdicts that came back true
  size_t total_acquisitions = 0;
  double total_cost = 0.0;
  /// Union of the attributes acquired for any row — what a dist shard
  /// reports in its partial ExecutionResult (merge semantics: union).
  AttrSet acquired;
};

/// Executes the plan over the given dataset rows with infallible, dedup'd
/// acquisition (ground truth straight from the dataset) and reused scratch
/// across tuples — the scalar row-at-a-time loop, kept as the differential
/// oracle for the columnar path (exec/batch_executor.h). If `verdicts` is
/// non-null it is resized to rows.size() with 1/0 per-row verdicts
/// (uint8_t, not vector<bool>: byte stores keep the batch paths free of
/// bit-proxy read-modify-write).
BatchExecutionStats ExecuteBatch(const CompiledPlan& plan, const Dataset& data,
                                 std::span<const RowId> rows,
                                 const AcquisitionCostModel& cost_model,
                                 std::vector<uint8_t>* verdicts = nullptr);

}  // namespace caqp

#endif  // CAQP_EXEC_EXECUTOR_H_
