// Plan execution engine (the "simple traversal of a binary tree" that runs
// on motes, paper Section 2.5). The executor is deliberately tiny and
// allocation-free on the hot path: current sensor hardware is the reason the
// paper computes plans offline, so execution must stay cheap.
//
// Values are pulled through an AcquisitionSource, which lets the same engine
// run over a recorded dataset, a live simulated sensor, or (in tests) a
// source that records the acquisition order.

#ifndef CAQP_EXEC_EXECUTOR_H_
#define CAQP_EXEC_EXECUTOR_H_

#include <vector>

#include "core/schema.h"
#include "obs/trace.h"
#include "opt/cost_model.h"
#include "plan/plan.h"
#include "prob/subproblem.h"

namespace caqp {

/// Supplies attribute values for the tuple currently being evaluated.
/// Acquire() is called at most once per attribute per tuple.
class AcquisitionSource {
 public:
  virtual ~AcquisitionSource() = default;
  virtual Value Acquire(AttrId attr) = 0;
};

/// Source backed by a fully materialized tuple.
class TupleSource : public AcquisitionSource {
 public:
  explicit TupleSource(const Tuple& t) : tuple_(t) {}
  Value Acquire(AttrId attr) override {
    CAQP_DCHECK(attr < tuple_.size());
    return tuple_[attr];
  }

 private:
  const Tuple& tuple_;
};

/// Outcome of executing one plan over one tuple.
struct ExecutionResult {
  bool verdict = false;      ///< truth of the WHERE clause per the plan
  double cost = 0.0;         ///< total acquisition cost charged
  int acquisitions = 0;      ///< number of distinct attributes acquired
  AttrSet acquired;          ///< which attributes were acquired
};

/// Evaluates `plan` for one tuple, acquiring attributes lazily from `source`
/// and charging `cost_model` for each first acquisition. If `trace` is
/// non-null it receives acquisition / branch / verdict events in traversal
/// order (obs/trace.h); the default null sink costs one untaken branch per
/// event site.
ExecutionResult ExecutePlan(const Plan& plan, const Schema& schema,
                            const AcquisitionCostModel& cost_model,
                            AcquisitionSource& source,
                            TraceSink* trace = nullptr);

}  // namespace caqp

#endif  // CAQP_EXEC_EXECUTOR_H_
