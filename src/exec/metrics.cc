#include "exec/metrics.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace caqp {

double SortedPercentile(const std::vector<double>& sorted, double q) {
  CAQP_CHECK(!sorted.empty());
  CAQP_CHECK(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

GainStats SummarizeGains(std::vector<double> gains) {
  GainStats s;
  if (gains.empty()) return s;
  std::sort(gains.begin(), gains.end());
  s.min = gains.front();
  s.max = gains.back();
  s.median = gains[gains.size() / 2];
  double total = 0.0;
  for (double g : gains) total += g;
  s.mean = total / gains.size();
  double m2 = 0.0;
  for (double g : gains) m2 += (g - s.mean) * (g - s.mean);
  s.variance = m2 / gains.size();
  s.p25 = SortedPercentile(gains, 25.0);
  s.p75 = SortedPercentile(gains, 75.0);
  s.p95 = SortedPercentile(gains, 95.0);
  return s;
}

std::vector<std::pair<double, double>> CumulativeGainCurve(
    std::vector<double> gains, int points) {
  std::vector<std::pair<double, double>> curve;
  if (gains.empty() || points < 2) return curve;
  std::sort(gains.begin(), gains.end());
  const double lo = gains.front();
  const double hi = gains.back();
  if (lo == hi) {
    // All experiments saw the same gain: one point, full mass.
    curve.emplace_back(lo, 1.0);
    return curve;
  }
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * i / (points - 1);
    // Fraction of experiments with gain >= x.
    const auto it = std::lower_bound(gains.begin(), gains.end(), x);
    const double frac =
        static_cast<double>(gains.end() - it) / static_cast<double>(gains.size());
    curve.emplace_back(x, frac);
  }
  return curve;
}

std::string FormatRow(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  CAQP_CHECK_EQ(cells.size(), widths.size());
  std::string out = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    std::string c = cells[i];
    const int pad = widths[i] - static_cast<int>(c.size());
    for (int p = 0; p < pad; ++p) c += ' ';
    out += " " + c + " |";
  }
  return out;
}

}  // namespace caqp
