#include "exec/metrics.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace caqp {

GainStats SummarizeGains(std::vector<double> gains) {
  GainStats s;
  if (gains.empty()) return s;
  std::sort(gains.begin(), gains.end());
  s.min = gains.front();
  s.max = gains.back();
  s.median = gains[gains.size() / 2];
  double total = 0.0;
  for (double g : gains) total += g;
  s.mean = total / gains.size();
  return s;
}

std::vector<std::pair<double, double>> CumulativeGainCurve(
    std::vector<double> gains, int points) {
  std::vector<std::pair<double, double>> curve;
  if (gains.empty() || points < 2) return curve;
  std::sort(gains.begin(), gains.end());
  const double lo = gains.front();
  const double hi = gains.back();
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * i / (points - 1);
    // Fraction of experiments with gain >= x.
    const auto it = std::lower_bound(gains.begin(), gains.end(), x);
    const double frac =
        static_cast<double>(gains.end() - it) / static_cast<double>(gains.size());
    curve.emplace_back(x, frac);
  }
  return curve;
}

std::string FormatRow(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  CAQP_CHECK_EQ(cells.size(), widths.size());
  std::string out = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    std::string c = cells[i];
    const int pad = widths[i] - static_cast<int>(c.size());
    for (int p = 0; p < pad; ++p) c += ' ';
    out += " " + c + " |";
  }
  return out;
}

}  // namespace caqp
