// Columnar batch execution of a CompiledPlan — the batch-at-a-time twin of
// the scalar ExecuteBatch (exec/executor.h), which stays as its differential
// oracle.
//
// Instead of walking one root→leaf path per tuple, the executor routes a
// whole chunk of rows through the plan with selection vectors: each plan
// node owns a buffer of chunk-local row positions, split nodes repartition
// their selection against a contiguous Dataset column slice in one
// branch-light loop (both outputs written each iteration, counts advanced by
// the comparison result), and sequential leaves drain their selection with
// an in-place filter per conjunct — rows that fail a predicate simply stop
// being copied forward, which *is* the scalar short-circuit. Because a plan
// is a tree in BFS (level-major) slot order, one forward sweep over
// BatchPlanView slots visits every parent before its children.
//
// What makes the batch path fast is hoisting, twice over:
//  * The acquired-set at any node is static (plan/batch_plan.h), so every
//    marginal AcquisitionCostModel::Cost() — a virtual call per acquisition
//    in the scalar loop — is precomputed once per plan at construction.
//  * A row's total cost is fully determined by (leaf reached, number of
//    leaf steps executed): every such row adds the same static marginals in
//    the same order. The constructor folds those additions once into an
//    exact-cost table, so the row loops never touch a cost accumulator —
//    each row stores one precomputed double at its leaf, and Execute sums
//    them in row order.
//
// Equivalence contract (enforced by tests/batch_executor_test.cc):
// Execute() is bit-identical to scalar ExecuteBatch over the same rows —
// verdict vector, match count, acquisition count, acquired-attribute union,
// and total_cost as an exact double (the cost table replays the scalar
// addition sequence, and the final sum runs in row order, so every
// intermediate double matches). With a profile attached, the per-node /
// per-attribute counters match a per-tuple profiled ExecutePlan run counter
// for counter; realized_cost matches bitwise when the profile starts fresh
// (EndBatch adds one row-order total per Execute call).
//
// Dispatch is a computed-goto-style switch over BatchPlanView::Op: the hot
// shapes (first-acquisition vs repeat splits, sequential arities 1..4) get
// their own specialized kernels; kSeqN loops, and kGeneric — residual-query
// leaves, only produced by the exhaustive planner — falls back to a per-row
// scalar loop (three-valued range evaluation is inherently per-row).
//
// When the batch's RowIds are consecutive, the CPU has AVX-512 (F/BW/DQ/VL,
// probed at runtime), and the cost table fits 16-bit indices, chunks are
// instead routed through the mask-based engine in exec/batch_masked.h: per
// plan node a 32-row alive bitmask replaces the selection vector, splits
// become one 512-bit compare plus two mask ANDs per block, and leaf costs
// collapse to a single u16 table-index store per row. Same observable
// results, bit for bit — the selection kernels remain the universal
// fallback (arbitrary row lists, huge plans, older CPUs).
//
// Thread safety: one ColumnarBatchExecutor is single-threaded scratch
// (selection buffers are reused across chunks and calls); build one per
// thread over the same shared CompiledPlan. The plan, dataset, and cost
// model must outlive the executor.

#ifndef CAQP_EXEC_BATCH_EXECUTOR_H_
#define CAQP_EXEC_BATCH_EXECUTOR_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "exec/exec_profile.h"
#include "exec/executor.h"
#include "opt/cost_model.h"
#include "plan/batch_plan.h"
#include "plan/compiled_plan.h"

namespace caqp {

struct BatchExecOptions {
  /// Rows are driven through the plan in morsels of this many rows
  /// (bounding selection-buffer footprint and keeping column slices hot in
  /// cache). 0 means "as large as possible"; either way chunks are capped
  /// at 64Ki rows so chunk-local positions fit in 16 bits. Chunking is
  /// transparent: results are identical for every chunk size.
  size_t chunk_size = 1024;
  /// Optional calibration profile; counters are recorded under CompiledPlan
  /// node indices exactly like the per-tuple profiled path. Unlike
  /// ExecutePlan the batch path does not gate profiling on obs::Enabled() —
  /// passing a profile here is already an explicit opt-in (dist::shard
  /// applies the obs gate itself to mirror scalar serving).
  ExecutionProfile* profile = nullptr;
};

class ColumnarBatchExecutor {
 public:
  /// Builds the level-decomposed view and precomputes the exact-cost
  /// tables. `plan`, `data`, and `cost_model` must outlive the executor.
  /// Aborts if the schema exceeds 64 attributes (the AttrSet / value-scratch
  /// bound, checked here at runtime in all build modes).
  ColumnarBatchExecutor(const CompiledPlan& plan, const Dataset& data,
                        const AcquisitionCostModel& cost_model);

  ColumnarBatchExecutor(const ColumnarBatchExecutor&) = delete;
  ColumnarBatchExecutor& operator=(const ColumnarBatchExecutor&) = delete;

  /// Executes the plan over `rows` (infallible, dedup'd acquisition straight
  /// from the dataset). If `verdicts` is non-null it is resized to
  /// rows.size() with 1/0 per-row verdicts in row order (passing nullptr
  /// skips the verdict stores entirely). See the file comment for the
  /// equivalence contract with scalar ExecuteBatch.
  BatchExecutionStats Execute(std::span<const RowId> rows,
                              std::vector<uint8_t>* verdicts = nullptr,
                              const BatchExecOptions& options = {});

  const BatchPlanView& view() const { return view_; }

 private:
  /// Chunk-local row position. 16-bit on purpose: selection vectors are the
  /// densest traffic in the kernels, and halving them roughly halves the
  /// partition bandwidth. Chunks are capped at kMaxChunk rows to match.
  using SelIdx = uint16_t;
  static constexpr size_t kMaxChunk = 65536;

  void EnsureScratch(size_t capacity);

  template <bool kProfiled, bool kVerdicts>
  void RunChunk(const RowId* rows, uint32_t n, uint8_t* verdicts,
                ExecutionProfile* profile, BatchExecutionStats* stats);

  template <bool kFirstAcq, bool kProfiled>
  void SplitKernel(const BatchPlanView::Node& node, uint32_t slot,
                   const uint16_t* sel_in, const RowId* rows,
                   ExecutionProfile* profile, BatchExecutionStats* stats);

  template <int kArity, bool kProfiled, bool kVerdicts>
  void SeqKernel(const BatchPlanView::Node& node, uint32_t slot,
                 const uint16_t* sel_in, const RowId* rows, uint8_t* verdicts,
                 ExecutionProfile* profile, BatchExecutionStats* stats);

  template <bool kProfiled, bool kVerdicts>
  void GenericKernel(const BatchPlanView::Node& node, uint32_t slot,
                     const uint16_t* sel_in, const RowId* rows,
                     uint8_t* verdicts, ExecutionProfile* profile,
                     BatchExecutionStats* stats);

  const CompiledPlan& plan_;
  const Dataset& data_;
  const AcquisitionCostModel& cost_model_;
  BatchPlanView view_;

  /// Exact-cost tables (see file comment). leaf_cost_ holds, per leaf slot,
  /// num_steps + 1 doubles: entry k is the exact total cost of a row that
  /// reached this leaf and executed k acquisition steps, folded in the
  /// scalar addition order (root-path first-acquisition splits, then leaf
  /// steps; non-charging steps copy the previous entry — no +0.0 rounding
  /// hazards). leaf_cost_offset_[slot] indexes the table; ~0u for splits.
  std::vector<double> leaf_cost_;
  std::vector<uint32_t> leaf_cost_offset_;

  RangeVec full_ranges_;     ///< cached Schema::FullRanges()
  RangeVec ranges_scratch_;  ///< generic-fallback per-row range vector

  /// Selection scratch, reused across chunks and Execute calls. sel_[slot]
  /// holds chunk-local positions; iota_ is the persistent identity
  /// selection the root reads (never mutated, filled once); row_cost_[pos]
  /// receives each row's exact cost at its leaf.
  size_t chunk_capacity_ = 0;
  std::vector<std::vector<SelIdx>> sel_;
  std::vector<uint32_t> sel_n_;
  std::vector<SelIdx> iota_;
  /// Sequential leaves ping-pong between their slot buffer and this shared
  /// scratch so every filter step reads and writes *disjoint* buffers —
  /// which is what lets the kernels declare their pointers __restrict and
  /// keeps the compiler from serializing loads against the compaction
  /// stores (SelIdx aliases SelIdx).
  std::vector<SelIdx> seq_scratch_;
  std::vector<double> row_cost_;

  /// Per-kernel telemetry scratch, accumulated per Execute call (one add
  /// per active slot per chunk — noise next to the kernels) and flushed to
  /// the obs counters exec.batch.kernel_rows.<op> /
  /// exec.batch.{masked,selection}_chunks only when obs::Enabled(), so the
  /// disabled path stays under the bench_obs_overhead bar.
  std::array<uint64_t, BatchPlanView::kNumOps> kernel_rows_{};
  uint64_t masked_chunks_ = 0;
  uint64_t masked_rows_ = 0;
  uint64_t selection_chunks_ = 0;

  /// Masked-engine eligibility (CPU probe && cost table fits u16 indices)
  /// and its scratch: per-slot alive masks, leaf working masks, per-row
  /// executed-step lanes and cost indices, and final verdict masks. See
  /// exec/batch_masked.h.
  bool masked_eligible_ = false;
  std::vector<uint32_t> mask_slots_;
  std::vector<uint32_t> mask_alive_;
  std::vector<uint32_t> mask_verdict_;
  std::vector<uint16_t> mask_exec_;
  std::vector<uint16_t> mask_cost_idx_;
};

/// One-shot convenience wrapper: builds a ColumnarBatchExecutor and runs a
/// single Execute. Callers with a hot loop (benches, shards) should build
/// the executor once and reuse it — construction does one virtual cost-model
/// call per plan node/step plus scratch allocation.
BatchExecutionStats ExecuteBatchColumnar(
    const CompiledPlan& plan, const Dataset& data, std::span<const RowId> rows,
    const AcquisitionCostModel& cost_model,
    std::vector<uint8_t>* verdicts = nullptr,
    const BatchExecOptions& options = {});

}  // namespace caqp

#endif  // CAQP_EXEC_BATCH_EXECUTOR_H_
