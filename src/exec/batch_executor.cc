#include "exec/batch_executor.h"

#include <algorithm>
#include <numeric>

#include "exec/batch_masked.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace caqp {

#ifndef CAQP_HAVE_AVX512
// Toolchain without AVX-512 support: the masked engine's TU is not built,
// so satisfy its interface with a never-eligible stub.
namespace internal {
bool MaskedChunkAvailable() { return false; }
void RunChunkMasked(const MaskedChunkArgs&) {
  CAQP_CHECK(false);  // unreachable: callers gate on MaskedChunkAvailable()
}
}  // namespace internal
#endif

namespace {

/// The masked engine keeps rows in place, so it only applies when the batch
/// addresses a consecutive dataset range (the overwhelmingly common serving
/// shape: whole table or partition slice).
bool RowsConsecutive(const RowId* rows, size_t n) {
  const RowId base = rows[0];
  for (size_t i = 1; i < n; ++i) {
    if (rows[i] != base + i) return false;
  }
  return true;
}

}  // namespace

ColumnarBatchExecutor::ColumnarBatchExecutor(
    const CompiledPlan& plan, const Dataset& data,
    const AcquisitionCostModel& cost_model)
    : plan_(plan),
      data_(data),
      cost_model_(cost_model),
      view_(plan),
      full_ranges_(data.schema().FullRanges()) {
  // Hard runtime bound in every build mode: AttrSet and the executor value
  // scratch are 64-wide, and a wider schema would silently corrupt them.
  // Schema construction enforces the same bound, so this is
  // defense-in-depth against hand-built schemas bypassing it.
  CAQP_CHECK(data_.schema().num_attributes() <= 64);

  // Fold the exact-cost tables (header comment): path_cost[s] is the scalar
  // path's running cost when a row *enters* slot s — 0.0 at the root, plus
  // one static marginal per first-acquisition split along the way, added in
  // root→leaf order. BFS slot order assigns every child after its parent,
  // so one forward pass suffices. Each leaf then extends its entry cost
  // through its acquisition steps: entry k of its leaf_cost_ range is the
  // exact total for a row that executed k steps there. Because these are
  // the same IEEE additions in the same order the scalar executor performs
  // per row, every table entry is bit-identical to the scalar result.
  const size_t num_slots = view_.num_slots();
  std::vector<double> path_cost(num_slots, 0.0);
  leaf_cost_offset_.assign(num_slots, UINT32_MAX);
  for (uint32_t s = 0; s < num_slots; ++s) {
    const BatchPlanView::Node& node = view_.slot(s);
    switch (node.op) {
      case BatchPlanView::Op::kSplitFirst: {
        const double child = path_cost[s] + cost_model_.Cost(node.attr,
                                                             node.entry_acquired);
        path_cost[node.lt] = child;
        path_cost[node.ge] = child;
        break;
      }
      case BatchPlanView::Op::kSplitRepeat:
        path_cost[node.lt] = path_cost[s];
        path_cost[node.ge] = path_cost[s];
        break;
      default: {
        leaf_cost_offset_[s] = static_cast<uint32_t>(leaf_cost_.size());
        double c = path_cost[s];
        leaf_cost_.push_back(c);
        for (const BatchPlanView::AcqStep& st : view_.steps(node)) {
          // Non-charging steps copy the previous entry: the scalar path
          // performs no addition there, and even adding 0.0 could flip the
          // sign of a -0.0 intermediate.
          if (st.is_new) c = c + cost_model_.Cost(st.attr, st.acquired_before);
          leaf_cost_.push_back(c);
        }
        break;
      }
    }
  }

  // The masked engine indexes the cost table through u16 lanes; plans whose
  // tables outgrow that (thousands of deep leaves) keep the selection path.
  masked_eligible_ =
      internal::MaskedChunkAvailable() && leaf_cost_.size() <= 65535;
}

void ColumnarBatchExecutor::EnsureScratch(size_t capacity) {
  if (capacity <= chunk_capacity_ && sel_.size() == view_.num_slots()) return;
  chunk_capacity_ = std::max(capacity, chunk_capacity_);
  sel_.resize(view_.num_slots());
  for (auto& s : sel_) s.resize(chunk_capacity_);
  sel_n_.assign(view_.num_slots(), 0);
  seq_scratch_.resize(chunk_capacity_);
  row_cost_.resize(chunk_capacity_);
  iota_.resize(chunk_capacity_);
  std::iota(iota_.begin(), iota_.end(), SelIdx{0});
  if (masked_eligible_) {
    // Per-row lanes are rounded up to whole 32-row blocks: the engine's
    // 512-bit loads/stores touch full blocks (mask-protected lanes
    // included), so the buffers must cover the round-up.
    const size_t blocks = (chunk_capacity_ + 31) / 32;
    mask_slots_.resize(view_.num_slots() * blocks);
    mask_alive_.resize(blocks);
    mask_verdict_.resize(blocks);
    mask_exec_.resize(blocks * 32);
    mask_cost_idx_.resize(blocks * 32);
  }
}

template <bool kFirstAcq, bool kProfiled>
void ColumnarBatchExecutor::SplitKernel(const BatchPlanView::Node& node,
                                        uint32_t slot, const SelIdx* sel_in,
                                        const RowId* rows,
                                        ExecutionProfile* profile,
                                        BatchExecutionStats* stats) {
  const uint32_t cnt = sel_n_[slot];
  // All five buffers are genuinely disjoint (children are distinct slots;
  // the input is the parent's buffer or the identity table), so __restrict
  // lets the compiler overlap iterations instead of replaying loads after
  // every partition store.
  const Value* __restrict col = data_.column(node.attr).data();
  const SelIdx* __restrict in = sel_in;
  const RowId* __restrict row_ids = rows;
  const Value split_value = node.split_value;
  SelIdx* __restrict lt_out = sel_[node.lt].data();
  SelIdx* __restrict ge_out = sel_[node.ge].data();
  // A plan is a tree: this split is its children's only parent, so both
  // output selections start empty. Cost is not touched here — the split's
  // charge is folded into every downstream leaf's cost table.
  uint32_t nl = 0;
  uint32_t ng = 0;
  for (uint32_t i = 0; i < cnt; ++i) {
    const SelIdx pos = in[i];
    const bool ge = col[row_ids[pos]] >= split_value;
    // Branch-light partition: write both outputs, advance one count.
    lt_out[nl] = pos;
    ge_out[ng] = pos;
    nl += !ge;
    ng += ge;
  }
  sel_n_[node.lt] = nl;
  sel_n_[node.ge] = ng;
  if constexpr (kFirstAcq) {
    stats->total_acquisitions += cnt;
    stats->acquired.Insert(node.attr);
  }
  if constexpr (kProfiled) {
    profile->NodeEvalN(node.plan_index, cnt);
    profile->PredEvalN(node.attr, cnt, ng);
    profile->NodePassN(node.plan_index, ng);
  }
}

template <int kArity, bool kProfiled, bool kVerdicts>
void ColumnarBatchExecutor::SeqKernel(const BatchPlanView::Node& node,
                                      uint32_t slot, const SelIdx* sel_in,
                                      const RowId* rows, uint8_t* verdicts,
                                      ExecutionProfile* profile,
                                      BatchExecutionStats* stats) {
  const uint32_t cnt = sel_n_[slot];
  if constexpr (kProfiled) profile->NodeEvalN(node.plan_index, cnt);
  // Failing rows stop being copied forward, so default every verdict in the
  // selection to false and overwrite the survivors at the end.
  if constexpr (kVerdicts) {
    uint8_t* __restrict vd = verdicts;
    const SelIdx* __restrict in = sel_in;
    for (uint32_t i = 0; i < cnt; ++i) vd[in[i]] = 0;
  }

  const auto steps = view_.steps(node);
  const double* cost_at = leaf_cost_.data() + leaf_cost_offset_[slot];
  // kArity > 0 fixes the step count at compile time (the 1..4 hot shapes
  // fully unroll); kArity == 0 is the dynamic kSeqN fallback.
  const int num_steps = kArity > 0 ? kArity : static_cast<int>(steps.size());
  uint32_t live = cnt;
  // Compaction ping-pongs between the shared scratch and this slot's own
  // buffer, so every step's source and destination are disjoint — the
  // precondition for the __restrict qualifiers below (an in-place filter
  // would make each store a potential clobber of the next load and
  // serialize the loop).
  const SelIdx* src = sel_in;
  SelIdx* ping = seq_scratch_.data();
  SelIdx* pong = sel_[slot].data();
  for (int k = 0; k < num_steps && live > 0; ++k) {
    const BatchPlanView::AcqStep& st = steps[k];
    const Value* __restrict col = data_.column(st.attr).data();
    const SelIdx* __restrict in = src;
    SelIdx* __restrict dst = ping;
    const RowId* __restrict row_ids = rows;
    double* __restrict rc = row_cost_.data();
    // Branchless predicate: Matches() with the range compare folded to
    // bit ops so the survivor count never depends on a predicted branch.
    const Value lo = st.pred.lo;
    const Value hi = st.pred.hi;
    const uint32_t neg = st.pred.negated ? 1u : 0u;
    // Exact cost after executing steps 0..k: rows failing here keep this
    // value; survivors are overwritten at the next step. One plain store
    // per evaluated row replaces the scalar path's accumulate.
    const double cost_after = cost_at[k + 1];
    uint32_t out = 0;
    for (uint32_t i = 0; i < live; ++i) {
      const SelIdx pos = in[i];
      rc[pos] = cost_after;
      dst[out] = pos;
      const Value v = col[row_ids[pos]];
      out += (static_cast<uint32_t>(lo <= v) &
              static_cast<uint32_t>(v <= hi)) ^
             neg;
    }
    if (st.is_new) {
      stats->total_acquisitions += live;
      stats->acquired.Insert(st.attr);
    }
    if constexpr (kProfiled) profile->PredEvalN(st.attr, live, out);
    live = out;
    src = ping;
    std::swap(ping, pong);
  }
  if constexpr (kVerdicts) {
    uint8_t* __restrict vd = verdicts;
    const SelIdx* __restrict in = src;
    for (uint32_t i = 0; i < live; ++i) vd[in[i]] = 1;
  }
  stats->matches += live;
  if constexpr (kProfiled) profile->NodePassN(node.plan_index, live);
}

template <bool kProfiled, bool kVerdicts>
void ColumnarBatchExecutor::GenericKernel(const BatchPlanView::Node& node,
                                          uint32_t slot, const SelIdx* sel_in,
                                          const RowId* rows, uint8_t* verdicts,
                                          ExecutionProfile* profile,
                                          BatchExecutionStats* stats) {
  // Residual-query leaves evaluate three-valued range semantics whose
  // acquisition count is data-dependent per row — this is the generic
  // per-row fallback, textually parallel to the scalar ExecuteBatch leaf.
  // Costs still come from the static table: a row's exact cost is
  // determined by how many steps it executed before resolving.
  const uint32_t cnt = sel_n_[slot];
  if constexpr (kProfiled) profile->NodeEvalN(node.plan_index, cnt);
  const Query& query = view_.residual_query(node);
  const auto steps = view_.steps(node);
  const double* cost_at = leaf_cost_.data() + leaf_cost_offset_[slot];
  const size_t num_attrs = data_.schema().num_attributes();
  uint64_t matches = 0;
  for (uint32_t i = 0; i < cnt; ++i) {
    const SelIdx pos = sel_in[i];
    const RowId row = rows[pos];
    ranges_scratch_ = full_ranges_;
    for (size_t a = 0; a < num_attrs; ++a) {
      if (node.entry_acquired.Contains(static_cast<AttrId>(a))) {
        const Value v = data_.at(row, static_cast<AttrId>(a));
        ranges_scratch_[a] = ValueRange{v, v};
      }
    }
    Truth t = query.EvaluateOnRanges(ranges_scratch_);
    size_t executed = 0;
    for (size_t k = 0; k < steps.size(); ++k) {
      if (t != Truth::kUnknown) break;
      const BatchPlanView::AcqStep& st = steps[k];
      executed = k + 1;
      if (st.is_new) {
        ++stats->total_acquisitions;
        stats->acquired.Insert(st.attr);
      }
      const Value v = data_.at(row, st.attr);
      ranges_scratch_[st.attr] = ValueRange{v, v};
      t = query.EvaluateOnRanges(ranges_scratch_);
    }
    // Infallible acquisition: the order must resolve the query.
    CAQP_CHECK(t != Truth::kUnknown);
    row_cost_[pos] = cost_at[executed];
    const bool verdict = t == Truth::kTrue;
    if constexpr (kVerdicts) verdicts[pos] = verdict ? 1 : 0;
    matches += verdict;
  }
  stats->matches += matches;
  if constexpr (kProfiled) profile->NodePassN(node.plan_index, matches);
}

template <bool kProfiled, bool kVerdicts>
void ColumnarBatchExecutor::RunChunk(const RowId* rows, uint32_t n,
                                     uint8_t* verdicts,
                                     ExecutionProfile* profile,
                                     BatchExecutionStats* stats) {
  using Op = BatchPlanView::Op;
  std::fill(sel_n_.begin(), sel_n_.end(), 0u);
  sel_n_[0] = n;

  // One forward sweep: BFS slot order visits every parent before its
  // children, so each node's selection is complete when reached. The root
  // reads the persistent identity table instead of a per-chunk iota; every
  // row receives exactly one row_cost_ store at its unique leaf, so there
  // is no per-chunk cost fill either.
  const uint32_t num_slots = static_cast<uint32_t>(view_.num_slots());
  for (uint32_t s = 0; s < num_slots; ++s) {
    if (sel_n_[s] == 0) continue;
    const BatchPlanView::Node& node = view_.slot(s);
    kernel_rows_[static_cast<size_t>(node.op)] += sel_n_[s];
    const SelIdx* sel_in = s == 0 ? iota_.data() : sel_[s].data();
    switch (node.op) {
      case Op::kSplitFirst:
        SplitKernel<true, kProfiled>(node, s, sel_in, rows, profile, stats);
        break;
      case Op::kSplitRepeat:
        SplitKernel<false, kProfiled>(node, s, sel_in, rows, profile, stats);
        break;
      case Op::kVerdictTrue:
      case Op::kVerdictFalse: {
        const uint32_t cnt = sel_n_[s];
        const bool truth = node.op == Op::kVerdictTrue;
        const double entry_cost = leaf_cost_[leaf_cost_offset_[s]];
        const SelIdx* __restrict in = sel_in;
        double* __restrict rc = row_cost_.data();
        uint8_t* __restrict vd = verdicts;
        for (uint32_t i = 0; i < cnt; ++i) {
          const SelIdx pos = in[i];
          rc[pos] = entry_cost;
          if constexpr (kVerdicts) vd[pos] = truth ? 1 : 0;
        }
        if (truth) stats->matches += cnt;
        if constexpr (kProfiled) {
          profile->NodeEvalN(node.plan_index, cnt);
          if (truth) profile->NodePassN(node.plan_index, cnt);
        }
        break;
      }
      case Op::kSeq1:
        SeqKernel<1, kProfiled, kVerdicts>(node, s, sel_in, rows, verdicts,
                                           profile, stats);
        break;
      case Op::kSeq2:
        SeqKernel<2, kProfiled, kVerdicts>(node, s, sel_in, rows, verdicts,
                                           profile, stats);
        break;
      case Op::kSeq3:
        SeqKernel<3, kProfiled, kVerdicts>(node, s, sel_in, rows, verdicts,
                                           profile, stats);
        break;
      case Op::kSeq4:
        SeqKernel<4, kProfiled, kVerdicts>(node, s, sel_in, rows, verdicts,
                                           profile, stats);
        break;
      case Op::kSeqN:
        SeqKernel<0, kProfiled, kVerdicts>(node, s, sel_in, rows, verdicts,
                                           profile, stats);
        break;
      case Op::kGeneric:
        GenericKernel<kProfiled, kVerdicts>(node, s, sel_in, rows, verdicts,
                                            profile, stats);
        break;
    }
  }

  // Row-order summation reproduces the scalar path's addition sequence
  // exactly: each row_cost_[pos] is a table entry folded in path order, so
  // total_cost is bit-identical to scalar ExecuteBatch.
  const double* row_cost = row_cost_.data();
  for (uint32_t i = 0; i < n; ++i) stats->total_cost += row_cost[i];
}

BatchExecutionStats ColumnarBatchExecutor::Execute(
    std::span<const RowId> rows, std::vector<uint8_t>* verdicts,
    const BatchExecOptions& options) {
  CAQP_OBS_SPAN(batch_span, "exec.batch_columnar");
  BatchExecutionStats stats;
  stats.tuples = rows.size();
  if (verdicts != nullptr) verdicts->assign(rows.size(), 0);
  if (rows.empty()) return stats;

  size_t chunk = options.chunk_size == 0 ? rows.size() : options.chunk_size;
  chunk = std::min(chunk, kMaxChunk);  // SelIdx is 16-bit
  EnsureScratch(std::min(chunk, rows.size()));
  ExecutionProfile* profile = options.profile;
  const bool masked =
      masked_eligible_ && RowsConsecutive(rows.data(), rows.size());

  for (size_t off = 0; off < rows.size(); off += chunk) {
    const uint32_t n =
        static_cast<uint32_t>(std::min(chunk, rows.size() - off));
    uint8_t* out = verdicts != nullptr ? verdicts->data() + off : nullptr;
    const RowId* chunk_rows = rows.data() + off;
    if (masked) {
      internal::MaskedChunkArgs args;
      args.view = &view_;
      args.data = &data_;
      args.leaf_cost = leaf_cost_.data();
      args.leaf_cost_offset = leaf_cost_offset_.data();
      args.full_ranges = &full_ranges_;
      args.ranges_scratch = &ranges_scratch_;
      args.node_masks = mask_slots_.data();
      args.alive_scratch = mask_alive_.data();
      args.exec_scratch = mask_exec_.data();
      args.cost_idx = mask_cost_idx_.data();
      args.verdict_masks = mask_verdict_.data();
      args.row_base = chunk_rows[0];
      args.n = n;
      args.blocks = (n + 31) / 32;
      args.verdicts = out;
      args.profile = profile;
      args.stats = &stats;
      args.kernel_rows = kernel_rows_.data();
      internal::RunChunkMasked(args);
      ++masked_chunks_;
      masked_rows_ += n;
    } else if (profile != nullptr) {
      if (out != nullptr) {
        RunChunk<true, true>(chunk_rows, n, out, profile, &stats);
      } else {
        RunChunk<true, false>(chunk_rows, n, nullptr, profile, &stats);
      }
    } else {
      if (out != nullptr) {
        RunChunk<false, true>(chunk_rows, n, out, nullptr, &stats);
      } else {
        RunChunk<false, false>(chunk_rows, n, nullptr, nullptr, &stats);
      }
    }
    if (!masked) ++selection_chunks_;
  }

  if (profile != nullptr) {
    // One bulk total per call: a fresh profile's realized_cost then equals
    // the per-tuple path bitwise (0 + row-order total).
    profile->EndBatch(stats.total_cost, stats.total_acquisitions,
                      stats.tuples);
  }
  CAQP_OBS_COUNTER_ADD("exec.tuples", static_cast<uint64_t>(stats.tuples));
  CAQP_OBS_COUNTER_ADD("exec.acquisitions",
                       static_cast<uint64_t>(stats.total_acquisitions));
#if CAQP_OBS_ENABLED
  if (obs::Enabled()) {
    // The CAQP_OBS_COUNTER_ADD macro caches one Counter& per call site, so
    // it cannot loop over per-op names; resolve the whole table once.
    struct KernelCounters {
      std::array<obs::Counter*, BatchPlanView::kNumOps> rows;
      obs::Counter* masked_chunks;
      obs::Counter* masked_rows;
      obs::Counter* selection_chunks;
      KernelCounters() {
        obs::MetricsRegistry& reg = obs::DefaultRegistry();
        for (size_t op = 0; op < BatchPlanView::kNumOps; ++op) {
          rows[op] = &reg.GetCounter(
              std::string("exec.batch.kernel_rows.") +
              BatchPlanView::OpName(static_cast<BatchPlanView::Op>(op)));
        }
        masked_chunks = &reg.GetCounter("exec.batch.masked_chunks");
        masked_rows = &reg.GetCounter("exec.batch.masked_rows");
        selection_chunks = &reg.GetCounter("exec.batch.selection_chunks");
      }
    };
    static KernelCounters counters;
    for (size_t op = 0; op < BatchPlanView::kNumOps; ++op) {
      if (kernel_rows_[op] != 0) counters.rows[op]->Add(kernel_rows_[op]);
    }
    if (masked_chunks_ != 0) counters.masked_chunks->Add(masked_chunks_);
    if (masked_rows_ != 0) counters.masked_rows->Add(masked_rows_);
    if (selection_chunks_ != 0) {
      counters.selection_chunks->Add(selection_chunks_);
    }
  }
#endif
  // Reset the scratch either way: tallies accumulated while obs is disabled
  // are dropped, not deferred, so enabling obs mid-run starts clean.
  kernel_rows_.fill(0);
  masked_chunks_ = 0;
  masked_rows_ = 0;
  selection_chunks_ = 0;
  return stats;
}

BatchExecutionStats ExecuteBatchColumnar(const CompiledPlan& plan,
                                         const Dataset& data,
                                         std::span<const RowId> rows,
                                         const AcquisitionCostModel& cost_model,
                                         std::vector<uint8_t>* verdicts,
                                         const BatchExecOptions& options) {
  ColumnarBatchExecutor exec(plan, data, cost_model);
  return exec.Execute(rows, verdicts, options);
}

}  // namespace caqp
