#include "exec/exec_profile.h"

#include <algorithm>

namespace caqp {

void ExecutionProfileSnapshot::MergeFrom(
    const ExecutionProfileSnapshot& other) {
  if (other.nodes.size() > nodes.size()) nodes.resize(other.nodes.size());
  for (size_t i = 0; i < other.nodes.size(); ++i) {
    nodes[i].evals += other.nodes[i].evals;
    nodes[i].passes += other.nodes[i].passes;
    nodes[i].unknowns += other.nodes[i].unknowns;
  }
  for (size_t a = 0; a < attr_evals.size(); ++a) {
    attr_evals[a] += other.attr_evals[a];
    attr_passes[a] += other.attr_passes[a];
  }
  executions += other.executions;
  unknown_executions += other.unknown_executions;
  acquisitions += other.acquisitions;
  realized_cost += other.realized_cost;
}

ExecutionProfileSnapshot ExecutionProfile::Snapshot() const {
  ExecutionProfileSnapshot out;
  out.nodes.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out.nodes[i].evals = nodes_[i].evals.load(std::memory_order_relaxed);
    out.nodes[i].passes = nodes_[i].passes.load(std::memory_order_relaxed);
    out.nodes[i].unknowns =
        nodes_[i].unknowns.load(std::memory_order_relaxed);
  }
  for (size_t a = 0; a < attr_evals_.size(); ++a) {
    out.attr_evals[a] = attr_evals_[a].load(std::memory_order_relaxed);
    out.attr_passes[a] = attr_passes_[a].load(std::memory_order_relaxed);
  }
  out.executions = executions_.load(std::memory_order_relaxed);
  out.unknown_executions =
      unknown_executions_.load(std::memory_order_relaxed);
  out.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  out.realized_cost = realized_cost_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace caqp
