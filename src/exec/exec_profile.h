// ExecutionProfile: the observed half of plan-quality calibration.
//
// One profile instance accompanies one compiled plan (per worker, owned by
// obs::CalibrationAggregator) and accumulates, across every tuple executed
// under that plan:
//
//  * per-node counters — evals (node reached), passes (its test succeeded),
//    unknowns (acquisition failed at the node / three-valued Unknown),
//    indexed by the flat CompiledPlan node index (== PlanNode::id for the
//    tree executor);
//  * per-attribute predicate counters — evaluations and passes of each
//    attribute's predicates, the observed twin of
//    PlanEstimates::attr_eval_rate / attr_pass_rate;
//  * per-execution totals — executions, unknown verdicts, acquisitions, and
//    realized acquisition cost.
//
// All counters are relaxed atomics: single-writer in the serve layer (each
// worker owns its shard) but safe under concurrent snapshotting, and cheap
// enough to sit on the instrumented executor path. Consumers read through
// Snapshot(), which tolerates momentarily inconsistent values (e.g. passes
// observed before the matching eval); report math saturates instead of
// asserting.
//
// The uninstrumented executor path never touches a profile — profiling is
// only reachable through the obs-enabled dispatch (see exec/executor.h), so
// the disabled path stays bit-identical and under the bench_obs_overhead
// bar.

#ifndef CAQP_EXEC_EXEC_PROFILE_H_
#define CAQP_EXEC_EXEC_PROFILE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace caqp {

/// Plain-data snapshot of one profile (or a merge of several).
struct ExecutionProfileSnapshot {
  struct NodeCounts {
    uint64_t evals = 0;
    uint64_t passes = 0;
    uint64_t unknowns = 0;
  };

  std::vector<NodeCounts> nodes;
  std::array<uint64_t, 64> attr_evals{};
  std::array<uint64_t, 64> attr_passes{};
  uint64_t executions = 0;
  uint64_t unknown_executions = 0;
  uint64_t acquisitions = 0;
  double realized_cost = 0.0;

  /// Element-wise sum; grows `nodes` to cover the larger profile.
  void MergeFrom(const ExecutionProfileSnapshot& other);
};

class ExecutionProfile {
 public:
  explicit ExecutionProfile(size_t num_nodes) : nodes_(num_nodes) {}

  ExecutionProfile(const ExecutionProfile&) = delete;
  ExecutionProfile& operator=(const ExecutionProfile&) = delete;

  // --- executor hooks (relaxed; hot path) ---

  void NodeEval(uint32_t node) {
    nodes_[node].evals.fetch_add(1, std::memory_order_relaxed);
  }
  void NodePass(uint32_t node) {
    nodes_[node].passes.fetch_add(1, std::memory_order_relaxed);
  }
  void NodeUnknown(uint32_t node) {
    nodes_[node].unknowns.fetch_add(1, std::memory_order_relaxed);
  }
  /// One predicate evaluation of `attr` with outcome `pass`.
  void PredEval(AttrId attr, bool pass) {
    attr_evals_[attr].fetch_add(1, std::memory_order_relaxed);
    if (pass) attr_passes_[attr].fetch_add(1, std::memory_order_relaxed);
  }
  /// Per-execution totals, called once per tuple as it finishes.
  void EndExecution(double cost, int acquisitions, bool unknown) {
    executions_.fetch_add(1, std::memory_order_relaxed);
    if (unknown) unknown_executions_.fetch_add(1, std::memory_order_relaxed);
    acquisitions_.fetch_add(static_cast<uint64_t>(acquisitions),
                            std::memory_order_relaxed);
    realized_cost_.fetch_add(cost, std::memory_order_relaxed);
  }

  // --- bulk hooks (columnar batch executor; one call per node per chunk) ---

  /// `count` tuples reached `node` (== count NodeEval calls).
  void NodeEvalN(uint32_t node, uint64_t count) {
    nodes_[node].evals.fetch_add(count, std::memory_order_relaxed);
  }
  /// `count` tuples passed `node`'s test.
  void NodePassN(uint32_t node, uint64_t count) {
    nodes_[node].passes.fetch_add(count, std::memory_order_relaxed);
  }
  /// `evals` evaluations of `attr`'s predicate, of which `passes` passed.
  void PredEvalN(AttrId attr, uint64_t evals, uint64_t passes) {
    attr_evals_[attr].fetch_add(evals, std::memory_order_relaxed);
    attr_passes_[attr].fetch_add(passes, std::memory_order_relaxed);
  }
  /// Batch-total twin of per-tuple EndExecution: `executions` tuples
  /// finished with `acquisitions` total acquisitions and `cost` total
  /// realized cost (infallible acquisition — no unknown executions). Call
  /// once per Execute() with the whole batch's totals so realized_cost adds
  /// the same row-order sum the per-tuple path accumulates.
  void EndBatch(double cost, uint64_t acquisitions, uint64_t executions) {
    executions_.fetch_add(executions, std::memory_order_relaxed);
    acquisitions_.fetch_add(acquisitions, std::memory_order_relaxed);
    realized_cost_.fetch_add(cost, std::memory_order_relaxed);
  }

  size_t num_nodes() const { return nodes_.size(); }

  /// Relaxed point-in-time copy; safe concurrent with writers.
  ExecutionProfileSnapshot Snapshot() const;

 private:
  struct NodeCounters {
    std::atomic<uint64_t> evals{0};
    std::atomic<uint64_t> passes{0};
    std::atomic<uint64_t> unknowns{0};
  };

  std::vector<NodeCounters> nodes_;
  std::array<std::atomic<uint64_t>, 64> attr_evals_{};
  std::array<std::atomic<uint64_t>, 64> attr_passes_{};
  std::atomic<uint64_t> executions_{0};
  std::atomic<uint64_t> unknown_executions_{0};
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<double> realized_cost_{0.0};
};

}  // namespace caqp

#endif  // CAQP_EXEC_EXEC_PROFILE_H_
