// Wire serialization for ExecutionResult — the result-side counterpart to
// the v0xCA plan encoding (plan/plan_serde.h). Executor shards in the dist
// tier reply with a partial ExecutionResult for their partition; this gives
// those replies a stable, validated byte format so a coordinator can treat a
// corrupt reply like a lost shard instead of crashing or silently merging
// garbage.
//
// Layout (all integers LEB128 varints unless noted):
//
//   u8      version        (kResultWireFormatVersion, 0xE5)
//   u8      verdict3       (0 = kFalse, 1 = kTrue, 2 = kUnknown)
//   u8      flags          (bit 0 = aborted, bit 1 = trace context present;
//                           other bits must be zero)
//   f64     cost           (IEEE-754 LE; must be finite and >= 0)
//   varint  acquisitions
//   varint  retries
//   varint  acquired bits  (AttrSet bitmap)
//   varint  failed bits    (AttrSet bitmap)
//  -- iff flags bit 1 (since PR 10; absent in legacy encodings) --
//   varint  trace_id       (the request trace the shard executed under)
//   varint  root_span_id   (the shard's own root span, e.g. shard.handle)
//   varint  parent_span_id (the coordinator span the shard was parented to)
//
// The trace-context tail is the shard's echo of the scatter-path trace
// propagation: a coordinator joins remote shard spans under its own request
// span by matching the echoed trace_id (a mismatch degrades the reply like
// corruption — see dist/coordinator.cc). Legacy v0xE5 bytes, which never
// set bit 1, decode exactly as before.
//
// The two-valued `verdict` field is derived (verdict3 == kTrue) and never
// encoded. Decoding rejects unknown versions, out-of-range enum bytes,
// non-finite or negative cost, counts that overflow int, span ids that
// overflow uint32, a trace context with trace_id 0, and trailing bytes.

#ifndef CAQP_EXEC_RESULT_SERDE_H_
#define CAQP_EXEC_RESULT_SERDE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"

namespace caqp {

/// Leading version byte of the result encoding. Deliberately distinct from
/// the plan formats (0xCA and the legacy 0..3 tree kinds) so a plan buffer
/// handed to the result decoder (or vice versa) fails on the first byte.
inline constexpr uint8_t kResultWireFormatVersion = 0xE5;

/// Trace context a shard echoes back with its partial result so the
/// coordinator can stitch remote spans under its request span. present()
/// iff trace_id != 0 — a context is only encoded when the request actually
/// ran under a RequestScope (trace ids are allocated starting at 1).
struct ResultTraceContext {
  uint64_t trace_id = 0;
  uint32_t root_span_id = 0;
  uint32_t parent_span_id = 0;

  bool present() const { return trace_id != 0; }
  friend bool operator==(const ResultTraceContext&,
                         const ResultTraceContext&) = default;
};

/// Encodes `result` into the wire format above. A present() trace context
/// sets flags bit 1 and appends the trace-context tail; the default
/// (absent) context reproduces the legacy byte stream exactly.
std::vector<uint8_t> SerializeExecutionResult(
    const ExecutionResult& result, const ResultTraceContext& trace = {});

/// Decodes and validates a buffer produced by SerializeExecutionResult.
/// A trace-context tail, if present, is validated and discarded.
Result<ExecutionResult> DeserializeExecutionResult(
    const std::vector<uint8_t>& bytes);

/// As above, but surfaces the trace context: `*trace` is the decoded tail
/// when present, and a default (absent) context for legacy bytes.
Result<ExecutionResult> DeserializeExecutionResult(
    const std::vector<uint8_t>& bytes, ResultTraceContext* trace);

}  // namespace caqp

#endif  // CAQP_EXEC_RESULT_SERDE_H_
