// Wire serialization for ExecutionResult — the result-side counterpart to
// the v0xCA plan encoding (plan/plan_serde.h). Executor shards in the dist
// tier reply with a partial ExecutionResult for their partition; this gives
// those replies a stable, validated byte format so a coordinator can treat a
// corrupt reply like a lost shard instead of crashing or silently merging
// garbage.
//
// Layout (all integers LEB128 varints unless noted):
//
//   u8      version        (kResultWireFormatVersion, 0xE5)
//   u8      verdict3       (0 = kFalse, 1 = kTrue, 2 = kUnknown)
//   u8      flags          (bit 0 = aborted; other bits must be zero)
//   f64     cost           (IEEE-754 LE; must be finite and >= 0)
//   varint  acquisitions
//   varint  retries
//   varint  acquired bits  (AttrSet bitmap)
//   varint  failed bits    (AttrSet bitmap)
//
// The two-valued `verdict` field is derived (verdict3 == kTrue) and never
// encoded. Decoding rejects unknown versions, out-of-range enum bytes,
// non-finite or negative cost, counts that overflow int, and trailing bytes.

#ifndef CAQP_EXEC_RESULT_SERDE_H_
#define CAQP_EXEC_RESULT_SERDE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"

namespace caqp {

/// Leading version byte of the result encoding. Deliberately distinct from
/// the plan formats (0xCA and the legacy 0..3 tree kinds) so a plan buffer
/// handed to the result decoder (or vice versa) fails on the first byte.
inline constexpr uint8_t kResultWireFormatVersion = 0xE5;

/// Encodes `result` into the wire format above.
std::vector<uint8_t> SerializeExecutionResult(const ExecutionResult& result);

/// Decodes and validates a buffer produced by SerializeExecutionResult.
Result<ExecutionResult> DeserializeExecutionResult(
    const std::vector<uint8_t>& bytes);

}  // namespace caqp

#endif  // CAQP_EXEC_RESULT_SERDE_H_
