// Mask-based AVX-512 chunk engine for ColumnarBatchExecutor.
//
// The portable selection-vector kernels (batch_executor.cc) pay one
// compacted position store per surviving row per plan node; that is the
// right shape for arbitrary RowId lists, but when the batch's rows are
// CONTIGUOUS the selection indirection can disappear entirely. This engine
// keeps every row in place and tracks, per plan node, a 32-row alive
// bitmask (__mmask32 per block of 32 chunk positions):
//
//  * splits compare a 32-value column slice against the split value in one
//    512-bit op and derive both children's masks with two mask ANDs — no
//    position stores at all;
//  * sequential leaves AND each conjunct's compare mask into the alive
//    mask, accumulating a per-row executed-step count in a u16 lane via a
//    masked add (the lane freezes when its row's mask bit drops, exactly
//    the scalar short-circuit);
//  * every row ends with one u16 cost-index store (leaf table base +
//    executed steps) and one verdict mask bit; the chunk epilogue expands
//    verdict masks to bytes and folds leaf_cost_[cost_idx[i]] in row order.
//
// All observable outputs (verdicts, matches, acquisitions, acquired set,
// bit-exact total_cost, ExecutionProfile counters) are identical to the
// selection path: counts come from mask popcounts, and the cost fold reads
// the same exact-cost table in the same row order. The engine evaluates a
// predicate lane even for rows that already failed an earlier conjunct —
// loads are side-effect free, and the counters are derived from masks, so
// the scalar short-circuit *semantics* are preserved while the work is
// branch-free.
//
// This header is plain C++ (no intrinsics) so the executor can include it
// unconditionally; the implementation lives in batch_masked_avx512.cc,
// which CMake compiles with AVX-512 flags only when the toolchain supports
// them (CAQP_HAVE_AVX512). Callers must check MaskedChunkAvailable() — a
// cached runtime CPUID probe — before invoking RunChunkMasked.

#ifndef CAQP_EXEC_BATCH_MASKED_H_
#define CAQP_EXEC_BATCH_MASKED_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "exec/exec_profile.h"
#include "exec/executor.h"
#include "plan/batch_plan.h"

namespace caqp::internal {

/// Everything one masked chunk run needs, wired up by ColumnarBatchExecutor.
/// All pointers are borrowed; scratch buffers must hold at least
/// `blocks` uint32 words (masks) resp. `32 * blocks` elements (per-row).
struct MaskedChunkArgs {
  const BatchPlanView* view = nullptr;
  const Dataset* data = nullptr;
  /// Exact-cost table + per-slot offsets (see batch_executor.h). The table
  /// must have <= 65535 entries so a cost index fits a u16 lane — the
  /// executor checks this once at construction.
  const double* leaf_cost = nullptr;
  const uint32_t* leaf_cost_offset = nullptr;
  /// Generic-leaf fallback state (rare; exhaustive-planner plans only).
  const RangeVec* full_ranges = nullptr;
  RangeVec* ranges_scratch = nullptr;

  /// Scratch: per-slot alive masks (view->num_slots() * blocks words,
  /// slot-major), one working copy for leaf steps, per-row executed-step
  /// lanes, per-row cost indices, and the final verdict masks.
  uint32_t* node_masks = nullptr;
  uint32_t* alive_scratch = nullptr;
  uint16_t* exec_scratch = nullptr;
  uint16_t* cost_idx = nullptr;
  uint32_t* verdict_masks = nullptr;

  /// Chunk geometry: rows [row_base, row_base + n) of the dataset, n <= 32 *
  /// blocks. The caller guarantees the chunk's RowIds are consecutive.
  RowId row_base = 0;
  uint32_t n = 0;
  uint32_t blocks = 0;

  uint8_t* verdicts = nullptr;          ///< optional, chunk-local, n bytes
  ExecutionProfile* profile = nullptr;  ///< optional
  BatchExecutionStats* stats = nullptr;
  /// Optional per-op row tallies (BatchPlanView::kNumOps entries): each
  /// slot adds its alive-row count under its op, matching the selection
  /// path's kernel_rows_ accounting (see batch_executor.h).
  uint64_t* kernel_rows = nullptr;
};

/// True iff the running CPU has the AVX-512 subset the engine uses
/// (F/BW/DQ/VL). Always false when the library was built without
/// CAQP_HAVE_AVX512. Cached after the first call; thread-safe.
bool MaskedChunkAvailable();

/// Runs one chunk through the plan. Preconditions: MaskedChunkAvailable(),
/// consecutive rows, and a <= 65535-entry cost table.
void RunChunkMasked(const MaskedChunkArgs& args);

}  // namespace caqp::internal

#endif  // CAQP_EXEC_BATCH_MASKED_H_
