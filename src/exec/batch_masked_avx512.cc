// AVX-512 mask-based chunk engine — see batch_masked.h for the contract
// and batch_executor.h for the equivalence argument. This translation unit
// is the only one compiled with AVX-512 flags; callers gate on
// MaskedChunkAvailable() so the vector code never executes on CPUs without
// the F/BW/DQ/VL subsets.

#include "exec/batch_masked.h"

#include <immintrin.h>

#include "core/predicate.h"
#include "plan/compiled_plan.h"

namespace caqp::internal {

bool MaskedChunkAvailable() {
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512bw") &&
                         __builtin_cpu_supports("avx512dq") &&
                         __builtin_cpu_supports("avx512vl");
  return ok;
}

namespace {

inline uint64_t Pop(uint32_t m) {
  return static_cast<uint64_t>(__builtin_popcount(m));
}

/// Split: one 512-bit compare per 32-row block, two mask ANDs for the
/// children. Children of empty blocks still get zero masks stored — the
/// mask arrays are reused across chunks and would otherwise go stale.
void SplitMasked(const MaskedChunkArgs& a, const BatchPlanView::Node& node,
                 const uint32_t* M, bool first_acq) {
  uint32_t* lt = a.node_masks + size_t{node.lt} * a.blocks;
  uint32_t* ge = a.node_masks + size_t{node.ge} * a.blocks;
  const Value* col = a.data->column(node.attr).data() + a.row_base;
  const __m512i sv =
      _mm512_set1_epi16(static_cast<short>(node.split_value));
  uint64_t cnt = 0, ng = 0;
  for (uint32_t b = 0; b < a.blocks; ++b) {
    const __mmask32 m = M[b];
    if (m == 0) {
      lt[b] = 0;
      ge[b] = 0;
      continue;
    }
    const __m512i v = _mm512_maskz_loadu_epi16(m, col + 32u * b);
    const uint32_t c = _mm512_cmp_epu16_mask(v, sv, _MM_CMPINT_NLT);  // >=
    const uint32_t gm = m & c;
    lt[b] = m & ~c;
    ge[b] = gm;
    cnt += Pop(m);
    ng += Pop(gm);
  }
  if (cnt == 0) return;
  if (first_acq) {
    a.stats->total_acquisitions += cnt;
    a.stats->acquired.Insert(node.attr);
  }
  if (a.profile != nullptr) {
    a.profile->NodeEvalN(node.plan_index, cnt);
    a.profile->PredEvalN(node.attr, cnt, ng);
    a.profile->NodePassN(node.plan_index, ng);
  }
}

/// Sequential leaf: per step, AND the conjunct's compare mask into the
/// alive masks while bumping each still-alive row's executed-step lane —
/// the lane freezes exactly when the scalar walk would have stopped, so
/// cost index = table base + executed reproduces the scalar charge
/// sequence. Rows that already failed still occupy (masked-off) lanes;
/// their loads are suppressed by the mask and their counters come from
/// popcounts, so observable semantics match the short-circuit exactly.
void SeqMasked(const MaskedChunkArgs& a, const BatchPlanView::Node& node,
               uint32_t slot, const uint32_t* M, uint64_t entered) {
  const auto steps = a.view->steps(node);
  if (a.profile != nullptr) a.profile->NodeEvalN(node.plan_index, entered);

  uint32_t* A = a.alive_scratch;
  uint16_t* exec = a.exec_scratch;
  const __m512i zero = _mm512_setzero_si512();
  for (uint32_t b = 0; b < a.blocks; ++b) {
    A[b] = M[b];
    if (M[b] != 0) {
      _mm512_mask_storeu_epi16(exec + 32u * b, M[b], zero);
    }
  }

  const __m512i one = _mm512_set1_epi16(1);
  uint64_t live = entered;
  for (uint32_t k = 0; k < node.num_steps && live > 0; ++k) {
    const BatchPlanView::AcqStep& st = steps[k];
    const Value* col = a.data->column(st.attr).data() + a.row_base;
    const __m512i lo = _mm512_set1_epi16(static_cast<short>(st.pred.lo));
    const __m512i hi = _mm512_set1_epi16(static_cast<short>(st.pred.hi));
    const uint32_t neg = st.pred.negated ? 0xFFFFFFFFu : 0u;
    uint64_t pass = 0;
    for (uint32_t b = 0; b < a.blocks; ++b) {
      const __mmask32 al = A[b];
      if (al == 0) continue;
      const __m512i v = _mm512_maskz_loadu_epi16(al, col + 32u * b);
      const uint32_t in =
          _mm512_cmp_epu16_mask(v, lo, _MM_CMPINT_NLT) &
          _mm512_cmp_epu16_mask(v, hi, _MM_CMPINT_LE);
      __m512i e = _mm512_loadu_si512(exec + 32u * b);
      e = _mm512_mask_add_epi16(e, al, e, one);
      _mm512_storeu_si512(exec + 32u * b, e);
      const uint32_t na = al & (in ^ neg);
      A[b] = na;
      pass += Pop(na);
    }
    if (st.is_new) {
      a.stats->total_acquisitions += live;
      a.stats->acquired.Insert(st.attr);
    }
    if (a.profile != nullptr) a.profile->PredEvalN(st.attr, live, pass);
    live = pass;
  }

  const __m512i base =
      _mm512_set1_epi16(static_cast<short>(a.leaf_cost_offset[slot]));
  uint64_t matches = 0;
  for (uint32_t b = 0; b < a.blocks; ++b) {
    const __mmask32 m = M[b];
    if (m == 0) continue;
    const __m512i e = _mm512_loadu_si512(exec + 32u * b);
    _mm512_mask_storeu_epi16(a.cost_idx + 32u * b, m,
                             _mm512_add_epi16(e, base));
    a.verdict_masks[b] |= A[b];
    matches += Pop(A[b]);
  }
  a.stats->matches += matches;
  if (a.profile != nullptr) a.profile->NodePassN(node.plan_index, matches);
}

/// Constant-verdict leaf: every entering row costs the leaf's entry cost.
void VerdictMasked(const MaskedChunkArgs& a, const BatchPlanView::Node& node,
                   uint32_t slot, const uint32_t* M, uint64_t entered,
                   bool truth) {
  const __m512i base =
      _mm512_set1_epi16(static_cast<short>(a.leaf_cost_offset[slot]));
  for (uint32_t b = 0; b < a.blocks; ++b) {
    const __mmask32 m = M[b];
    if (m == 0) continue;
    _mm512_mask_storeu_epi16(a.cost_idx + 32u * b, m, base);
    if (truth) a.verdict_masks[b] |= m;
  }
  if (truth) a.stats->matches += entered;
  if (a.profile != nullptr) {
    a.profile->NodeEvalN(node.plan_index, entered);
    if (truth) a.profile->NodePassN(node.plan_index, entered);
  }
}

/// Residual-query leaf: inherently per-row (three-valued range semantics),
/// so iterate the mask bits scalar — textually parallel to the selection
/// path's GenericKernel.
void GenericMasked(const MaskedChunkArgs& a, const BatchPlanView::Node& node,
                   uint32_t slot, const uint32_t* M, uint64_t entered) {
  if (a.profile != nullptr) a.profile->NodeEvalN(node.plan_index, entered);
  const Query& query = a.view->residual_query(node);
  const auto steps = a.view->steps(node);
  const uint32_t base = a.leaf_cost_offset[slot];
  const size_t num_attrs = a.data->schema().num_attributes();
  uint64_t matches = 0;
  for (uint32_t b = 0; b < a.blocks; ++b) {
    uint32_t m = M[b];
    uint32_t vb = 0;
    while (m != 0) {
      const uint32_t bit = static_cast<uint32_t>(__builtin_ctz(m));
      m &= m - 1;
      const uint32_t pos = 32u * b + bit;
      const RowId row = a.row_base + pos;
      *a.ranges_scratch = *a.full_ranges;
      for (size_t at = 0; at < num_attrs; ++at) {
        if (node.entry_acquired.Contains(static_cast<AttrId>(at))) {
          const Value v = a.data->at(row, static_cast<AttrId>(at));
          (*a.ranges_scratch)[at] = ValueRange{v, v};
        }
      }
      Truth t = query.EvaluateOnRanges(*a.ranges_scratch);
      uint32_t executed = 0;
      for (size_t k = 0; k < steps.size(); ++k) {
        if (t != Truth::kUnknown) break;
        const BatchPlanView::AcqStep& st = steps[k];
        executed = static_cast<uint32_t>(k) + 1;
        if (st.is_new) {
          ++a.stats->total_acquisitions;
          a.stats->acquired.Insert(st.attr);
        }
        const Value v = a.data->at(row, st.attr);
        (*a.ranges_scratch)[st.attr] = ValueRange{v, v};
        t = query.EvaluateOnRanges(*a.ranges_scratch);
      }
      CAQP_CHECK(t != Truth::kUnknown);
      a.cost_idx[pos] = static_cast<uint16_t>(base + executed);
      if (t == Truth::kTrue) {
        vb |= 1u << bit;
        ++matches;
      }
    }
    a.verdict_masks[b] |= vb;
  }
  a.stats->matches += matches;
  if (a.profile != nullptr) a.profile->NodePassN(node.plan_index, matches);
}

}  // namespace

void RunChunkMasked(const MaskedChunkArgs& a) {
  using Op = BatchPlanView::Op;
  const BatchPlanView& view = *a.view;
  const uint32_t num_slots = static_cast<uint32_t>(view.num_slots());

  // Root mask: all n rows alive (partial last block); verdict masks start
  // empty and leaves OR their survivors in.
  {
    uint32_t* m0 = a.node_masks;
    for (uint32_t b = 0; b < a.blocks; ++b) {
      m0[b] = 0xFFFFFFFFu;
      a.verdict_masks[b] = 0;
    }
    const uint32_t rem = a.n & 31u;
    if (rem != 0) m0[a.blocks - 1] = (1u << rem) - 1u;
  }

  // Same forward parent-before-child sweep as the selection path; a slot
  // with no alive rows is skipped (after propagating empty child masks).
  for (uint32_t s = 0; s < num_slots; ++s) {
    const BatchPlanView::Node& node = view.slot(s);
    const uint32_t* M = a.node_masks + size_t{s} * a.blocks;
    uint64_t entered = 0;
    for (uint32_t b = 0; b < a.blocks; ++b) entered += Pop(M[b]);
    if (a.kernel_rows != nullptr) {
      a.kernel_rows[static_cast<size_t>(node.op)] += entered;
    }
    if (node.op == Op::kSplitFirst || node.op == Op::kSplitRepeat) {
      SplitMasked(a, node, M, node.op == Op::kSplitFirst);
      continue;
    }
    if (entered == 0) continue;
    switch (node.op) {
      case Op::kVerdictTrue:
      case Op::kVerdictFalse:
        VerdictMasked(a, node, s, M, entered, node.op == Op::kVerdictTrue);
        break;
      case Op::kGeneric:
        GenericMasked(a, node, s, M, entered);
        break;
      default:
        SeqMasked(a, node, s, M, entered);
        break;
    }
  }

  // Expand verdict masks to 0/1 bytes (masked store keeps the tail in
  // bounds), then fold the exact per-row costs in row order — the same
  // addition sequence as the scalar path, hence bit-identical.
  if (a.verdicts != nullptr) {
    const uint32_t rem = a.n & 31u;
    for (uint32_t b = 0; b < a.blocks; ++b) {
      const __m256i bytes =
          _mm256_maskz_set1_epi8(a.verdict_masks[b], static_cast<char>(1));
      const bool partial = rem != 0 && b == a.blocks - 1;
      if (!partial) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(a.verdicts + 32u * b), bytes);
      } else {
        _mm256_mask_storeu_epi8(a.verdicts + 32u * b, (1u << rem) - 1u,
                                bytes);
      }
    }
  }
  const uint16_t* ci = a.cost_idx;
  const double* lc = a.leaf_cost;
  double acc = a.stats->total_cost;
  for (uint32_t i = 0; i < a.n; ++i) acc += lc[ci[i]];
  a.stats->total_cost = acc;
}

}  // namespace caqp::internal
