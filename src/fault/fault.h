// Deterministic fault injection for acquisitional execution (paper Section
// 2.4: motes brown out, sensors stick, radios time out). A FaultSpec
// describes the failure distribution; a FaultInjector turns it into a
// reproducible per-attempt decision stream; FaultyAcquisitionSource decorates
// any AcquisitionSource so the executor sees failures without the underlying
// data source knowing about them.
//
// Determinism contract: the outcome of the k-th acquisition attempt for
// attribute `a` depends only on (spec.seed, a, k). Each attribute draws from
// its own forked RNG stream, so plans that acquire attributes in different
// orders — or skip some entirely — still see identical per-attribute fault
// sequences. Two runs with the same spec and the same workload are
// bit-identical.

#ifndef CAQP_FAULT_FAULT_H_
#define CAQP_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/types.h"
#include "exec/executor.h"

namespace caqp {

/// Declarative description of a sensor fault distribution.
struct FaultSpec {
  /// Per-attempt probability that an acquisition transiently fails (the
  /// sensor returns nothing this time but may succeed on retry).
  double transient = 0.0;
  /// Per-attribute probability that a sensor is permanently stuck. Decided
  /// once per attribute per injector; a stuck sensor fails every attempt
  /// with permanent=true so the executor stops retrying it.
  double stuck = 0.0;
  /// Per-attempt probability of a latency/cost spike on a *successful*
  /// acquisition; the sampled value arrives but costs spike_multiplier x
  /// the normal marginal cost.
  double spike = 0.0;
  double spike_multiplier = 1.0;
  uint64_t seed = 1;
  /// Per-attribute overrides of `transient` (attr, probability).
  std::vector<std::pair<AttrId, double>> transient_overrides;

  /// True when the spec can inject anything at all.
  bool any() const {
    if (transient > 0.0 || stuck > 0.0 || spike > 0.0) return true;
    for (const auto& [attr, p] : transient_overrides) {
      (void)attr;
      if (p > 0.0) return true;
    }
    return false;
  }

  /// Transient-failure probability for `attr` (override or global).
  double TransientFor(AttrId attr) const;

  /// Parses the `--fault-profile` mini-language: comma-separated key=value
  /// pairs, e.g. "transient=0.1,stuck=0.01,spike=0.05,spike_mult=3,seed=7".
  /// Per-attribute transient overrides use "transient@<attr>=<p>".
  /// Probabilities must lie in [0,1]; spike_mult must be positive.
  /// Malformed input is rejected with a descriptive InvalidArgument rather
  /// than repaired: duplicate keys (including a second override for the
  /// same attribute), empty items, and trailing commas are all errors.
  static Result<FaultSpec> Parse(const std::string& text);

  /// Round-trips through Parse (modulo float formatting).
  std::string ToString() const;
};

/// Turns a FaultSpec into reproducible per-attempt fault decisions. Not
/// thread-safe; use one injector per mote / per execution thread.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  /// Outcome of one acquisition attempt.
  struct Outcome {
    bool fail = false;
    bool permanent = false;
    double cost_multiplier = 1.0;
  };

  /// Decides the next attempt for `attr`, advancing only that attribute's
  /// stream. Emits the `fault.injected` counter on failure.
  Outcome NextAttempt(AttrId attr);

  /// True when `attr` has been decided permanently stuck. Only meaningful
  /// after the first NextAttempt for that attribute.
  bool IsStuck(AttrId attr) const;

  /// Faults injected (failed attempts) since construction or Reset().
  uint64_t injected() const { return injected_; }

  /// Re-derives every stream from the spec seed; after Reset() the injector
  /// replays exactly the same decision sequence.
  void Reset();

  const FaultSpec& spec() const { return spec_; }

 private:
  struct AttrState {
    Rng rng;
    bool stuck = false;
  };
  AttrState& StateFor(AttrId attr);

  FaultSpec spec_;
  std::vector<AttrState> states_;  // index = attr; grown lazily
  std::vector<bool> initialized_;
  uint64_t injected_ = 0;
};

/// Decorator that injects faults in front of any AcquisitionSource. The
/// underlying source is only consulted for attempts the injector lets
/// through, so recorded datasets and live samplers need no fault awareness.
class FaultyAcquisitionSource : public AcquisitionSource {
 public:
  FaultyAcquisitionSource(AcquisitionSource& base, FaultInjector& injector)
      : base_(base), injector_(injector) {}

  AcquiredValue Acquire(AttrId attr) override {
    const FaultInjector::Outcome o = injector_.NextAttempt(attr);
    if (o.fail) return AcquiredValue::Failure(o.permanent);
    AcquiredValue v = base_.Acquire(attr);
    v.cost_multiplier *= o.cost_multiplier;
    return v;
  }

 private:
  AcquisitionSource& base_;
  FaultInjector& injector_;
};

}  // namespace caqp

#endif  // CAQP_FAULT_FAULT_H_
