#include "fault/fault.h"

#include <cstdlib>
#include <sstream>

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

namespace {

// SplitMix64 finalizer: decorrelates the per-attribute stream seeds so
// adjacent attributes (and adjacent spec seeds) get unrelated streams.
uint64_t MixSeed(uint64_t seed, uint64_t attr) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (attr + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Status ParseProbability(const std::string& key, const std::string& text,
                        double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("fault profile: bad number for '" + key +
                                   "': " + text);
  }
  if (v < 0.0 || v > 1.0) {
    return Status::InvalidArgument("fault profile: '" + key +
                                   "' must be in [0,1], got " + text);
  }
  *out = v;
  return Status::OK();
}

}  // namespace

double FaultSpec::TransientFor(AttrId attr) const {
  for (const auto& [a, p] : transient_overrides) {
    if (a == attr) return p;
  }
  return transient;
}

Result<FaultSpec> FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  if (!text.empty() && text.back() == ',') {
    // getline never yields the empty segment after a trailing ',', so the
    // dangling comma must be rejected up front or it would pass silently.
    return Status::InvalidArgument(
        "fault profile: trailing ',' (dangling empty item)");
  }
  std::vector<std::string> seen_keys;  // duplicate detection, incl. @attr
  const auto claim_key = [&seen_keys](const std::string& key) -> Status {
    for (const std::string& s : seen_keys) {
      if (s == key) {
        return Status::InvalidArgument(
            "fault profile: duplicate key '" + key +
            "' (each key may appear once; last-write-wins is not supported)");
      }
    }
    seen_keys.push_back(key);
    return Status::OK();
  };
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) {
      return Status::InvalidArgument(
          "fault profile: empty item (stray ',')");
    }
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault profile: expected key=value, got '" +
                                     item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    CAQP_RETURN_IF_ERROR(claim_key(key));
    if (key == "transient") {
      CAQP_RETURN_IF_ERROR(ParseProbability(key, val, &spec.transient));
    } else if (key == "stuck") {
      CAQP_RETURN_IF_ERROR(ParseProbability(key, val, &spec.stuck));
    } else if (key == "spike") {
      CAQP_RETURN_IF_ERROR(ParseProbability(key, val, &spec.spike));
    } else if (key == "spike_mult") {
      char* end = nullptr;
      const double v = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || v <= 0.0) {
        return Status::InvalidArgument(
            "fault profile: spike_mult must be a positive number, got '" + val +
            "'");
      }
      spec.spike_multiplier = v;
    } else if (key == "seed") {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0') {
        return Status::InvalidArgument("fault profile: bad seed '" + val + "'");
      }
      spec.seed = v;
    } else if (key.rfind("transient@", 0) == 0) {
      const std::string attr_text = key.substr(10);
      char* end = nullptr;
      const unsigned long long attr = std::strtoull(attr_text.c_str(), &end, 10);
      if (end == attr_text.c_str() || *end != '\0') {
        return Status::InvalidArgument("fault profile: bad attribute in '" +
                                       key + "'");
      }
      double p = 0.0;
      CAQP_RETURN_IF_ERROR(ParseProbability(key, val, &p));
      for (const auto& [existing, prob] : spec.transient_overrides) {
        (void)prob;
        // Catches spellings claim_key can't ("transient@3" vs
        // "transient@03"): one stream per attribute, no silent override.
        if (existing == static_cast<AttrId>(attr)) {
          return Status::InvalidArgument(
              "fault profile: duplicate transient override for attribute " +
              attr_text);
        }
      }
      spec.transient_overrides.emplace_back(static_cast<AttrId>(attr), p);
    } else {
      return Status::InvalidArgument("fault profile: unknown key '" + key +
                                     "'");
    }
  }
  return spec;
}

std::string FaultSpec::ToString() const {
  std::ostringstream out;
  out << "transient=" << transient << ",stuck=" << stuck << ",spike=" << spike
      << ",spike_mult=" << spike_multiplier << ",seed=" << seed;
  for (const auto& [attr, p] : transient_overrides) {
    out << ",transient@" << attr << "=" << p;
  }
  return out.str();
}

FaultInjector::AttrState& FaultInjector::StateFor(AttrId attr) {
  const size_t idx = static_cast<size_t>(attr);
  if (idx >= states_.size()) {
    states_.resize(idx + 1, AttrState{Rng(0), false});
    initialized_.resize(idx + 1, false);
  }
  if (!initialized_[idx]) {
    states_[idx].rng = Rng(MixSeed(spec_.seed, attr));
    // The stuck decision is the stream's first draw, so it is independent of
    // how many attempts any other attribute has seen.
    states_[idx].stuck = states_[idx].rng.Bernoulli(spec_.stuck);
    initialized_[idx] = true;
  }
  return states_[idx];
}

FaultInjector::Outcome FaultInjector::NextAttempt(AttrId attr) {
  AttrState& st = StateFor(attr);
  Outcome out;
  if (st.stuck) {
    out.fail = true;
    out.permanent = true;
  } else {
    out.fail = st.rng.Bernoulli(spec_.TransientFor(attr));
    if (!out.fail && st.rng.Bernoulli(spec_.spike)) {
      out.cost_multiplier = spec_.spike_multiplier;
    }
  }
  if (out.fail) {
    ++injected_;
    CAQP_OBS_COUNTER_INC("fault.injected");
  }
  return out;
}

bool FaultInjector::IsStuck(AttrId attr) const {
  const size_t idx = static_cast<size_t>(attr);
  return idx < states_.size() && initialized_[idx] && states_[idx].stuck;
}

void FaultInjector::Reset() {
  states_.clear();
  initialized_.clear();
  injected_ = 0;
}

}  // namespace caqp
