#include "dist/health.h"

namespace caqp::dist {

ShardHealth::ShardHealth() : ShardHealth(Policy{}) {}

ShardHealth::State ShardHealth::OnSuccess() {
  failure_streak_ = 0;
  // Streaks saturate at the policy thresholds; only "did it reach the
  // threshold" matters, and saturation keeps long runs overflow-free.
  if (success_streak_ < policy_.recover_after) ++success_streak_;
  if (state_ == State::kDead) {
    // A successful probe revives the shard into kDegraded; it earns
    // kHealthy back the same way a degraded shard does.
    state_ = State::kDegraded;
  }
  if (state_ == State::kDegraded && success_streak_ >= policy_.recover_after) {
    state_ = State::kHealthy;
  }
  return state_;
}

ShardHealth::State ShardHealth::OnFailure() {
  success_streak_ = 0;
  if (failure_streak_ < policy_.dead_after) ++failure_streak_;
  state_ = failure_streak_ >= policy_.dead_after ? State::kDead
                                                 : State::kDegraded;
  return state_;
}

const char* ShardHealthStateName(ShardHealth::State state) {
  switch (state) {
    case ShardHealth::State::kHealthy:
      return "healthy";
    case ShardHealth::State::kDegraded:
      return "degraded";
    case ShardHealth::State::kDead:
      return "dead";
  }
  return "unknown";
}

}  // namespace caqp::dist
