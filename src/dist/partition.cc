#include "dist/partition.h"

#include "common/check.h"

namespace caqp::dist {

namespace {
// splitmix64 finalizer: full-avalanche mix of the row id with the seed.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Result<PartitionSpec::Scheme> PartitionSpec::ParseScheme(
    const std::string& text) {
  if (text == "hash") return Scheme::kHash;
  if (text == "range") return Scheme::kRange;
  return Status::InvalidArgument("unknown partition scheme '" + text +
                                 "' (expected hash|range)");
}

const char* PartitionSchemeName(PartitionSpec::Scheme scheme) {
  switch (scheme) {
    case PartitionSpec::Scheme::kRange:
      return "range";
    case PartitionSpec::Scheme::kHash:
      return "hash";
  }
  return "unknown";
}

size_t ShardForRow(const PartitionSpec& spec, size_t num_rows, RowId row) {
  CAQP_CHECK(spec.num_shards > 0);
  CAQP_CHECK(row < num_rows);
  switch (spec.scheme) {
    case PartitionSpec::Scheme::kRange: {
      const size_t block = (num_rows + spec.num_shards - 1) / spec.num_shards;
      return row / block;
    }
    case PartitionSpec::Scheme::kHash:
      return Mix64(row ^ spec.hash_seed) % spec.num_shards;
  }
  return 0;
}

std::vector<std::vector<RowId>> PartitionRows(const PartitionSpec& spec,
                                              size_t num_rows) {
  std::vector<std::vector<RowId>> out(spec.num_shards);
  for (size_t row = 0; row < num_rows; ++row) {
    out[ShardForRow(spec, num_rows, static_cast<RowId>(row))].push_back(
        static_cast<RowId>(row));
  }
  return out;
}

}  // namespace caqp::dist
