// Per-shard health state machine for the coordinator.
//
//   kHealthy --failure--> kDegraded --(dead_after consecutive)--> kDead
//   kDead --probe succeeds--> kDegraded --(recover_after consecutive)--> kHealthy
//
// A kDegraded shard is still fanned out to on every query (one slow reply
// should not eclipse a partition). A kDead shard is skipped — its rows
// degrade straight to Unknown without waiting out the deadline — except for
// a periodic probe query that gives it a path back. Any success resets the
// failure streak; any failure resets the success streak, so flapping shards
// sit in kDegraded rather than oscillating through kHealthy.
//
// The class is deliberately not thread-safe: the coordinator guards each
// shard's health with the shard slot mutex.

#ifndef CAQP_DIST_HEALTH_H_
#define CAQP_DIST_HEALTH_H_

#include <cstdint>

namespace caqp::dist {

class ShardHealth {
 public:
  enum class State : uint8_t { kHealthy = 0, kDegraded = 1, kDead = 2 };

  struct Policy {
    /// Consecutive failures that take a shard from kDegraded to kDead.
    int dead_after = 3;
    /// Consecutive successes that take a shard back to kHealthy.
    int recover_after = 2;
    /// A kDead shard is probed on every probe_every-th query (by global
    /// query sequence number). 0 disables probing: dead stays dead.
    uint64_t probe_every = 16;
  };

  // Out-of-line: a `Policy{}` default argument would need Policy's member
  // initializers before ShardHealth is complete (same constraint as
  // TraceRecorder::Options in obs/span.h).
  ShardHealth();
  explicit ShardHealth(Policy policy) : policy_(policy) {}

  State state() const { return state_; }
  int failure_streak() const { return failure_streak_; }
  int success_streak() const { return success_streak_; }

  /// Whether query number `seq` should be sent to this shard. True unless
  /// the shard is kDead and `seq` is not a probe slot.
  bool ShouldAttempt(uint64_t seq) const {
    if (state_ != State::kDead) return true;
    return policy_.probe_every > 0 && seq % policy_.probe_every == 0;
  }

  /// Records a successful reply; returns the new state.
  State OnSuccess();
  /// Records a failure (error reply, timeout, undecodable bytes); returns
  /// the new state.
  State OnFailure();

 private:
  Policy policy_;
  State state_ = State::kHealthy;
  int failure_streak_ = 0;
  int success_streak_ = 0;
};

const char* ShardHealthStateName(ShardHealth::State state);

}  // namespace caqp::dist

#endif  // CAQP_DIST_HEALTH_H_
