#include "dist/merge.h"

namespace caqp::dist {

ExecutionResult MergeExecutionResults(const ExecutionResult& a,
                                      const ExecutionResult& b) {
  ExecutionResult out;
  out.verdict3 = TruthOr(a.verdict3, b.verdict3);
  out.verdict = out.verdict3 == Truth::kTrue;
  out.aborted = a.aborted || b.aborted;
  out.cost = a.cost + b.cost;
  out.acquisitions = a.acquisitions + b.acquisitions;
  out.retries = a.retries + b.retries;
  out.acquired = a.acquired.Union(b.acquired);
  out.failed = a.failed.Union(b.failed);
  return out;
}

ExecutionResult UnknownShardResult() {
  ExecutionResult out;
  out.verdict3 = Truth::kUnknown;
  out.verdict = false;
  return out;
}

}  // namespace caqp::dist
