// Verdict3-aware merge of partial ExecutionResults from executor shards.
//
// A distributed query evaluates the WHERE clause over every row of a
// partitioned dataset; each shard reports one partial ExecutionResult
// aggregated over its rows (existence semantics: verdict3 is the
// three-valued OR over the partition). Merging partials from disjoint
// partitions must preserve the PR 3 degradation contract:
//
//  * defined verdicts never flip: kTrue OR anything = kTrue, and a kFalse
//    partial can only stay kFalse or weaken to kUnknown — it never becomes
//    a wrong kTrue;
//  * Unknown propagates: a dead shard's partition merges as kUnknown, so
//    "no match found" is only claimed when every shard answered kFalse;
//  * acquisition/energy costs sum (partitions are disjoint row sets).

#ifndef CAQP_DIST_MERGE_H_
#define CAQP_DIST_MERGE_H_

#include "exec/executor.h"

namespace caqp::dist {

/// Combines two partial results from disjoint row partitions.
/// verdict3 = TruthOr; aborted ORs; cost/acquisitions/retries sum;
/// acquired/failed union; verdict is re-derived from verdict3.
/// Associative and commutative, with MergeIdentity() as identity.
ExecutionResult MergeExecutionResults(const ExecutionResult& a,
                                      const ExecutionResult& b);

/// Identity element for MergeExecutionResults: an empty partition — kFalse
/// verdict (an existence query over zero rows matches nothing), zero cost.
inline ExecutionResult MergeIdentity() { return ExecutionResult{}; }

/// Partial result standing in for a shard that never answered (dead, timed
/// out, or replied with undecodable bytes): kUnknown verdict, zero cost —
/// we cannot claim any acquisition happened or any row failed to match.
ExecutionResult UnknownShardResult();

}  // namespace caqp::dist

#endif  // CAQP_DIST_MERGE_H_
