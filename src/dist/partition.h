// Row partitioning for the distributed serving tier: assigns every dataset
// row (equivalently, every mote in a partitioned network) to exactly one
// executor shard. Two schemes:
//
//  * kRange — contiguous blocks of row ids. Mirrors a geographically
//    partitioned sensor field; cheap, cache-friendly, but skew follows the
//    data layout.
//  * kHash — splitmix64 over the row id. Spreads any layout evenly, so a
//    dead shard's Unknown rows are an unbiased sample of the dataset.
//
// Both schemes are deterministic functions of (spec, row), so a coordinator
// restart or a test re-run partitions identically.

#ifndef CAQP_DIST_PARTITION_H_
#define CAQP_DIST_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace caqp::dist {

struct PartitionSpec {
  enum class Scheme : uint8_t { kRange = 0, kHash = 1 };

  Scheme scheme = Scheme::kHash;
  size_t num_shards = 4;
  /// Mixed into the hash so two coordinators over the same data can use
  /// uncorrelated placements. Ignored by kRange.
  uint64_t hash_seed = 0x9e3779b97f4a7c15ULL;

  static PartitionSpec Hash(size_t num_shards) {
    PartitionSpec s;
    s.scheme = Scheme::kHash;
    s.num_shards = num_shards;
    return s;
  }
  static PartitionSpec Range(size_t num_shards) {
    PartitionSpec s;
    s.scheme = Scheme::kRange;
    s.num_shards = num_shards;
    return s;
  }
  /// Parses "hash" / "range" (tool flag syntax).
  static Result<Scheme> ParseScheme(const std::string& text);
};

const char* PartitionSchemeName(PartitionSpec::Scheme scheme);

/// Shard owning `row` under `spec`, in [0, spec.num_shards). For kRange the
/// caller supplies the dataset size; blocks are ceil(num_rows/num_shards)
/// wide so every shard but possibly the last is full.
size_t ShardForRow(const PartitionSpec& spec, size_t num_rows, RowId row);

/// Materializes the partition: result[s] lists the rows of shard s in
/// ascending row order. Sizes sum to num_rows; partitions are disjoint.
std::vector<std::vector<RowId>> PartitionRows(const PartitionSpec& spec,
                                              size_t num_rows);

}  // namespace caqp::dist

#endif  // CAQP_DIST_PARTITION_H_
