// ExecutorShard: one partition's in-process query agent.
//
// A shard owns a disjoint slice of the dataset rows (its "motes"), a single
// worker thread (serve::ThreadPool of size 1 — requests within a shard are
// serialized, like a mote network behind one radio), and a per-shard plan
// cache. The coordinator ships plans as v0xCA wire bytes — exactly what a
// basestation radios to motes — and the shard decodes them once per
// (signature, estimator version, planner fingerprint) key, caching the
// CompiledPlan; the cached path never touches the bytes again.
//
// The reply's partial ExecutionResult travels through the result wire format
// (exec/result_serde.h) even in-process, so the coordinator exercises — and
// validates against — the same encoding a remote shard would send: a corrupt
// reply is handled like a lost shard, never merged.
//
// Fault surface for tests and the --shard-fault-profile flag:
//  * Kill()/kill_after — the shard answers kShardUnavailable (a crashed
//    executor process);
//  * delay_seconds — the shard sleeps before executing (a straggler);
//  * acquisition_faults — a deterministic FaultSpec stream injected in front
//    of row acquisition, the PR 3 row-level failure model.

#ifndef CAQP_DIST_SHARD_H_
#define CAQP_DIST_SHARD_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "exec/executor.h"
#include "fault/fault.h"
#include "obs/calibration.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "opt/cost_model.h"
#include "serve/plan_cache.h"
#include "serve/thread_pool.h"

namespace caqp::dist {

/// Per-shard fault schedule for the `--shard-fault-profile` mini-language:
/// comma-separated directives
///   kill@<shard>[=<after_requests>]   answer kShardUnavailable from the
///                                     given request count on (default 0);
///   delay@<shard>=<millis>            sleep that long before each request.
struct ShardFaultSpec {
  struct Entry {
    size_t shard = 0;
    int64_t kill_after = -1;  ///< requests served before dying; -1 = never
    double delay_seconds = 0.0;
  };
  std::vector<Entry> entries;

  bool any() const { return !entries.empty(); }
  /// The entry for `shard`, or nullptr.
  const Entry* FindEntry(size_t shard) const;

  static Result<ShardFaultSpec> Parse(const std::string& text);
  std::string ToString() const;
};

/// One scatter request: the plan identity plus the shared wire bytes.
struct ShardRequest {
  serve::PlanCacheKey key;
  std::shared_ptr<const std::vector<uint8_t>> plan_bytes;
};

/// One shard's reply.
struct ShardReply {
  Status status;  ///< kOk, kShardUnavailable, or a plan-decode error
  /// SerializeExecutionResult(partial over this shard's rows); empty unless
  /// status is OK.
  std::vector<uint8_t> result_bytes;
  /// Per-row verdicts aligned with the shard's row list (ascending row
  /// order); empty unless status is OK.
  std::vector<Truth> row_verdicts;
  bool plan_cache_hit = false;
  double exec_seconds = 0.0;  ///< shard-side handling time (incl. delay)
};

class ExecutorShard {
 public:
  struct Options {
    size_t plan_cache_capacity = 64;
    DegradationPolicy row_policy{};
    /// Row-level acquisition faults; seed is XORed with the shard id so
    /// shards draw independent streams from one profile.
    FaultSpec acquisition_faults{};
    int64_t kill_after = -1;
    double delay_seconds = 0.0;
    /// Per-shard observability (owned by the coordinator). All optional.
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceRecorder* tracer = nullptr;
    size_t trace_worker = 0;  ///< worker slot in `tracer` (shard id + 1)
    obs::CalibrationAggregator* calibration = nullptr;
    size_t calibration_shard = 0;
  };

  /// `data` must outlive the shard. `rows` is this shard's partition.
  ExecutorShard(size_t shard_id, const Dataset& data, std::vector<RowId> rows,
                const AcquisitionCostModel& cost_model, Options options);

  ExecutorShard(const ExecutorShard&) = delete;
  ExecutorShard& operator=(const ExecutorShard&) = delete;

  /// Enqueues the request on the shard thread. The future is always
  /// fulfilled (a dead shard replies kShardUnavailable promptly).
  ///
  /// `parent` is the coordinator-side trace context: trace_id names the
  /// request trace and span_id the coordinator span (the scatter span) the
  /// shard's own spans should hang under. The shard echoes this context —
  /// plus its root span id — in the reply's result bytes
  /// (exec/result_serde.h trace-context tail), which is how a remote
  /// coordinator would re-join shard spans; the in-process tier records
  /// into the shared TraceRecorder directly and uses the echo to validate.
  std::future<ShardReply> Submit(ShardRequest request,
                                 obs::SpanContext parent);

  size_t shard_id() const { return shard_id_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<RowId>& rows() const { return rows_; }

  /// Test hooks / fault-profile surface: a killed shard keeps draining its
  /// queue but answers every request kShardUnavailable until Revive().
  void Kill() { dead_.store(true, std::memory_order_release); }
  void Revive() {
    dead_.store(false, std::memory_order_release);
    killed_by_schedule_.store(false, std::memory_order_release);
  }
  bool alive() const { return !dead_.load(std::memory_order_acquire); }

  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Eagerly drops the shard's cached plans (coordinator invalidation).
  /// Version-bumped keys would age out of the LRU anyway.
  void InvalidatePlans() { plan_cache_.InvalidateAll(); }

 private:
  ShardReply Handle(const ShardRequest& request, obs::SpanContext parent);

  /// Metric references resolved once at construction (registry lookups take
  /// a mutex; requests should not).
  struct MetricRefs {
    obs::Counter* requests = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* plan_decodes = nullptr;
    obs::Counter* plan_rejects = nullptr;
    obs::Counter* refused = nullptr;
    obs::Histogram* exec_seconds = nullptr;
  };

  const size_t shard_id_;
  const Dataset& data_;
  const std::vector<RowId> rows_;
  const AcquisitionCostModel& cost_model_;
  const Options options_;

  MetricRefs m_;
  serve::ShardedPlanCache plan_cache_;
  std::unique_ptr<FaultInjector> injector_;  // shard-thread only
  std::atomic<bool> dead_{false};
  std::atomic<bool> killed_by_schedule_{false};
  std::atomic<uint64_t> served_{0};

  // Last: the worker thread must stop before the members above die.
  serve::ThreadPool pool_{1};
};

}  // namespace caqp::dist

#endif  // CAQP_DIST_SHARD_H_
