// Coordinator — the scatter-gather front of the distributed serving tier.
//
// One Coordinator owns a dataset partitioned across N in-process
// ExecutorShards (dist/shard.h) and answers distributed queries: evaluate
// the query's WHERE clause over *every* row, returning per-row verdicts and
// one merged ExecutionResult. The flow per query:
//
//   Execute -> canonical signature -> coordinator plan cache (serve machinery)
//           -> miss: single-flight Build + estimate stamping, then
//              SerializePlan to v0xCA bytes (what a basestation would radio)
//           -> scatter: Submit(key, bytes) to every attempted shard
//           -> gather: per-shard deadline wait; dead/slow/corrupt shards
//              degrade their partition to Unknown rows (never a failed query)
//           -> merge: verdict3-aware MergeExecutionResults fold
//
// Shard-aware degradation: each shard has a ShardHealth state machine
// (dist/health.h). Failures (error reply, timeout, undecodable result
// bytes) degrade it; enough consecutive failures mark it dead, after which
// it is skipped — its rows go straight to Unknown without burning the
// deadline — except for periodic probe queries that let a revived shard
// earn its way back.
//
// Observability: metric shard 0 is the coordinator (dist.queries,
// dist.degraded_queries, dist.stragglers, dist.probes, the query-latency
// histogram); metric shard i+1 belongs to executor shard i — the same slot
// layout the TraceRecorder uses, so flight-recorder incidents carry the
// shard id in Incident::worker. Calibration aggregates across shards: each
// shard feeds per-node observed counters into its own
// CalibrationAggregator shard, and CalibrationSnapshot() merges them.

#ifndef CAQP_DIST_COORDINATOR_H_
#define CAQP_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/query.h"
#include "dist/health.h"
#include "dist/partition.h"
#include "dist/shard.h"
#include "exec/executor.h"
#include "obs/calibration.h"
#include "obs/histogram.h"
#include "obs/sharded_registry.h"
#include "obs/span.h"
#include "opt/cost_model.h"
#include "serve/plan_cache.h"
#include "serve/query_service.h"
#include "serve/single_flight.h"

namespace caqp::dist {

/// One shard's row in a DistReport.
struct ShardReportRow {
  size_t shard = 0;
  ShardHealth::State state = ShardHealth::State::kHealthy;
  size_t rows = 0;
  uint64_t requests = 0;   ///< requests the shard thread handled
  uint64_t failures = 0;   ///< coordinator-observed failures (incl. timeouts)
  uint64_t timeouts = 0;   ///< gather waits that hit the per-shard deadline
  uint64_t cache_hits = 0;
  obs::HistogramSnapshot exec_latency;  ///< shard-side handling seconds
};

/// Aggregated view of the coordinator's query stream.
struct DistReport {
  uint64_t queries = 0;
  uint64_t degraded_queries = 0;  ///< >= 1 shard missing from the merge
  uint64_t stragglers = 0;        ///< shard waits that timed out
  uint64_t probes = 0;            ///< queries sent to dead shards
  uint64_t planned = 0;
  uint64_t cache_hits = 0;        ///< coordinator plan-cache hits
  obs::HistogramSnapshot query_latency;
  std::vector<ShardReportRow> shards;
};

std::string DistReportToJson(const DistReport& report);

class Coordinator {
 public:
  struct Options {
    PartitionSpec partition;
    size_t plan_cache_capacity = 1024;
    size_t shard_plan_cache_capacity = 64;
    /// Gather wait per query, shared across shards (the clock starts at
    /// scatter; each shard future gets the remaining budget). <= 0 waits
    /// forever — a hung shard then hangs the query, so serving setups
    /// should always set one.
    double shard_deadline_seconds = 0.0;
    /// Row-level degradation inside shards (PR 3 semantics).
    DegradationPolicy row_policy{};
    /// Row-level acquisition faults, applied in every shard with
    /// per-shard-independent deterministic streams.
    FaultSpec acquisition_faults{};
    /// Shard-level fault schedule (kill/delay), usually from
    /// --shard-fault-profile.
    ShardFaultSpec shard_faults{};
    ShardHealth::Policy health{};
    bool enable_tracing = false;
    /// TraceRecorder sizing — one buffer + one flight ring per worker slot
    /// (slot 0 = coordinator, i + 1 = shard i). A SpanEvent is 72 bytes, so
    /// per slot this budgets roughly
    /// (max_span_events_per_worker + flight_capacity) * 72 bytes; incidents
    /// add flight_capacity * 72 bytes each, capped at max_incidents.
    size_t max_span_events_per_worker = size_t{1} << 15;
    size_t flight_capacity = 128;
    size_t max_incidents = 8192;
    bool enable_calibration = false;
  };

  /// Outcome of one distributed query. A degraded query (dead shard,
  /// straggler) still reports kOk — missing partitions surface as Unknown
  /// row verdicts and in shards_degraded/shard_status, mirroring the PR 3
  /// contract that infrastructure failure degrades answers, not requests.
  struct Response {
    Status status;  ///< kOk unless the coordinator itself failed to plan
    uint64_t query_sig = 0;
    uint64_t estimator_version = 0;
    uint64_t trace_id = 0;
    bool cache_hit = false;
    bool planned = false;
    std::shared_ptr<const CompiledPlan> plan;
    /// Merged partials: existence verdict over all rows, summed costs.
    ExecutionResult merged;
    /// Per-row verdicts in dataset row order. Rows of degraded shards are
    /// kUnknown.
    std::vector<Truth> row_verdicts;
    size_t matches = 0;       ///< rows with a defined kTrue verdict
    size_t unknown_rows = 0;  ///< rows whose verdict degraded to kUnknown
    size_t shards_total = 0;
    size_t shards_ok = 0;
    size_t shards_degraded = 0;  ///< failed or timed out this query
    size_t shards_skipped = 0;   ///< dead and not probed this query
    /// Per-shard outcome for this query (kOk / kShardUnavailable /
    /// kDeadlineExceeded / decode errors).
    std::vector<Status> shard_status;
    double latency_seconds = 0.0;

    bool ok() const { return status.ok(); }
    bool degraded() const { return shards_ok < shards_total; }
  };

  /// `data` and `cost_model` must outlive the coordinator. The factory is
  /// invoked once; the coordinator serializes planning through a single
  /// builder (plan fan-out is the scalable part of this tier, planning is
  /// already deduplicated by cache + single-flight).
  Coordinator(const Dataset& data, const AcquisitionCostModel& cost_model,
              const serve::PlanBuilderFactory& factory, Options options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Evaluates `query` over every row. Safe to call from multiple client
  /// threads concurrently.
  Response Execute(const Query& query);

  /// Estimator refresh: bumps the version component of cache keys and drops
  /// coordinator + shard plan caches.
  void InvalidateCache();

  uint64_t estimator_version() const {
    return estimator_version_.load(std::memory_order_relaxed);
  }

  size_t num_shards() const { return shards_.size(); }
  size_t num_rows() const { return data_.num_rows(); }
  const std::vector<RowId>& shard_rows(size_t shard) const {
    return shards_[shard]->rows();
  }
  ShardHealth::State shard_state(size_t shard) const;

  /// Test hooks: see ExecutorShard::Kill/Revive. ReviveShard also resets
  /// the health machine's view after enough successes (it does not force
  /// kHealthy — the shard earns it back through probes).
  void KillShard(size_t shard) { shards_[shard]->Kill(); }
  void ReviveShard(size_t shard) { shards_[shard]->Revive(); }

  DistReport Report() const;
  const obs::ShardedRegistry& metrics() const { return metrics_; }
  const obs::TraceRecorder& trace_recorder() const { return tracer_; }

  /// Calibration merged across every shard's aggregator shard. Empty
  /// unless Options::enable_calibration.
  obs::CalibrationReport CalibrationSnapshot() const;

 private:
  struct ShardSlot {
    mutable std::mutex mu;
    ShardHealth health;  // guarded by mu
    explicit ShardSlot(ShardHealth::Policy policy) : health(policy) {}
  };

  /// Coordinator-side metric refs (shard 0 of metrics_).
  struct CoordinatorMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* degraded_queries = nullptr;
    obs::Counter* stragglers = nullptr;
    obs::Counter* probes = nullptr;
    obs::Counter* planned = nullptr;
    obs::Counter* cache_hits = nullptr;
    /// Replies whose echoed trace context names a different trace — the
    /// scatter/gather pairing went wrong somewhere; the reply is degraded
    /// like corruption.
    obs::Counter* trace_mismatches = nullptr;
    obs::Histogram* query_latency = nullptr;
  };

  std::shared_ptr<const CompiledPlan> BuildAndCompile(const Query& query);

  const Dataset& data_;
  const AcquisitionCostModel& cost_model_;
  Options options_;

  // Observability first: shards hold pointers into these, so they must
  // outlive (be destroyed after) the shard worker threads below.
  obs::ShardedRegistry metrics_;  // shard 0 = coordinator, i+1 = shard i
  obs::TraceRecorder tracer_;    // same slot layout
  std::unique_ptr<obs::CalibrationAggregator> calibration_;
  CoordinatorMetrics cm_;
  std::vector<obs::Counter*> shard_failures_;  // in metrics_.shard(i + 1)
  std::vector<obs::Counter*> shard_timeouts_;

  std::unique_ptr<serve::PlanBuilder> builder_;
  std::mutex builder_mu_;  // serializes Build/estimate stamping
  uint64_t planner_fingerprint_ = 0;
  serve::ShardedPlanCache cache_;
  serve::SingleFlight flight_;
  std::atomic<uint64_t> estimator_version_{0};
  std::atomic<uint64_t> query_seq_{0};

  std::vector<std::unique_ptr<ShardSlot>> slots_;
  // Last: shard destructors drain their worker threads while everything
  // they reference is still alive.
  std::vector<std::unique_ptr<ExecutorShard>> shards_;
};

}  // namespace caqp::dist

#endif  // CAQP_DIST_COORDINATOR_H_
