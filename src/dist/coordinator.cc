#include "dist/coordinator.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/check.h"
#include "core/query_signature.h"
#include "dist/merge.h"
#include "exec/result_serde.h"
#include "obs/export.h"
#include "plan/plan_estimates.h"
#include "plan/plan_serde.h"

namespace caqp::dist {

namespace {
uint64_t CounterByName(const obs::RegistrySnapshot& snap, const char* name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

obs::HistogramSnapshot HistogramByName(const obs::RegistrySnapshot& snap,
                                       const char* name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return h.hist;
  }
  return obs::HistogramSnapshot{};
}
}  // namespace

Coordinator::Coordinator(const Dataset& data,
                         const AcquisitionCostModel& cost_model,
                         const serve::PlanBuilderFactory& factory,
                         Options options)
    : data_(data),
      cost_model_(cost_model),
      options_(std::move(options)),
      metrics_(options_.partition.num_shards + 1),
      tracer_(options_.partition.num_shards + 1,
              obs::TraceRecorder::Options{
                  /*max_events_per_worker=*/options_.max_span_events_per_worker,
                  /*flight_capacity=*/options_.flight_capacity,
                  /*max_incidents=*/options_.max_incidents}),
      cache_(serve::ShardedPlanCache::Options{options_.plan_cache_capacity,
                                              /*shards=*/8}) {
  const size_t n = options_.partition.num_shards;
  CAQP_CHECK(n > 0);
  builder_ = factory();
  CAQP_CHECK(builder_ != nullptr);
  planner_fingerprint_ = builder_->ConfigFingerprint();
  if (options_.enable_calibration) {
    calibration_ = std::make_unique<obs::CalibrationAggregator>(n);
  }

  obs::MetricsRegistry& coord = metrics_.shard(0);
  cm_.queries = &coord.GetCounter("dist.queries");
  cm_.degraded_queries = &coord.GetCounter("dist.degraded_queries");
  cm_.stragglers = &coord.GetCounter("dist.stragglers");
  cm_.probes = &coord.GetCounter("dist.probes");
  cm_.planned = &coord.GetCounter("dist.planned");
  cm_.cache_hits = &coord.GetCounter("dist.cache_hits");
  cm_.trace_mismatches = &coord.GetCounter("dist.trace_echo_mismatches");
  cm_.query_latency = &coord.GetHistogram("dist.query_latency_seconds");

  std::vector<std::vector<RowId>> partitions =
      PartitionRows(options_.partition, data_.num_rows());
  slots_.reserve(n);
  shards_.reserve(n);
  shard_failures_.reserve(n);
  shard_timeouts_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<ShardSlot>(options_.health));
    shard_failures_.push_back(
        &metrics_.shard(i + 1).GetCounter("dist.shard.failures"));
    shard_timeouts_.push_back(
        &metrics_.shard(i + 1).GetCounter("dist.shard.timeouts"));

    ExecutorShard::Options so;
    so.plan_cache_capacity = options_.shard_plan_cache_capacity;
    so.row_policy = options_.row_policy;
    so.acquisition_faults = options_.acquisition_faults;
    if (const ShardFaultSpec::Entry* fault =
            options_.shard_faults.FindEntry(i)) {
      so.kill_after = fault->kill_after;
      so.delay_seconds = fault->delay_seconds;
    }
    so.metrics = &metrics_.shard(i + 1);
    if (options_.enable_tracing) {
      so.tracer = &tracer_;
      so.trace_worker = i + 1;
    }
    if (calibration_ != nullptr) {
      so.calibration = calibration_.get();
      so.calibration_shard = i;
    }
    shards_.push_back(std::make_unique<ExecutorShard>(
        i, data_, std::move(partitions[i]), cost_model_, std::move(so)));
  }
}

Coordinator::~Coordinator() = default;  // shards_ drain first (last member)

std::shared_ptr<const CompiledPlan> Coordinator::BuildAndCompile(
    const Query& query) {
  // Planning is serialized through the single builder; cache + single-flight
  // in front of this keep it off the steady-state path entirely.
  std::lock_guard<std::mutex> lock(builder_mu_);
  CompiledPlan compiled = CompiledPlan::Compile(builder_->Build(query));
  if (calibration_ != nullptr) {
    CondProbEstimator* estimator = builder_->CalibrationEstimator();
    if (estimator != nullptr) {
      auto estimates = std::make_shared<PlanEstimates>(
          EstimatePlan(compiled, *estimator, cost_model_));
      estimates->estimator_version =
          estimator_version_.load(std::memory_order_acquire);
      compiled.AttachEstimates(std::move(estimates));
    }
  }
  return std::make_shared<const CompiledPlan>(std::move(compiled));
}

Coordinator::Response Coordinator::Execute(const Query& query) {
  const uint64_t seq =
      query_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t t0 = obs::MonotonicNowNs();
  const uint64_t trace_id = tracer_.NewTraceId();

  std::optional<obs::TraceRecorder::RequestScope> scope;
  std::optional<obs::ScopedSpan> root;
  if (options_.enable_tracing) {
    scope.emplace(&tracer_, /*worker=*/0, trace_id);
    root.emplace("dist.query");
  }

  Response r;
  r.trace_id = trace_id;
  r.query_sig = QuerySignature(query);
  r.estimator_version = estimator_version_.load(std::memory_order_acquire);
  if (options_.enable_tracing) {
    obs::SetRequestPlanContext(r.query_sig, planner_fingerprint_,
                               r.estimator_version);
  }
  const serve::PlanCacheKey key{r.query_sig, r.estimator_version,
                                planner_fingerprint_};
  const obs::TraceRecorder::RequestMeta meta{r.query_sig,
                                             planner_fingerprint_,
                                             r.estimator_version};

  {
    CAQP_OBS_SPAN(plan_span, "dist.plan");
    r.plan = cache_.Get(key);
    if (r.plan != nullptr) {
      r.cache_hit = true;
    } else {
      serve::SingleFlight::Result flight = flight_.Do(key, [&] {
        auto plan = BuildAndCompile(query);
        cache_.Put(key, plan);
        return plan;
      });
      r.plan = std::move(flight.plan);
      r.planned = flight.leader;
    }
  }
  cm_.queries->Increment();
  if (r.cache_hit) cm_.cache_hits->Increment();
  if (r.planned) cm_.planned->Increment();

  // The same bytes a basestation would radio; shared across shards, decoded
  // at most once per shard per key (per-shard plan cache).
  auto plan_bytes =
      std::make_shared<const std::vector<uint8_t>>(SerializePlan(*r.plan));

  const size_t n = shards_.size();
  r.shards_total = n;
  r.shard_status.assign(n, Status::OK());
  r.row_verdicts.assign(data_.num_rows(), Truth::kUnknown);

  std::vector<std::future<ShardReply>> futures(n);
  std::vector<char> attempted(n, 0);
  {
    // Declared directly (not via CAQP_OBS_SPAN): its context is the parent
    // every shard span joins under. Inert when obs is compiled out or the
    // request is untraced — shards then receive span_id 0 (no parent).
    obs::ScopedSpan scatter_span("dist.scatter");
    obs::SpanContext parent = scatter_span.context();
    parent.trace_id = trace_id;  // propagate even when spans are inactive
    for (size_t i = 0; i < n; ++i) {
      bool attempt = false;
      bool probe = false;
      {
        std::lock_guard<std::mutex> lock(slots_[i]->mu);
        attempt = slots_[i]->health.ShouldAttempt(seq);
        probe = attempt &&
                slots_[i]->health.state() == ShardHealth::State::kDead;
      }
      if (!attempt) {
        r.shard_status[i] = Status::ShardUnavailable(
            "shard " + std::to_string(i) + " marked dead; skipped");
        continue;
      }
      if (probe) cm_.probes->Increment();
      attempted[i] = 1;
      futures[i] = shards_[i]->Submit(ShardRequest{key, plan_bytes}, parent);
    }
  }

  ExecutionResult merged = MergeIdentity();
  {
    CAQP_OBS_SPAN(gather_span, "dist.gather");
    for (size_t i = 0; i < n; ++i) {
      if (!attempted[i]) {
        merged = MergeExecutionResults(merged, UnknownShardResult());
        ++r.shards_skipped;
        continue;
      }
      // Shared gather budget: each shard gets whatever remains of the
      // per-query deadline, measured from query start.
      bool ready = true;
      if (options_.shard_deadline_seconds > 0.0) {
        const double elapsed =
            static_cast<double>(obs::MonotonicNowNs() - t0) * 1e-9;
        const double remaining = options_.shard_deadline_seconds - elapsed;
        ready = remaining > 0.0 &&
                futures[i].wait_for(std::chrono::duration<double>(
                    remaining)) == std::future_status::ready;
      }
      const auto fail = [&](Status status, const char* reason) {
        r.shard_status[i] = std::move(status);
        shard_failures_[i]->Increment();
        {
          std::lock_guard<std::mutex> lock(slots_[i]->mu);
          slots_[i]->health.OnFailure();
        }
        if (options_.enable_tracing) {
          // Incident::worker carries the shard id (slot i + 1).
          tracer_.DumpFlight(i + 1, trace_id, reason, meta);
        }
        merged = MergeExecutionResults(merged, UnknownShardResult());
        ++r.shards_degraded;
      };
      if (!ready) {
        // Straggler: the shard may still finish (the abandoned future's
        // promise is fulfilled harmlessly), but this query degrades its
        // partition rather than waiting.
        cm_.stragglers->Increment();
        shard_timeouts_[i]->Increment();
        fail(Status::DeadlineExceeded("shard " + std::to_string(i) +
                                      " missed the gather deadline"),
             "shard_timeout");
        continue;
      }
      ShardReply reply = futures[i].get();
      if (!reply.status.ok()) {
        fail(std::move(reply.status), "shard_unavailable");
        continue;
      }
      ResultTraceContext echo;
      Result<ExecutionResult> partial =
          DeserializeExecutionResult(reply.result_bytes, &echo);
      if (!partial.ok() ||
          reply.row_verdicts.size() != shards_[i]->num_rows()) {
        // A reply we cannot validate merges exactly like a lost shard.
        fail(partial.ok()
                 ? Status::DataLoss("shard " + std::to_string(i) +
                                    " reply row count mismatch")
                 : partial.status(),
             "shard_reply_corrupt");
        continue;
      }
      if (echo.present() && echo.trace_id != trace_id) {
        // The reply executed under some other trace — a scatter/gather
        // pairing bug or a stale wire buffer. Degrade like corruption.
        cm_.trace_mismatches->Increment();
        fail(Status::DataLoss("shard " + std::to_string(i) +
                              " echoed a foreign trace id"),
             "shard_trace_mismatch");
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(slots_[i]->mu);
        slots_[i]->health.OnSuccess();
      }
      merged = MergeExecutionResults(merged, partial.value());
      const std::vector<RowId>& rows = shards_[i]->rows();
      for (size_t j = 0; j < rows.size(); ++j) {
        r.row_verdicts[rows[j]] = reply.row_verdicts[j];
      }
      ++r.shards_ok;
    }
  }

  {
    CAQP_OBS_SPAN(merge_span, "dist.merge");
    r.merged = merged;
    for (Truth t : r.row_verdicts) {
      if (t == Truth::kTrue) {
        ++r.matches;
      } else if (t == Truth::kUnknown) {
        ++r.unknown_rows;
      }
    }
  }

  if (r.degraded()) cm_.degraded_queries->Increment();
  r.latency_seconds = static_cast<double>(obs::MonotonicNowNs() - t0) * 1e-9;
  cm_.query_latency->Record(r.latency_seconds);
  r.status = Status::OK();
  return r;
}

void Coordinator::InvalidateCache() {
  estimator_version_.fetch_add(1, std::memory_order_acq_rel);
  cache_.InvalidateAll();
  for (const std::unique_ptr<ExecutorShard>& shard : shards_) {
    shard->InvalidatePlans();
  }
}

ShardHealth::State Coordinator::shard_state(size_t shard) const {
  std::lock_guard<std::mutex> lock(slots_[shard]->mu);
  return slots_[shard]->health.state();
}

obs::CalibrationReport Coordinator::CalibrationSnapshot() const {
  if (calibration_ == nullptr) return obs::CalibrationReport{};
  return calibration_->Snapshot();
}

DistReport Coordinator::Report() const {
  DistReport rep;
  const obs::RegistrySnapshot coord = metrics_.shard(0).Snapshot();
  rep.queries = CounterByName(coord, "dist.queries");
  rep.degraded_queries = CounterByName(coord, "dist.degraded_queries");
  rep.stragglers = CounterByName(coord, "dist.stragglers");
  rep.probes = CounterByName(coord, "dist.probes");
  rep.planned = CounterByName(coord, "dist.planned");
  rep.cache_hits = CounterByName(coord, "dist.cache_hits");
  rep.query_latency = HistogramByName(coord, "dist.query_latency_seconds");
  rep.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const obs::RegistrySnapshot snap = metrics_.shard(i + 1).Snapshot();
    ShardReportRow row;
    row.shard = i;
    row.state = shard_state(i);
    row.rows = shards_[i]->num_rows();
    row.requests = CounterByName(snap, "dist.shard.requests");
    row.failures = CounterByName(snap, "dist.shard.failures");
    row.timeouts = CounterByName(snap, "dist.shard.timeouts");
    row.cache_hits = CounterByName(snap, "dist.shard.cache_hits");
    row.exec_latency = HistogramByName(snap, "dist.shard.exec_seconds");
    rep.shards.push_back(std::move(row));
  }
  return rep;
}

std::string DistReportToJson(const DistReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("queries").UInt(report.queries);
  w.Key("degraded_queries").UInt(report.degraded_queries);
  w.Key("stragglers").UInt(report.stragglers);
  w.Key("probes").UInt(report.probes);
  w.Key("planned").UInt(report.planned);
  w.Key("cache_hits").UInt(report.cache_hits);
  w.Key("query_latency");
  obs::WriteHistogram(w, report.query_latency);
  w.Key("shards").BeginArray();
  for (const ShardReportRow& row : report.shards) {
    w.BeginObject();
    w.Key("shard").UInt(row.shard);
    w.Key("state").String(ShardHealthStateName(row.state));
    w.Key("rows").UInt(row.rows);
    w.Key("requests").UInt(row.requests);
    w.Key("failures").UInt(row.failures);
    w.Key("timeouts").UInt(row.timeouts);
    w.Key("cache_hits").UInt(row.cache_hits);
    w.Key("exec_latency");
    obs::WriteHistogram(w, row.exec_latency);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace caqp::dist
