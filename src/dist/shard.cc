#include "dist/shard.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "dist/merge.h"
#include "exec/batch_executor.h"
#include "exec/result_serde.h"
#include "plan/plan_serde.h"

namespace caqp::dist {

namespace {

// Acquisition straight from the shard's dataset slice; the row is swapped
// per tuple so the executor inner loop allocates nothing.
class RowSource : public AcquisitionSource {
 public:
  explicit RowSource(const Dataset& data) : data_(data) {}
  void SetRow(RowId row) { row_ = row; }
  AcquiredValue Acquire(AttrId attr) override { return data_.at(row_, attr); }

 private:
  const Dataset& data_;
  RowId row_ = 0;
};

Status ParseSizeT(const std::string& text, size_t* out) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  size_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad number '" + text + "'");
    }
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  *out = v;
  return Status::OK();
}

}  // namespace

const ShardFaultSpec::Entry* ShardFaultSpec::FindEntry(size_t shard) const {
  for (const Entry& e : entries) {
    if (e.shard == shard) return &e;
  }
  return nullptr;
}

Result<ShardFaultSpec> ShardFaultSpec::Parse(const std::string& text) {
  ShardFaultSpec spec;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    const size_t at = item.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("shard fault '" + item +
                                     "' missing '@<shard>'");
    }
    const std::string verb = item.substr(0, at);
    const size_t eq = item.find('=', at);
    const std::string shard_text =
        item.substr(at + 1, (eq == std::string::npos ? item.size() : eq) -
                                (at + 1));
    size_t shard = 0;
    CAQP_RETURN_IF_ERROR(ParseSizeT(shard_text, &shard));

    Entry* entry = nullptr;
    for (Entry& e : spec.entries) {
      if (e.shard == shard) entry = &e;
    }
    if (entry == nullptr) {
      spec.entries.push_back(Entry{shard, -1, 0.0});
      entry = &spec.entries.back();
    }

    if (verb == "kill") {
      size_t after = 0;
      if (eq != std::string::npos) {
        CAQP_RETURN_IF_ERROR(ParseSizeT(item.substr(eq + 1), &after));
      }
      entry->kill_after = static_cast<int64_t>(after);
    } else if (verb == "delay") {
      if (eq == std::string::npos) {
        return Status::InvalidArgument("delay@ needs '=<millis>'");
      }
      size_t millis = 0;
      CAQP_RETURN_IF_ERROR(ParseSizeT(item.substr(eq + 1), &millis));
      entry->delay_seconds = static_cast<double>(millis) / 1000.0;
    } else {
      return Status::InvalidArgument("unknown shard fault verb '" + verb +
                                     "' (expected kill|delay)");
    }
  }
  return spec;
}

std::string ShardFaultSpec::ToString() const {
  std::string out;
  for (const Entry& e : entries) {
    if (e.kill_after >= 0) {
      if (!out.empty()) out += ',';
      out += "kill@" + std::to_string(e.shard) + "=" +
             std::to_string(e.kill_after);
    }
    if (e.delay_seconds > 0.0) {
      if (!out.empty()) out += ',';
      out += "delay@" + std::to_string(e.shard) + "=" +
             std::to_string(
                 static_cast<int64_t>(e.delay_seconds * 1000.0 + 0.5));
    }
  }
  return out;
}

ExecutorShard::ExecutorShard(size_t shard_id, const Dataset& data,
                             std::vector<RowId> rows,
                             const AcquisitionCostModel& cost_model,
                             Options options)
    : shard_id_(shard_id),
      data_(data),
      rows_(std::move(rows)),
      cost_model_(cost_model),
      options_(std::move(options)),
      plan_cache_(serve::ShardedPlanCache::Options{
          options_.plan_cache_capacity, /*shards=*/1}) {
  if (options_.acquisition_faults.any()) {
    // Independent deterministic streams per shard from one profile.
    FaultSpec spec = options_.acquisition_faults;
    spec.seed ^= (shard_id_ + 1) * 0x9e3779b97f4a7c15ULL;
    injector_ = std::make_unique<FaultInjector>(spec);
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    m_.requests = &reg.GetCounter("dist.shard.requests");
    m_.cache_hits = &reg.GetCounter("dist.shard.cache_hits");
    m_.plan_decodes = &reg.GetCounter("dist.shard.plan_decodes");
    m_.plan_rejects = &reg.GetCounter("dist.shard.plan_rejects");
    m_.refused = &reg.GetCounter("dist.shard.refused");
    m_.exec_seconds = &reg.GetHistogram("dist.shard.exec_seconds");
  }
}

std::future<ShardReply> ExecutorShard::Submit(ShardRequest request,
                                              obs::SpanContext parent) {
  auto promise = std::make_shared<std::promise<ShardReply>>();
  std::future<ShardReply> fut = promise->get_future();
  pool_.Submit([this, request = std::move(request), parent,
                promise](size_t /*worker*/) mutable {
    promise->set_value(Handle(request, parent));
  });
  return fut;
}

ShardReply ExecutorShard::Handle(const ShardRequest& request,
                                 obs::SpanContext parent) {
  const uint64_t t0 = obs::MonotonicNowNs();
  std::optional<obs::TraceRecorder::RequestScope> scope;
  if (options_.tracer != nullptr) {
    // The coordinator span rides in as the cross-worker parent: every span
    // this shard records (worker-namespaced ids, span.h) joins the request
    // trace instead of forming an orphaned per-worker tree.
    scope.emplace(options_.tracer, options_.trace_worker, parent.trace_id,
                  parent.span_id);
    obs::SetRequestPlanContext(request.key.query_sig,
                               request.key.planner_fingerprint,
                               request.key.estimator_version);
  }
  // Declared directly (not via CAQP_OBS_SPAN) because the reply's trace echo
  // below reads its context; with obs compiled out the span is inert.
  obs::ScopedSpan handle_span("shard.handle");

  if (options_.delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.delay_seconds));
  }

  const uint64_t seq = served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.kill_after >= 0 &&
      seq >= static_cast<uint64_t>(options_.kill_after) &&
      !killed_by_schedule_.load(std::memory_order_acquire)) {
    killed_by_schedule_.store(true, std::memory_order_release);
    dead_.store(true, std::memory_order_release);
  }

  ShardReply reply;
  const auto finish = [&]() {
    reply.exec_seconds =
        static_cast<double>(obs::MonotonicNowNs() - t0) * 1e-9;
    if (m_.requests != nullptr) {
      m_.requests->Increment();
      if (reply.plan_cache_hit) m_.cache_hits->Increment();
      m_.exec_seconds->Record(reply.exec_seconds);
    }
    return reply;
  };

  if (!alive()) {
    if (m_.refused != nullptr) m_.refused->Increment();
    reply.status = Status::ShardUnavailable(
        "shard " + std::to_string(shard_id_) + " is down");
    return finish();
  }

  std::shared_ptr<const CompiledPlan> plan = plan_cache_.Get(request.key);
  reply.plan_cache_hit = plan != nullptr;
  if (plan == nullptr) {
    CAQP_OBS_SPAN(decode_span, "shard.plan_decode");
    CAQP_CHECK(request.plan_bytes != nullptr);
    Result<CompiledPlan> decoded =
        DeserializeCompiledPlan(*request.plan_bytes, data_.schema());
    if (!decoded.ok()) {
      // Corrupt plan bytes degrade like a down shard: old cached plans stay
      // installed (mote semantics, net/mote.h), nothing partial executes.
      if (m_.plan_rejects != nullptr) m_.plan_rejects->Increment();
      reply.status = decoded.status();
      return finish();
    }
    plan = std::make_shared<const CompiledPlan>(std::move(decoded).value());
    plan_cache_.Put(request.key, plan);
    if (m_.plan_decodes != nullptr) m_.plan_decodes->Increment();
  }

  ExecutionProfile* profile = nullptr;
  if (options_.calibration != nullptr) {
    profile = options_.calibration->Profile(
        options_.calibration_shard,
        obs::CalibrationKey{request.key.query_sig,
                            request.key.estimator_version,
                            request.key.planner_fingerprint},
        plan);
    if (profile->num_nodes() != plan->NumNodes()) profile = nullptr;
  }

  {
    CAQP_OBS_SPAN(exec_span, "shard.exec");
    ExecutionResult partial = MergeIdentity();
    if (injector_ == nullptr) {
      // Columnar scan path. With no fault injector acquisition is
      // infallible, so row_policy can never engage and the per-row merge
      // reduces to: verdict3 = exists-a-match, costs/acquisitions sum,
      // acquired unions — exactly what BatchExecutionStats carries (the
      // row-order cost sum even matches the per-row merge bitwise).
      // Profiling rides the obs switch like the scalar ExecutePlan path.
      ColumnarBatchExecutor exec(*plan, data_, cost_model_);
      BatchExecOptions batch_options;
      batch_options.profile = obs::Enabled() ? profile : nullptr;
      std::vector<uint8_t> verdicts;
      const BatchExecutionStats stats =
          exec.Execute(rows_, &verdicts, batch_options);
      partial.verdict3 = stats.matches > 0 ? Truth::kTrue : Truth::kFalse;
      partial.verdict = stats.matches > 0;
      partial.cost = stats.total_cost;
      partial.acquisitions = static_cast<int>(stats.total_acquisitions);
      partial.acquired = stats.acquired;
      reply.row_verdicts.resize(verdicts.size());
      for (size_t i = 0; i < verdicts.size(); ++i) {
        reply.row_verdicts[i] = verdicts[i] ? Truth::kTrue : Truth::kFalse;
      }
    } else {
      // Fault-injected path: the deterministic per-attribute fault streams
      // are consumed in per-row acquisition order, so this stays on the
      // scalar executor.
      reply.row_verdicts.reserve(rows_.size());
      RowSource rows_source(data_);
      FaultyAcquisitionSource faulty(rows_source, *injector_);
      for (RowId row : rows_) {
        rows_source.SetRow(row);
        const ExecutionResult r =
            ExecutePlan(*plan, data_.schema(), cost_model_, faulty,
                        /*trace=*/nullptr, options_.row_policy, profile);
        reply.row_verdicts.push_back(r.verdict3);
        partial = MergeExecutionResults(partial, r);
      }
    }
    // Echo the trace context with the partial result: trace id, this
    // shard's root span, and the coordinator parent it was joined under.
    ResultTraceContext echo;
    if (scope.has_value() && parent.trace_id != 0) {
      echo.trace_id = parent.trace_id;
      echo.root_span_id = handle_span.context().span_id;
      echo.parent_span_id = parent.span_id;
    }
    reply.result_bytes = SerializeExecutionResult(partial, echo);
  }
  reply.status = Status::OK();
  return finish();
}

}  // namespace caqp::dist
