#include "net/radio.h"

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

Radio::Delivery Radio::Transmit(const std::vector<uint8_t>& bytes,
                                EnergyMeter& sender, EnergyMeter& receiver) {
  Delivery out;
  CAQP_OBS_COUNTER_INC("net.radio.transmissions");
  const double cost = options_.cost_per_byte * static_cast<double>(bytes.size());
  if (!sender.Consume(cost)) {
    ++messages_dropped_;
    CAQP_OBS_COUNTER_INC("net.radio.dropped_energy");
    return out;
  }
  if (!receiver.Consume(cost)) {
    ++messages_dropped_;
    CAQP_OBS_COUNTER_INC("net.radio.dropped_energy");
    return out;
  }
  bytes_sent_ += bytes.size();
  CAQP_OBS_COUNTER_ADD("net.radio.bytes_sent", bytes.size());
  CAQP_OBS_STAT_RECORD("net.radio.message_energy", 2.0 * cost);
  if (rng_.Bernoulli(options_.drop_probability)) {
    ++messages_dropped_;
    CAQP_OBS_COUNTER_INC("net.radio.dropped_loss");
    return out;
  }
  out.payload = bytes;
  if (options_.corruption_probability > 0) {
    for (uint8_t& b : out.payload) {
      if (rng_.Bernoulli(options_.corruption_probability)) {
        b ^= static_cast<uint8_t>(1u << rng_.UniformInt(0, 7));
      }
    }
  }
  out.delivered = true;
  return out;
}

}  // namespace caqp
