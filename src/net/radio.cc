#include "net/radio.h"

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

Radio::Delivery Radio::Transmit(const std::vector<uint8_t>& bytes,
                                EnergyMeter& sender, EnergyMeter& receiver) {
  Delivery out;
  CAQP_OBS_COUNTER_INC("net.radio.transmissions");
  const double cost = options_.cost_per_byte * static_cast<double>(bytes.size());
  // Sender pays iff a transmission is attempted; an unaffordable send never
  // keys the radio.
  if (!sender.Consume(cost)) {
    ++messages_dropped_;
    CAQP_OBS_COUNTER_INC("net.radio.dropped_energy");
    return out;
  }
  bytes_sent_ += bytes.size();
  CAQP_OBS_COUNTER_ADD("net.radio.bytes_sent", bytes.size());
  // Gilbert-Elliott state transition, then the loss roll at the current
  // state's rate. With good_to_bad = 0 both Bernoulli calls below early-out
  // without consuming the engine, so pre-burst seeded streams are unchanged.
  if (in_bad_state_) {
    if (rng_.Bernoulli(options_.bad_to_good)) in_bad_state_ = false;
  } else {
    if (rng_.Bernoulli(options_.good_to_bad)) in_bad_state_ = true;
  }
  const double loss = in_bad_state_ ? options_.burst_drop_probability
                                    : options_.drop_probability;
  if (rng_.Bernoulli(loss)) {
    ++messages_dropped_;
    CAQP_OBS_COUNTER_INC("net.radio.dropped_loss");
    if (in_bad_state_) {
      ++burst_drops_;
      CAQP_OBS_COUNTER_INC("net.radio.dropped_burst");
    }
    CAQP_OBS_STAT_RECORD("net.radio.message_energy", cost);
    return out;
  }
  // Receiver pays iff the message reaches it; a browned-out receiver cannot
  // power its radio, so delivery fails without charging it.
  if (!receiver.Consume(cost)) {
    ++messages_dropped_;
    CAQP_OBS_COUNTER_INC("net.radio.dropped_energy");
    CAQP_OBS_STAT_RECORD("net.radio.message_energy", cost);
    return out;
  }
  CAQP_OBS_STAT_RECORD("net.radio.message_energy", 2.0 * cost);
  out.payload = bytes;
  if (options_.corruption_probability > 0) {
    for (uint8_t& b : out.payload) {
      if (rng_.Bernoulli(options_.corruption_probability)) {
        b ^= static_cast<uint8_t>(1u << rng_.UniformInt(0, 7));
      }
    }
  }
  out.delivered = true;
  return out;
}

}  // namespace caqp
