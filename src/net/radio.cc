#include "net/radio.h"

namespace caqp {

Radio::Delivery Radio::Transmit(const std::vector<uint8_t>& bytes,
                                EnergyMeter& sender, EnergyMeter& receiver) {
  Delivery out;
  const double cost = options_.cost_per_byte * static_cast<double>(bytes.size());
  if (!sender.Consume(cost)) {
    ++messages_dropped_;
    return out;
  }
  if (!receiver.Consume(cost)) {
    ++messages_dropped_;
    return out;
  }
  bytes_sent_ += bytes.size();
  if (rng_.Bernoulli(options_.drop_probability)) {
    ++messages_dropped_;
    return out;
  }
  out.payload = bytes;
  if (options_.corruption_probability > 0) {
    for (uint8_t& b : out.payload) {
      if (rng_.Bernoulli(options_.corruption_probability)) {
        b ^= static_cast<uint8_t>(1u << rng_.UniformInt(0, 7));
      }
    }
  }
  out.delivered = true;
  return out;
}

}  // namespace caqp
