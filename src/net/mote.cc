#include "net/mote.h"

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

namespace {

/// AcquisitionSource that reads from the mote's sampler for a fixed epoch.
class EpochSource : public AcquisitionSource {
 public:
  EpochSource(const Mote::Sampler& sampler, size_t epoch)
      : sampler_(sampler), epoch_(epoch) {}
  AcquiredValue Acquire(AttrId attr) override { return sampler_(epoch_, attr); }

 private:
  const Mote::Sampler& sampler_;
  size_t epoch_;
};

}  // namespace

Status Mote::ReceivePlanBytes(const std::vector<uint8_t>& bytes) {
  Result<CompiledPlan> plan = DeserializeCompiledPlan(bytes, schema_);
  if (!plan.ok()) return plan.status();
  plan_ = std::move(plan).value();
  return Status::OK();
}

std::optional<ExecutionResult> Mote::RunEpoch(size_t epoch) {
  if (!plan_.has_value()) return std::nullopt;
  EpochSource base(sampler_, epoch);
  ExecutionResult res;
  if (fault_ != nullptr) {
    FaultyAcquisitionSource source(base, *fault_);
    res = ExecutePlan(*plan_, schema_, cost_model_, source, nullptr, policy_);
  } else {
    res = ExecutePlan(*plan_, schema_, cost_model_, base, nullptr, policy_);
  }
  if (!energy_.Consume(res.cost)) {
    ++brownouts_;
    CAQP_OBS_COUNTER_INC("net.mote.brownouts");
    return std::nullopt;
  }
  CAQP_OBS_COUNTER_INC("net.mote.epochs");
  CAQP_OBS_STAT_RECORD("net.mote.epoch_cost", res.cost);
  return res;
}

}  // namespace caqp
