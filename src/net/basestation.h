// Basestation: the well-provisioned node of Figure 4. Collects historical
// tuples, trains conditional plans with the greedy planner, serializes and
// disseminates them over the radio, and aggregates per-epoch results and
// energy statistics for a continuous query.

#ifndef CAQP_NET_BASESTATION_H_
#define CAQP_NET_BASESTATION_H_

#include <memory>
#include <vector>

#include "core/dataset.h"
#include "net/mote.h"
#include "net/radio.h"
#include "opt/greedy_plan.h"

namespace caqp {

class Basestation {
 public:
  Basestation(const Schema& schema, const AcquisitionCostModel& cost_model,
              Radio& radio, double energy_budget = -1.0)
      : schema_(schema),
        cost_model_(cost_model),
        radio_(radio),
        history_(schema),
        energy_(energy_budget) {}

  /// Adds a historical tuple to the training store.
  void CollectHistory(const Tuple& t) { history_.Append(t); }
  void CollectHistory(const Dataset& data);
  const Dataset& history() const { return history_; }

  /// Trains a conditional plan for `query` from the collected history.
  Plan TrainPlan(const Query& query, const SplitPointSet& splits,
                 const SequentialSolver& solver, size_t max_splits,
                 double size_penalty_alpha = 0.0);

  /// Serializes `plan` and transmits it to every mote; returns how many
  /// motes installed it successfully (radio loss/corruption and energy
  /// exhaustion can all prevent installation). The compiled form serializes
  /// without any tree walk or clone; the tree form compiles once first.
  size_t Disseminate(const CompiledPlan& plan, std::vector<Mote*>& motes);
  size_t Disseminate(const Plan& plan, std::vector<Mote*>& motes);

  struct DisseminateOptions {
    /// Total plan transmissions attempted per mote, including the first.
    int max_attempts = 1;
    /// When true, an install only counts once the mote's ack message makes
    /// it back to the basestation; an unacknowledged install is retried
    /// (plan installation is idempotent, so duplicate deliveries are safe).
    bool require_ack = false;
    /// Size of the ack message the mote sends after installing.
    size_t ack_bytes = 4;
    /// Energy charged to the basestation per re-attempt, scaled by the
    /// attempt number (models idle listening during the backoff window).
    double backoff_cost = 0.0;
  };

  /// Reliable dissemination: like the overload above, but retransmits per
  /// `opts` when delivery (or, with require_ack, the ack) fails. Returns the
  /// number of motes whose install was confirmed. Retransmissions are
  /// counted on the `net.retransmissions` counter.
  size_t Disseminate(const CompiledPlan& plan, std::vector<Mote*>& motes,
                     const DisseminateOptions& opts);
  size_t Disseminate(const Plan& plan, std::vector<Mote*>& motes,
                     const DisseminateOptions& opts);

  struct EpochReport {
    size_t epoch = 0;
    size_t motes_reporting = 0;  ///< motes that executed the plan this epoch
    size_t matches = 0;          ///< defined-true verdicts delivered back
    size_t unknown_verdicts = 0; ///< executions degraded to Unknown/aborted
    size_t browned_out = 0;      ///< motes that ran out of energy this epoch
    size_t unreachable = 0;      ///< matching motes whose result msg was lost
    double acquisition_cost = 0; ///< summed over motes
  };

  /// Runs `epochs` rounds: each mote executes its plan; matching motes send
  /// a (fixed-size) result message back, charged to the radio.
  std::vector<EpochReport> RunContinuousQuery(std::vector<Mote*>& motes,
                                              size_t epochs,
                                              size_t result_message_bytes = 8);

  struct LimitResult {
    size_t matches = 0;        ///< results delivered (<= limit)
    size_t epochs_run = 0;     ///< epochs consumed before stopping
    double acquisition_cost = 0.0;
  };

  /// Section 7 "LIMIT" extension: runs epochs until `limit` matching
  /// results have been delivered (or `max_epochs` elapse). Within an epoch,
  /// motes are polled in order and polling stops as soon as the limit is
  /// reached -- conditional plans shrink the per-poll cost, so LIMIT
  /// queries finish with far fewer acquisitions.
  LimitResult RunLimitQuery(std::vector<Mote*>& motes, size_t limit,
                            size_t max_epochs,
                            size_t result_message_bytes = 8);

  EnergyMeter& energy() { return energy_; }

 private:
  const Schema& schema_;
  const AcquisitionCostModel& cost_model_;
  Radio& radio_;
  Dataset history_;
  EnergyMeter energy_;
};

}  // namespace caqp

#endif  // CAQP_NET_BASESTATION_H_
