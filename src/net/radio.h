// Simulated radio link between the basestation and motes: charges both
// endpoints per byte and can drop or corrupt messages to exercise the plan
// deserializer's error handling.

#ifndef CAQP_NET_RADIO_H_
#define CAQP_NET_RADIO_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/energy.h"

namespace caqp {

class Radio {
 public:
  struct Options {
    /// Energy units per byte, charged to sender and receiver alike.
    double cost_per_byte = 0.05;
    /// Probability an entire message is lost.
    double drop_probability = 0.0;
    /// Per-byte bit-flip probability (corruption).
    double corruption_probability = 0.0;
    uint64_t seed = 42;
  };

  explicit Radio(Options options) : options_(options), rng_(options.seed) {}

  struct Delivery {
    bool delivered = false;
    std::vector<uint8_t> payload;  // possibly corrupted
  };

  /// Transmits `bytes` from `sender` to `receiver`, charging both meters.
  /// If either meter cannot afford the transmission the message is lost
  /// (sender still pays what it could not complete? no: nothing is sent).
  Delivery Transmit(const std::vector<uint8_t>& bytes, EnergyMeter& sender,
                    EnergyMeter& receiver);

  size_t bytes_sent() const { return bytes_sent_; }
  size_t messages_dropped() const { return messages_dropped_; }

 private:
  Options options_;
  Rng rng_;
  size_t bytes_sent_ = 0;
  size_t messages_dropped_ = 0;
};

}  // namespace caqp

#endif  // CAQP_NET_RADIO_H_
