// Simulated radio link between the basestation and motes: charges both
// endpoints per byte and can drop or corrupt messages to exercise the plan
// deserializer's error handling.

#ifndef CAQP_NET_RADIO_H_
#define CAQP_NET_RADIO_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/energy.h"

namespace caqp {

class Radio {
 public:
  struct Options {
    /// Energy units per byte, charged per the contract on Transmit().
    double cost_per_byte = 0.05;
    /// Probability an entire message is lost (good channel state).
    double drop_probability = 0.0;
    /// Per-byte bit-flip probability (corruption).
    double corruption_probability = 0.0;
    /// Gilbert-Elliott burst loss: the channel is a two-state Markov chain.
    /// In the good state messages drop with drop_probability; in the bad
    /// state with burst_drop_probability. Before each message the state
    /// transitions with the probabilities below. Burst modeling is off by
    /// default (good_to_bad = 0 keeps the chain in the good state and, by
    /// the Rng::Bernoulli(0) early-out, consumes no RNG draws, so existing
    /// seeded streams are unchanged).
    double burst_drop_probability = 0.0;
    double good_to_bad = 0.0;
    double bad_to_good = 1.0;
    uint64_t seed = 42;
  };

  explicit Radio(Options options) : options_(options), rng_(options.seed) {}

  struct Delivery {
    bool delivered = false;
    std::vector<uint8_t> payload;  // possibly corrupted
  };

  /// Transmits `bytes` from `sender` to `receiver`.
  ///
  /// Charging contract: the sender pays iff a transmission is attempted — a
  /// sender that cannot afford the message never keys the radio and nothing
  /// is charged anywhere. The receiver pays iff the message is actually
  /// delivered to it: messages lost in the channel cost the receiver
  /// nothing, and a receiver that cannot afford reception fails the
  /// delivery without being charged (EnergyMeter::Consume is
  /// all-or-nothing). A half-affordable transmission therefore charges only
  /// the sender.
  Delivery Transmit(const std::vector<uint8_t>& bytes, EnergyMeter& sender,
                    EnergyMeter& receiver);

  size_t bytes_sent() const { return bytes_sent_; }
  size_t messages_dropped() const { return messages_dropped_; }
  /// Messages lost while the Gilbert-Elliott chain was in the bad state.
  size_t burst_drops() const { return burst_drops_; }
  /// True when the burst chain is currently in the bad (lossy) state.
  bool in_burst() const { return in_bad_state_; }

 private:
  Options options_;
  Rng rng_;
  bool in_bad_state_ = false;
  size_t bytes_sent_ = 0;
  size_t messages_dropped_ = 0;
  size_t burst_drops_ = 0;
};

}  // namespace caqp

#endif  // CAQP_NET_RADIO_H_
