#include "net/basestation.h"

#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "prob/dataset_estimator.h"

namespace caqp {

void Basestation::CollectHistory(const Dataset& data) {
  CAQP_CHECK(data.schema() == schema_);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    history_.Append(data.GetTuple(r));
  }
}

Plan Basestation::TrainPlan(const Query& query, const SplitPointSet& splits,
                            const SequentialSolver& solver, size_t max_splits,
                            double size_penalty_alpha) {
  CAQP_CHECK_GT(history_.num_rows(), 0u);
  DatasetEstimator estimator(history_);
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &solver;
  opts.max_splits = max_splits;
  opts.size_penalty_alpha = size_penalty_alpha;
  GreedyPlanner planner(estimator, cost_model_, opts);
  return planner.BuildPlan(query);
}

size_t Basestation::Disseminate(const CompiledPlan& plan,
                                std::vector<Mote*>& motes) {
  return Disseminate(plan, motes, DisseminateOptions{});
}

size_t Basestation::Disseminate(const Plan& plan, std::vector<Mote*>& motes) {
  return Disseminate(CompiledPlan::Compile(plan), motes,
                     DisseminateOptions{});
}

size_t Basestation::Disseminate(const Plan& plan, std::vector<Mote*>& motes,
                                const DisseminateOptions& opts) {
  return Disseminate(CompiledPlan::Compile(plan), motes, opts);
}

size_t Basestation::Disseminate(const CompiledPlan& plan,
                                std::vector<Mote*>& motes,
                                const DisseminateOptions& opts) {
  // Request-tracing span (obs/span.h): no-op unless the calling thread is
  // bound to a serve request scope.
  CAQP_OBS_SPAN(disseminate_span, "net.disseminate");
  const std::vector<uint8_t> bytes = SerializePlan(plan);
  const std::vector<uint8_t> ack_msg(opts.ack_bytes, 0xA5);
  CAQP_OBS_COUNTER_INC("net.base.disseminations");
  CAQP_OBS_GAUGE_SET("net.base.plan_bytes", static_cast<double>(bytes.size()));
  const int max_attempts = opts.max_attempts < 1 ? 1 : opts.max_attempts;
  size_t installed = 0;
  for (Mote* mote : motes) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        CAQP_OBS_COUNTER_INC("net.retransmissions");
        // Linear backoff: each further attempt waits (and idle-listens)
        // proportionally longer. An unaffordable backoff ends the retry
        // loop -- the basestation cannot keep the radio up.
        if (opts.backoff_cost > 0.0 &&
            !energy_.Consume(opts.backoff_cost * attempt)) {
          break;
        }
      }
      const Radio::Delivery d = radio_.Transmit(bytes, energy_, mote->energy());
      if (!d.delivered) continue;
      if (!mote->ReceivePlanBytes(d.payload).ok()) {
        CAQP_OBS_COUNTER_INC("net.base.corrupt_plans_rejected");
        continue;
      }
      if (!opts.require_ack) {
        ++installed;
        break;
      }
      const Radio::Delivery ack =
          radio_.Transmit(ack_msg, mote->energy(), energy_);
      if (ack.delivered) {
        ++installed;
        break;
      }
      // Install happened but the ack was lost: retransmit so the
      // basestation can confirm (installation is idempotent).
    }
  }
  CAQP_OBS_COUNTER_ADD("net.base.plans_installed", installed);
  return installed;
}

std::vector<Basestation::EpochReport> Basestation::RunContinuousQuery(
    std::vector<Mote*>& motes, size_t epochs, size_t result_message_bytes) {
  std::vector<EpochReport> reports;
  reports.reserve(epochs);
  const std::vector<uint8_t> result_msg(result_message_bytes, 0);
  for (size_t e = 0; e < epochs; ++e) {
    EpochReport rep;
    rep.epoch = e;
    for (Mote* mote : motes) {
      const size_t brownouts_before = mote->brownouts();
      const std::optional<ExecutionResult> res = mote->RunEpoch(e);
      if (!res.has_value()) {
        if (mote->brownouts() > brownouts_before) ++rep.browned_out;
        continue;
      }
      ++rep.motes_reporting;
      rep.acquisition_cost += res->cost;
      if (!res->defined()) ++rep.unknown_verdicts;
      if (res->verdict) {
        // Matching tuples are shipped back to the basestation.
        const Radio::Delivery d =
            radio_.Transmit(result_msg, mote->energy(), energy_);
        if (d.delivered) {
          ++rep.matches;
        } else {
          ++rep.unreachable;
        }
      }
    }
    reports.push_back(rep);
  }
  return reports;
}

Basestation::LimitResult Basestation::RunLimitQuery(
    std::vector<Mote*>& motes, size_t limit, size_t max_epochs,
    size_t result_message_bytes) {
  LimitResult res;
  const std::vector<uint8_t> result_msg(result_message_bytes, 0);
  for (size_t e = 0; e < max_epochs && res.matches < limit; ++e) {
    ++res.epochs_run;
    for (Mote* mote : motes) {
      if (res.matches >= limit) break;
      const std::optional<ExecutionResult> r = mote->RunEpoch(e);
      if (!r.has_value()) continue;
      res.acquisition_cost += r->cost;
      if (r->verdict) {
        const Radio::Delivery d =
            radio_.Transmit(result_msg, mote->energy(), energy_);
        if (d.delivered) ++res.matches;
      }
    }
  }
  return res;
}

}  // namespace caqp
