// Energy accounting for the simulated sensor network. Costs are in the same
// abstract units the planners optimize (the paper's per-attribute C_i), so a
// mote's meter directly reflects plan quality; radio transmissions charge
// per byte, implementing the alpha * zeta(P) dissemination term of
// Section 2.4.

#ifndef CAQP_NET_ENERGY_H_
#define CAQP_NET_ENERGY_H_

#include <cstddef>

#include "common/check.h"

namespace caqp {

class EnergyMeter {
 public:
  /// budget < 0 means unlimited.
  explicit EnergyMeter(double budget = -1.0) : budget_(budget) {}

  /// Consumes `units`; returns false (and consumes nothing) if the budget
  /// would be exceeded — the mote is dead.
  bool Consume(double units) {
    CAQP_DCHECK(units >= 0);
    if (budget_ >= 0 && spent_ + units > budget_) return false;
    spent_ += units;
    return true;
  }

  double spent() const { return spent_; }
  double budget() const { return budget_; }
  bool exhausted() const { return budget_ >= 0 && spent_ >= budget_; }
  double remaining() const { return budget_ < 0 ? -1.0 : budget_ - spent_; }

 private:
  double budget_;
  double spent_ = 0.0;
};

}  // namespace caqp

#endif  // CAQP_NET_ENERGY_H_
