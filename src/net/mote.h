// Simulated sensor mote: holds a received (deserialized) plan and executes
// it once per epoch against its local sensor readings, paying acquisition
// energy per the cost model. Matches the paper's architecture (Figure 4):
// motes only ever run the cheap flat-plan executor over the CompiledPlan IR
// (the form the radio bytes decode straight into); planning happens at the
// basestation.

#ifndef CAQP_NET_MOTE_H_
#define CAQP_NET_MOTE_H_

#include <functional>
#include <optional>

#include "exec/executor.h"
#include "fault/fault.h"
#include "net/energy.h"
#include "plan/compiled_plan.h"
#include "plan/plan.h"
#include "plan/plan_serde.h"

namespace caqp {

class Mote {
 public:
  /// Produces the mote's ground-truth reading of `attr` at `epoch`. The
  /// sampler is only consulted for attributes the plan actually acquires.
  using Sampler = std::function<Value(size_t epoch, AttrId attr)>;

  Mote(int id, const Schema& schema, const AcquisitionCostModel& cost_model,
       Sampler sampler, double energy_budget = -1.0)
      : id_(id),
        schema_(schema),
        cost_model_(cost_model),
        sampler_(std::move(sampler)),
        energy_(energy_budget) {}

  /// Installs a plan from radio bytes. Returns the deserialization status;
  /// a corrupt plan is rejected and the previous plan (if any) stays active.
  Status ReceivePlanBytes(const std::vector<uint8_t>& bytes);

  /// Installs a plan directly (tests / local simulation).
  void InstallPlan(CompiledPlan plan) { plan_ = std::move(plan); }
  void InstallPlan(const Plan& plan) {
    plan_ = CompiledPlan::Compile(plan);
  }

  bool has_plan() const { return plan_.has_value(); }

  /// The currently installed plan, or nullptr. Lets tests assert that a
  /// plan surviving a lossy link is still well-formed.
  const CompiledPlan* installed_plan() const {
    return plan_.has_value() ? &*plan_ : nullptr;
  }

  /// Runs one epoch: executes the installed plan over this epoch's readings,
  /// charging acquisition energy. Returns nullopt if no plan is installed or
  /// the energy budget is exhausted mid-epoch (the mote browns out).
  std::optional<ExecutionResult> RunEpoch(size_t epoch);

  /// Routes every acquisition through `injector` (non-owning; nullptr
  /// disables injection). The sampler stays the ground truth: it is only
  /// consulted for attempts the injector lets through.
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

  /// Policy the executor uses when an acquisition fails on this mote.
  void SetDegradationPolicy(const DegradationPolicy& policy) {
    policy_ = policy;
  }
  const DegradationPolicy& degradation_policy() const { return policy_; }

  /// Epochs aborted because the energy budget ran out mid-epoch.
  size_t brownouts() const { return brownouts_; }

  int id() const { return id_; }
  EnergyMeter& energy() { return energy_; }
  const EnergyMeter& energy() const { return energy_; }

 private:
  int id_;
  const Schema& schema_;
  const AcquisitionCostModel& cost_model_;
  Sampler sampler_;
  EnergyMeter energy_;
  std::optional<CompiledPlan> plan_;
  FaultInjector* fault_ = nullptr;
  DegradationPolicy policy_;
  size_t brownouts_ = 0;
};

}  // namespace caqp

#endif  // CAQP_NET_MOTE_H_
