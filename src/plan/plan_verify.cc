#include "plan/plan_verify.h"

#include "common/rng.h"
#include "prob/subproblem.h"

namespace caqp {

namespace {

uint64_t DomainProduct(const Schema& schema, uint64_t cap) {
  uint64_t product = 1;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    product *= schema.domain_size(static_cast<AttrId>(a));
    if (product > cap) return cap + 1;
  }
  return product;
}

}  // namespace

PlanVerificationResult VerifyPlanExhaustive(const CompiledPlan& plan,
                                            const Query& query,
                                            const Schema& schema,
                                            uint64_t max_tuples) {
  CAQP_CHECK(query.ValidFor(schema));
  CAQP_CHECK_LE(DomainProduct(schema, max_tuples), max_tuples);
  PlanVerificationResult res;
  Tuple t(schema.num_attributes(), 0);
  while (true) {
    ++res.tuples_checked;
    if (plan.VerdictFor(t) != query.Matches(t)) {
      res.correct = false;
      res.counterexample = t;
      return res;
    }
    // Odometer increment over the domain product.
    size_t a = 0;
    for (; a < t.size(); ++a) {
      if (++t[a] < schema.domain_size(static_cast<AttrId>(a))) break;
      t[a] = 0;
    }
    if (a == t.size()) break;
  }
  return res;
}

PlanVerificationResult VerifyPlanExhaustive(const Plan& plan,
                                            const Query& query,
                                            const Schema& schema,
                                            uint64_t max_tuples) {
  return VerifyPlanExhaustive(CompiledPlan::Compile(plan), query, schema,
                              max_tuples);
}

PlanVerificationResult VerifyPlanSampled(const CompiledPlan& plan,
                                         const Query& query,
                                         const Schema& schema,
                                         uint64_t samples, uint64_t seed) {
  CAQP_CHECK(query.ValidFor(schema));
  PlanVerificationResult res;
  Rng rng(seed);
  Tuple t(schema.num_attributes());
  for (uint64_t i = 0; i < samples; ++i) {
    for (size_t a = 0; a < t.size(); ++a) {
      t[a] = static_cast<Value>(
          rng.UniformInt(0, schema.domain_size(static_cast<AttrId>(a)) - 1));
    }
    ++res.tuples_checked;
    if (plan.VerdictFor(t) != query.Matches(t)) {
      res.correct = false;
      res.counterexample = t;
      return res;
    }
  }
  return res;
}

PlanVerificationResult VerifyPlanSampled(const Plan& plan, const Query& query,
                                         const Schema& schema,
                                         uint64_t samples, uint64_t seed) {
  return VerifyPlanSampled(CompiledPlan::Compile(plan), query, schema, samples,
                           seed);
}

namespace {

bool NodeWellFormed(const PlanNode& n, const Schema& schema) {
  switch (n.kind) {
    case PlanNode::Kind::kSplit:
      if (n.attr >= schema.num_attributes()) return false;
      if (n.split_value < 1 || n.split_value >= schema.domain_size(n.attr)) {
        return false;
      }
      if (!n.lt || !n.ge) return false;
      return NodeWellFormed(*n.lt, schema) && NodeWellFormed(*n.ge, schema);
    case PlanNode::Kind::kVerdict:
      return true;
    case PlanNode::Kind::kSequential:
      for (const Predicate& p : n.sequence) {
        if (p.attr >= schema.num_attributes()) return false;
        if (p.lo > p.hi || p.hi >= schema.domain_size(p.attr)) return false;
      }
      return true;
    case PlanNode::Kind::kGeneric: {
      if (!n.residual_query.ValidFor(schema)) return false;
      AttrSet in_order;
      for (AttrId a : n.acquire_order) {
        if (a >= schema.num_attributes()) return false;
        in_order.Insert(a);
      }
      // Every referenced attribute must be acquirable, or the executor
      // could stall with an unresolved query.
      for (AttrId a : n.residual_query.ReferencedAttributes()) {
        if (!in_order.Contains(a)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool PlanIsWellFormed(const Plan& plan, const Schema& schema) {
  return NodeWellFormed(plan.root(), schema);
}

bool PlanIsWellFormed(const CompiledPlan& plan, const Schema& schema) {
  // Same field-level checks as the tree walk, over the flat node array (the
  // preorder topology itself is validated by construction / deserialization).
  for (uint32_t i = 0; i < plan.NumNodes(); ++i) {
    const CompiledPlan::Node& n = plan.node(i);
    switch (n.kind) {
      case CompiledPlan::Kind::kSplit:
        if (n.attr >= schema.num_attributes()) return false;
        if (n.split_value < 1 ||
            n.split_value >= schema.domain_size(n.attr)) {
          return false;
        }
        break;
      case CompiledPlan::Kind::kVerdict:
        break;
      case CompiledPlan::Kind::kSequential:
        for (const Predicate& p : plan.sequence(n)) {
          if (p.attr >= schema.num_attributes()) return false;
          if (p.lo > p.hi || p.hi >= schema.domain_size(p.attr)) return false;
        }
        break;
      case CompiledPlan::Kind::kGeneric: {
        const Query& query = plan.residual_query(n);
        if (!query.ValidFor(schema)) return false;
        AttrSet in_order;
        for (AttrId a : plan.acquire_order(n)) {
          if (a >= schema.num_attributes()) return false;
          in_order.Insert(a);
        }
        for (AttrId a : query.ReferencedAttributes()) {
          if (!in_order.Contains(a)) return false;
        }
        break;
      }
    }
  }
  return true;
}

}  // namespace caqp
