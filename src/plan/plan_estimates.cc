#include "plan/plan_estimates.h"

#include <utility>

#include "plan/plan_cost.h"
#include "prob/subproblem.h"

namespace caqp {

namespace {

/// Same recursion shape as plan_cost.cc's ExpectedCoster, but recording the
/// per-node reach/pass/cost beliefs instead of folding them into one scalar.
/// Kept structurally parallel on purpose: calibration_test asserts the
/// expected_cost this walk accumulates matches ExpectedPlanCost.
class PlanEstimator {
 public:
  PlanEstimator(const CompiledPlan& plan, CondProbEstimator& est,
                const AcquisitionCostModel& cm)
      : plan_(plan), est_(est), cm_(cm), schema_(est.schema()) {
    out_.nodes.resize(plan.NumNodes());
  }

  PlanEstimates Run() {
    Visit(0, schema_.FullRanges(), 1.0);
    for (const NodeEstimate& n : out_.nodes) {
      out_.expected_cost += n.reach * n.cost;
    }
    return std::move(out_);
  }

 private:
  void Visit(uint32_t index, const RangeVec& ranges, double reach) {
    NodeEstimate& e = out_.nodes[index];
    e.reach = reach;
    const CompiledPlan::Node& node = plan_.node(index);
    switch (node.kind) {
      case CompiledPlan::Kind::kVerdict:
        e.pass = node.verdict() ? 1.0 : 0.0;
        e.cost = 0.0;
        return;
      case CompiledPlan::Kind::kSequential:
        SequentialLeaf(e, plan_.sequence(node), ranges, reach);
        return;
      case CompiledPlan::Kind::kGeneric:
        // The residual walk's evaluation order is data-dependent, so there
        // is no meaningful single pass probability and no per-attribute
        // contribution; the cost expectation reuses the plan_cost walk.
        e.pass = -1.0;
        e.cost = ExpectedSubplanCost(plan_, index, ranges, est_, cm_);
        return;
      case CompiledPlan::Kind::kSplit:
        break;
    }

    const AttrSet acquired = AcquiredAttrs(schema_, ranges);
    e.cost =
        acquired.Contains(node.attr) ? 0.0 : cm_.Cost(node.attr, acquired);
    const ValueRange r = ranges[node.attr];
    // Degenerate splits route all mass one way; the dead side stays at the
    // unreachable default (reach 0, pass -1).
    if (node.split_value <= r.lo) {
      e.pass = 1.0;
      RecordSplitEval(node.attr, reach, /*p_ge=*/1.0);
      Visit(node.a, ranges, reach);
      return;
    }
    if (node.split_value > r.hi) {
      e.pass = 0.0;
      RecordSplitEval(node.attr, reach, /*p_ge=*/0.0);
      Visit(CompiledPlan::LtChild(index), ranges, reach);
      return;
    }

    const ValueRange lt_r{r.lo, static_cast<Value>(node.split_value - 1)};
    const ValueRange ge_r{node.split_value, r.hi};
    const double p_lt = est_.RangeProbability(ranges, node.attr, lt_r);
    e.pass = 1.0 - p_lt;
    RecordSplitEval(node.attr, reach, e.pass);
    if (p_lt > 0) {
      Visit(CompiledPlan::LtChild(index), Refined(ranges, node.attr, lt_r),
            reach * p_lt);
    }
    if (p_lt < 1.0) {
      Visit(node.a, Refined(ranges, node.attr, ge_r), reach * (1.0 - p_lt));
    }
  }

  void SequentialLeaf(NodeEstimate& e, std::span<const Predicate> seq,
                      const RangeVec& ranges, double reach) {
    if (seq.empty()) {
      e.pass = 1.0;
      e.cost = 0.0;
      return;
    }
    const std::vector<Predicate> preds(seq.begin(), seq.end());
    const MaskDistribution masks = est_.PredicateMasks(ranges, preds);
    if (masks.total() <= 0) {
      // No mass reaches here under the estimator; nothing to predict.
      e.pass = -1.0;
      e.cost = 0.0;
      return;
    }
    const uint64_t all = (seq.size() >= 64)
                             ? ~uint64_t{0}
                             : ((uint64_t{1} << seq.size()) - 1);
    e.pass = masks.MassAllTrue(all) / masks.total();
    AttrSet acquired = AcquiredAttrs(schema_, ranges);
    double cost = 0.0;
    uint64_t prefix = 0;  // predicates already observed true
    for (size_t i = 0; i < seq.size(); ++i) {
      const double p_reach = masks.MassAllTrue(prefix) / masks.total();
      if (p_reach <= 0) break;
      const AttrId a = seq[i].attr;
      if (!acquired.Contains(a)) {
        cost += p_reach * cm_.Cost(a, acquired);
        acquired.Insert(a);
      }
      prefix |= uint64_t{1} << i;
      const double p_pass = masks.MassAllTrue(prefix) / masks.total();
      out_.attr_eval_rate[a] += reach * p_reach;
      out_.attr_pass_rate[a] += reach * p_pass;
    }
    e.cost = cost;
  }

  void RecordSplitEval(AttrId attr, double reach, double p_ge) {
    out_.attr_eval_rate[attr] += reach;
    out_.attr_pass_rate[attr] += reach * p_ge;
  }

  const CompiledPlan& plan_;
  CondProbEstimator& est_;
  const AcquisitionCostModel& cm_;
  const Schema& schema_;
  PlanEstimates out_;
};

}  // namespace

PlanEstimates EstimatePlan(const CompiledPlan& plan,
                           CondProbEstimator& estimator,
                           const AcquisitionCostModel& cost_model) {
  PlanEstimator walker(plan, estimator, cost_model);
  return walker.Run();
}

}  // namespace caqp
