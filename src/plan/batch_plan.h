// BatchPlanView: the level-decomposed, batch-oriented view of a CompiledPlan.
//
// CompiledPlan's preorder node array is ideal for the tuple-at-a-time walk
// (follow one root→leaf path per tuple), but batch execution wants the
// transpose: process every row sitting at a node in one tight loop, then
// hand the partitioned rows to the node's children. BatchPlanView reorders
// the plan into BFS (level-major) slot order and precomputes, per node,
// everything the columnar executor needs to run without touching the plan
// tree or the cost model inside its row loops:
//
//  * slot order — nodes_[s] for s = 0..n-1 with every parent at a lower slot
//    than its children and each level contiguous (level() exposes the
//    [begin, end) slot span per depth). A single forward pass over slots
//    therefore visits parents before children: selection vectors can be
//    produced and consumed in one sweep.
//  * static acquisition metadata — the set of attributes already acquired
//    when a tuple *enters* a node is a property of the node, not the tuple:
//    the root path to a node is unique, and the split walk acquires exactly
//    at first-acquisition splits. entry_acquired caches that set, and each
//    leaf acquisition step carries its own acquired_before set plus an
//    is_new flag (false when an earlier step or the split walk already read
//    the attribute). This is what lets the executor precompute every
//    marginal AcquisitionCostModel::Cost() once per plan instead of once
//    per row — the cost model's virtual call leaves the hot loop entirely.
//  * specialized ops — the 16-byte CompiledPlan node ops are rebucketed
//    into the dispatch alphabet the batch kernels specialize on:
//    split-on-acquired vs first-acquisition, verdict polarity, sequential
//    leaves by arity (1..4 get dedicated kernels, kSeqN is the loop
//    fallback), and kGeneric for residual-query leaves (per-row scalar
//    fallback in the executor).
//
// A BatchPlanView is immutable after construction and holds a pointer to
// the CompiledPlan it was built from; the plan must outlive the view.
// Like the plan itself, a view may be shared across threads freely.

#ifndef CAQP_PLAN_BATCH_PLAN_H_
#define CAQP_PLAN_BATCH_PLAN_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/predicate.h"
#include "plan/compiled_plan.h"
#include "prob/subproblem.h"

namespace caqp {

class BatchPlanView {
 public:
  /// Specialization alphabet for the batch kernels (see file comment).
  enum class Op : uint8_t {
    kSplitFirst = 0,  ///< split; attr not yet acquired (charge + partition)
    kSplitRepeat,     ///< split on an already-acquired attribute (free)
    kVerdictTrue,     ///< leaf: constant true (also empty sequential leaves)
    kVerdictFalse,    ///< leaf: constant false
    kSeq1,            ///< sequential leaf, exactly 1 predicate
    kSeq2,            ///< sequential leaf, exactly 2 predicates
    kSeq3,            ///< sequential leaf, exactly 3 predicates
    kSeq4,            ///< sequential leaf, exactly 4 predicates
    kSeqN,            ///< sequential leaf, 5+ predicates (loop fallback)
    kGeneric,         ///< residual-query leaf (per-row scalar fallback)
  };

  /// Number of Op values (kGeneric is last). Sizes per-op counter tables in
  /// the executor's kernel telemetry.
  static constexpr size_t kNumOps = static_cast<size_t>(Op::kGeneric) + 1;

  /// Stable lower_snake_case label for `op` (metric name component).
  static const char* OpName(Op op);

  /// One acquisition step of a sequential or generic leaf. For sequential
  /// leaves `pred` is the conjunct evaluated at this step; generic leaves
  /// only use attr/is_new/acquired_before (the residual query drives
  /// evaluation). is_new is false when the split walk or an earlier step of
  /// the same leaf already acquired the attribute — the step then charges
  /// nothing and re-reads the cached value.
  struct AcqStep {
    Predicate pred{};
    AttrId attr = kInvalidAttr;
    bool is_new = false;
    /// Attributes acquired before this step runs (the cost-model argument
    /// for the step's marginal charge when is_new).
    AttrSet acquired_before;
  };

  struct Node {
    Op op = Op::kVerdictFalse;
    AttrId attr = kInvalidAttr;  ///< splits only
    Value split_value = 0;       ///< splits only
    /// Index of this node in the source CompiledPlan's preorder array —
    /// the key under which ExecutionProfile counters are recorded, so the
    /// batch path stays join-compatible with PlanEstimates / calibration.
    uint32_t plan_index = 0;
    uint32_t lt = 0;  ///< "<" child slot (splits only)
    uint32_t ge = 0;  ///< ">=" child slot (splits only)
    /// [steps, steps + num_steps) into steps() (sequential/generic only).
    uint32_t steps = 0;
    uint32_t num_steps = 0;
    /// Attributes already acquired when a tuple enters this node.
    AttrSet entry_acquired;
  };

  /// Builds the view; O(nodes). `plan` must outlive the view.
  explicit BatchPlanView(const CompiledPlan& plan);

  const CompiledPlan& plan() const { return *plan_; }

  size_t num_slots() const { return nodes_.size(); }
  const Node& slot(uint32_t s) const { return nodes_[s]; }

  std::span<const AcqStep> steps(const Node& n) const {
    return {steps_.data() + n.steps, n.num_steps};
  }
  /// kGeneric only: the leaf's residual query.
  const Query& residual_query(const Node& n) const {
    return plan_->residual_query(plan_->node(n.plan_index));
  }

  /// Number of BFS levels (== CompiledPlan depth + 1).
  size_t num_levels() const { return level_begin_.size() - 1; }
  /// [begin, end) slot span of level `l` (levels are contiguous in slot
  /// order; level 0 is {root}).
  std::pair<uint32_t, uint32_t> level(size_t l) const {
    return {level_begin_[l], level_begin_[l + 1]};
  }

 private:
  const CompiledPlan* plan_;
  std::vector<Node> nodes_;
  std::vector<AcqStep> steps_;
  std::vector<uint32_t> level_begin_;
};

}  // namespace caqp

#endif  // CAQP_PLAN_BATCH_PLAN_H_
