// Plan verification: proves (or samples) that a plan decides a query
// correctly. The paper's central correctness claim is that conditional
// plans, unlike approximate-predicate techniques, "guarantee correct
// execution of the original query in all cases" -- these utilities make
// that property checkable for any plan, e.g. one deserialized from a
// foreign basestation.

#ifndef CAQP_PLAN_PLAN_VERIFY_H_
#define CAQP_PLAN_PLAN_VERIFY_H_

#include <cstdint>
#include <optional>

#include "core/query.h"
#include "core/schema.h"
#include "plan/compiled_plan.h"
#include "plan/plan.h"

namespace caqp {

struct PlanVerificationResult {
  bool correct = true;
  /// Tuples checked (the whole domain product, or `samples`).
  uint64_t tuples_checked = 0;
  /// A witness tuple where the plan and the query disagree, if any.
  std::optional<Tuple> counterexample;
};

/// Exhaustively enumerates the attribute-domain product and compares the
/// plan's verdict with the query on every tuple. Intended for small schemas
/// (the domain product is checked against `max_tuples` and the call aborts
/// verification -- returning correct=false with no counterexample is never
/// possible; instead the function CHECKs the budget).
PlanVerificationResult VerifyPlanExhaustive(const CompiledPlan& plan,
                                            const Query& query,
                                            const Schema& schema,
                                            uint64_t max_tuples = 10'000'000);
/// Tree convenience form: compiles once, then verifies the flat form.
PlanVerificationResult VerifyPlanExhaustive(const Plan& plan,
                                            const Query& query,
                                            const Schema& schema,
                                            uint64_t max_tuples = 10'000'000);

/// Randomized verification: checks `samples` uniformly random tuples.
/// Misses nothing with probability growing in the sample count; suited to
/// schemas whose domain product is too large to enumerate.
PlanVerificationResult VerifyPlanSampled(const CompiledPlan& plan,
                                         const Query& query,
                                         const Schema& schema,
                                         uint64_t samples, uint64_t seed = 1);
/// Tree convenience form: compiles once, then verifies the flat form.
PlanVerificationResult VerifyPlanSampled(const Plan& plan, const Query& query,
                                         const Schema& schema,
                                         uint64_t samples, uint64_t seed = 1);

/// Structural well-formedness: split values within domains, attributes
/// within schema, sequential/generic leaves reference valid predicates.
/// Deserialization already enforces this; exposed for plans built in-process.
bool PlanIsWellFormed(const Plan& plan, const Schema& schema);
bool PlanIsWellFormed(const CompiledPlan& plan, const Schema& schema);

}  // namespace caqp

#endif  // CAQP_PLAN_PLAN_VERIFY_H_
