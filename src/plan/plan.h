// Conditional query plans (paper Section 2.1).
//
// A plan is a binary decision tree. Interior nodes carry a *conditioning
// predicate* T(X_i >= x): the executor acquires X_i (paying its cost if this
// is the first read of X_i for the current tuple) and branches. Leaves come
// in three flavors:
//
//  * Verdict(T/F)     -- the truth of the WHERE clause is already determined.
//  * Sequential(...)  -- an ordered list of residual range predicates
//                        evaluated with short-circuit AND semantics; this is
//                        how GreedyPlan embeds its per-leaf sequential plans
//                        and how ExhaustivePlan terminates once every query
//                        attribute has been acquired (the residual tests are
//                        then free).
//  * Generic(...)     -- an acquisition order plus the full (possibly DNF)
//                        query; the executor acquires attributes in order and
//                        stops as soon as three-valued evaluation determines
//                        the query. Supports the Section 7 existential
//                        extension.
//
// A purely sequential plan (Naive / OptSeq / GreedySeq output) is a plan
// whose root is a Sequential leaf.

#ifndef CAQP_PLAN_PLAN_H_
#define CAQP_PLAN_PLAN_H_

#include <memory>
#include <vector>

#include "core/predicate.h"
#include "core/query.h"
#include "core/schema.h"
#include "core/types.h"

namespace caqp {

struct PlanNode {
  enum class Kind : uint8_t {
    kSplit = 0,
    kVerdict = 1,
    kSequential = 2,
    kGeneric = 3,
  };

  Kind kind = Kind::kVerdict;

  /// Stable preorder index of this node within its plan (root = 0, then the
  /// lt subtree, then the ge subtree). Matches the flat index assigned by
  /// CompiledPlan::Compile, so a tree node and its compiled twin share one
  /// identity — the hook that lets per-node execution counters and per-node
  /// predicted estimates (plan_estimates.h) join across representations.
  /// Maintained by Plan (assigned on construction, refreshed by
  /// ReindexNodes()); nodes built by hand outside a Plan default to 0.
  uint32_t id = 0;

  // --- kSplit ---
  AttrId attr = kInvalidAttr;  ///< attribute observed at this node
  Value split_value = 0;       ///< test is X_attr >= split_value
  std::unique_ptr<PlanNode> lt;  ///< branch for X < split_value
  std::unique_ptr<PlanNode> ge;  ///< branch for X >= split_value

  // --- kVerdict ---
  bool verdict = false;

  // --- kSequential ---
  /// Residual predicates in evaluation order; all-true => tuple passes.
  std::vector<Predicate> sequence;

  // --- kGeneric ---
  Query residual_query;
  std::vector<AttrId> acquire_order;

  static std::unique_ptr<PlanNode> Verdict(bool v);
  static std::unique_ptr<PlanNode> Sequential(std::vector<Predicate> seq);
  static std::unique_ptr<PlanNode> Split(AttrId attr, Value split_value,
                                         std::unique_ptr<PlanNode> lt,
                                         std::unique_ptr<PlanNode> ge);
  static std::unique_ptr<PlanNode> Generic(Query q,
                                           std::vector<AttrId> order);

  std::unique_ptr<PlanNode> Clone() const;
};

/// An executable conditional plan. Owns its node tree.
class Plan {
 public:
  Plan() : root_(PlanNode::Verdict(false)) { ReindexNodes(); }
  explicit Plan(std::unique_ptr<PlanNode> root) : root_(std::move(root)) {
    CAQP_CHECK(root_ != nullptr);
    ReindexNodes();
  }

  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;
  // Deep copies are expensive (a full subtree clone per node) and were easy
  // to make by accident — pass plans by reference / move them, or ask for a
  // copy explicitly.
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  /// Explicit deep copy.
  Plan Clone() const { return Plan(root_->Clone()); }

  const PlanNode& root() const { return *root_; }
  PlanNode* mutable_root() { return root_.get(); }

  /// Total node count (splits + leaves).
  size_t NumNodes() const;
  /// Interior (split) node count; GreedyPlan's MAXSIZE bounds this.
  size_t NumSplits() const;
  /// Longest root-to-leaf path length in edges.
  size_t Depth() const;

  /// True iff the plan's verdict equals query.Matches(t) for this tuple.
  /// (The executor computes verdicts; this is a convenience for tests.)
  bool VerdictFor(const Tuple& t) const;

  /// Reassigns preorder ids (root = 0, lt subtree, ge subtree). Call after
  /// mutating the tree through mutable_root(); constructors do it for you.
  void ReindexNodes();

 private:
  std::unique_ptr<PlanNode> root_;
};

}  // namespace caqp

#endif  // CAQP_PLAN_PLAN_H_
