// CompiledPlan: the flat, immutable, executable form of a conditional plan.
//
// Planners build Plan trees (plan/plan.h): unique_ptr nodes are convenient
// to construct and rewrite. Everything downstream of planning — the per-tuple
// executor, serialization, the serve cache, mote dissemination — wants the
// opposite trade-off: a compact, pointer-free layout that walks by index,
// fits in a few cache lines, and can be shared across threads without
// cloning. CompiledPlan is that form, mirroring how production engines lower
// a logical plan into a flat executable program.
//
// Layout
//   * nodes_ is the preorder flattening of the tree with the root at index
//     0. A split's "<" child is always the next node (lt == i + 1), so only
//     the ">=" child index is stored; leaves store offsets into side tables.
//   * Side tables hold variable-length leaf payloads contiguously:
//     predicates_ (sequential leaves), order_ (generic acquire orders) and
//     queries_ (generic residual queries).
//   * Each split carries a precomputed "first acquisition" flag: true iff no
//     ancestor split on the root path observes the same attribute. During
//     the split walk an acquisition failure terminates traversal, so a
//     non-first split is only ever reached with its attribute already
//     acquired — the executor reads the cached value with no set lookup at
//     all, and a first split acquires with no set lookup either.
//
// Thread safety: a CompiledPlan is immutable after Compile/deserialization.
// Any number of threads may execute, cost, print, or serialize the same
// instance concurrently with no synchronization; this is what lets
// caqp::serve hand one shared_ptr<const CompiledPlan> to every request.

#ifndef CAQP_PLAN_COMPILED_PLAN_H_
#define CAQP_PLAN_COMPILED_PLAN_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "plan/plan.h"
#include "prob/subproblem.h"

namespace caqp {

struct PlanEstimates;  // plan/plan_estimates.h

class CompiledPlan {
 public:
  using Kind = PlanNode::Kind;

  /// Node flag bits.
  static constexpr uint8_t kFlagVerdict = 1 << 0;
  static constexpr uint8_t kFlagFirstAcquisition = 1 << 1;

  /// One flattened plan node (16 bytes). Field use by kind:
  ///   kSplit      attr/split_value; a = ">=" child index ("<" is i + 1)
  ///   kVerdict    kFlagVerdict in flags
  ///   kSequential a/b = offset/count into the predicate side table
  ///   kGeneric    a/b = offset/count into the acquire-order side table,
  ///               aux = index into the residual-query side table
  struct Node {
    Kind kind = Kind::kVerdict;
    uint8_t flags = 0;
    AttrId attr = kInvalidAttr;
    Value split_value = 0;
    uint16_t aux = 0;
    uint32_t a = 0;
    uint32_t b = 0;

    bool verdict() const { return flags & kFlagVerdict; }
    /// kSplit only: no ancestor split observes the same attribute.
    bool first_acquisition() const { return flags & kFlagFirstAcquisition; }
  };

  /// A compiled verdict-false plan (the same default as Plan).
  CompiledPlan() { *this = Compile(*PlanNode::Verdict(false)); }

  /// Lowers a plan tree into flat form. O(nodes); the input is unchanged.
  static CompiledPlan Compile(const Plan& plan) {
    return Compile(plan.root());
  }
  static CompiledPlan Compile(const PlanNode& root);

  const Node& node(uint32_t i) const {
    CAQP_DCHECK(i < nodes_.size());
    return nodes_[i];
  }
  const Node& root() const { return nodes_[0]; }
  /// The "<" child of split `i` (preorder invariant).
  static uint32_t LtChild(uint32_t i) { return i + 1; }

  /// Leaf payload accessors (valid for the matching node kind only).
  std::span<const Predicate> sequence(const Node& n) const {
    return {predicates_.data() + n.a, n.b};
  }
  std::span<const AttrId> acquire_order(const Node& n) const {
    return {order_.data() + n.a, n.b};
  }
  const Query& residual_query(const Node& n) const { return queries_[n.aux]; }

  /// Every attribute the plan can acquire (splits, sequences, orders).
  AttrSet attrs() const { return attrs_; }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumSplits() const { return num_splits_; }
  size_t Depth() const { return depth_; }

  /// True iff the plan's verdict equals query.Matches(t) for this tuple
  /// (same contract as Plan::VerdictFor; infallible acquisition).
  bool VerdictFor(const Tuple& t) const;

  /// Reconstructs the pointer-tree form. Used by the deserialization compat
  /// shim and by tooling that still edits trees; round-trips exactly:
  /// Compile(p.ToTree()) is structurally identical to p.
  Plan ToTree() const;

  /// Attaches the planner's predicted per-node selectivity/cost side tables
  /// (plan/plan_estimates.h). Estimates are advisory metadata: they never
  /// affect execution, are not serialized, and must be attached before the
  /// plan is shared across threads (immutability contract above). nullptr is
  /// allowed and means "no estimates".
  void AttachEstimates(std::shared_ptr<const PlanEstimates> estimates) {
    estimates_ = std::move(estimates);
  }
  /// The attached estimates, or nullptr if the producing planner did not
  /// stamp any (e.g. a deserialized or hand-compiled plan).
  const PlanEstimates* estimates() const { return estimates_.get(); }
  std::shared_ptr<const PlanEstimates> shared_estimates() const {
    return estimates_;
  }

 private:
  friend Result<CompiledPlan> DeserializeCompiledPlan(
      const std::vector<uint8_t>&, const Schema&);

  /// Uninitialized-shell constructor for Compile/deserialization (the
  /// public default constructor compiles a verdict-false plan).
  struct RawTag {};
  explicit CompiledPlan(RawTag) {}

  uint32_t AppendSubtree(const PlanNode& n);
  size_t DepthOf(uint32_t i) const;
  std::unique_ptr<PlanNode> ToTreeNode(uint32_t i) const;
  /// Recomputes attrs_/num_splits_/depth_/first-acquisition flags from the
  /// node array (deserialization builds the arrays directly).
  void FinishFromNodes();

  std::vector<Node> nodes_;
  std::vector<Predicate> predicates_;
  std::vector<AttrId> order_;
  std::vector<Query> queries_;
  AttrSet attrs_;
  size_t num_splits_ = 0;
  size_t depth_ = 0;
  /// Predicted side tables (see AttachEstimates). Shared, immutable.
  std::shared_ptr<const PlanEstimates> estimates_;
};

}  // namespace caqp

#endif  // CAQP_PLAN_COMPILED_PLAN_H_
