// Pretty-printing of conditional plans, in the style of the paper's
// Figure 9 case study: an indented tree showing each conditioning predicate
// and the sequential residue at the leaves. All renderers walk the
// CompiledPlan flat form; the Plan entry points compile once and delegate.

#ifndef CAQP_PLAN_PLAN_PRINTER_H_
#define CAQP_PLAN_PLAN_PRINTER_H_

#include <string>

#include "core/schema.h"
#include "opt/cost_model.h"
#include "plan/compiled_plan.h"
#include "plan/plan.h"
#include "prob/estimator.h"

namespace caqp {

/// Multi-line ASCII rendering of the plan tree.
std::string PrintPlan(const CompiledPlan& plan, const Schema& schema);
std::string PrintPlan(const Plan& plan, const Schema& schema);

/// One-line summary: "splits=3 depth=2 size=41B".
std::string PlanSummary(const CompiledPlan& plan);
std::string PlanSummary(const Plan& plan);

/// EXPLAIN-style rendering: every node is annotated with the probability a
/// tuple reaches it and the expected acquisition cost of its subtree, both
/// under `estimator` -- e.g.
///   if hour >= 9:  [reach=1.00 cost=103.2]
/// Lets users see where a conditional plan actually spends.
std::string ExplainPlan(const CompiledPlan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model);
std::string ExplainPlan(const Plan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model);

/// Flat-IR dump: one line per node in index (preorder) order, showing the
/// raw arrays the executor walks -- kind, payload fields, child indices, and
/// the first-acquisition flag. The `caqp_plan --emit=flat` output.
std::string DumpCompiledPlan(const CompiledPlan& plan, const Schema& schema);

}  // namespace caqp

#endif  // CAQP_PLAN_PLAN_PRINTER_H_
