#include "plan/plan_serde.h"

#include "plan/plan_verify.h"

namespace caqp {

namespace {

void SerializePredicate(const Predicate& p, ByteWriter* w) {
  w->PutVarint(p.attr);
  w->PutVarint(p.lo);
  w->PutVarint(p.hi);
  w->PutU8(p.negated ? 1 : 0);
}

void SerializeNode(const PlanNode& n, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(n.kind));
  switch (n.kind) {
    case PlanNode::Kind::kSplit:
      w->PutVarint(n.attr);
      w->PutVarint(n.split_value);
      SerializeNode(*n.lt, w);
      SerializeNode(*n.ge, w);
      break;
    case PlanNode::Kind::kVerdict:
      w->PutU8(n.verdict ? 1 : 0);
      break;
    case PlanNode::Kind::kSequential:
      w->PutVarint(n.sequence.size());
      for (const Predicate& p : n.sequence) SerializePredicate(p, w);
      break;
    case PlanNode::Kind::kGeneric: {
      w->PutVarint(n.acquire_order.size());
      for (AttrId a : n.acquire_order) w->PutVarint(a);
      const auto& conjuncts = n.residual_query.conjuncts();
      w->PutVarint(conjuncts.size());
      for (const Conjunct& c : conjuncts) {
        w->PutVarint(c.size());
        for (const Predicate& p : c) SerializePredicate(p, w);
      }
      break;
    }
  }
}

Status ParsePredicate(ByteReader* r, const Schema& schema, Predicate* out) {
  uint64_t attr, lo, hi;
  uint8_t neg;
  CAQP_RETURN_IF_ERROR(r->GetVarint(&attr));
  CAQP_RETURN_IF_ERROR(r->GetVarint(&lo));
  CAQP_RETURN_IF_ERROR(r->GetVarint(&hi));
  CAQP_RETURN_IF_ERROR(r->GetU8(&neg));
  if (attr >= schema.num_attributes()) {
    return Status::DataLoss("predicate attribute out of schema");
  }
  if (lo > hi || hi >= schema.domain_size(static_cast<AttrId>(attr))) {
    return Status::DataLoss("predicate range out of domain");
  }
  *out = Predicate(static_cast<AttrId>(attr), static_cast<Value>(lo),
                   static_cast<Value>(hi), neg != 0);
  return Status::OK();
}

Status ParseNode(ByteReader* r, const Schema& schema, int depth,
                 std::unique_ptr<PlanNode>* out) {
  if (depth > 512) return Status::DataLoss("plan nesting too deep");
  uint8_t kind;
  CAQP_RETURN_IF_ERROR(r->GetU8(&kind));
  switch (static_cast<PlanNode::Kind>(kind)) {
    case PlanNode::Kind::kSplit: {
      uint64_t attr, x;
      CAQP_RETURN_IF_ERROR(r->GetVarint(&attr));
      CAQP_RETURN_IF_ERROR(r->GetVarint(&x));
      if (attr >= schema.num_attributes()) {
        return Status::DataLoss("split attribute out of schema");
      }
      if (x < 1 || x >= schema.domain_size(static_cast<AttrId>(attr))) {
        return Status::DataLoss("split value out of domain");
      }
      std::unique_ptr<PlanNode> lt, ge;
      CAQP_RETURN_IF_ERROR(ParseNode(r, schema, depth + 1, &lt));
      CAQP_RETURN_IF_ERROR(ParseNode(r, schema, depth + 1, &ge));
      *out = PlanNode::Split(static_cast<AttrId>(attr),
                             static_cast<Value>(x), std::move(lt),
                             std::move(ge));
      return Status::OK();
    }
    case PlanNode::Kind::kVerdict: {
      uint8_t v;
      CAQP_RETURN_IF_ERROR(r->GetU8(&v));
      *out = PlanNode::Verdict(v != 0);
      return Status::OK();
    }
    case PlanNode::Kind::kSequential: {
      uint64_t count;
      CAQP_RETURN_IF_ERROR(r->GetVarint(&count));
      if (count > schema.num_attributes()) {
        return Status::DataLoss("sequential leaf longer than schema");
      }
      std::vector<Predicate> seq(count);
      for (uint64_t i = 0; i < count; ++i) {
        CAQP_RETURN_IF_ERROR(ParsePredicate(r, schema, &seq[i]));
      }
      *out = PlanNode::Sequential(std::move(seq));
      return Status::OK();
    }
    case PlanNode::Kind::kGeneric: {
      uint64_t order_count;
      CAQP_RETURN_IF_ERROR(r->GetVarint(&order_count));
      if (order_count > schema.num_attributes()) {
        return Status::DataLoss("acquire order longer than schema");
      }
      std::vector<AttrId> order(order_count);
      for (uint64_t i = 0; i < order_count; ++i) {
        uint64_t a;
        CAQP_RETURN_IF_ERROR(r->GetVarint(&a));
        if (a >= schema.num_attributes()) {
          return Status::DataLoss("acquire order attr out of schema");
        }
        order[i] = static_cast<AttrId>(a);
      }
      uint64_t nconj;
      CAQP_RETURN_IF_ERROR(r->GetVarint(&nconj));
      if (nconj == 0 || nconj > 1024) {
        return Status::DataLoss("bad conjunct count");
      }
      std::vector<Conjunct> conjuncts(nconj);
      for (uint64_t ci = 0; ci < nconj; ++ci) {
        uint64_t count;
        CAQP_RETURN_IF_ERROR(r->GetVarint(&count));
        if (count == 0 || count > schema.num_attributes()) {
          return Status::DataLoss("bad conjunct size");
        }
        conjuncts[ci].resize(count);
        for (uint64_t i = 0; i < count; ++i) {
          CAQP_RETURN_IF_ERROR(ParsePredicate(r, schema, &conjuncts[ci][i]));
        }
      }
      *out = PlanNode::Generic(Query::Disjunction(std::move(conjuncts)),
                               std::move(order));
      return Status::OK();
    }
  }
  return Status::DataLoss("unknown plan node kind");
}

}  // namespace

std::vector<uint8_t> SerializePlan(const Plan& plan) {
  ByteWriter w;
  SerializeNode(plan.root(), &w);
  return w.bytes();
}

size_t PlanSizeBytes(const Plan& plan) { return SerializePlan(plan).size(); }

Result<Plan> DeserializePlan(const std::vector<uint8_t>& bytes,
                             const Schema& schema) {
  ByteReader r(bytes);
  std::unique_ptr<PlanNode> root;
  CAQP_RETURN_IF_ERROR(ParseNode(&r, schema, 0, &root));
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes after plan");
  Plan plan(std::move(root));
  // Field-level checks above catch most corruption; this closes the
  // structural gaps (e.g. a generic leaf whose acquire order no longer
  // covers its residual query, which would stall the executor).
  if (!PlanIsWellFormed(plan, schema)) {
    return Status::DataLoss("decoded plan fails well-formedness checks");
  }
  return plan;
}

}  // namespace caqp
