#include "plan/plan_serde.h"

#include "plan/plan_verify.h"

namespace caqp {

namespace {

/// Ceiling on decoded node counts; far above any plan the planners emit,
/// low enough that a corrupted varint cannot drive a huge allocation.
constexpr uint64_t kMaxPlanNodes = 1u << 20;

void SerializePredicate(const Predicate& p, ByteWriter* w) {
  w->PutVarint(p.attr);
  w->PutVarint(p.lo);
  w->PutVarint(p.hi);
  w->PutU8(p.negated ? 1 : 0);
}

Status ParsePredicate(ByteReader* r, const Schema& schema, Predicate* out) {
  uint64_t attr, lo, hi;
  uint8_t neg;
  CAQP_RETURN_IF_ERROR(r->GetVarint(&attr));
  CAQP_RETURN_IF_ERROR(r->GetVarint(&lo));
  CAQP_RETURN_IF_ERROR(r->GetVarint(&hi));
  CAQP_RETURN_IF_ERROR(r->GetU8(&neg));
  if (attr >= schema.num_attributes()) {
    return Status::DataLoss("predicate attribute out of schema");
  }
  if (lo > hi || hi >= schema.domain_size(static_cast<AttrId>(attr))) {
    return Status::DataLoss("predicate range out of domain");
  }
  *out = Predicate(static_cast<AttrId>(attr), static_cast<Value>(lo),
                   static_cast<Value>(hi), neg != 0);
  return Status::OK();
}

Status ParseGenericPayload(ByteReader* r, const Schema& schema,
                           std::vector<AttrId>* order, Query* query) {
  uint64_t order_count;
  CAQP_RETURN_IF_ERROR(r->GetVarint(&order_count));
  if (order_count > schema.num_attributes()) {
    return Status::DataLoss("acquire order longer than schema");
  }
  order->resize(order_count);
  for (uint64_t i = 0; i < order_count; ++i) {
    uint64_t a;
    CAQP_RETURN_IF_ERROR(r->GetVarint(&a));
    if (a >= schema.num_attributes()) {
      return Status::DataLoss("acquire order attr out of schema");
    }
    (*order)[i] = static_cast<AttrId>(a);
  }
  uint64_t nconj;
  CAQP_RETURN_IF_ERROR(r->GetVarint(&nconj));
  if (nconj == 0 || nconj > 1024) {
    return Status::DataLoss("bad conjunct count");
  }
  std::vector<Conjunct> conjuncts(nconj);
  for (uint64_t ci = 0; ci < nconj; ++ci) {
    uint64_t count;
    CAQP_RETURN_IF_ERROR(r->GetVarint(&count));
    if (count == 0 || count > schema.num_attributes()) {
      return Status::DataLoss("bad conjunct size");
    }
    conjuncts[ci].resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      CAQP_RETURN_IF_ERROR(ParsePredicate(r, schema, &conjuncts[ci][i]));
    }
  }
  *query = Query::Disjunction(std::move(conjuncts));
  return Status::OK();
}

/// Legacy recursive tree decoder (pre-flat encodings start with a node
/// kind byte in 0..3). Kept as a compat shim only; SerializePlan has emitted
/// the flat format since the CompiledPlan refactor.
Status ParseTreeNode(ByteReader* r, const Schema& schema, int depth,
                     std::unique_ptr<PlanNode>* out) {
  if (depth > 512) return Status::DataLoss("plan nesting too deep");
  uint8_t kind;
  CAQP_RETURN_IF_ERROR(r->GetU8(&kind));
  switch (static_cast<PlanNode::Kind>(kind)) {
    case PlanNode::Kind::kSplit: {
      uint64_t attr, x;
      CAQP_RETURN_IF_ERROR(r->GetVarint(&attr));
      CAQP_RETURN_IF_ERROR(r->GetVarint(&x));
      if (attr >= schema.num_attributes()) {
        return Status::DataLoss("split attribute out of schema");
      }
      if (x < 1 || x >= schema.domain_size(static_cast<AttrId>(attr))) {
        return Status::DataLoss("split value out of domain");
      }
      std::unique_ptr<PlanNode> lt, ge;
      CAQP_RETURN_IF_ERROR(ParseTreeNode(r, schema, depth + 1, &lt));
      CAQP_RETURN_IF_ERROR(ParseTreeNode(r, schema, depth + 1, &ge));
      *out = PlanNode::Split(static_cast<AttrId>(attr),
                             static_cast<Value>(x), std::move(lt),
                             std::move(ge));
      return Status::OK();
    }
    case PlanNode::Kind::kVerdict: {
      uint8_t v;
      CAQP_RETURN_IF_ERROR(r->GetU8(&v));
      *out = PlanNode::Verdict(v != 0);
      return Status::OK();
    }
    case PlanNode::Kind::kSequential: {
      uint64_t count;
      CAQP_RETURN_IF_ERROR(r->GetVarint(&count));
      if (count > schema.num_attributes()) {
        return Status::DataLoss("sequential leaf longer than schema");
      }
      std::vector<Predicate> seq(count);
      for (uint64_t i = 0; i < count; ++i) {
        CAQP_RETURN_IF_ERROR(ParsePredicate(r, schema, &seq[i]));
      }
      *out = PlanNode::Sequential(std::move(seq));
      return Status::OK();
    }
    case PlanNode::Kind::kGeneric: {
      std::vector<AttrId> order;
      Query query;
      CAQP_RETURN_IF_ERROR(ParseGenericPayload(r, schema, &order, &query));
      *out = PlanNode::Generic(std::move(query), std::move(order));
      return Status::OK();
    }
  }
  return Status::DataLoss("unknown plan node kind");
}

/// Verifies the node array is the preorder flattening of exactly one binary
/// tree rooted at 0 with lt == i + 1: a single linear walk (node order IS
/// traversal order) with a stack of pending ">=" child starts. Rejects
/// shared children, cycles, dangling nodes, and over-deep nesting.
Status ValidateTopology(const std::vector<CompiledPlan::Node>& nodes) {
  const uint32_t count = static_cast<uint32_t>(nodes.size());
  std::vector<uint32_t> pending_ge;
  uint32_t i = 0;
  while (true) {
    const CompiledPlan::Node& n = nodes[i];
    if (n.kind == CompiledPlan::Kind::kSplit) {
      if (n.a <= i + 1 || n.a >= count) {
        return Status::DataLoss("split child index out of range");
      }
      if (pending_ge.size() >= 512) {
        return Status::DataLoss("plan nesting too deep");
      }
      pending_ge.push_back(n.a);
      ++i;  // the "<" subtree starts at the next node
    } else {
      const uint32_t end = i + 1;  // a leaf closes the current subtree
      if (pending_ge.empty()) {
        if (end != count) return Status::DataLoss("dangling plan nodes");
        return Status::OK();
      }
      if (pending_ge.back() != end) {
        return Status::DataLoss("malformed preorder layout");
      }
      pending_ge.pop_back();
      i = end;  // enter the matching ">=" subtree
    }
  }
}

}  // namespace

std::vector<uint8_t> SerializePlan(const CompiledPlan& plan) {
  ByteWriter w;
  w.PutU8(kPlanWireFormatVersion);
  w.PutVarint(plan.NumNodes());
  for (uint32_t i = 0; i < plan.NumNodes(); ++i) {
    const CompiledPlan::Node& n = plan.node(i);
    w.PutU8(static_cast<uint8_t>(n.kind));
    switch (n.kind) {
      case CompiledPlan::Kind::kSplit:
        w.PutVarint(n.attr);
        w.PutVarint(n.split_value);
        w.PutVarint(n.a);
        break;
      case CompiledPlan::Kind::kVerdict:
        w.PutU8(n.verdict() ? 1 : 0);
        break;
      case CompiledPlan::Kind::kSequential: {
        w.PutVarint(n.b);
        for (const Predicate& p : plan.sequence(n)) SerializePredicate(p, &w);
        break;
      }
      case CompiledPlan::Kind::kGeneric: {
        w.PutVarint(n.b);
        for (AttrId a : plan.acquire_order(n)) w.PutVarint(a);
        const auto& conjuncts = plan.residual_query(n).conjuncts();
        w.PutVarint(conjuncts.size());
        for (const Conjunct& c : conjuncts) {
          w.PutVarint(c.size());
          for (const Predicate& p : c) SerializePredicate(p, &w);
        }
        break;
      }
    }
  }
  return w.bytes();
}

std::vector<uint8_t> SerializePlan(const Plan& plan) {
  return SerializePlan(CompiledPlan::Compile(plan));
}

size_t PlanSizeBytes(const CompiledPlan& plan) {
  return SerializePlan(plan).size();
}

size_t PlanSizeBytes(const Plan& plan) { return SerializePlan(plan).size(); }

Result<CompiledPlan> DeserializeCompiledPlan(
    const std::vector<uint8_t>& bytes, const Schema& schema) {
  if (bytes.empty()) return Status::DataLoss("empty plan bytes");

  // Legacy tree encoding: the first byte is the root's kind (0..3).
  if (bytes[0] < kPlanWireFormatVersion) {
    if (bytes[0] > 3) return Status::DataLoss("unknown plan format version");
    ByteReader r(bytes);
    std::unique_ptr<PlanNode> root;
    CAQP_RETURN_IF_ERROR(ParseTreeNode(&r, schema, 0, &root));
    if (!r.AtEnd()) return Status::DataLoss("trailing bytes after plan");
    Plan plan(std::move(root));
    if (!PlanIsWellFormed(plan, schema)) {
      return Status::DataLoss("decoded plan fails well-formedness checks");
    }
    return CompiledPlan::Compile(plan);
  }
  if (bytes[0] != kPlanWireFormatVersion) {
    return Status::DataLoss("unknown plan format version");
  }

  ByteReader r(bytes);
  uint8_t version;
  CAQP_RETURN_IF_ERROR(r.GetU8(&version));
  uint64_t count;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&count));
  if (count == 0 || count > kMaxPlanNodes) {
    return Status::DataLoss("bad plan node count");
  }

  CompiledPlan plan{CompiledPlan::RawTag{}};
  plan.nodes_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    CompiledPlan::Node& n = plan.nodes_[i];
    uint8_t kind;
    CAQP_RETURN_IF_ERROR(r.GetU8(&kind));
    if (kind > 3) return Status::DataLoss("unknown plan node kind");
    n.kind = static_cast<CompiledPlan::Kind>(kind);
    switch (n.kind) {
      case CompiledPlan::Kind::kSplit: {
        uint64_t attr, x, ge;
        CAQP_RETURN_IF_ERROR(r.GetVarint(&attr));
        CAQP_RETURN_IF_ERROR(r.GetVarint(&x));
        CAQP_RETURN_IF_ERROR(r.GetVarint(&ge));
        if (attr >= schema.num_attributes()) {
          return Status::DataLoss("split attribute out of schema");
        }
        if (x < 1 || x >= schema.domain_size(static_cast<AttrId>(attr))) {
          return Status::DataLoss("split value out of domain");
        }
        if (ge >= count) {
          return Status::DataLoss("split child index out of range");
        }
        n.attr = static_cast<AttrId>(attr);
        n.split_value = static_cast<Value>(x);
        n.a = static_cast<uint32_t>(ge);
        break;
      }
      case CompiledPlan::Kind::kVerdict: {
        uint8_t v;
        CAQP_RETURN_IF_ERROR(r.GetU8(&v));
        if (v > 1) return Status::DataLoss("bad verdict byte");
        if (v == 1) n.flags = CompiledPlan::kFlagVerdict;
        break;
      }
      case CompiledPlan::Kind::kSequential: {
        uint64_t pcount;
        CAQP_RETURN_IF_ERROR(r.GetVarint(&pcount));
        if (pcount > schema.num_attributes()) {
          return Status::DataLoss("sequential leaf longer than schema");
        }
        n.a = static_cast<uint32_t>(plan.predicates_.size());
        n.b = static_cast<uint32_t>(pcount);
        plan.predicates_.resize(plan.predicates_.size() + pcount);
        for (uint64_t k = 0; k < pcount; ++k) {
          CAQP_RETURN_IF_ERROR(
              ParsePredicate(&r, schema, &plan.predicates_[n.a + k]));
        }
        break;
      }
      case CompiledPlan::Kind::kGeneric: {
        if (plan.queries_.size() >= 65536) {
          return Status::DataLoss("too many generic leaves");
        }
        std::vector<AttrId> order;
        Query query;
        CAQP_RETURN_IF_ERROR(ParseGenericPayload(&r, schema, &order, &query));
        n.aux = static_cast<uint16_t>(plan.queries_.size());
        plan.queries_.push_back(std::move(query));
        n.a = static_cast<uint32_t>(plan.order_.size());
        n.b = static_cast<uint32_t>(order.size());
        plan.order_.insert(plan.order_.end(), order.begin(), order.end());
        break;
      }
    }
  }
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes after plan");
  CAQP_RETURN_IF_ERROR(ValidateTopology(plan.nodes_));
  plan.FinishFromNodes();
  // Field-level checks above catch most corruption; this closes the
  // structural gaps (e.g. a generic leaf whose acquire order no longer
  // covers its residual query, which would stall the executor).
  if (!PlanIsWellFormed(plan, schema)) {
    return Status::DataLoss("decoded plan fails well-formedness checks");
  }
  return plan;
}

Result<Plan> DeserializePlan(const std::vector<uint8_t>& bytes,
                             const Schema& schema) {
  Result<CompiledPlan> compiled = DeserializeCompiledPlan(bytes, schema);
  if (!compiled.ok()) return compiled.status();
  return compiled->ToTree();
}

}  // namespace caqp
