// Plan costing.
//
//  * ExpectedPlanCost: the analytic expected cost C(P) of Equation (3),
//    evaluated against any CondProbEstimator. Under a DatasetEstimator this
//    equals the empirical mean execution cost over the same dataset exactly
//    (Equation (4)); tests enforce that identity.
//  * EmpiricalPlanCost: mean realized acquisition cost of running the plan
//    over a concrete dataset (the paper's test-set evaluation), plus verdict
//    accuracy against the original query (always 1.0 for our planners; the
//    paper stresses its plans never err, unlike approximate predicate work).
//
// Both cost walks run over the CompiledPlan flat form; the Plan/PlanNode
// entry points compile once and delegate, so the arithmetic (and hence the
// floating-point result) is identical whichever form the caller holds.

#ifndef CAQP_PLAN_PLAN_COST_H_
#define CAQP_PLAN_PLAN_COST_H_

#include "core/dataset.h"
#include "core/query.h"
#include "obs/trace.h"
#include "opt/cost_model.h"
#include "plan/compiled_plan.h"
#include "plan/plan.h"
#include "prob/estimator.h"

namespace caqp {

/// Expected cost per Equation (3): recursive expectation over the branch
/// probabilities supplied by `estimator`, with acquisition charges from
/// `cost_model` (an attribute is charged the first time its range narrows on
/// a root-to-leaf path; sequential leaves charge per-predicate with
/// conditional pass probabilities).
double ExpectedPlanCost(const CompiledPlan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model);
/// Tree convenience form: compiles once, then costs the flat form.
double ExpectedPlanCost(const Plan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model);

/// Expected completion cost of the subtree rooted at `index`, conditioned on
/// the plan having reached it with the attribute ranges implied by the splits
/// above. ExpectedPlanCost(plan, ...) == ExpectedSubplanCost(plan, 0,
/// schema.FullRanges(), ...). Used by the EXPLAIN printer.
double ExpectedSubplanCost(const CompiledPlan& plan, uint32_t index,
                           const RangeVec& ranges,
                           CondProbEstimator& estimator,
                           const AcquisitionCostModel& cost_model);
/// Tree convenience form: compiles the subtree at `node`, then costs it.
double ExpectedSubplanCost(const PlanNode& node, const RangeVec& ranges,
                           CondProbEstimator& estimator,
                           const AcquisitionCostModel& cost_model);

struct EmpiricalCostResult {
  double mean_cost = 0.0;        ///< mean acquisition cost per tuple
  double total_cost = 0.0;       ///< summed over all tuples
  size_t tuples = 0;             ///< dataset size
  size_t verdict_errors = 0;     ///< plan verdict != query truth
  double mean_acquisitions = 0;  ///< mean #attributes acquired per tuple
};

/// Runs the plan over every tuple of `data`, charging `cost_model`, and
/// checks each verdict against `query`. If `trace` is non-null it receives
/// the execution events of every tuple (e.g. an obs::AttributeProfile to
/// collect per-attribute acquisition histograms).
EmpiricalCostResult EmpiricalPlanCost(const CompiledPlan& plan,
                                      const Dataset& data, const Query& query,
                                      const AcquisitionCostModel& cost_model,
                                      TraceSink* trace = nullptr);
/// Tree convenience form: compiles once, then runs the flat form.
EmpiricalCostResult EmpiricalPlanCost(const Plan& plan, const Dataset& data,
                                      const Query& query,
                                      const AcquisitionCostModel& cost_model,
                                      TraceSink* trace = nullptr);

}  // namespace caqp

#endif  // CAQP_PLAN_PLAN_COST_H_
