#include "plan/plan.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/registry.h"

namespace caqp {

std::unique_ptr<PlanNode> PlanNode::Verdict(bool v) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kVerdict;
  n->verdict = v;
  return n;
}

std::unique_ptr<PlanNode> PlanNode::Sequential(std::vector<Predicate> seq) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kSequential;
  n->sequence = std::move(seq);
  return n;
}

std::unique_ptr<PlanNode> PlanNode::Split(AttrId attr, Value split_value,
                                          std::unique_ptr<PlanNode> lt,
                                          std::unique_ptr<PlanNode> ge) {
  CAQP_CHECK(lt != nullptr);
  CAQP_CHECK(ge != nullptr);
  CAQP_CHECK_GE(split_value, 1);  // X >= 0 would be a degenerate split.
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kSplit;
  n->attr = attr;
  n->split_value = split_value;
  n->lt = std::move(lt);
  n->ge = std::move(ge);
  return n;
}

std::unique_ptr<PlanNode> PlanNode::Generic(Query q,
                                            std::vector<AttrId> order) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kGeneric;
  n->residual_query = std::move(q);
  n->acquire_order = std::move(order);
  return n;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  // Counted so the serve/net hot paths can assert they never deep-copy a
  // plan (bench_exec and serve_test watch this stay flat across requests).
  CAQP_OBS_COUNTER_INC("plan.node_clones");
  auto n = std::make_unique<PlanNode>();
  n->kind = kind;
  n->id = id;
  n->attr = attr;
  n->split_value = split_value;
  n->verdict = verdict;
  n->sequence = sequence;
  n->residual_query = residual_query;
  n->acquire_order = acquire_order;
  if (lt) n->lt = lt->Clone();
  if (ge) n->ge = ge->Clone();
  return n;
}

namespace {

size_t CountNodes(const PlanNode& n) {
  if (n.kind != PlanNode::Kind::kSplit) return 1;
  return 1 + CountNodes(*n.lt) + CountNodes(*n.ge);
}

size_t CountSplits(const PlanNode& n) {
  if (n.kind != PlanNode::Kind::kSplit) return 0;
  return 1 + CountSplits(*n.lt) + CountSplits(*n.ge);
}

size_t NodeDepth(const PlanNode& n) {
  if (n.kind != PlanNode::Kind::kSplit) return 0;
  return 1 + std::max(NodeDepth(*n.lt), NodeDepth(*n.ge));
}

// Preorder: node, lt subtree, ge subtree — the same order
// CompiledPlan::Compile appends nodes, so tree id == flat index.
void AssignPreorderIds(PlanNode& n, uint32_t& next) {
  n.id = next++;
  if (n.kind != PlanNode::Kind::kSplit) return;
  AssignPreorderIds(*n.lt, next);
  AssignPreorderIds(*n.ge, next);
}

}  // namespace

void Plan::ReindexNodes() {
  uint32_t next = 0;
  AssignPreorderIds(*root_, next);
}

size_t Plan::NumNodes() const { return CountNodes(*root_); }
size_t Plan::NumSplits() const { return CountSplits(*root_); }
size_t Plan::Depth() const { return NodeDepth(*root_); }

bool Plan::VerdictFor(const Tuple& t) const {
  const PlanNode* n = root_.get();
  while (n->kind == PlanNode::Kind::kSplit) {
    n = (t[n->attr] >= n->split_value) ? n->ge.get() : n->lt.get();
  }
  switch (n->kind) {
    case PlanNode::Kind::kVerdict:
      return n->verdict;
    case PlanNode::Kind::kSequential:
      for (const Predicate& p : n->sequence) {
        if (!p.Matches(t)) return false;
      }
      return true;
    case PlanNode::Kind::kGeneric:
      return n->residual_query.Matches(t);
    case PlanNode::Kind::kSplit:
      break;
  }
  CAQP_CHECK(false);
  return false;
}

}  // namespace caqp
