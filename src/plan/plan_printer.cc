#include "plan/plan_printer.h"

#include <cstdio>

#include "plan/plan_cost.h"
#include "plan/plan_serde.h"

namespace caqp {

namespace {

void PrintNode(const CompiledPlan& plan, uint32_t index, const Schema& schema,
               int indent, const char* label, std::string* out) {
  for (int i = 0; i < indent; ++i) *out += "  ";
  if (*label) {
    *out += label;
    *out += " ";
  }
  const CompiledPlan::Node& n = plan.node(index);
  char buf[160];
  switch (n.kind) {
    case CompiledPlan::Kind::kSplit:
      std::snprintf(buf, sizeof(buf), "if %s >= %u:",
                    schema.name(n.attr).c_str(),
                    static_cast<unsigned>(n.split_value));
      *out += buf;
      *out += "\n";
      PrintNode(plan, n.a, schema, indent + 1, "then", out);
      PrintNode(plan, CompiledPlan::LtChild(index), schema, indent + 1, "else",
                out);
      break;
    case CompiledPlan::Kind::kVerdict:
      *out += n.verdict() ? "=> PASS" : "=> FAIL";
      *out += "\n";
      break;
    case CompiledPlan::Kind::kSequential: {
      *out += "eval:";
      const std::span<const Predicate> seq = plan.sequence(n);
      if (seq.empty()) {
        *out += " (nothing) => PASS";
      } else {
        for (const Predicate& p : seq) {
          *out += " [" + p.ToString(schema) + "]";
        }
      }
      *out += "\n";
      break;
    }
    case CompiledPlan::Kind::kGeneric: {
      *out += "acquire {";
      const std::span<const AttrId> order = plan.acquire_order(n);
      for (size_t i = 0; i < order.size(); ++i) {
        if (i) *out += ", ";
        *out += schema.name(order[i]);
      }
      *out +=
          "} until " + plan.residual_query(n).ToString(schema) + " resolves\n";
      break;
    }
  }
}

}  // namespace

std::string PrintPlan(const CompiledPlan& plan, const Schema& schema) {
  std::string out;
  PrintNode(plan, 0, schema, 0, "", &out);
  return out;
}

std::string PrintPlan(const Plan& plan, const Schema& schema) {
  return PrintPlan(CompiledPlan::Compile(plan), schema);
}

namespace {

void ExplainNode(const CompiledPlan& plan, uint32_t index,
                 const RangeVec& ranges, double reach, CondProbEstimator& est,
                 const AcquisitionCostModel& cm, int indent, const char* label,
                 std::string* out) {
  for (int i = 0; i < indent; ++i) *out += "  ";
  if (*label) {
    *out += label;
    *out += " ";
  }
  const Schema& schema = est.schema();
  const CompiledPlan::Node& n = plan.node(index);
  char buf[192];
  const double cost = ExpectedSubplanCost(plan, index, ranges, est, cm);
  switch (n.kind) {
    case CompiledPlan::Kind::kSplit: {
      const ValueRange r = ranges[n.attr];
      const ValueRange lt_r{r.lo, static_cast<Value>(n.split_value - 1)};
      const ValueRange ge_r{n.split_value, r.hi};
      const double p_lt =
          (n.split_value > r.lo && n.split_value <= r.hi)
              ? est.RangeProbability(ranges, n.attr, lt_r)
              : (n.split_value > r.hi ? 1.0 : 0.0);
      std::snprintf(buf, sizeof(buf),
                    "if %s >= %u:  [reach=%.3f cost=%.2f]",
                    schema.name(n.attr).c_str(),
                    static_cast<unsigned>(n.split_value), reach, cost);
      *out += buf;
      *out += "\n";
      const RangeVec ge_ranges =
          (n.split_value <= r.hi && n.split_value > r.lo)
              ? Refined(ranges, n.attr, ge_r)
              : ranges;
      const RangeVec lt_ranges =
          (n.split_value > r.lo && n.split_value <= r.hi)
              ? Refined(ranges, n.attr, lt_r)
              : ranges;
      ExplainNode(plan, n.a, ge_ranges, reach * (1.0 - p_lt), est, cm,
                  indent + 1, "then", out);
      ExplainNode(plan, CompiledPlan::LtChild(index), lt_ranges, reach * p_lt,
                  est, cm, indent + 1, "else", out);
      break;
    }
    case CompiledPlan::Kind::kVerdict:
      std::snprintf(buf, sizeof(buf), "=> %s  [reach=%.3f]",
                    n.verdict() ? "PASS" : "FAIL", reach);
      *out += buf;
      *out += "\n";
      break;
    case CompiledPlan::Kind::kSequential: {
      std::snprintf(buf, sizeof(buf), "eval  [reach=%.3f cost=%.2f]:", reach,
                    cost);
      *out += buf;
      for (const Predicate& p : plan.sequence(n)) {
        *out += " [" + p.ToString(schema) + "]";
      }
      *out += "\n";
      break;
    }
    case CompiledPlan::Kind::kGeneric:
      std::snprintf(buf, sizeof(buf),
                    "acquire-until-resolved  [reach=%.3f cost=%.2f]\n", reach,
                    cost);
      *out += buf;
      break;
  }
}

}  // namespace

std::string ExplainPlan(const CompiledPlan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model) {
  std::string out;
  ExplainNode(plan, 0, estimator.schema().FullRanges(), 1.0, estimator,
              cost_model, 0, "", &out);
  return out;
}

std::string ExplainPlan(const Plan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model) {
  return ExplainPlan(CompiledPlan::Compile(plan), estimator, cost_model);
}

std::string PlanSummary(const CompiledPlan& plan) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "splits=%zu depth=%zu size=%zuB",
                static_cast<size_t>(plan.NumSplits()),
                static_cast<size_t>(plan.Depth()), PlanSizeBytes(plan));
  return buf;
}

std::string PlanSummary(const Plan& plan) {
  return PlanSummary(CompiledPlan::Compile(plan));
}

std::string DumpCompiledPlan(const CompiledPlan& plan, const Schema& schema) {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "CompiledPlan nodes=%zu splits=%zu depth=%zu size=%zuB\n",
                static_cast<size_t>(plan.NumNodes()),
                static_cast<size_t>(plan.NumSplits()),
                static_cast<size_t>(plan.Depth()), PlanSizeBytes(plan));
  out += buf;
  for (uint32_t i = 0; i < plan.NumNodes(); ++i) {
    const CompiledPlan::Node& n = plan.node(i);
    switch (n.kind) {
      case CompiledPlan::Kind::kSplit:
        std::snprintf(buf, sizeof(buf),
                      "%4u: split   %s >= %u  lt=%u ge=%u%s\n", i,
                      schema.name(n.attr).c_str(),
                      static_cast<unsigned>(n.split_value),
                      CompiledPlan::LtChild(i), n.a,
                      n.first_acquisition() ? "  [first-acq]" : "");
        out += buf;
        break;
      case CompiledPlan::Kind::kVerdict:
        std::snprintf(buf, sizeof(buf), "%4u: verdict %s\n", i,
                      n.verdict() ? "PASS" : "FAIL");
        out += buf;
        break;
      case CompiledPlan::Kind::kSequential: {
        std::snprintf(buf, sizeof(buf), "%4u: seq     preds[%u..%u):", i, n.a,
                      n.a + n.b);
        out += buf;
        for (const Predicate& p : plan.sequence(n)) {
          out += " [" + p.ToString(schema) + "]";
        }
        out += "\n";
        break;
      }
      case CompiledPlan::Kind::kGeneric: {
        std::snprintf(buf, sizeof(buf), "%4u: generic query=%u order={", i,
                      static_cast<unsigned>(n.aux));
        out += buf;
        const std::span<const AttrId> order = plan.acquire_order(n);
        for (size_t k = 0; k < order.size(); ++k) {
          if (k) out += ", ";
          out += schema.name(order[k]);
        }
        out += "} " + plan.residual_query(n).ToString(schema) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace caqp
