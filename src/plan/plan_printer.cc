#include "plan/plan_printer.h"

#include <cstdio>

#include "plan/plan_cost.h"
#include "plan/plan_serde.h"

namespace caqp {

namespace {

void PrintNode(const PlanNode& n, const Schema& schema, int indent,
               const char* label, std::string* out) {
  for (int i = 0; i < indent; ++i) *out += "  ";
  if (*label) {
    *out += label;
    *out += " ";
  }
  char buf[160];
  switch (n.kind) {
    case PlanNode::Kind::kSplit:
      std::snprintf(buf, sizeof(buf), "if %s >= %u:",
                    schema.name(n.attr).c_str(),
                    static_cast<unsigned>(n.split_value));
      *out += buf;
      *out += "\n";
      PrintNode(*n.ge, schema, indent + 1, "then", out);
      PrintNode(*n.lt, schema, indent + 1, "else", out);
      break;
    case PlanNode::Kind::kVerdict:
      *out += n.verdict ? "=> PASS" : "=> FAIL";
      *out += "\n";
      break;
    case PlanNode::Kind::kSequential:
      *out += "eval:";
      if (n.sequence.empty()) {
        *out += " (nothing) => PASS";
      } else {
        for (const Predicate& p : n.sequence) {
          *out += " [" + p.ToString(schema) + "]";
        }
      }
      *out += "\n";
      break;
    case PlanNode::Kind::kGeneric:
      *out += "acquire {";
      for (size_t i = 0; i < n.acquire_order.size(); ++i) {
        if (i) *out += ", ";
        *out += schema.name(n.acquire_order[i]);
      }
      *out += "} until " + n.residual_query.ToString(schema) + " resolves\n";
      break;
  }
}

}  // namespace

std::string PrintPlan(const Plan& plan, const Schema& schema) {
  std::string out;
  PrintNode(plan.root(), schema, 0, "", &out);
  return out;
}

namespace {

void ExplainNode(const PlanNode& n, const RangeVec& ranges, double reach,
                 CondProbEstimator& est, const AcquisitionCostModel& cm,
                 int indent, const char* label, std::string* out) {
  for (int i = 0; i < indent; ++i) *out += "  ";
  if (*label) {
    *out += label;
    *out += " ";
  }
  const Schema& schema = est.schema();
  char buf[192];
  const double cost = ExpectedSubplanCost(n, ranges, est, cm);
  switch (n.kind) {
    case PlanNode::Kind::kSplit: {
      const ValueRange r = ranges[n.attr];
      const ValueRange lt_r{r.lo, static_cast<Value>(n.split_value - 1)};
      const ValueRange ge_r{n.split_value, r.hi};
      const double p_lt =
          (n.split_value > r.lo && n.split_value <= r.hi)
              ? est.RangeProbability(ranges, n.attr, lt_r)
              : (n.split_value > r.hi ? 1.0 : 0.0);
      std::snprintf(buf, sizeof(buf),
                    "if %s >= %u:  [reach=%.3f cost=%.2f]",
                    schema.name(n.attr).c_str(),
                    static_cast<unsigned>(n.split_value), reach, cost);
      *out += buf;
      *out += "\n";
      const RangeVec ge_ranges =
          (n.split_value <= r.hi && n.split_value > r.lo)
              ? Refined(ranges, n.attr, ge_r)
              : ranges;
      const RangeVec lt_ranges =
          (n.split_value > r.lo && n.split_value <= r.hi)
              ? Refined(ranges, n.attr, lt_r)
              : ranges;
      ExplainNode(*n.ge, ge_ranges, reach * (1.0 - p_lt), est, cm, indent + 1,
                  "then", out);
      ExplainNode(*n.lt, lt_ranges, reach * p_lt, est, cm, indent + 1, "else",
                  out);
      break;
    }
    case PlanNode::Kind::kVerdict:
      std::snprintf(buf, sizeof(buf), "=> %s  [reach=%.3f]",
                    n.verdict ? "PASS" : "FAIL", reach);
      *out += buf;
      *out += "\n";
      break;
    case PlanNode::Kind::kSequential: {
      std::snprintf(buf, sizeof(buf), "eval  [reach=%.3f cost=%.2f]:", reach,
                    cost);
      *out += buf;
      for (const Predicate& p : n.sequence) {
        *out += " [" + p.ToString(schema) + "]";
      }
      *out += "\n";
      break;
    }
    case PlanNode::Kind::kGeneric:
      std::snprintf(buf, sizeof(buf),
                    "acquire-until-resolved  [reach=%.3f cost=%.2f]\n", reach,
                    cost);
      *out += buf;
      break;
  }
}

}  // namespace

std::string ExplainPlan(const Plan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model) {
  std::string out;
  ExplainNode(plan.root(), estimator.schema().FullRanges(), 1.0, estimator,
              cost_model, 0, "", &out);
  return out;
}

std::string PlanSummary(const Plan& plan) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "splits=%zu depth=%zu size=%zuB",
                plan.NumSplits(), plan.Depth(), PlanSizeBytes(plan));
  return buf;
}

}  // namespace caqp
