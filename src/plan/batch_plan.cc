#include "plan/batch_plan.h"

#include "common/check.h"

namespace caqp {

namespace {

BatchPlanView::Op SeqOp(size_t arity) {
  using Op = BatchPlanView::Op;
  switch (arity) {
    case 1:
      return Op::kSeq1;
    case 2:
      return Op::kSeq2;
    case 3:
      return Op::kSeq3;
    case 4:
      return Op::kSeq4;
    default:
      return Op::kSeqN;
  }
}

}  // namespace

const char* BatchPlanView::OpName(Op op) {
  switch (op) {
    case Op::kSplitFirst:
      return "split_first";
    case Op::kSplitRepeat:
      return "split_repeat";
    case Op::kVerdictTrue:
      return "verdict_true";
    case Op::kVerdictFalse:
      return "verdict_false";
    case Op::kSeq1:
      return "seq1";
    case Op::kSeq2:
      return "seq2";
    case Op::kSeq3:
      return "seq3";
    case Op::kSeq4:
      return "seq4";
    case Op::kSeqN:
      return "seqn";
    case Op::kGeneric:
      return "generic";
  }
  return "unknown";
}

BatchPlanView::BatchPlanView(const CompiledPlan& plan) : plan_(&plan) {
  const size_t n = plan.NumNodes();

  // BFS from the root assigns level-major slots. The acquired-at-entry set
  // flows down unchanged except through first-acquisition splits, which add
  // their attribute for both children (the walk acquires before branching).
  struct Item {
    uint32_t plan_index = 0;
    uint32_t level = 0;
    AttrSet entry;
  };
  std::vector<Item> order;
  order.reserve(n);
  order.push_back(Item{0, 0, AttrSet::None()});
  for (size_t head = 0; head < order.size(); ++head) {
    const Item it = order[head];  // by value: push_back may reallocate
    const CompiledPlan::Node& pn = plan.node(it.plan_index);
    if (pn.kind == CompiledPlan::Kind::kSplit) {
      AttrSet child = it.entry;
      if (pn.first_acquisition()) child.Insert(pn.attr);
      order.push_back(
          Item{CompiledPlan::LtChild(it.plan_index), it.level + 1, child});
      order.push_back(Item{pn.a, it.level + 1, child});
    }
  }
  // Every node is reachable from the root exactly once (it's a tree).
  CAQP_CHECK(order.size() == n);

  std::vector<uint32_t> slot_of(n, 0);
  for (uint32_t s = 0; s < order.size(); ++s) slot_of[order[s].plan_index] = s;

  nodes_.resize(n);
  for (uint32_t s = 0; s < order.size(); ++s) {
    const Item& it = order[s];
    const CompiledPlan::Node& pn = plan.node(it.plan_index);
    while (level_begin_.size() <= it.level) level_begin_.push_back(s);

    Node& bn = nodes_[s];
    bn.plan_index = it.plan_index;
    bn.entry_acquired = it.entry;
    switch (pn.kind) {
      case CompiledPlan::Kind::kSplit:
        bn.op = pn.first_acquisition() ? Op::kSplitFirst : Op::kSplitRepeat;
        bn.attr = pn.attr;
        bn.split_value = pn.split_value;
        bn.lt = slot_of[CompiledPlan::LtChild(it.plan_index)];
        bn.ge = slot_of[pn.a];
        break;
      case CompiledPlan::Kind::kVerdict:
        bn.op = pn.verdict() ? Op::kVerdictTrue : Op::kVerdictFalse;
        break;
      case CompiledPlan::Kind::kSequential: {
        const std::span<const Predicate> seq = plan.sequence(pn);
        if (seq.empty()) {
          // A vacuous conjunction is constant true; fold into the verdict
          // kernel rather than giving every kernel an empty-steps branch.
          bn.op = Op::kVerdictTrue;
          break;
        }
        bn.op = SeqOp(seq.size());
        bn.steps = static_cast<uint32_t>(steps_.size());
        bn.num_steps = static_cast<uint32_t>(seq.size());
        AttrSet acq = it.entry;
        for (const Predicate& p : seq) {
          AcqStep st;
          st.pred = p;
          st.attr = p.attr;
          st.acquired_before = acq;
          st.is_new = !acq.Contains(p.attr);
          acq.Insert(p.attr);
          steps_.push_back(st);
        }
        break;
      }
      case CompiledPlan::Kind::kGeneric: {
        const std::span<const AttrId> ord = plan.acquire_order(pn);
        bn.op = Op::kGeneric;
        bn.steps = static_cast<uint32_t>(steps_.size());
        bn.num_steps = static_cast<uint32_t>(ord.size());
        AttrSet acq = it.entry;
        for (const AttrId a : ord) {
          AcqStep st;
          st.attr = a;
          st.acquired_before = acq;
          st.is_new = !acq.Contains(a);
          acq.Insert(a);
          steps_.push_back(st);
        }
        break;
      }
    }
  }
  level_begin_.push_back(static_cast<uint32_t>(order.size()));
}

}  // namespace caqp
