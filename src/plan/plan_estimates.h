// Predicted per-node side tables for a compiled plan.
//
// At plan time an estimator believes things about every node of the plan it
// just built: how often the node will be reached, how often its test will
// pass, and how much acquisition cost it will charge. EstimatePlan walks a
// CompiledPlan with the same recursion (and the same degenerate-split and
// zero-probability handling) as ExpectedPlanCost and records those beliefs
// in flat arrays indexed by node — the "predicted" half that obs/calibration
// joins against the executor's observed counters (exec/exec_profile.h).
//
// Semantics, per node i (flat preorder index; == PlanNode::id):
//  * reach — probability a tuple drawn from the estimated distribution
//    reaches node i. Root = 1. Sums over a level need not be 1 because
//    degenerate splits route all mass one way.
//  * pass — conditional probability the node's test succeeds given the node
//    is reached: P(X >= split) for splits, P(all residual predicates true)
//    for sequential leaves, verdict (1/0) for verdict leaves. Generic leaves
//    and unreachable nodes carry the sentinel -1 ("no estimate").
//  * cost — expected acquisition cost charged at node i given it is reached
//    (first-touch observe charge for splits; per-predicate conditional
//    charges for sequential leaves; full residual-walk expectation for
//    generic leaves). Sum over nodes of reach*cost == expected_cost, which
//    matches ExpectedPlanCost up to summation order.
//
// attr_eval_rate / attr_pass_rate aggregate the same beliefs per attribute:
// expected number of predicate evaluations (and passes) of attribute `a` per
// executed tuple. Generic leaves contribute nothing to the per-attribute
// rates (their evaluation order is data-dependent); calibration treats
// attributes only touched by generic leaves as uncalibrated.

#ifndef CAQP_PLAN_PLAN_ESTIMATES_H_
#define CAQP_PLAN_PLAN_ESTIMATES_H_

#include <array>
#include <vector>

#include "opt/cost_model.h"
#include "plan/compiled_plan.h"
#include "prob/estimator.h"

namespace caqp {

/// Schemas are capped at 64 attributes (AttrSet is one uint64_t); the
/// per-attribute rate tables are sized to that cap.
inline constexpr size_t kEstimateMaxAttrs = 64;

struct NodeEstimate {
  double reach = 0.0;  ///< P(node reached); root = 1
  double pass = -1.0;  ///< P(test passes | reached); -1 = no estimate
  double cost = 0.0;   ///< expected acquisition cost at this node | reached
};

struct PlanEstimates {
  /// One entry per CompiledPlan node, same indexing.
  std::vector<NodeEstimate> nodes;
  /// Expected predicate evaluations of attribute a per tuple.
  std::array<double, kEstimateMaxAttrs> attr_eval_rate{};
  /// Expected predicate passes of attribute a per tuple.
  std::array<double, kEstimateMaxAttrs> attr_pass_rate{};
  /// Expected acquisition cost per tuple (== ExpectedPlanCost up to
  /// floating-point summation order).
  double expected_cost = 0.0;
  /// Version of the estimator that produced these numbers (the serve layer's
  /// estimator-version counter; 0 outside serve).
  uint64_t estimator_version = 0;

  // --- Robust-planning stamp (opt/uncertainty.h) -------------------------
  // When the plan was built (or costed) under an uncertainty box, the box
  // and the interval cost evaluation over it ride along with the point
  // estimates, so calibration can score the robust plan against the range
  // it promised, not just its point cost. Raw arrays rather than the
  // UncertaintyBox type to keep plan/ free of an opt/uncertainty include
  // cycle; opt::StampEstimatesWithBox fills them.
  bool has_cost_bounds = false;
  double cost_lo = 0.0;  ///< min expected cost over the box's corners
  double cost_hi = 0.0;  ///< max expected cost over the box's corners
  /// The box itself: additive pass-probability shift intervals per
  /// attribute. All-zero (with has_cost_bounds false) means point planning.
  std::array<double, kEstimateMaxAttrs> box_shift_lo{};
  std::array<double, kEstimateMaxAttrs> box_shift_hi{};
};

/// Stamps predicted side tables for `plan` under `estimator`/`cost_model`.
/// O(nodes) walk with the ExpectedPlanCost recursion; the plan is unchanged
/// (callers attach the result via CompiledPlan::AttachEstimates).
PlanEstimates EstimatePlan(const CompiledPlan& plan,
                           CondProbEstimator& estimator,
                           const AcquisitionCostModel& cost_model);

}  // namespace caqp

#endif  // CAQP_PLAN_PLAN_ESTIMATES_H_
