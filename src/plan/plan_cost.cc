#include "plan/plan_cost.h"

namespace caqp {

namespace {

class ExpectedCoster {
 public:
  ExpectedCoster(const CompiledPlan& plan, CondProbEstimator& est,
                 const AcquisitionCostModel& cm)
      : plan_(plan), est_(est), cm_(cm), schema_(est.schema()) {}

  double Cost(uint32_t index, const RangeVec& ranges) {
    const CompiledPlan::Node& node = plan_.node(index);
    switch (node.kind) {
      case CompiledPlan::Kind::kVerdict:
        return 0.0;
      case CompiledPlan::Kind::kSequential:
        return SequentialCost(plan_.sequence(node), ranges);
      case CompiledPlan::Kind::kGeneric:
        return GenericCost(node, 0, ranges);
      case CompiledPlan::Kind::kSplit:
        break;
    }
    const AttrSet acquired = AcquiredAttrs(schema_, ranges);
    const double observe =
        acquired.Contains(node.attr) ? 0.0 : cm_.Cost(node.attr, acquired);
    const ValueRange r = ranges[node.attr];
    // Degenerate splits (possible after deserializing a foreign plan): the
    // whole mass goes to one side.
    if (node.split_value <= r.lo) return observe + Cost(node.a, ranges);
    if (node.split_value > r.hi) {
      return observe + Cost(CompiledPlan::LtChild(index), ranges);
    }

    const ValueRange lt_r{r.lo, static_cast<Value>(node.split_value - 1)};
    const ValueRange ge_r{node.split_value, r.hi};
    const double p_lt = est_.RangeProbability(ranges, node.attr, lt_r);
    double cost = observe;
    if (p_lt > 0) {
      cost += p_lt * Cost(CompiledPlan::LtChild(index),
                          Refined(ranges, node.attr, lt_r));
    }
    if (p_lt < 1.0) {
      cost += (1.0 - p_lt) * Cost(node.a, Refined(ranges, node.attr, ge_r));
    }
    return cost;
  }

 private:
  double SequentialCost(std::span<const Predicate> seq,
                        const RangeVec& ranges) {
    if (seq.empty()) return 0.0;
    const std::vector<Predicate> preds(seq.begin(), seq.end());
    const MaskDistribution masks = est_.PredicateMasks(ranges, preds);
    if (masks.total() <= 0) return 0.0;
    AttrSet acquired = AcquiredAttrs(schema_, ranges);
    double cost = 0.0;
    uint64_t prefix = 0;  // predicates already observed true
    for (size_t i = 0; i < seq.size(); ++i) {
      const double p_reach = masks.MassAllTrue(prefix) / masks.total();
      if (p_reach <= 0) break;
      const AttrId a = seq[i].attr;
      if (!acquired.Contains(a)) {
        cost += p_reach * cm_.Cost(a, acquired);
        acquired.Insert(a);
      }
      prefix |= uint64_t{1} << i;
    }
    return cost;
  }

  double GenericCost(const CompiledPlan::Node& node, size_t k,
                     const RangeVec& ranges) {
    const Query& query = plan_.residual_query(node);
    if (query.EvaluateOnRanges(ranges) != Truth::kUnknown) {
      return 0.0;
    }
    const std::span<const AttrId> order = plan_.acquire_order(node);
    if (k >= order.size()) return 0.0;
    const AttrId attr = order[k];
    const AttrSet acquired = AcquiredAttrs(schema_, ranges);
    double cost =
        acquired.Contains(attr) ? 0.0 : cm_.Cost(attr, acquired);
    const Histogram h = est_.Marginal(ranges, attr);
    if (h.total() <= 0) return 0.0;
    for (Value v = ranges[attr].lo; v <= ranges[attr].hi; ++v) {
      const double p = h.Count(v) / h.total();
      if (p > 0) {
        cost += p * GenericCost(node, k + 1,
                                Refined(ranges, attr, ValueRange{v, v}));
      }
    }
    return cost;
  }

  const CompiledPlan& plan_;
  CondProbEstimator& est_;
  const AcquisitionCostModel& cm_;
  const Schema& schema_;
};

}  // namespace

double ExpectedPlanCost(const CompiledPlan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model) {
  return ExpectedSubplanCost(plan, 0, estimator.schema().FullRanges(),
                             estimator, cost_model);
}

double ExpectedPlanCost(const Plan& plan, CondProbEstimator& estimator,
                        const AcquisitionCostModel& cost_model) {
  return ExpectedPlanCost(CompiledPlan::Compile(plan), estimator, cost_model);
}

double ExpectedSubplanCost(const CompiledPlan& plan, uint32_t index,
                           const RangeVec& ranges,
                           CondProbEstimator& estimator,
                           const AcquisitionCostModel& cost_model) {
  ExpectedCoster coster(plan, estimator, cost_model);
  return coster.Cost(index, ranges);
}

double ExpectedSubplanCost(const PlanNode& node, const RangeVec& ranges,
                           CondProbEstimator& estimator,
                           const AcquisitionCostModel& cost_model) {
  return ExpectedSubplanCost(CompiledPlan::Compile(node), 0, ranges, estimator,
                             cost_model);
}

namespace {

/// Per-tuple execution mirroring exec/executor.cc but reading values straight
/// out of a dataset row (hot path for benches over large test sets).
struct TupleRun {
  double cost = 0.0;
  int acquisitions = 0;
  bool verdict = false;
};

TupleRun RunTuple(const CompiledPlan& plan, const Schema& schema,
                  const Dataset& data, RowId row,
                  const AcquisitionCostModel& cm, TraceSink* trace) {
  TupleRun out;
  AttrSet acquired;
  auto acquire = [&](AttrId a) {
    if (!acquired.Contains(a)) {
      const double marginal = cm.Cost(a, acquired);
      out.cost += marginal;
      acquired.Insert(a);
      ++out.acquisitions;
      if (trace) trace->OnAcquire(a, data.at(row, a), marginal);
    }
    return data.at(row, a);
  };

  uint32_t idx = 0;
  const CompiledPlan::Node* n = &plan.node(idx);
  while (n->kind == CompiledPlan::Kind::kSplit) {
    const Value v = acquire(n->attr);
    const bool ge = v >= n->split_value;
    if (trace) trace->OnBranch(n->attr, n->split_value, ge);
    idx = ge ? n->a : CompiledPlan::LtChild(idx);
    n = &plan.node(idx);
  }
  switch (n->kind) {
    case CompiledPlan::Kind::kVerdict:
      out.verdict = n->verdict();
      break;
    case CompiledPlan::Kind::kSequential: {
      out.verdict = true;
      for (const Predicate& p : plan.sequence(*n)) {
        if (!p.Matches(acquire(p.attr))) {
          out.verdict = false;
          break;
        }
      }
      break;
    }
    case CompiledPlan::Kind::kGeneric: {
      RangeVec ranges = schema.FullRanges();
      // Narrow ranges to the values acquired on the split path so the
      // residual query can resolve without re-acquisition.
      for (size_t a = 0; a < schema.num_attributes(); ++a) {
        if (acquired.Contains(static_cast<AttrId>(a))) {
          const Value v = data.at(row, static_cast<AttrId>(a));
          ranges[a] = ValueRange{v, v};
        }
      }
      const Query& query = plan.residual_query(*n);
      const std::span<const AttrId> order = plan.acquire_order(*n);
      Truth t = query.EvaluateOnRanges(ranges);
      for (size_t k = 0; t == Truth::kUnknown && k < order.size(); ++k) {
        const AttrId a = order[k];
        const Value v = acquire(a);
        ranges[a] = ValueRange{v, v};
        t = query.EvaluateOnRanges(ranges);
      }
      CAQP_CHECK(t != Truth::kUnknown);
      out.verdict = (t == Truth::kTrue);
      break;
    }
    case CompiledPlan::Kind::kSplit:
      CAQP_CHECK(false);
  }
  if (trace) trace->OnVerdict(out.verdict, out.cost);
  return out;
}

}  // namespace

EmpiricalCostResult EmpiricalPlanCost(const CompiledPlan& plan,
                                      const Dataset& data, const Query& query,
                                      const AcquisitionCostModel& cost_model,
                                      TraceSink* trace) {
  EmpiricalCostResult res;
  res.tuples = data.num_rows();
  size_t total_acq = 0;
  for (RowId r = 0; r < data.num_rows(); ++r) {
    const TupleRun run =
        RunTuple(plan, data.schema(), data, r, cost_model, trace);
    res.total_cost += run.cost;
    total_acq += run.acquisitions;
    const bool truth = query.Matches(data.GetTuple(r));
    if (truth != run.verdict) ++res.verdict_errors;
  }
  if (res.tuples > 0) {
    res.mean_cost = res.total_cost / res.tuples;
    res.mean_acquisitions = static_cast<double>(total_acq) / res.tuples;
  }
  return res;
}

EmpiricalCostResult EmpiricalPlanCost(const Plan& plan, const Dataset& data,
                                      const Query& query,
                                      const AcquisitionCostModel& cost_model,
                                      TraceSink* trace) {
  return EmpiricalPlanCost(CompiledPlan::Compile(plan), data, query,
                           cost_model, trace);
}

}  // namespace caqp
