// Plan serialization: the byte encoding a basestation radios to the motes.
// The encoded length is the paper's plan size zeta(P) (Section 2.4), used
// both to bound plan sizes for device RAM and in the joint optimization
// C(P) + alpha * zeta(P). Deserialization validates against a schema and
// returns Status errors (plans arrive over a lossy medium).

#ifndef CAQP_PLAN_PLAN_SERDE_H_
#define CAQP_PLAN_PLAN_SERDE_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/schema.h"
#include "plan/plan.h"

namespace caqp {

/// Encodes a plan. Varint-based: a typical split costs 3-5 bytes.
std::vector<uint8_t> SerializePlan(const Plan& plan);

/// zeta(P): the serialized size in bytes.
size_t PlanSizeBytes(const Plan& plan);

/// Decodes and validates a plan against `schema`. Fails on truncated input,
/// out-of-domain attributes or values, or trailing garbage.
Result<Plan> DeserializePlan(const std::vector<uint8_t>& bytes,
                             const Schema& schema);

}  // namespace caqp

#endif  // CAQP_PLAN_PLAN_SERDE_H_
