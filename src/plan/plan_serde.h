// Plan serialization: the byte encoding a basestation radios to the motes.
// The encoded length is the paper's plan size zeta(P) (Section 2.4), used
// both to bound plan sizes for device RAM and in the joint optimization
// C(P) + alpha * zeta(P). Deserialization validates against a schema and
// returns Status errors (plans arrive over a lossy medium).
//
// Wire format (version 0xCA): the CompiledPlan flat form, serialized
// directly — a leading version byte, a varint node count, then the nodes in
// preorder index order. A split stores its ">=" child index explicitly (the
// "<" child is always the next node); leaves carry their payloads inline.
// Decoding rebuilds the flat arrays with a single linear pass, validates the
// preorder topology with a stack walk, and gates the result on
// PlanIsWellFormed. The version byte 0xCA cannot collide with the legacy
// tree encoding (whose first byte is a node kind in 0..3), so old bytes
// still decode through the recursive tree parser as a compat shim.

#ifndef CAQP_PLAN_PLAN_SERDE_H_
#define CAQP_PLAN_PLAN_SERDE_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/schema.h"
#include "plan/compiled_plan.h"
#include "plan/plan.h"

namespace caqp {

/// Leading byte of the flat wire format. Chosen outside the legacy tree
/// encoding's leading-byte range (a PlanNode::Kind in 0..3).
inline constexpr uint8_t kPlanWireFormatVersion = 0xCA;

/// Encodes a compiled plan. Varint-based: a typical split costs 4-6 bytes.
std::vector<uint8_t> SerializePlan(const CompiledPlan& plan);
/// Tree convenience form: compiles, then serializes the flat form.
std::vector<uint8_t> SerializePlan(const Plan& plan);

/// zeta(P): the serialized size in bytes.
size_t PlanSizeBytes(const CompiledPlan& plan);
size_t PlanSizeBytes(const Plan& plan);

/// Decodes and validates a plan against `schema`. Fails on truncated input,
/// out-of-domain attributes or values, malformed preorder topology, or
/// trailing garbage. Accepts both the flat format and legacy tree bytes.
Result<CompiledPlan> DeserializeCompiledPlan(const std::vector<uint8_t>& bytes,
                                             const Schema& schema);

/// Compat shim for callers that still edit trees: DeserializeCompiledPlan,
/// then reconstruct the pointer-tree form.
Result<Plan> DeserializePlan(const std::vector<uint8_t>& bytes,
                             const Schema& schema);

}  // namespace caqp

#endif  // CAQP_PLAN_PLAN_SERDE_H_
