#include "plan/compiled_plan.h"

#include <algorithm>
#include <utility>

namespace caqp {

CompiledPlan CompiledPlan::Compile(const PlanNode& root) {
  CompiledPlan out{RawTag{}};
  out.AppendSubtree(root);
  out.FinishFromNodes();
  return out;
}

uint32_t CompiledPlan::AppendSubtree(const PlanNode& n) {
  const uint32_t idx = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  // nodes_ may reallocate during child recursion: write through the index.
  nodes_[idx].kind = n.kind;
  switch (n.kind) {
    case Kind::kVerdict:
      if (n.verdict) nodes_[idx].flags = kFlagVerdict;
      break;
    case Kind::kSequential:
      nodes_[idx].a = static_cast<uint32_t>(predicates_.size());
      nodes_[idx].b = static_cast<uint32_t>(n.sequence.size());
      predicates_.insert(predicates_.end(), n.sequence.begin(),
                         n.sequence.end());
      break;
    case Kind::kGeneric:
      CAQP_CHECK_LT(queries_.size(), 65536u);  // aux is 16 bits
      nodes_[idx].aux = static_cast<uint16_t>(queries_.size());
      queries_.push_back(n.residual_query);
      nodes_[idx].a = static_cast<uint32_t>(order_.size());
      nodes_[idx].b = static_cast<uint32_t>(n.acquire_order.size());
      order_.insert(order_.end(), n.acquire_order.begin(),
                    n.acquire_order.end());
      break;
    case Kind::kSplit: {
      nodes_[idx].attr = n.attr;
      nodes_[idx].split_value = n.split_value;
      const uint32_t lt = AppendSubtree(*n.lt);
      CAQP_DCHECK(lt == idx + 1);  // preorder invariant
      (void)lt;
      nodes_[idx].a = AppendSubtree(*n.ge);
      break;
    }
  }
  return idx;
}

void CompiledPlan::FinishFromNodes() {
  CAQP_CHECK(!nodes_.empty());
  attrs_ = AttrSet::None();
  num_splits_ = 0;
  // Preorder with lt == i + 1 means node order IS traversal order, so one
  // linear pass with a two-phase ancestor stack (lt side, then ge side)
  // reconstructs the root path of every node.
  struct Frame {
    AttrId attr;
    bool in_ge;
  };
  std::vector<Frame> stack;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    n.flags &= kFlagVerdict;  // recompute the first-acquisition bit
    if (n.kind == Kind::kSplit) {
      ++num_splits_;
      attrs_.Insert(n.attr);
      const bool seen = std::any_of(
          stack.begin(), stack.end(),
          [&](const Frame& f) { return f.attr == n.attr; });
      if (!seen) n.flags |= kFlagFirstAcquisition;
      stack.push_back(Frame{n.attr, false});
    } else {
      if (n.kind == Kind::kSequential) {
        for (const Predicate& p : sequence(n)) attrs_.Insert(p.attr);
      } else if (n.kind == Kind::kGeneric) {
        for (AttrId a : acquire_order(n)) attrs_.Insert(a);
      }
      // A leaf ends the current subtree: flip the innermost lt-side split
      // to its ge side, unwinding splits whose ge side is already done.
      while (!stack.empty()) {
        if (!stack.back().in_ge) {
          stack.back().in_ge = true;
          break;
        }
        stack.pop_back();
      }
    }
  }
  depth_ = DepthOf(0);
}

size_t CompiledPlan::DepthOf(uint32_t i) const {
  const Node& n = nodes_[i];
  if (n.kind != Kind::kSplit) return 0;
  return 1 + std::max(DepthOf(i + 1), DepthOf(n.a));
}

bool CompiledPlan::VerdictFor(const Tuple& t) const {
  uint32_t i = 0;
  while (nodes_[i].kind == Kind::kSplit) {
    i = (t[nodes_[i].attr] >= nodes_[i].split_value) ? nodes_[i].a : i + 1;
  }
  const Node& n = nodes_[i];
  switch (n.kind) {
    case Kind::kVerdict:
      return n.verdict();
    case Kind::kSequential:
      for (const Predicate& p : sequence(n)) {
        if (!p.Matches(t)) return false;
      }
      return true;
    case Kind::kGeneric:
      return residual_query(n).Matches(t);
    case Kind::kSplit:
      break;
  }
  CAQP_CHECK(false);
  return false;
}

std::unique_ptr<PlanNode> CompiledPlan::ToTreeNode(uint32_t i) const {
  const Node& n = nodes_[i];
  switch (n.kind) {
    case Kind::kVerdict:
      return PlanNode::Verdict(n.verdict());
    case Kind::kSequential: {
      const std::span<const Predicate> seq = sequence(n);
      return PlanNode::Sequential({seq.begin(), seq.end()});
    }
    case Kind::kGeneric: {
      const std::span<const AttrId> order = acquire_order(n);
      return PlanNode::Generic(residual_query(n), {order.begin(), order.end()});
    }
    case Kind::kSplit:
      return PlanNode::Split(n.attr, n.split_value, ToTreeNode(i + 1),
                             ToTreeNode(n.a));
  }
  CAQP_CHECK(false);
  return nullptr;
}

Plan CompiledPlan::ToTree() const { return Plan(ToTreeNode(0)); }

}  // namespace caqp
