// Prometheus text exposition (format 0.0.4) plus the canonical metric-name
// scheme shared by every export surface.
//
// Internally metrics keep their historical dotted names ("serve.requests",
// "dist.shard.exec_seconds") — hundreds of call sites cache references by
// those strings and renaming them buys nothing. At the export boundary,
// every name is canonicalized to one snake_case scheme with unit suffixes:
//
//   * '.' and any non-[a-zA-Z0-9_] byte become '_';
//   * counters gain a "_total" suffix unless they already carry one
//     ("serve.requests" -> "serve_requests_total");
//   * gauges, stats, and histograms keep their unit suffix as spelled at
//     the call site ("_seconds", "_ratio") — the registration name is the
//     contract;
//   * a leading digit is prefixed with '_' (Prometheus name grammar).
//
// The JSON export (obs/export.h) emits the same canonical names, so the
// /metrics endpoint and --metrics-out files agree key for key; JSON
// documents additionally carry an "aliases" map (legacy -> canonical) for
// every renamed metric so existing consumers keep resolving old keys for
// one release (scripts/check_bench_bars.py applies it when loading).
//
// Exposition notes: histograms render as classic cumulative histograms over
// the native log-linear bucket bounds (obs/histogram.h) — only non-empty
// buckets plus the mandatory "+Inf" are emitted, which Prometheus accepts
// (le values strictly increase). StreamingStats render as summaries with
// their p50/p95 quantiles.

#ifndef CAQP_OBS_PROMETHEUS_H_
#define CAQP_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace caqp {
namespace obs {

enum class MetricKind { kCounter, kGauge, kStat, kHistogram };

/// Canonical exported name for a metric registered as `name`, per the rules
/// in the header comment.
std::string CanonicalMetricName(std::string_view name, MetricKind kind);

/// legacy -> canonical pairs for metrics whose canonical name differs.
using MetricAliases = std::vector<std::pair<std::string, std::string>>;

/// Rewrites every name in `snap` to its canonical form, recording renames
/// in `*aliases` (appended; pass nullptr to discard). Sort order by name is
/// preserved (re-sorted after renaming).
RegistrySnapshot CanonicalizeSnapshot(RegistrySnapshot snap,
                                      MetricAliases* aliases);

/// Merges `src` into `*dst` with ShardedRegistry semantics: counters sum,
/// gauges max, histograms bucket-merge. Stats keep the first-seen entry on
/// a name collision (reservoirs do not merge; prefer histograms across
/// registries). Used to combine the serving tier's ShardedRegistry with the
/// process-global DefaultRegistry for one scrape.
void MergeSnapshotInto(RegistrySnapshot* dst, const RegistrySnapshot& src);

/// Renders `snap` as Prometheus text exposition 0.0.4. Names in `snap` are
/// canonicalized here; callers pass raw snapshots.
std::string RenderPrometheusText(const RegistrySnapshot& snap);

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_PROMETHEUS_H_
