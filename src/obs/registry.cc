#include "obs/registry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace caqp {
namespace obs {

namespace {

uint64_t NextRandom(uint64_t& state) {
  // xorshift64*: deterministic, good enough for reservoir replacement.
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

}  // namespace

void StreamingStat::Record(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);

  if (reservoir_.size() < kReservoirCapacity) {
    reservoir_.push_back(x);
  } else {
    const uint64_t j = NextRandom(rng_) % n_;
    if (j < kReservoirCapacity) reservoir_[j] = x;
  }
}

double StreamingStat::stddev() const { return std::sqrt(variance()); }

double StreamingStat::Quantile(double q) const {
  if (reservoir_.empty()) return 0.0;
  CAQP_DCHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CAQP_DCHECK(gauges_.find(name) == gauges_.end());
  CAQP_DCHECK(stats_.find(name) == stats_.end());
  CAQP_DCHECK(histograms_.find(name) == histograms_.end());
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CAQP_DCHECK(counters_.find(name) == counters_.end());
  CAQP_DCHECK(stats_.find(name) == stats_.end());
  CAQP_DCHECK(histograms_.find(name) == histograms_.end());
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

StreamingStat& MetricsRegistry::GetStat(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CAQP_DCHECK(counters_.find(name) == counters_.end());
  CAQP_DCHECK(gauges_.find(name) == gauges_.end());
  CAQP_DCHECK(histograms_.find(name) == histograms_.end());
  std::unique_ptr<StreamingStat>& slot = stats_[name];
  if (!slot) slot = std::make_unique<StreamingStat>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CAQP_DCHECK(counters_.find(name) == counters_.end());
  CAQP_DCHECK(gauges_.find(name) == gauges_.end());
  CAQP_DCHECK(stats_.find(name) == stats_.end());
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.stats.reserve(stats_.size());
  for (const auto& [name, s] : stats_) {
    snap.stats.push_back({name, s->count(), s->mean(), s->variance(),
                          s->min(), s->max(), s->p50(), s->p95()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->Snapshot()});
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, s] : stats_) s->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

}  // namespace obs
}  // namespace caqp
