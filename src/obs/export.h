// Structured export: a dependency-free streaming JSON writer plus
// serializers for the obs data types (registry snapshots, planner stats,
// attribute profiles) and a human-readable markdown summary. Used by
// tools/caqp_plan --trace-out, tools/caqp_simulate --metrics-out, and the
// bench_* --json-out run files.

#ifndef CAQP_OBS_EXPORT_H_
#define CAQP_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "obs/planner_stats.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace caqp {

class Schema;  // core/schema.h; only names are read here.

namespace obs {

/// Minimal streaming JSON writer. Keys/values must be emitted in valid
/// order (Key before each value inside an object); CAQP_DCHECK enforces
/// nesting. Doubles print with enough digits to round-trip; non-finite
/// doubles emit null (JSON has no inf/nan).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view k);
  JsonWriter& String(std::string_view v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// The document so far; valid once every scope is closed.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();
  std::string out_;
  // Per open scope: true once the scope has at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string EscapeJson(std::string_view s);

/// Emits `snap` as {"counters":{...},"gauges":{...},"stats":{name:{...}},
/// "histograms":{name:{...}}}. Writer must be positioned where a value is
/// expected.
void WriteRegistrySnapshot(JsonWriter& w, const RegistrySnapshot& snap);

/// Emits a histogram snapshot as an object:
///   {"count":N,"sum":S,"min":m,"max":M,"mean":mu,
///    "p50":...,"p90":...,"p99":...,"p999":...,
///    "buckets":[[idx,count,lo,hi],...]}    // sparse: only non-empty buckets
/// Each bucket entry carries its [lo, hi) value bounds alongside the count
/// so exports are post-processable without knowledge of the bucket layout
/// (the overflow bucket's +inf bound serializes as null). Because every
/// Histogram shares the fixed layout (histogram.h), the sparse entries plus
/// count/sum/min/max also reconstruct the snapshot exactly (round-trip
/// tested in tests/obs_test.cc).
void WriteHistogram(JsonWriter& w, const HistogramSnapshot& hist);

/// Serializes a TraceRecorder as Chrome/Perfetto trace-event JSON
/// (https://ui.perfetto.dev opens it directly):
///   {"displayTimeUnit":"ms",
///    "traceEvents":[{"name","cat":"caqp","ph":"X","ts":us,"dur":us,
///                    "pid":1,"tid":worker,
///                    "args":{"trace_id","span_id","parent_id"}},...],
///    "caqpFlightRecorder":[{"trace_id","reason","worker","at_us",
///                           "events":[...]},...],
///    "caqpDroppedSpanEvents":N}
/// Spans nest in the viewer by time containment within a tid ("X" complete
/// events); args carry the exact parentage for programmatic consumers.
std::string TraceEventsToJson(const TraceRecorder& recorder);

/// As above, but over an explicit event list (the recorder still supplies
/// the worker count for thread names, the flight-recorder incidents, and
/// the drop counter). Used by UnifiedTraceToJson after a TraceJoin pass.
std::string TraceEventsToJson(const TraceRecorder& recorder,
                              const std::vector<SpanEvent>& events);

/// The dist-mode trace export: runs TraceJoin over the recorder's events so
/// shard spans land under their coordinator request span, then serializes
/// the joined stream as one Perfetto document. The document additionally
/// carries a "caqpTraceJoin" summary (per-trace root span, adopted-orphan
/// and duplicate-id counts) so CI can validate the join without replaying
/// the parentage walk.
std::string UnifiedTraceToJson(const TraceRecorder& recorder);

/// Emits `stats` as an object of its non-identifying fields.
void WritePlannerStats(JsonWriter& w, const PlannerStats& stats);

/// Emits a per-attribute acquisition histogram. If `schema` is non-null
/// attribute names are included.
void WriteAttributeProfile(JsonWriter& w, const AttributeProfile& profile,
                           const Schema* schema);

/// One-call helpers over the default registry.
std::string RegistryToJson(const MetricsRegistry& registry);

/// Human-readable markdown tables (counters / gauges / stats) for terminal
/// summaries.
std::string RegistryToMarkdown(const MetricsRegistry& registry);

/// Appends one line to `path` (creating parent dirs is the caller's job).
/// Returns false on I/O failure. The line must be a complete JSON value.
bool AppendJsonLine(const std::string& path, const std::string& json);

/// Overwrites `path` with `content`. Returns false on I/O failure.
bool WriteFileOrComplain(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_EXPORT_H_
