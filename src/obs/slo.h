// obs::SloMonitor — multi-window burn-rate tracking for the serving tier.
//
// Two SLOs, following the classic error-budget formulation:
//
//  * availability — fraction of requests that return a *usable* answer:
//    status OK and a defined (non-Unknown) verdict. Degradation that turns
//    answers into Unknown (dead shards, fault storms, load shedding)
//    consumes availability budget even though the request "succeeded".
//  * latency — fraction of requests finishing under a threshold.
//
// Burn rate = (observed error fraction) / (1 - target): 1.0 means the error
// budget is being consumed exactly at the sustainable rate; 10 means the
// budget burns 10x too fast. An alert fires only when BOTH a fast and a
// slow window exceed their thresholds (the Google SRE multi-window rule):
// the fast window makes detection prompt, the slow window suppresses blips.
// Production policies use 5m/1h windows; the defaults here are scaled to
// bench time (seconds) and fully configurable for real deployments.
//
// Implementation: a ring of time buckets with relaxed-atomic counters.
// Recording is lock-free (a few relaxed RMWs); burn evaluation walks the
// ring, and is amortized by only running every check_interval-th record.
// A bucket that falls out of the slow window is lazily re-epoched by the
// first writer that lands on it; concurrent readers may observe a bucket
// mid-reset, which can transiently under-count one bucket — acceptable for
// an alerting signal, and why firing additionally requires
// min_window_requests.
//
// The on_burn hook runs synchronously on the recording thread (a serve
// worker), so it must be cheap and thread-safe: QueryService wires it to a
// counter bump, a flight-recorder incident dump, and arming its
// burn-shedding window. Consecutive fires are separated by cooloff_ns.

#ifndef CAQP_OBS_SLO_H_
#define CAQP_OBS_SLO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>

namespace caqp {
namespace obs {

class SloMonitor {
 public:
  /// Which SLO tripped. Values double as indices into internal arrays.
  enum class Slo : int { kAvailability = 0, kLatency = 1 };

  struct BurnEvent {
    Slo slo = Slo::kAvailability;
    double fast_burn = 0.0;  ///< burn rate over the fast window
    double slow_burn = 0.0;  ///< burn rate over the slow window
    uint64_t at_ns = 0;      ///< monotonic fire time
  };

  struct Options {
    /// Availability SLO target: fraction of requests with a usable answer.
    double availability_target = 0.999;
    /// Latency SLO: this fraction of requests under the threshold.
    double latency_target = 0.99;
    double latency_threshold_seconds = 0.100;
    /// Multi-window pair, in monotonic nanoseconds. Production shapes are
    /// 5m/1h; the defaults scale that 60:1 down to 5s/60s so bench runs and
    /// tests exercise real window arithmetic in seconds.
    uint64_t fast_window_ns = 5ull * 1000 * 1000 * 1000;
    uint64_t slow_window_ns = 60ull * 1000 * 1000 * 1000;
    /// Burn-rate thresholds per window (14.4/6 are the canonical page-level
    /// numbers for 5m/1h on a 30d budget).
    double fast_burn_threshold = 14.4;
    double slow_burn_threshold = 6.0;
    /// Never fire before this many requests sit in the fast window.
    uint64_t min_window_requests = 32;
    /// Minimum spacing between fires of the same SLO.
    uint64_t cooloff_ns = 5ull * 1000 * 1000 * 1000;
    /// Evaluate burn every this-many records (amortizes the ring walk).
    uint64_t check_interval = 64;
    /// Fired on the recording thread; must be cheap and thread-safe.
    std::function<void(const BurnEvent&)> on_burn;
  };

  /// Point-in-time burn view, exported as gauges on /metrics.
  struct Snapshot {
    uint64_t requests_fast = 0;  ///< requests in the fast window
    uint64_t requests_slow = 0;
    double availability_ratio = 1.0;  ///< over the slow window
    double availability_fast_burn = 0.0;
    double availability_slow_burn = 0.0;
    double latency_ratio = 1.0;  ///< fraction under threshold, slow window
    double latency_fast_burn = 0.0;
    double latency_slow_burn = 0.0;
    uint64_t burns_fired = 0;
  };

  explicit SloMonitor(Options options);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Records one finished request. `available` is "usable answer" as
  /// defined above; `now_ns` is the monotonic completion tick (passed in so
  /// callers who already read the clock don't read it twice). Thread-safe,
  /// lock-free; every check_interval-th call evaluates the burn windows and
  /// may invoke on_burn.
  void RecordRequest(uint64_t now_ns, bool available, double latency_seconds);

  /// Evaluates both SLOs' windows now (also called from RecordRequest).
  void Evaluate(uint64_t now_ns);

  Snapshot GetSnapshot(uint64_t now_ns) const;

  uint64_t burns_fired() const {
    return burns_fired_.load(std::memory_order_relaxed);
  }

  static const char* SloName(Slo slo) {
    return slo == Slo::kAvailability ? "availability" : "latency";
  }

 private:
  /// Ring resolution: the slow window is split into this many buckets; the
  /// fast window covers ceil(fast/slow * kBuckets) of them (>= 1).
  static constexpr size_t kBuckets = 64;

  struct alignas(64) Bucket {
    std::atomic<uint64_t> epoch{~0ull};  ///< now_ns / bucket_width_ owner
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> unavailable{0};
    std::atomic<uint64_t> slow{0};  ///< over the latency threshold
  };

  struct WindowCounts {
    uint64_t fast_total = 0, fast_bad = 0;
    uint64_t slow_total = 0, slow_bad = 0;
  };

  Bucket& BucketFor(uint64_t now_ns);
  WindowCounts Count(uint64_t now_ns, Slo slo) const;
  static double Burn(uint64_t bad, uint64_t total, double target);

  const Options options_;
  uint64_t bucket_width_ns_ = 1;
  size_t fast_buckets_ = 1;
  std::array<Bucket, kBuckets> ring_;
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> burns_fired_{0};
  std::array<std::atomic<uint64_t>, 2> last_fire_ns_{};  // per Slo
};

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_SLO_H_
