#include "obs/sharded_registry.h"

#include <algorithm>
#include <map>

namespace caqp {
namespace obs {

namespace {

// Chan et al. parallel update of (count, mean, M2); exact in exact
// arithmetic, numerically stable for the shard counts we see in practice.
struct Moments {
  uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Merge(uint64_t on, double omean, double om2) {
    if (on == 0) return;
    if (n == 0) {
      n = on;
      mean = omean;
      m2 = om2;
      return;
    }
    const double delta = omean - mean;
    const double total = static_cast<double>(n + on);
    mean += delta * static_cast<double>(on) / total;
    m2 += om2 + delta * delta * static_cast<double>(n) *
                    static_cast<double>(on) / total;
    n += on;
  }
};

}  // namespace

ShardedRegistry::ShardedRegistry(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<MetricsRegistry>());
  }
}

RegistrySnapshot ShardedRegistry::Snapshot() const {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  struct StatAgg {
    Moments moments;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    // Quantiles come from the most populated shard: reservoir samples are
    // not mergeable, and the biggest shard is the least biased stand-in.
    uint64_t best_n = 0;
    double p50 = 0.0;
    double p95 = 0.0;
  };
  std::map<std::string, StatAgg> stats;

  for (const auto& shard : shards_) {
    const RegistrySnapshot snap = shard->Snapshot();
    for (const auto& c : snap.counters) counters[c.name] += c.value;
    for (const auto& g : snap.gauges) {
      auto [it, inserted] = gauges.emplace(g.name, g.value);
      if (!inserted) it->second = std::max(it->second, g.value);
    }
    for (const auto& h : snap.histograms) histograms[h.name].Merge(h.hist);
    for (const auto& s : snap.stats) {
      StatAgg& agg = stats[s.name];
      if (s.count > 0) {
        agg.min = agg.moments.n == 0 ? s.min : std::min(agg.min, s.min);
        agg.max = agg.moments.n == 0 ? s.max : std::max(agg.max, s.max);
      }
      agg.moments.Merge(s.count, s.mean,
                        s.variance * static_cast<double>(s.count));
      agg.sum += s.mean * static_cast<double>(s.count);
      if (s.count > agg.best_n) {
        agg.best_n = s.count;
        agg.p50 = s.p50;
        agg.p95 = s.p95;
      }
    }
  }

  RegistrySnapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) out.counters.push_back({name, value});
  out.gauges.reserve(gauges.size());
  for (const auto& [name, value] : gauges) out.gauges.push_back({name, value});
  out.stats.reserve(stats.size());
  for (const auto& [name, agg] : stats) {
    const uint64_t n = agg.moments.n;
    out.stats.push_back({name, static_cast<size_t>(n), agg.moments.mean,
                         n ? agg.moments.m2 / static_cast<double>(n) : 0.0,
                         agg.min, agg.max, agg.p50, agg.p95});
  }
  out.histograms.reserve(histograms.size());
  for (const auto& [name, hist] : histograms) {
    out.histograms.push_back({name, hist});
  }
  return out;
}

uint64_t ShardedRegistry::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const RegistrySnapshot snap = shard->Snapshot();
    for (const auto& c : snap.counters) {
      if (c.name == name) total += c.value;
    }
  }
  return total;
}

HistogramSnapshot ShardedRegistry::HistogramTotal(
    const std::string& name) const {
  HistogramSnapshot total;
  for (const auto& shard : shards_) {
    const RegistrySnapshot snap = shard->Snapshot();
    for (const auto& h : snap.histograms) {
      if (h.name == name) total.Merge(h.hist);
    }
  }
  return total;
}

void ShardedRegistry::ResetAll() {
  for (const auto& shard : shards_) shard->ResetAll();
}

}  // namespace obs
}  // namespace caqp
