#include "obs/calibration.h"

#include <array>
#include <utility>

#include "core/schema.h"
#include "obs/export.h"

namespace caqp {
namespace obs {

namespace {

uint64_t SubSat(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }
double SubSatD(double a, double b) { return a > b ? a - b : 0.0; }

const char* KindName(PlanNode::Kind k) {
  switch (k) {
    case PlanNode::Kind::kSplit:
      return "split";
    case PlanNode::Kind::kVerdict:
      return "verdict";
    case PlanNode::Kind::kSequential:
      return "sequential";
    case PlanNode::Kind::kGeneric:
      return "generic";
  }
  return "?";
}

}  // namespace

double CalibrationReport::regret() const {
  double realized = 0.0, predicted = 0.0;
  uint64_t execs = 0;
  for (const PlanCalibration& p : plans) {
    if (!p.has_estimates || p.executions == 0) continue;
    realized += p.realized_cost;
    predicted += static_cast<double>(p.executions) * p.predicted_cost;
    execs += p.executions;
  }
  return execs > 0 ? (realized - predicted) / static_cast<double>(execs)
                   : 0.0;
}

double CalibrationReport::MaxDrift(uint64_t min_evals) const {
  double max_drift = 0.0;
  for (const AttrCalibration& a : attrs) {
    if (a.evals < min_evals) continue;
    max_drift = std::max(max_drift, a.drift());
  }
  return max_drift;
}

uint64_t CalibrationReport::TotalAttrEvals() const {
  uint64_t total = 0;
  for (const AttrCalibration& a : attrs) total += a.evals;
  return total;
}

CalibrationReport CalibrationReport::DeltaSince(
    const CalibrationReport& prev) const {
  CalibrationReport out;

  std::unordered_map<CalibrationKey, const PlanCalibration*,
                     CalibrationKeyHash>
      prev_plans;
  prev_plans.reserve(prev.plans.size());
  for (const PlanCalibration& p : prev.plans) prev_plans[p.key] = &p;

  for (const PlanCalibration& cur : plans) {
    const auto it = prev_plans.find(cur.key);
    const PlanCalibration* old = it == prev_plans.end() ? nullptr : it->second;
    PlanCalibration d = cur;
    if (old != nullptr) {
      d.executions = SubSat(cur.executions, old->executions);
      d.unknown_executions =
          SubSat(cur.unknown_executions, old->unknown_executions);
      d.acquisitions = SubSat(cur.acquisitions, old->acquisitions);
      d.realized_cost = SubSatD(cur.realized_cost, old->realized_cost);
      for (size_t i = 0; i < d.nodes.size(); ++i) {
        if (i >= old->nodes.size()) break;
        d.nodes[i].evals = SubSat(cur.nodes[i].evals, old->nodes[i].evals);
        d.nodes[i].passes = SubSat(cur.nodes[i].passes, old->nodes[i].passes);
        d.nodes[i].unknowns =
            SubSat(cur.nodes[i].unknowns, old->nodes[i].unknowns);
      }
    }
    if (d.executions == 0) continue;  // no activity this window
    out.executions += d.executions;
    out.realized_cost += d.realized_cost;
    if (d.has_estimates) {
      out.predicted_cost +=
          static_cast<double>(d.executions) * d.predicted_cost;
    }
    out.plans.push_back(std::move(d));
  }

  std::unordered_map<AttrId, const AttrCalibration*> prev_attrs;
  prev_attrs.reserve(prev.attrs.size());
  for (const AttrCalibration& a : prev.attrs) prev_attrs[a.attr] = &a;
  for (const AttrCalibration& cur : attrs) {
    const auto it = prev_attrs.find(cur.attr);
    const AttrCalibration* old = it == prev_attrs.end() ? nullptr : it->second;
    AttrCalibration d = cur;
    if (old != nullptr) {
      d.evals = SubSat(cur.evals, old->evals);
      d.passes = SubSat(cur.passes, old->passes);
      d.predicted_evals = SubSatD(cur.predicted_evals, old->predicted_evals);
      d.predicted_passes =
          SubSatD(cur.predicted_passes, old->predicted_passes);
    }
    if (d.evals == 0 && d.predicted_evals <= 0) continue;
    out.attrs.push_back(d);
  }
  return out;
}

std::string CalibrationReportToJson(const CalibrationReport& report,
                                    const Schema* schema) {
  JsonWriter w;
  w.BeginObject();
  w.Key("executions").UInt(report.executions);
  w.Key("realized_cost").Double(report.realized_cost);
  w.Key("predicted_cost").Double(report.predicted_cost);
  w.Key("regret").Double(report.regret());
  w.Key("max_drift").Double(report.MaxDrift());
  w.Key("plans").BeginArray();
  for (const PlanCalibration& p : report.plans) {
    w.BeginObject();
    w.Key("query_sig").UInt(p.key.query_sig);
    w.Key("estimator_version").UInt(p.key.estimator_version);
    w.Key("planner_fingerprint").UInt(p.key.planner_fingerprint);
    w.Key("executions").UInt(p.executions);
    w.Key("unknown_executions").UInt(p.unknown_executions);
    w.Key("acquisitions").UInt(p.acquisitions);
    w.Key("has_estimates").Bool(p.has_estimates);
    w.Key("predicted_cost").Double(p.predicted_cost);
    if (p.has_cost_bounds) {
      w.Key("predicted_cost_lo").Double(p.predicted_cost_lo);
      w.Key("predicted_cost_hi").Double(p.predicted_cost_hi);
    }
    w.Key("realized_mean_cost").Double(p.realized_mean_cost());
    w.Key("regret").Double(p.regret());
    w.Key("nodes").BeginArray();
    for (const NodeCalibration& n : p.nodes) {
      w.BeginObject();
      w.Key("node").UInt(n.node);
      w.Key("kind").String(KindName(n.kind));
      if (n.attr != kInvalidAttr) {
        w.Key("attr").UInt(n.attr);
        if (schema != nullptr) w.Key("name").String(schema->name(n.attr));
      }
      w.Key("predicted_reach").Double(n.predicted_reach);
      if (n.predicted_pass >= 0) {
        w.Key("predicted_pass").Double(n.predicted_pass);
      }
      w.Key("evals").UInt(n.evals);
      w.Key("passes").UInt(n.passes);
      w.Key("unknowns").UInt(n.unknowns);
      if (n.has_observation()) {
        w.Key("observed_pass").Double(n.observed_pass());
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("attrs").BeginArray();
  for (const AttrCalibration& a : report.attrs) {
    w.BeginObject();
    w.Key("attr").UInt(a.attr);
    if (schema != nullptr) w.Key("name").String(schema->name(a.attr));
    w.Key("evals").UInt(a.evals);
    w.Key("passes").UInt(a.passes);
    w.Key("predicted_evals").Double(a.predicted_evals);
    w.Key("predicted_passes").Double(a.predicted_passes);
    w.Key("observed_pass_rate").Double(a.observed_pass_rate());
    w.Key("predicted_pass_rate").Double(a.predicted_pass_rate());
    w.Key("drift").Double(a.drift());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

CalibrationAggregator::CalibrationAggregator(size_t num_shards) {
  shards_.reserve(std::max<size_t>(1, num_shards));
  for (size_t i = 0; i < std::max<size_t>(1, num_shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ExecutionProfile* CalibrationAggregator::Profile(
    size_t worker, const CalibrationKey& key,
    std::shared_ptr<const CompiledPlan> plan) {
  Shard& shard = *shards_[worker % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    const size_t num_nodes = plan != nullptr ? plan->NumNodes() : 1;
    it = shard.entries
             .emplace(key,
                      std::make_unique<Entry>(std::move(plan), num_nodes))
             .first;
  }
  return &it->second->profile;
}

CalibrationReport CalibrationAggregator::Snapshot() const {
  struct Merged {
    std::shared_ptr<const CompiledPlan> plan;
    ExecutionProfileSnapshot snap;
  };
  std::unordered_map<CalibrationKey, Merged, CalibrationKeyHash> merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      Merged& m = merged[key];
      if (m.plan == nullptr) m.plan = entry->plan;
      m.snap.MergeFrom(entry->profile.Snapshot());
    }
  }

  CalibrationReport report;
  std::array<AttrCalibration, 64> attrs{};
  for (auto& [key, m] : merged) {
    const PlanEstimates* est =
        m.plan != nullptr ? m.plan->estimates() : nullptr;
    PlanCalibration pc;
    pc.key = key;
    pc.executions = m.snap.executions;
    pc.unknown_executions = m.snap.unknown_executions;
    pc.acquisitions = m.snap.acquisitions;
    pc.realized_cost = m.snap.realized_cost;
    pc.has_estimates = est != nullptr;
    pc.predicted_cost = est != nullptr ? est->expected_cost : 0.0;
    if (est != nullptr && est->has_cost_bounds) {
      pc.has_cost_bounds = true;
      pc.predicted_cost_lo = est->cost_lo;
      pc.predicted_cost_hi = est->cost_hi;
    }
    const size_t num_nodes = m.plan != nullptr ? m.plan->NumNodes() : 0;
    pc.nodes.reserve(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i) {
      const CompiledPlan::Node& node = m.plan->node(i);
      NodeCalibration nc;
      nc.node = i;
      nc.kind = node.kind;
      if (node.kind == PlanNode::Kind::kSplit) nc.attr = node.attr;
      if (est != nullptr && i < est->nodes.size()) {
        nc.predicted_reach = est->nodes[i].reach;
        nc.predicted_pass = est->nodes[i].pass;
      }
      if (i < m.snap.nodes.size()) {
        nc.evals = m.snap.nodes[i].evals;
        nc.passes = m.snap.nodes[i].passes;
        nc.unknowns = m.snap.nodes[i].unknowns;
      }
      pc.nodes.push_back(nc);
    }

    report.executions += pc.executions;
    report.realized_cost += pc.realized_cost;
    if (pc.has_estimates) {
      report.predicted_cost +=
          static_cast<double>(pc.executions) * pc.predicted_cost;
    }
    for (size_t a = 0; a < attrs.size(); ++a) {
      attrs[a].evals += m.snap.attr_evals[a];
      attrs[a].passes += m.snap.attr_passes[a];
      if (est != nullptr) {
        attrs[a].predicted_evals += static_cast<double>(pc.executions) *
                                    est->attr_eval_rate[a];
        attrs[a].predicted_passes += static_cast<double>(pc.executions) *
                                     est->attr_pass_rate[a];
      }
    }
    report.plans.push_back(std::move(pc));
  }

  // Deterministic output order (unordered_map iteration is not).
  std::sort(report.plans.begin(), report.plans.end(),
            [](const PlanCalibration& a, const PlanCalibration& b) {
              if (a.key.query_sig != b.key.query_sig) {
                return a.key.query_sig < b.key.query_sig;
              }
              if (a.key.estimator_version != b.key.estimator_version) {
                return a.key.estimator_version < b.key.estimator_version;
              }
              return a.key.planner_fingerprint < b.key.planner_fingerprint;
            });
  for (size_t a = 0; a < attrs.size(); ++a) {
    if (attrs[a].evals == 0 && attrs[a].predicted_evals <= 0) continue;
    attrs[a].attr = static_cast<AttrId>(a);
    report.attrs.push_back(attrs[a]);
  }
  return report;
}

}  // namespace obs
}  // namespace caqp
