// caqp::obs — observability switchboard.
//
// Instrumentation across the library (planner tracing, executor traces,
// network counters) is toggleable at two levels:
//
//  * Compile time: the CMake option CAQP_ENABLE_OBS (default ON) defines
//    CAQP_OBS_ENABLED to 1/0. When 0 every CAQP_OBS_* macro below compiles
//    to nothing, so hot paths carry zero instrumentation cost.
//  * Run time: obs::SetEnabled(false) turns the macros into a single
//    relaxed atomic load + untaken branch (verified < 5% ExecutePlan
//    overhead by bench/bench_obs_overhead.cc).
//
// The macros funnel into the process-wide DefaultRegistry() (registry.h).
// Each macro caches its metric pointer in a function-local static, so the
// by-name lookup happens once per call site, never on the hot path.

#ifndef CAQP_OBS_OBS_H_
#define CAQP_OBS_OBS_H_

#include <atomic>
#include <cstdint>

#ifndef CAQP_OBS_ENABLED
#define CAQP_OBS_ENABLED 1
#endif

namespace caqp {
namespace obs {

namespace internal {
// Single process-wide runtime switch; relaxed is fine (monotonic flag reads
// on hot paths, writes only from test/tool setup code). An inline variable
// (constant-initialized) rather than a function-local static: readers must
// not pay an initialization-guard check per call.
inline std::atomic<bool> g_enabled{true};
}  // namespace internal

/// Runtime master switch for the CAQP_OBS_* macros.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace caqp

#if CAQP_OBS_ENABLED

// These macros require registry.h to be included by the instrumented file.
// The Enabled() test comes first so the disabled path is one relaxed load
// and an untaken branch — in particular no static-initialization guard.
// The metric reference is then cached per call site; the by-name lookup
// runs once, on the first enabled hit.
#define CAQP_OBS_COUNTER_ADD(name, n)                                    \
  do {                                                                   \
    if (::caqp::obs::Enabled()) {                                        \
      static ::caqp::obs::Counter& caqp_obs_c =                          \
          ::caqp::obs::DefaultRegistry().GetCounter(name);               \
      caqp_obs_c.Add(n);                                                 \
    }                                                                    \
  } while (0)

#define CAQP_OBS_COUNTER_INC(name) CAQP_OBS_COUNTER_ADD(name, 1)

#define CAQP_OBS_GAUGE_SET(name, v)                                      \
  do {                                                                   \
    if (::caqp::obs::Enabled()) {                                        \
      static ::caqp::obs::Gauge& caqp_obs_g =                            \
          ::caqp::obs::DefaultRegistry().GetGauge(name);                 \
      caqp_obs_g.Set(v);                                                 \
    }                                                                    \
  } while (0)

#define CAQP_OBS_STAT_RECORD(name, v)                                    \
  do {                                                                   \
    if (::caqp::obs::Enabled()) {                                        \
      static ::caqp::obs::StreamingStat& caqp_obs_s =                    \
          ::caqp::obs::DefaultRegistry().GetStat(name);                  \
      caqp_obs_s.Record(v);                                              \
    }                                                                    \
  } while (0)

#define CAQP_OBS_HIST_RECORD(name, v)                                    \
  do {                                                                   \
    if (::caqp::obs::Enabled()) {                                        \
      static ::caqp::obs::Histogram& caqp_obs_h =                        \
          ::caqp::obs::DefaultRegistry().GetHistogram(name);             \
      caqp_obs_h.Record(v);                                              \
    }                                                                    \
  } while (0)

#else  // !CAQP_OBS_ENABLED

// sizeof() keeps the operands syntactically used (no -Wunused warnings for
// values computed only for instrumentation) without evaluating them.
#define CAQP_OBS_COUNTER_ADD(name, n) \
  do {                                \
    (void)sizeof(n);                  \
  } while (0)
#define CAQP_OBS_COUNTER_INC(name) \
  do {                             \
  } while (0)
#define CAQP_OBS_GAUGE_SET(name, v) \
  do {                              \
    (void)sizeof(v);                \
  } while (0)
#define CAQP_OBS_STAT_RECORD(name, v) \
  do {                                \
    (void)sizeof(v);                  \
  } while (0)
#define CAQP_OBS_HIST_RECORD(name, v) \
  do {                                \
    (void)sizeof(v);                  \
  } while (0)

#endif  // CAQP_OBS_ENABLED

#endif  // CAQP_OBS_OBS_H_
