// ShardedRegistry — per-worker metric shards with snapshot-time aggregation.
//
// The process-global DefaultRegistry() is fine for cold paths, but on the
// serving hot path every worker bumping the same Counter atomics turns one
// cache line into a coherence hot spot. A ShardedRegistry gives each worker
// its own MetricsRegistry shard: hot-path writers resolve their metric refs
// once per worker (QueryService prefetches them into a per-worker struct)
// and thereafter touch only worker-local cache lines. Snapshot() merges the
// shards into one RegistrySnapshot.
//
// Merge semantics (documented because they are visible in exports):
//  * counters — summed.
//  * gauges   — max across shards (gauges record high-water marks on the
//               serve path; a sum of last-written values is meaningless).
//  * histograms — bucket-wise merge; quantiles over the merged snapshot are
//               exact up to bucket resolution, identical to a single
//               histogram fed every sample.
//  * stats    — count/sum/mean/variance merged exactly via Chan's parallel
//               moments formula; p50/p95 are taken from the largest-count
//               shard (reservoirs cannot be merged without bias). Prefer
//               histograms for cross-shard quantiles.

#ifndef CAQP_OBS_SHARDED_REGISTRY_H_
#define CAQP_OBS_SHARDED_REGISTRY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace caqp {
namespace obs {

class ShardedRegistry {
 public:
  explicit ShardedRegistry(size_t num_shards);

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// The shard owned by `worker` (modulo the shard count). References
  /// obtained from it stay valid for the registry's lifetime.
  MetricsRegistry& shard(size_t worker) {
    return *shards_[worker % shards_.size()];
  }
  const MetricsRegistry& shard(size_t worker) const {
    return *shards_[worker % shards_.size()];
  }

  /// Merged view of every shard, per the semantics in the header comment.
  RegistrySnapshot Snapshot() const;

  /// Sum of one counter across all shards (0 if never registered).
  uint64_t CounterTotal(const std::string& name) const;

  /// Bucket-wise merge of one histogram across all shards (empty snapshot
  /// if never registered).
  HistogramSnapshot HistogramTotal(const std::string& name) const;

  void ResetAll();

 private:
  std::vector<std::unique_ptr<MetricsRegistry>> shards_;
};

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_SHARDED_REGISTRY_H_
