#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace caqp {
namespace obs {

size_t HistogramBucketIndex(double v) {
  if (!(v >= std::ldexp(1.0, kHistMinExp))) return 0;  // NaN/negative too
  if (v >= std::ldexp(1.0, kHistMaxExp)) return kHistNumBuckets - 1;
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant in [0.5,1)
  const int octave = (exp - 1) - kHistMinExp;  // lower bound 2^(exp-1)
  int sub = static_cast<int>((mant - 0.5) * 2.0 * kHistSubBuckets);
  sub = std::clamp(sub, 0, kHistSubBuckets - 1);
  return 1 + static_cast<size_t>(octave) * kHistSubBuckets +
         static_cast<size_t>(sub);
}

double HistogramBucketLowerBound(size_t idx) {
  if (idx == 0) return 0.0;
  if (idx >= kHistNumBuckets - 1) return std::ldexp(1.0, kHistMaxExp);
  const size_t k = idx - 1;
  const int octave = static_cast<int>(k / kHistSubBuckets);
  const int sub = static_cast<int>(k % kHistSubBuckets);
  return std::ldexp(1.0 + static_cast<double>(sub) / kHistSubBuckets,
                    kHistMinExp + octave);
}

double HistogramBucketUpperBound(size_t idx) {
  if (idx == 0) return std::ldexp(1.0, kHistMinExp);
  if (idx >= kHistNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return HistogramBucketLowerBound(idx + 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kHistNumBuckets; ++i) buckets[i] += other.buckets[i];
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]; walk the cumulative distribution to its bucket.
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < kHistNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) < target) continue;
    // Interpolate linearly inside the bucket; the under/overflow buckets
    // have no finite width, so the min/max clamp below pins them.
    const double frac =
        (target - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
    double lo = HistogramBucketLowerBound(i);
    double hi = HistogramBucketUpperBound(i);
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (!(hi > lo)) return std::clamp(lo, min, max);
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;
}

Histogram::Histogram()
    : count_(0),
      sum_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  if (std::isnan(v)) return;
  buckets_[HistogramBucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  for (size_t i = 0; i < kHistNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::MergeFrom(const HistogramSnapshot& snap) {
  if (snap.count == 0) return;
  for (size_t i = 0; i < kHistNumBuckets; ++i) {
    if (snap.buckets[i]) {
      buckets_[i].fetch_add(snap.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snap.count, std::memory_order_relaxed);
  sum_.fetch_add(snap.sum, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (snap.min < seen && !min_.compare_exchange_weak(
                                seen, snap.min, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (snap.max > seen && !max_.compare_exchange_weak(
                                seen, snap.max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace caqp
