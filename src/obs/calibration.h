// CalibrationAggregator — predicted-vs-observed plan-quality accounting.
//
// The planner half of the system believes things (plan/plan_estimates.h:
// per-node reach/pass/cost under the estimator that built the plan); the
// executor half observes things (exec/exec_profile.h: per-node
// eval/pass/unknown counters and realized acquisition cost). This module
// joins the two per (query signature, estimator version, planner
// fingerprint) — the same identity the serve plan cache keys on — and folds
// the join into a CalibrationReport:
//
//  * per-plan: predicted vs realized mean acquisition cost, and their
//    difference ("regret": positive means the plan runs more expensive than
//    the estimator promised);
//  * per-node: predicted pass probability vs the observed pass fraction;
//  * per-attribute drift scores: |observed pass rate − predicted pass rate|
//    over all predicate evaluations of that attribute, the signal that
//    tells the serve layer "the distribution this estimator was trained on
//    has moved" (see serve::DriftPolicy).
//
// Sharding mirrors ShardedRegistry: each worker owns a shard, so hot-path
// counter updates (inside ExecutionProfile) are relaxed atomics on
// worker-local cache lines with no cross-worker contention. The per-shard
// mutex guards only the entry map — taken once per request to resolve the
// profile, and by Snapshot(); it is uncontended in steady state. Snapshot()
// may run concurrently with writers: it reads relaxed counters and
// tolerates momentarily inconsistent values (report math saturates; the
// TSan suite exercises snapshot-during-update).
//
// Windowing: reports are cumulative. DeltaSince(prev) subtracts a previous
// cumulative report (saturating, keyed by plan/attr identity) to get a
// per-window view — what DriftPolicy evaluates per snapshot interval.

#ifndef CAQP_OBS_CALIBRATION_H_
#define CAQP_OBS_CALIBRATION_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "exec/exec_profile.h"
#include "plan/compiled_plan.h"
#include "plan/plan_estimates.h"

namespace caqp {

class Schema;  // core/schema.h; only names are read here.

namespace obs {

/// Plan identity for calibration purposes — field-for-field the serve plan
/// cache key (serve/plan_cache.h), so calibration rows join 1:1 against
/// cache entries and flight-recorder metadata.
struct CalibrationKey {
  uint64_t query_sig = 0;
  uint64_t estimator_version = 0;
  uint64_t planner_fingerprint = 0;

  bool operator==(const CalibrationKey&) const = default;
};

struct CalibrationKeyHash {
  size_t operator()(const CalibrationKey& k) const {
    size_t h = HashCombine(k.query_sig, k.estimator_version);
    return HashCombine(h, k.planner_fingerprint);
  }
};

/// One plan node's predicted-vs-observed row.
struct NodeCalibration {
  uint32_t node = 0;
  PlanNode::Kind kind = PlanNode::Kind::kVerdict;
  AttrId attr = kInvalidAttr;  ///< split attribute; kInvalidAttr for leaves
  double predicted_reach = 0.0;
  double predicted_pass = -1.0;  ///< -1: no estimate (see plan_estimates.h)
  uint64_t evals = 0;
  uint64_t passes = 0;
  uint64_t unknowns = 0;

  /// True once the node has at least one defined (non-unknown) evaluation.
  bool has_observation() const { return evals > unknowns; }
  /// Observed pass fraction over defined evaluations, clamped to [0, 1]
  /// (relaxed snapshots can momentarily disagree between counters).
  double observed_pass() const {
    if (!has_observation()) return 0.0;
    return std::min(1.0, static_cast<double>(passes) /
                             static_cast<double>(evals - unknowns));
  }
};

/// Predicted-vs-observed summary for one (signature, estimator version,
/// planner fingerprint) plan.
struct PlanCalibration {
  CalibrationKey key;
  uint64_t executions = 0;
  uint64_t unknown_executions = 0;
  uint64_t acquisitions = 0;
  /// Whether the plan carried PlanEstimates (deserialized or hand-compiled
  /// plans may not); predicted_* fields are meaningless without it.
  bool has_estimates = false;
  double predicted_cost = 0.0;  ///< expected acquisition cost per execution
  double realized_cost = 0.0;   ///< total over all executions
  /// Interval cost promise for plans built under an uncertainty box
  /// (opt::StampEstimatesWithBox): the robust plan promised a per-execution
  /// cost in [predicted_cost_lo, predicted_cost_hi]; a realized mean cost
  /// outside the interval means the box itself was wrong.
  bool has_cost_bounds = false;
  double predicted_cost_lo = 0.0;
  double predicted_cost_hi = 0.0;
  std::vector<NodeCalibration> nodes;

  double realized_mean_cost() const {
    return executions > 0 ? realized_cost / static_cast<double>(executions)
                          : 0.0;
  }
  /// Realized minus predicted mean cost; positive: plan runs hotter than
  /// promised. 0 until the plan has executions and estimates.
  double regret() const {
    return (executions > 0 && has_estimates)
               ? realized_mean_cost() - predicted_cost
               : 0.0;
  }
};

/// Per-attribute drift row: all predicate evaluations of `attr` across all
/// plans, observed vs what the producing estimators predicted.
struct AttrCalibration {
  AttrId attr = kInvalidAttr;
  uint64_t evals = 0;
  uint64_t passes = 0;
  double predicted_evals = 0.0;   ///< Σ executions × attr_eval_rate
  double predicted_passes = 0.0;  ///< Σ executions × attr_pass_rate

  double observed_pass_rate() const {
    return evals > 0 ? std::min(1.0, static_cast<double>(passes) /
                                         static_cast<double>(evals))
                     : 0.0;
  }
  double predicted_pass_rate() const {
    return predicted_evals > 0 ? std::min(1.0, predicted_passes /
                                                   predicted_evals)
                               : 0.0;
  }
  /// Signed calibration gap: observed minus predicted pass rate, in
  /// [-1, 1]. Positive: the predicate passes more often than predicted.
  /// 0 until both sides have data. The sign is what turns a drift score
  /// into a *directional* uncertainty interval
  /// (opt::UncertaintyBox::FromCalibration).
  double signed_drift() const {
    if (evals == 0 || predicted_evals <= 0) return 0.0;
    return observed_pass_rate() - predicted_pass_rate();
  }
  /// Drift score: |observed − predicted| pass rate in [0, 1]. 0 until both
  /// sides have data (zero-eval attributes and estimate-less plans never
  /// report drift).
  double drift() const {
    const double d = signed_drift();
    return d < 0 ? -d : d;
  }
};

struct CalibrationReport {
  std::vector<PlanCalibration> plans;
  std::vector<AttrCalibration> attrs;  ///< only attributes with any data
  uint64_t executions = 0;
  double realized_cost = 0.0;
  /// Σ over plans of executions × per-execution predicted cost (plans
  /// without estimates contribute their executions but no predicted cost).
  double predicted_cost = 0.0;

  /// Aggregate regret per execution across all calibrated plans.
  double regret() const;
  /// Largest per-attribute drift() among attributes with at least
  /// `min_evals` observed evaluations this report.
  double MaxDrift(uint64_t min_evals = 1) const;
  /// Observed evaluations summed over every attribute row.
  uint64_t TotalAttrEvals() const;
  /// This report minus `prev` (both cumulative), saturating at zero —
  /// the per-window view DriftPolicy consumes. Plans/attrs with no
  /// activity in the window are dropped.
  CalibrationReport DeltaSince(const CalibrationReport& prev) const;
};

/// Serializes a report as JSON (schema adds attribute names when non-null):
///   {"executions":N,"realized_cost":...,"predicted_cost":...,"regret":...,
///    "max_drift":...,
///    "plans":[{"query_sig","estimator_version","planner_fingerprint",
///              "executions","unknown_executions","acquisitions",
///              "predicted_cost","predicted_cost_lo"?,"predicted_cost_hi"?,
///              "realized_mean_cost","regret",
///              "nodes":[{"node","kind","attr","predicted_reach",
///                        "predicted_pass","evals","passes","unknowns",
///                        "observed_pass"},...]},...],
///    "attrs":[{"attr","name"?,"evals","passes","predicted_evals",
///              "predicted_passes","observed_pass_rate",
///              "predicted_pass_rate","drift"},...]}
std::string CalibrationReportToJson(const CalibrationReport& report,
                                    const Schema* schema = nullptr);

class CalibrationAggregator {
 public:
  explicit CalibrationAggregator(size_t num_shards);

  CalibrationAggregator(const CalibrationAggregator&) = delete;
  CalibrationAggregator& operator=(const CalibrationAggregator&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// The profile for `key` in `worker`'s shard, creating it (sized to the
  /// plan's node count, holding a reference to the plan for report time) on
  /// first sight. The returned pointer is stable for the aggregator's
  /// lifetime; the caller feeds it to ExecutePlan. One short worker-local
  /// mutex acquisition per call.
  ExecutionProfile* Profile(size_t worker, const CalibrationKey& key,
                            std::shared_ptr<const CompiledPlan> plan);

  /// Cumulative predicted-vs-observed report merged across shards. Safe
  /// concurrent with writers (see header comment).
  CalibrationReport Snapshot() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;
    ExecutionProfile profile;
    Entry(std::shared_ptr<const CompiledPlan> p, size_t num_nodes)
        : plan(std::move(p)), profile(num_nodes) {}
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<CalibrationKey, std::unique_ptr<Entry>,
                       CalibrationKeyHash>
        entries;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_CALIBRATION_H_
