// PlannerStats: a uniform, export-friendly view of what a planner did while
// building its last plan. Every Planner fills one during BuildPlan (fields
// irrelevant to a given planner stay zero); harnesses read it through
// Planner::planner_stats() without knowing the concrete planner type.
//
// The per-planner Stats structs (ExhaustivePlanner::Stats, ...) remain the
// primary in-planner bookkeeping; this struct is the cross-planner surface
// that JSON exports and benches consume.

#ifndef CAQP_OBS_PLANNER_STATS_H_
#define CAQP_OBS_PLANNER_STATS_H_

#include <cstdint>
#include <string>

namespace caqp {
namespace obs {

struct PlannerStats {
  std::string planner;  ///< Planner::Name() at BuildPlan time

  // Exhaustive DP (paper Figure 5).
  uint64_t memo_hits = 0;        ///< subproblems answered from the cache
  uint64_t memo_misses = 0;      ///< distinct subproblems solved
  uint64_t bound_prunes = 0;     ///< candidates skipped/abandoned via bound
  uint64_t candidates_tried = 0; ///< (attribute, split point) pairs costed

  // GreedyPlan (paper Figures 6-7).
  uint64_t split_searches = 0;     ///< GREEDYSPLIT invocations
  uint64_t splits_considered = 0;  ///< candidate splits costed
  uint64_t splits_taken = 0;       ///< splits placed in the final plan
  uint64_t queue_high_water = 0;   ///< max expansion-queue length observed
  uint64_t expansions_skipped = 0; ///< queue pops rejected (size penalty /
                                   ///< byte bound)
  double benefit_first = 0.0;      ///< gain of the first adopted expansion
  double benefit_last = 0.0;       ///< gain of the last adopted expansion
  double benefit_total = 0.0;      ///< summed adopted expansion gains

  // Sequential machinery (shared by all planners).
  uint64_t seq_solves = 0;  ///< base-plan solver invocations

  /// The planner's own expected-cost estimate for the built plan
  /// (Equation (3) under the training estimator), when it computes one.
  double expected_cost = 0.0;

  void Reset(const std::string& name) {
    *this = PlannerStats{};
    planner = name;
  }
};

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_PLANNER_STATS_H_
