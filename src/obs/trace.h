// Execution tracing: an optional sink interface the plan executor reports
// to, plus two stock sinks — one that records a single tuple's acquisition
// order and branch path (for EXPLAIN-style debugging and the --trace-out
// JSONL of tools/caqp_plan), and one that aggregates per-attribute
// acquisition histograms across many tuples (the executor metrics of bench
// JSON exports).
//
// The executor touches the sink only through `if (sink)` null checks, so
// passing nullptr (the default everywhere) keeps the hot path free of
// instrumentation.

#ifndef CAQP_OBS_TRACE_H_
#define CAQP_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace caqp {

/// Receives execution events from ExecutePlan, in plan-traversal order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// First acquisition of `attr` for the current tuple; `marginal_cost` is
  /// what the cost model charged for it.
  virtual void OnAcquire(AttrId attr, Value value, double marginal_cost) = 0;
  /// A split node routed the tuple: `went_ge` is true for the >= branch.
  virtual void OnBranch(AttrId attr, Value split_value, bool went_ge) = 0;
  /// The plan reached a decision; called exactly once per executed tuple.
  virtual void OnVerdict(bool verdict, double total_cost) = 0;
};

/// One recorded acquisition.
struct TraceAcquisition {
  AttrId attr = kInvalidAttr;
  Value value = 0;
  double cost = 0.0;
};

/// One recorded split decision.
struct TraceBranch {
  AttrId attr = kInvalidAttr;
  Value split_value = 0;
  bool went_ge = false;
};

/// Records every event of a single tuple's execution. Reusable across
/// tuples via Clear().
class ExecutionTrace : public TraceSink {
 public:
  void OnAcquire(AttrId attr, Value value, double marginal_cost) override {
    acquisitions_.push_back({attr, value, marginal_cost});
  }
  void OnBranch(AttrId attr, Value split_value, bool went_ge) override {
    branches_.push_back({attr, split_value, went_ge});
  }
  void OnVerdict(bool verdict, double total_cost) override {
    verdict_ = verdict;
    total_cost_ = total_cost;
    ++verdicts_;
  }

  /// Acquisitions in the order the plan performed them (each attribute at
  /// most once per tuple).
  const std::vector<TraceAcquisition>& acquisitions() const {
    return acquisitions_;
  }
  /// Root-to-leaf split decisions.
  const std::vector<TraceBranch>& branches() const { return branches_; }
  bool verdict() const { return verdict_; }
  double total_cost() const { return total_cost_; }
  /// Number of OnVerdict calls since Clear() — 1 after one execution.
  size_t verdicts() const { return verdicts_; }

  void Clear() {
    acquisitions_.clear();
    branches_.clear();
    verdict_ = false;
    total_cost_ = 0.0;
    verdicts_ = 0;
  }

 private:
  std::vector<TraceAcquisition> acquisitions_;
  std::vector<TraceBranch> branches_;
  bool verdict_ = false;
  double total_cost_ = 0.0;
  size_t verdicts_ = 0;
};

/// Aggregates acquisition behaviour across many tuples: per-attribute
/// acquisition counts and charged cost, tuple and match totals. The
/// per-attribute histogram feeds structured exports.
class AttributeProfile : public TraceSink {
 public:
  explicit AttributeProfile(size_t num_attributes)
      : counts_(num_attributes, 0), costs_(num_attributes, 0.0) {}

  void OnAcquire(AttrId attr, Value /*value*/, double marginal_cost) override {
    if (attr < counts_.size()) {
      ++counts_[attr];
      costs_[attr] += marginal_cost;
    }
  }
  void OnBranch(AttrId /*attr*/, Value /*split*/, bool /*ge*/) override {}
  void OnVerdict(bool verdict, double total_cost) override {
    ++tuples_;
    if (verdict) ++matches_;
    total_cost_ += total_cost;
  }

  size_t num_attributes() const { return counts_.size(); }
  /// Times `attr` was acquired across all executed tuples.
  uint64_t count(AttrId attr) const { return counts_[attr]; }
  /// Total cost charged for acquisitions of `attr`.
  double cost(AttrId attr) const { return costs_[attr]; }
  /// Fraction of tuples that acquired `attr` (0 if no tuples ran).
  double AcquisitionRate(AttrId attr) const {
    return tuples_ ? static_cast<double>(counts_[attr]) /
                         static_cast<double>(tuples_)
                   : 0.0;
  }
  size_t tuples() const { return tuples_; }
  size_t matches() const { return matches_; }
  double total_cost() const { return total_cost_; }
  double MeanCost() const {
    return tuples_ ? total_cost_ / static_cast<double>(tuples_) : 0.0;
  }

 private:
  std::vector<uint64_t> counts_;
  std::vector<double> costs_;
  size_t tuples_ = 0;
  size_t matches_ = 0;
  double total_cost_ = 0.0;
};

/// Fans one event stream out to several sinks (e.g. a per-tuple trace plus
/// a profile). Ignores null entries.
class TeeTraceSink : public TraceSink {
 public:
  TeeTraceSink(TraceSink* a, TraceSink* b) : sinks_{a, b} {}

  void OnAcquire(AttrId attr, Value value, double marginal_cost) override {
    for (TraceSink* s : sinks_) {
      if (s) s->OnAcquire(attr, value, marginal_cost);
    }
  }
  void OnBranch(AttrId attr, Value split_value, bool went_ge) override {
    for (TraceSink* s : sinks_) {
      if (s) s->OnBranch(attr, split_value, went_ge);
    }
  }
  void OnVerdict(bool verdict, double total_cost) override {
    for (TraceSink* s : sinks_) {
      if (s) s->OnVerdict(verdict, total_cost);
    }
  }

 private:
  TraceSink* sinks_[2];
};

}  // namespace caqp

#endif  // CAQP_OBS_TRACE_H_
