#include "obs/slo.h"

#include <algorithm>

namespace caqp {
namespace obs {

SloMonitor::SloMonitor(Options options) : options_(std::move(options)) {
  const uint64_t slow = std::max<uint64_t>(options_.slow_window_ns, kBuckets);
  bucket_width_ns_ = slow / kBuckets;
  const uint64_t fast =
      std::clamp<uint64_t>(options_.fast_window_ns, bucket_width_ns_, slow);
  fast_buckets_ = static_cast<size_t>(
      (fast + bucket_width_ns_ - 1) / bucket_width_ns_);
  for (auto& f : last_fire_ns_) f.store(0, std::memory_order_relaxed);
}

SloMonitor::Bucket& SloMonitor::BucketFor(uint64_t now_ns) {
  const uint64_t epoch = now_ns / bucket_width_ns_;
  Bucket& b = ring_[epoch % kBuckets];
  uint64_t cur = b.epoch.load(std::memory_order_acquire);
  if (cur != epoch) {
    // First writer to land on a stale bucket re-epochs it. The CAS winner
    // resets the counters; a concurrent reader may see the bucket mid-reset
    // (transient under-count of one bucket — see header).
    if (b.epoch.compare_exchange_strong(cur, epoch,
                                        std::memory_order_acq_rel)) {
      b.total.store(0, std::memory_order_relaxed);
      b.unavailable.store(0, std::memory_order_relaxed);
      b.slow.store(0, std::memory_order_relaxed);
    }
  }
  return b;
}

void SloMonitor::RecordRequest(uint64_t now_ns, bool available,
                               double latency_seconds) {
  Bucket& b = BucketFor(now_ns);
  b.total.fetch_add(1, std::memory_order_relaxed);
  if (!available) b.unavailable.fetch_add(1, std::memory_order_relaxed);
  if (latency_seconds > options_.latency_threshold_seconds) {
    b.slow.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t n = records_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.check_interval == 0 || n % options_.check_interval == 0) {
    Evaluate(now_ns);
  }
}

SloMonitor::WindowCounts SloMonitor::Count(uint64_t now_ns, Slo slo) const {
  WindowCounts out;
  const uint64_t now_epoch = now_ns / bucket_width_ns_;
  for (size_t i = 0; i < kBuckets; ++i) {
    const Bucket& b = ring_[i];
    const uint64_t epoch = b.epoch.load(std::memory_order_acquire);
    if (epoch == ~0ull || epoch > now_epoch) continue;
    const uint64_t age = now_epoch - epoch;
    if (age >= kBuckets) continue;  // fell out of the slow window
    const uint64_t total = b.total.load(std::memory_order_relaxed);
    const uint64_t bad =
        slo == Slo::kAvailability
            ? b.unavailable.load(std::memory_order_relaxed)
            : b.slow.load(std::memory_order_relaxed);
    out.slow_total += total;
    out.slow_bad += bad;
    if (age < fast_buckets_) {
      out.fast_total += total;
      out.fast_bad += bad;
    }
  }
  return out;
}

double SloMonitor::Burn(uint64_t bad, uint64_t total, double target) {
  if (total == 0) return 0.0;
  const double budget = 1.0 - target;
  if (budget <= 0.0) return bad > 0 ? 1e9 : 0.0;
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

void SloMonitor::Evaluate(uint64_t now_ns) {
  for (Slo slo : {Slo::kAvailability, Slo::kLatency}) {
    const WindowCounts c = Count(now_ns, slo);
    if (c.fast_total < options_.min_window_requests) continue;
    const double target = slo == Slo::kAvailability
                              ? options_.availability_target
                              : options_.latency_target;
    const double fast_burn = Burn(c.fast_bad, c.fast_total, target);
    const double slow_burn = Burn(c.slow_bad, c.slow_total, target);
    if (fast_burn < options_.fast_burn_threshold ||
        slow_burn < options_.slow_burn_threshold) {
      continue;
    }
    auto& last = last_fire_ns_[static_cast<size_t>(slo)];
    uint64_t prev = last.load(std::memory_order_acquire);
    if (prev != 0 && now_ns - prev < options_.cooloff_ns) continue;
    // One thread wins the fire; losers observed a concurrent fire inside
    // the cooloff and skip.
    if (!last.compare_exchange_strong(prev, now_ns,
                                      std::memory_order_acq_rel)) {
      continue;
    }
    burns_fired_.fetch_add(1, std::memory_order_relaxed);
    if (options_.on_burn) {
      options_.on_burn(BurnEvent{slo, fast_burn, slow_burn, now_ns});
    }
  }
}

SloMonitor::Snapshot SloMonitor::GetSnapshot(uint64_t now_ns) const {
  Snapshot snap;
  const WindowCounts avail = Count(now_ns, Slo::kAvailability);
  const WindowCounts lat = Count(now_ns, Slo::kLatency);
  snap.requests_fast = avail.fast_total;
  snap.requests_slow = avail.slow_total;
  if (avail.slow_total > 0) {
    snap.availability_ratio =
        1.0 - static_cast<double>(avail.slow_bad) /
                  static_cast<double>(avail.slow_total);
    snap.latency_ratio = 1.0 - static_cast<double>(lat.slow_bad) /
                                   static_cast<double>(lat.slow_total);
  }
  snap.availability_fast_burn =
      Burn(avail.fast_bad, avail.fast_total, options_.availability_target);
  snap.availability_slow_burn =
      Burn(avail.slow_bad, avail.slow_total, options_.availability_target);
  snap.latency_fast_burn =
      Burn(lat.fast_bad, lat.fast_total, options_.latency_target);
  snap.latency_slow_burn =
      Burn(lat.slow_bad, lat.slow_total, options_.latency_target);
  snap.burns_fired = burns_fired_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace obs
}  // namespace caqp
