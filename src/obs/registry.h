// Metrics registry: named counters, gauges, and streaming timers shared by
// every layer of the library (planners, executor, network sim, tools).
//
// Design for the hot path:
//  * Counter / Gauge are single std::atomics updated with relaxed ordering —
//    lock-free, one instruction on x86/ARM.
//  * StreamingStat (Welford mean/variance + min/max + deterministic
//    reservoir for quantiles) is single-writer: the library is
//    single-threaded per query, and concurrent *readers* of counters and
//    gauges are safe. Registering a metric takes a mutex, but call sites
//    cache the returned reference (see the CAQP_OBS_* macros in obs.h), so
//    the lock is touched once per call site for the process lifetime.
//  * Metric objects are never destroyed or moved once created; references
//    stay valid until process exit (std::map nodes are stable).

#ifndef CAQP_OBS_REGISTRY_H_
#define CAQP_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/obs.h"

namespace caqp {
namespace obs {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written value (e.g. a high-water mark or energy level). Lock-free.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Streaming distribution summary: count, Welford mean/variance, min/max,
/// and approximate quantiles from a fixed-size deterministic reservoir.
/// Single-writer; O(1) per Record.
class StreamingStat {
 public:
  static constexpr size_t kReservoirCapacity = 1024;

  void Record(double x);

  size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Approximate q-quantile (q in [0,1]) from the reservoir sample, with
  /// linear interpolation. Exact while count() <= kReservoirCapacity.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }

  void Reset() { *this = StreamingStat(); }

 private:
  uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Algorithm R with a fixed-seed xorshift so runs are reproducible.
  uint64_t rng_ = 0x9e3779b97f4a7c15ull;
  std::vector<double> reservoir_;
};

/// Point-in-time copy of every registered metric, for export.
struct RegistrySnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct StatValue {
    std::string name;
    size_t count = 0;
    double mean = 0.0;
    double variance = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot hist;
  };
  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<StatValue> stats;            // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name
};

class MetricsRegistry {
 public:
  /// Returns the metric registered under `name`, creating it on first use.
  /// The reference is valid for the registry's lifetime. Requesting the
  /// same name as two different metric kinds is a programming error.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  StreamingStat& GetStat(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric (keeps registrations, so cached references held by
  /// instrumentation call sites stay valid). Intended for tests and for
  /// tools that report per-phase deltas.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<StreamingStat>> stats_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry used by the CAQP_OBS_* macros.
MetricsRegistry& DefaultRegistry();

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_REGISTRY_H_
