#include "obs/trace_join.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace caqp {
namespace obs {

bool JoinedTrace::AllUnderRoot() const {
  if (root_span_id == 0) return events.empty();
  std::unordered_map<uint32_t, uint32_t> parent_of;
  parent_of.reserve(events.size());
  for (const SpanEvent& ev : events) parent_of[ev.span_id] = ev.parent_id;
  for (const SpanEvent& ev : events) {
    if (ev.span_id == root_span_id) continue;
    // Walk up with a step bound so a parent cycle cannot hang the check.
    uint32_t cur = ev.parent_id;
    size_t steps = 0;
    bool reached = false;
    while (steps++ <= events.size()) {
      if (cur == root_span_id) {
        reached = true;
        break;
      }
      auto it = parent_of.find(cur);
      if (it == parent_of.end()) break;
      cur = it->second;
    }
    if (!reached) return false;
  }
  return true;
}

const JoinedTrace* TraceJoinResult::Find(uint64_t trace_id) const {
  for (const JoinedTrace& t : traces) {
    if (t.trace_id == trace_id) return &t;
  }
  return nullptr;
}

TraceJoinResult JoinTraces(std::vector<SpanEvent> events) {
  TraceJoinResult result;
  result.total_events = events.size();

  std::unordered_map<uint64_t, JoinedTrace> by_trace;
  for (SpanEvent& ev : events) {
    by_trace[ev.trace_id].events.push_back(ev);
  }

  for (auto& [trace_id, trace] : by_trace) {
    trace.trace_id = trace_id;
    std::stable_sort(trace.events.begin(), trace.events.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       return a.start_ns < b.start_ns;
                     });

    std::unordered_set<uint32_t> ids;
    ids.reserve(trace.events.size());
    for (const SpanEvent& ev : trace.events) {
      if (!ids.insert(ev.span_id).second) ++trace.duplicate_span_ids;
    }

    // Root election: parentless span with the earliest start, coordinator
    // slot (worker 0) winning exact-start ties. Events are start-sorted, so
    // the scan can stop once candidates start later than the incumbent.
    const SpanEvent* root = nullptr;
    for (const SpanEvent& ev : trace.events) {
      if (ev.parent_id != 0) continue;
      if (root == nullptr) {
        root = &ev;
        continue;
      }
      if (ev.start_ns > root->start_ns) break;
      if (ev.worker == 0 && root->worker != 0) root = &ev;
    }
    if (root != nullptr) {
      trace.root_span_id = root->span_id;
      trace.root_name = root->name;
    }

    // Orphan adoption: a parent_id that resolves nowhere in the trace is
    // rewritten to the root. trace 0 (unbound events) is left untouched.
    if (trace.root_span_id != 0 && trace_id != 0) {
      for (SpanEvent& ev : trace.events) {
        if (ev.span_id == trace.root_span_id) continue;
        if (ev.parent_id == 0 || ids.count(ev.parent_id) == 0) {
          if (ev.parent_id != trace.root_span_id) {
            ev.parent_id = trace.root_span_id;
            ++trace.adopted_orphans;
          }
        }
      }
    }

    // Root first, remainder already in start-tick order.
    if (trace.root_span_id != 0) {
      auto it = std::find_if(trace.events.begin(), trace.events.end(),
                             [&](const SpanEvent& ev) {
                               return ev.span_id == trace.root_span_id;
                             });
      if (it != trace.events.begin()) {
        std::rotate(trace.events.begin(), it, it + 1);
      }
    }

    result.total_adopted += trace.adopted_orphans;
    result.total_duplicates += trace.duplicate_span_ids;
  }

  result.traces.reserve(by_trace.size());
  for (auto& [trace_id, trace] : by_trace) {
    result.traces.push_back(std::move(trace));
  }
  std::sort(result.traces.begin(), result.traces.end(),
            [](const JoinedTrace& a, const JoinedTrace& b) {
              return a.trace_id < b.trace_id;
            });
  return result;
}

}  // namespace obs
}  // namespace caqp
