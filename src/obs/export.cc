#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "core/schema.h"
#include "obs/prometheus.h"
#include "obs/trace_join.h"

namespace caqp {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips every double; trim to shortest via %g first.
  std::snprintf(buf, sizeof(buf), "%g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // comma already handled when the key was written
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CAQP_DCHECK(!has_element_.empty());
  CAQP_DCHECK(!pending_key_);
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CAQP_DCHECK(!has_element_.empty());
  CAQP_DCHECK(!pending_key_);
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  CAQP_DCHECK(!has_element_.empty());
  CAQP_DCHECK(!pending_key_);
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  out_ += '"';
  out_ += EscapeJson(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  out_ += '"';
  out_ += EscapeJson(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  out_ += FormatDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

void WriteRegistrySnapshot(JsonWriter& w, const RegistrySnapshot& snap) {
  // JSON and /metrics agree key for key: both export canonical names. The
  // aliases map (legacy -> canonical) lets existing consumers keep resolving
  // the historical dotted keys for one release (check_bench_bars.py applies
  // it when loading).
  MetricAliases aliases;
  const RegistrySnapshot canon = CanonicalizeSnapshot(snap, &aliases);
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& c : canon.counters) w.Key(c.name).UInt(c.value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& g : canon.gauges) w.Key(g.name).Double(g.value);
  w.EndObject();
  w.Key("stats").BeginObject();
  for (const auto& s : canon.stats) {
    w.Key(s.name).BeginObject();
    w.Key("count").UInt(s.count);
    w.Key("mean").Double(s.mean);
    w.Key("variance").Double(s.variance);
    w.Key("min").Double(s.min);
    w.Key("max").Double(s.max);
    w.Key("p50").Double(s.p50);
    w.Key("p95").Double(s.p95);
    w.EndObject();
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& h : canon.histograms) {
    w.Key(h.name);
    WriteHistogram(w, h.hist);
  }
  w.EndObject();
  w.Key("aliases").BeginObject();
  for (const auto& [legacy, canonical] : aliases) {
    w.Key(legacy).String(canonical);
  }
  w.EndObject();
  w.EndObject();
}

void WriteHistogram(JsonWriter& w, const HistogramSnapshot& hist) {
  w.BeginObject();
  w.Key("count").UInt(hist.count);
  w.Key("sum").Double(hist.sum);
  w.Key("min").Double(hist.min);
  w.Key("max").Double(hist.max);
  w.Key("mean").Double(hist.mean());
  w.Key("p50").Double(hist.p50());
  w.Key("p90").Double(hist.p90());
  w.Key("p99").Double(hist.p99());
  w.Key("p999").Double(hist.p999());
  w.Key("buckets").BeginArray();
  for (size_t i = 0; i < kHistNumBuckets; ++i) {
    if (hist.buckets[i] == 0) continue;
    // [index, count, lower bound, upper bound]: the bounds make exported
    // histograms post-processable without hard-coding the bucket layout
    // (the overflow bucket's +inf upper bound serializes as null).
    w.BeginArray()
        .UInt(i)
        .UInt(hist.buckets[i])
        .Double(HistogramBucketLowerBound(i))
        .Double(HistogramBucketUpperBound(i))
        .EndArray();
  }
  w.EndArray();
  w.EndObject();
}

namespace {

void WriteTraceEvent(JsonWriter& w, const SpanEvent& ev) {
  w.BeginObject();
  w.Key("name").String(ev.name);
  w.Key("cat").String("caqp");
  w.Key("ph").String("X");
  // Trace-event timestamps are microseconds; keep sub-us precision as a
  // fractional part so short executor spans stay visible.
  w.Key("ts").Double(static_cast<double>(ev.start_ns) / 1e3);
  w.Key("dur").Double(static_cast<double>(ev.dur_ns) / 1e3);
  w.Key("pid").Int(1);
  w.Key("tid").Int(static_cast<int64_t>(ev.worker));
  w.Key("args").BeginObject();
  w.Key("trace_id").UInt(ev.trace_id);
  w.Key("span_id").UInt(ev.span_id);
  w.Key("parent_id").UInt(ev.parent_id);
  // Plan identity (0 = unknown at span close), the join key against
  // calibration reports; omitted when the request never resolved a plan so
  // non-serve traces stay unchanged.
  if (ev.plan_sig != 0 || ev.planner_fp != 0 || ev.estimator_version != 0) {
    w.Key("plan_sig").UInt(ev.plan_sig);
    w.Key("planner_fp").UInt(ev.planner_fp);
    w.Key("estimator_version").UInt(ev.estimator_version);
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::string TraceEventsToJson(const TraceRecorder& recorder) {
  return TraceEventsToJson(recorder, recorder.Events());
}

std::string TraceEventsToJson(const TraceRecorder& recorder,
                              const std::vector<SpanEvent>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  // Thread-name metadata turns raw tids into "worker N" rows in the viewer.
  for (size_t worker = 0; worker < recorder.num_workers(); ++worker) {
    char name[32];
    std::snprintf(name, sizeof(name), "worker %zu", worker);
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(1);
    w.Key("tid").Int(static_cast<int64_t>(worker));
    w.Key("args").BeginObject().Key("name").String(name).EndObject();
    w.EndObject();
  }
  for (const SpanEvent& ev : events) WriteTraceEvent(w, ev);
  w.EndArray();
  w.Key("caqpFlightRecorder").BeginArray();
  for (const TraceRecorder::Incident& incident : recorder.Incidents()) {
    w.BeginObject();
    w.Key("trace_id").UInt(incident.trace_id);
    w.Key("reason").String(incident.reason);
    w.Key("worker").Int(static_cast<int64_t>(incident.worker));
    w.Key("at_us").Double(static_cast<double>(incident.at_ns) / 1e3);
    w.Key("plan_sig").UInt(incident.meta.plan_sig);
    w.Key("planner_fp").UInt(incident.meta.planner_fp);
    w.Key("estimator_version").UInt(incident.meta.estimator_version);
    w.Key("events").BeginArray();
    for (const SpanEvent& ev : incident.events) WriteTraceEvent(w, ev);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("caqpDroppedSpanEvents").UInt(recorder.dropped_events());
  w.EndObject();
  return w.TakeString();
}

std::string UnifiedTraceToJson(const TraceRecorder& recorder) {
  const TraceJoinResult joined = JoinTraces(recorder.Events());
  std::vector<SpanEvent> flat;
  flat.reserve(joined.total_events);
  for (const JoinedTrace& trace : joined.traces) {
    flat.insert(flat.end(), trace.events.begin(), trace.events.end());
  }
  std::string doc = TraceEventsToJson(recorder, flat);

  // Splice the join summary in before the closing brace; the document the
  // overload returns is always a single JSON object.
  JsonWriter w;
  w.BeginObject();
  w.Key("traces").BeginArray();
  for (const JoinedTrace& trace : joined.traces) {
    w.BeginObject();
    w.Key("trace_id").UInt(trace.trace_id);
    w.Key("root_span_id").UInt(trace.root_span_id);
    w.Key("root_name").String(trace.root_name);
    w.Key("events").UInt(trace.events.size());
    w.Key("adopted_orphans").UInt(trace.adopted_orphans);
    w.Key("duplicate_span_ids").UInt(trace.duplicate_span_ids);
    w.Key("all_under_root").Bool(trace.AllUnderRoot());
    w.EndObject();
  }
  w.EndArray();
  w.Key("total_adopted").UInt(joined.total_adopted);
  w.Key("total_duplicates").UInt(joined.total_duplicates);
  w.EndObject();

  CAQP_DCHECK(!doc.empty() && doc.back() == '}');
  doc.pop_back();
  doc += ",\"caqpTraceJoin\":";
  doc += w.TakeString();
  doc += '}';
  return doc;
}

void WritePlannerStats(JsonWriter& w, const PlannerStats& stats) {
  w.BeginObject();
  w.Key("planner").String(stats.planner);
  w.Key("memo_hits").UInt(stats.memo_hits);
  w.Key("memo_misses").UInt(stats.memo_misses);
  w.Key("bound_prunes").UInt(stats.bound_prunes);
  w.Key("candidates_tried").UInt(stats.candidates_tried);
  w.Key("split_searches").UInt(stats.split_searches);
  w.Key("splits_considered").UInt(stats.splits_considered);
  w.Key("splits_taken").UInt(stats.splits_taken);
  w.Key("queue_high_water").UInt(stats.queue_high_water);
  w.Key("expansions_skipped").UInt(stats.expansions_skipped);
  w.Key("benefit_first").Double(stats.benefit_first);
  w.Key("benefit_last").Double(stats.benefit_last);
  w.Key("benefit_total").Double(stats.benefit_total);
  w.Key("seq_solves").UInt(stats.seq_solves);
  w.Key("expected_cost").Double(stats.expected_cost);
  w.EndObject();
}

void WriteAttributeProfile(JsonWriter& w, const AttributeProfile& profile,
                           const Schema* schema) {
  w.BeginObject();
  w.Key("tuples").UInt(profile.tuples());
  w.Key("matches").UInt(profile.matches());
  w.Key("mean_cost").Double(profile.MeanCost());
  w.Key("attributes").BeginArray();
  for (size_t a = 0; a < profile.num_attributes(); ++a) {
    const AttrId attr = static_cast<AttrId>(a);
    if (profile.count(attr) == 0) continue;  // only acquired attributes
    w.BeginObject();
    w.Key("attr").UInt(a);
    if (schema != nullptr) w.Key("name").String(schema->name(attr));
    w.Key("acquisitions").UInt(profile.count(attr));
    w.Key("acquisition_rate").Double(profile.AcquisitionRate(attr));
    w.Key("total_cost").Double(profile.cost(attr));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string RegistryToJson(const MetricsRegistry& registry) {
  JsonWriter w;
  WriteRegistrySnapshot(w, registry.Snapshot());
  return w.TakeString();
}

std::string RegistryToMarkdown(const MetricsRegistry& registry) {
  const RegistrySnapshot snap = registry.Snapshot();
  std::string out;
  char buf[256];
  if (!snap.counters.empty()) {
    out += "| counter | value |\n|---|---|\n";
    for (const auto& c : snap.counters) {
      std::snprintf(buf, sizeof(buf), "| %s | %" PRIu64 " |\n",
                    c.name.c_str(), c.value);
      out += buf;
    }
  }
  if (!snap.gauges.empty()) {
    out += "\n| gauge | value |\n|---|---|\n";
    for (const auto& g : snap.gauges) {
      std::snprintf(buf, sizeof(buf), "| %s | %g |\n", g.name.c_str(),
                    g.value);
      out += buf;
    }
  }
  if (!snap.stats.empty()) {
    out +=
        "\n| stat | count | mean | stddev | min | p50 | p95 | max |\n"
        "|---|---|---|---|---|---|---|---|\n";
    for (const auto& s : snap.stats) {
      std::snprintf(buf, sizeof(buf),
                    "| %s | %zu | %g | %g | %g | %g | %g | %g |\n",
                    s.name.c_str(), s.count, s.mean, std::sqrt(s.variance),
                    s.min, s.p50, s.p95, s.max);
      out += buf;
    }
  }
  if (!snap.histograms.empty()) {
    out +=
        "\n| histogram | count | mean | min | p50 | p90 | p99 | p99.9 | max "
        "|\n|---|---|---|---|---|---|---|---|---|\n";
    for (const auto& h : snap.histograms) {
      std::snprintf(buf, sizeof(buf),
                    "| %s | %" PRIu64 " | %g | %g | %g | %g | %g | %g | %g |\n",
                    h.name.c_str(), h.hist.count, h.hist.mean(), h.hist.min,
                    h.hist.p50(), h.hist.p90(), h.hist.p99(), h.hist.p999(),
                    h.hist.max);
      out += buf;
    }
  }
  return out;
}

bool AppendJsonLine(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << json << "\n";
  return static_cast<bool>(out);
}

bool WriteFileOrComplain(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content;
  if (!out) {
    std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace caqp
