#include "obs/span.h"

#include <algorithm>
#include <chrono>

namespace caqp {
namespace obs {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRecorder::TraceRecorder(size_t num_workers)
    : TraceRecorder(num_workers, Options()) {}

TraceRecorder::TraceRecorder(size_t num_workers, Options options)
    : options_(options) {
  if (num_workers == 0) num_workers = 1;
  shards_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.reserve(options_.flight_capacity);
    shards_.push_back(std::move(shard));
  }
}

TraceRecorder::RequestScope::RequestScope(TraceRecorder* recorder,
                                          size_t worker, uint64_t trace_id,
                                          uint32_t parent_span) {
  auto& tls = internal::g_thread_trace;
  saved_ = tls;
  tls.recorder = recorder;
  tls.worker = static_cast<uint32_t>(
      recorder ? std::min(worker, recorder->num_workers() - 1) : worker);
  tls.trace_id = trace_id;
  tls.parent = parent_span;
  tls.next_span_id = SpanIdBase(tls.worker);
  tls.plan_sig = 0;
  tls.planner_fp = 0;
  tls.estimator_version = 0;
}

TraceRecorder::RequestScope::~RequestScope() {
  internal::g_thread_trace = saved_;
}

void TraceRecorder::Record(size_t worker, const SpanEvent& ev) {
  Shard& shard = *shards_[worker % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.events.size() < options_.max_events_per_worker) {
    shard.events.push_back(ev);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.flight_capacity > 0) {
    if (shard.ring.size() < options_.flight_capacity) {
      shard.ring.push_back(ev);
      if (shard.ring.size() == options_.flight_capacity) {
        shard.ring_full = true;  // ring_next stays 0: next write wraps
      }
    } else {
      shard.ring[shard.ring_next] = ev;
      shard.ring_next = (shard.ring_next + 1) % options_.flight_capacity;
    }
  }
}

void TraceRecorder::DumpFlight(size_t worker, uint64_t trace_id,
                               const char* reason, const RequestMeta& meta) {
  Incident incident;
  incident.trace_id = trace_id;
  incident.reason = reason == nullptr ? "" : reason;
  incident.worker = static_cast<uint32_t>(worker % shards_.size());
  incident.at_ns = MonotonicNowNs();
  incident.meta = meta;
  {
    Shard& shard = *shards_[incident.worker];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.ring_full || shard.ring.size() < options_.flight_capacity) {
      incident.events = shard.ring;  // insertion order == chronological
    } else {
      incident.events.reserve(shard.ring.size());
      // Oldest entry is at ring_next once the ring has wrapped.
      for (size_t i = 0; i < shard.ring.size(); ++i) {
        incident.events.push_back(
            shard.ring[(shard.ring_next + i) % shard.ring.size()]);
      }
    }
  }
  std::lock_guard<std::mutex> lock(incidents_mu_);
  if (incidents_.size() >= options_.max_incidents) {
    incidents_.erase(incidents_.begin());
  }
  incidents_.push_back(std::move(incident));
}

void TraceRecorder::RecordIncident(uint64_t trace_id, const char* reason,
                                   const RequestMeta& meta) {
  Incident incident;
  incident.trace_id = trace_id;
  incident.reason = reason == nullptr ? "" : reason;
  incident.at_ns = MonotonicNowNs();
  incident.meta = meta;
  std::lock_guard<std::mutex> lock(incidents_mu_);
  if (incidents_.size() >= options_.max_incidents) {
    incidents_.erase(incidents_.begin());
  }
  incidents_.push_back(std::move(incident));
}

std::vector<SpanEvent> TraceRecorder::Events() const {
  std::vector<SpanEvent> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.insert(out.end(), shard->events.begin(), shard->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<TraceRecorder::Incident> TraceRecorder::Incidents() const {
  std::lock_guard<std::mutex> lock(incidents_mu_);
  return incidents_;
}

size_t TraceRecorder::incident_count() const {
  std::lock_guard<std::mutex> lock(incidents_mu_);
  return incidents_.size();
}

void ScopedSpan::Open(uint64_t start_ns) {
  auto& tls = internal::g_thread_trace;
  if (!Enabled()) return;
  active_ = true;
  start_ns_ = start_ns != 0 ? start_ns : MonotonicNowNs();
  span_id_ = tls.next_span_id++;
  parent_ = tls.parent;
  tls.parent = span_id_;
}

void ScopedSpan::Close() {
  auto& tls = internal::g_thread_trace;
  tls.parent = parent_;
  if (tls.recorder == nullptr) return;  // scope ended under us; drop
  const uint64_t end_ns = MonotonicNowNs();
  SpanEvent ev;
  ev.trace_id = tls.trace_id;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  ev.name = name_;
  ev.span_id = span_id_;
  ev.parent_id = parent_;
  ev.worker = tls.worker;
  ev.plan_sig = tls.plan_sig;
  ev.planner_fp = tls.planner_fp;
  ev.estimator_version = tls.estimator_version;
  tls.recorder->Record(tls.worker, ev);
}

SpanContext ScopedSpan::context() const {
  SpanContext ctx;
  if (!active_) return ctx;
  ctx.trace_id = internal::g_thread_trace.trace_id;
  ctx.span_id = span_id_;
  ctx.parent_id = parent_;
  return ctx;
}

void internal::RecordSpanBound(const char* name, uint64_t start_ns,
                               uint64_t end_ns) {
  auto& tls = internal::g_thread_trace;
  if (!Enabled()) return;
  SpanEvent ev;
  ev.trace_id = tls.trace_id;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  ev.name = name;
  ev.span_id = tls.next_span_id++;
  ev.parent_id = tls.parent;
  ev.worker = tls.worker;
  ev.plan_sig = tls.plan_sig;
  ev.planner_fp = tls.planner_fp;
  ev.estimator_version = tls.estimator_version;
  tls.recorder->Record(tls.worker, ev);
}

}  // namespace obs
}  // namespace caqp
