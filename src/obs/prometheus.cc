#include "obs/prometheus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace caqp {
namespace obs {

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

template <typename Vec>
void SortByName(Vec& v) {
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
}

template <typename Vec>
void RenameAll(Vec& v, MetricKind kind, MetricAliases* aliases) {
  for (auto& entry : v) {
    std::string canonical = CanonicalMetricName(entry.name, kind);
    if (canonical != entry.name) {
      if (aliases != nullptr) aliases->emplace_back(entry.name, canonical);
      entry.name = std::move(canonical);
    }
  }
  SortByName(v);
}

// Distinct internal names can collapse to one canonical name (dots and
// underscores both map to '_'). A duplicate series is invalid exposition,
// so after renaming merge adjacent same-name entries with the same
// semantics MergeSnapshotInto uses.
template <typename Vec, typename MergeFn>
void MergeAdjacentDuplicates(Vec& v, MergeFn merge) {
  size_t out = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (out > 0 && v[out - 1].name == v[i].name) {
      merge(v[out - 1], v[i]);
    } else {
      if (out != i) v[out] = std::move(v[i]);
      ++out;
    }
  }
  v.resize(out);
}

}  // namespace

std::string CanonicalMetricName(std::string_view name, MetricKind kind) {
  std::string out;
  out.reserve(name.size() + 6);
  for (char c : name) out += ValidNameChar(c) ? c : '_';
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  if (kind == MetricKind::kCounter && !EndsWith(out, "_total")) {
    out += "_total";
  }
  return out;
}

RegistrySnapshot CanonicalizeSnapshot(RegistrySnapshot snap,
                                      MetricAliases* aliases) {
  RenameAll(snap.counters, MetricKind::kCounter, aliases);
  RenameAll(snap.gauges, MetricKind::kGauge, aliases);
  RenameAll(snap.stats, MetricKind::kStat, aliases);
  RenameAll(snap.histograms, MetricKind::kHistogram, aliases);
  MergeAdjacentDuplicates(snap.counters,
                          [](auto& a, const auto& b) { a.value += b.value; });
  MergeAdjacentDuplicates(snap.gauges, [](auto& a, const auto& b) {
    a.value = std::max(a.value, b.value);
  });
  MergeAdjacentDuplicates(snap.stats, [](auto&, const auto&) {});
  MergeAdjacentDuplicates(snap.histograms, [](auto& a, const auto& b) {
    a.hist.Merge(b.hist);
  });
  return snap;
}

void MergeSnapshotInto(RegistrySnapshot* dst, const RegistrySnapshot& src) {
  for (const auto& c : src.counters) {
    auto it = std::find_if(dst->counters.begin(), dst->counters.end(),
                           [&](const auto& e) { return e.name == c.name; });
    if (it == dst->counters.end()) {
      dst->counters.push_back(c);
    } else {
      it->value += c.value;
    }
  }
  for (const auto& g : src.gauges) {
    auto it = std::find_if(dst->gauges.begin(), dst->gauges.end(),
                           [&](const auto& e) { return e.name == g.name; });
    if (it == dst->gauges.end()) {
      dst->gauges.push_back(g);
    } else {
      it->value = std::max(it->value, g.value);
    }
  }
  for (const auto& s : src.stats) {
    auto it = std::find_if(dst->stats.begin(), dst->stats.end(),
                           [&](const auto& e) { return e.name == s.name; });
    if (it == dst->stats.end()) dst->stats.push_back(s);
  }
  for (const auto& h : src.histograms) {
    auto it = std::find_if(dst->histograms.begin(), dst->histograms.end(),
                           [&](const auto& e) { return e.name == h.name; });
    if (it == dst->histograms.end()) {
      dst->histograms.push_back(h);
    } else {
      it->hist.Merge(h.hist);
    }
  }
  SortByName(dst->counters);
  SortByName(dst->gauges);
  SortByName(dst->stats);
  SortByName(dst->histograms);
}

std::string RenderPrometheusText(const RegistrySnapshot& raw) {
  const RegistrySnapshot snap =
      CanonicalizeSnapshot(raw, /*aliases=*/nullptr);
  std::string out;
  out.reserve(4096);
  char buf[128];

  for (const auto& c : snap.counters) {
    out += "# TYPE " + c.name + " counter\n";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(c.value));
    out += c.name + " " + buf + "\n";
  }
  for (const auto& g : snap.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + FormatValue(g.value) + "\n";
  }
  for (const auto& s : snap.stats) {
    out += "# TYPE " + s.name + " summary\n";
    out += s.name + "{quantile=\"0.5\"} " + FormatValue(s.p50) + "\n";
    out += s.name + "{quantile=\"0.95\"} " + FormatValue(s.p95) + "\n";
    out += s.name + "_sum " +
           FormatValue(s.mean * static_cast<double>(s.count)) + "\n";
    std::snprintf(buf, sizeof(buf), "%zu", s.count);
    out += s.name + "_count " + buf + "\n";
  }
  for (const auto& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistNumBuckets; ++i) {
      if (h.hist.buckets[i] == 0) continue;
      cumulative += h.hist.buckets[i];
      const double ub = HistogramBucketUpperBound(i);
      // The overflow bucket's +inf bound folds into the mandatory +Inf
      // line below rather than duplicating it.
      if (std::isinf(ub)) continue;
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(cumulative));
      out += h.name + "_bucket{le=\"" + FormatValue(ub) + "\"} " + buf + "\n";
    }
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(h.hist.count));
    out += h.name + "_bucket{le=\"+Inf\"} " + buf + "\n";
    out += h.name + "_sum " + FormatValue(h.hist.sum) + "\n";
    out += h.name + "_count " + buf + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace caqp
