// obs::Histogram — fixed-layout log-linear latency histogram.
//
// Replaces StreamingStat on the serving hot path: Record() is lock-free
// (relaxed atomic adds, no mutex, no reservoir shuffle) and histograms are
// mergeable, so each serve worker owns one and Snapshot()-time aggregation
// produces whole-service percentiles without any cross-worker write sharing.
//
// Bucket layout (identical for every histogram in the process, so merging
// is an element-wise add):
//
//   bucket 0                       underflow: v < 2^kMinExp
//   buckets 1 .. N-2               log-linear: each power-of-two octave
//                                  [2^e, 2^(e+1)) is divided into
//                                  kSubBuckets equal-width linear buckets,
//                                  for e in [kMinExp, kMaxExp)
//   bucket N-1                     overflow: v >= 2^kMaxExp
//
// With kMinExp=-20, kMaxExp=6, kSubBuckets=8 the range ~0.95us..64s is
// covered by 208 buckets with <= 1/8 relative quantile error — ample for
// p50/p90/p99/p99.9 latency SLOs. Values are dimensionless doubles; the
// serve layer records seconds.

#ifndef CAQP_OBS_HISTOGRAM_H_
#define CAQP_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace caqp {
namespace obs {

/// Linear sub-buckets per power-of-two octave.
inline constexpr int kHistSubBuckets = 8;
/// Lowest bucketed exponent: values below 2^kHistMinExp underflow.
inline constexpr int kHistMinExp = -20;
/// Values >= 2^kHistMaxExp overflow.
inline constexpr int kHistMaxExp = 6;
/// Total bucket count including the underflow and overflow buckets.
inline constexpr size_t kHistNumBuckets =
    2 + static_cast<size_t>(kHistMaxExp - kHistMinExp) * kHistSubBuckets;

/// Bucket index for `v` per the fixed layout above. Non-positive and
/// sub-range values land in the underflow bucket.
size_t HistogramBucketIndex(double v);
/// Inclusive lower bound of bucket `idx` (0 for the underflow bucket).
double HistogramBucketLowerBound(size_t idx);
/// Exclusive upper bound of bucket `idx` (+inf for the overflow bucket).
double HistogramBucketUpperBound(size_t idx);

/// Plain-value copy of a Histogram: mergeable, serializable, and the carrier
/// for quantile queries. Merging two snapshots is element-wise, so shard
/// aggregation and (de)serialization round-trips are exact.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< smallest recorded value; 0 when count == 0
  double max = 0.0;  ///< largest recorded value; 0 when count == 0
  std::array<uint64_t, kHistNumBuckets> buckets{};

  void Merge(const HistogramSnapshot& other);

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }

  /// Approximate q-quantile (q in [0,1]) with linear interpolation inside
  /// the target bucket, clamped to [min, max]. 0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }
  double p999() const { return Quantile(0.999); }
};

/// Lock-free recording histogram. Designed single-writer (one owner thread
/// records, anyone snapshots), but every update is a relaxed atomic RMW, so
/// concurrent writers (e.g. the process-global registry) stay correct — they
/// merely contend on the cache line the way any shared counter does.
class Histogram {
 public:
  Histogram();

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

  /// Adds a snapshot's contents (e.g. restoring a serialized histogram).
  void MergeFrom(const HistogramSnapshot& snap);

  /// Zeroes every bucket and moment; safe against concurrent Record only in
  /// the trivial sense (no torn values), intended for quiesced use.
  void Reset();

  // Convenience quantile views over a fresh snapshot.
  double Quantile(double q) const { return Snapshot().Quantile(q); }
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }
  double p999() const { return Quantile(0.999); }

 private:
  std::atomic<uint64_t> count_;
  std::atomic<double> sum_;
  std::atomic<double> min_;  ///< +inf until the first Record
  std::atomic<double> max_;  ///< -inf until the first Record
  std::array<std::atomic<uint64_t>, kHistNumBuckets> buckets_;
};

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_HISTOGRAM_H_
