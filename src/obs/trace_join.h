// TraceJoin — merges the per-worker span buffers of a scatter-gather
// request stream into unified, single-rooted traces.
//
// The dist tier records coordinator spans in worker slot 0 and shard i's
// spans in slot i + 1 of one TraceRecorder. Trace ids are propagated on the
// scatter path and span ids are worker-namespaced (span.h::SpanIdBase), so
// in the common case every shard span already carries a parent_id pointing
// at the coordinator's scatter span and the join is a validation pass. The
// join still has real work to do at the edges:
//
//  * Orphan adoption. A span whose parent_id does not resolve within its
//    trace (the parent was dropped by the per-worker buffer cap, or the
//    span predates trace propagation — e.g. a replayed legacy trace) is
//    re-parented under the trace's root request span instead of rendering
//    as a disconnected top-level track.
//  * Root election. The root is the parentless span with the earliest
//    start tick; ties break toward worker 0 (the coordinator slot).
//  * Duplicate detection. A span id seen twice within one trace (two
//    scopes mis-bound to one worker slot) is counted, not silently merged.
//
// JoinTraces never drops an event: output size equals input size, and the
// per-trace summaries let tests assert exact parentage (dist_test /
// telemetry_test pin "every shard span is under the coordinator request
// span" through JoinedTrace::AllUnderRoot).

#ifndef CAQP_OBS_TRACE_JOIN_H_
#define CAQP_OBS_TRACE_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/span.h"

namespace caqp {
namespace obs {

/// One trace's worth of joined spans, root first, then start-tick order.
struct JoinedTrace {
  uint64_t trace_id = 0;
  uint32_t root_span_id = 0;    ///< 0 iff the trace has no parentless span
  const char* root_name = "";   ///< static storage, like SpanEvent::name
  size_t adopted_orphans = 0;   ///< spans re-parented under the root
  size_t duplicate_span_ids = 0;
  std::vector<SpanEvent> events;

  /// True iff every non-root event reaches root_span_id by following
  /// parent_id links (the acceptance predicate for dist traces).
  bool AllUnderRoot() const;
};

/// Result of joining a whole recorder's event stream.
struct TraceJoinResult {
  std::vector<JoinedTrace> traces;  ///< ascending trace_id
  size_t total_events = 0;
  size_t total_adopted = 0;
  size_t total_duplicates = 0;

  const JoinedTrace* Find(uint64_t trace_id) const;
};

/// Groups `events` by trace_id and joins each group as described above.
/// Events with trace_id 0 (recorded outside any RequestScope binding —
/// should not happen, but the recorder does not forbid it) are grouped
/// under trace 0 and never adopted.
TraceJoinResult JoinTraces(std::vector<SpanEvent> events);

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_TRACE_JOIN_H_
