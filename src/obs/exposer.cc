#include "obs/exposer.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace caqp {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void SendResponse(int fd, const char* status_line, const char* content_type,
                  const std::string& body) {
  std::string head;
  head.reserve(160);
  head += "HTTP/1.1 ";
  head += status_line;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    SendAll(fd, body.data(), body.size());
  }
}

}  // namespace

MetricsExposer::MetricsExposer(Renderer render, Options options)
    : render_(std::move(render)), options_(std::move(options)) {}

MetricsExposer::~MetricsExposer() { Stop(); }

Status MetricsExposer::Start() {
  if (running()) return Status::OK();
  if (render_ == nullptr) {
    return Status::InvalidArgument("metrics exposer needs a renderer");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::InvalidArgument(std::string("pipe: ") +
                                   std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    CloseIfOpen(wake_pipe_[0]);
    CloseIfOpen(wake_pipe_[1]);
    return Status::InvalidArgument(std::string("socket: ") +
                                   std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    Stop();
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    Stop();
    return Status::InvalidArgument("bind/listen on " + options_.bind_address +
                                   ":" + std::to_string(options_.port) +
                                   ": " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsExposer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    // Wake the poll; the listener sees running_ == false and exits.
    const char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  CloseIfOpen(listen_fd_);
  CloseIfOpen(wake_pipe_[0]);
  CloseIfOpen(wake_pipe_[1]);
  port_ = 0;
}

void MetricsExposer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready == 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void MetricsExposer::HandleConnection(int fd) {
  // A scrape request fits one read in practice; loop until the header
  // terminator anyway, bounded in size and by a receive timeout.
  timeval timeout{/*tv_sec=*/2, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buf[2048];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // timeout, reset, or a client that never finished the header
    }
    request.append(buf, static_cast<size_t>(n));
  }

  const size_t line_end = request.find("\r\n");
  const std::string line =
      request.substr(0, line_end == std::string::npos ? 0 : line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendResponse(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    SendResponse(fd, "405 Method Not Allowed", "text/plain",
                 "GET only\n");
    return;
  }
  if (path == "/metrics") {
    served_.fetch_add(1, std::memory_order_relaxed);
    SendResponse(fd, "200 OK",
                 "text/plain; version=0.0.4; charset=utf-8", render_());
    return;
  }
  if (path == "/healthz") {
    SendResponse(fd, "200 OK", "text/plain", "ok\n");
    return;
  }
  SendResponse(fd, "404 Not Found", "text/plain", "not found\n");
}

}  // namespace obs
}  // namespace caqp
