// Request-scoped spans and the flight recorder (caqp::obs v2).
//
// A span is one timed phase of one request (queueing, planning, execution,
// dissemination, ...). Spans carry a SpanContext — trace id (the request),
// span id, parent span id — plus monotonic start/duration ticks, and are
// recorded into per-worker buffers owned by a TraceRecorder. The buffers
// export as Chrome/Perfetto trace-event JSON (obs/export.h), so
// `caqp_serve --trace-out trace.json` produces a file ui.perfetto.dev opens
// directly.
//
// Propagation is by thread binding, not by threading a context argument
// through every call signature: QueryService opens a
// TraceRecorder::RequestScope around each request it handles, which binds
// the worker thread to (recorder, worker, trace id). Every CAQP_OBS_SPAN
// hit below that frame — single-flight waits, Planner::BuildPlan,
// ExecutePlan / ExecuteBatch, Basestation::Disseminate — then records into
// the bound recorder with the correct parentage. A thread with no binding
// (every non-serve caller) pays one thread-local load and an untaken branch
// per span site; with CAQP_OBS_ENABLED=0 the sites compile away entirely.
//
// Flight recorder: independently of the span buffers (which are sized for
// whole-run export), each worker keeps a small ring of its most recent span
// events. When a request ends degraded — kDeadlineExceeded, kUnavailable,
// or planner-timeout fallback — the ring is dumped into an incident list,
// preserving postmortem context for exactly the requests that vanished from
// the happy-path metrics.

#ifndef CAQP_OBS_SPAN_H_
#define CAQP_OBS_SPAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace caqp {
namespace obs {

/// Identity of one span within one request trace. span_id 0 is "no span"
/// (the root's parent).
struct SpanContext {
  uint64_t trace_id = 0;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;
};

/// Span ids are namespaced by worker slot: worker w allocates ids in
/// [w << kSpanIdWorkerShift + 1, (w + 1) << kSpanIdWorkerShift). Two scopes
/// bound to different worker slots of one TraceRecorder therefore never
/// collide, which is what lets a shard's spans join the coordinator's
/// request span into one trace (dist scatter: coordinator is slot 0,
/// shard i is slot i + 1). 2^22 spans per worker per request, 1024 workers.
inline constexpr uint32_t kSpanIdWorkerShift = 22;

/// First span id a scope bound to `worker` allocates.
inline constexpr uint32_t SpanIdBase(uint32_t worker) {
  return (worker << kSpanIdWorkerShift) + 1;
}

/// One completed span. `name` must point at static storage (string
/// literals): events are copied around freely and never own the name.
/// plan_sig / planner_fp / estimator_version are the request's plan
/// identity (set via SetRequestPlanContext once the serving layer has
/// resolved which plan a request runs; 0 = not yet known) — the join key
/// against calibration reports and the serve plan cache.
struct SpanEvent {
  uint64_t trace_id = 0;
  uint64_t start_ns = 0;  ///< monotonic clock
  uint64_t dur_ns = 0;
  const char* name = "";
  uint32_t span_id = 0;
  uint32_t parent_id = 0;
  uint32_t worker = 0;
  uint64_t plan_sig = 0;           ///< canonical query signature
  uint64_t planner_fp = 0;         ///< PlanBuilder::ConfigFingerprint()
  uint64_t estimator_version = 0;  ///< serve estimator version at execution
};

/// Monotonic (steady_clock) nanoseconds; the time base of every span tick.
uint64_t MonotonicNowNs();

class TraceRecorder;

namespace internal {
/// Per-thread span cursor. recorder == nullptr means unbound: every span
/// site is a no-op. Bound only inside TraceRecorder::RequestScope.
struct ThreadTraceState {
  TraceRecorder* recorder = nullptr;
  uint32_t worker = 0;
  uint64_t trace_id = 0;
  uint32_t parent = 0;        ///< innermost open span (0 at the root)
  uint32_t next_span_id = 1;  ///< per-request span id allocator
  /// Plan identity of the in-flight request (SetRequestPlanContext); every
  /// span and flight-recorder event closed on this thread inherits it.
  uint64_t plan_sig = 0;
  uint64_t planner_fp = 0;
  uint64_t estimator_version = 0;
};
inline thread_local ThreadTraceState g_thread_trace;
}  // namespace internal

/// Stamps the bound request's plan identity onto the calling thread; spans
/// recorded after this call (including the enclosing request root, which
/// closes last) and flight-recorder dumps carry it. No-op on unbound
/// threads. Cleared automatically when the RequestScope ends.
inline void SetRequestPlanContext(uint64_t plan_sig, uint64_t planner_fp,
                                  uint64_t estimator_version) {
  auto& tls = internal::g_thread_trace;
  if (tls.recorder == nullptr) return;
  tls.plan_sig = plan_sig;
  tls.planner_fp = planner_fp;
  tls.estimator_version = estimator_version;
}

/// Collects span events into per-worker buffers plus per-worker flight
/// rings. Each shard is written by one bound worker thread at a time (the
/// serve pool guarantees this) under an uncontended per-shard mutex, so
/// concurrent Events()/Incidents() readers are race-free (TSan-clean)
/// without hot-path cross-worker sharing.
class TraceRecorder {
 public:
  struct Options {
    /// Span-buffer capacity per worker; events beyond it are counted in
    /// dropped_events() instead of growing without bound.
    size_t max_events_per_worker = 1 << 15;
    /// Flight-recorder ring entries per worker.
    size_t flight_capacity = 128;
    /// Oldest incidents are discarded beyond this many.
    size_t max_incidents = 256;
  };

  /// Plan identity attached to an incident so degraded requests can be
  /// joined against calibration reports (obs/calibration.h) and the serve
  /// plan cache; all-zero when the request never resolved a plan.
  /// No default member initializers: this type appears as a defaulted
  /// reference argument below, and NSDMIs in a nested class may not be used
  /// before the enclosing class is complete. RequestMeta() value-init
  /// zeroes all fields.
  struct RequestMeta {
    uint64_t plan_sig;
    uint64_t planner_fp;
    uint64_t estimator_version;
  };

  /// One flight-recorder dump: the dumping worker's recent span events
  /// (oldest first) at the moment a request ended degraded.
  struct Incident {
    uint64_t trace_id = 0;
    std::string reason;
    uint32_t worker = 0;
    uint64_t at_ns = 0;
    RequestMeta meta{};
    std::vector<SpanEvent> events;
  };

  explicit TraceRecorder(size_t num_workers);
  TraceRecorder(size_t num_workers, Options options);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  size_t num_workers() const { return shards_.size(); }

  /// Allocates a fresh request trace id (never 0).
  uint64_t NewTraceId() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Binds the calling thread to (this recorder, worker, trace_id) for the
  /// scope's lifetime; CAQP_OBS_SPAN sites on this thread record here.
  /// Scopes must not nest across recorders on one thread.
  ///
  /// `parent_span` is the cross-worker parent: spans opened under this scope
  /// with no enclosing local span get it as their parent_id instead of 0.
  /// The dist tier threads the coordinator's scatter-span id here so every
  /// shard-side span tree hangs off the coordinator request span. Span ids
  /// allocated under the scope start at SpanIdBase(worker), so scopes on
  /// different worker slots of one recorder never collide.
  class RequestScope {
   public:
    RequestScope(TraceRecorder* recorder, size_t worker, uint64_t trace_id,
                 uint32_t parent_span = 0);
    ~RequestScope();
    RequestScope(const RequestScope&) = delete;
    RequestScope& operator=(const RequestScope&) = delete;

   private:
    internal::ThreadTraceState saved_;
  };

  /// Appends one completed event to `worker`'s buffer and flight ring.
  /// Normally called via ScopedSpan / RecordSpan, not directly.
  void Record(size_t worker, const SpanEvent& ev);

  /// Flight-recorder dump: snapshots `worker`'s ring (oldest first) into
  /// the incident list. Call when a request ends degraded. `meta` carries
  /// the request's plan identity when known.
  void DumpFlight(size_t worker, uint64_t trace_id, const char* reason,
                  const RequestMeta& meta = RequestMeta());

  /// Incident with no span context, for requests rejected before reaching a
  /// worker (load shedding happens on the submitting thread).
  void RecordIncident(uint64_t trace_id, const char* reason,
                      const RequestMeta& meta = RequestMeta());

  /// All buffered events across workers, sorted by start tick.
  std::vector<SpanEvent> Events() const;
  std::vector<Incident> Incidents() const;
  size_t incident_count() const;
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  // Shards are separately allocated (and padded) so one worker's appends
  // never share a cache line with another's.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<SpanEvent> events;  // guarded by mu
    std::vector<SpanEvent> ring;    // guarded by mu; flight recorder
    size_t ring_next = 0;           // guarded by mu
    bool ring_full = false;         // guarded by mu
  };

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_trace_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex incidents_mu_;
  std::vector<Incident> incidents_;  // guarded by incidents_mu_
};

/// RAII span: opens on construction, records on destruction. Inactive on
/// unbound threads or when obs::SetEnabled(false); the unbound check is
/// inline (one thread-local load and an untaken branch) so hot paths shared
/// with non-serve callers — the executor inner loop in particular — pay no
/// out-of-line call when tracing is not in play.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name) {
#if CAQP_OBS_ENABLED
    if (internal::g_thread_trace.recorder != nullptr) Open(0);
#endif
  }

  /// `start_ns` overrides the span start (0 = now) — used for spans that
  /// logically began on another thread, e.g. the request root measured from
  /// submission time.
  ScopedSpan(const char* name, uint64_t start_ns) : name_(name) {
#if CAQP_OBS_ENABLED
    if (internal::g_thread_trace.recorder != nullptr) Open(start_ns);
#else
    (void)start_ns;
#endif
  }

  ~ScopedSpan() {
#if CAQP_OBS_ENABLED
    if (active_) Close();
#endif
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  SpanContext context() const;

 private:
  void Open(uint64_t start_ns);  // bound slow path; checks Enabled()
  void Close();                  // records the event

  const char* name_;
  uint64_t start_ns_ = 0;
  uint32_t span_id_ = 0;
  uint32_t parent_ = 0;
  bool active_ = false;
};

namespace internal {
/// Slow path of RecordSpan, called only with a bound recorder.
void RecordSpanBound(const char* name, uint64_t start_ns, uint64_t end_ns);
}  // namespace internal

/// Records an already-closed span [start_ns, end_ns] as a child of the
/// innermost open span on the bound thread. No-op when unbound/disabled.
inline void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
#if CAQP_OBS_ENABLED
  if (internal::g_thread_trace.recorder != nullptr) {
    internal::RecordSpanBound(name, start_ns, end_ns);
  }
#else
  (void)name;
  (void)start_ns;
  (void)end_ns;
#endif
}

/// True iff the calling thread is inside a RequestScope.
inline bool TracingBound() {
  return internal::g_thread_trace.recorder != nullptr;
}

}  // namespace obs
}  // namespace caqp

// Statement macro for instrumenting a scope; compiles away entirely when
// the obs subsystem is compiled out.
#if CAQP_OBS_ENABLED
#define CAQP_OBS_SPAN(var, name) ::caqp::obs::ScopedSpan var(name)
#else
#define CAQP_OBS_SPAN(var, name)
#endif

#endif  // CAQP_OBS_SPAN_H_
