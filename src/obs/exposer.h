// MetricsExposer — a minimal embedded HTTP server thread serving Prometheus
// text exposition from a caller-supplied render callback.
//
// Deliberately tiny: one listener thread, one connection handled at a time,
// GET-only, Connection: close. A metrics scrape arrives every few seconds
// from one collector; this is not a web server and never sits on a request
// path. No third-party dependency — plain POSIX sockets — so the serving
// binary stays self-contained (the container bakes in no HTTP library).
//
// Endpoints:
//   GET /metrics   -> 200, text/plain; version=0.0.4 — render() output
//   GET /healthz   -> 200, "ok\n"
//   anything else  -> 404 (non-GET: 405)
//
// Lifecycle: Start() binds (port 0 picks an ephemeral port, readable via
// port() — how tests and the CI scrape smoke run without a fixed port) and
// spawns the listener; Stop() (or the destructor) wakes it through a
// self-pipe and joins. render() runs on the listener thread, so it must be
// thread-safe against the serving workers — registry snapshots are.
//
// Cost when constructed but not started: a std::function and a few ints —
// nothing is bound, no thread exists, no instrumentation site is touched.
// bench_obs_overhead links the exposer in exactly this state to pin that.

#ifndef CAQP_OBS_EXPOSER_H_
#define CAQP_OBS_EXPOSER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace caqp {
namespace obs {

class MetricsExposer {
 public:
  struct Options {
    /// TCP port to bind; 0 picks an ephemeral port (see port()).
    uint16_t port = 0;
    /// Bind address. The default stays loopback-only: exposing process
    /// internals on all interfaces is an explicit operator decision.
    std::string bind_address = "127.0.0.1";
  };

  /// Produces the /metrics body (Prometheus text exposition 0.0.4).
  using Renderer = std::function<std::string()>;

  MetricsExposer(Renderer render, Options options);
  ~MetricsExposer();

  MetricsExposer(const MetricsExposer&) = delete;
  MetricsExposer& operator=(const MetricsExposer&) = delete;

  /// Binds, listens, and spawns the listener thread. Fails (without
  /// crashing) on bind/listen errors — an occupied port reports
  /// InvalidArgument with errno text.
  Status Start();

  /// Idempotent; joins the listener. Called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the ephemeral one when Options::port was 0); 0 before
  /// a successful Start().
  uint16_t port() const { return port_; }

  /// Scrapes served since Start(), for tests and the serve report.
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  Renderer render_;
  Options options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace caqp

#endif  // CAQP_OBS_EXPOSER_H_
