// Query canonicalization and stable 64-bit query signatures.
//
// The serving layer (src/serve) caches compiled plans across queries, so it
// needs a key under which semantically identical queries collide: the same
// WHERE clause submitted with predicates (or OR-conjuncts) in a different
// order must fetch the same plan. Canonicalization maps a query to a unique
// representative of its order-equivalence class:
//
//  * within each conjunct, predicates sort by (attr, lo, hi, negated) and
//    exact duplicates are dropped (AND is idempotent);
//  * conjuncts sort lexicographically by their sorted predicate lists and
//    exact duplicate conjuncts are dropped (OR is idempotent).
//
// Bounds are already normalized by construction (Predicate checks lo <= hi),
// and duplicate *attributes* with different ranges are preserved untouched:
// Query::ValidFor rejects them, so collapsing them here would only mask
// invalid input. The signature is the structural hash of the canonical form
// — stable across processes and platforms, suitable for persistent keys.

#ifndef CAQP_CORE_QUERY_SIGNATURE_H_
#define CAQP_CORE_QUERY_SIGNATURE_H_

#include <cstdint>

#include "core/query.h"

namespace caqp {

/// The canonical representative of `query`'s order-equivalence class (see
/// file comment). Idempotent: Canonicalize(Canonicalize(q)) == Canonicalize(q).
Query CanonicalizeQuery(const Query& query);

/// Stable 64-bit signature of the canonical form: equal for queries that
/// differ only in predicate/conjunct order or idempotent duplicates.
uint64_t QuerySignature(const Query& query);

/// True iff the two queries canonicalize to the same form.
bool EquivalentQueries(const Query& a, const Query& b);

}  // namespace caqp

#endif  // CAQP_CORE_QUERY_SIGNATURE_H_
