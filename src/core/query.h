// Queries.
//
// The paper's core query class is a conjunction of range predicates
// (Query (1)); Section 7 extends to existential queries, which we support as
// DNF: an OR of conjunctions ("does any mote see bright AND hot?"). A
// conjunctive query is a DNF query with a single conjunct, and the sequential
// planners (Naive / OptSeq / GreedySeq) require that form; the exhaustive and
// greedy conditional planners work on any DNF query through the three-valued
// range evaluation.

#ifndef CAQP_CORE_QUERY_H_
#define CAQP_CORE_QUERY_H_

#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/schema.h"
#include "core/types.h"

namespace caqp {

/// A conjunction of predicates (implicitly ANDed).
using Conjunct = std::vector<Predicate>;

class Query {
 public:
  Query() = default;

  /// Conjunctive query: WHERE p1 AND p2 AND ... Each attribute may appear in
  /// at most one predicate (the paper's query class).
  static Query Conjunction(Conjunct predicates);

  /// DNF query: WHERE (c1) OR (c2) OR ... Each conjunct independently obeys
  /// the one-predicate-per-attribute rule.
  static Query Disjunction(std::vector<Conjunct> conjuncts);

  bool IsConjunctive() const { return conjuncts_.size() == 1; }
  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }

  /// The single conjunct of a conjunctive query; aborts otherwise.
  const Conjunct& predicates() const {
    CAQP_CHECK(IsConjunctive());
    return conjuncts_[0];
  }

  /// phi(x): truth of the WHERE clause on a full tuple.
  bool Matches(const Tuple& t) const;

  /// Three-valued truth of phi given per-attribute ranges (one per schema
  /// attribute). Drives the planners' "ranges sufficient to determine truth"
  /// base case (Figure 5).
  Truth EvaluateOnRanges(const std::vector<ValueRange>& ranges) const;

  /// Truth of phi assuming X_attr in `ranges[attr]` for every attribute, but
  /// evaluated per-conjunct; identical to EvaluateOnRanges (exposed for
  /// tests).
  Truth EvaluateConjunctOnRanges(size_t conjunct,
                                 const std::vector<ValueRange>& ranges) const;

  /// Sorted ids of the attributes referenced anywhere in the query.
  std::vector<AttrId> ReferencedAttributes() const;

  /// True if every referenced attribute id is valid for `schema` and the
  /// one-predicate-per-attribute-per-conjunct rule holds.
  bool ValidFor(const Schema& schema) const;

  /// Total number of predicates across conjuncts.
  size_t TotalPredicates() const;

  /// Structural equality: same conjuncts with the same predicates in the
  /// same order. Semantically equal queries written in different orders
  /// compare unequal here; canonicalize first (core/query_signature.h) for
  /// order-insensitive comparison.
  bool operator==(const Query& o) const { return conjuncts_ == o.conjuncts_; }

  /// Stable 64-bit structural hash, consistent with operator==. Like
  /// Predicate::Hash, order-sensitive; QuerySignature() hashes the
  /// canonical form instead.
  uint64_t Hash() const;

  std::string ToString(const Schema& schema) const;

 private:
  /// DNF: OR over conjuncts_, AND within each.
  std::vector<Conjunct> conjuncts_;
};

}  // namespace caqp

#endif  // CAQP_CORE_QUERY_H_
