// Schema: the set of attributes available in an acquisitional system, their
// discretized domain sizes and per-attribute acquisition costs.
//
// The acquisition cost C_i (paper Section 2.1) is the energy / latency /
// computation paid the first time attribute X_i is read while evaluating one
// tuple; the paper's datasets use cost 100 for expensive sensor readings
// (light, temperature, humidity) and cost 1 for locally-available values
// (node id, time of day, battery voltage).

#ifndef CAQP_CORE_SCHEMA_H_
#define CAQP_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "core/types.h"

namespace caqp {

/// Metadata for one attribute.
struct AttributeSpec {
  std::string name;
  /// Domain size K_i: values are in [0, domain_size).
  uint32_t domain_size = 2;
  /// Acquisition cost C_i in abstract cost units (paper: energy units).
  double cost = 1.0;

  AttributeSpec() = default;
  AttributeSpec(std::string n, uint32_t k, double c)
      : name(std::move(n)), domain_size(k), cost(c) {}
};

/// Immutable-after-construction attribute catalog. All planner, estimator and
/// executor components reference attributes by AttrId into one Schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeSpec> attrs);

  /// Appends an attribute; returns its id. Domain size must be >= 2 (a
  /// 1-value attribute carries no information and breaks split enumeration).
  AttrId AddAttribute(const std::string& name, uint32_t domain_size,
                      double cost);

  size_t num_attributes() const { return attrs_.size(); }
  const AttributeSpec& attribute(AttrId id) const {
    CAQP_DCHECK(id < attrs_.size());
    return attrs_[id];
  }
  const std::string& name(AttrId id) const { return attribute(id).name; }
  uint32_t domain_size(AttrId id) const { return attribute(id).domain_size; }
  double cost(AttrId id) const { return attribute(id).cost; }

  /// Looks up an attribute by name; returns kInvalidAttr if absent.
  AttrId FindAttribute(const std::string& name) const;

  /// The full range [0, K_i - 1] for attribute id.
  ValueRange FullRange(AttrId id) const {
    return ValueRange{0, static_cast<Value>(domain_size(id) - 1)};
  }

  /// One full range per attribute: the root subproblem of the planners.
  std::vector<ValueRange> FullRanges() const;

  /// True if `ranges` has one entry per attribute and each is within domain.
  bool ValidRanges(const std::vector<ValueRange>& ranges) const;

  /// True if the tuple has one in-domain value per attribute.
  bool ValidTuple(const Tuple& t) const;

  bool operator==(const Schema& o) const;

 private:
  std::vector<AttributeSpec> attrs_;
};

}  // namespace caqp

#endif  // CAQP_CORE_SCHEMA_H_
