#include "core/csv.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <fstream>
#include <sstream>

namespace caqp {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) out.push_back(Trim(cell));
  if (!line.empty() && line.back() == ',') out.push_back("");
  return out;
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text) {
  CsvTable table;
  std::stringstream ss(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = SplitCells(line);
    if (table.column_names.empty()) {
      table.column_names = std::move(cells);
      if (table.column_names.empty()) {
        return Status::InvalidArgument("empty CSV header");
      }
      continue;
    }
    if (cells.size() != table.column_names.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected " +
                                     std::to_string(table.column_names.size()) +
                                     " cells, got " +
                                     std::to_string(cells.size()));
    }
    std::vector<double> row(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      char* end = nullptr;
      row[i] = std::strtod(cells[i].c_str(), &end);
      if (end == cells[i].c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": non-numeric cell '" + cells[i] +
                                       "'");
      }
    }
    table.rows.push_back(std::move(row));
  }
  if (table.column_names.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }
  return table;
}

Result<CsvTable> LoadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

Result<Dataset> DatasetFromCsv(const CsvTable& table,
                               const std::vector<CsvColumnSpec>& specs) {
  if (specs.empty()) return Status::InvalidArgument("no columns selected");
  if (table.rows.empty()) return Status::InvalidArgument("CSV has no rows");

  std::vector<size_t> col_idx;
  Schema schema;
  for (const CsvColumnSpec& spec : specs) {
    auto it = std::find(table.column_names.begin(), table.column_names.end(),
                        spec.name);
    if (it == table.column_names.end()) {
      return Status::NotFound("CSV column '" + spec.name + "' not found");
    }
    if (spec.bins < 2) {
      return Status::InvalidArgument("column '" + spec.name +
                                     "': bins must be >= 2");
    }
    col_idx.push_back(static_cast<size_t>(it - table.column_names.begin()));
    schema.AddAttribute(spec.name, spec.bins, spec.cost);
  }

  // Fit one discretizer per selected column.
  std::vector<std::function<Value(double)>> to_bin(specs.size());
  std::vector<std::unique_ptr<UniformDiscretizer>> uniform(specs.size());
  std::vector<std::unique_ptr<QuantileDiscretizer>> quantile(specs.size());
  for (size_t a = 0; a < specs.size(); ++a) {
    if (specs[a].equi_depth) {
      std::vector<double> sample;
      sample.reserve(table.rows.size());
      for (const auto& row : table.rows) sample.push_back(row[col_idx[a]]);
      quantile[a] =
          std::make_unique<QuantileDiscretizer>(std::move(sample),
                                                specs[a].bins);
      to_bin[a] = [d = quantile[a].get()](double v) { return d->ToBin(v); };
    } else {
      double lo = table.rows[0][col_idx[a]];
      double hi = lo;
      for (const auto& row : table.rows) {
        lo = std::min(lo, row[col_idx[a]]);
        hi = std::max(hi, row[col_idx[a]]);
      }
      if (lo == hi) {
        // A constant column carries no information; widen artificially so
        // the discretizer is well-formed (all values land in bin 0).
        hi = lo + 1.0;
      }
      uniform[a] = std::make_unique<UniformDiscretizer>(lo, hi,
                                                        specs[a].bins);
      to_bin[a] = [d = uniform[a].get()](double v) { return d->ToBin(v); };
    }
  }

  Dataset ds(schema);
  Tuple t(specs.size());
  for (const auto& row : table.rows) {
    for (size_t a = 0; a < specs.size(); ++a) {
      t[a] = to_bin[a](row[col_idx[a]]);
    }
    ds.Append(t);
  }
  return ds;
}

}  // namespace caqp
