#include "core/dataset.h"

namespace caqp {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

void Dataset::Append(const Tuple& tuple) {
  CAQP_CHECK(schema_.ValidTuple(tuple));
  for (size_t i = 0; i < tuple.size(); ++i) {
    columns_[i].push_back(tuple[i]);
  }
  ++num_rows_;
}

void Dataset::AppendColumns(const std::vector<std::vector<Value>>& columns) {
  CAQP_CHECK_EQ(columns.size(), schema_.num_attributes());
  const size_t add = columns.empty() ? 0 : columns[0].size();
  for (size_t a = 0; a < columns.size(); ++a) {
    CAQP_CHECK_EQ(columns[a].size(), add);
    for (Value v : columns[a]) {
      CAQP_CHECK_LT(v, schema_.domain_size(static_cast<AttrId>(a)));
    }
    columns_[a].insert(columns_[a].end(), columns[a].begin(),
                       columns[a].end());
  }
  num_rows_ += add;
}

Tuple Dataset::GetTuple(RowId row) const {
  CAQP_DCHECK(row < num_rows_);
  Tuple t(schema_.num_attributes());
  for (size_t a = 0; a < t.size(); ++a) {
    t[a] = columns_[a][row];
  }
  return t;
}

std::pair<Dataset, Dataset> Dataset::SplitAt(size_t pivot) const {
  CAQP_CHECK_LE(pivot, num_rows_);
  Dataset head(schema_);
  Dataset tail(schema_);
  head.num_rows_ = pivot;
  tail.num_rows_ = num_rows_ - pivot;
  for (size_t a = 0; a < columns_.size(); ++a) {
    head.columns_[a].assign(columns_[a].begin(), columns_[a].begin() + pivot);
    tail.columns_[a].assign(columns_[a].begin() + pivot, columns_[a].end());
  }
  return {std::move(head), std::move(tail)};
}

std::pair<Dataset, Dataset> Dataset::SplitFraction(
    double train_fraction) const {
  CAQP_CHECK_GE(train_fraction, 0.0);
  CAQP_CHECK_LE(train_fraction, 1.0);
  return SplitAt(static_cast<size_t>(train_fraction * num_rows_));
}

Dataset Dataset::Select(const std::vector<RowId>& rows) const {
  Dataset out(schema_);
  out.num_rows_ = rows.size();
  for (size_t a = 0; a < columns_.size(); ++a) {
    out.columns_[a].reserve(rows.size());
    for (RowId r : rows) {
      CAQP_DCHECK(r < num_rows_);
      out.columns_[a].push_back(columns_[a][r]);
    }
  }
  return out;
}

}  // namespace caqp
