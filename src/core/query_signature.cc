#include "core/query_signature.h"

#include <algorithm>
#include <tuple>

namespace caqp {

namespace {

std::tuple<AttrId, Value, Value, bool> PredKey(const Predicate& p) {
  return {p.attr, p.lo, p.hi, p.negated};
}

Conjunct CanonicalConjunct(const Conjunct& c) {
  Conjunct out = c;
  std::sort(out.begin(), out.end(), [](const Predicate& a, const Predicate& b) {
    return PredKey(a) < PredKey(b);
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Lexicographic order over sorted predicate lists.
bool ConjunctLess(const Conjunct& a, const Conjunct& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const Predicate& x, const Predicate& y) {
        return PredKey(x) < PredKey(y);
      });
}

}  // namespace

Query CanonicalizeQuery(const Query& query) {
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(query.conjuncts().size());
  for (const Conjunct& c : query.conjuncts()) {
    conjuncts.push_back(CanonicalConjunct(c));
  }
  std::sort(conjuncts.begin(), conjuncts.end(), ConjunctLess);
  conjuncts.erase(std::unique(conjuncts.begin(), conjuncts.end()),
                  conjuncts.end());
  return Query::Disjunction(std::move(conjuncts));
}

uint64_t QuerySignature(const Query& query) {
  return CanonicalizeQuery(query).Hash();
}

bool EquivalentQueries(const Query& a, const Query& b) {
  return CanonicalizeQuery(a) == CanonicalizeQuery(b);
}

}  // namespace caqp
