// Discretizers map raw (real-valued) sensor readings into the finite domains
// [0, K) that the planners operate on (paper Section 2.1 / 4.3). Two
// strategies are provided:
//
//  * UniformDiscretizer  -- equi-width bins over [min, max]; this matches the
//    paper's split-point restriction scheme ("divide the domain of the
//    variable into equal sized ranges").
//  * QuantileDiscretizer -- equi-depth bins fit to a sample, useful for
//    heavy-tailed readings such as light in Lux.
//
// A Discretizer also reports per-bin representative values so benches can map
// bins back to physical units when printing plans (Figure 9 style output).

#ifndef CAQP_CORE_DISCRETIZER_H_
#define CAQP_CORE_DISCRETIZER_H_

#include <vector>

#include "core/types.h"

namespace caqp {

/// Equi-width discretization of [min_value, max_value] into `bins` bins.
/// Values outside the range clamp to the first/last bin.
class UniformDiscretizer {
 public:
  UniformDiscretizer(double min_value, double max_value, uint32_t bins);

  /// Bin index for a raw reading.
  Value ToBin(double raw) const;
  /// Lower edge of a bin in raw units.
  double BinLower(Value bin) const;
  /// Upper edge of a bin in raw units.
  double BinUpper(Value bin) const;
  /// Midpoint of a bin in raw units.
  double BinCenter(Value bin) const;

  uint32_t bins() const { return bins_; }
  double min_value() const { return min_; }
  double max_value() const { return max_; }

 private:
  double min_;
  double max_;
  uint32_t bins_;
  double width_;
};

/// Equi-depth discretization: bin edges are sample quantiles, so each bin
/// holds roughly the same number of training points.
class QuantileDiscretizer {
 public:
  /// Fits `bins` equi-depth bins to the sample. The sample must be non-empty.
  QuantileDiscretizer(std::vector<double> sample, uint32_t bins);

  Value ToBin(double raw) const;
  /// Inclusive lower edge of bin i (== upper edge of bin i-1).
  double BinLower(Value bin) const;

  uint32_t bins() const { return bins_; }

 private:
  uint32_t bins_;
  /// bins_ - 1 interior cut points, ascending. Value v maps to the first bin
  /// whose cut exceeds it.
  std::vector<double> cuts_;
  double min_;
};

}  // namespace caqp

#endif  // CAQP_CORE_DISCRETIZER_H_
