#include "core/predicate.h"

#include <cstdio>

namespace caqp {

Truth Predicate::EvaluateOnRange(const ValueRange& range) const {
  const bool fully_inside = (lo <= range.lo && range.hi <= hi);
  const bool disjoint = (range.hi < lo || range.lo > hi);
  if (fully_inside) return negated ? Truth::kFalse : Truth::kTrue;
  if (disjoint) return negated ? Truth::kTrue : Truth::kFalse;
  return Truth::kUnknown;
}

std::string Predicate::ToString(const Schema& schema) const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %sin [%u,%u]",
                schema.name(attr).c_str(), negated ? "not " : "",
                static_cast<unsigned>(lo), static_cast<unsigned>(hi));
  return buf;
}

}  // namespace caqp
