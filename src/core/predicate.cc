#include "core/predicate.h"

#include <cstdio>

namespace caqp {

uint64_t Predicate::Hash() const {
  // Pack the four fields into one word, then finalize with splitmix64 so
  // near-identical predicates (adjacent bounds, negation flips) land far
  // apart. The packing is injective, so distinct predicates never collide
  // before mixing.
  uint64_t x = (uint64_t{attr} << 33) | (uint64_t{lo} << 17) |
               (uint64_t{hi} << 1) | (negated ? 1u : 0u);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Truth Predicate::EvaluateOnRange(const ValueRange& range) const {
  const bool fully_inside = (lo <= range.lo && range.hi <= hi);
  const bool disjoint = (range.hi < lo || range.lo > hi);
  if (fully_inside) return negated ? Truth::kFalse : Truth::kTrue;
  if (disjoint) return negated ? Truth::kTrue : Truth::kFalse;
  return Truth::kUnknown;
}

std::string Predicate::ToString(const Schema& schema) const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %sin [%u,%u]",
                schema.name(attr).c_str(), negated ? "not " : "",
                static_cast<unsigned>(lo), static_cast<unsigned>(hi));
  return buf;
}

}  // namespace caqp
