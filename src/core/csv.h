// CSV ingestion: lets users run the planners over their own sensor logs
// (e.g., the original Intel Lab trace if available). Raw real-valued columns
// are discretized into a Dataset through per-column UniformDiscretizers.

#ifndef CAQP_CORE_CSV_H_
#define CAQP_CORE_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/discretizer.h"

namespace caqp {

/// Raw parsed CSV: column names (from the header row) and row-major numeric
/// cells. Every data row must have exactly one numeric cell per column.
struct CsvTable {
  std::vector<std::string> column_names;
  std::vector<std::vector<double>> rows;
};

/// Parses CSV text with a mandatory header row. Supports comma separation,
/// leading/trailing whitespace around cells and blank-line skipping; no
/// quoting (sensor logs are plain numeric).
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> LoadCsvFile(const std::string& path);

/// Per-column ingestion spec: how to discretize and what acquiring the
/// attribute costs.
struct CsvColumnSpec {
  std::string name;   // must match a CSV header
  uint32_t bins = 8;  // discretized domain size
  double cost = 1.0;  // acquisition cost C_i
  /// false: equi-width bins over the observed [min, max] (the paper's
  /// Section 4.3 equal-sized ranges). true: equi-depth bins at sample
  /// quantiles -- better for heavy-tailed readings such as light in Lux,
  /// where equi-width packs almost all mass into one bin.
  bool equi_depth = false;
};

/// Builds a Dataset by discretizing the selected columns per their specs.
/// Column order in `specs` defines the schema's attribute order.
Result<Dataset> DatasetFromCsv(const CsvTable& table,
                               const std::vector<CsvColumnSpec>& specs);

}  // namespace caqp

#endif  // CAQP_CORE_CSV_H_
