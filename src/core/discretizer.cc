#include "core/discretizer.h"

#include <algorithm>
#include <cmath>

namespace caqp {

UniformDiscretizer::UniformDiscretizer(double min_value, double max_value,
                                       uint32_t bins)
    : min_(min_value), max_(max_value), bins_(bins) {
  CAQP_CHECK_GE(bins, 2u);
  CAQP_CHECK_LT(min_value, max_value);
  width_ = (max_ - min_) / bins_;
}

Value UniformDiscretizer::ToBin(double raw) const {
  if (raw <= min_) return 0;
  if (raw >= max_) return static_cast<Value>(bins_ - 1);
  auto bin = static_cast<uint32_t>((raw - min_) / width_);
  if (bin >= bins_) bin = bins_ - 1;  // Guards against FP edge rounding.
  return static_cast<Value>(bin);
}

double UniformDiscretizer::BinLower(Value bin) const {
  CAQP_DCHECK(bin < bins_);
  return min_ + width_ * bin;
}

double UniformDiscretizer::BinUpper(Value bin) const {
  CAQP_DCHECK(bin < bins_);
  return min_ + width_ * (bin + 1);
}

double UniformDiscretizer::BinCenter(Value bin) const {
  return 0.5 * (BinLower(bin) + BinUpper(bin));
}

QuantileDiscretizer::QuantileDiscretizer(std::vector<double> sample,
                                         uint32_t bins)
    : bins_(bins) {
  CAQP_CHECK_GE(bins, 2u);
  CAQP_CHECK(!sample.empty());
  std::sort(sample.begin(), sample.end());
  min_ = sample.front();
  cuts_.reserve(bins_ - 1);
  const size_t n = sample.size();
  for (uint32_t i = 1; i < bins_; ++i) {
    size_t idx = std::min<size_t>(n - 1, (n * i) / bins_);
    double cut = sample[idx];
    // Keep cuts strictly increasing; duplicated quantiles (very common with
    // quantized sensor readings) would otherwise create empty bins that trap
    // every value in the first of the duplicates.
    if (!cuts_.empty() && cut <= cuts_.back()) {
      cut = std::nextafter(cuts_.back(), sample.back() + 1.0);
    }
    cuts_.push_back(cut);
  }
}

Value QuantileDiscretizer::ToBin(double raw) const {
  auto it = std::upper_bound(cuts_.begin(), cuts_.end(), raw);
  return static_cast<Value>(it - cuts_.begin());
}

double QuantileDiscretizer::BinLower(Value bin) const {
  CAQP_DCHECK(bin < bins_);
  if (bin == 0) return min_;
  return cuts_[bin - 1];
}

}  // namespace caqp
