// Column-major store of discretized tuples. Datasets serve two roles in the
// paper's architecture (Figure 4):
//
//  1. *Historical/training data*: the basestation estimates every conditional
//     probability the planners need from counts over this data (Section 5).
//  2. *Test data*: held-out tuples over a disjoint time window, used to
//     measure the realized acquisition cost of a plan.
//
// Column-major layout keeps the planner's hot loops (per-attribute histogram
// builds and range filters over row-id sets) cache-friendly.

#ifndef CAQP_CORE_DATASET_H_
#define CAQP_CORE_DATASET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/schema.h"
#include "core/types.h"

namespace caqp {

/// Row index into a Dataset.
using RowId = uint32_t;

class Dataset {
 public:
  /// Creates an empty dataset over `schema`.
  explicit Dataset(Schema schema);

  /// Appends a tuple; aborts if it does not match the schema (data
  /// generators are in-process and must produce valid tuples).
  void Append(const Tuple& tuple);

  /// Bulk append of column data. All columns must have equal length and
  /// in-domain values.
  void AppendColumns(const std::vector<std::vector<Value>>& columns);

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return schema_.num_attributes(); }
  const Schema& schema() const { return schema_; }

  Value at(RowId row, AttrId attr) const {
    CAQP_DCHECK(row < num_rows_);
    return columns_[attr][row];
  }

  /// Materializes row `row` as a Tuple.
  Tuple GetTuple(RowId row) const;

  /// Whole column for attribute `attr`.
  const std::vector<Value>& column(AttrId attr) const {
    CAQP_DCHECK(attr < columns_.size());
    return columns_[attr];
  }

  /// Splits rows [0, pivot) / [pivot, n) into two datasets — the paper's
  /// disjoint-time-window train/test protocol (Section 6, "Test v.
  /// Training").
  std::pair<Dataset, Dataset> SplitAt(size_t pivot) const;

  /// Convenience: split by fraction (train gets floor(frac * n) rows).
  std::pair<Dataset, Dataset> SplitFraction(double train_fraction) const;

  /// Dataset restricted to the given rows (used by tests; planners keep
  /// row-id vectors instead of materializing).
  Dataset Select(const std::vector<RowId>& rows) const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  /// columns_[attr][row]
  std::vector<std::vector<Value>> columns_;
};

}  // namespace caqp

#endif  // CAQP_CORE_DATASET_H_
