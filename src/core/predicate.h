// Range predicates over discretized attributes.
//
// The paper's query class (Query (1), Section 1) is a conjunction of range
// predicates l_i <= X_i <= r_i. The Garden workload (Section 6.2) also uses
// negated ranges NOT(a <= X <= b), so Predicate carries a `negated` flag.

#ifndef CAQP_CORE_PREDICATE_H_
#define CAQP_CORE_PREDICATE_H_

#include <string>

#include "core/schema.h"
#include "core/types.h"

namespace caqp {

struct Predicate {
  AttrId attr = kInvalidAttr;
  /// Inclusive discretized bounds l <= X <= r.
  Value lo = 0;
  Value hi = 0;
  /// If true, the predicate is NOT(lo <= X <= hi).
  bool negated = false;

  Predicate() = default;
  Predicate(AttrId a, Value l, Value h, bool neg = false)
      : attr(a), lo(l), hi(h), negated(neg) {
    CAQP_CHECK_LE(l, h);
  }

  /// Truth of the predicate on a concrete attribute value.
  bool Matches(Value v) const {
    const bool in = (lo <= v && v <= hi);
    return negated ? !in : in;
  }

  /// Truth on a full tuple.
  bool Matches(const Tuple& t) const {
    CAQP_DCHECK(attr < t.size());
    return Matches(t[attr]);
  }

  /// Three-valued truth given only that X lies in `range`:
  ///  * kTrue    if every value in range satisfies the predicate,
  ///  * kFalse   if none does,
  ///  * kUnknown otherwise.
  Truth EvaluateOnRange(const ValueRange& range) const;

  /// Probability mass interpretation helper: the sub-range of `range` on
  /// which the (non-negated) inner interval holds; empty() if disjoint.
  /// Exposed for estimator unit tests.
  bool IntersectsInterval(const ValueRange& range) const {
    return !(range.hi < lo || range.lo > hi);
  }

  bool operator==(const Predicate& o) const = default;

  /// AbslHashValue-style stable 64-bit hash, consistent with operator==
  /// (equal predicates hash equal). Input to query signatures
  /// (core/query_signature.h) and the serve-layer plan-cache key, so the
  /// value must not depend on process state or pointer identity.
  uint64_t Hash() const;

  /// "X3 in [2,5]" / "X3 not in [2,5]" with the schema's attribute name.
  std::string ToString(const Schema& schema) const;
};

}  // namespace caqp

#endif  // CAQP_CORE_PREDICATE_H_
