#include "core/query.h"

#include <algorithm>
#include <set>

namespace caqp {

Query Query::Conjunction(Conjunct predicates) {
  CAQP_CHECK(!predicates.empty());
  Query q;
  q.conjuncts_.push_back(std::move(predicates));
  return q;
}

Query Query::Disjunction(std::vector<Conjunct> conjuncts) {
  CAQP_CHECK(!conjuncts.empty());
  for (const Conjunct& c : conjuncts) CAQP_CHECK(!c.empty());
  Query q;
  q.conjuncts_ = std::move(conjuncts);
  return q;
}

bool Query::Matches(const Tuple& t) const {
  for (const Conjunct& c : conjuncts_) {
    bool all = true;
    for (const Predicate& p : c) {
      if (!p.Matches(t)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

Truth Query::EvaluateConjunctOnRanges(
    size_t conjunct, const std::vector<ValueRange>& ranges) const {
  CAQP_DCHECK(conjunct < conjuncts_.size());
  Truth acc = Truth::kTrue;
  for (const Predicate& p : conjuncts_[conjunct]) {
    CAQP_DCHECK(p.attr < ranges.size());
    acc = TruthAnd(acc, p.EvaluateOnRange(ranges[p.attr]));
    if (acc == Truth::kFalse) return Truth::kFalse;
  }
  return acc;
}

Truth Query::EvaluateOnRanges(const std::vector<ValueRange>& ranges) const {
  Truth acc = Truth::kFalse;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    acc = TruthOr(acc, EvaluateConjunctOnRanges(i, ranges));
    if (acc == Truth::kTrue) return Truth::kTrue;
  }
  return acc;
}

std::vector<AttrId> Query::ReferencedAttributes() const {
  std::set<AttrId> attrs;
  for (const Conjunct& c : conjuncts_) {
    for (const Predicate& p : c) attrs.insert(p.attr);
  }
  return {attrs.begin(), attrs.end()};
}

bool Query::ValidFor(const Schema& schema) const {
  if (conjuncts_.empty()) return false;
  for (const Conjunct& c : conjuncts_) {
    if (c.empty()) return false;
    std::set<AttrId> seen;
    for (const Predicate& p : c) {
      if (p.attr >= schema.num_attributes()) return false;
      if (p.hi >= schema.domain_size(p.attr)) return false;
      if (p.lo > p.hi) return false;
      if (!seen.insert(p.attr).second) return false;
    }
  }
  return true;
}

size_t Query::TotalPredicates() const {
  size_t n = 0;
  for (const Conjunct& c : conjuncts_) n += c.size();
  return n;
}

uint64_t Query::Hash() const {
  // Length-prefixed chaining keeps the hash injective over the nested list
  // structure: [[p],[q]] and [[p,q]] mix different length terms.
  uint64_t h = HashCombine(0x71c9a1e5u, conjuncts_.size());
  for (const Conjunct& c : conjuncts_) {
    h = HashCombine(h, c.size());
    for (const Predicate& p : c) h = HashCombine(h, p.Hash());
  }
  return h;
}

std::string Query::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) out += " OR ";
    if (conjuncts_.size() > 1) out += "(";
    for (size_t j = 0; j < conjuncts_[i].size(); ++j) {
      if (j > 0) out += " AND ";
      out += conjuncts_[i][j].ToString(schema);
    }
    if (conjuncts_.size() > 1) out += ")";
  }
  return out;
}

}  // namespace caqp
