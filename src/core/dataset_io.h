// Binary dataset persistence: lets a basestation cache its (possibly large)
// discretized history between runs instead of re-ingesting CSV. Compact
// varint encoding, column-major, with a magic/version header and full
// validation on load.

#ifndef CAQP_CORE_DATASET_IO_H_
#define CAQP_CORE_DATASET_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace caqp {

/// Serializes schema + columns to a byte buffer.
std::vector<uint8_t> SerializeDataset(const Dataset& dataset);

/// Parses a buffer produced by SerializeDataset. Fails cleanly on
/// truncation, bad magic, or out-of-domain values.
Result<Dataset> DeserializeDataset(const std::vector<uint8_t>& bytes);

/// File convenience wrappers.
Status SaveDataset(const Dataset& dataset, const std::string& path);
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace caqp

#endif  // CAQP_CORE_DATASET_IO_H_
