#include "core/dataset_io.h"

#include <fstream>

#include "common/bytes.h"

namespace caqp {

namespace {

// "CAQPDS" + format version.
constexpr uint64_t kMagic = 0x43415150'44530001ULL;

}  // namespace

std::vector<uint8_t> SerializeDataset(const Dataset& dataset) {
  ByteWriter w;
  w.PutVarint(kMagic);
  const Schema& schema = dataset.schema();
  w.PutVarint(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttributeSpec& spec = schema.attribute(static_cast<AttrId>(a));
    w.PutString(spec.name);
    w.PutVarint(spec.domain_size);
    w.PutDouble(spec.cost);
  }
  w.PutVarint(dataset.num_rows());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    for (Value v : dataset.column(static_cast<AttrId>(a))) {
      w.PutVarint(v);
    }
  }
  return w.bytes();
}

Result<Dataset> DeserializeDataset(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint64_t magic;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&magic));
  if (magic != kMagic) return Status::DataLoss("bad dataset magic/version");

  uint64_t num_attrs;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&num_attrs));
  if (num_attrs == 0 || num_attrs > 64) {
    return Status::DataLoss("attribute count out of range");
  }
  Schema schema;
  for (uint64_t a = 0; a < num_attrs; ++a) {
    std::string name;
    uint64_t domain;
    double cost;
    CAQP_RETURN_IF_ERROR(r.GetString(&name));
    CAQP_RETURN_IF_ERROR(r.GetVarint(&domain));
    CAQP_RETURN_IF_ERROR(r.GetDouble(&cost));
    if (domain < 2 || domain > 65536) {
      return Status::DataLoss("domain size out of range");
    }
    if (!(cost >= 0.0)) return Status::DataLoss("negative attribute cost");
    schema.AddAttribute(name, static_cast<uint32_t>(domain), cost);
  }

  uint64_t rows;
  CAQP_RETURN_IF_ERROR(r.GetVarint(&rows));
  std::vector<std::vector<Value>> columns(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    columns[a].reserve(rows);
    const uint32_t domain = schema.domain_size(static_cast<AttrId>(a));
    for (uint64_t i = 0; i < rows; ++i) {
      uint64_t v;
      CAQP_RETURN_IF_ERROR(r.GetVarint(&v));
      if (v >= domain) return Status::DataLoss("value out of domain");
      columns[a].push_back(static_cast<Value>(v));
    }
  }
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes after dataset");

  Dataset out(schema);
  out.AppendColumns(columns);
  return out;
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeDataset(dataset);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::DataLoss("short write to " + path);
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return DeserializeDataset(bytes);
}

}  // namespace caqp
