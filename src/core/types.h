// Fundamental value types shared across CAQP.
//
// Following the paper (Section 2.1), every attribute X_i is discrete with a
// finite domain {0, ..., K_i - 1} (the paper writes {1, ..., K_i}; we are
// zero-based). Real-valued sensor readings are discretized before entering
// the system (core/discretizer.h), mirroring the limited ADC resolution of
// the Berkeley motes.

#ifndef CAQP_CORE_TYPES_H_
#define CAQP_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"

namespace caqp {

/// Index of an attribute within a Schema.
using AttrId = uint16_t;

/// A discretized attribute value in [0, K_i).
using Value = uint16_t;

/// Sentinel for "no attribute".
inline constexpr AttrId kInvalidAttr = static_cast<AttrId>(-1);

/// A fully-materialized tuple: one Value per schema attribute. During
/// *execution* values are acquired lazily; Tuple is the ground truth a
/// simulator or dataset holds.
using Tuple = std::vector<Value>;

/// An inclusive value range [lo, hi] for one attribute. The exhaustive
/// planner's subproblems are vectors of Ranges (one per attribute).
struct ValueRange {
  Value lo = 0;
  Value hi = 0;

  bool Contains(Value v) const { return lo <= v && v <= hi; }
  /// Number of distinct values in the range.
  uint32_t Width() const { return static_cast<uint32_t>(hi) - lo + 1; }
  bool operator==(const ValueRange& o) const = default;
};

/// Three-valued logic for evaluating predicates over *ranges* rather than
/// points: a range may make a predicate definitely true, definitely false,
/// or leave it undetermined. This is what drives the planner's base cases
/// ("ranges sufficient to determine truth of phi", Figure 5).
enum class Truth : uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

inline Truth TruthAnd(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kTrue && b == Truth::kTrue) return Truth::kTrue;
  return Truth::kUnknown;
}

inline Truth TruthOr(Truth a, Truth b) {
  if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
  if (a == Truth::kFalse && b == Truth::kFalse) return Truth::kFalse;
  return Truth::kUnknown;
}

inline Truth TruthNot(Truth a) {
  if (a == Truth::kUnknown) return Truth::kUnknown;
  return a == Truth::kTrue ? Truth::kFalse : Truth::kTrue;
}

/// 64-bit FNV-1a style combine, used for hashing subproblem range vectors.
inline size_t HashCombine(size_t seed, size_t v) {
  // Boost-style mix with a 64-bit golden-ratio constant.
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash of a subproblem range vector (cache key for the DP in Figure 5).
struct RangeVectorHash {
  size_t operator()(const std::vector<ValueRange>& ranges) const {
    size_t h = ranges.size();
    for (const ValueRange& r : ranges) {
      h = HashCombine(h, (static_cast<size_t>(r.lo) << 16) | r.hi);
    }
    return h;
  }
};

}  // namespace caqp

#endif  // CAQP_CORE_TYPES_H_
