#include "core/schema.h"

namespace caqp {

Schema::Schema(std::vector<AttributeSpec> attrs) : attrs_(std::move(attrs)) {
  for (const AttributeSpec& a : attrs_) {
    CAQP_CHECK_GE(a.domain_size, 2u);
    CAQP_CHECK_GE(a.cost, 0.0);
  }
  // AttrSet (prob/subproblem.h) packs attribute sets into 64 bits.
  CAQP_CHECK_LE(attrs_.size(), 64u);
}

AttrId Schema::AddAttribute(const std::string& name, uint32_t domain_size,
                            double cost) {
  CAQP_CHECK_GE(domain_size, 2u);
  CAQP_CHECK_GE(cost, 0.0);
  CAQP_CHECK_LT(attrs_.size(), 64u);
  attrs_.emplace_back(name, domain_size, cost);
  return static_cast<AttrId>(attrs_.size() - 1);
}

AttrId Schema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<AttrId>(i);
  }
  return kInvalidAttr;
}

std::vector<ValueRange> Schema::FullRanges() const {
  std::vector<ValueRange> out;
  out.reserve(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i) {
    out.push_back(FullRange(static_cast<AttrId>(i)));
  }
  return out;
}

bool Schema::ValidRanges(const std::vector<ValueRange>& ranges) const {
  if (ranges.size() != attrs_.size()) return false;
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].lo > ranges[i].hi) return false;
    if (ranges[i].hi >= attrs_[i].domain_size) return false;
  }
  return true;
}

bool Schema::ValidTuple(const Tuple& t) const {
  if (t.size() != attrs_.size()) return false;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] >= attrs_[i].domain_size) return false;
  }
  return true;
}

bool Schema::operator==(const Schema& o) const {
  if (attrs_.size() != o.attrs_.size()) return false;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != o.attrs_[i].name ||
        attrs_[i].domain_size != o.attrs_[i].domain_size ||
        attrs_[i].cost != o.attrs_[i].cost) {
      return false;
    }
  }
  return true;
}

}  // namespace caqp
