// Umbrella header: everything a typical CAQP user needs.
//
//   #include "caqp.h"
//
// pulls in the core data model, the probability estimators, every planner,
// plan costing/serialization/verification, and the executor. Subsystems can
// still be included individually (see README for the directory map).

#ifndef CAQP_CAQP_H_
#define CAQP_CAQP_H_

#include "core/csv.h"          // IWYU pragma: export
#include "core/dataset.h"      // IWYU pragma: export
#include "core/dataset_io.h"   // IWYU pragma: export
#include "core/discretizer.h"  // IWYU pragma: export
#include "core/predicate.h"    // IWYU pragma: export
#include "core/query.h"        // IWYU pragma: export
#include "core/schema.h"       // IWYU pragma: export
#include "exec/executor.h"     // IWYU pragma: export
#include "exec/metrics.h"      // IWYU pragma: export
#include "fault/fault.h"       // IWYU pragma: export
#include "obs/export.h"        // IWYU pragma: export
#include "obs/obs.h"           // IWYU pragma: export
#include "obs/planner_stats.h" // IWYU pragma: export
#include "obs/registry.h"      // IWYU pragma: export
#include "obs/trace.h"         // IWYU pragma: export
#include "opt/adaptive.h"      // IWYU pragma: export
#include "opt/cost_model.h"    // IWYU pragma: export
#include "opt/exhaustive.h"    // IWYU pragma: export
#include "opt/greedy_plan.h"   // IWYU pragma: export
#include "opt/greedyseq.h"     // IWYU pragma: export
#include "opt/naive.h"         // IWYU pragma: export
#include "opt/optseq.h"        // IWYU pragma: export
#include "opt/planner.h"       // IWYU pragma: export
#include "opt/split_points.h"  // IWYU pragma: export
#include "plan/plan.h"         // IWYU pragma: export
#include "plan/plan_cost.h"    // IWYU pragma: export
#include "plan/plan_printer.h" // IWYU pragma: export
#include "plan/plan_serde.h"   // IWYU pragma: export
#include "plan/plan_verify.h"  // IWYU pragma: export
#include "prob/chow_liu.h"     // IWYU pragma: export
#include "prob/dataset_estimator.h"      // IWYU pragma: export
#include "prob/independent_estimator.h"  // IWYU pragma: export

#endif  // CAQP_CAQP_H_
