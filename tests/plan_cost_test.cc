// Plan costing tests. The central invariant (paper Equations (3) and (4)):
// the analytic expected cost of any split/sequential plan under a
// DatasetEstimator equals the empirical mean execution cost over that same
// dataset, exactly.

#include <gtest/gtest.h>

#include "opt/cost_model.h"
#include "plan/plan_cost.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;
using testing_util::UniformDataset;

/// Builds a random split/sequential plan that correctly decides `query`.
/// Structure: a few random splits, then sequential leaves over whatever
/// predicates the path has not determined.
std::unique_ptr<PlanNode> RandomCorrectPlan(const Schema& schema,
                                            const Query& query,
                                            const RangeVec& ranges, Rng& rng,
                                            int depth) {
  const Truth t = query.EvaluateOnRanges(ranges);
  if (t != Truth::kUnknown) return PlanNode::Verdict(t == Truth::kTrue);
  if (depth <= 0 || rng.Bernoulli(0.4)) {
    return PlanNode::Sequential(
        UndeterminedPredicates(query.predicates(), ranges));
  }
  // Random splittable attribute.
  std::vector<AttrId> splittable;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (ranges[a].Width() > 1) splittable.push_back(static_cast<AttrId>(a));
  }
  if (splittable.empty()) {
    return PlanNode::Sequential(
        UndeterminedPredicates(query.predicates(), ranges));
  }
  const AttrId attr = splittable[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(splittable.size()) - 1))];
  const ValueRange r = ranges[attr];
  const Value x = static_cast<Value>(rng.UniformInt(r.lo + 1, r.hi));
  auto lt = RandomCorrectPlan(
      schema, query,
      Refined(ranges, attr, ValueRange{r.lo, static_cast<Value>(x - 1)}), rng,
      depth - 1);
  auto ge = RandomCorrectPlan(schema, query,
                              Refined(ranges, attr, ValueRange{x, r.hi}), rng,
                              depth - 1);
  return PlanNode::Split(attr, x, std::move(lt), std::move(ge));
}

class ExpectedEqualsEmpiricalTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpectedEqualsEmpiricalTest, Identity) {
  Rng rng(GetParam());
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 400, GetParam() * 31 + 1);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  for (int iter = 0; iter < 10; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    Plan plan(RandomCorrectPlan(schema, q, schema.FullRanges(), rng, 3));
    const double analytic = ExpectedPlanCost(plan, est, cm);
    const EmpiricalCostResult emp = EmpiricalPlanCost(plan, ds, q, cm);
    ASSERT_NEAR(analytic, emp.mean_cost, 1e-9)
        << "query " << q.ToString(schema);
    EXPECT_EQ(emp.verdict_errors, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpectedEqualsEmpiricalTest,
                         ::testing::Range(1, 13));

TEST(ExpectedEqualsEmpiricalBoardTest, HoldsUnderSensorBoardCosts) {
  Rng rng(7);
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 300, 77);
  DatasetEstimator est(ds);
  // Attributes 2 and 3 share a board with power-up cost 25.
  SensorBoardCostModel cm(schema, {-1, -1, 0, 0}, {25.0});
  for (int iter = 0; iter < 10; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    Plan plan(RandomCorrectPlan(schema, q, schema.FullRanges(), rng, 3));
    const double analytic = ExpectedPlanCost(plan, est, cm);
    const EmpiricalCostResult emp = EmpiricalPlanCost(plan, ds, q, cm);
    ASSERT_NEAR(analytic, emp.mean_cost, 1e-9);
  }
}

TEST(EmpiricalCostTest, ChargesEachAttributeOncePerTuple) {
  const Schema schema = SmallSchema();
  // Split twice on the same attribute: the second test must be free.
  auto inner = PlanNode::Split(0, 2, PlanNode::Verdict(false),
                               PlanNode::Verdict(true));
  auto root = PlanNode::Split(0, 1, PlanNode::Verdict(false),
                              std::move(inner));
  Plan plan(std::move(root));
  Dataset ds(schema);
  ds.Append({3, 0, 0, 0});
  PerAttributeCostModel cm(schema);
  const Query q = Query::Conjunction({Predicate(0, 2, 3)});
  const EmpiricalCostResult res = EmpiricalPlanCost(plan, ds, q, cm);
  EXPECT_DOUBLE_EQ(res.mean_cost, schema.cost(0));
  EXPECT_DOUBLE_EQ(res.mean_acquisitions, 1.0);
}

TEST(EmpiricalCostTest, SequentialShortCircuits) {
  const Schema schema = SmallSchema();
  // cheap0 (cost 1) first, exp1 (cost 80) second.
  Plan plan(PlanNode::Sequential({Predicate(0, 3, 3), Predicate(3, 0, 0)}));
  Dataset ds(schema);
  ds.Append({0, 0, 0, 0});  // fails first predicate: cost 1
  ds.Append({3, 0, 0, 0});  // passes first, evaluates second: cost 81
  PerAttributeCostModel cm(schema);
  const Query q =
      Query::Conjunction({Predicate(0, 3, 3), Predicate(3, 0, 0)});
  const EmpiricalCostResult res = EmpiricalPlanCost(plan, ds, q, cm);
  EXPECT_DOUBLE_EQ(res.total_cost, 1.0 + 81.0);
  EXPECT_EQ(res.verdict_errors, 0u);
}

TEST(EmpiricalCostTest, DetectsWrongVerdicts) {
  const Schema schema = SmallSchema();
  Plan always_true(PlanNode::Verdict(true));
  Dataset ds(schema);
  ds.Append({0, 0, 0, 0});
  ds.Append({1, 0, 0, 0});
  const Query q = Query::Conjunction({Predicate(0, 1, 1)});
  PerAttributeCostModel cm(schema);
  const EmpiricalCostResult res = EmpiricalPlanCost(always_true, ds, q, cm);
  EXPECT_EQ(res.verdict_errors, 1u);  // tuple {0,...} should fail
}

TEST(ExpectedCostTest, VerdictLeafIsFree) {
  const Schema schema = SmallSchema();
  const Dataset ds = UniformDataset(schema, 100, 5);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  Plan p(PlanNode::Verdict(true));
  EXPECT_DOUBLE_EQ(ExpectedPlanCost(p, est, cm), 0.0);
}

TEST(ExpectedCostTest, SequentialLeafUsesConditionalProbabilities) {
  // Two perfectly correlated binary attributes: after the first predicate
  // passes, the second always passes, so its cost is paid with exactly the
  // first predicate's pass probability.
  Schema schema;
  schema.AddAttribute("a", 2, 10.0);
  schema.AddAttribute("b", 2, 100.0);
  Dataset ds(schema);
  for (int i = 0; i < 30; ++i) ds.Append({1, 1});
  for (int i = 0; i < 70; ++i) ds.Append({0, 0});
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  Plan p(PlanNode::Sequential({Predicate(0, 1, 1), Predicate(1, 1, 1)}));
  // cost = 10 + P(a=1) * 100 = 10 + 30.
  EXPECT_NEAR(ExpectedPlanCost(p, est, cm), 40.0, 1e-9);
}

TEST(ExpectedCostTest, GenericLeafCostsAcquireUntilResolved) {
  Schema schema;
  schema.AddAttribute("a", 2, 5.0);
  schema.AddAttribute("b", 2, 50.0);
  Dataset ds(schema);
  // a == 1 half the time; query is (a=1) OR (b=1): when a==1 resolve early.
  ds.Append({1, 0});
  ds.Append({1, 1});
  ds.Append({0, 1});
  ds.Append({0, 0});
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  Query q = Query::Disjunction({{Predicate(0, 1, 1)}, {Predicate(1, 1, 1)}});
  Plan p(PlanNode::Generic(q, {0, 1}));
  // cost = 5 + P(a=0) * 50 = 5 + 25.
  EXPECT_NEAR(ExpectedPlanCost(p, est, cm), 30.0, 1e-9);
  const EmpiricalCostResult emp = EmpiricalPlanCost(p, ds, q, cm);
  EXPECT_NEAR(emp.mean_cost, 30.0, 1e-9);
  EXPECT_EQ(emp.verdict_errors, 0u);
}

}  // namespace
}  // namespace caqp
