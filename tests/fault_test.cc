// Fault-injection tests: FaultSpec parsing, injector determinism, the
// FaultyAcquisitionSource decorator, executor degradation policies, and the
// acceptance-style continuous-query simulation under 10% transient faults.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "data/garden_gen.h"
#include "fault/fault.h"
#include "net/basestation.h"
#include "net/mote.h"
#include "opt/greedyseq.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::SmallSchema;

// ---------------------------------------------------------------- FaultSpec

TEST(FaultSpecTest, ParseFullProfile) {
  const Result<FaultSpec> spec = FaultSpec::Parse(
      "transient=0.1,stuck=0.02,spike=0.05,spike_mult=3.5,seed=7,"
      "transient@2=0.5");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->transient, 0.1);
  EXPECT_DOUBLE_EQ(spec->stuck, 0.02);
  EXPECT_DOUBLE_EQ(spec->spike, 0.05);
  EXPECT_DOUBLE_EQ(spec->spike_multiplier, 3.5);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->TransientFor(2), 0.5);
  EXPECT_DOUBLE_EQ(spec->TransientFor(0), 0.1);
  EXPECT_TRUE(spec->any());
}

TEST(FaultSpecTest, ParseEmptyIsBenign) {
  const Result<FaultSpec> spec = FaultSpec::Parse("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->any());
}

TEST(FaultSpecTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(FaultSpec::Parse("transient").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient=abc").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient=1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("stuck=-0.1").ok());
  EXPECT_FALSE(FaultSpec::Parse("spike_mult=0").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed=xyz").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient@x=0.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("bogus=1").ok());
}

TEST(FaultSpecTest, ParseRejectsDuplicateKeys) {
  EXPECT_FALSE(FaultSpec::Parse("transient=0.1,transient=0.2").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed=1,seed=2").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient@3=0.1,transient@3=0.2").ok());
  // Different spellings of the same attribute still collide: each attribute
  // has one fault stream, so a silent last-write-wins would be a trap.
  EXPECT_FALSE(FaultSpec::Parse("transient@3=0.1,transient@03=0.2").ok());
  // A global and a per-attribute transient setting may coexist.
  EXPECT_TRUE(FaultSpec::Parse("transient=0.1,transient@3=0.2").ok());
  // The error names the offender rather than generically failing.
  const Status dup = FaultSpec::Parse("stuck=0.1,stuck=0.1").status();
  EXPECT_NE(dup.ToString().find("duplicate key 'stuck'"), std::string::npos);
  const Status dup_at =
      FaultSpec::Parse("transient@3=0.1,transient@03=0.2").status();
  EXPECT_NE(dup_at.ToString().find("attribute 03"), std::string::npos);
}

TEST(FaultSpecTest, ParseRejectsEmptyItemsAndTrailingCommas) {
  EXPECT_FALSE(FaultSpec::Parse("transient=0.1,").ok());
  EXPECT_FALSE(FaultSpec::Parse(",transient=0.1").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient=0.1,,stuck=0.1").ok());
  EXPECT_FALSE(FaultSpec::Parse(",").ok());
  const Status trailing = FaultSpec::Parse("seed=3,").status();
  EXPECT_NE(trailing.ToString().find("trailing ','"), std::string::npos);
  const Status empty = FaultSpec::Parse("seed=3,,spike=0.1").status();
  EXPECT_NE(empty.ToString().find("empty item"), std::string::npos);
}

TEST(FaultSpecTest, ToStringRoundtrips) {
  FaultSpec spec;
  spec.transient = 0.25;
  spec.stuck = 0.125;
  spec.seed = 99;
  spec.transient_overrides.emplace_back(1, 0.5);
  const Result<FaultSpec> back = FaultSpec::Parse(spec.ToString());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_DOUBLE_EQ(back->transient, 0.25);
  EXPECT_DOUBLE_EQ(back->stuck, 0.125);
  EXPECT_EQ(back->seed, 99u);
  EXPECT_DOUBLE_EQ(back->TransientFor(1), 0.5);
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjectorTest, DeterministicForSameSpec) {
  FaultSpec spec;
  spec.transient = 0.3;
  spec.stuck = 0.1;
  spec.spike = 0.2;
  spec.spike_multiplier = 2.0;
  spec.seed = 42;
  FaultInjector a(spec), b(spec);
  for (int i = 0; i < 500; ++i) {
    const AttrId attr = static_cast<AttrId>(i % 5);
    const FaultInjector::Outcome oa = a.NextAttempt(attr);
    const FaultInjector::Outcome ob = b.NextAttempt(attr);
    EXPECT_EQ(oa.fail, ob.fail);
    EXPECT_EQ(oa.permanent, ob.permanent);
    EXPECT_DOUBLE_EQ(oa.cost_multiplier, ob.cost_multiplier);
  }
  EXPECT_EQ(a.injected(), b.injected());
}

TEST(FaultInjectorTest, PerAttributeStreamsAreOrderIndependent) {
  FaultSpec spec;
  spec.transient = 0.4;
  spec.seed = 7;
  // Injector `a` interleaves attrs 0 and 1; `b` only ever touches attr 1.
  // Attr 1 must see the same sequence either way.
  FaultInjector a(spec), b(spec);
  std::vector<bool> a_attr1, b_attr1;
  for (int i = 0; i < 200; ++i) {
    a.NextAttempt(0);
    a_attr1.push_back(a.NextAttempt(1).fail);
    b_attr1.push_back(b.NextAttempt(1).fail);
  }
  EXPECT_EQ(a_attr1, b_attr1);
}

TEST(FaultInjectorTest, ResetReplaysTheSameSequence) {
  FaultSpec spec;
  spec.transient = 0.5;
  spec.seed = 13;
  FaultInjector inj(spec);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(inj.NextAttempt(2).fail);
  inj.Reset();
  EXPECT_EQ(inj.injected(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(inj.NextAttempt(2).fail, first[i]);
}

TEST(FaultInjectorTest, StuckSensorFailsPermanentlyForever) {
  FaultSpec spec;
  spec.stuck = 1.0;
  FaultInjector inj(spec);
  for (int i = 0; i < 20; ++i) {
    const FaultInjector::Outcome o = inj.NextAttempt(3);
    EXPECT_TRUE(o.fail);
    EXPECT_TRUE(o.permanent);
  }
  EXPECT_TRUE(inj.IsStuck(3));
  EXPECT_EQ(inj.injected(), 20u);
}

TEST(FaultInjectorTest, TransientRateIsApproximatelyHonored) {
  FaultSpec spec;
  spec.transient = 0.1;
  spec.seed = 21;
  FaultInjector inj(spec);
  int fails = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) fails += inj.NextAttempt(0).fail ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.1, 0.01);
  EXPECT_EQ(inj.injected(), static_cast<uint64_t>(fails));
}

// -------------------------------------------------- FaultyAcquisitionSource

TEST(FaultySourceTest, PassesValuesThroughWhenBenign) {
  const Tuple t = {3, 1, 2, 0};
  TupleSource base(t);
  FaultInjector inj(FaultSpec{});
  FaultyAcquisitionSource src(base, inj);
  for (AttrId a = 0; a < 4; ++a) {
    const AcquiredValue v = src.Acquire(a);
    EXPECT_TRUE(v.ok);
    EXPECT_EQ(v.value, t[a]);
    EXPECT_DOUBLE_EQ(v.cost_multiplier, 1.0);
  }
  EXPECT_EQ(inj.injected(), 0u);
}

TEST(FaultySourceTest, InjectsFailuresAndSpikes) {
  const Tuple t = {3, 1, 2, 0};
  TupleSource base(t);
  FaultSpec spec;
  spec.transient = 0.5;
  spec.spike = 0.5;
  spec.spike_multiplier = 4.0;
  spec.seed = 5;
  FaultInjector inj(spec);
  FaultyAcquisitionSource src(base, inj);
  int fails = 0, spikes = 0;
  for (int i = 0; i < 400; ++i) {
    const AcquiredValue v = src.Acquire(0);
    if (!v.ok) {
      ++fails;
      EXPECT_FALSE(v.permanent);
    } else {
      EXPECT_EQ(v.value, t[0]);
      if (v.cost_multiplier > 1.0) {
        ++spikes;
        EXPECT_DOUBLE_EQ(v.cost_multiplier, 4.0);
      }
    }
  }
  EXPECT_GT(fails, 100);
  EXPECT_GT(spikes, 50);
  EXPECT_EQ(inj.injected(), static_cast<uint64_t>(fails));
}

// ---------------------------------------------------- executor degradation

/// Source with a scripted outcome queue per attribute; falls back to the
/// tuple value once a script runs out.
class ScriptedSource : public AcquisitionSource {
 public:
  explicit ScriptedSource(Tuple t) : tuple_(std::move(t)) {}

  void Script(AttrId attr, std::vector<AcquiredValue> outcomes) {
    scripts_[attr] = std::move(outcomes);
  }

  AcquiredValue Acquire(AttrId attr) override {
    ++calls_;
    auto it = scripts_.find(attr);
    if (it != scripts_.end() && !it->second.empty()) {
      const AcquiredValue v = it->second.front();
      it->second.erase(it->second.begin());
      return v;
    }
    return tuple_[attr];
  }

  int calls() const { return calls_; }

 private:
  Tuple tuple_;
  std::map<AttrId, std::vector<AcquiredValue>> scripts_;
  int calls_ = 0;
};

TEST(FaultExecutorTest, MissingAttrPropagatesUnknown) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(0, 0, 2), Predicate(1, 0, 2)}));
  ScriptedSource src({1, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_FALSE(res.defined());
  EXPECT_EQ(res.verdict3, Truth::kUnknown);
  EXPECT_FALSE(res.aborted);
  EXPECT_FALSE(res.verdict);
  EXPECT_TRUE(res.failed.Contains(1));
  EXPECT_TRUE(res.acquired.Contains(0));
  // The failed attempt is still charged (cost of attr 1 is 2).
  EXPECT_DOUBLE_EQ(res.cost, 1.0 + 2.0);
}

TEST(FaultExecutorTest, LaterFalseConjunctStillDefinesVerdict) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Attr 1 fails, but attr 2's predicate is false for the tuple: the AND is
  // decidably false regardless of the missing value.
  Plan plan(PlanNode::Sequential(
      {Predicate(0, 0, 2), Predicate(1, 0, 2), Predicate(2, 3, 3)}));
  ScriptedSource src({1, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_TRUE(res.defined());
  EXPECT_EQ(res.verdict3, Truth::kFalse);
  EXPECT_FALSE(res.verdict);
}

TEST(FaultExecutorTest, RetryRecoversTransientFailure) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(1, 1, 1)}));
  ScriptedSource src({0, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure(), AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(
      plan, schema, cm, src, nullptr, DegradationPolicy::Retry(3));
  EXPECT_TRUE(res.defined());
  EXPECT_TRUE(res.verdict);
  EXPECT_EQ(res.retries, 2);
  EXPECT_EQ(src.calls(), 3);
  // All three attempts charged at attr 1's cost of 2.
  EXPECT_DOUBLE_EQ(res.cost, 3 * 2.0);
}

TEST(FaultExecutorTest, RetryCostMultiplierScalesRetriesOnly) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(1, 1, 1)}));
  ScriptedSource src({0, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(
      plan, schema, cm, src, nullptr, DegradationPolicy::Retry(3, 0.5));
  EXPECT_TRUE(res.defined());
  EXPECT_EQ(res.retries, 1);
  // First attempt full price, retry at half price: 2 + 1.
  EXPECT_DOUBLE_EQ(res.cost, 2.0 + 1.0);
}

TEST(FaultExecutorTest, RetryExhaustionDegradesToUnknown) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(1, 1, 1)}));
  ScriptedSource src({0, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure(), AcquiredValue::Failure(),
                 AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(
      plan, schema, cm, src, nullptr, DegradationPolicy::Retry(3));
  EXPECT_FALSE(res.defined());
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(res.retries, 2);
  EXPECT_TRUE(res.failed.Contains(1));
}

TEST(FaultExecutorTest, StuckSensorIsNotRetried) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(1, 1, 1)}));
  ScriptedSource src({0, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure(/*permanent_failure=*/true)});
  const ExecutionResult res = ExecutePlan(
      plan, schema, cm, src, nullptr, DegradationPolicy::Retry(5));
  EXPECT_FALSE(res.defined());
  EXPECT_EQ(src.calls(), 1);  // no retry against a stuck sensor
  EXPECT_EQ(res.retries, 0);
}

TEST(FaultExecutorTest, AbortPolicyStopsAtFirstFailure) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential(
      {Predicate(1, 0, 5), Predicate(0, 0, 3), Predicate(2, 3, 3)}));
  ScriptedSource src({1, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(
      plan, schema, cm, src, nullptr, DegradationPolicy::Abort());
  EXPECT_TRUE(res.aborted);
  EXPECT_FALSE(res.defined());
  EXPECT_EQ(res.verdict3, Truth::kUnknown);
  // Attrs 0 and 2 never touched after the abort.
  EXPECT_EQ(src.calls(), 1);
}

TEST(FaultExecutorTest, SplitAttrFailureYieldsUnknown) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Split(0, 2, PlanNode::Verdict(false),
                            PlanNode::Verdict(true)));
  ScriptedSource src({1, 1, 0, 0});
  src.Script(0, {AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_FALSE(res.defined());
  EXPECT_EQ(res.verdict3, Truth::kUnknown);
}

TEST(FaultExecutorTest, FailedAttrIsChargedOnlyOnce) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Attr 1 appears twice; after the first (failed) acquisition the executor
  // must remember the failure instead of paying again.
  Plan plan(PlanNode::Sequential(
      {Predicate(1, 0, 5), Predicate(0, 0, 3), Predicate(1, 0, 5)}));
  ScriptedSource src({1, 1, 0, 0});
  src.Script(1, {AcquiredValue::Failure(), AcquiredValue::Failure()});
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_FALSE(res.defined());
  // One charge for failed attr 1 (cost 2) + one for attr 0 (cost 1).
  EXPECT_DOUBLE_EQ(res.cost, 2.0 + 1.0);
  EXPECT_EQ(src.calls(), 2);  // attr1 once, attr0 once
}

TEST(FaultExecutorTest, SpikeMultiplierScalesMarginalCost) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(1, 1, 1)}));
  ScriptedSource src({0, 1, 0, 0});
  AcquiredValue spiked(Value{1});
  spiked.cost_multiplier = 3.0;
  src.Script(1, {spiked});
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_TRUE(res.defined());
  EXPECT_DOUBLE_EQ(res.cost, 3.0 * 2.0);
}

// -------------------------------------------------- acceptance simulation

struct SimOutcome {
  std::vector<uint8_t> defined;  // 1 if the verdict was defined
  std::vector<uint8_t> verdict;
  double total_cost = 0.0;
  size_t ground_truth_mismatches = 0;
};

/// Continuous-query simulation over the garden workload with per-mote fault
/// injection, comparing every defined verdict against ground truth.
void RunGardenSim(uint64_t fault_seed, SimOutcome* out) {
  GardenDataOptions gopt;
  gopt.num_motes = 3;
  gopt.epochs = 1500;
  gopt.seed = 777;
  const Dataset data = GenerateGardenData(gopt);
  const Schema& schema = data.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  PerAttributeCostModel cm(schema);
  Radio radio(Radio::Options{.cost_per_byte = 0.0});
  Basestation base(schema, cm, radio);
  base.CollectHistory(data);

  // "Hot and humid anywhere" query: expensive attrs with cheap correlates.
  const Query q = Query::Conjunction(
      {Predicate(attrs.temperature[0], 8, 11), Predicate(attrs.humidity[1], 6, 11)});
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  GreedySeqSolver solver;
  const Plan plan = base.TrainPlan(q, splits, solver, /*max_splits=*/3);

  FaultSpec spec;
  spec.transient = 0.1;
  spec.seed = fault_seed;

  const size_t kMotes = 4;
  const size_t kEpochs = 500;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<std::unique_ptr<Mote>> motes;
  for (size_t m = 0; m < kMotes; ++m) {
    FaultSpec mote_spec = spec;
    mote_spec.seed = spec.seed + m;
    injectors.push_back(std::make_unique<FaultInjector>(mote_spec));
    motes.push_back(std::make_unique<Mote>(
        static_cast<int>(m), schema, cm,
        [&data, m, kMotes](size_t epoch, AttrId attr) {
          return data.at(
              static_cast<RowId>((epoch * kMotes + m) % data.num_rows()), attr);
        }));
    motes.back()->InstallPlan(plan);
    motes.back()->SetFaultInjector(injectors.back().get());
    motes.back()->SetDegradationPolicy(DegradationPolicy::Retry(3));
  }

  for (size_t e = 0; e < kEpochs; ++e) {
    for (size_t m = 0; m < kMotes; ++m) {
      const std::optional<ExecutionResult> res = motes[m]->RunEpoch(e);
      ASSERT_TRUE(res.has_value()) << "unlimited budget never browns out";
      out->defined.push_back(res->defined() ? 1 : 0);
      out->verdict.push_back(res->verdict ? 1 : 0);
      out->total_cost += res->cost;
      if (res->defined()) {
        const RowId row =
            static_cast<RowId>((e * kMotes + m) % data.num_rows());
        if ((res->verdict3 == Truth::kTrue) != q.Matches(data.GetTuple(row))) {
          ++out->ground_truth_mismatches;
        }
      }
    }
  }
}

TEST(FaultSimTest, GardenContinuousQueryMeetsDegradationBar) {
  SimOutcome run;
  RunGardenSim(2026, &run);
  const size_t total = run.defined.size();
  ASSERT_GT(total, 0u);
  size_t defined = 0;
  for (uint8_t d : run.defined) defined += d;
  // 10% transient failures + Retry(3): <= 0.1% residual per acquisition,
  // so >= 99% of verdicts must stay defined.
  EXPECT_GE(static_cast<double>(defined) / static_cast<double>(total), 0.99);
  // Every defined verdict agrees with ground-truth query evaluation.
  EXPECT_EQ(run.ground_truth_mismatches, 0u);

  // Same seed => bit-identical rerun.
  SimOutcome rerun;
  RunGardenSim(2026, &rerun);
  EXPECT_EQ(run.defined, rerun.defined);
  EXPECT_EQ(run.verdict, rerun.verdict);
  EXPECT_DOUBLE_EQ(run.total_cost, rerun.total_cost);

  // Different fault seed => (almost surely) different fault pattern.
  SimOutcome other;
  RunGardenSim(9999, &other);
  EXPECT_NE(run.defined, other.defined);
}

}  // namespace
}  // namespace caqp
