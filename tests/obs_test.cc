// caqp::obs tests: registry metrics (counters, gauges, streaming stats),
// the JSON writer, structured export of snapshots / planner stats /
// attribute profiles, and the planner-stats plumbing on the real planners.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/planner_stats.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

TEST(RegistryTest, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("test.counter");
  c.Increment();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same object.
  EXPECT_EQ(&reg.GetCounter("test.counter"), &c);

  obs::Gauge& g = reg.GetGauge("test.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(RegistryTest, StreamingStatMoments) {
  obs::StreamingStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Record(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RegistryTest, StreamingStatQuantilesExactBelowCapacity) {
  obs::StreamingStat s;
  for (int i = 1; i <= 100; ++i) s.Record(static_cast<double>(i));
  // 1..100 fits in the reservoir, so quantiles are exact (interpolated).
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.p95(), 95.05, 1e-9);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Quantile(1.0), 100.0, 1e-9);
}

TEST(RegistryTest, StreamingStatReservoirStaysBounded) {
  obs::StreamingStat s;
  for (int i = 0; i < 100000; ++i) s.Record(static_cast<double>(i % 1000));
  EXPECT_EQ(s.count(), 100000u);
  // Quantiles are approximate but must stay inside the data range and
  // roughly ordered.
  const double p50 = s.p50();
  const double p95 = s.p95();
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p95, 999.0);
  EXPECT_LE(p50, p95);
  EXPECT_NEAR(p50, 500.0, 100.0);
}

TEST(RegistryTest, SnapshotSortedAndComplete) {
  obs::MetricsRegistry reg;
  reg.GetCounter("b.counter").Add(2);
  reg.GetCounter("a.counter").Add(1);
  reg.GetGauge("g").Set(3.0);
  reg.GetStat("s").Record(1.5);
  const obs::RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.counter");
  EXPECT_EQ(snap.counters[1].name, "b.counter");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.stats.size(), 1u);
  EXPECT_EQ(snap.stats[0].count, 1u);
}

TEST(ObsToggleTest, DisabledMacrosDoNotRecord) {
  obs::Counter& c =
      obs::DefaultRegistry().GetCounter("obs_test.toggle.counter");
  c.Reset();
  obs::SetEnabled(false);
  CAQP_OBS_COUNTER_INC("obs_test.toggle.counter");
  EXPECT_EQ(c.value(), 0u);
  obs::SetEnabled(true);
  CAQP_OBS_COUNTER_INC("obs_test.toggle.counter");
#if CAQP_OBS_ENABLED
  EXPECT_EQ(c.value(), 1u);
#else
  // With instrumentation compiled out the macro is a no-op either way.
  EXPECT_EQ(c.value(), 0u);
#endif
}

TEST(JsonWriterTest, NestedStructure) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(-3);
  w.Key("b").BeginArray().UInt(1).Double(2.5).Bool(true).Null().EndArray();
  w.Key("c").BeginObject().Key("d").String("x").EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":-3,\"b\":[1,2.5,true,null],\"c\":{\"d\":\"x\"}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(obs::EscapeJson("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::EscapeJson(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(INFINITY);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  obs::JsonWriter w;
  w.BeginArray().Double(0.1).Double(1e300).Double(-2.5).EndArray();
  EXPECT_EQ(w.str(), "[0.1,1e+300,-2.5]");
}

TEST(JsonWriterTest, NegativeInfinityBecomesNull) {
  obs::JsonWriter w;
  w.BeginArray().Double(-INFINITY).EndArray();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriterTest, EscapesEveryControlCharacter) {
  // RFC 8259: all of U+0000..U+001F must be escaped. The short forms are
  // allowed for the common ones; the rest use \u00XX.
  for (int c = 0; c < 0x20; ++c) {
    const std::string raw(1, static_cast<char>(c));
    const std::string escaped = obs::EscapeJson(raw);
    ASSERT_GE(escaped.size(), 2u) << "char " << c << " not escaped";
    EXPECT_EQ(escaped[0], '\\') << "char " << c;
  }
  // \n \r \t use the short escapes; \b \f fall through to \u00XX (both
  // spellings are valid RFC 8259).
  EXPECT_EQ(obs::EscapeJson("\b\f\n\r\t"), "\\u0008\\u000c\\n\\r\\t");
  EXPECT_EQ(obs::EscapeJson(std::string("\x1f", 1)), "\\u001f");
  // DEL (0x7f) and non-ASCII bytes pass through untouched (valid in JSON
  // strings; UTF-8 payloads must not be mangled).
  EXPECT_EQ(obs::EscapeJson("\x7f"), "\x7f");
  EXPECT_EQ(obs::EscapeJson("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, EmptyContainers) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("o").BeginObject().EndObject();
  w.Key("a").BeginArray().EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"o\":{},\"a\":[]}");
}

TEST(JsonWriterTest, DeepNesting) {
  constexpr int kDepth = 64;
  obs::JsonWriter w;
  for (int i = 0; i < kDepth; ++i) w.BeginArray();
  w.Int(1);
  for (int i = 0; i < kDepth; ++i) w.EndArray();
  std::string expected;
  for (int i = 0; i < kDepth; ++i) expected += '[';
  expected += '1';
  for (int i = 0; i < kDepth; ++i) expected += ']';
  EXPECT_EQ(w.str(), expected);
}

TEST(JsonWriterTest, TakeStringMovesDocument) {
  obs::JsonWriter w;
  w.BeginObject().EndObject();
  EXPECT_EQ(w.TakeString(), "{}");
}

// ---------------------------------------------------------------------------
// obs::Histogram (log-linear latency histogram)
// ---------------------------------------------------------------------------
// Suite is named HistogramObsTest: prob/ already owns "HistogramTest".

TEST(HistogramObsTest, BucketLayoutInvariants) {
  // Buckets tile (0, +inf): contiguous, ordered, and the index function maps
  // every bound into the bucket it opens.
  for (size_t i = 0; i + 1 < obs::kHistNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(obs::HistogramBucketUpperBound(i),
                     obs::HistogramBucketLowerBound(i + 1));
    EXPECT_LT(obs::HistogramBucketLowerBound(i),
              obs::HistogramBucketUpperBound(i));
  }
  EXPECT_DOUBLE_EQ(obs::HistogramBucketLowerBound(0), 0.0);
  EXPECT_TRUE(std::isinf(
      obs::HistogramBucketUpperBound(obs::kHistNumBuckets - 1)));
  for (size_t i = 1; i + 1 < obs::kHistNumBuckets; ++i) {
    EXPECT_EQ(obs::HistogramBucketIndex(obs::HistogramBucketLowerBound(i)), i)
        << "bucket " << i;
  }
  // Underflow and overflow.
  EXPECT_EQ(obs::HistogramBucketIndex(0.0), 0u);
  EXPECT_EQ(obs::HistogramBucketIndex(-1.0), 0u);
  EXPECT_EQ(obs::HistogramBucketIndex(std::ldexp(1.0, obs::kHistMinExp) / 2),
            0u);
  EXPECT_EQ(obs::HistogramBucketIndex(std::ldexp(1.0, obs::kHistMaxExp)),
            obs::kHistNumBuckets - 1);
  EXPECT_EQ(obs::HistogramBucketIndex(1e300), obs::kHistNumBuckets - 1);
}

TEST(HistogramObsTest, BucketRelativeWidthBoundsQuantileError) {
  // Each log-linear bucket spans at most 1/kHistSubBuckets of its lower
  // bound — the resolution claim behind the p99 numbers.
  for (size_t i = 1; i + 1 < obs::kHistNumBuckets; ++i) {
    const double lo = obs::HistogramBucketLowerBound(i);
    const double hi = obs::HistogramBucketUpperBound(i);
    EXPECT_LE((hi - lo) / lo, 1.0 / obs::kHistSubBuckets + 1e-12)
        << "bucket " << i;
  }
}

TEST(HistogramObsTest, RecordAndMoments) {
  obs::Histogram h;
  h.Record(0.001);
  h.Record(0.002);
  h.Record(0.004);
  h.Record(std::nan(""));  // ignored
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.007);
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 0.004);
  EXPECT_NEAR(snap.mean(), 0.007 / 3, 1e-12);
  uint64_t total = 0;
  for (uint64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, 3u);
}

TEST(HistogramObsTest, EmptySnapshotIsZero) {
  const obs::HistogramSnapshot snap = obs::Histogram().Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
}

TEST(HistogramObsTest, QuantilesWithinRelativeErrorBar) {
  obs::Histogram h;
  // Uniform 1ms..100ms in 1ms steps; true quantiles are known.
  for (int i = 1; i <= 100; ++i) h.Record(0.001 * i);
  const obs::HistogramSnapshot snap = h.Snapshot();
  const struct {
    double q, truth;
  } cases[] = {{0.50, 0.050}, {0.90, 0.090}, {0.99, 0.099}, {0.999, 0.0999}};
  for (const auto& c : cases) {
    const double est = snap.Quantile(c.q);
    EXPECT_NEAR(est, c.truth, c.truth / obs::kHistSubBuckets)
        << "q=" << c.q;
    EXPECT_GE(est, snap.min);
    EXPECT_LE(est, snap.max);
  }
  EXPECT_LE(snap.p50(), snap.p90());
  EXPECT_LE(snap.p90(), snap.p99());
  EXPECT_LE(snap.p99(), snap.p999());
}

TEST(HistogramObsTest, MergeMatchesSingleStream) {
  obs::Histogram a, b, reference;
  for (int i = 1; i <= 200; ++i) {
    const double v = 1e-4 * i * i;
    (i % 2 ? a : b).Record(v);
    reference.Record(v);
  }
  obs::HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const obs::HistogramSnapshot expected = reference.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum, expected.sum);
  EXPECT_DOUBLE_EQ(merged.min, expected.min);
  EXPECT_DOUBLE_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(HistogramObsTest, ResetAndMergeFrom) {
  obs::Histogram h;
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  obs::Histogram src;
  src.Record(0.25);
  src.Record(0.75);
  h.MergeFrom(src.Snapshot());
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 0.75);
}

TEST(ExportTest, RegistryJsonContainsAllKinds) {
  obs::MetricsRegistry reg;
  reg.GetCounter("n.count").Add(7);
  reg.GetGauge("n.gauge").Set(1.5);
  reg.GetStat("n.stat").Record(3.0);
  const std::string json = obs::RegistryToJson(reg);
  // Exports emit canonical snake_case names (counters gain _total)...
  EXPECT_NE(json.find("\"n_count_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"n_gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"n_stat\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  // ...plus an aliases map resolving the legacy dotted keys for one release.
  EXPECT_NE(json.find("\"aliases\""), std::string::npos);
  EXPECT_NE(json.find("\"n.count\":\"n_count_total\""), std::string::npos);
  EXPECT_NE(json.find("\"n.gauge\":\"n_gauge\""), std::string::npos);

  const std::string md = obs::RegistryToMarkdown(reg);
  EXPECT_NE(md.find("n.count"), std::string::npos);
  EXPECT_NE(md.find("| counter | value |"), std::string::npos);
}

TEST(ExportTest, RegistryJsonIncludesHistograms) {
  obs::MetricsRegistry reg;
  reg.GetHistogram("n.hist").Record(0.002);
  const std::string json = obs::RegistryToJson(reg);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"n.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  const std::string md = obs::RegistryToMarkdown(reg);
  EXPECT_NE(md.find("| histogram |"), std::string::npos);
  EXPECT_NE(md.find("n.hist"), std::string::npos);
}

namespace histjson {
// Tiny fixed-shape parser for WriteHistogram output — just enough to prove
// the serialized form reconstructs the snapshot exactly.
double Field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << key;
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

obs::HistogramSnapshot Parse(const std::string& json) {
  obs::HistogramSnapshot snap;
  snap.count = static_cast<uint64_t>(Field(json, "count"));
  snap.sum = Field(json, "sum");
  snap.min = Field(json, "min");
  snap.max = Field(json, "max");
  const size_t at = json.find("\"buckets\":[");
  EXPECT_NE(at, std::string::npos);
  const char* p = json.c_str() + at + 11;
  while (*p == '[') {
    // Entries are [idx, count, lo, hi]; hi is null for the overflow bucket.
    char* end = nullptr;
    const size_t idx = std::strtoull(p + 1, &end, 10);
    EXPECT_EQ(*end, ',');
    const uint64_t n = std::strtoull(end + 1, &end, 10);
    EXPECT_EQ(*end, ',');
    const double lo = std::strtod(end + 1, &end);
    EXPECT_EQ(*end, ',');
    double hi = std::numeric_limits<double>::infinity();
    if (std::strncmp(end + 1, "null", 4) == 0) {
      end += 1 + 4;
    } else {
      hi = std::strtod(end + 1, &end);
    }
    EXPECT_EQ(*end, ']');
    EXPECT_LT(idx, obs::kHistNumBuckets);
    // The emitted bounds must be the bucket layout's own.
    EXPECT_DOUBLE_EQ(lo, obs::HistogramBucketLowerBound(idx));
    EXPECT_DOUBLE_EQ(hi, obs::HistogramBucketUpperBound(idx));
    snap.buckets[idx] = n;
    p = end + 1;
    if (*p == ',') ++p;
  }
  return snap;
}
}  // namespace histjson

TEST(ExportTest, HistogramJsonRoundTripsExactly) {
  obs::Histogram h;
  for (int i = 1; i <= 500; ++i) h.Record(1e-5 * i * i);
  h.Record(1e-9);  // underflow bucket
  h.Record(1e9);   // overflow bucket
  const obs::HistogramSnapshot original = h.Snapshot();

  obs::JsonWriter w;
  obs::WriteHistogram(w, original);
  const std::string json = w.str();

  // The sparse [index,count,lo,hi] entries plus moments reconstruct the
  // snapshot: identical buckets, hence identical quantiles.
  const obs::HistogramSnapshot parsed = histjson::Parse(json);
  EXPECT_EQ(parsed.count, original.count);
  EXPECT_DOUBLE_EQ(parsed.sum, original.sum);
  EXPECT_DOUBLE_EQ(parsed.min, original.min);
  EXPECT_DOUBLE_EQ(parsed.max, original.max);
  EXPECT_EQ(parsed.buckets, original.buckets);
  EXPECT_DOUBLE_EQ(parsed.p50(), original.p50());
  EXPECT_DOUBLE_EQ(parsed.p999(), original.p999());

  // The derived-quantile fields the serializer also emits agree with the
  // snapshot they were computed from.
  EXPECT_NEAR(histjson::Field(json, "p99"), original.p99(), 1e-12);
  EXPECT_NEAR(histjson::Field(json, "mean"), original.mean(), 1e-12);
}

TEST(ExportTest, EmptyHistogramSerializesWithNoBuckets) {
  obs::JsonWriter w;
  obs::WriteHistogram(w, obs::HistogramSnapshot{});
  EXPECT_NE(w.str().find("\"count\":0"), std::string::npos);
  EXPECT_NE(w.str().find("\"buckets\":[]"), std::string::npos);
}

TEST(ExportTest, PlannerStatsSerializes) {
  obs::PlannerStats st;
  st.Reset("TestPlanner");
  st.memo_hits = 3;
  st.bound_prunes = 5;
  st.expected_cost = 12.5;
  obs::JsonWriter w;
  obs::WritePlannerStats(w, st);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"planner\":\"TestPlanner\""), std::string::npos);
  EXPECT_NE(json.find("\"memo_hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"bound_prunes\":5"), std::string::npos);
  EXPECT_NE(json.find("\"expected_cost\":12.5"), std::string::npos);
}

TEST(AttributeProfileTest, CountsAndRates) {
  AttributeProfile prof(3);
  prof.OnAcquire(0, 1, 2.0);
  prof.OnVerdict(true, 2.0);
  prof.OnAcquire(0, 2, 2.0);
  prof.OnAcquire(2, 0, 5.0);
  prof.OnVerdict(false, 7.0);
  EXPECT_EQ(prof.tuples(), 2u);
  EXPECT_EQ(prof.matches(), 1u);
  EXPECT_EQ(prof.count(0), 2u);
  EXPECT_EQ(prof.count(1), 0u);
  EXPECT_EQ(prof.count(2), 1u);
  EXPECT_DOUBLE_EQ(prof.AcquisitionRate(0), 1.0);
  EXPECT_DOUBLE_EQ(prof.AcquisitionRate(2), 0.5);
  EXPECT_DOUBLE_EQ(prof.MeanCost(), 4.5);
  EXPECT_DOUBLE_EQ(prof.cost(2), 5.0);
}

TEST(PlannerStatsTest, GreedyPlannerFillsStats) {
  const Schema schema = SmallSchema();
  const Dataset data = CorrelatedDataset(schema, 600, 11);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  GreedySeqSolver solver;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &solver;
  opts.max_splits = 3;
  GreedyPlanner planner(est, cm, opts);
  const Query q = Query::Conjunction({Predicate(2, 0, 1), Predicate(3, 0, 2)});
  (void)planner.BuildPlan(q);
  const obs::PlannerStats& st = planner.planner_stats();
  EXPECT_EQ(st.planner, planner.Name());
  EXPECT_GE(st.split_searches, 1u);
  EXPECT_GT(st.seq_solves, 0u);
  EXPECT_GT(st.expected_cost, 0.0);
  // Every split adopted passed through the queue and contributes its
  // benefit to the running totals.
  if (st.splits_taken > 0) {
    EXPECT_GE(st.queue_high_water, 1u);
    EXPECT_GT(st.benefit_first, 0.0);
    EXPECT_GT(st.benefit_total, 0.0);
  }
}

TEST(PlannerStatsTest, ExhaustivePlannerFillsMemoCounts) {
  const Schema schema = SmallSchema();
  const Dataset data = CorrelatedDataset(schema, 400, 13);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  const Query q = Query::Conjunction({Predicate(2, 0, 1), Predicate(3, 0, 2)});
  (void)planner.BuildPlan(q);
  const obs::PlannerStats& st = planner.planner_stats();
  EXPECT_EQ(st.planner, planner.Name());
  EXPECT_GT(st.memo_misses, 0u);
  EXPECT_GT(st.candidates_tried, 0u);
  EXPECT_GT(st.expected_cost, 0.0);
  // Memoization and pruning must actually fire on a correlated workload.
  EXPECT_GT(st.memo_hits + st.bound_prunes, 0u);
}

TEST(PlannerStatsTest, NaivePlannerResetsStats) {
  const Schema schema = SmallSchema();
  const Dataset data = CorrelatedDataset(schema, 200, 17);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  NaivePlanner planner(est, cm);
  const Query q = Query::Conjunction({Predicate(2, 0, 1)});
  (void)planner.BuildPlan(q);
  EXPECT_EQ(planner.planner_stats().planner, planner.Name());
  EXPECT_EQ(planner.planner_stats().memo_hits, 0u);
}

}  // namespace
}  // namespace caqp
