// caqp::obs tests: registry metrics (counters, gauges, streaming stats),
// the JSON writer, structured export of snapshots / planner stats /
// attribute profiles, and the planner-stats plumbing on the real planners.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/planner_stats.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

TEST(RegistryTest, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("test.counter");
  c.Increment();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same object.
  EXPECT_EQ(&reg.GetCounter("test.counter"), &c);

  obs::Gauge& g = reg.GetGauge("test.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(RegistryTest, StreamingStatMoments) {
  obs::StreamingStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Record(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RegistryTest, StreamingStatQuantilesExactBelowCapacity) {
  obs::StreamingStat s;
  for (int i = 1; i <= 100; ++i) s.Record(static_cast<double>(i));
  // 1..100 fits in the reservoir, so quantiles are exact (interpolated).
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.p95(), 95.05, 1e-9);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Quantile(1.0), 100.0, 1e-9);
}

TEST(RegistryTest, StreamingStatReservoirStaysBounded) {
  obs::StreamingStat s;
  for (int i = 0; i < 100000; ++i) s.Record(static_cast<double>(i % 1000));
  EXPECT_EQ(s.count(), 100000u);
  // Quantiles are approximate but must stay inside the data range and
  // roughly ordered.
  const double p50 = s.p50();
  const double p95 = s.p95();
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p95, 999.0);
  EXPECT_LE(p50, p95);
  EXPECT_NEAR(p50, 500.0, 100.0);
}

TEST(RegistryTest, SnapshotSortedAndComplete) {
  obs::MetricsRegistry reg;
  reg.GetCounter("b.counter").Add(2);
  reg.GetCounter("a.counter").Add(1);
  reg.GetGauge("g").Set(3.0);
  reg.GetStat("s").Record(1.5);
  const obs::RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.counter");
  EXPECT_EQ(snap.counters[1].name, "b.counter");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.stats.size(), 1u);
  EXPECT_EQ(snap.stats[0].count, 1u);
}

TEST(ObsToggleTest, DisabledMacrosDoNotRecord) {
  obs::Counter& c =
      obs::DefaultRegistry().GetCounter("obs_test.toggle.counter");
  c.Reset();
  obs::SetEnabled(false);
  CAQP_OBS_COUNTER_INC("obs_test.toggle.counter");
  EXPECT_EQ(c.value(), 0u);
  obs::SetEnabled(true);
  CAQP_OBS_COUNTER_INC("obs_test.toggle.counter");
#if CAQP_OBS_ENABLED
  EXPECT_EQ(c.value(), 1u);
#else
  // With instrumentation compiled out the macro is a no-op either way.
  EXPECT_EQ(c.value(), 0u);
#endif
}

TEST(JsonWriterTest, NestedStructure) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(-3);
  w.Key("b").BeginArray().UInt(1).Double(2.5).Bool(true).Null().EndArray();
  w.Key("c").BeginObject().Key("d").String("x").EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":-3,\"b\":[1,2.5,true,null],\"c\":{\"d\":\"x\"}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(obs::EscapeJson("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::EscapeJson(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(INFINITY);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  obs::JsonWriter w;
  w.BeginArray().Double(0.1).Double(1e300).Double(-2.5).EndArray();
  EXPECT_EQ(w.str(), "[0.1,1e+300,-2.5]");
}

TEST(ExportTest, RegistryJsonContainsAllKinds) {
  obs::MetricsRegistry reg;
  reg.GetCounter("n.count").Add(7);
  reg.GetGauge("n.gauge").Set(1.5);
  reg.GetStat("n.stat").Record(3.0);
  const std::string json = obs::RegistryToJson(reg);
  EXPECT_NE(json.find("\"n.count\":7"), std::string::npos);
  EXPECT_NE(json.find("\"n.gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"n.stat\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  const std::string md = obs::RegistryToMarkdown(reg);
  EXPECT_NE(md.find("n.count"), std::string::npos);
  EXPECT_NE(md.find("| counter | value |"), std::string::npos);
}

TEST(ExportTest, PlannerStatsSerializes) {
  obs::PlannerStats st;
  st.Reset("TestPlanner");
  st.memo_hits = 3;
  st.bound_prunes = 5;
  st.expected_cost = 12.5;
  obs::JsonWriter w;
  obs::WritePlannerStats(w, st);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"planner\":\"TestPlanner\""), std::string::npos);
  EXPECT_NE(json.find("\"memo_hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"bound_prunes\":5"), std::string::npos);
  EXPECT_NE(json.find("\"expected_cost\":12.5"), std::string::npos);
}

TEST(AttributeProfileTest, CountsAndRates) {
  AttributeProfile prof(3);
  prof.OnAcquire(0, 1, 2.0);
  prof.OnVerdict(true, 2.0);
  prof.OnAcquire(0, 2, 2.0);
  prof.OnAcquire(2, 0, 5.0);
  prof.OnVerdict(false, 7.0);
  EXPECT_EQ(prof.tuples(), 2u);
  EXPECT_EQ(prof.matches(), 1u);
  EXPECT_EQ(prof.count(0), 2u);
  EXPECT_EQ(prof.count(1), 0u);
  EXPECT_EQ(prof.count(2), 1u);
  EXPECT_DOUBLE_EQ(prof.AcquisitionRate(0), 1.0);
  EXPECT_DOUBLE_EQ(prof.AcquisitionRate(2), 0.5);
  EXPECT_DOUBLE_EQ(prof.MeanCost(), 4.5);
  EXPECT_DOUBLE_EQ(prof.cost(2), 5.0);
}

TEST(PlannerStatsTest, GreedyPlannerFillsStats) {
  const Schema schema = SmallSchema();
  const Dataset data = CorrelatedDataset(schema, 600, 11);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  GreedySeqSolver solver;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &solver;
  opts.max_splits = 3;
  GreedyPlanner planner(est, cm, opts);
  const Query q = Query::Conjunction({Predicate(2, 0, 1), Predicate(3, 0, 2)});
  (void)planner.BuildPlan(q);
  const obs::PlannerStats& st = planner.planner_stats();
  EXPECT_EQ(st.planner, planner.Name());
  EXPECT_GE(st.split_searches, 1u);
  EXPECT_GT(st.seq_solves, 0u);
  EXPECT_GT(st.expected_cost, 0.0);
  // Every split adopted passed through the queue and contributes its
  // benefit to the running totals.
  if (st.splits_taken > 0) {
    EXPECT_GE(st.queue_high_water, 1u);
    EXPECT_GT(st.benefit_first, 0.0);
    EXPECT_GT(st.benefit_total, 0.0);
  }
}

TEST(PlannerStatsTest, ExhaustivePlannerFillsMemoCounts) {
  const Schema schema = SmallSchema();
  const Dataset data = CorrelatedDataset(schema, 400, 13);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  const Query q = Query::Conjunction({Predicate(2, 0, 1), Predicate(3, 0, 2)});
  (void)planner.BuildPlan(q);
  const obs::PlannerStats& st = planner.planner_stats();
  EXPECT_EQ(st.planner, planner.Name());
  EXPECT_GT(st.memo_misses, 0u);
  EXPECT_GT(st.candidates_tried, 0u);
  EXPECT_GT(st.expected_cost, 0.0);
  // Memoization and pruning must actually fire on a correlated workload.
  EXPECT_GT(st.memo_hits + st.bound_prunes, 0u);
}

TEST(PlannerStatsTest, NaivePlannerResetsStats) {
  const Schema schema = SmallSchema();
  const Dataset data = CorrelatedDataset(schema, 200, 17);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  NaivePlanner planner(est, cm);
  const Query q = Query::Conjunction({Predicate(2, 0, 1)});
  (void)planner.BuildPlan(q);
  EXPECT_EQ(planner.planner_stats().planner, planner.Name());
  EXPECT_EQ(planner.planner_stats().memo_hits, 0u);
}

}  // namespace
}  // namespace caqp
