// Statistics used by the evaluation: CostAccumulator's Welford moments,
// GainStats variance/percentiles, and the degenerate-input behavior of
// SummarizeGains / CumulativeGainCurve.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "exec/metrics.h"

namespace caqp {
namespace {

TEST(CostAccumulatorTest, WelfordMatchesClosedForm) {
  CostAccumulator acc;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) acc.Add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.total(), 40.0);
}

TEST(CostAccumulatorTest, EmptyAndSingle) {
  CostAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
  acc.Add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(CostAccumulatorTest, StableOnLargeOffsets) {
  // Naive sum-of-squares loses precision at this offset; Welford must not.
  CostAccumulator acc;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.Add(x);
  EXPECT_NEAR(acc.variance(), 2.0 / 3.0, 1e-6);
}

TEST(SortedPercentileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(SortedPercentile({7.0}, 95.0), 7.0);
}

TEST(GainStatsTest, VarianceAndPercentiles) {
  const GainStats s = SummarizeGains({2.0, 1.0, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.variance, 1.25);
  EXPECT_DOUBLE_EQ(s.p25, 1.75);
  EXPECT_DOUBLE_EQ(s.p75, 3.25);
  EXPECT_DOUBLE_EQ(s.p95, 3.85);
}

TEST(GainStatsTest, SingleElement) {
  const GainStats s = SummarizeGains({2.5});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.5);
  EXPECT_DOUBLE_EQ(s.p95, 2.5);
}

TEST(GainStatsTest, EmptyIsAllZero) {
  const GainStats s = SummarizeGains({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.p25, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
}

TEST(CumulativeGainCurveTest, EmptyInputGivesEmptyCurve) {
  EXPECT_TRUE(CumulativeGainCurve({}, 10).empty());
  EXPECT_TRUE(CumulativeGainCurve({1.0, 2.0}, 1).empty());
}

TEST(CumulativeGainCurveTest, AllEqualGainsCollapseToOnePoint) {
  const auto curve = CumulativeGainCurve({2.0, 2.0, 2.0}, 10);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].first, 2.0);
  EXPECT_DOUBLE_EQ(curve[0].second, 1.0);
}

TEST(CumulativeGainCurveTest, SingleElementCollapsesToOnePoint) {
  const auto curve = CumulativeGainCurve({1.5}, 5);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].first, 1.5);
  EXPECT_DOUBLE_EQ(curve[0].second, 1.0);
}

}  // namespace
}  // namespace caqp
