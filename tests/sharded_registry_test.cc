// Tests for obs/sharded_registry.h: per-worker metric shards and their
// snapshot-time merge semantics.

#include "obs/sharded_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace caqp {
namespace obs {
namespace {

TEST(ShardedRegistryTest, CountersSumAcrossShards) {
  ShardedRegistry reg(3);
  reg.shard(0).GetCounter("hits").Add(5);
  reg.shard(1).GetCounter("hits").Add(7);
  reg.shard(2).GetCounter("misses").Add(2);

  EXPECT_EQ(reg.CounterTotal("hits"), 12u);
  EXPECT_EQ(reg.CounterTotal("misses"), 2u);
  EXPECT_EQ(reg.CounterTotal("never_registered"), 0u);

  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "hits");
  EXPECT_EQ(snap.counters[0].value, 12u);
  EXPECT_EQ(snap.counters[1].name, "misses");
  EXPECT_EQ(snap.counters[1].value, 2u);
}

TEST(ShardedRegistryTest, GaugesTakeMaxAcrossShards) {
  ShardedRegistry reg(2);
  reg.shard(0).GetGauge("depth").Set(3.0);
  reg.shard(1).GetGauge("depth").Set(9.0);
  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 9.0);
}

TEST(ShardedRegistryTest, HistogramsMergeBucketwise) {
  ShardedRegistry reg(2);
  Histogram& a = reg.shard(0).GetHistogram("lat");
  Histogram& b = reg.shard(1).GetHistogram("lat");
  // Identical sample streams split across shards vs fed to one histogram
  // must produce identical merged snapshots.
  Histogram reference;
  for (int i = 1; i <= 100; ++i) {
    const double v = 0.001 * i;
    (i % 2 ? a : b).Record(v);
    reference.Record(v);
  }
  const HistogramSnapshot merged = reg.HistogramTotal("lat");
  const HistogramSnapshot expected = reference.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum, expected.sum);
  EXPECT_DOUBLE_EQ(merged.min, expected.min);
  EXPECT_DOUBLE_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_DOUBLE_EQ(merged.p99(), expected.p99());

  EXPECT_EQ(reg.HistogramTotal("never_registered").count, 0u);

  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 100u);
}

TEST(ShardedRegistryTest, StatsMergeMomentsExactly) {
  ShardedRegistry reg(2);
  StreamingStat& a = reg.shard(0).GetStat("cost");
  StreamingStat& b = reg.shard(1).GetStat("cost");
  StreamingStat reference;
  for (int i = 1; i <= 50; ++i) {
    const double v = static_cast<double>(i * i % 17);
    (i % 3 ? a : b).Record(v);
    reference.Record(v);
  }
  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.stats.size(), 1u);
  const auto& s = snap.stats[0];
  EXPECT_EQ(s.count, reference.count());
  EXPECT_NEAR(s.mean, reference.mean(), 1e-9);
  // Chan's parallel-moments merge reproduces the single-stream variance.
  EXPECT_NEAR(s.variance, reference.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(s.min, reference.min());
  EXPECT_DOUBLE_EQ(s.max, reference.max());
  // p50/p95 come from the largest-count shard: just sanity-bound them.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p95, s.max);
}

TEST(ShardedRegistryTest, ZeroShardsClampsToOne) {
  ShardedRegistry reg(0);
  EXPECT_EQ(reg.num_shards(), 1u);
  reg.shard(5).GetCounter("c").Increment();  // worker index wraps
  EXPECT_EQ(reg.CounterTotal("c"), 1u);
}

TEST(ShardedRegistryTest, ResetAllZeroesEveryShard) {
  ShardedRegistry reg(2);
  reg.shard(0).GetCounter("c").Add(4);
  reg.shard(1).GetHistogram("h").Record(0.5);
  reg.ResetAll();
  EXPECT_EQ(reg.CounterTotal("c"), 0u);
  EXPECT_EQ(reg.HistogramTotal("h").count, 0u);
}

TEST(ShardedRegistryTest, ConcurrentShardWritersWithSnapshotReader) {
  constexpr size_t kShards = 4;
  constexpr uint64_t kPerWorker = 5000;
  ShardedRegistry reg(kShards);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const RegistrySnapshot snap = reg.Snapshot();
      for (const auto& c : snap.counters) {
        EXPECT_LE(c.value, kShards * kPerWorker);
      }
    }
  });
  std::vector<std::thread> workers;
  for (size_t w = 0; w < kShards; ++w) {
    workers.emplace_back([&reg, w] {
      Counter& c = reg.shard(w).GetCounter("ops");
      Histogram& h = reg.shard(w).GetHistogram("lat");
      for (uint64_t i = 0; i < kPerWorker; ++i) {
        c.Increment();
        h.Record(1e-3);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(reg.CounterTotal("ops"), kShards * kPerWorker);
  EXPECT_EQ(reg.HistogramTotal("lat").count, kShards * kPerWorker);
}

}  // namespace
}  // namespace obs
}  // namespace caqp
