// Minmax-regret planning under uncertainty (opt/uncertainty.h,
// opt/regret.h) and its serve-side drift-widening loop. Suites are named
// Regret* so scripts/check.sh's TSan stage selects them with
// ctest -R '^Regret'.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "fault/fault.h"
#include "obs/calibration.h"
#include "opt/cost_model.h"
#include "opt/exhaustive.h"
#include "opt/optseq.h"
#include "opt/split_points.h"
#include "opt/planner.h"
#include "opt/regret.h"
#include "opt/uncertainty.h"
#include "plan/plan_cost.h"
#include "plan/plan_serde.h"
#include "prob/dataset_estimator.h"
#include "serve/query_service.h"

namespace caqp {
namespace {

using opt::CornerScenarios;
using opt::CostBounds;
using opt::CostScenario;
using opt::ExpectedPlanCostBounds;
using opt::RegretPlanner;
using opt::ScenarioPlanCost;
using opt::SharedUncertaintyBox;
using opt::UncertaintyBox;
using serve::QueryService;

// ---------------------------------------------------------------------------
// Shared fixture: the drift_test schema with EQUAL attribute costs, so plan
// choice is decided purely by (possibly shifted) selectivities:
//   regime A: P(a0 passes) = 0.10, P(a1 passes) = 0.90 -> a0 first, 5.5
//   regime B: P(a0 passes) = 0.95, P(a1 passes) = 0.05 -> a1 first, 5.25
// (the stale a0-first plan costs 9.75 on regime B traffic).

Schema EqualCostSchema() {
  Schema s;
  s.AddAttribute("a0", 10, 5.0);
  s.AddAttribute("a1", 10, 5.0);
  return s;
}

Query TwoPredQuery() {
  return Query::Conjunction({Predicate(0, 0, 0), Predicate(1, 0, 8)});
}

Dataset RegimeA(const Schema& schema, size_t rows = 1000) {
  Dataset ds(schema);
  for (size_t i = 0; i < rows; ++i) {
    Tuple t(2);
    t[0] = (i % 10 == 0) ? 0 : 5;  // passes a0 in [0,0] 10% of the time
    t[1] = (i % 10 == 9) ? 9 : 3;  // passes a1 in [0,8] 90% of the time
    ds.Append(t);
  }
  return ds;
}

Dataset RegimeB(const Schema& schema, size_t rows = 1000) {
  Dataset ds(schema);
  for (size_t i = 0; i < rows; ++i) {
    Tuple t(2);
    t[0] = (i % 20 == 0) ? 5 : 0;  // passes a0 95% of the time
    t[1] = (i % 20 == 1) ? 3 : 9;  // passes a1 5% of the time
    ds.Append(t);
  }
  return ds;
}

// The directional box a regime A -> B shift produces: a0 passes more than
// predicted (shift up to +0.85), a1 less (down to -0.85).
UncertaintyBox ShiftBox() {
  UncertaintyBox box;
  box.shift_hi[0] = 0.85;
  box.shift_lo[1] = -0.85;
  return box;
}

// ---------------------------------------------------------------------------
// RegretUncertaintyTest: box construction and corner enumeration.

TEST(RegretUncertaintyTest, UniformBoxIsSymmetricClampedAndDegenerateAtZero) {
  const UncertaintyBox box = UncertaintyBox::Uniform(0.2);
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) {
    EXPECT_DOUBLE_EQ(box.shift_lo[a], -0.2);
    EXPECT_DOUBLE_EQ(box.shift_hi[a], 0.2);
    EXPECT_DOUBLE_EQ(box.fault_lo[a], 0.0);
    EXPECT_DOUBLE_EQ(box.fault_hi[a], 0.0);
  }
  EXPECT_FALSE(box.degenerate());
  EXPECT_DOUBLE_EQ(box.max_width(), 0.4);

  EXPECT_TRUE(UncertaintyBox::Uniform(0.0).degenerate());
  EXPECT_TRUE(UncertaintyBox().degenerate());
  EXPECT_EQ(UncertaintyBox().ToString(), "(point)");
  // eps clamps to [0, 1].
  EXPECT_DOUBLE_EQ(UncertaintyBox::Uniform(7.0).shift_hi[0], 1.0);
  EXPECT_TRUE(UncertaintyBox::Uniform(-1.0).degenerate());
}

TEST(RegretUncertaintyTest, FromCalibrationConvertsSignedDriftToIntervals) {
  obs::CalibrationReport report;
  // a0 drifted UP: observed 0.8 vs predicted 0.5 -> interval [0, +0.3].
  obs::AttrCalibration up;
  up.attr = 0;
  up.evals = 100;
  up.passes = 80;
  up.predicted_evals = 100.0;
  up.predicted_passes = 50.0;
  report.attrs.push_back(up);
  // a1 drifted DOWN: observed 0.2 vs predicted 0.6 -> interval [-0.4, 0].
  obs::AttrCalibration down;
  down.attr = 1;
  down.evals = 200;
  down.passes = 40;
  down.predicted_evals = 200.0;
  down.predicted_passes = 120.0;
  report.attrs.push_back(down);
  // a2: too few evals -> ignored under min_evals.
  obs::AttrCalibration sparse;
  sparse.attr = 2;
  sparse.evals = 3;
  sparse.passes = 3;
  sparse.predicted_evals = 3.0;
  sparse.predicted_passes = 0.0;
  report.attrs.push_back(sparse);

  const UncertaintyBox box =
      UncertaintyBox::FromCalibration(report, /*scale=*/1.0, /*cap=*/1.0,
                                      /*min_evals=*/50);
  EXPECT_DOUBLE_EQ(box.shift_lo[0], 0.0);
  EXPECT_NEAR(box.shift_hi[0], 0.3, 1e-12);
  EXPECT_NEAR(box.shift_lo[1], -0.4, 1e-12);
  EXPECT_DOUBLE_EQ(box.shift_hi[1], 0.0);
  EXPECT_DOUBLE_EQ(box.shift_lo[2], 0.0);
  EXPECT_DOUBLE_EQ(box.shift_hi[2], 0.0);
  // Directional boxes always contain the zero shift (lo <= 0 <= hi).
  EXPECT_LE(box.shift_lo[0], 0.0);
  EXPECT_GE(box.shift_hi[0], 0.0);

  // scale stretches, cap clamps.
  const UncertaintyBox half =
      UncertaintyBox::FromCalibration(report, 0.5, 1.0, 50);
  EXPECT_NEAR(half.shift_hi[0], 0.15, 1e-12);
  const UncertaintyBox capped =
      UncertaintyBox::FromCalibration(report, 1.0, 0.1, 50);
  EXPECT_NEAR(capped.shift_hi[0], 0.1, 1e-12);
  EXPECT_NEAR(capped.shift_lo[1], -0.1, 1e-12);
}

TEST(RegretUncertaintyTest, FromFaultSpecBracketsTransientRates) {
  FaultSpec spec;
  spec.transient = 0.1;
  spec.transient_overrides.emplace_back(AttrId{2}, 0.5);
  const UncertaintyBox box = UncertaintyBox::FromFaultSpec(spec, /*eps=*/0.05);
  EXPECT_NEAR(box.fault_lo[0], 0.05, 1e-12);
  EXPECT_NEAR(box.fault_hi[0], 0.15, 1e-12);
  EXPECT_NEAR(box.fault_lo[2], 0.45, 1e-12);
  EXPECT_NEAR(box.fault_hi[2], 0.55, 1e-12);
  // Shift intervals stay degenerate; rates clamp into [0, max_rate].
  EXPECT_DOUBLE_EQ(box.shift_lo[0], 0.0);
  EXPECT_DOUBLE_EQ(box.shift_hi[0], 0.0);
  FaultSpec hot;
  hot.transient = 0.94;
  EXPECT_DOUBLE_EQ(UncertaintyBox::FromFaultSpec(hot, 0.5).fault_hi[0], 0.95);
  // A fault-free spec with no widening produces a point box.
  EXPECT_TRUE(UncertaintyBox::FromFaultSpec(FaultSpec{}).degenerate());
}

TEST(RegretUncertaintyTest, MergeFromIsPointwiseUnion) {
  UncertaintyBox a;
  a.shift_lo[0] = -0.1;
  a.shift_hi[0] = 0.2;
  a.fault_hi[1] = 0.3;
  UncertaintyBox b;
  b.shift_lo[0] = -0.3;
  b.shift_hi[0] = 0.1;
  b.fault_hi[1] = 0.1;
  b.shift_hi[2] = 0.4;
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.shift_lo[0], -0.3);
  EXPECT_DOUBLE_EQ(a.shift_hi[0], 0.2);
  EXPECT_DOUBLE_EQ(a.fault_hi[1], 0.3);
  EXPECT_DOUBLE_EQ(a.shift_hi[2], 0.4);
}

TEST(RegretUncertaintyTest, CornerScenariosNominalFirstFullProductWhenSmall) {
  const UncertaintyBox box = ShiftBox();  // two uncertain attributes
  const std::vector<CostScenario> scenarios = CornerScenarios(box);
  // Nominal + the full 2^2 corner product.
  ASSERT_EQ(scenarios.size(), 5u);
  // Nominal comes first: zero shift (both intervals contain 0), lo faults.
  EXPECT_DOUBLE_EQ(scenarios[0].shift[0], 0.0);
  EXPECT_DOUBLE_EQ(scenarios[0].shift[1], 0.0);
  // The all-hi corner (a0 at +0.85, a1 at 0) and the all-lo corner (a0 at
  // 0, a1 at -0.85) are both present.
  bool saw_hi0 = false, saw_lo1 = false, saw_both = false;
  for (const CostScenario& s : scenarios) {
    if (s.shift[0] == 0.85 && s.shift[1] == 0.0) saw_hi0 = true;
    if (s.shift[0] == 0.0 && s.shift[1] == -0.85) saw_lo1 = true;
    if (s.shift[0] == 0.85 && s.shift[1] == -0.85) saw_both = true;
  }
  EXPECT_TRUE(saw_hi0);
  EXPECT_TRUE(saw_lo1);
  EXPECT_TRUE(saw_both);
  // Degenerate box: just the nominal scenario.
  EXPECT_EQ(CornerScenarios(UncertaintyBox()).size(), 1u);
}

TEST(RegretUncertaintyTest, CornerScenariosRespectsCapDeterministically) {
  // Uniform boxes perturb all 64 attributes -> 2^64 corners; the sweep must
  // cap out, stay deterministic, and keep the nominal scenario first.
  const UncertaintyBox box = UncertaintyBox::Uniform(0.1);
  const std::vector<CostScenario> a = CornerScenarios(box, 16);
  const std::vector<CostScenario> b = CornerScenarios(box, 16);
  ASSERT_EQ(a.size(), 16u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].shift, b[i].shift);
    EXPECT_EQ(a[i].fault, b[i].fault);
  }
  EXPECT_DOUBLE_EQ(a[0].shift[0], 0.0);
  // The all-lo and all-hi extremes survive the cap.
  bool all_lo = false, all_hi = false;
  for (const CostScenario& s : a) {
    if (s.shift[0] == -0.1 && s.shift[63] == -0.1) all_lo = true;
    if (s.shift[0] == 0.1 && s.shift[63] == 0.1) all_hi = true;
  }
  EXPECT_TRUE(all_lo);
  EXPECT_TRUE(all_hi);
}

// ---------------------------------------------------------------------------
// RegretCostTest: scenario costing against the point-estimate walk.

struct CostFixture {
  Schema schema = EqualCostSchema();
  PerAttributeCostModel cm{schema};
  Dataset data = RegimeA(schema);
  DatasetEstimator est{data};
  OptSeqSolver solver;
  SequentialPlanner planner{est, cm, solver, "OptSeq"};
};

TEST(RegretCostTest, ZeroScenarioReproducesExpectedPlanCostExactly) {
  CostFixture fx;
  const Plan plan = fx.planner.BuildPlan(TwoPredQuery());
  const CompiledPlan compiled = CompiledPlan::Compile(plan);
  const double point = ExpectedPlanCost(compiled, fx.est, fx.cm);
  EXPECT_NEAR(point, 5.5, 1e-9);  // a0 first: 5 + 0.1 * 5
  // Bit-for-bit, not just close: the scenario walk mirrors ExpectedCoster.
  EXPECT_DOUBLE_EQ(ScenarioPlanCost(compiled, fx.est, fx.cm, CostScenario{}),
                   point);
}

TEST(RegretCostTest, ShiftedScenarioMovesPassProbabilities) {
  CostFixture fx;
  const Plan plan = fx.planner.BuildPlan(TwoPredQuery());
  const CompiledPlan compiled = CompiledPlan::Compile(plan);
  CostScenario s;
  s.shift[0] = 0.85;  // a0 now passes ~0.95 of the time
  // a0-first plan: 5 + clamp01(0.1 + 0.85) * 5 = 9.75.
  EXPECT_NEAR(ScenarioPlanCost(compiled, fx.est, fx.cm, s), 9.75, 1e-9);
  // Shifts clamp at 1: pushing further changes nothing.
  s.shift[0] = 5.0;
  EXPECT_NEAR(ScenarioPlanCost(compiled, fx.est, fx.cm, s), 10.0, 1e-9);
}

TEST(RegretCostTest, FaultRateMultipliesAcquisitionCost) {
  CostFixture fx;
  const Plan plan = fx.planner.BuildPlan(TwoPredQuery());
  const CompiledPlan compiled = CompiledPlan::Compile(plan);
  const double point = ExpectedPlanCost(compiled, fx.est, fx.cm);
  // A 50% transient rate on every attribute doubles every acquisition
  // under retry-until-success: cost * 1/(1 - 0.5).
  CostScenario s;
  for (size_t a = 0; a < kEstimateMaxAttrs; ++a) s.fault[a] = 0.5;
  EXPECT_NEAR(ScenarioPlanCost(compiled, fx.est, fx.cm, s), 2.0 * point,
              1e-9);
}

TEST(RegretCostTest, BoundsContainPointCostAndCollapseOnPointBox) {
  CostFixture fx;
  const Plan plan = fx.planner.BuildPlan(TwoPredQuery());
  const CompiledPlan compiled = CompiledPlan::Compile(plan);
  const double point = ExpectedPlanCost(compiled, fx.est, fx.cm);

  const CostBounds b =
      ExpectedPlanCostBounds(compiled, fx.est, fx.cm, ShiftBox());
  EXPECT_LE(b.lo, point);
  EXPECT_GE(b.hi, point);
  EXPECT_LT(b.lo, b.hi);
  EXPECT_NEAR(b.hi, 9.75, 1e-9);  // a0 shifted to 0.95

  const CostBounds tight =
      ExpectedPlanCostBounds(compiled, fx.est, fx.cm, UncertaintyBox());
  EXPECT_DOUBLE_EQ(tight.lo, point);
  EXPECT_DOUBLE_EQ(tight.hi, point);
}

TEST(RegretCostTest, StampEstimatesRecordsBoxAndBounds) {
  PlanEstimates est;
  UncertaintyBox box = ShiftBox();
  opt::StampEstimatesWithBox(est, box, CostBounds{5.25, 9.75});
  EXPECT_TRUE(est.has_cost_bounds);
  EXPECT_DOUBLE_EQ(est.cost_lo, 5.25);
  EXPECT_DOUBLE_EQ(est.cost_hi, 9.75);
  EXPECT_DOUBLE_EQ(est.box_shift_hi[0], 0.85);
  EXPECT_DOUBLE_EQ(est.box_shift_lo[1], -0.85);
}

// ---------------------------------------------------------------------------
// RegretPlannerTest: plan selection over the box.

TEST(RegretPlannerTest, DegenerateBoxReproducesPointPlanBitIdentically) {
  CostFixture fx;
  RegretPlanner::Options opts;
  opts.point_planner = &fx.planner;
  opts.box = UncertaintyBox();  // point box
  const RegretPlanner regret(fx.est, fx.cm, std::move(opts));

  const Query q = TwoPredQuery();
  const Plan point = fx.planner.BuildPlan(q);
  const Plan robust = regret.BuildPlan(q);
  EXPECT_EQ(SerializePlan(robust), SerializePlan(point));
  EXPECT_TRUE(regret.stats().degenerate_fallback);
  EXPECT_DOUBLE_EQ(regret.LastWorstCaseRegret(), 0.0);
}

TEST(RegretPlannerTest, PicksRobustOrderingUnderDirectionalBox) {
  CostFixture fx;
  RegretPlanner::Options opts;
  opts.point_planner = &fx.planner;
  opts.box = ShiftBox();
  const RegretPlanner regret(fx.est, fx.cm, std::move(opts));

  const Query q = TwoPredQuery();
  const Plan point = fx.planner.BuildPlan(q);
  const Plan robust = regret.BuildPlan(q);

  // Corner costs (equal attribute costs, conditional probs from regime A):
  //   a0-first: 5.5 nominal, 9.75 when a0 shifts up   -> max regret 4.5
  //   a1-first: 9.5 nominal (regret 4.0), 5.25 shifted -> max regret 4.0
  // Minmax regret therefore abandons the point plan for a1-first.
  EXPECT_NE(SerializePlan(robust), SerializePlan(point));
  const CompiledPlan compiled = CompiledPlan::Compile(robust);
  EXPECT_NEAR(ExpectedPlanCost(compiled, fx.est, fx.cm), 9.5, 1e-9);
  CostScenario shifted;
  shifted.shift[0] = 0.85;
  shifted.shift[1] = -0.85;
  EXPECT_NEAR(ScenarioPlanCost(compiled, fx.est, fx.cm, shifted), 5.25, 1e-9);

  const RegretPlanner::Stats& st = regret.stats();
  EXPECT_FALSE(st.degenerate_fallback);
  EXPECT_GE(st.candidates, 3u);  // point plan + both orderings
  EXPECT_GE(st.scenarios, 5u);
  EXPECT_NEAR(st.worst_case_regret, 4.0, 1e-9);
  EXPECT_NEAR(st.point_plan_regret, 4.5, 1e-9);
  // The robust pick never does worse (in max regret) than the point plan.
  EXPECT_LE(st.worst_case_regret, st.point_plan_regret);
}

TEST(RegretPlannerTest, BoxProviderOverridesStaticBox) {
  CostFixture fx;
  auto shared = std::make_shared<SharedUncertaintyBox>();
  RegretPlanner::Options opts;
  opts.point_planner = &fx.planner;
  opts.box = ShiftBox();  // would pick a1-first...
  opts.box_provider = [shared] { return shared->Get(); };
  const RegretPlanner regret(fx.est, fx.cm, std::move(opts));

  const Query q = TwoPredQuery();
  // ...but the provider currently says "point": fall back verbatim.
  EXPECT_EQ(SerializePlan(regret.BuildPlan(q)),
            SerializePlan(fx.planner.BuildPlan(q)));
  EXPECT_TRUE(regret.stats().degenerate_fallback);
  // Widen the shared box at runtime: the next build plans robustly.
  shared->Widen(ShiftBox());
  EXPECT_NE(SerializePlan(regret.BuildPlan(q)),
            SerializePlan(fx.planner.BuildPlan(q)));
  EXPECT_FALSE(regret.stats().degenerate_fallback);
}

TEST(RegretPlannerTest, NonConjunctiveQueryFallsBackToPointPlanner) {
  CostFixture fx;
  // The sequential-ordering candidates only exist for conjunctive queries;
  // DNF queries need a point planner that handles them (ExhaustivePlanner
  // is the only one that does).
  const SplitPointSet splits = SplitPointSet::AllPoints(fx.schema);
  ExhaustivePlanner::Options eopts;
  eopts.split_points = &splits;
  const ExhaustivePlanner exhaustive(fx.est, fx.cm, eopts);
  RegretPlanner::Options opts;
  opts.point_planner = &exhaustive;
  opts.box = ShiftBox();
  const RegretPlanner regret(fx.est, fx.cm, std::move(opts));

  const Query dnf = Query::Disjunction(
      {{Predicate(0, 0, 0)}, {Predicate(1, 0, 8)}});
  const Plan robust = regret.BuildPlan(dnf);
  EXPECT_EQ(SerializePlan(robust), SerializePlan(exhaustive.BuildPlan(dnf)));
  EXPECT_EQ(regret.stats().candidates, 1u);
}

// ---------------------------------------------------------------------------
// RegretDriftTest: the end-to-end widen-don't-just-invalidate loop. A
// QueryService in widen mode serves traffic that shifts regime A -> B. The
// estimator is NEVER retrained — recovery must come entirely from the
// drift window's box making the regret planner choose the robust ordering.

/// Per-worker robust bundle: a regime-A estimator (stale by design), an
/// OptSeq point planner, and a RegretPlanner following the shared box the
/// service's widen hook installs.
class RobustBuilder : public serve::PlanBuilder {
 public:
  RobustBuilder(const Schema& schema, const AcquisitionCostModel& cm,
                std::shared_ptr<SharedUncertaintyBox> box)
      : data_(RegimeA(schema)),
        est_(data_),
        point_(est_, cm, solver_, "OptSeq"),
        box_(std::move(box)) {
    RegretPlanner::Options opts;
    opts.point_planner = &point_;
    opts.box_provider = [b = box_] { return b->Get(); };
    regret_ = std::make_unique<RegretPlanner>(est_, cm, std::move(opts));
  }

  Plan Build(const Query& query) override {
    return regret_->BuildPlan(query);
  }
  uint64_t ConfigFingerprint() const override { return 0x4E68E7; }
  CondProbEstimator* CalibrationEstimator() override { return &est_; }
  bool PlanningBox(UncertaintyBox* out) override {
    *out = box_->Get();
    return !out->degenerate();
  }

 private:
  Dataset data_;
  DatasetEstimator est_;
  OptSeqSolver solver_;
  SequentialPlanner point_;
  std::shared_ptr<SharedUncertaintyBox> box_;
  std::unique_ptr<RegretPlanner> regret_;
};

TEST(RegretDriftTest, WidenModeConvergesInOneInvalidation) {
  const Schema schema = EqualCostSchema();
  const PerAttributeCostModel cm(schema);
  const Dataset traffic_a = RegimeA(schema);
  const Dataset traffic_b = RegimeB(schema);
  auto shared_box = std::make_shared<SharedUncertaintyBox>();

  serve::DriftPolicy policy;
  policy.threshold = 0.3;
  policy.consecutive_windows = 2;
  policy.min_window_evals = 50;
  policy.widen_on_drift = true;
  policy.on_widen = [shared_box](const UncertaintyBox& box,
                                 const obs::CalibrationReport&) {
    shared_box->Set(box);
  };

  QueryService::Options opts;
  opts.num_workers = 2;
  opts.cache_capacity = 64;
  opts.enable_calibration = true;
  opts.drift = std::move(policy);
  serve::QueryService service(
      schema, cm,
      [&] { return std::make_unique<RobustBuilder>(schema, cm, shared_box); },
      opts);

  const Query q = TwoPredQuery();
  const auto serve_batch = [&](const Dataset& traffic, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const QueryService::Response r =
          service.SubmitAndWait(q, traffic.GetTuple(i % traffic.num_rows()));
      ASSERT_TRUE(r.ok());
    }
  };

  // Window 1: on-distribution. The shared box is degenerate, so the regret
  // planner serves the point plan (a0 first, realized 5.5).
  serve_batch(traffic_a, 200);
  const serve::DriftStatus w1 = service.CheckDrift();
  EXPECT_FALSE(w1.over_threshold);
  EXPECT_FALSE(w1.widened);
  EXPECT_TRUE(w1.box.degenerate());
  ASSERT_EQ(w1.window.plans.size(), 1u);
  EXPECT_NEAR(w1.window.plans[0].realized_mean_cost(), 5.5, 0.05);
  // Point planning: no cost interval stamped on the plan.
  EXPECT_FALSE(w1.window.plans[0].has_cost_bounds);

  // Window 2: regime shifts under the stale plan — debounced, no firing.
  serve_batch(traffic_b, 200);
  const serve::DriftStatus w2 = service.CheckDrift();
  EXPECT_TRUE(w2.over_threshold);
  EXPECT_GT(w2.excess_drift, 0.3);  // no box installed: excess == max drift
  EXPECT_EQ(w2.streak, 1);
  EXPECT_FALSE(w2.fired);
  EXPECT_EQ(service.estimator_version(), 0u);

  // Window 3: still shifted — fires ONCE, widens, installs the box.
  serve_batch(traffic_b, 200);
  const serve::DriftStatus w3 = service.CheckDrift();
  EXPECT_TRUE(w3.fired);
  EXPECT_TRUE(w3.widened);
  EXPECT_EQ(service.estimator_version(), 1u);
  // The box is directional: a0 drifted up (observed 0.95 vs predicted
  // 0.10), a1 down — exactly the regime B move.
  EXPECT_GT(w3.box.shift_hi[0], 0.5);
  EXPECT_DOUBLE_EQ(w3.box.shift_lo[0], 0.0);
  EXPECT_LT(w3.box.shift_lo[1], -0.5);
  EXPECT_DOUBLE_EQ(w3.box.shift_hi[1], 0.0);
  EXPECT_FALSE(service.CurrentUncertaintyBox().degenerate());
  // The stale plan ran ~9.75 on shifted traffic.
  ASSERT_EQ(w3.window.plans.size(), 1u);
  EXPECT_NEAR(w3.window.plans[0].realized_mean_cost(), 9.75, 0.05);

  // Window 4: replanned under the installed box. The regret planner picks
  // the robust ordering (a1 first), landing within 10% of the post-shift
  // optimal 5.25 — with NO retraining and NO second invalidation: the
  // residual drift is inside the box, so excess drift stays under
  // threshold and the loop converges after exactly one firing.
  serve_batch(traffic_b, 200);
  const serve::DriftStatus w4 = service.CheckDrift();
  ASSERT_EQ(w4.window.plans.size(), 1u);
  EXPECT_EQ(w4.window.plans[0].key.estimator_version, 1u);
  const double realized = w4.window.plans[0].realized_mean_cost();
  EXPECT_LE(realized, 5.25 * 1.10);
  // The robust plan carries its interval promise, and kept it.
  EXPECT_TRUE(w4.window.plans[0].has_cost_bounds);
  EXPECT_LE(w4.window.plans[0].predicted_cost_lo, realized + 0.05);
  EXPECT_GE(w4.window.plans[0].predicted_cost_hi, realized - 0.05);
  // Raw drift persists (the estimator still predicts regime A), but the
  // box already hedges it: excess drift is small and nothing re-fires.
  EXPECT_LT(w4.excess_drift, 0.3);
  EXPECT_FALSE(w4.fired);
  EXPECT_FALSE(w4.widened);
  EXPECT_EQ(service.estimator_version(), 1u);

  // Window 5: still regime B — steady state, still exactly one firing.
  serve_batch(traffic_b, 200);
  const serve::DriftStatus w5 = service.CheckDrift();
  EXPECT_FALSE(w5.fired);
  EXPECT_EQ(service.estimator_version(), 1u);
}

}  // namespace
}  // namespace caqp
