// Plan structure, verdict semantics, serialization roundtrips and
// corruption handling, and the pretty printer.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "plan/plan.h"
#include "plan/plan_printer.h"
#include "plan/plan_serde.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::SmallSchema;

Plan SamplePlan() {
  // if exp0 >= 2: eval [cheap0 in [1,2]] else: FAIL
  auto seq = PlanNode::Sequential({Predicate(0, 1, 2)});
  auto root = PlanNode::Split(2, 2, PlanNode::Verdict(false), std::move(seq));
  return Plan(std::move(root));
}

TEST(PlanTest, CountsAndDepth) {
  const Plan p = SamplePlan();
  EXPECT_EQ(p.NumSplits(), 1u);
  EXPECT_EQ(p.NumNodes(), 3u);
  EXPECT_EQ(p.Depth(), 1u);
}

TEST(PlanTest, DefaultPlanRejectsEverything) {
  Plan p;
  EXPECT_FALSE(p.VerdictFor({0, 0, 0, 0}));
  EXPECT_EQ(p.NumSplits(), 0u);
}

TEST(PlanTest, VerdictForFollowsSplits) {
  const Plan p = SamplePlan();
  // exp0 (attr 2) < 2 -> FAIL regardless.
  EXPECT_FALSE(p.VerdictFor({1, 0, 1, 0}));
  // exp0 >= 2 -> sequential leaf on cheap0 in [1,2].
  EXPECT_TRUE(p.VerdictFor({1, 0, 2, 0}));
  EXPECT_FALSE(p.VerdictFor({3, 0, 2, 0}));
}

TEST(PlanTest, CloneIsDeep) {
  const Plan p = SamplePlan();
  const Plan copy = p.Clone();  // explicit deep clone; copy ctor is deleted
  EXPECT_EQ(copy.NumNodes(), p.NumNodes());
  EXPECT_NE(&copy.root(), &p.root());
  EXPECT_TRUE(copy.VerdictFor({1, 0, 2, 0}));
}

TEST(PlanTest, GenericLeafVerdict) {
  Query q = Query::Disjunction(
      {{Predicate(0, 3, 3)}, {Predicate(2, 0, 0), Predicate(1, 0, 1)}});
  Plan p(PlanNode::Generic(q, {0, 2, 1}));
  EXPECT_TRUE(p.VerdictFor({3, 5, 3, 0}));   // first disjunct
  EXPECT_TRUE(p.VerdictFor({0, 1, 0, 0}));   // second disjunct
  EXPECT_FALSE(p.VerdictFor({0, 5, 0, 0}));  // neither
}

TEST(PlanSerdeTest, RoundtripSequentialLeaf) {
  const Schema schema = SmallSchema();
  Plan p(PlanNode::Sequential(
      {Predicate(2, 1, 2), Predicate(0, 0, 1, /*neg=*/true)}));
  const auto bytes = SerializePlan(p);
  auto back = DeserializePlan(bytes, schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root().kind, PlanNode::Kind::kSequential);
  ASSERT_EQ(back->root().sequence.size(), 2u);
  EXPECT_EQ(back->root().sequence[1], Predicate(0, 0, 1, true));
}

TEST(PlanSerdeTest, RoundtripSplitTree) {
  const Schema schema = SmallSchema();
  const Plan p = SamplePlan();
  auto back = DeserializePlan(SerializePlan(p), schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumSplits(), 1u);
  // Behavioral equality over the full domain.
  Tuple t(4, 0);
  for (Value a = 0; a < 4; ++a) {
    for (Value c = 0; c < 4; ++c) {
      t[0] = a;
      t[2] = c;
      EXPECT_EQ(back->VerdictFor(t), p.VerdictFor(t));
    }
  }
}

TEST(PlanSerdeTest, RoundtripGenericLeaf) {
  const Schema schema = SmallSchema();
  Query q = Query::Disjunction(
      {{Predicate(0, 1, 2)}, {Predicate(3, 0, 0), Predicate(2, 3, 3)}});
  Plan p(PlanNode::Generic(q, {0, 3, 2}));
  auto back = DeserializePlan(SerializePlan(p), schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root().kind, PlanNode::Kind::kGeneric);
  EXPECT_EQ(back->root().acquire_order, (std::vector<AttrId>{0, 3, 2}));
  EXPECT_EQ(back->root().residual_query.conjuncts().size(), 2u);
}

TEST(PlanSerdeTest, SizeIsCompact) {
  const Plan p = SamplePlan();
  // Flat encoding: version + node count + split (kind/attr/value/ge-index)
  // + verdict leaf (2) + seq leaf (2 + 4 per predicate).
  EXPECT_LE(PlanSizeBytes(p), 16u);
}

TEST(PlanSerdeTest, RejectsTrailingGarbage) {
  const Schema schema = SmallSchema();
  auto bytes = SerializePlan(SamplePlan());
  bytes.push_back(0x7);
  EXPECT_EQ(DeserializePlan(bytes, schema).status().code(),
            StatusCode::kDataLoss);
}

TEST(PlanSerdeTest, RejectsTruncation) {
  const Schema schema = SmallSchema();
  auto bytes = SerializePlan(SamplePlan());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(DeserializePlan(trunc, schema).ok()) << "cut=" << cut;
  }
}

TEST(PlanSerdeTest, RejectsOutOfSchemaAttr) {
  Plan p(PlanNode::Sequential({Predicate(3, 0, 1)}));
  auto bytes = SerializePlan(p);
  Schema tiny;
  tiny.AddAttribute("only", 4, 1.0);
  EXPECT_FALSE(DeserializePlan(bytes, tiny).ok());
}

TEST(PlanSerdeTest, RejectsOutOfDomainSplitValue) {
  Plan p(PlanNode::Split(0, 3, PlanNode::Verdict(false),
                         PlanNode::Verdict(true)));
  auto bytes = SerializePlan(p);
  Schema binary;
  binary.AddAttribute("a", 2, 1.0);  // split at 3 is out of domain 2
  EXPECT_FALSE(DeserializePlan(bytes, binary).ok());
}

TEST(PlanSerdeTest, RandomBitFlipsNeverCrash) {
  const Schema schema = SmallSchema();
  const auto bytes = SerializePlan(SamplePlan());
  Rng rng(33);
  for (int iter = 0; iter < 500; ++iter) {
    auto corrupted = bytes;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, corrupted.size() - 1));
    corrupted[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    // Must either parse to a valid plan or fail cleanly; never crash.
    auto result = DeserializePlan(corrupted, schema);
    if (result.ok()) {
      EXPECT_GE(result->NumNodes(), 1u);
    }
  }
}

TEST(PlanPrinterTest, RendersTree) {
  const Schema schema = SmallSchema();
  const std::string out = PrintPlan(SamplePlan(), schema);
  EXPECT_NE(out.find("if exp0 >= 2"), std::string::npos);
  EXPECT_NE(out.find("=> FAIL"), std::string::npos);
  EXPECT_NE(out.find("cheap0 in [1,2]"), std::string::npos);
}

TEST(PlanPrinterTest, SummaryContainsCounts) {
  const std::string s = PlanSummary(SamplePlan());
  EXPECT_NE(s.find("splits=1"), std::string::npos);
  EXPECT_NE(s.find("depth=1"), std::string::npos);
}

}  // namespace
}  // namespace caqp
