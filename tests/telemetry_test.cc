// Live-telemetry-plane tests (caqp::obs v3): canonical Prometheus metric
// naming and rendering, the embedded MetricsExposer scraped over a real
// loopback socket, multi-window SLO burn-rate math on synthetic clocks, the
// cross-shard TraceJoin (including the dist acceptance predicate: every
// shard span under the coordinator request span), per-kernel executor
// counters, and the shard-flapping stress tests that pin the cross-shard
// CalibrationAggregator merge and trace join under concurrent kill/revive.
// Every suite is named Telemetry* so scripts/check.sh selects them for the
// TSan build.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "exec/batch_executor.h"
#include "exec/executor.h"
#include "obs/exposer.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/trace_join.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/split_points.h"
#include "plan/compiled_plan.h"
#include "prob/chow_liu.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace caqp {
namespace {

using obs::CanonicalMetricName;
using obs::CanonicalizeSnapshot;
using obs::JoinTraces;
using obs::JoinedTrace;
using obs::MergeSnapshotInto;
using obs::MetricAliases;
using obs::MetricKind;
using obs::MetricsExposer;
using obs::RegistrySnapshot;
using obs::RenderPrometheusText;
using obs::SloMonitor;
using obs::SpanEvent;
using obs::SpanIdBase;
using obs::TraceJoinResult;

// ---------------------------------------------------------------------------
// Canonical metric names and exposition rendering
// ---------------------------------------------------------------------------

TEST(TelemetryMetricNameTest, CanonicalFormRules) {
  EXPECT_EQ(CanonicalMetricName("serve.requests", MetricKind::kCounter),
            "serve_requests_total");
  EXPECT_EQ(CanonicalMetricName("serve.requests_total", MetricKind::kCounter),
            "serve_requests_total");
  EXPECT_EQ(CanonicalMetricName("serve.queue.depth", MetricKind::kGauge),
            "serve_queue_depth");
  EXPECT_EQ(CanonicalMetricName("exec.latency-ms", MetricKind::kHistogram),
            "exec_latency_ms");
  EXPECT_EQ(CanonicalMetricName("9lives", MetricKind::kGauge), "_9lives");
  EXPECT_EQ(CanonicalMetricName("", MetricKind::kGauge), "_");
}

TEST(TelemetryMetricNameTest, CanonicalizeRecordsAliasesForRenames) {
  RegistrySnapshot snap;
  snap.counters.push_back({"serve.cache.hits", 5});
  snap.gauges.push_back({"already_canonical", 1.0});
  MetricAliases aliases;
  const RegistrySnapshot canon = CanonicalizeSnapshot(snap, &aliases);
  ASSERT_EQ(canon.counters.size(), 1u);
  EXPECT_EQ(canon.counters[0].name, "serve_cache_hits_total");
  ASSERT_EQ(aliases.size(), 1u);
  EXPECT_EQ(aliases[0].first, "serve.cache.hits");
  EXPECT_EQ(aliases[0].second, "serve_cache_hits_total");
}

TEST(TelemetryMetricNameTest, CollidingCanonicalNamesMergeIntoOneSeries) {
  // "serve.cache.hits" and "serve.cache_hits" both canonicalize to
  // serve_cache_hits_total; a duplicate series is invalid exposition, so
  // the canonicalizer must merge them (counters sum, gauges max).
  RegistrySnapshot snap;
  snap.counters.push_back({"serve.cache.hits", 5});
  snap.counters.push_back({"serve.cache_hits", 7});
  snap.gauges.push_back({"a.b", 1.0});
  snap.gauges.push_back({"a_b", 3.0});
  const RegistrySnapshot canon = CanonicalizeSnapshot(snap, nullptr);
  ASSERT_EQ(canon.counters.size(), 1u);
  EXPECT_EQ(canon.counters[0].name, "serve_cache_hits_total");
  EXPECT_EQ(canon.counters[0].value, 12u);
  ASSERT_EQ(canon.gauges.size(), 1u);
  EXPECT_EQ(canon.gauges[0].value, 3.0);
}

// Minimal exposition validator: every sample line's metric name must be
// declared by a preceding # TYPE line, no metric name may be declared
// twice, and every line is either a comment or "name{labels} value".
void ValidateExposition(const std::string& text) {
  std::set<std::string> declared;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string name = line.substr(7, sp - 7);
      EXPECT_TRUE(declared.insert(name).second)
          << "duplicate TYPE declaration for " << name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    const size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string name = line.substr(0, name_end);
    // _bucket/_sum/_count samples belong to their parent histogram/summary.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::strlen(suffix);
      if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0 &&
          declared.count(name) == 0) {
        name = name.substr(0, name.size() - n);
      }
    }
    EXPECT_TRUE(declared.count(name) > 0)
        << "sample for undeclared metric: " << line;
  }
}

TEST(TelemetryMetricNameTest, RenderedExpositionIsValidAndDeduplicated) {
  RegistrySnapshot snap;
  snap.counters.push_back({"serve.requests", 42});
  snap.counters.push_back({"serve.cache.hits", 5});
  snap.counters.push_back({"serve.cache_hits", 5});  // canonical collision
  snap.gauges.push_back({"serve.queue.depth", 3.5});
  RegistrySnapshot::StatValue stat;
  stat.name = "plan.build_seconds";
  stat.count = 4;
  stat.mean = 0.25;
  stat.p50 = 0.2;
  stat.p95 = 0.4;
  snap.stats.push_back(stat);
  obs::Histogram latency;
  latency.Record(0.001);
  latency.Record(0.002);
  latency.Record(1.5);
  RegistrySnapshot::HistogramValue hv;
  hv.name = "serve.latency_seconds";
  hv.hist = latency.Snapshot();
  snap.histograms.push_back(hv);

  const std::string text = RenderPrometheusText(snap);
  ValidateExposition(text);
  EXPECT_NE(text.find("# TYPE serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("plan_build_seconds{quantile=\"0.95\"} "),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_seconds_count 3\n"), std::string::npos);
  // The collision rendered exactly one TYPE line and one sample.
  const size_t first = text.find("serve_cache_hits_total");
  const size_t second = text.find("# TYPE serve_cache_hits_total",
                                  first + 1);
  EXPECT_EQ(second, std::string::npos);
  EXPECT_NE(text.find("serve_cache_hits_total 10\n"), std::string::npos);
}

TEST(TelemetryMetricNameTest, MergeSnapshotSumsCountersAndMergesHists) {
  RegistrySnapshot a;
  a.counters.push_back({"x", 1});
  a.gauges.push_back({"g", 2.0});
  RegistrySnapshot b;
  b.counters.push_back({"x", 3});
  b.counters.push_back({"y", 7});
  b.gauges.push_back({"g", 1.0});
  MergeSnapshotInto(&a, b);
  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].name, "x");
  EXPECT_EQ(a.counters[0].value, 4u);
  EXPECT_EQ(a.counters[1].value, 7u);
  ASSERT_EQ(a.gauges.size(), 1u);
  EXPECT_EQ(a.gauges[0].value, 2.0);  // gauges keep the max
}

// ---------------------------------------------------------------------------
// MetricsExposer over a real loopback socket
// ---------------------------------------------------------------------------

// Blocking one-shot HTTP client, enough for Connection: close servers.
std::string HttpRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET " + path +
                               " HTTP/1.1\r\nHost: t\r\n"
                               "Connection: close\r\n\r\n");
}

TEST(TelemetryExposerTest, ServesMetricsOnEphemeralPort) {
  std::atomic<int> renders{0};
  MetricsExposer exposer(
      [&renders] {
        renders.fetch_add(1);
        RegistrySnapshot snap;
        snap.counters.push_back({"test.scrapes", 1});
        return RenderPrometheusText(snap);
      },
      MetricsExposer::Options{});
  ASSERT_TRUE(exposer.Start().ok());
  ASSERT_NE(exposer.port(), 0);
  EXPECT_TRUE(exposer.running());

  const std::string resp = Get(exposer.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("test_scrapes_total 1\n"), std::string::npos);
  EXPECT_GE(renders.load(), 1);
  EXPECT_GE(exposer.requests_served(), 1u);

  const std::string health = Get(exposer.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  EXPECT_NE(Get(exposer.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(HttpRequest(exposer.port(),
                        "POST /metrics HTTP/1.1\r\nHost: t\r\n"
                        "Connection: close\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);

  exposer.Stop();
  EXPECT_FALSE(exposer.running());
  exposer.Stop();  // idempotent
}

TEST(TelemetryExposerTest, OccupiedPortFailsWithoutCrashing) {
  MetricsExposer first([] { return std::string(); },
                       MetricsExposer::Options{});
  ASSERT_TRUE(first.Start().ok());
  MetricsExposer::Options opts;
  opts.port = first.port();
  MetricsExposer second([] { return std::string(); }, opts);
  EXPECT_FALSE(second.Start().ok());
  EXPECT_FALSE(second.running());
}

TEST(TelemetryExposerTest, ConstructedButNotStartedIsInert) {
  // The bench_obs_overhead contract: an exposer that is never started
  // binds nothing and spawns nothing; destruction is a no-op.
  MetricsExposer exposer([] { return std::string("x"); },
                         MetricsExposer::Options{});
  EXPECT_FALSE(exposer.running());
  EXPECT_EQ(exposer.port(), 0);
}

TEST(TelemetryExposerTest, ConcurrentScrapesAllSucceed) {
  MetricsExposer exposer([] { return std::string("a 1\n"); },
                         MetricsExposer::Options{});
  ASSERT_TRUE(exposer.Start().ok());
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      for (int j = 0; j < 8; ++j) {
        const std::string r = Get(exposer.port(), "/metrics");
        if (r.find("HTTP/1.1 200") != std::string::npos &&
            r.find("a 1\n") != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 32);
  EXPECT_GE(exposer.requests_served(), 32u);
}

// ---------------------------------------------------------------------------
// SLO burn-rate math on a synthetic clock
// ---------------------------------------------------------------------------

// 64 buckets over 64us => 1us buckets; 4-bucket fast window. Every
// timestamp below is synthetic, so the tests are exact and clock-free.
SloMonitor::Options TinySloOptions() {
  SloMonitor::Options o;
  o.slow_window_ns = 64000;
  o.fast_window_ns = 4000;
  o.availability_target = 0.9;  // all-bad burn = 1/0.1 = 10
  o.latency_target = 0.9;
  o.latency_threshold_seconds = 0.1;
  o.fast_burn_threshold = 5.0;
  o.slow_burn_threshold = 2.0;
  o.min_window_requests = 8;
  o.cooloff_ns = 10000;
  o.check_interval = 1;
  return o;
}

TEST(TelemetrySloTest, FiresWhenBothWindowsBreach) {
  SloMonitor::Options opts = TinySloOptions();
  std::vector<SloMonitor::BurnEvent> events;
  opts.on_burn = [&events](const SloMonitor::BurnEvent& e) {
    events.push_back(e);
  };
  SloMonitor mon(opts);
  for (int i = 0; i < 32; ++i) {
    mon.RecordRequest(/*now_ns=*/5000, /*available=*/false, 0.0);
  }
  // Fires exactly once: the first evaluation with >= min_window_requests
  // trips, and all later records land inside the cooloff.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].slo, SloMonitor::Slo::kAvailability);
  EXPECT_DOUBLE_EQ(events[0].fast_burn, 10.0);
  EXPECT_DOUBLE_EQ(events[0].slow_burn, 10.0);
  EXPECT_EQ(mon.burns_fired(), 1u);
}

TEST(TelemetrySloTest, FastOnlyBreachDoesNotFire) {
  SloMonitor::Options opts = TinySloOptions();
  SloMonitor mon(opts);
  // A long healthy history outside the fast window...
  for (uint64_t bucket = 0; bucket < 56; ++bucket) {
    for (int i = 0; i < 100; ++i) {
      mon.RecordRequest(bucket * 1000, /*available=*/true, 0.0);
    }
  }
  // ...then a total outage burst confined to the fast window. Fast burn is
  // 10 (>= 5) but the slow window has 5600 good requests, so slow burn is
  // (20/5620)/0.1 ~= 0.036 (< 2): the multi-window rule suppresses it.
  for (int i = 0; i < 20; ++i) {
    mon.RecordRequest(/*now_ns=*/60000, /*available=*/false, 0.0);
  }
  EXPECT_EQ(mon.burns_fired(), 0u);
  const SloMonitor::Snapshot snap = mon.GetSnapshot(60000);
  EXPECT_GE(snap.availability_fast_burn, 5.0);
  EXPECT_LT(snap.availability_slow_burn, 2.0);
}

TEST(TelemetrySloTest, CooloffSpacesRepeatedFires) {
  SloMonitor::Options opts = TinySloOptions();
  SloMonitor mon(opts);
  for (int i = 0; i < 32; ++i) mon.RecordRequest(5000, false, 0.0);
  EXPECT_EQ(mon.burns_fired(), 1u);
  // Still inside the 10us cooloff: no second fire.
  for (int i = 0; i < 32; ++i) mon.RecordRequest(9000, false, 0.0);
  EXPECT_EQ(mon.burns_fired(), 1u);
  // Past the cooloff: fires again.
  for (int i = 0; i < 32; ++i) mon.RecordRequest(16000, false, 0.0);
  EXPECT_EQ(mon.burns_fired(), 2u);
}

TEST(TelemetrySloTest, LatencySloFiresIndependentlyOfAvailability) {
  SloMonitor::Options opts = TinySloOptions();
  std::vector<SloMonitor::BurnEvent> events;
  opts.on_burn = [&events](const SloMonitor::BurnEvent& e) {
    events.push_back(e);
  };
  SloMonitor mon(opts);
  // Available but slow: only the latency SLO burns.
  for (int i = 0; i < 32; ++i) {
    mon.RecordRequest(5000, /*available=*/true, /*latency_seconds=*/0.5);
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].slo, SloMonitor::Slo::kLatency);
  const SloMonitor::Snapshot snap = mon.GetSnapshot(5000);
  EXPECT_DOUBLE_EQ(snap.availability_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snap.latency_ratio, 0.0);
}

TEST(TelemetrySloTest, MinWindowRequestsGatesFiring) {
  SloMonitor::Options opts = TinySloOptions();
  SloMonitor mon(opts);
  for (int i = 0; i < 7; ++i) mon.RecordRequest(5000, false, 0.0);
  EXPECT_EQ(mon.burns_fired(), 0u);  // 7 < min_window_requests = 8
  mon.RecordRequest(5000, false, 0.0);
  EXPECT_EQ(mon.burns_fired(), 1u);
}

TEST(TelemetrySloTest, SnapshotRatiosReflectTheWindow) {
  SloMonitor::Options opts = TinySloOptions();
  SloMonitor mon(opts);
  for (int i = 0; i < 90; ++i) mon.RecordRequest(5000, true, 0.0);
  for (int i = 0; i < 10; ++i) mon.RecordRequest(5000, false, 0.2);
  const SloMonitor::Snapshot snap = mon.GetSnapshot(5000);
  EXPECT_EQ(snap.requests_slow, 100u);
  EXPECT_DOUBLE_EQ(snap.availability_ratio, 0.9);
  EXPECT_DOUBLE_EQ(snap.latency_ratio, 0.9);
  // 10% bad against a 10% budget: burning at exactly the sustainable rate.
  EXPECT_DOUBLE_EQ(snap.availability_slow_burn, 1.0);
}

TEST(TelemetrySloTest, ConcurrentRecordersAreRaceFreeAndFire) {
  SloMonitor::Options opts = TinySloOptions();
  opts.cooloff_ns = 1;  // let every thread's window fire
  SloMonitor mon(opts);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mon, t] {
      for (int i = 0; i < 2000; ++i) {
        mon.RecordRequest(5000 + static_cast<uint64_t>(t), false, 0.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(mon.burns_fired(), 1u);
  const SloMonitor::Snapshot snap = mon.GetSnapshot(5000);
  EXPECT_EQ(snap.requests_slow, 8000u);
}

// ---------------------------------------------------------------------------
// QueryService SLO integration
// ---------------------------------------------------------------------------

struct TelemetryServiceFixture {
  Schema schema = testing_util::SmallSchema();
  Dataset data = testing_util::CorrelatedDataset(schema, 4000, 11);
  PerAttributeCostModel cm{schema};
  SplitPointSet splits = SplitPointSet::AllPoints(schema);
  GreedySeqSolver solver;
  ChowLiuEstimator estimator{data};
  std::unique_ptr<GreedyPlanner> planner;

  TelemetryServiceFixture() {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &solver;
    opts.max_splits = 3;
    planner = std::make_unique<GreedyPlanner>(estimator, cm, opts);
  }

  serve::QueryService MakeService(serve::QueryService::Options opts) {
    return serve::QueryService(
        schema, cm,
        [this] {
          return std::make_unique<serve::SharedPlannerBuilder>(*planner, 21);
        },
        opts);
  }
};

TEST(TelemetryServeSloTest, LatencyBurnFiresAndRecordsIncident) {
  TelemetryServiceFixture fx;
  serve::QueryService::Options opts;
  opts.num_workers = 2;
  opts.enable_tracing = true;
  opts.enable_slo = true;
  // Impossible latency SLO: every request is "slow", so the burn fires as
  // soon as min_window_requests requests complete.
  opts.slo.latency_threshold_seconds = 0.0;
  opts.slo.latency_target = 0.5;
  opts.slo.fast_burn_threshold = 1.5;
  opts.slo.slow_burn_threshold = 1.0;
  opts.slo.min_window_requests = 8;
  opts.slo.check_interval = 1;
  opts.slo.cooloff_ns = 3600ull * 1000 * 1000 * 1000;
  std::atomic<int> user_burns{0};
  opts.slo.on_burn = [&user_burns](const SloMonitor::BurnEvent&) {
    user_burns.fetch_add(1);
  };
  serve::QueryService service = fx.MakeService(opts);
  const Query q =
      Query::Conjunction({Predicate(2, 1, 3), Predicate(0, 1, 2)});
  for (RowId r = 0; r < 64; ++r) {
    const serve::QueryService::Response resp =
        service.SubmitAndWait(q, fx.data.GetTuple(r));
    EXPECT_TRUE(resp.status.ok());
  }
  ASSERT_NE(service.slo_monitor(), nullptr);
  EXPECT_GE(service.slo_burns_fired(), 1u);
  EXPECT_GE(user_burns.load(), 1);  // the user hook still runs after ours
  const SloMonitor::Snapshot snap =
      service.slo_monitor()->GetSnapshot(obs::MonotonicNowNs());
  EXPECT_LT(snap.latency_ratio, 1.0);
  // The burn left a flight-recorder incident for postmortems.
  bool found = false;
  for (const auto& incident : service.trace_recorder().Incidents()) {
    if (incident.reason == "slo_burn_latency") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryServeSloTest, DisabledSloLeavesNoMonitor) {
  TelemetryServiceFixture fx;
  serve::QueryService::Options opts;
  opts.num_workers = 2;
  serve::QueryService service = fx.MakeService(opts);
  EXPECT_EQ(service.slo_monitor(), nullptr);
  EXPECT_EQ(service.slo_burns_fired(), 0u);
  const Query q = Query::Conjunction({Predicate(0, 1, 2)});
  EXPECT_TRUE(service.SubmitAndWait(q, fx.data.GetTuple(0)).status.ok());
}

// ---------------------------------------------------------------------------
// TraceJoin on synthetic span streams
// ---------------------------------------------------------------------------

SpanEvent Ev(uint64_t trace, uint32_t span, uint32_t parent, uint32_t worker,
             uint64_t start, const char* name = "span") {
  SpanEvent e;
  e.trace_id = trace;
  e.span_id = span;
  e.parent_id = parent;
  e.worker = worker;
  e.start_ns = start;
  e.dur_ns = 1;
  e.name = name;
  return e;
}

TEST(TelemetryTraceJoinTest, JoinsCrossWorkerSpansUnderOneRoot) {
  std::vector<SpanEvent> events;
  events.push_back(Ev(7, 1, 0, 0, 10, "request"));
  events.push_back(Ev(7, 2, 1, 0, 12, "plan"));
  // Shard spans in worker slots 1 and 2, parented to the request span.
  events.push_back(Ev(7, SpanIdBase(1), 1, 1, 14, "shard.handle"));
  events.push_back(Ev(7, SpanIdBase(1) + 1, SpanIdBase(1), 1, 15, "exec"));
  events.push_back(Ev(7, SpanIdBase(2), 1, 2, 14, "shard.handle"));

  const TraceJoinResult result = JoinTraces(events);
  EXPECT_EQ(result.total_events, 5u);
  EXPECT_EQ(result.total_adopted, 0u);
  EXPECT_EQ(result.total_duplicates, 0u);
  ASSERT_EQ(result.traces.size(), 1u);
  const JoinedTrace& t = result.traces[0];
  EXPECT_EQ(t.trace_id, 7u);
  EXPECT_EQ(t.root_span_id, 1u);
  EXPECT_STREQ(t.root_name, "request");
  EXPECT_EQ(t.events.size(), 5u);
  EXPECT_EQ(t.events[0].span_id, 1u);  // root first
  EXPECT_TRUE(t.AllUnderRoot());
}

TEST(TelemetryTraceJoinTest, AdoptsOrphansUnderTheRoot) {
  std::vector<SpanEvent> events;
  events.push_back(Ev(3, 1, 0, 0, 10, "request"));
  // Parent id 999 resolves nowhere (dropped by a full span buffer).
  events.push_back(Ev(3, 50, 999, 1, 20, "orphan"));
  const TraceJoinResult result = JoinTraces(events);
  ASSERT_EQ(result.traces.size(), 1u);
  EXPECT_EQ(result.traces[0].adopted_orphans, 1u);
  EXPECT_EQ(result.total_adopted, 1u);
  EXPECT_TRUE(result.traces[0].AllUnderRoot());
}

TEST(TelemetryTraceJoinTest, CountsDuplicateSpanIds) {
  std::vector<SpanEvent> events;
  events.push_back(Ev(3, 1, 0, 0, 10));
  events.push_back(Ev(3, 2, 1, 0, 11));
  events.push_back(Ev(3, 2, 1, 0, 12));  // same span id again
  const TraceJoinResult result = JoinTraces(events);
  ASSERT_EQ(result.traces.size(), 1u);
  EXPECT_EQ(result.traces[0].duplicate_span_ids, 1u);
  EXPECT_EQ(result.traces[0].events.size(), 3u);  // never dropped
}

TEST(TelemetryTraceJoinTest, SeparatesTracesAndFindsById) {
  std::vector<SpanEvent> events;
  events.push_back(Ev(9, 1, 0, 0, 10));
  events.push_back(Ev(4, 1, 0, 0, 20));
  events.push_back(Ev(4, 2, 1, 0, 21));
  const TraceJoinResult result = JoinTraces(events);
  ASSERT_EQ(result.traces.size(), 2u);
  EXPECT_EQ(result.traces[0].trace_id, 4u);  // ascending trace id
  EXPECT_EQ(result.traces[1].trace_id, 9u);
  ASSERT_NE(result.Find(4), nullptr);
  EXPECT_EQ(result.Find(4)->events.size(), 2u);
  EXPECT_EQ(result.Find(5), nullptr);
}

TEST(TelemetryTraceJoinTest, RootlessTraceReportsNoRootAndFailsPredicate) {
  std::vector<SpanEvent> events;
  events.push_back(Ev(2, 5, 4, 0, 10));  // parent never recorded, no root
  const TraceJoinResult result = JoinTraces(events);
  ASSERT_EQ(result.traces.size(), 1u);
  EXPECT_EQ(result.traces[0].root_span_id, 0u);
  EXPECT_FALSE(result.traces[0].AllUnderRoot());
}

// ---------------------------------------------------------------------------
// Dist end to end: one unified trace per request
// ---------------------------------------------------------------------------

struct TelemetryDistFixture {
  Schema schema = testing_util::SmallSchema();
  Dataset data = testing_util::CorrelatedDataset(schema, 6000, 17);
  PerAttributeCostModel cm{schema};
  SplitPointSet splits = SplitPointSet::AllPoints(schema);
  GreedySeqSolver solver;
  ChowLiuEstimator estimator{data};
  std::unique_ptr<GreedyPlanner> planner;

  TelemetryDistFixture() {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &solver;
    opts.max_splits = 3;
    planner = std::make_unique<GreedyPlanner>(estimator, cm, opts);
  }

  dist::Coordinator MakeCoordinator(dist::Coordinator::Options opts) {
    return dist::Coordinator(
        data, cm,
        [this] {
          return std::make_unique<serve::SharedPlannerBuilder>(*planner, 21);
        },
        std::move(opts));
  }

  Query MidQuery() const {
    return Query::Conjunction(
        {Predicate(2, 1, 3), Predicate(3, 2, 4), Predicate(0, 1, 2)});
  }
};

TEST(TelemetryDistTraceTest, EveryShardSpanJoinsUnderTheRequestSpan) {
  TelemetryDistFixture fx;
  dist::Coordinator::Options opts;
  opts.partition = dist::PartitionSpec::Hash(4);
  opts.enable_tracing = true;
  dist::Coordinator coord = fx.MakeCoordinator(opts);

  std::vector<uint64_t> trace_ids;
  Rng rng(33);
  for (int i = 0; i < 4; ++i) {
    const Query q =
        i == 0 ? fx.MidQuery()
               : testing_util::RandomConjunctiveQuery(fx.schema, rng);
    const dist::Coordinator::Response resp = coord.Execute(q);
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    ASSERT_NE(resp.trace_id, 0u);
    trace_ids.push_back(resp.trace_id);
  }

  const TraceJoinResult joined = JoinTraces(coord.trace_recorder().Events());
  EXPECT_EQ(joined.total_duplicates, 0u);
  for (uint64_t trace_id : trace_ids) {
    const JoinedTrace* t = joined.Find(trace_id);
    ASSERT_NE(t, nullptr) << "trace " << trace_id << " missing from join";
    // The acceptance predicate: ONE trace, rooted at the coordinator's
    // request span, with every shard-side span reachable from it.
    EXPECT_TRUE(t->AllUnderRoot()) << "trace " << trace_id;
    EXPECT_EQ(t->events[0].worker, 0u);  // root lives in the coord slot
    std::set<uint32_t> workers;
    for (const SpanEvent& ev : t->events) workers.insert(ev.worker);
    // Coordinator slot plus every scattered shard slot (4 shards).
    EXPECT_GE(workers.size(), 5u) << "trace " << trace_id;
  }
}

// ---------------------------------------------------------------------------
// Shard flapping: calibration merge + trace join under chaos (TSan target)
// ---------------------------------------------------------------------------

TEST(TelemetryFlapTest, CalibrationAndTracesSurviveConcurrentShardFlapping) {
  TelemetryDistFixture fx;
  dist::Coordinator::Options opts;
  opts.partition = dist::PartitionSpec::Hash(4);
  opts.enable_tracing = true;
  opts.enable_calibration = true;
  opts.shard_deadline_seconds = 2.0;
  dist::Coordinator coord = fx.MakeCoordinator(opts);

  constexpr int kClients = 3;
  constexpr int kQueriesPerClient = 20;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> shard_executions{0};  // lower bound: shards_ok sum
  std::vector<std::vector<uint64_t>> trace_ids(kClients);

  std::thread flapper([&coord, &stop] {
    Rng rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      const size_t shard = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(coord.num_shards()) - 1));
      coord.KillShard(shard);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      coord.ReviveShard(shard);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // A scraper thread exercises the read paths concurrently with writers —
  // exactly what a /metrics exposer does in production.
  std::thread scraper([&coord, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::CalibrationReport report = coord.CalibrationSnapshot();
      (void)report.regret();
      (void)coord.trace_recorder().Events();
      (void)coord.Report();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + static_cast<uint64_t>(c));
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const Query q =
            testing_util::RandomConjunctiveQuery(fx.schema, rng);
        const dist::Coordinator::Response resp = coord.Execute(q);
        ASSERT_TRUE(resp.ok()) << resp.status.ToString();
        shard_executions.fetch_add(resp.shards_ok);
        if (resp.trace_id != 0) trace_ids[c].push_back(resp.trace_id);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  flapper.join();
  scraper.join();

  // Calibration executions count per-row plan executions. Every shard
  // execution the coordinator saw succeed ran at least one row, and no
  // query can execute a row more than once — the merged report must land
  // between those bounds even with shards dying mid-scatter.
  const obs::CalibrationReport report = coord.CalibrationSnapshot();
  EXPECT_GE(report.executions, shard_executions.load());
  EXPECT_LE(report.executions, static_cast<uint64_t>(kClients) *
                                   kQueriesPerClient * fx.data.num_rows());
  EXPECT_TRUE(std::isfinite(report.regret()));
  EXPECT_TRUE(std::isfinite(report.MaxDrift(1)));

  // Trace join: no span recorded twice, and every request that completed
  // with at least one live shard still joins into a single rooted trace.
  const TraceJoinResult joined = JoinTraces(coord.trace_recorder().Events());
  EXPECT_EQ(joined.total_duplicates, 0u);
  size_t checked = 0;
  for (const auto& ids : trace_ids) {
    for (uint64_t trace_id : ids) {
      const JoinedTrace* t = joined.Find(trace_id);
      if (t == nullptr) continue;  // events may drop once buffers fill
      EXPECT_TRUE(t->AllUnderRoot()) << "trace " << trace_id;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(TelemetryFlapTest, CalibrationMergeIsExactWithoutFaults) {
  TelemetryDistFixture fx;
  dist::Coordinator::Options opts;
  opts.partition = dist::PartitionSpec::Hash(4);
  opts.enable_calibration = true;
  dist::Coordinator coord = fx.MakeCoordinator(opts);
  constexpr int kQueries = 5;
  Rng rng(5);
  for (int i = 0; i < kQueries; ++i) {
    const Query q = i == 0
                        ? fx.MidQuery()
                        : testing_util::RandomConjunctiveQuery(fx.schema, rng);
    const dist::Coordinator::Response resp = coord.Execute(q);
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    ASSERT_EQ(resp.shards_ok, coord.num_shards());
  }
  // Fault-free baseline for the flap test above: every row executes
  // exactly once per query, so the cross-shard merge must account for
  // precisely queries x rows executions — nothing lost, nothing double
  // counted.
  const obs::CalibrationReport report = coord.CalibrationSnapshot();
  EXPECT_EQ(report.executions,
            static_cast<uint64_t>(kQueries) * fx.data.num_rows());
}

// ---------------------------------------------------------------------------
// Per-kernel executor counters
// ---------------------------------------------------------------------------

uint64_t CounterIn(const RegistrySnapshot& snap, const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(TelemetryKernelCountersTest, BatchExecutionFeedsPerOpRowCounters) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  TelemetryDistFixture fx;
  const Query q = fx.MidQuery();
  const CompiledPlan compiled =
      CompiledPlan::Compile(fx.planner->BuildPlan(q));

  const RegistrySnapshot before = obs::DefaultRegistry().Snapshot();
  std::vector<RowId> rows(fx.data.num_rows());
  for (RowId r = 0; r < fx.data.num_rows(); ++r) rows[r] = r;
  std::vector<uint8_t> verdicts;
  ColumnarBatchExecutor exec(compiled, fx.data, fx.cm);
  exec.Execute(rows, &verdicts);
  const RegistrySnapshot after = obs::DefaultRegistry().Snapshot();
  obs::SetEnabled(was_enabled);

  // Every plan evaluates rows through at least one kernel op; summed
  // per-op row counters must cover at least one pass over the batch.
  uint64_t total_rows = 0;
  for (const auto& c : after.counters) {
    if (c.name.rfind("exec.batch.kernel_rows.", 0) == 0) {
      total_rows += c.value - CounterIn(before, c.name);
    }
  }
  EXPECT_GE(total_rows, fx.data.num_rows());

  // Exactly one dispatch path (masked AVX-512 or selection kernels) ran
  // per chunk; together they cover the batch.
  const uint64_t masked =
      CounterIn(after, "exec.batch.masked_chunks") -
      CounterIn(before, "exec.batch.masked_chunks");
  const uint64_t selection =
      CounterIn(after, "exec.batch.selection_chunks") -
      CounterIn(before, "exec.batch.selection_chunks");
  EXPECT_GT(masked + selection, 0u);
}

}  // namespace
}  // namespace caqp
