// Tests for the common runtime: Status/Result, byte serialization, RNG.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"

namespace caqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, ServingErrorFactories) {
  const Status u = Status::Unavailable("shedding load");
  EXPECT_EQ(u.code(), StatusCode::kUnavailable);
  EXPECT_EQ(u.ToString(), "Unavailable: shedding load");
  const Status d = Status::DeadlineExceeded("past deadline");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: past deadline");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(BytesTest, VarintRoundtripSmall) {
  ByteWriter w;
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull}) {
    w.PutVarint(v);
  }
  ByteReader r(w.bytes());
  for (uint64_t expected :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull}) {
    uint64_t v = 0;
    ASSERT_TRUE(r.GetVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintSmallValuesAreOneByte) {
  ByteWriter w;
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint(128);
  EXPECT_EQ(w.size(), 3u);  // +2 bytes
}

TEST(BytesTest, SignedVarintRoundtrip) {
  ByteWriter w;
  const int64_t values[] = {0, -1, 1, -64, 64, -1000000, 1000000,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutSignedVarint(v);
  ByteReader r(w.bytes());
  for (int64_t expected : values) {
    int64_t v = 0;
    ASSERT_TRUE(r.GetSignedVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(BytesTest, DoubleRoundtrip) {
  ByteWriter w;
  const double values[] = {0.0, -0.0, 1.5, -3.25e17, 1e-300};
  for (double v : values) w.PutDouble(v);
  ByteReader r(w.bytes());
  for (double expected : values) {
    double v = 0;
    ASSERT_TRUE(r.GetDouble(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(BytesTest, StringRoundtrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  ByteReader r(w.bytes());
  std::string s;
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s.size(), 1000u);
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteWriter w;
  w.PutDouble(3.14);
  std::vector<uint8_t> cut(w.bytes().begin(), w.bytes().begin() + 4);
  ByteReader r(cut);
  double v;
  EXPECT_EQ(r.GetDouble(&v).code(), StatusCode::kDataLoss);
}

TEST(BytesTest, TruncatedVarintFails) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // continuation never ends
  ByteReader r(bytes);
  uint64_t v;
  EXPECT_EQ(r.GetVarint(&v).code(), StatusCode::kDataLoss);
}

TEST(BytesTest, OverlongVarintFails) {
  std::vector<uint8_t> bytes(11, 0x80);
  bytes.push_back(0x01);
  ByteReader r(bytes);
  uint64_t v;
  EXPECT_EQ(r.GetVarint(&v).code(), StatusCode::kDataLoss);
}

TEST(BytesTest, StringLengthBeyondBufferFails) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutU8('x');
  ByteReader r(w.bytes());
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kDataLoss);
}

class VarintPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintPropertyTest, RoundtripsUnderRandomFuzz) {
  Rng rng(GetParam());
  ByteWriter w;
  std::vector<uint64_t> values;
  for (int i = 0; i < 200; ++i) {
    // Bias toward boundary-sized magnitudes.
    const int bits = static_cast<int>(rng.UniformInt(0, 63));
    uint64_t v = rng.engine()() & ((bits == 63) ? ~0ull
                                                : ((1ull << (bits + 1)) - 1));
    values.push_back(v);
    w.PutVarint(v);
  }
  ByteReader r(w.bytes());
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(r.GetVarint(&v).ok());
    ASSERT_EQ(v, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(123);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, ss = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The fork and the parent should not produce identical sequences.
  bool differs = false;
  Rng b(42);
  Rng child_b = b.Fork();
  for (int i = 0; i < 10; ++i) {
    // Deterministic: forks of equal parents match each other...
    EXPECT_EQ(child.UniformInt(0, 1 << 30), child_b.UniformInt(0, 1 << 30));
  }
  Rng c(42);
  Rng child_c = c.Fork();
  for (int i = 0; i < 10; ++i) {
    if (child_c.UniformInt(0, 1 << 30) != c.UniformInt(0, 1 << 30)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace caqp
