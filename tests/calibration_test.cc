// Plan-quality calibration tests: EstimatePlan's predicted side tables
// (against both ExpectedPlanCost and empirical execution frequencies),
// ExecutionProfile counter semantics including the fault-injection and
// single-tuple edge cases, CalibrationAggregator merging, report windowing
// (DeltaSince), and the concurrent profile/snapshot stress that
// scripts/check.sh runs under ThreadSanitizer (suites here are named
// Calibration* so the TSan build selects them with ctest -R '^Calibration').

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "exec/exec_profile.h"
#include "exec/executor.h"
#include "fault/fault.h"
#include "obs/calibration.h"
#include "obs/obs.h"
#include "opt/cost_model.h"
#include "opt/greedy_plan.h"
#include "opt/optseq.h"
#include "plan/compiled_plan.h"
#include "plan/plan_cost.h"
#include "plan/plan_estimates.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

struct Toolkit {
  Schema schema = SmallSchema();
  Dataset ds;
  DatasetEstimator est;
  PerAttributeCostModel cm;
  SplitPointSet splits;
  OptSeqSolver optseq;

  explicit Toolkit(uint64_t seed, size_t rows = 500)
      : ds(CorrelatedDataset(schema, rows, seed, 0.2)),
        est(ds),
        cm(schema),
        splits(SplitPointSet::AllPoints(schema)) {}

  CompiledPlan Compile(const Query& q, size_t max_splits = 3) {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &optseq;
    opts.max_splits = max_splits;
    GreedyPlanner planner(est, cm, opts);
    return CompiledPlan::Compile(planner.BuildPlan(q));
  }
};

// ---------------------------------------------------------------------------
// EstimatePlan: predicted side tables
// ---------------------------------------------------------------------------

TEST(CalibrationEstimateTest, ExpectedCostMatchesExpectedPlanCost) {
  Toolkit tk(21);
  Rng rng(22);
  for (int iter = 0; iter < 12; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    const CompiledPlan plan = tk.Compile(q);
    const PlanEstimates pe = EstimatePlan(plan, tk.est, tk.cm);
    ASSERT_EQ(pe.nodes.size(), plan.NumNodes());
    // Same recursion as the coster, so the totals agree up to summation
    // order.
    EXPECT_NEAR(pe.expected_cost, ExpectedPlanCost(plan.ToTree(), tk.est,
                                                   tk.cm),
                1e-9)
        << q.ToString(tk.schema);
    // The per-node decomposition re-sums to the total.
    double resum = 0.0;
    for (const NodeEstimate& n : pe.nodes) resum += n.reach * n.cost;
    EXPECT_NEAR(resum, pe.expected_cost, 1e-9);
    EXPECT_DOUBLE_EQ(pe.nodes[0].reach, 1.0);  // root always reached
  }
}

TEST(CalibrationEstimateTest, PredictionsMatchObservedFrequenciesOnTrainingData) {
  // A DatasetEstimator's beliefs are exact over its own dataset, so when the
  // served tuples ARE the training data, predicted per-node reach/pass and
  // per-attribute rates must match the executor's observed counters (up to
  // rounding: counts are integers, predictions are expectations).
  Toolkit tk(31);
  Rng rng(32);
  const size_t rows = tk.ds.num_rows();
  for (int iter = 0; iter < 6; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    const CompiledPlan plan = tk.Compile(q);
    const PlanEstimates pe = EstimatePlan(plan, tk.est, tk.cm);

    ExecutionProfile profile(plan.NumNodes());
    double total_cost = 0.0;
    for (RowId r = 0; r < rows; ++r) {
      const Tuple t = tk.ds.GetTuple(r);
      TupleSource source(t);
      const ExecutionResult res =
          ExecutePlan(plan, tk.schema, tk.cm, source, nullptr, {}, &profile);
      total_cost += res.cost;
    }
    const ExecutionProfileSnapshot snap = profile.Snapshot();

    const double n = static_cast<double>(rows);
    EXPECT_NEAR(total_cost / n, pe.expected_cost, 1e-9);
    for (size_t i = 0; i < pe.nodes.size(); ++i) {
      EXPECT_NEAR(static_cast<double>(snap.nodes[i].evals),
                  pe.nodes[i].reach * n, 1e-6)
          << "node " << i;
      if (pe.nodes[i].pass >= 0.0 && pe.nodes[i].reach > 0.0) {
        EXPECT_NEAR(static_cast<double>(snap.nodes[i].passes),
                    pe.nodes[i].reach * pe.nodes[i].pass * n, 1e-6)
            << "node " << i;
      }
    }
    for (size_t a = 0; a < tk.schema.num_attributes(); ++a) {
      EXPECT_NEAR(static_cast<double>(snap.attr_evals[a]),
                  pe.attr_eval_rate[a] * n, 1e-6)
          << "attr " << a;
      EXPECT_NEAR(static_cast<double>(snap.attr_passes[a]),
                  pe.attr_pass_rate[a] * n, 1e-6)
          << "attr " << a;
    }
  }
}

// ---------------------------------------------------------------------------
// Edge cases: zero-eval nodes, all-unknown verdicts, single-tuple plans
// ---------------------------------------------------------------------------

/// One split whose children are verdict leaves; every tuple we run routes to
/// the >= side, so the < child never evaluates.
CompiledPlan OneSplitPlan() {
  Plan plan(PlanNode::Split(0, 2, PlanNode::Verdict(false),
                            PlanNode::Verdict(true)));
  return CompiledPlan::Compile(plan);
}

TEST(CalibrationProfileTest, ZeroEvalNodesReportNoObservation) {
  const Schema schema = SmallSchema();
  const PerAttributeCostModel cm(schema);
  const CompiledPlan plan = OneSplitPlan();

  obs::CalibrationAggregator agg(1);
  ExecutionProfile* profile = agg.Profile(
      0, obs::CalibrationKey{1, 0, 7},
      std::make_shared<const CompiledPlan>(OneSplitPlan()));
  for (int i = 0; i < 10; ++i) {
    const Tuple t = {3, 0, 0, 0};  // attr0 = 3 >= 2: always the ge child
    TupleSource source(t);
    ExecutePlan(plan, schema, cm, source, nullptr, {}, profile);
  }

  const obs::CalibrationReport report = agg.Snapshot();
  ASSERT_EQ(report.plans.size(), 1u);
  const obs::PlanCalibration& pc = report.plans[0];
  EXPECT_EQ(pc.executions, 10u);
  ASSERT_EQ(pc.nodes.size(), 3u);
  // Preorder: 0 = split (always evaluated, always passes), 1 = lt verdict
  // (never reached), 2 = ge verdict (always reached, verdict true = pass).
  EXPECT_EQ(pc.nodes[0].evals, 10u);
  EXPECT_EQ(pc.nodes[0].passes, 10u);
  EXPECT_EQ(pc.nodes[1].evals, 0u);
  EXPECT_FALSE(pc.nodes[1].has_observation());
  EXPECT_DOUBLE_EQ(pc.nodes[1].observed_pass(), 0.0);
  EXPECT_EQ(pc.nodes[2].evals, 10u);
  EXPECT_TRUE(pc.nodes[2].has_observation());
  EXPECT_DOUBLE_EQ(pc.nodes[2].observed_pass(), 1.0);
  // No estimates were attached, so the plan reports no regret and no drift.
  EXPECT_FALSE(pc.has_estimates);
  EXPECT_DOUBLE_EQ(pc.regret(), 0.0);
  EXPECT_DOUBLE_EQ(report.MaxDrift(), 0.0);
}

TEST(CalibrationProfileTest, AllUnknownVerdictsUnderTotalFaultInjection) {
  // Every acquisition fails: every execution degrades to Unknown, nodes
  // accumulate unknowns (not passes), no predicate is ever evaluated, and
  // the drift score stays zero -- fault storms must not masquerade as
  // distribution drift.
  Toolkit tk(41);
  const Query q = Query::Conjunction({Predicate(0, 1, 2), Predicate(2, 1, 3)});
  const CompiledPlan plan = tk.Compile(q);
  auto shared = std::make_shared<const CompiledPlan>(tk.Compile(q));

  FaultSpec spec;
  spec.transient = 1.0;
  FaultInjector inj(spec);

  obs::CalibrationAggregator agg(1);
  ExecutionProfile* profile =
      agg.Profile(0, obs::CalibrationKey{2, 0, 7}, shared);
  for (int i = 0; i < 25; ++i) {
    const Tuple t = tk.ds.GetTuple(static_cast<RowId>(i));
    TupleSource base(t);
    FaultyAcquisitionSource source(base, inj);
    const ExecutionResult res =
        ExecutePlan(plan, tk.schema, tk.cm, source, nullptr, {}, profile);
    EXPECT_EQ(res.verdict3, Truth::kUnknown);
  }

  const obs::CalibrationReport report = agg.Snapshot();
  ASSERT_EQ(report.plans.size(), 1u);
  const obs::PlanCalibration& pc = report.plans[0];
  EXPECT_EQ(pc.executions, 25u);
  EXPECT_EQ(pc.unknown_executions, 25u);
  // The root is evaluated every time but never resolves.
  EXPECT_EQ(pc.nodes[0].evals, 25u);
  EXPECT_EQ(pc.nodes[0].unknowns, 25u);
  EXPECT_EQ(pc.nodes[0].passes, 0u);
  EXPECT_FALSE(pc.nodes[0].has_observation());
  for (const obs::AttrCalibration& ac : report.attrs) {
    EXPECT_EQ(ac.evals, 0u);  // no acquisition ever succeeded
  }
  EXPECT_DOUBLE_EQ(report.MaxDrift(), 0.0);
}

TEST(CalibrationProfileTest, SingleTuplePlanCounts) {
  // Minimal everything: a verdict-only plan executed once. Counters must be
  // exact and the report math must not divide by zero.
  const Schema schema = SmallSchema();
  const PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Verdict(true));
  const CompiledPlan compiled = CompiledPlan::Compile(plan);

  ExecutionProfile profile(compiled.NumNodes());
  const Tuple t = {0, 0, 0, 0};
  TupleSource source(t);
  const ExecutionResult res =
      ExecutePlan(compiled, schema, cm, source, nullptr, {}, &profile);
  EXPECT_TRUE(res.verdict);

  const ExecutionProfileSnapshot snap = profile.Snapshot();
  EXPECT_EQ(snap.executions, 1u);
  EXPECT_EQ(snap.unknown_executions, 0u);
  EXPECT_EQ(snap.acquisitions, 0u);
  EXPECT_DOUBLE_EQ(snap.realized_cost, 0.0);
  ASSERT_EQ(snap.nodes.size(), 1u);
  EXPECT_EQ(snap.nodes[0].evals, 1u);
  EXPECT_EQ(snap.nodes[0].passes, 1u);
}

TEST(CalibrationProfileTest, ProfileIgnoredWhenObsDisabled) {
  // The disabled path must not touch the profile at all (this is what keeps
  // bench_obs_overhead's <5% bar honest).
  const Schema schema = SmallSchema();
  const PerAttributeCostModel cm(schema);
  const CompiledPlan plan = OneSplitPlan();
  ExecutionProfile profile(plan.NumNodes());

  obs::SetEnabled(false);
  const Tuple t = {3, 0, 0, 0};
  TupleSource source(t);
  ExecutePlan(plan, schema, cm, source, nullptr, {}, &profile);
  obs::SetEnabled(true);

  const ExecutionProfileSnapshot snap = profile.Snapshot();
  EXPECT_EQ(snap.executions, 0u);
  EXPECT_EQ(snap.nodes[0].evals, 0u);
}

// ---------------------------------------------------------------------------
// Aggregator: merging, windowing, JSON
// ---------------------------------------------------------------------------

TEST(CalibrationAggregatorTest, MergesTheSameKeyAcrossShards) {
  auto shared = std::make_shared<const CompiledPlan>(OneSplitPlan());
  obs::CalibrationAggregator agg(2);
  const obs::CalibrationKey key{9, 1, 7};
  ExecutionProfile* p0 = agg.Profile(0, key, shared);
  ExecutionProfile* p1 = agg.Profile(1, key, shared);
  ASSERT_NE(p0, p1);  // distinct shards, distinct profiles

  p0->NodeEval(0);
  p0->NodePass(0);
  p0->EndExecution(3.0, 1, false);
  p1->NodeEval(0);
  p1->NodeUnknown(0);
  p1->EndExecution(5.0, 2, true);

  const obs::CalibrationReport report = agg.Snapshot();
  ASSERT_EQ(report.plans.size(), 1u);
  const obs::PlanCalibration& pc = report.plans[0];
  EXPECT_EQ(pc.key.query_sig, 9u);
  EXPECT_EQ(pc.key.estimator_version, 1u);
  EXPECT_EQ(pc.executions, 2u);
  EXPECT_EQ(pc.unknown_executions, 1u);
  EXPECT_EQ(pc.acquisitions, 3u);
  EXPECT_DOUBLE_EQ(pc.realized_cost, 8.0);
  EXPECT_DOUBLE_EQ(pc.realized_mean_cost(), 4.0);
  EXPECT_EQ(pc.nodes[0].evals, 2u);
  EXPECT_EQ(pc.nodes[0].passes, 1u);
  EXPECT_EQ(pc.nodes[0].unknowns, 1u);
}

TEST(CalibrationAggregatorTest, DistinctKeysStayDistinct) {
  auto shared = std::make_shared<const CompiledPlan>(OneSplitPlan());
  obs::CalibrationAggregator agg(1);
  ExecutionProfile* v0 = agg.Profile(0, obs::CalibrationKey{9, 0, 7}, shared);
  ExecutionProfile* v1 = agg.Profile(0, obs::CalibrationKey{9, 1, 7}, shared);
  ASSERT_NE(v0, v1);  // version bump = new row
  // Same key resolves to the same stable profile.
  EXPECT_EQ(agg.Profile(0, obs::CalibrationKey{9, 0, 7}, shared), v0);
  v0->EndExecution(1.0, 0, false);
  v1->EndExecution(2.0, 0, false);
  v1->EndExecution(2.0, 0, false);

  const obs::CalibrationReport report = agg.Snapshot();
  ASSERT_EQ(report.plans.size(), 2u);
  // Snapshot orders rows by (sig, version, fingerprint).
  EXPECT_EQ(report.plans[0].key.estimator_version, 0u);
  EXPECT_EQ(report.plans[0].executions, 1u);
  EXPECT_EQ(report.plans[1].key.estimator_version, 1u);
  EXPECT_EQ(report.plans[1].executions, 2u);
  EXPECT_EQ(report.executions, 3u);
}

TEST(CalibrationAggregatorTest, DeltaSinceYieldsTheWindow) {
  auto shared = std::make_shared<const CompiledPlan>(OneSplitPlan());
  obs::CalibrationAggregator agg(1);
  ExecutionProfile* p = agg.Profile(0, obs::CalibrationKey{5, 0, 7}, shared);

  p->NodeEval(0);
  p->NodePass(0);
  p->PredEval(0, true);
  p->EndExecution(2.0, 1, false);
  const obs::CalibrationReport first = agg.Snapshot();

  p->NodeEval(0);
  p->PredEval(0, false);
  p->EndExecution(6.0, 1, false);
  p->NodeEval(0);
  p->PredEval(0, false);
  p->EndExecution(6.0, 1, false);
  const obs::CalibrationReport second = agg.Snapshot();

  const obs::CalibrationReport window = second.DeltaSince(first);
  ASSERT_EQ(window.plans.size(), 1u);
  EXPECT_EQ(window.plans[0].executions, 2u);
  EXPECT_DOUBLE_EQ(window.plans[0].realized_cost, 12.0);
  EXPECT_EQ(window.plans[0].nodes[0].evals, 2u);
  EXPECT_EQ(window.plans[0].nodes[0].passes, 0u);
  ASSERT_EQ(window.attrs.size(), 1u);
  EXPECT_EQ(window.attrs[0].evals, 2u);
  EXPECT_EQ(window.attrs[0].passes, 0u);

  // An idle window drops the plan entirely.
  const obs::CalibrationReport idle = second.DeltaSince(second);
  EXPECT_TRUE(idle.plans.empty());
  EXPECT_EQ(idle.executions, 0u);
}

TEST(CalibrationAggregatorTest, DeltaSinceEmptyBaselineIsCumulative) {
  auto shared = std::make_shared<const CompiledPlan>(OneSplitPlan());
  obs::CalibrationAggregator agg(1);
  ExecutionProfile* p = agg.Profile(0, obs::CalibrationKey{5, 0, 7}, shared);
  p->NodeEval(0);
  p->NodePass(0);
  p->PredEval(0, true);
  p->EndExecution(2.0, 1, false);

  // The very first window has an empty (default) baseline: the delta must
  // reproduce the cumulative report, not drop everything.
  const obs::CalibrationReport cumulative = agg.Snapshot();
  const obs::CalibrationReport window =
      cumulative.DeltaSince(obs::CalibrationReport{});
  ASSERT_EQ(window.plans.size(), 1u);
  EXPECT_EQ(window.plans[0].executions, cumulative.plans[0].executions);
  EXPECT_DOUBLE_EQ(window.realized_cost, cumulative.realized_cost);
  ASSERT_EQ(window.attrs.size(), 1u);
  EXPECT_EQ(window.attrs[0].evals, cumulative.attrs[0].evals);

  // Both sides empty: the delta is empty, not a crash or a phantom row.
  const obs::CalibrationReport nothing =
      obs::CalibrationReport{}.DeltaSince(obs::CalibrationReport{});
  EXPECT_TRUE(nothing.plans.empty());
  EXPECT_TRUE(nothing.attrs.empty());
  EXPECT_EQ(nothing.executions, 0u);
}

TEST(CalibrationAggregatorTest, DeltaSinceKeepsVersionBumpMidWindow) {
  auto shared = std::make_shared<const CompiledPlan>(OneSplitPlan());
  obs::CalibrationAggregator agg(1);
  ExecutionProfile* v0 = agg.Profile(0, obs::CalibrationKey{5, 0, 7}, shared);
  v0->PredEval(0, true);
  v0->EndExecution(2.0, 1, false);
  const obs::CalibrationReport first = agg.Snapshot();

  // Mid-window the estimator version bumps: the old plan drains its last
  // requests while the replanned generation starts. Both keys are active
  // in the same window.
  v0->PredEval(0, false);
  v0->EndExecution(4.0, 1, false);
  ExecutionProfile* v1 = agg.Profile(0, obs::CalibrationKey{5, 1, 7}, shared);
  v1->PredEval(0, true);
  v1->PredEval(0, true);
  v1->EndExecution(3.0, 1, false);
  v1->EndExecution(3.0, 1, false);
  const obs::CalibrationReport window = agg.Snapshot().DeltaSince(first);

  // Two rows, joinable by version; each carries only its window activity.
  ASSERT_EQ(window.plans.size(), 2u);
  EXPECT_EQ(window.plans[0].key.estimator_version, 0u);
  EXPECT_EQ(window.plans[0].executions, 1u);  // 2 cumulative - 1 baseline
  EXPECT_DOUBLE_EQ(window.plans[0].realized_cost, 4.0);
  EXPECT_EQ(window.plans[1].key.estimator_version, 1u);
  EXPECT_EQ(window.plans[1].executions, 2u);  // no baseline to subtract
  EXPECT_DOUBLE_EQ(window.plans[1].realized_cost, 6.0);
  EXPECT_EQ(window.executions, 3u);
  // The attribute row pools predicate evaluations across both generations.
  ASSERT_EQ(window.attrs.size(), 1u);
  EXPECT_EQ(window.attrs[0].evals, 3u);
  EXPECT_EQ(window.attrs[0].passes, 2u);
}

TEST(CalibrationAggregatorTest, CostBoundsSurfaceInJsonOnlyWhenStamped) {
  obs::CalibrationReport report;
  obs::PlanCalibration pc;
  pc.key = obs::CalibrationKey{1, 0, 2};
  pc.executions = 1;
  pc.has_estimates = true;
  pc.predicted_cost = 5.0;
  pc.realized_cost = 5.0;
  pc.has_cost_bounds = true;
  pc.predicted_cost_lo = 4.0;
  pc.predicted_cost_hi = 9.0;
  report.plans.push_back(pc);
  report.executions = 1;

  const std::string json = obs::CalibrationReportToJson(report);
  EXPECT_NE(json.find("\"predicted_cost_lo\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_cost_hi\""), std::string::npos);
  // Point plans omit the interval fields entirely.
  report.plans[0].has_cost_bounds = false;
  EXPECT_EQ(obs::CalibrationReportToJson(report).find("predicted_cost_lo"),
            std::string::npos);
}

TEST(CalibrationAggregatorTest, SignedDriftCarriesDirection) {
  obs::AttrCalibration up;
  up.evals = 100;
  up.passes = 80;
  up.predicted_evals = 100.0;
  up.predicted_passes = 50.0;
  EXPECT_NEAR(up.signed_drift(), 0.3, 1e-12);  // observed 0.8 > predicted 0.5
  EXPECT_NEAR(up.drift(), 0.3, 1e-12);

  obs::AttrCalibration down;
  down.evals = 100;
  down.passes = 20;
  down.predicted_evals = 100.0;
  down.predicted_passes = 60.0;
  EXPECT_NEAR(down.signed_drift(), -0.4, 1e-12);
  EXPECT_NEAR(down.drift(), 0.4, 1e-12);  // drift() is the magnitude

  // No observations, or no predicted side: no drift either way.
  obs::AttrCalibration unseen;
  EXPECT_DOUBLE_EQ(unseen.signed_drift(), 0.0);
  obs::AttrCalibration unpredicted;
  unpredicted.evals = 10;
  unpredicted.passes = 5;
  EXPECT_DOUBLE_EQ(unpredicted.signed_drift(), 0.0);
  EXPECT_DOUBLE_EQ(unpredicted.drift(), 0.0);
}

TEST(CalibrationAggregatorTest, ReportSerializesToJson) {
  const Schema schema = SmallSchema();
  auto shared = std::make_shared<const CompiledPlan>(OneSplitPlan());
  obs::CalibrationAggregator agg(1);
  ExecutionProfile* p = agg.Profile(0, obs::CalibrationKey{5, 0, 7}, shared);
  p->NodeEval(0);
  p->NodePass(0);
  p->PredEval(0, true);
  p->EndExecution(2.0, 1, false);

  const std::string json =
      obs::CalibrationReportToJson(agg.Snapshot(), &schema);
  EXPECT_NE(json.find("\"executions\":1"), std::string::npos);
  EXPECT_NE(json.find("\"plans\""), std::string::npos);
  EXPECT_NE(json.find("\"attrs\""), std::string::npos);
  EXPECT_NE(json.find("\"max_drift\""), std::string::npos);
  EXPECT_NE(json.find("\"regret\""), std::string::npos);
  EXPECT_NE(json.find("\"cheap0\""), std::string::npos);  // schema names
}

// ---------------------------------------------------------------------------
// Concurrency (TSan target: scripts/check.sh runs ^Calibration suites)
// ---------------------------------------------------------------------------

TEST(CalibrationAggregatorTest, ConcurrentProfilesAndSnapshots) {
  const Schema schema = SmallSchema();
  const PerAttributeCostModel cm(schema);
  auto shared = std::make_shared<const CompiledPlan>(OneSplitPlan());
  const size_t kWorkers = 4;
  const int kPerWorker = 2000;
  obs::CalibrationAggregator agg(kWorkers);

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    // Hammer Snapshot concurrently with the writers: must be TSan-clean
    // and never observe impossible totals.
    while (!stop.load(std::memory_order_acquire)) {
      const obs::CalibrationReport r = agg.Snapshot();
      EXPECT_LE(r.executions,
                static_cast<uint64_t>(kWorkers) * kPerWorker * 2);
    }
  });

  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerWorker; ++i) {
        // Two interleaved keys per worker exercise map resolution under
        // concurrent Snapshot.
        const obs::CalibrationKey key{static_cast<uint64_t>(i % 2), 0, 7};
        ExecutionProfile* p = agg.Profile(w, key, shared);
        const CompiledPlan& plan = *shared;
        const Tuple t = {static_cast<Value>(i % 4), 0, 0, 0};
        TupleSource source(t);
        ExecutePlan(plan, schema, cm, source, nullptr, {}, p);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  const obs::CalibrationReport final_report = agg.Snapshot();
  ASSERT_EQ(final_report.plans.size(), 2u);
  uint64_t total = 0;
  for (const obs::PlanCalibration& pc : final_report.plans) {
    total += pc.executions;
    EXPECT_EQ(pc.nodes[0].evals, pc.executions);  // root evaluates every run
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kWorkers) * kPerWorker);
}

}  // namespace
}  // namespace caqp
