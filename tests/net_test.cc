// Sensor-network simulator tests: radio accounting and fault injection,
// mote plan installation and energy budgets, basestation train/disseminate/
// run loop.

#include <gtest/gtest.h>

#include "fault/fault.h"
#include "net/basestation.h"
#include "net/mote.h"
#include "net/radio.h"
#include "opt/optseq.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

TEST(EnergyMeterTest, UnlimitedBudget) {
  EnergyMeter m;
  EXPECT_TRUE(m.Consume(1e12));
  EXPECT_FALSE(m.exhausted());
  EXPECT_DOUBLE_EQ(m.remaining(), -1.0);
}

TEST(EnergyMeterTest, BudgetEnforced) {
  EnergyMeter m(10.0);
  EXPECT_TRUE(m.Consume(6.0));
  EXPECT_FALSE(m.Consume(5.0));  // would exceed
  EXPECT_DOUBLE_EQ(m.spent(), 6.0);
  EXPECT_TRUE(m.Consume(4.0));
  EXPECT_TRUE(m.exhausted());
}

TEST(RadioTest, ChargesBothEndpoints) {
  Radio radio(Radio::Options{.cost_per_byte = 0.5});
  EnergyMeter a, b;
  const std::vector<uint8_t> msg(10, 0);
  const Radio::Delivery d = radio.Transmit(msg, a, b);
  EXPECT_TRUE(d.delivered);
  EXPECT_DOUBLE_EQ(a.spent(), 5.0);
  EXPECT_DOUBLE_EQ(b.spent(), 5.0);
  EXPECT_EQ(radio.bytes_sent(), 10u);
}

TEST(RadioTest, SenderBudgetBlocksTransmission) {
  Radio radio(Radio::Options{.cost_per_byte = 1.0});
  EnergyMeter a(3.0), b;
  const std::vector<uint8_t> msg(10, 0);
  const Radio::Delivery d = radio.Transmit(msg, a, b);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(radio.messages_dropped(), 1u);
  EXPECT_DOUBLE_EQ(a.spent(), 0.0);  // nothing consumed on refusal
}

TEST(RadioTest, HalfAffordableChargesOnlySender) {
  // Charging contract: sender pays iff a transmission is attempted;
  // receiver pays iff the message is delivered. A receiver that cannot
  // afford reception fails the delivery but is never charged, and the
  // sender's energy is still gone (the radio was keyed).
  Radio radio(Radio::Options{.cost_per_byte = 1.0});
  EnergyMeter sender, receiver(3.0);
  const std::vector<uint8_t> msg(10, 0);
  const Radio::Delivery d = radio.Transmit(msg, sender, receiver);
  EXPECT_FALSE(d.delivered);
  EXPECT_DOUBLE_EQ(sender.spent(), 10.0);
  EXPECT_DOUBLE_EQ(receiver.spent(), 0.0);
  EXPECT_EQ(radio.messages_dropped(), 1u);
}

TEST(RadioTest, ReceiverNotChargedOnChannelLoss) {
  Radio radio(Radio::Options{.cost_per_byte = 1.0, .drop_probability = 1.0});
  EnergyMeter sender, receiver;
  const std::vector<uint8_t> msg(5, 0);
  const Radio::Delivery d = radio.Transmit(msg, sender, receiver);
  EXPECT_FALSE(d.delivered);
  EXPECT_DOUBLE_EQ(sender.spent(), 5.0);  // attempt was made
  EXPECT_DOUBLE_EQ(receiver.spent(), 0.0);  // nothing arrived
}

TEST(RadioTest, DropsAtConfiguredRate) {
  Radio radio(Radio::Options{
      .cost_per_byte = 0.0, .drop_probability = 0.5, .seed = 9});
  EnergyMeter a, b;
  const std::vector<uint8_t> msg(4, 0);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    delivered += radio.Transmit(msg, a, b).delivered ? 1 : 0;
  }
  EXPECT_NEAR(delivered / 2000.0, 0.5, 0.05);
}

TEST(RadioTest, BurstLossClustersDrops) {
  // Gilbert-Elliott: ~half the time in a perfectly lossy bad state =>
  // overall delivery well below the iid drop rate of 0 yet well above 0.
  Radio::Options opt;
  opt.cost_per_byte = 0.0;
  opt.drop_probability = 0.0;
  opt.burst_drop_probability = 1.0;
  opt.good_to_bad = 0.2;
  opt.bad_to_good = 0.2;
  opt.seed = 17;
  Radio radio(opt);
  EnergyMeter a, b;
  const std::vector<uint8_t> msg(4, 0);
  int delivered = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    delivered += radio.Transmit(msg, a, b).delivered ? 1 : 0;
  }
  // Stationary P(bad) = 0.5 for symmetric transitions.
  EXPECT_NEAR(delivered / static_cast<double>(n), 0.5, 0.08);
  EXPECT_EQ(radio.burst_drops(), radio.messages_dropped());
  EXPECT_GT(radio.burst_drops(), 0u);
}

TEST(RadioTest, BurstDisabledPreservesSeededStream) {
  // good_to_bad = 0 must not consume RNG draws: the delivery pattern has to
  // be bit-identical to a radio without burst fields.
  Radio::Options plain;
  plain.cost_per_byte = 0.0;
  plain.drop_probability = 0.3;
  plain.seed = 23;
  Radio::Options with_burst = plain;
  with_burst.burst_drop_probability = 0.9;  // ignored: chain never leaves good
  Radio r1(plain), r2(with_burst);
  EnergyMeter a, b;
  const std::vector<uint8_t> msg(4, 0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(r1.Transmit(msg, a, b).delivered,
              r2.Transmit(msg, a, b).delivered);
  }
  EXPECT_EQ(r2.burst_drops(), 0u);
}

TEST(RadioTest, CorruptionFlipsBits) {
  Radio radio(Radio::Options{
      .cost_per_byte = 0.0, .corruption_probability = 1.0, .seed = 9});
  EnergyMeter a, b;
  const std::vector<uint8_t> msg(16, 0xAA);
  const Radio::Delivery d = radio.Transmit(msg, a, b);
  ASSERT_TRUE(d.delivered);
  bool changed = false;
  for (size_t i = 0; i < msg.size(); ++i) changed |= (d.payload[i] != 0xAA);
  EXPECT_TRUE(changed);
}

TEST(MoteTest, RejectsCorruptPlanKeepsOld) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Mote mote(1, schema, cm, [](size_t, AttrId) { return Value{0}; });
  Plan good(PlanNode::Verdict(true));
  ASSERT_TRUE(mote.ReceivePlanBytes(SerializePlan(good)).ok());
  EXPECT_TRUE(mote.has_plan());
  // Corrupt bytes: rejected, old plan still active.
  std::vector<uint8_t> junk = {0xFF, 0x00, 0x13};
  EXPECT_FALSE(mote.ReceivePlanBytes(junk).ok());
  const auto res = mote.RunEpoch(0);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->verdict);
}

TEST(MoteTest, NoPlanNoExecution) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Mote mote(1, schema, cm, [](size_t, AttrId) { return Value{0}; });
  EXPECT_FALSE(mote.RunEpoch(0).has_value());
}

TEST(MoteTest, EnergyBudgetStopsExecution) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Each epoch costs cost(2) = 50; budget allows exactly two epochs.
  Mote mote(1, schema, cm, [](size_t, AttrId) { return Value{1}; },
            /*energy_budget=*/100.0);
  mote.InstallPlan(Plan(PlanNode::Sequential({Predicate(2, 0, 0)})));
  EXPECT_TRUE(mote.RunEpoch(0).has_value());
  EXPECT_TRUE(mote.RunEpoch(1).has_value());
  EXPECT_FALSE(mote.RunEpoch(2).has_value());  // browned out
}

TEST(MoteTest, SamplerDrivesVerdicts) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Readings alternate by epoch parity.
  Mote mote(1, schema, cm, [](size_t epoch, AttrId) {
    return static_cast<Value>(epoch % 2);
  });
  mote.InstallPlan(Plan(PlanNode::Sequential({Predicate(0, 1, 1)})));
  EXPECT_FALSE(mote.RunEpoch(0)->verdict);
  EXPECT_TRUE(mote.RunEpoch(1)->verdict);
}

TEST(BasestationTest, EndToEndTrainDisseminateRun) {
  const Schema schema = SmallSchema();
  const Dataset history = CorrelatedDataset(schema, 1500, 61, 0.2);
  PerAttributeCostModel cm(schema);
  Radio radio(Radio::Options{.cost_per_byte = 0.01});
  Basestation base(schema, cm, radio);
  base.CollectHistory(history);
  EXPECT_EQ(base.history().num_rows(), 1500u);

  const Query q =
      Query::Conjunction({Predicate(2, 3, 3), Predicate(3, 3, 4)});
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  const Plan plan = base.TrainPlan(q, splits, optseq, /*max_splits=*/4);

  // Motes replay held-out rows.
  const Dataset test = CorrelatedDataset(schema, 64, 62, 0.2);
  std::vector<std::unique_ptr<Mote>> motes;
  std::vector<Mote*> mote_ptrs;
  for (int m = 0; m < 4; ++m) {
    motes.push_back(std::make_unique<Mote>(
        m, schema, cm, [&test, m](size_t epoch, AttrId attr) {
          return test.at(static_cast<RowId>((epoch * 4 + m) % test.num_rows()),
                         attr);
        }));
    mote_ptrs.push_back(motes.back().get());
  }
  EXPECT_EQ(base.Disseminate(plan, mote_ptrs), 4u);

  const auto reports = base.RunContinuousQuery(mote_ptrs, /*epochs=*/10);
  ASSERT_EQ(reports.size(), 10u);
  for (const auto& rep : reports) {
    EXPECT_EQ(rep.motes_reporting, 4u);
    EXPECT_GT(rep.acquisition_cost, 0.0);
  }
  // Motes spent energy on plan reception + acquisition.
  for (const auto& mote : motes) EXPECT_GT(mote->energy().spent(), 0.0);
  EXPECT_GT(radio.bytes_sent(), 0u);
}

TEST(BasestationTest, CorruptRadioRejectsBrokenPlans) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Heavy corruption: most deliveries arrive mangled; motes must either
  // reject them (deserializer error) or install a still-well-formed plan.
  Radio radio(Radio::Options{
      .cost_per_byte = 0.0, .corruption_probability = 0.08, .seed = 21});
  Basestation base(schema, cm, radio);
  Dataset history = CorrelatedDataset(schema, 200, 64);
  base.CollectHistory(history);
  const Query q = Query::Conjunction({Predicate(2, 1, 2), Predicate(3, 0, 2)});
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  const Plan plan = base.TrainPlan(q, splits, optseq, 3);

  std::vector<std::unique_ptr<Mote>> motes;
  std::vector<Mote*> ptrs;
  for (int m = 0; m < 60; ++m) {
    motes.push_back(std::make_unique<Mote>(
        m, schema, cm, [](size_t, AttrId) { return Value{1}; }));
    ptrs.push_back(motes.back().get());
  }
  const size_t installed = base.Disseminate(plan, ptrs);
  EXPECT_LT(installed, 60u);  // corruption rejected some installs
  // Every mote that did install runs without crashing.
  for (auto& mote : motes) {
    if (mote->has_plan()) {
      EXPECT_TRUE(mote->RunEpoch(0).has_value());
    }
  }
}

TEST(BasestationTest, LimitQueryStopsEarly) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Radio radio(Radio::Options{.cost_per_byte = 0.0});
  Basestation base(schema, cm, radio);

  // Every mote matches every epoch: the limit should be hit in epoch 0
  // after exactly `limit` polls.
  std::vector<std::unique_ptr<Mote>> motes;
  std::vector<Mote*> mote_ptrs;
  for (int m = 0; m < 8; ++m) {
    motes.push_back(std::make_unique<Mote>(
        m, schema, cm, [](size_t, AttrId) { return Value{1}; }));
    motes.back()->InstallPlan(Plan(PlanNode::Sequential({Predicate(0, 1, 1)})));
    mote_ptrs.push_back(motes.back().get());
  }
  const auto res = base.RunLimitQuery(mote_ptrs, /*limit=*/3,
                                      /*max_epochs=*/10);
  EXPECT_EQ(res.matches, 3u);
  EXPECT_EQ(res.epochs_run, 1u);
  // Exactly 3 polls paid acquisition (cheap attr 0 costs 1 each).
  EXPECT_DOUBLE_EQ(res.acquisition_cost, 3.0);
}

TEST(BasestationTest, LimitQueryExhaustsEpochsWhenScarce) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Radio radio(Radio::Options{.cost_per_byte = 0.0});
  Basestation base(schema, cm, radio);
  // Never matches.
  Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{0}; });
  mote.InstallPlan(Plan(PlanNode::Sequential({Predicate(0, 1, 1)})));
  std::vector<Mote*> ptrs = {&mote};
  const auto res = base.RunLimitQuery(ptrs, 1, /*max_epochs=*/5);
  EXPECT_EQ(res.matches, 0u);
  EXPECT_EQ(res.epochs_run, 5u);
}

TEST(BasestationTest, LossyRadioInstallsFewerPlans) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Radio radio(Radio::Options{
      .cost_per_byte = 0.0, .drop_probability = 0.6, .seed = 11});
  Basestation base(schema, cm, radio);
  Dataset history = CorrelatedDataset(schema, 200, 63);
  base.CollectHistory(history);
  const Query q = Query::Conjunction({Predicate(2, 1, 2)});
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  const Plan plan = base.TrainPlan(q, splits, optseq, 2);

  std::vector<std::unique_ptr<Mote>> motes;
  std::vector<Mote*> mote_ptrs;
  for (int m = 0; m < 50; ++m) {
    motes.push_back(std::make_unique<Mote>(
        m, schema, cm, [](size_t, AttrId) { return Value{0}; }));
    mote_ptrs.push_back(motes.back().get());
  }
  const size_t installed = base.Disseminate(plan, mote_ptrs);
  EXPECT_LT(installed, 50u);
  EXPECT_GT(installed, 5u);
}

TEST(BasestationTest, AckRetransmissionConfirmsMoreInstalls) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const Plan plan(PlanNode::Sequential({Predicate(0, 1, 2)}));

  auto run = [&](int max_attempts) {
    Radio radio(Radio::Options{
        .cost_per_byte = 0.0, .drop_probability = 0.5, .seed = 33});
    Basestation base(schema, cm, radio);
    std::vector<std::unique_ptr<Mote>> motes;
    std::vector<Mote*> ptrs;
    for (int m = 0; m < 40; ++m) {
      motes.push_back(std::make_unique<Mote>(
          m, schema, cm, [](size_t, AttrId) { return Value{1}; }));
      ptrs.push_back(motes.back().get());
    }
    Basestation::DisseminateOptions opts;
    opts.max_attempts = max_attempts;
    opts.require_ack = true;
    return base.Disseminate(plan, ptrs, opts);
  };

  // With 50% loss each way, one attempt confirms ~25% of installs; eight
  // attempts confirm nearly all of them.
  const size_t one_shot = run(1);
  const size_t retried = run(8);
  EXPECT_GT(retried, one_shot);
  EXPECT_GT(retried, 30u);
  EXPECT_LT(one_shot, 20u);
}

TEST(BasestationTest, RetransmissionBackoffChargesTheBasestation) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const Plan plan(PlanNode::Sequential({Predicate(0, 1, 2)}));
  Radio radio(Radio::Options{
      .cost_per_byte = 0.0, .drop_probability = 0.7, .seed = 5});
  Basestation base(schema, cm, radio);
  Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{1}; });
  std::vector<Mote*> ptrs = {&mote};
  Basestation::DisseminateOptions opts;
  opts.max_attempts = 6;
  opts.require_ack = true;
  opts.backoff_cost = 0.25;
  base.Disseminate(plan, ptrs, opts);
  // The radio itself was free; any energy spent is backoff idle-listening.
  EXPECT_GE(base.energy().spent(), 0.0);
  if (radio.messages_dropped() > 0) {
    EXPECT_GT(base.energy().spent(), 0.0);
  }
}

TEST(BasestationTest, EpochReportCountsDegradedAndBrownedOutMotes) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Radio radio(Radio::Options{.cost_per_byte = 0.0});
  Basestation base(schema, cm, radio);
  const Plan plan(PlanNode::Sequential({Predicate(0, 1, 3)}));

  // Mote 0: healthy and always matching. Mote 1: every acquisition fails
  // (unknown verdicts). Mote 2: energy for roughly one epoch, then browns
  // out.
  Mote healthy(0, schema, cm, [](size_t, AttrId) { return Value{1}; });
  healthy.InstallPlan(plan);

  Mote faulty(1, schema, cm, [](size_t, AttrId) { return Value{1}; });
  faulty.InstallPlan(plan);
  FaultSpec all_fail;
  all_fail.transient = 1.0;
  FaultInjector injector(all_fail);
  faulty.SetFaultInjector(&injector);

  Mote dying(2, schema, cm, [](size_t, AttrId) { return Value{1}; },
             /*energy_budget=*/1.5);
  dying.InstallPlan(plan);

  std::vector<Mote*> ptrs = {&healthy, &faulty, &dying};
  const auto reports = base.RunContinuousQuery(ptrs, /*epochs=*/3);
  ASSERT_EQ(reports.size(), 3u);

  // Every epoch: healthy reports a defined match; faulty reports Unknown.
  for (const auto& rep : reports) {
    EXPECT_GE(rep.matches, 1u);
    EXPECT_EQ(rep.unknown_verdicts, 1u);
    EXPECT_EQ(rep.unreachable, 0u);
  }
  // The dying mote afforded epoch 0 (cost 1.0 <= 1.5) and browned out after.
  EXPECT_EQ(reports[0].browned_out, 0u);
  EXPECT_EQ(reports[1].browned_out, 1u);
  EXPECT_EQ(reports[2].browned_out, 1u);
  EXPECT_EQ(dying.brownouts(), 2u);
}

TEST(BasestationTest, UnreachableMotesAreCounted) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Result messages always lost in the channel.
  Radio radio(Radio::Options{.cost_per_byte = 0.0, .drop_probability = 1.0});
  Basestation base(schema, cm, radio);
  Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{1}; });
  mote.InstallPlan(Plan(PlanNode::Sequential({Predicate(0, 1, 3)})));
  std::vector<Mote*> ptrs = {&mote};
  const auto reports = base.RunContinuousQuery(ptrs, /*epochs=*/2);
  for (const auto& rep : reports) {
    EXPECT_EQ(rep.matches, 0u);
    EXPECT_EQ(rep.unreachable, 1u);
  }
}

}  // namespace
}  // namespace caqp
