// Columnar batch executor tests: BatchPlanView structural invariants, and
// the differential contract — ColumnarBatchExecutor::Execute must agree with
// scalar ExecuteBatch bit for bit (verdicts, matches, acquisitions, acquired
// union, total_cost as an exact double) across planners, datasets, chunk
// sizes, and row orders. Consecutive-row batches exercise the masked
// AVX-512 engine where the CPU has it; shuffled and strided batches pin the
// selection-vector kernels; both must produce identical results.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "data/garden_gen.h"
#include "data/lab_gen.h"
#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "exec/batch_executor.h"
#include "exec/executor.h"
#include "obs/obs.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/split_points.h"
#include "plan/compiled_plan.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

// ---------------------------------------------------------------------------
// View invariants

TEST(BatchExecViewTest, LevelMajorOrderAndStaticAcquiredSets) {
  GardenDataOptions gopts;
  gopts.num_motes = 3;
  gopts.epochs = 2000;
  const Dataset all = GenerateGardenData(gopts);
  const auto [train, test] = all.SplitFraction(0.6);
  const Schema& schema = all.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  GardenQueryOptions qopts;
  qopts.num_queries = 6;
  const std::vector<Query> queries =
      GenerateGardenQueries(schema, attrs.temperature, attrs.humidity, qopts);

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));
  GreedySeqSolver seq;
  GreedyPlanner::Options hopts;
  hopts.split_points = &splits;
  hopts.seq_solver = &seq;
  hopts.max_splits = 5;
  GreedyPlanner planner(est, cm, hopts);

  for (const Query& q : queries) {
    const CompiledPlan compiled = CompiledPlan::Compile(planner.BuildPlan(q));
    const BatchPlanView view(compiled);
    ASSERT_GT(view.num_slots(), 0u);

    // Levels tile the slot range in order, and every slot's children live
    // on the next level — the parent-before-child precondition the forward
    // kernel sweep relies on.
    uint32_t covered = 0;
    for (size_t l = 0; l < view.num_levels(); ++l) {
      const auto [begin, end] = view.level(l);
      EXPECT_EQ(begin, covered);
      EXPECT_LT(begin, end);
      covered = end;
    }
    EXPECT_EQ(covered, view.num_slots());

    for (uint32_t s = 0; s < view.num_slots(); ++s) {
      const BatchPlanView::Node& node = view.slot(s);
      if (node.op == BatchPlanView::Op::kSplitFirst ||
          node.op == BatchPlanView::Op::kSplitRepeat) {
        ASSERT_GT(node.lt, s);
        ASSERT_GT(node.ge, s);
        // A split's children enter with the parent's entry set plus the
        // split attribute (kSplitFirst) or exactly the parent's (repeat).
        AttrSet expect = node.entry_acquired;
        expect.Insert(node.attr);
        if (node.op == BatchPlanView::Op::kSplitFirst) {
          EXPECT_FALSE(node.entry_acquired.Contains(node.attr));
        } else {
          EXPECT_TRUE(node.entry_acquired.Contains(node.attr));
        }
        EXPECT_EQ(view.slot(node.lt).entry_acquired.bits, expect.bits);
        EXPECT_EQ(view.slot(node.ge).entry_acquired.bits, expect.bits);
      } else if (node.op != BatchPlanView::Op::kVerdictTrue &&
                 node.op != BatchPlanView::Op::kVerdictFalse) {
        // Sequential/generic leaf: is_new and acquired_before flags must be
        // consistent with a running walk from the entry set.
        AttrSet running = node.entry_acquired;
        for (const BatchPlanView::AcqStep& st : view.steps(node)) {
          EXPECT_EQ(st.is_new, !running.Contains(st.attr));
          EXPECT_EQ(st.acquired_before.bits, running.bits);
          running.Insert(st.attr);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: columnar vs scalar oracle

/// Chunk sizes crossing every boundary case: single-row chunks, a size that
/// leaves ragged tails, the default, and one chunk for the whole batch.
constexpr size_t kChunkSizes[] = {1, 7, 1024, 0};

void ExpectMatchesScalar(const CompiledPlan& plan, const Dataset& data,
                         const AcquisitionCostModel& cm,
                         std::span<const RowId> rows) {
  std::vector<uint8_t> want_verdicts;
  const BatchExecutionStats want =
      ExecuteBatch(plan, data, rows, cm, &want_verdicts);

  ColumnarBatchExecutor exec(plan, data, cm);
  for (const size_t chunk : kChunkSizes) {
    BatchExecOptions opts;
    opts.chunk_size = chunk;
    std::vector<uint8_t> got_verdicts;
    const BatchExecutionStats got = exec.Execute(rows, &got_verdicts, opts);
    EXPECT_EQ(got.tuples, want.tuples) << "chunk=" << chunk;
    EXPECT_EQ(got.matches, want.matches) << "chunk=" << chunk;
    EXPECT_EQ(got.total_acquisitions, want.total_acquisitions)
        << "chunk=" << chunk;
    EXPECT_EQ(got.acquired.bits, want.acquired.bits) << "chunk=" << chunk;
    // Exact, not approximate: the cost tables replay the scalar addition
    // sequence and the final sum runs in row order.
    EXPECT_EQ(got.total_cost, want.total_cost) << "chunk=" << chunk;
    EXPECT_EQ(got_verdicts, want_verdicts) << "chunk=" << chunk;

    // The verdict-free entry point must produce the same stats.
    const BatchExecutionStats no_verdicts = exec.Execute(rows, nullptr, opts);
    EXPECT_EQ(no_verdicts.matches, want.matches) << "chunk=" << chunk;
    EXPECT_EQ(no_verdicts.total_cost, want.total_cost) << "chunk=" << chunk;
  }
}

/// Runs the differential over the row orders that select each engine:
/// consecutive rows (masked AVX-512 where available), a consecutive
/// sub-range with a nonzero base, a shuffle, and a stride-3 subset (both
/// selection-vector kernels).
void ExpectAllRowOrdersMatch(const CompiledPlan& plan, const Dataset& data,
                             const AcquisitionCostModel& cm) {
  const size_t n = data.num_rows();
  std::vector<RowId> ids(n);
  for (RowId r = 0; r < n; ++r) ids[r] = r;
  ExpectMatchesScalar(plan, data, cm, ids);

  const size_t base = std::min<size_t>(17, n / 2);
  ExpectMatchesScalar(
      plan, data, cm,
      std::span<const RowId>(ids.data() + base, n - base));

  std::vector<RowId> shuffled = ids;
  std::mt19937 rng(20050405u);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  ExpectMatchesScalar(plan, data, cm, shuffled);

  std::vector<RowId> strided;
  for (size_t r = 0; r < n; r += 3) strided.push_back(static_cast<RowId>(r));
  ExpectMatchesScalar(plan, data, cm, strided);
}

TEST(BatchExecDifferentialTest, GardenWorkloadAcrossPlanners) {
  GardenDataOptions gopts;
  gopts.num_motes = 3;
  gopts.epochs = 3000;
  const Dataset all = GenerateGardenData(gopts);
  const auto [train, test] = all.SplitFraction(0.6);
  const Schema& schema = all.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  GardenQueryOptions qopts;
  qopts.num_queries = 4;
  const std::vector<Query> queries =
      GenerateGardenQueries(schema, attrs.temperature, attrs.humidity, qopts);

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));
  GreedySeqSolver seq;

  NaivePlanner naive(est, cm);
  SequentialPlanner corrseq(est, cm, seq, "CorrSeq");
  GreedyPlanner::Options hopts;
  hopts.split_points = &splits;
  hopts.seq_solver = &seq;
  hopts.max_splits = 5;
  GreedyPlanner greedy(est, cm, hopts);

  const Planner* planners[] = {&naive, &corrseq, &greedy};
  for (const Planner* planner : planners) {
    for (const Query& q : queries) {
      const CompiledPlan compiled =
          CompiledPlan::Compile(planner->BuildPlan(q));
      SCOPED_TRACE(planner->Name());
      ExpectAllRowOrdersMatch(compiled, test, cm);
    }
  }
}

TEST(BatchExecDifferentialTest, LabWorkload) {
  LabDataOptions lopts;
  lopts.num_motes = 4;
  lopts.readings = 4000;
  const Dataset all = GenerateLabData(lopts);
  const auto [train, test] = all.SplitFraction(0.6);
  const Schema& schema = all.schema();
  const LabAttrs attrs = ResolveLabAttrs(schema);

  LabQueryOptions qopts;
  qopts.num_queries = 3;
  const std::vector<Query> queries = GenerateLabQueries(
      train, {attrs.light, attrs.temperature, attrs.humidity}, qopts);

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  GreedySeqSolver seq;
  SequentialPlanner corrseq(est, cm, seq, "CorrSeq");
  for (const Query& q : queries) {
    const CompiledPlan compiled = CompiledPlan::Compile(corrseq.BuildPlan(q));
    ExpectAllRowOrdersMatch(compiled, test, cm);
  }
}

TEST(BatchExecDifferentialTest, SyntheticWorkload) {
  SyntheticDataOptions sopts;
  sopts.n = 6;
  sopts.tuples = 3000;
  const Dataset all = GenerateSyntheticData(sopts);
  const auto [train, test] = all.SplitFraction(0.5);
  const Schema& schema = all.schema();
  const Query q = SyntheticAllExpensiveQuery(schema);

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  GreedySeqSolver seq;
  NaivePlanner naive(est, cm);
  SequentialPlanner corrseq(est, cm, seq, "CorrSeq");
  for (const Planner* planner :
       {static_cast<const Planner*>(&naive),
        static_cast<const Planner*>(&corrseq)}) {
    const CompiledPlan compiled = CompiledPlan::Compile(planner->BuildPlan(q));
    SCOPED_TRACE(planner->Name());
    ExpectAllRowOrdersMatch(compiled, test, cm);
  }
}

TEST(BatchExecDifferentialTest, ExhaustivePlansWithGenericLeaves) {
  const Schema schema = testing_util::SmallSchema();
  const Dataset data = testing_util::CorrelatedDataset(schema, 2500, 11);
  const auto [train, test] = data.SplitFraction(0.5);

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);

  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    const CompiledPlan compiled = CompiledPlan::Compile(planner.BuildPlan(q));
    ExpectAllRowOrdersMatch(compiled, test, cm);
  }
}

TEST(BatchExecDifferentialTest, HandBuiltGenericLeafDisjunction) {
  // Deterministic GenericKernel coverage (the exhaustive planner does not
  // always emit residual-query leaves): a disjunction leaf below a split,
  // where the leaf must reuse the split-path value and short-circuit as
  // soon as the three-valued evaluation resolves.
  const Schema schema = testing_util::SmallSchema();
  const Dataset data = testing_util::CorrelatedDataset(schema, 2000, 23);
  PerAttributeCostModel cm(schema);

  Query q = Query::Disjunction({{Predicate(0, 3, 3)}, {Predicate(3, 4, 4)}});
  auto leaf = PlanNode::Generic(q, {0, 3});
  auto root = PlanNode::Split(0, 2, PlanNode::Verdict(false), std::move(leaf));
  const CompiledPlan compiled = CompiledPlan::Compile(Plan(std::move(root)));
  ExpectAllRowOrdersMatch(compiled, data, cm);
}

TEST(BatchExecDifferentialTest, EmptyAndSingleRowBatches) {
  const Schema schema = testing_util::SmallSchema();
  const Dataset data = testing_util::CorrelatedDataset(schema, 100, 5);
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential(
      {Predicate(1, 0, 2), Predicate(3, 4, 4), Predicate(2, 0, 0)}));
  const CompiledPlan compiled = CompiledPlan::Compile(std::move(plan));

  ColumnarBatchExecutor exec(compiled, data, cm);
  std::vector<uint8_t> verdicts{42};
  const BatchExecutionStats empty =
      exec.Execute(std::span<const RowId>(), &verdicts);
  EXPECT_EQ(empty.tuples, 0u);
  EXPECT_EQ(empty.matches, 0u);
  EXPECT_EQ(empty.total_cost, 0.0);
  EXPECT_TRUE(verdicts.empty());

  const RowId one = 42;
  ExpectMatchesScalar(compiled, data, cm, std::span<const RowId>(&one, 1));
}

// ---------------------------------------------------------------------------
// Profile parity

TEST(BatchExecProfileTest, CountersMatchPerTupleProfiledRun) {
  obs::SetEnabled(true);
  if (!obs::Enabled()) GTEST_SKIP() << "obs compiled out";

  GardenDataOptions gopts;
  gopts.num_motes = 3;
  gopts.epochs = 2000;
  const Dataset all = GenerateGardenData(gopts);
  const auto [train, test] = all.SplitFraction(0.6);
  const Schema& schema = all.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  GardenQueryOptions qopts;
  qopts.num_queries = 3;
  const std::vector<Query> queries =
      GenerateGardenQueries(schema, attrs.temperature, attrs.humidity, qopts);

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));
  GreedySeqSolver seq;
  GreedyPlanner::Options hopts;
  hopts.split_points = &splits;
  hopts.seq_solver = &seq;
  hopts.max_splits = 5;
  GreedyPlanner planner(est, cm, hopts);

  std::vector<RowId> ids(test.num_rows());
  for (RowId r = 0; r < ids.size(); ++r) ids[r] = r;

  for (const Query& q : queries) {
    const CompiledPlan compiled = CompiledPlan::Compile(planner.BuildPlan(q));

    ExecutionProfile scalar_profile(compiled.NumNodes());
    for (const RowId r : ids) {
      const Tuple t = test.GetTuple(r);
      TupleSource src(t);
      ExecutePlan(compiled, schema, cm, src, nullptr, {}, &scalar_profile);
    }
    const ExecutionProfileSnapshot want = scalar_profile.Snapshot();

    // Both row orders — masked and selection engines must produce the same
    // counters (shuffling rows permutes per-tuple work, not its totals).
    std::vector<RowId> shuffled = ids;
    std::mt19937 rng(99);
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (const std::vector<RowId>* order : {&ids, &shuffled}) {
      ExecutionProfile batch_profile(compiled.NumNodes());
      ColumnarBatchExecutor exec(compiled, test, cm);
      BatchExecOptions opts;
      opts.profile = &batch_profile;
      const BatchExecutionStats stats = exec.Execute(*order, nullptr, opts);
      const ExecutionProfileSnapshot got = batch_profile.Snapshot();

      ASSERT_EQ(got.nodes.size(), want.nodes.size());
      for (size_t i = 0; i < want.nodes.size(); ++i) {
        EXPECT_EQ(got.nodes[i].evals, want.nodes[i].evals) << "node " << i;
        EXPECT_EQ(got.nodes[i].passes, want.nodes[i].passes) << "node " << i;
      }
      EXPECT_EQ(got.attr_evals, want.attr_evals);
      EXPECT_EQ(got.attr_passes, want.attr_passes);
      EXPECT_EQ(got.executions, want.executions);
      EXPECT_EQ(got.acquisitions, want.acquisitions);
      EXPECT_EQ(got.acquisitions, stats.total_acquisitions);
      // Fresh profiles: one row-order bulk add vs per-tuple adds of the
      // same doubles in the same order — bitwise equal.
      EXPECT_EQ(got.realized_cost, want.realized_cost);
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency: executors are per-thread, profiles are shared

TEST(BatchExecConcurrencyTest, TwoExecutorsShareOneProfile) {
  GardenDataOptions gopts;
  gopts.num_motes = 3;
  gopts.epochs = 1500;
  const Dataset data = GenerateGardenData(gopts);
  const Schema& schema = data.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  GardenQueryOptions qopts;
  qopts.num_queries = 1;
  const std::vector<Query> queries =
      GenerateGardenQueries(schema, attrs.temperature, attrs.humidity, qopts);

  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  GreedySeqSolver seq;
  SequentialPlanner corrseq(est, cm, seq, "CorrSeq");
  const CompiledPlan compiled =
      CompiledPlan::Compile(corrseq.BuildPlan(queries[0]));

  std::vector<RowId> ids(data.num_rows());
  for (RowId r = 0; r < ids.size(); ++r) ids[r] = r;

  // Single-threaded reference over the same rows, twice.
  ExecutionProfile reference(compiled.NumNodes());
  {
    ColumnarBatchExecutor exec(compiled, data, cm);
    BatchExecOptions opts;
    opts.profile = &reference;
    exec.Execute(ids, nullptr, opts);
    exec.Execute(ids, nullptr, opts);
  }
  const ExecutionProfileSnapshot want = reference.Snapshot();

  // One executor per thread (scratch is single-threaded), one shared
  // profile (its counters are the concurrent-aggregation surface).
  ExecutionProfile shared(compiled.NumNodes());
  auto run = [&] {
    ColumnarBatchExecutor exec(compiled, data, cm);
    BatchExecOptions opts;
    opts.profile = &shared;
    exec.Execute(ids, nullptr, opts);
  };
  std::thread a(run);
  std::thread b(run);
  a.join();
  b.join();

  const ExecutionProfileSnapshot got = shared.Snapshot();
  ASSERT_EQ(got.nodes.size(), want.nodes.size());
  for (size_t i = 0; i < want.nodes.size(); ++i) {
    EXPECT_EQ(got.nodes[i].evals, want.nodes[i].evals);
    EXPECT_EQ(got.nodes[i].passes, want.nodes[i].passes);
  }
  EXPECT_EQ(got.executions, want.executions);
  EXPECT_EQ(got.acquisitions, want.acquisitions);
  EXPECT_DOUBLE_EQ(got.realized_cost, want.realized_cost);
}

}  // namespace
}  // namespace caqp
