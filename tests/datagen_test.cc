// Data and workload generator tests: the synthetic generator must satisfy
// the paper's stated statistical properties; Lab/Garden generators must
// exhibit the correlations the planners exploit; workload generators must
// produce the paper's query shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "data/garden_gen.h"
#include "data/lab_gen.h"
#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "prob/dataset_estimator.h"

namespace caqp {
namespace {

double Correlation(const Dataset& ds, AttrId a, AttrId b) {
  const size_t n = ds.num_rows();
  double ma = 0, mb = 0;
  for (RowId r = 0; r < n; ++r) {
    ma += ds.at(r, a);
    mb += ds.at(r, b);
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (RowId r = 0; r < n; ++r) {
    const double da = ds.at(r, a) - ma;
    const double db = ds.at(r, b) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0 || vb <= 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

// ---------------------------------------------------------------- Synthetic

TEST(SyntheticGenTest, SchemaShape) {
  SyntheticDataOptions opts;
  opts.n = 10;
  opts.gamma = 1;
  const Dataset ds = GenerateSyntheticData(opts);
  EXPECT_EQ(ds.num_attributes(), 10u);
  EXPECT_EQ(SyntheticExpensiveCount(ds.schema()), 5u);  // one cheap per pair
  for (size_t a = 0; a < 10; ++a) {
    EXPECT_EQ(ds.schema().domain_size(static_cast<AttrId>(a)), 2u);
  }
}

TEST(SyntheticGenTest, PredicateCountsMatchPaperSettings) {
  // The paper's four settings use 5, 7, 20 and 30 predicates.
  struct Setting {
    uint32_t n, gamma;
    size_t preds;
  };
  for (const Setting s : std::initializer_list<Setting>{
           {10, 1, 5}, {10, 3, 7}, {40, 1, 20}, {40, 3, 30}}) {
    SyntheticDataOptions opts;
    opts.n = s.n;
    opts.gamma = s.gamma;
    opts.tuples = 100;
    const Dataset ds = GenerateSyntheticData(opts);
    EXPECT_EQ(SyntheticExpensiveCount(ds.schema()), s.preds)
        << "n=" << s.n << " gamma=" << s.gamma;
  }
}

class SyntheticSelTest : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticSelTest, MarginalsApproximateSel) {
  SyntheticDataOptions opts;
  opts.n = 12;
  opts.gamma = 2;
  opts.sel = GetParam();
  opts.tuples = 30000;
  const Dataset ds = GenerateSyntheticData(opts);
  for (size_t a = 0; a < ds.num_attributes(); ++a) {
    double ones = 0;
    for (Value v : ds.column(static_cast<AttrId>(a))) ones += v;
    EXPECT_NEAR(ones / ds.num_rows(), GetParam(), 0.02) << "attr " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Sels, SyntheticSelTest,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8));

TEST(SyntheticGenTest, WithinGroupAgreementIsEighty) {
  SyntheticDataOptions opts;
  opts.n = 8;
  opts.gamma = 3;  // groups of 4
  opts.sel = 0.5;
  opts.tuples = 30000;
  const Dataset ds = GenerateSyntheticData(opts);
  // Attributes 0-3 are one group; 4-7 another.
  for (AttrId a = 0; a < 3; ++a) {
    for (AttrId b = a + 1; b < 4; ++b) {
      size_t agree = 0;
      for (RowId r = 0; r < ds.num_rows(); ++r) {
        agree += (ds.at(r, a) == ds.at(r, b)) ? 1 : 0;
      }
      EXPECT_NEAR(static_cast<double>(agree) / ds.num_rows(), 0.8, 0.02);
    }
  }
}

TEST(SyntheticGenTest, CrossGroupIndependence) {
  SyntheticDataOptions opts;
  opts.n = 8;
  opts.gamma = 3;
  opts.sel = 0.5;
  opts.tuples = 30000;
  const Dataset ds = GenerateSyntheticData(opts);
  // Attribute 0 (group 0) vs attribute 4 (group 1): near-zero correlation.
  EXPECT_NEAR(Correlation(ds, 0, 4), 0.0, 0.03);
  // Within group: strong.
  EXPECT_GT(Correlation(ds, 0, 1), 0.3);
}

TEST(SyntheticGenTest, QueryChecksAllExpensiveEqualOne) {
  SyntheticDataOptions opts;
  opts.n = 6;
  opts.gamma = 1;
  opts.tuples = 10;
  const Dataset ds = GenerateSyntheticData(opts);
  const Query q = SyntheticAllExpensiveQuery(ds.schema());
  ASSERT_TRUE(q.IsConjunctive());
  EXPECT_EQ(q.predicates().size(), 3u);
  for (const Predicate& p : q.predicates()) {
    EXPECT_EQ(p.lo, 1);
    EXPECT_EQ(p.hi, 1);
    EXPECT_EQ(ds.schema().cost(p.attr), 100.0);
  }
}

// ---------------------------------------------------------------------- Lab

TEST(LabGenTest, SchemaAndCosts) {
  LabDataOptions opts;
  opts.readings = 2000;
  const Dataset ds = GenerateLabData(opts);
  const LabAttrs a = ResolveLabAttrs(ds.schema());
  EXPECT_EQ(ds.schema().cost(a.light), 100.0);
  EXPECT_EQ(ds.schema().cost(a.temperature), 100.0);
  EXPECT_EQ(ds.schema().cost(a.humidity), 100.0);
  EXPECT_EQ(ds.schema().cost(a.hour), 1.0);
  EXPECT_EQ(ds.schema().cost(a.nodeid), 1.0);
  EXPECT_EQ(ds.schema().cost(a.voltage), 1.0);
  EXPECT_EQ(ds.num_rows(), 2000u);
}

TEST(LabGenTest, HourPredictsLight) {
  // Conditioning light on hour must shrink its variance substantially
  // (the paper's Figure 1 band structure).
  LabDataOptions opts;
  opts.readings = 40000;
  const Dataset ds = GenerateLabData(opts);
  const LabAttrs a = ResolveLabAttrs(ds.schema());
  DatasetEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  const double sd_all = est.Marginal(root, a.light).StdDev();
  double weighted_sd = 0;
  for (Value h = 0; h < 24; ++h) {
    RangeVec cond = root;
    cond[a.hour] = ValueRange{h, h};
    const Histogram hist = est.Marginal(cond, a.light);
    if (hist.total() > 0) {
      weighted_sd += hist.total() / ds.num_rows() * hist.StdDev();
    }
  }
  EXPECT_LT(weighted_sd, 0.75 * sd_all);
}

TEST(LabGenTest, NightLightDependsOnZone) {
  // At midnight the back zone is sometimes lit (night sessions) while the
  // front zone stays dark -- the nodeid split of Figure 9.
  LabDataOptions opts;
  opts.readings = 60000;
  opts.num_motes = 10;
  const Dataset ds = GenerateLabData(opts);
  const LabAttrs a = ResolveLabAttrs(ds.schema());
  DatasetEstimator est(ds);
  RangeVec night = ds.schema().FullRanges();
  night[a.hour] = ValueRange{23, 23};
  RangeVec front = night;
  front[a.nodeid] = ValueRange{0, 5};
  RangeVec back = night;
  back[a.nodeid] = ValueRange{6, 9};
  // Lamps produce ~420 lux => bin 5 of 16 over [0, 1200].
  const Predicate bright(a.light, 5, 15);
  const double p_front = est.PredicateProbability(front, bright);
  const double p_back = est.PredicateProbability(back, bright);
  EXPECT_GT(p_back, p_front + 0.1);
}

TEST(LabGenTest, HumidityHigherAtNight) {
  LabDataOptions opts;
  opts.readings = 40000;
  const Dataset ds = GenerateLabData(opts);
  const LabAttrs a = ResolveLabAttrs(ds.schema());
  DatasetEstimator est(ds);
  RangeVec night = ds.schema().FullRanges();
  night[a.hour] = ValueRange{0, 4};
  RangeVec day = ds.schema().FullRanges();
  day[a.hour] = ValueRange{10, 15};
  const double m_night = est.Marginal(night, a.humidity).Mean();
  const double m_day = est.Marginal(day, a.humidity).Mean();
  EXPECT_GT(m_night, m_day + 1.0);
}

// ------------------------------------------------------------------- Garden

TEST(GardenGenTest, SchemaShapeMatchesPaper) {
  GardenDataOptions g5;
  g5.num_motes = 5;
  g5.epochs = 100;
  EXPECT_EQ(GenerateGardenData(g5).num_attributes(), 16u);
  GardenDataOptions g11;
  g11.num_motes = 11;
  g11.epochs = 100;
  EXPECT_EQ(GenerateGardenData(g11).num_attributes(), 34u);
}

TEST(GardenGenTest, CrossMoteTemperatureCorrelation) {
  GardenDataOptions opts;
  opts.num_motes = 5;
  opts.epochs = 20000;
  const Dataset ds = GenerateGardenData(opts);
  const GardenAttrs a = ResolveGardenAttrs(ds.schema());
  ASSERT_EQ(a.temperature.size(), 5u);
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_GT(Correlation(ds, a.temperature[0], a.temperature[i]), 0.8);
  }
}

TEST(GardenGenTest, VoltageTracksTemperature) {
  GardenDataOptions opts;
  opts.num_motes = 3;
  opts.epochs = 20000;
  const Dataset ds = GenerateGardenData(opts);
  const GardenAttrs a = ResolveGardenAttrs(ds.schema());
  // Voltage is dominated by drain over time; remove the trend by checking
  // correlation within a narrow time slice (first 2000 epochs).
  auto head = ds.SplitAt(2000).first;
  EXPECT_GT(Correlation(head, a.voltage[0], a.temperature[0]), 0.2);
}

TEST(GardenGenTest, HumidityAntiCorrelatedWithTemperature) {
  GardenDataOptions opts;
  opts.num_motes = 3;
  opts.epochs = 20000;
  const Dataset ds = GenerateGardenData(opts);
  const GardenAttrs a = ResolveGardenAttrs(ds.schema());
  EXPECT_LT(Correlation(ds, a.humidity[0], a.temperature[0]), -0.5);
}

// ----------------------------------------------------------------- Workload

TEST(WorkloadTest, LabQueriesHaveOnePredicatePerTarget) {
  LabDataOptions lopts;
  lopts.readings = 5000;
  const Dataset ds = GenerateLabData(lopts);
  const LabAttrs a = ResolveLabAttrs(ds.schema());
  LabQueryOptions qopts;
  qopts.num_queries = 95;
  const auto queries = GenerateLabQueries(
      ds, {a.light, a.temperature, a.humidity}, qopts);
  ASSERT_EQ(queries.size(), 95u);
  for (const Query& q : queries) {
    ASSERT_TRUE(q.IsConjunctive());
    ASSERT_EQ(q.predicates().size(), 3u);
    EXPECT_TRUE(q.ValidFor(ds.schema()));
  }
}

TEST(WorkloadTest, LabQueriesHaveModerateSelectivity) {
  // The paper tunes for ~50% per-predicate selectivity; verify the average
  // predicate passes a sizable fraction of tuples.
  LabDataOptions lopts;
  lopts.readings = 20000;
  const Dataset ds = GenerateLabData(lopts);
  const LabAttrs a = ResolveLabAttrs(ds.schema());
  LabQueryOptions qopts;
  qopts.num_queries = 50;
  const auto queries =
      GenerateLabQueries(ds, {a.light, a.temperature, a.humidity}, qopts);
  DatasetEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  double total_sel = 0;
  size_t count = 0;
  for (const Query& q : queries) {
    for (const Predicate& p : q.predicates()) {
      total_sel += est.PredicateProbability(root, p);
      ++count;
    }
  }
  const double mean_sel = total_sel / count;
  EXPECT_GT(mean_sel, 0.3);
  EXPECT_LT(mean_sel, 0.8);
}

TEST(WorkloadTest, GardenQueriesAreIdenticalAcrossMotes) {
  GardenDataOptions gopts;
  gopts.num_motes = 5;
  gopts.epochs = 100;
  const Dataset ds = GenerateGardenData(gopts);
  const GardenAttrs a = ResolveGardenAttrs(ds.schema());
  GardenQueryOptions qopts;
  qopts.num_queries = 90;
  const auto queries =
      GenerateGardenQueries(ds.schema(), a.temperature, a.humidity, qopts);
  ASSERT_EQ(queries.size(), 90u);
  for (const Query& q : queries) {
    ASSERT_EQ(q.predicates().size(), 10u);  // 5 temp + 5 humid
    // All temperature predicates share bounds and negation.
    const Predicate& t0 = q.predicates()[0];
    for (size_t i = 1; i < 5; ++i) {
      EXPECT_EQ(q.predicates()[i].lo, t0.lo);
      EXPECT_EQ(q.predicates()[i].hi, t0.hi);
      EXPECT_EQ(q.predicates()[i].negated, t0.negated);
    }
    EXPECT_TRUE(q.ValidFor(ds.schema()));
  }
}

TEST(WorkloadTest, GardenQueriesMixNegation) {
  GardenDataOptions gopts;
  gopts.num_motes = 2;
  gopts.epochs = 50;
  const Dataset ds = GenerateGardenData(gopts);
  const GardenAttrs a = ResolveGardenAttrs(ds.schema());
  GardenQueryOptions qopts;
  qopts.num_queries = 200;
  const auto queries =
      GenerateGardenQueries(ds.schema(), a.temperature, a.humidity, qopts);
  size_t negated = 0;
  for (const Query& q : queries) negated += q.predicates()[0].negated ? 1 : 0;
  EXPECT_GT(negated, 50u);
  EXPECT_LT(negated, 150u);
}

TEST(WorkloadTest, GeneratorsAreDeterministic) {
  LabDataOptions opts;
  opts.readings = 1000;
  const Dataset a = GenerateLabData(opts);
  const Dataset b = GenerateLabData(opts);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (RowId r = 0; r < a.num_rows(); r += 97) {
    EXPECT_EQ(a.GetTuple(r), b.GetTuple(r));
  }
}

}  // namespace
}  // namespace caqp
