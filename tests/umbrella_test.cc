// Compile-and-run check for the umbrella header: the README quickstart
// flow, written exactly as a downstream user would.

#include "caqp.h"

#include <gtest/gtest.h>

namespace caqp {
namespace {

TEST(UmbrellaTest, QuickstartFlowWorks) {
  Schema schema;
  schema.AddAttribute("clock", 2, 0.0);
  schema.AddAttribute("sensor_a", 2, 10.0);
  schema.AddAttribute("sensor_b", 2, 10.0);

  Rng rng(1);
  Dataset history(schema);
  for (int i = 0; i < 2000; ++i) {
    const bool day = rng.Bernoulli(0.5);
    history.Append({static_cast<Value>(day),
                    static_cast<Value>(rng.Bernoulli(day ? 0.9 : 0.1)),
                    static_cast<Value>(rng.Bernoulli(day ? 0.1 : 0.9))});
  }

  DatasetEstimator estimator(history);
  PerAttributeCostModel costs(schema);
  const Query query =
      Query::Conjunction({Predicate(1, 1, 1), Predicate(2, 1, 1)});

  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver base;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &base;
  opts.max_splits = 3;
  GreedyPlanner planner(estimator, costs, opts);
  const Plan plan = planner.BuildPlan(query);

  EXPECT_TRUE(PlanIsWellFormed(plan, schema));
  EXPECT_TRUE(VerifyPlanExhaustive(plan, query, schema).correct);
  EXPECT_GT(plan.NumSplits(), 0u);  // the clock split pays for itself

  const double cost = ExpectedPlanCost(plan, estimator, costs);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 20.0);  // never needs both sensors in expectation

  // Serialize -> radio -> deserialize -> execute.
  const auto bytes = SerializePlan(plan);
  auto back = DeserializePlan(bytes, schema);
  ASSERT_TRUE(back.ok());
  Tuple tonight = {0, 0, 1};
  TupleSource src(tonight);
  const ExecutionResult res = ExecutePlan(*back, schema, costs, src);
  EXPECT_FALSE(res.verdict);
  EXPECT_GT(res.cost, 0.0);
}

}  // namespace
}  // namespace caqp
