// GreedyPlanner (Figures 6-7) tests: split-budget semantics, monotone
// improvement on training data, dominance relations (never worse than its
// sequential base plan; never better than Exhaustive), verdict correctness,
// and the Section 2.4 plan-size-penalty stopping rule.

#include <gtest/gtest.h>

#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "plan/plan_serde.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

struct Toolkit {
  Schema schema = SmallSchema();
  Dataset ds;
  DatasetEstimator est;
  PerAttributeCostModel cm;
  SplitPointSet splits;
  OptSeqSolver optseq;

  explicit Toolkit(uint64_t seed, size_t rows = 600)
      : ds(CorrelatedDataset(schema, rows, seed, 0.2)),
        est(ds),
        cm(schema),
        splits(SplitPointSet::AllPoints(schema)) {}

  GreedyPlanner Planner(size_t max_splits, double alpha = 0.0) {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &optseq;
    opts.max_splits = max_splits;
    opts.size_penalty_alpha = alpha;
    return GreedyPlanner(est, cm, opts);
  }
};

TEST(GreedyPlanTest, ZeroSplitsEqualsSequentialBase) {
  Toolkit tk(41);
  GreedyPlanner g0 = tk.Planner(0);
  SequentialPlanner seq(tk.est, tk.cm, tk.optseq, "OptSeq");
  Rng rng(42);
  for (int iter = 0; iter < 10; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    const Plan pg = g0.BuildPlan(q);
    const Plan ps = seq.BuildPlan(q);
    EXPECT_EQ(pg.NumSplits(), 0u);
    EXPECT_NEAR(EmpiricalPlanCost(pg, tk.ds, q, tk.cm).mean_cost,
                EmpiricalPlanCost(ps, tk.ds, q, tk.cm).mean_cost, 1e-9);
  }
}

TEST(GreedyPlanTest, RespectsMaxSplits) {
  Toolkit tk(43);
  Rng rng(44);
  for (size_t k : {0u, 1u, 2u, 5u, 10u}) {
    GreedyPlanner planner = tk.Planner(k);
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    const Plan plan = planner.BuildPlan(q);
    EXPECT_LE(plan.NumSplits(), k);
  }
}

TEST(GreedyPlanTest, TrainingCostMonotoneInSplitBudget) {
  Toolkit tk(45, 1200);
  Rng rng(46);
  for (int iter = 0; iter < 8; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    double prev = std::numeric_limits<double>::infinity();
    for (size_t k : {0u, 1u, 2u, 4u, 8u}) {
      GreedyPlanner planner = tk.Planner(k);
      const Plan plan = planner.BuildPlan(q);
      const double cost = EmpiricalPlanCost(plan, tk.ds, q, tk.cm).mean_cost;
      ASSERT_LE(cost, prev + 1e-9)
          << "k=" << k << " query=" << q.ToString(tk.schema);
      prev = cost;
    }
  }
}

TEST(GreedyPlanTest, NeverWorseThanBaseNeverBetterThanExhaustive) {
  Toolkit tk(47, 800);
  ExhaustivePlanner::Options eopts;
  eopts.split_points = &tk.splits;
  ExhaustivePlanner exhaustive(tk.est, tk.cm, eopts);
  SequentialPlanner seq(tk.est, tk.cm, tk.optseq, "OptSeq");
  Rng rng(48);
  for (int iter = 0; iter < 6; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng, 2);
    GreedyPlanner heuristic = tk.Planner(10);
    const double ch =
        EmpiricalPlanCost(heuristic.BuildPlan(q), tk.ds, q, tk.cm).mean_cost;
    const double cs =
        EmpiricalPlanCost(seq.BuildPlan(q), tk.ds, q, tk.cm).mean_cost;
    const double ce =
        EmpiricalPlanCost(exhaustive.BuildPlan(q), tk.ds, q, tk.cm).mean_cost;
    ASSERT_LE(ch, cs + 1e-9);
    ASSERT_GE(ch, ce - 1e-9);
  }
}

TEST(GreedyPlanTest, VerdictsCorrectEverywhere) {
  Toolkit tk(49);
  Rng rng(50);
  GreedyPlanner planner = tk.Planner(6);
  for (int iter = 0; iter < 12; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    const Plan plan = planner.BuildPlan(q);
    ASSERT_EQ(testing_util::CountVerdictMismatches(plan, q, tk.schema), 0u)
        << q.ToString(tk.schema);
  }
}

TEST(GreedyPlanTest, ReportedCostMatchesEquation3) {
  Toolkit tk(51);
  Rng rng(52);
  GreedyPlanner planner = tk.Planner(5);
  for (int iter = 0; iter < 8; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    const Plan plan = planner.BuildPlan(q);
    const double eq3 = ExpectedPlanCost(plan, tk.est, tk.cm);
    ASSERT_NEAR(planner.LastPlanCost(), eq3, 1e-6) << q.ToString(tk.schema);
  }
}

TEST(GreedyPlanTest, ExploitsCheapCorrelatedAttribute) {
  // Figure 2 structure: a cheap attribute flips which expensive predicate
  // is likely to fail. A split on it must be found and must pay off; a
  // correlation that never flips the predicate order would (correctly)
  // yield no split, so this fixture makes the flip unambiguous.
  Schema schema;
  schema.AddAttribute("cheap", 2, 1.0);
  schema.AddAttribute("expA", 2, 50.0);
  schema.AddAttribute("expB", 2, 50.0);
  Rng rng(53);
  Dataset ds(schema);
  for (int i = 0; i < 4000; ++i) {
    const bool c = rng.Bernoulli(0.5);
    const bool a = rng.Bernoulli(c ? 0.9 : 0.1);
    const bool b = rng.Bernoulli(c ? 0.1 : 0.9);
    ds.Append({static_cast<Value>(c), static_cast<Value>(a),
               static_cast<Value>(b)});
  }
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &optseq;
  opts.max_splits = 5;
  GreedyPlanner planner(est, cm, opts);
  SequentialPlanner seq(est, cm, optseq, "OptSeq");
  const Query q =
      Query::Conjunction({Predicate(1, 1, 1), Predicate(2, 1, 1)});
  const Plan pg = planner.BuildPlan(q);
  const Plan ps = seq.BuildPlan(q);
  const double cg = EmpiricalPlanCost(pg, ds, q, cm).mean_cost;
  const double cs = EmpiricalPlanCost(ps, ds, q, cm).mean_cost;
  EXPECT_GT(pg.NumSplits(), 0u);
  // Sequential ~75 units; conditional ~56 units.
  EXPECT_LT(cg, cs * 0.85);
  ASSERT_EQ(pg.root().kind, PlanNode::Kind::kSplit);
  EXPECT_EQ(pg.root().attr, 0);  // conditions on the cheap attribute
}

TEST(GreedyPlanTest, SizePenaltyShrinksPlans) {
  Toolkit tk(54, 1500);
  const Query q =
      Query::Conjunction({Predicate(2, 3, 3), Predicate(3, 3, 4)});
  GreedyPlanner free = tk.Planner(10, /*alpha=*/0.0);
  GreedyPlanner taxed = tk.Planner(10, /*alpha=*/50.0);
  const Plan p_free = free.BuildPlan(q);
  const Plan p_taxed = taxed.BuildPlan(q);
  EXPECT_LE(p_taxed.NumSplits(), p_free.NumSplits());
  EXPECT_LE(PlanSizeBytes(p_taxed), PlanSizeBytes(p_free));
  // An enormous alpha suppresses all splits.
  GreedyPlanner prohibitive = tk.Planner(10, /*alpha=*/1e9);
  EXPECT_EQ(prohibitive.BuildPlan(q).NumSplits(), 0u);
}

TEST(GreedyPlanTest, HardByteBoundRespected) {
  Toolkit tk(61, 1500);
  const Query q =
      Query::Conjunction({Predicate(2, 3, 3), Predicate(3, 3, 4)});
  GreedyPlanner::Options opts;
  opts.split_points = &tk.splits;
  opts.seq_solver = &tk.optseq;
  opts.max_splits = 12;
  GreedyPlanner unbounded(tk.est, tk.cm, opts);
  const Plan big = unbounded.BuildPlan(q);

  for (const size_t budget : {24u, 48u, 96u}) {
    opts.max_plan_bytes = budget;
    GreedyPlanner bounded(tk.est, tk.cm, opts);
    const Plan plan = bounded.BuildPlan(q);
    EXPECT_LE(PlanSizeBytes(plan), budget) << "budget " << budget;
    EXPECT_EQ(testing_util::CountVerdictMismatches(plan, q, tk.schema), 0u);
  }
  // A generous budget changes nothing.
  opts.max_plan_bytes = 100000;
  GreedyPlanner roomy(tk.est, tk.cm, opts);
  EXPECT_EQ(PlanSizeBytes(roomy.BuildPlan(q)), PlanSizeBytes(big));
}

TEST(GreedyPlanTest, GreedySeqBaseAlsoWorks) {
  Toolkit tk(55);
  GreedySeqSolver greedyseq;
  GreedyPlanner::Options opts;
  opts.split_points = &tk.splits;
  opts.seq_solver = &greedyseq;
  opts.max_splits = 4;
  GreedyPlanner planner(tk.est, tk.cm, opts);
  Rng rng(56);
  for (int iter = 0; iter < 8; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(tk.schema, rng);
    const Plan plan = planner.BuildPlan(q);
    ASSERT_EQ(testing_util::CountVerdictMismatches(plan, q, tk.schema), 0u);
  }
}

TEST(GreedyPlanTest, NameReflectsBudget) {
  Toolkit tk(57);
  EXPECT_EQ(tk.Planner(5).Name(), "Heuristic-5");
  EXPECT_EQ(tk.Planner(0).Name(), "Heuristic-0");
}

TEST(GreedyPlanTest, DeterminedQueryShortCircuits) {
  Toolkit tk(58);
  GreedyPlanner planner = tk.Planner(5);
  // Whole-domain predicate: always true.
  const Plan plan =
      planner.BuildPlan(Query::Conjunction({Predicate(0, 0, 3)}));
  ASSERT_EQ(plan.root().kind, PlanNode::Kind::kVerdict);
  EXPECT_TRUE(plan.root().verdict);
}

TEST(GreedyPlanTest, StatsArepopulated) {
  Toolkit tk(59);
  GreedyPlanner planner = tk.Planner(3);
  const Query q =
      Query::Conjunction({Predicate(2, 3, 3), Predicate(3, 3, 4)});
  (void)planner.BuildPlan(q);
  EXPECT_GT(planner.stats().split_searches, 0u);
  EXPECT_GT(planner.stats().candidates_tried, 0u);
}

TEST(GreedyPlanTest, SerializedPlanExecutesIdentically) {
  Toolkit tk(60);
  GreedyPlanner planner = tk.Planner(5);
  const Query q =
      Query::Conjunction({Predicate(2, 1, 2), Predicate(3, 2, 4)});
  const Plan plan = planner.BuildPlan(q);
  auto back = DeserializePlan(SerializePlan(plan), tk.schema);
  ASSERT_TRUE(back.ok());
  const auto a = EmpiricalPlanCost(plan, tk.ds, q, tk.cm);
  const auto b = EmpiricalPlanCost(*back, tk.ds, q, tk.cm);
  EXPECT_DOUBLE_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(b.verdict_errors, 0u);
}

}  // namespace
}  // namespace caqp
