// AdaptivePlanner (Section 7 streams extension) tests: replanning kicks in
// after distribution drift and lowers realized cost; hysteresis prevents
// thrashing on stable streams.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/executor.h"
#include "opt/adaptive.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "prob/dataset_estimator.h"

namespace caqp {
namespace {

Schema StreamSchema() {
  Schema s;
  s.AddAttribute("cheap", 2, 1.0);
  s.AddAttribute("expA", 2, 50.0);
  s.AddAttribute("expB", 2, 50.0);
  return s;
}

/// Regime 0: cheap=1 implies expA likely 1 / expB likely 0.
/// Regime 1: the correlation flips.
Tuple DrawTuple(Rng& rng, int regime) {
  const bool c = rng.Bernoulli(0.5);
  bool a, b;
  if (regime == 0) {
    a = rng.Bernoulli(c ? 0.9 : 0.1);
    b = rng.Bernoulli(c ? 0.1 : 0.9);
  } else {
    a = rng.Bernoulli(c ? 0.1 : 0.9);
    b = rng.Bernoulli(c ? 0.9 : 0.1);
  }
  return {static_cast<Value>(c), static_cast<Value>(a),
          static_cast<Value>(b)};
}

struct Fixture {
  Schema schema = StreamSchema();
  PerAttributeCostModel cm{schema};
  SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  Query query =
      Query::Conjunction({Predicate(1, 1, 1), Predicate(2, 1, 1)});

  AdaptivePlanner Make(size_t window = 2000, size_t interval = 500) {
    AdaptivePlanner::Options opts;
    opts.window_size = window;
    opts.replan_interval = interval;
    opts.split_points = &splits;
    opts.seq_solver = &optseq;
    opts.max_splits = 4;
    return AdaptivePlanner(schema, query, cm, opts);
  }
};

TEST(AdaptiveTest, LearnsConditionalPlanFromStream) {
  Fixture fx;
  AdaptivePlanner planner = fx.Make();
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) planner.Observe(DrawTuple(rng, 0));
  EXPECT_GT(planner.stats().replans_adopted, 0u);
  EXPECT_GT(planner.plan().NumSplits(), 0u);
}

TEST(AdaptiveTest, AdaptsAfterDrift) {
  Fixture fx;
  AdaptivePlanner planner = fx.Make(/*window=*/1500, /*interval=*/500);
  Rng rng(2);
  // Phase 1: learn regime 0.
  for (int i = 0; i < 3000; ++i) planner.Observe(DrawTuple(rng, 0));
  const size_t adopted_before = planner.stats().replans_adopted;

  // Phase 2: flip the regime; the stale plan misorders predicates.
  double drift_cost = 0;
  const int probe = 3000;
  for (int i = 0; i < probe; ++i) {
    drift_cost += planner.Observe(DrawTuple(rng, 1));
  }
  EXPECT_GT(planner.stats().replans_adopted, adopted_before);

  // Phase 3: once re-adapted, realized cost returns near the regime-0 rate.
  double settled_cost = 0;
  for (int i = 0; i < probe; ++i) {
    settled_cost += planner.Observe(DrawTuple(rng, 1));
  }
  EXPECT_LT(settled_cost, drift_cost);
}

TEST(AdaptiveTest, HysteresisAvoidsThrashingOnStableStream) {
  Fixture fx;
  AdaptivePlanner planner = fx.Make(/*window=*/2000, /*interval=*/250);
  Rng rng(3);
  for (int i = 0; i < 8000; ++i) planner.Observe(DrawTuple(rng, 0));
  // Replans considered often, but adopted only the first time or two: the
  // incumbent plan stays within the improvement threshold thereafter.
  EXPECT_GE(planner.stats().replans_considered, 10u);
  EXPECT_LE(planner.stats().replans_adopted, 3u);
}

TEST(AdaptiveTest, WindowEvictsStaleRegime) {
  // After far more than window_size tuples of the new regime, the window
  // holds only regime-1 data, so the adopted plan must match one trained
  // on pure regime-1 data in expected cost (within estimation noise).
  Fixture fx;
  AdaptivePlanner planner = fx.Make(/*window=*/1000, /*interval=*/250);
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) planner.Observe(DrawTuple(rng, 0));
  for (int i = 0; i < 6000; ++i) planner.Observe(DrawTuple(rng, 1));

  // Reference: plan trained on fresh regime-1 data only.
  Dataset fresh(fx.schema);
  Rng rng2(7);
  for (int i = 0; i < 4000; ++i) fresh.Append(DrawTuple(rng2, 1));
  DatasetEstimator est(fresh);
  GreedyPlanner::Options gopts;
  gopts.split_points = &fx.splits;
  gopts.seq_solver = &fx.optseq;
  gopts.max_splits = 4;
  GreedyPlanner reference(est, fx.cm, gopts);
  const Plan ref_plan = reference.BuildPlan(fx.query);

  const double adapted = EmpiricalPlanCost(planner.plan(), fresh, fx.query,
                                           fx.cm).mean_cost;
  const double ideal =
      EmpiricalPlanCost(ref_plan, fresh, fx.query, fx.cm).mean_cost;
  EXPECT_LT(adapted, ideal * 1.10);  // within 10% of regime-1-optimal
}

TEST(AdaptiveTest, StatsAccumulate) {
  Fixture fx;
  AdaptivePlanner planner = fx.Make();
  Rng rng(4);
  double total = 0;
  for (int i = 0; i < 100; ++i) total += planner.Observe(DrawTuple(rng, 0));
  EXPECT_EQ(planner.stats().tuples_seen, 100u);
  EXPECT_DOUBLE_EQ(planner.stats().total_cost, total);
  EXPECT_GT(total, 0.0);
}

TEST(AdaptiveTest, ColdStartPlanIsCorrect) {
  Fixture fx;
  AdaptivePlanner planner = fx.Make();
  // Before any replan, the plan must still answer correctly.
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Tuple t = DrawTuple(rng, 0);
    TupleSource src(t);
    const ExecutionResult res =
        ExecutePlan(planner.plan(), fx.schema, fx.cm, src);
    EXPECT_EQ(res.verdict, fx.query.Matches(t));
    planner.Observe(t);
  }
}

}  // namespace
}  // namespace caqp
