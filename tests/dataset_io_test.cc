// Binary dataset persistence tests: roundtrips, validation, file I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/bytes.h"
#include "core/dataset_io.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

TEST(DatasetIoTest, RoundtripPreservesEverything) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 500, 81);
  const auto bytes = SerializeDataset(ds);
  auto back = DeserializeDataset(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->schema() == ds.schema());
  ASSERT_EQ(back->num_rows(), ds.num_rows());
  for (RowId r = 0; r < ds.num_rows(); r += 37) {
    EXPECT_EQ(back->GetTuple(r), ds.GetTuple(r));
  }
}

TEST(DatasetIoTest, EmptyDatasetRoundtrips) {
  const Dataset ds(SmallSchema());
  auto back = DeserializeDataset(SerializeDataset(ds));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_TRUE(back->schema() == ds.schema());
}

TEST(DatasetIoTest, RejectsBadMagic) {
  auto bytes = SerializeDataset(CorrelatedDataset(SmallSchema(), 10, 82));
  bytes[0] ^= 0xFF;
  EXPECT_EQ(DeserializeDataset(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoTest, RejectsTruncation) {
  const auto bytes = SerializeDataset(CorrelatedDataset(SmallSchema(), 20, 83));
  for (size_t cut = 1; cut < bytes.size(); cut += 13) {
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(DeserializeDataset(trunc).ok()) << "cut=" << cut;
  }
}

TEST(DatasetIoTest, RejectsTrailingGarbage) {
  auto bytes = SerializeDataset(CorrelatedDataset(SmallSchema(), 10, 84));
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeDataset(bytes).ok());
}

TEST(DatasetIoTest, RejectsOutOfDomainValue) {
  // Hand-corrupt a value varint to exceed its domain: find any value byte
  // by re-encoding with a hacked column. Simpler: serialize a dataset whose
  // last column value we bump beyond the domain via raw byte surgery is
  // brittle, so instead build bytes manually.
  ByteWriter w;
  w.PutVarint(0x43415150'44530001ULL);
  w.PutVarint(1);          // one attribute
  w.PutString("a");
  w.PutVarint(4);          // domain 4
  w.PutDouble(1.0);
  w.PutVarint(1);          // one row
  w.PutVarint(9);          // value 9 out of domain 4
  EXPECT_EQ(DeserializeDataset(w.bytes()).status().code(),
            StatusCode::kDataLoss);
}

TEST(DatasetIoTest, FileRoundtrip) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 200, 85);
  const std::string path =
      (std::filesystem::temp_directory_path() / "caqp_ds_test.bin").string();
  ASSERT_TRUE(SaveDataset(ds, path).ok());
  auto back = LoadDataset(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), ds.num_rows());
  EXPECT_EQ(back->GetTuple(57), ds.GetTuple(57));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadDataset("/nonexistent/ds.bin").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace caqp
