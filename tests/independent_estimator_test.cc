// IndependentEstimator tests: it must reproduce marginals exactly and,
// by construction, report product-form joints that ignore correlations.

#include <gtest/gtest.h>

#include "prob/dataset_estimator.h"
#include "prob/independent_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;
using testing_util::UniformDataset;

TEST(IndependentEstimatorTest, RootMarginalsMatchDataset) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 500, 1);
  IndependentEstimator ind(ds);
  DatasetEstimator exact(ds);
  const RangeVec root = ds.schema().FullRanges();
  for (size_t a = 0; a < ds.num_attributes(); ++a) {
    const Histogram hi = ind.Marginal(root, static_cast<AttrId>(a));
    const Histogram he = exact.Marginal(root, static_cast<AttrId>(a));
    for (Value v = 0; v < hi.domain(); ++v) {
      EXPECT_DOUBLE_EQ(hi.Count(v), he.Count(v));
    }
  }
}

TEST(IndependentEstimatorTest, ConditioningOnOtherAttributesIsIgnored) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 500, 2);
  IndependentEstimator ind(ds);
  RangeVec cond = ds.schema().FullRanges();
  cond[0] = ValueRange{0, 0};  // strongly informative in the real data
  const Histogram h_cond = ind.Marginal(cond, 2);
  const Histogram h_root = ind.Marginal(ds.schema().FullRanges(), 2);
  for (Value v = 0; v < h_cond.domain(); ++v) {
    EXPECT_DOUBLE_EQ(h_cond.Count(v), h_root.Count(v));
  }
}

TEST(IndependentEstimatorTest, OwnRangeTruncatesMarginal) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 500, 3);
  IndependentEstimator ind(ds);
  RangeVec cond = ds.schema().FullRanges();
  cond[1] = ValueRange{2, 3};
  const Histogram h = ind.Marginal(cond, 1);
  EXPECT_DOUBLE_EQ(h.Count(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Count(4), 0.0);
  EXPECT_GT(h.RangeCount({2, 3}), 0.0);
}

TEST(IndependentEstimatorTest, ReachProbabilityIsProductOfMarginals) {
  const Dataset ds = UniformDataset(SmallSchema(), 4000, 4);
  IndependentEstimator ind(ds);
  RangeVec ranges = ds.schema().FullRanges();
  ranges[0] = ValueRange{0, 1};  // ~1/2
  ranges[2] = ValueRange{0, 0};  // ~1/4
  EXPECT_NEAR(ind.ReachProbability(ranges), 0.5 * 0.25, 0.03);
}

TEST(IndependentEstimatorTest, PredicateMasksAreProductForm) {
  const Dataset ds = UniformDataset(SmallSchema(), 2000, 5);
  IndependentEstimator ind(ds);
  const RangeVec root = ds.schema().FullRanges();
  std::vector<Predicate> preds = {Predicate(0, 0, 1), Predicate(2, 0, 1)};
  const MaskDistribution dist = ind.PredicateMasks(root, preds);
  const double p0 = ind.PredicateProbability(root, preds[0]);
  const double p1 = ind.PredicateProbability(root, preds[1]);
  EXPECT_NEAR(dist.MassAllTrue(0b11) / dist.total(), p0 * p1, 1e-9);
  EXPECT_NEAR(dist.total(), 1.0, 1e-9);
}

TEST(IndependentEstimatorTest, IgnoresRealCorrelations) {
  // In the correlated dataset, P(exp0 high | cheap0 high) >> P(exp0 high),
  // but the independent estimator reports the unconditional value.
  const Dataset ds = CorrelatedDataset(SmallSchema(), 3000, 6, /*noise=*/0.1);
  IndependentEstimator ind(ds);
  DatasetEstimator exact(ds);
  RangeVec cond = ds.schema().FullRanges();
  cond[0] = ValueRange{3, 3};
  const Predicate high_exp(2, 3, 3);
  const double p_exact = exact.PredicateProbability(cond, high_exp);
  const double p_ind = ind.PredicateProbability(cond, high_exp);
  const double p_marg =
      ind.PredicateProbability(ds.schema().FullRanges(), high_exp);
  EXPECT_NEAR(p_ind, p_marg, 1e-12);
  EXPECT_GT(p_exact, p_ind + 0.3);  // The correlation is real and large.
}

TEST(IndependentEstimatorTest, PerValueMasksSumToParent) {
  const Dataset ds = UniformDataset(SmallSchema(), 1000, 7);
  IndependentEstimator ind(ds);
  const RangeVec root = ds.schema().FullRanges();
  std::vector<Predicate> preds = {Predicate(2, 0, 1)};
  const auto per_value = ind.PerValuePredicateMasks(root, 0, preds);
  ASSERT_EQ(per_value.size(), 4u);
  double total = 0;
  double true_mass = 0;
  for (const auto& d : per_value) {
    total += d.total();
    true_mass += d.MassAllTrue(0b1);
  }
  const MaskDistribution parent = ind.PredicateMasks(root, preds);
  EXPECT_NEAR(total, parent.total(), 1e-9);
  EXPECT_NEAR(true_mass, parent.MassAllTrue(0b1), 1e-9);
}

}  // namespace
}  // namespace caqp
