// CompiledPlan: flat layout invariants, tree<->flat round-trips, and the
// central property of the IR refactor -- executing the compiled form is
// observationally identical (verdict3, cost, acquisitions, retries, failure
// sets) to executing the pointer tree, across planners, workloads, fault
// profiles, and degradation policies.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "fault/fault.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/compiled_plan.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "plan/plan_serde.h"
#include "plan/plan_verify.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::CountVerdictMismatches;
using testing_util::RandomConjunctiveQuery;
using testing_util::SmallSchema;
using testing_util::UniformDataset;

// ---------------------------------------------------------------------------
// Flat layout
// ---------------------------------------------------------------------------

Plan SampleTree() {
  // if exp0 >= 2: (if cheap0 >= 1: eval [cheap1 in 0..2] else FAIL)
  // else: eval [cheap0 in 1..2, cheap1 in 0..3]
  return Plan(PlanNode::Split(
      2, 2,
      PlanNode::Sequential({Predicate(0, 1, 2), Predicate(1, 0, 3)}),
      PlanNode::Split(0, 1, PlanNode::Verdict(false),
                      PlanNode::Sequential({Predicate(1, 0, 2)}))));
}

TEST(CompiledPlanTest, PreorderLayoutWithImplicitLtChild) {
  const CompiledPlan p = CompiledPlan::Compile(SampleTree());
  ASSERT_EQ(p.NumNodes(), 5u);
  EXPECT_EQ(p.NumSplits(), 2u);
  EXPECT_EQ(p.Depth(), 2u);

  // Root split at index 0; its "<" subtree is the next node.
  EXPECT_EQ(p.node(0).kind, CompiledPlan::Kind::kSplit);
  EXPECT_EQ(p.node(0).attr, 2);
  EXPECT_EQ(p.node(0).split_value, 2);
  EXPECT_EQ(CompiledPlan::LtChild(0), 1u);
  EXPECT_EQ(p.node(1).kind, CompiledPlan::Kind::kSequential);
  ASSERT_EQ(p.sequence(p.node(1)).size(), 2u);
  EXPECT_EQ(p.sequence(p.node(1))[0], Predicate(0, 1, 2));

  // ">=" subtree: inner split, then its FAIL verdict, then its leaf.
  const uint32_t ge = p.node(0).a;
  EXPECT_EQ(ge, 2u);
  EXPECT_EQ(p.node(2).kind, CompiledPlan::Kind::kSplit);
  EXPECT_EQ(p.node(3).kind, CompiledPlan::Kind::kVerdict);
  EXPECT_FALSE(p.node(3).verdict());
  EXPECT_EQ(p.node(2).a, 4u);
  EXPECT_EQ(p.node(4).kind, CompiledPlan::Kind::kSequential);
  ASSERT_EQ(p.sequence(p.node(4)).size(), 1u);
  EXPECT_EQ(p.sequence(p.node(4))[0], Predicate(1, 0, 2));

  // Attribute bitmap covers splits and sequences.
  EXPECT_TRUE(p.attrs().Contains(0));
  EXPECT_TRUE(p.attrs().Contains(1));
  EXPECT_TRUE(p.attrs().Contains(2));
  EXPECT_FALSE(p.attrs().Contains(3));

  EXPECT_TRUE(PlanIsWellFormed(p, SmallSchema()));
}

TEST(CompiledPlanTest, FirstAcquisitionFlags) {
  // Outer split on attr 0, "<" child splits attr 0 again (not a first
  // acquisition), ">=" child splits attr 1 (first).
  const Plan tree(PlanNode::Split(
      0, 2,
      PlanNode::Split(0, 1, PlanNode::Verdict(false),
                      PlanNode::Verdict(true)),
      PlanNode::Split(1, 3, PlanNode::Verdict(false),
                      PlanNode::Verdict(true))));
  const CompiledPlan p = CompiledPlan::Compile(tree);
  ASSERT_EQ(p.NumNodes(), 7u);
  EXPECT_TRUE(p.node(0).first_acquisition());    // attr 0, root
  EXPECT_FALSE(p.node(1).first_acquisition());   // attr 0 again, under root
  const uint32_t ge = p.node(0).a;
  EXPECT_EQ(p.node(ge).attr, 1);
  EXPECT_TRUE(p.node(ge).first_acquisition());   // attr 1, first on its path
}

TEST(CompiledPlanTest, GenericLeafSideTables) {
  const Query q = Query::Disjunction(
      {{Predicate(0, 3, 3)}, {Predicate(2, 0, 0), Predicate(1, 0, 1)}});
  const CompiledPlan p =
      CompiledPlan::Compile(*PlanNode::Generic(q, {0, 2, 1}));
  ASSERT_EQ(p.NumNodes(), 1u);
  const CompiledPlan::Node& n = p.root();
  ASSERT_EQ(n.kind, CompiledPlan::Kind::kGeneric);
  const std::span<const AttrId> order = p.acquire_order(n);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
  EXPECT_TRUE(p.residual_query(n) == q);
  EXPECT_EQ(CountVerdictMismatches(p, q, SmallSchema()), 0u);
}

TEST(CompiledPlanTest, ToTreeRoundTripsStructurally) {
  const Schema schema = SmallSchema();
  const Plan tree = SampleTree();
  const CompiledPlan p = CompiledPlan::Compile(tree);
  const Plan back = p.ToTree();
  // Byte-identical serialization == structural identity.
  EXPECT_EQ(SerializePlan(back), SerializePlan(tree));
  EXPECT_EQ(PrintPlan(p, schema), PrintPlan(back, schema));
  const CompiledPlan again = CompiledPlan::Compile(back);
  EXPECT_EQ(SerializePlan(again), SerializePlan(p));
}

TEST(CompiledPlanTest, DefaultPlanRejectsEverything) {
  const CompiledPlan p;
  EXPECT_EQ(p.NumNodes(), 1u);
  EXPECT_FALSE(p.VerdictFor({0, 0, 0, 0}));
}

// ---------------------------------------------------------------------------
// Tree vs flat execution equivalence
// ---------------------------------------------------------------------------

void ExpectSameExecution(const ExecutionResult& tree,
                         const ExecutionResult& flat) {
  EXPECT_EQ(tree.verdict, flat.verdict);
  EXPECT_EQ(tree.verdict3, flat.verdict3);
  EXPECT_EQ(tree.aborted, flat.aborted);
  EXPECT_DOUBLE_EQ(tree.cost, flat.cost);
  EXPECT_EQ(tree.acquisitions, flat.acquisitions);
  EXPECT_EQ(tree.retries, flat.retries);
  EXPECT_EQ(tree.acquired.bits, flat.acquired.bits);
  EXPECT_EQ(tree.failed.bits, flat.failed.bits);
}

struct FaultCase {
  const char* name;
  FaultSpec spec;
  DegradationPolicy policy;
};

std::vector<FaultCase> FaultCases() {
  std::vector<FaultCase> cases;
  cases.push_back({"none", FaultSpec{}, DegradationPolicy::UnknownVerdict()});
  FaultSpec transient;
  transient.transient = 0.25;
  transient.seed = 11;
  cases.push_back({"transient-unknown", transient,
                   DegradationPolicy::UnknownVerdict()});
  cases.push_back({"transient-retry", transient,
                   DegradationPolicy::Retry(3, 1.5)});
  FaultSpec harsh;
  harsh.transient = 0.2;
  harsh.stuck = 0.15;
  harsh.spike = 0.1;
  harsh.spike_multiplier = 4.0;
  harsh.seed = 23;
  cases.push_back({"stuck-abort", harsh, DegradationPolicy::Abort()});
  cases.push_back({"stuck-unknown", harsh,
                   DegradationPolicy::UnknownVerdict()});
  return cases;
}

/// Builds one plan per planner over the training set.
std::vector<std::pair<std::string, Plan>> PlansForQuery(
    const Query& query, const Dataset& train,
    const AcquisitionCostModel& cm) {
  DatasetEstimator estimator(train);
  const Schema& schema = train.schema();
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;

  std::vector<std::pair<std::string, Plan>> plans;
  // Only the exhaustive planner accepts disjunctive (DNF) queries.
  if (query.IsConjunctive()) {
    NaivePlanner naive(estimator, cm);
    plans.emplace_back("Naive", naive.BuildPlan(query));
    SequentialPlanner corrseq(estimator, cm, optseq, "CorrSeq");
    plans.emplace_back("CorrSeq", corrseq.BuildPlan(query));
    GreedyPlanner::Options gopts;
    gopts.split_points = &splits;
    gopts.seq_solver = &optseq;
    gopts.max_splits = 4;
    GreedyPlanner greedy(estimator, cm, gopts);
    plans.emplace_back("Greedy", greedy.BuildPlan(query));
  }
  ExhaustivePlanner::Options xopts;
  xopts.split_points = &splits;
  ExhaustivePlanner exhaustive(estimator, cm, xopts);
  plans.emplace_back("Exhaustive", exhaustive.BuildPlan(query));
  return plans;
}

TEST(CompiledPlanEquivalenceTest, TreeAndFlatAgreeAcrossPlannersAndFaults) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const Dataset train = CorrelatedDataset(schema, 400, /*seed=*/3);
  const Dataset test = CorrelatedDataset(schema, 60, /*seed=*/77);

  Rng qrng(19);
  std::vector<Query> queries;
  for (int i = 0; i < 3; ++i) {
    queries.push_back(RandomConjunctiveQuery(schema, qrng));
  }
  queries.push_back(Query::Disjunction(
      {{Predicate(0, 2, 3)}, {Predicate(2, 0, 1), Predicate(3, 1, 3)}}));

  const std::vector<FaultCase> fault_cases = FaultCases();
  for (const Query& query : queries) {
    for (const auto& [planner, plan] : PlansForQuery(query, train, cm)) {
      const CompiledPlan compiled = CompiledPlan::Compile(plan);
      for (const FaultCase& fc : fault_cases) {
        // Paired injectors with one spec: the determinism contract makes
        // the k-th attempt for an attribute identical across both runs.
        FaultInjector tree_inj(fc.spec);
        FaultInjector flat_inj(fc.spec);
        for (RowId r = 0; r < test.num_rows(); ++r) {
          const Tuple t = test.GetTuple(r);
          TupleSource tree_base(t);
          FaultyAcquisitionSource tree_src(tree_base, tree_inj);
          const ExecutionResult tree_res = ExecutePlan(
              plan, schema, cm, tree_src, nullptr, fc.policy);
          TupleSource flat_base(t);
          FaultyAcquisitionSource flat_src(flat_base, flat_inj);
          const ExecutionResult flat_res = ExecutePlan(
              compiled, schema, cm, flat_src, nullptr, fc.policy);
          SCOPED_TRACE(std::string(planner) + "/" + fc.name + "/row " +
                       std::to_string(r));
          ExpectSameExecution(tree_res, flat_res);
        }
      }
    }
  }
}

TEST(CompiledPlanEquivalenceTest, ExecuteBatchMatchesPerTupleExecution) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const Dataset train = CorrelatedDataset(schema, 300, /*seed=*/5);
  const Dataset test = UniformDataset(schema, 128, /*seed=*/6);
  const Query query = Query::Conjunction(
      {Predicate(0, 1, 2), Predicate(2, 2, 3), Predicate(3, 0, 2)});

  for (const auto& [planner, plan] : PlansForQuery(query, train, cm)) {
    SCOPED_TRACE(planner);
    const CompiledPlan compiled = CompiledPlan::Compile(plan);
    std::vector<RowId> rows(test.num_rows());
    for (RowId r = 0; r < test.num_rows(); ++r) rows[r] = r;
    std::vector<uint8_t> verdicts;
    const BatchExecutionStats stats =
        ExecuteBatch(compiled, test, rows, cm, &verdicts);
    ASSERT_EQ(verdicts.size(), rows.size());
    EXPECT_EQ(stats.tuples, rows.size());

    double want_cost = 0.0;
    size_t want_acq = 0, want_matches = 0;
    for (RowId r : rows) {
      const Tuple t = test.GetTuple(r);
      TupleSource src(t);
      const ExecutionResult res = ExecutePlan(compiled, schema, cm, src);
      EXPECT_EQ(verdicts[r] != 0, res.verdict) << "row " << r;
      want_cost += res.cost;
      want_acq += static_cast<size_t>(res.acquisitions);
      if (res.verdict) ++want_matches;
    }
    EXPECT_DOUBLE_EQ(stats.total_cost, want_cost);
    EXPECT_EQ(stats.total_acquisitions, want_acq);
    EXPECT_EQ(stats.matches, want_matches);
  }
}

TEST(CompiledPlanEquivalenceTest, CostersAgreeOnTreeAndFlat) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const Dataset train = CorrelatedDataset(schema, 500, /*seed=*/9);
  DatasetEstimator estimator(train);
  Rng rng(4);
  const Query query = RandomConjunctiveQuery(schema, rng);

  for (const auto& [planner, plan] : PlansForQuery(query, train, cm)) {
    SCOPED_TRACE(planner);
    const CompiledPlan compiled = CompiledPlan::Compile(plan);
    EXPECT_DOUBLE_EQ(ExpectedPlanCost(plan, estimator, cm),
                     ExpectedPlanCost(compiled, estimator, cm));
    const EmpiricalCostResult tree_emp =
        EmpiricalPlanCost(plan, train, query, cm);
    const EmpiricalCostResult flat_emp =
        EmpiricalPlanCost(compiled, train, query, cm);
    EXPECT_DOUBLE_EQ(tree_emp.total_cost, flat_emp.total_cost);
    EXPECT_EQ(tree_emp.verdict_errors, flat_emp.verdict_errors);
    EXPECT_EQ(tree_emp.verdict_errors, 0u);
  }
}

// ---------------------------------------------------------------------------
// Flat serde
// ---------------------------------------------------------------------------

TEST(CompiledPlanSerdeTest, FlatRoundTripIsByteIdentical) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const Dataset train = CorrelatedDataset(schema, 300, /*seed=*/21);
  const Query query = Query::Conjunction(
      {Predicate(1, 1, 3), Predicate(2, 0, 1), Predicate(3, 2, 4)});

  for (const auto& [planner, plan] : PlansForQuery(query, train, cm)) {
    SCOPED_TRACE(planner);
    const CompiledPlan compiled = CompiledPlan::Compile(plan);
    const std::vector<uint8_t> bytes = SerializePlan(compiled);
    EXPECT_EQ(bytes[0], kPlanWireFormatVersion);
    EXPECT_EQ(PlanSizeBytes(compiled), bytes.size());
    const Result<CompiledPlan> back = DeserializeCompiledPlan(bytes, schema);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(SerializePlan(*back), bytes);
    EXPECT_EQ(back->NumNodes(), compiled.NumNodes());
    EXPECT_EQ(back->NumSplits(), compiled.NumSplits());
    EXPECT_EQ(back->Depth(), compiled.Depth());
    EXPECT_EQ(back->attrs().bits, compiled.attrs().bits);
    EXPECT_EQ(CountVerdictMismatches(*back, query, schema), 0u);
  }
}

TEST(CompiledPlanSerdeTest, TopologyCorruptionIsRejected) {
  const Schema schema = SmallSchema();
  const CompiledPlan p = CompiledPlan::Compile(SampleTree());
  const std::vector<uint8_t> good = SerializePlan(p);

  // Exhaustive single-byte corruption: decode must never crash, and
  // anything accepted must be well-formed.
  for (size_t pos = 0; pos < good.size(); ++pos) {
    for (int delta : {1, 0x40, 0x80}) {
      std::vector<uint8_t> bad = good;
      bad[pos] = static_cast<uint8_t>(bad[pos] + delta);
      const Result<CompiledPlan> r = DeserializeCompiledPlan(bad, schema);
      if (r.ok()) {
        EXPECT_TRUE(PlanIsWellFormed(*r, schema));
      }
    }
  }

  // Targeted: a split whose ">=" child index escapes the node array. The
  // root split's ge index is the varint after version/count/kind/attr/value,
  // i.e. byte 5 for this plan.
  std::vector<uint8_t> bad = good;
  bad[5] = 60;  // ge index far out of range
  EXPECT_FALSE(DeserializeCompiledPlan(bad, schema).ok());
}

// ---------------------------------------------------------------------------
// Exhaustive planner arena
// ---------------------------------------------------------------------------

TEST(CompiledPlanArenaTest, ExhaustiveRebuildsAreByteIdentical) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const Dataset train = CorrelatedDataset(schema, 400, /*seed=*/31);
  DatasetEstimator estimator(train);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(estimator, cm, opts);

  const Query query = Query::Conjunction(
      {Predicate(0, 1, 2), Predicate(2, 1, 3), Predicate(3, 0, 2)});
  const Plan first = planner.BuildPlan(query);
  const double first_cost = planner.LastPlanCost();
  const Plan second = planner.BuildPlan(query);
  // Handle-based memoization is deterministic: same query, same memo
  // decisions, same materialized tree.
  EXPECT_EQ(SerializePlan(first), SerializePlan(second));
  EXPECT_DOUBLE_EQ(planner.LastPlanCost(), first_cost);
  EXPECT_GT(planner.stats().cache_hits, 0u);
  EXPECT_EQ(CountVerdictMismatches(CompiledPlan::Compile(first), query,
                                   schema),
            0u);
}

}  // namespace
}  // namespace caqp
