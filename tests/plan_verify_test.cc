// Tests for plan verification and the EXPLAIN printer.

#include <gtest/gtest.h>

#include "opt/greedy_plan.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "plan/plan_verify.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

TEST(PlanVerifyTest, CorrectPlanPassesExhaustiveCheck) {
  const Schema schema = SmallSchema();
  const Query q = Query::Conjunction({Predicate(0, 1, 2), Predicate(2, 0, 1)});
  Plan plan(PlanNode::Sequential({Predicate(0, 1, 2), Predicate(2, 0, 1)}));
  const auto res = VerifyPlanExhaustive(plan, q, schema);
  EXPECT_TRUE(res.correct);
  EXPECT_EQ(res.tuples_checked, 4u * 6 * 4 * 5);  // full domain product
  EXPECT_FALSE(res.counterexample.has_value());
}

TEST(PlanVerifyTest, WrongPlanYieldsCounterexample) {
  const Schema schema = SmallSchema();
  const Query q = Query::Conjunction({Predicate(0, 1, 2)});
  Plan always_true(PlanNode::Verdict(true));
  const auto res = VerifyPlanExhaustive(always_true, q, schema);
  ASSERT_FALSE(res.correct);
  ASSERT_TRUE(res.counterexample.has_value());
  // The witness really is a disagreement.
  EXPECT_NE(always_true.VerdictFor(*res.counterexample),
            q.Matches(*res.counterexample));
}

TEST(PlanVerifyTest, SampledFindsGrossErrors) {
  const Schema schema = SmallSchema();
  const Query q = Query::Conjunction({Predicate(0, 0, 0)});  // rarely true
  Plan always_true(PlanNode::Verdict(true));
  const auto res = VerifyPlanSampled(always_true, q, schema, 500, 3);
  EXPECT_FALSE(res.correct);
}

TEST(PlanVerifyTest, SampledPassesCorrectPlan) {
  const Schema schema = SmallSchema();
  const Query q = Query::Conjunction({Predicate(3, 1, 3)});
  Plan plan(PlanNode::Sequential({Predicate(3, 1, 3)}));
  const auto res = VerifyPlanSampled(plan, q, schema, 2000, 4);
  EXPECT_TRUE(res.correct);
  EXPECT_EQ(res.tuples_checked, 2000u);
}

TEST(PlanVerifyTest, PlannerOutputAlwaysVerifies) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 400, 71);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &optseq;
  opts.max_splits = 6;
  GreedyPlanner planner(est, cm, opts);
  Rng rng(72);
  for (int i = 0; i < 10; ++i) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    const Plan plan = planner.BuildPlan(q);
    EXPECT_TRUE(PlanIsWellFormed(plan, schema));
    EXPECT_TRUE(VerifyPlanExhaustive(plan, q, schema).correct);
  }
}

TEST(PlanWellFormedTest, RejectsBadSplitValue) {
  const Schema schema = SmallSchema();
  Plan p(PlanNode::Split(0, 3, PlanNode::Verdict(false),
                         PlanNode::Verdict(true)));
  EXPECT_TRUE(PlanIsWellFormed(p, schema));  // 3 < domain 4: fine
  Schema binary;
  binary.AddAttribute("b", 2, 1.0);
  EXPECT_FALSE(PlanIsWellFormed(p, binary));  // attr 0 domain 2, split 3
}

TEST(PlanWellFormedTest, RejectsOutOfSchemaSequential) {
  Schema binary;
  binary.AddAttribute("b", 2, 1.0);
  Plan p(PlanNode::Sequential({Predicate(1, 0, 1)}));
  EXPECT_FALSE(PlanIsWellFormed(p, binary));
}

TEST(PlanWellFormedTest, GenericMustCoverReferencedAttrs) {
  const Schema schema = SmallSchema();
  Query q = Query::Disjunction({{Predicate(0, 1, 1)}, {Predicate(2, 0, 0)}});
  Plan covered(PlanNode::Generic(q, {0, 2}));
  EXPECT_TRUE(PlanIsWellFormed(covered, schema));
  Plan uncovered(PlanNode::Generic(q, {0}));
  EXPECT_FALSE(PlanIsWellFormed(uncovered, schema));
}

TEST(ExplainPlanTest, AnnotationsAreConsistent) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 600, 73, 0.2);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &optseq;
  opts.max_splits = 4;
  GreedyPlanner planner(est, cm, opts);
  const Query q =
      Query::Conjunction({Predicate(2, 2, 3), Predicate(3, 1, 3)});
  const Plan plan = planner.BuildPlan(q);
  const std::string text = ExplainPlan(plan, est, cm);
  // Root reach is 1.000 and the root cost annotation matches Eq. (3).
  EXPECT_NE(text.find("reach=1.000"), std::string::npos);
  char expected[32];
  std::snprintf(expected, sizeof(expected), "cost=%.2f",
                ExpectedPlanCost(plan, est, cm));
  EXPECT_NE(text.find(expected), std::string::npos) << text;
}

TEST(ExpectedSubplanCostTest, RootEqualsFullPlanCost) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 300, 74);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(2, 1, 2), Predicate(0, 0, 1)}));
  EXPECT_DOUBLE_EQ(
      ExpectedSubplanCost(plan.root(), schema.FullRanges(), est, cm),
      ExpectedPlanCost(plan, est, cm));
}

}  // namespace
}  // namespace caqp
