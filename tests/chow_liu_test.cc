// ChowLiuEstimator tests: structure recovery, exact evidence inference
// against brute force on the fitted model, and sampling consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "prob/chow_liu.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;
using testing_util::UniformDataset;

/// Generates a dataset from an explicit chain X0 -> X1 -> X2 of binary
/// attributes with strong links, so Chow-Liu must recover the chain.
Dataset ChainDataset(size_t rows, uint64_t seed) {
  Schema s;
  s.AddAttribute("x0", 2, 1.0);
  s.AddAttribute("x1", 2, 1.0);
  s.AddAttribute("x2", 2, 1.0);
  Rng rng(seed);
  Dataset ds(s);
  for (size_t r = 0; r < rows; ++r) {
    const bool x0 = rng.Bernoulli(0.5);
    const bool x1 = rng.Bernoulli(0.9) ? x0 : !x0;
    const bool x2 = rng.Bernoulli(0.9) ? x1 : !x1;
    ds.Append({static_cast<Value>(x0), static_cast<Value>(x1),
               static_cast<Value>(x2)});
  }
  return ds;
}

/// Brute-force joint probability of a full assignment under the fitted tree.
double ModelJoint(const ChowLiuEstimator& est, const Tuple& t) {
  return std::exp(est.LogLikelihood(t));
}

TEST(ChowLiuTest, RecoversChainStructure) {
  const Dataset ds = ChainDataset(5000, 1);
  ChowLiuEstimator est(ds);
  // The maximum-spanning tree on MI must use edges {0,1} and {1,2}, never
  // the weak transitive edge {0,2}.
  const AttrId p1 = est.ParentOf(1);
  const AttrId p2 = est.ParentOf(2);
  // Rooted at 0: parent(1) == 0 and parent(2) == 1.
  EXPECT_EQ(est.ParentOf(0), kInvalidAttr);
  EXPECT_EQ(p1, 0);
  EXPECT_EQ(p2, 1);
  EXPECT_GT(est.EdgeMutualInformation(1), 0.2);
  EXPECT_GT(est.EdgeMutualInformation(2), 0.2);
}

TEST(ChowLiuTest, JointSumsToOne) {
  const Dataset ds = ChainDataset(2000, 2);
  ChowLiuEstimator est(ds);
  double total = 0;
  for (Value a = 0; a < 2; ++a) {
    for (Value b = 0; b < 2; ++b) {
      for (Value c = 0; c < 2; ++c) {
        total += ModelJoint(est, {a, b, c});
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ChowLiuTest, ReachProbabilityMatchesBruteForceOverModel) {
  const Dataset ds = ChainDataset(3000, 3);
  ChowLiuEstimator est(ds);
  Rng rng(4);
  for (int iter = 0; iter < 30; ++iter) {
    const RangeVec ranges = testing_util::RandomRanges(ds.schema(), rng);
    double expected = 0;
    for (Value a = ranges[0].lo; a <= ranges[0].hi; ++a) {
      for (Value b = ranges[1].lo; b <= ranges[1].hi; ++b) {
        for (Value c = ranges[2].lo; c <= ranges[2].hi; ++c) {
          expected += ModelJoint(est, {a, b, c});
        }
      }
    }
    EXPECT_NEAR(est.ReachProbability(ranges), expected, 1e-9);
  }
}

TEST(ChowLiuTest, MarginalMatchesBruteForceOverModel) {
  const Dataset ds = ChainDataset(3000, 5);
  ChowLiuEstimator est(ds);
  Rng rng(6);
  for (int iter = 0; iter < 30; ++iter) {
    const RangeVec ranges = testing_util::RandomRanges(ds.schema(), rng);
    for (AttrId attr = 0; attr < 3; ++attr) {
      const Histogram h = est.Marginal(ranges, attr);
      for (Value v = ranges[attr].lo; v <= ranges[attr].hi; ++v) {
        // Brute-force P(X_attr = v AND evidence) under the model.
        double expected = 0;
        RangeVec point = ranges;
        point[attr] = ValueRange{v, v};
        for (Value a = point[0].lo; a <= point[0].hi; ++a) {
          for (Value b = point[1].lo; b <= point[1].hi; ++b) {
            for (Value c = point[2].lo; c <= point[2].hi; ++c) {
              expected += ModelJoint(est, {a, b, c});
            }
          }
        }
        ASSERT_NEAR(h.Count(v), expected, 1e-9)
            << "attr " << attr << " value " << v;
      }
    }
  }
}

TEST(ChowLiuTest, MarginalOnLargerMixedSchema) {
  // Cross-check marginal normalization on the 4-attribute mixed-domain
  // schema (exercises the rerooting path walk through interior nodes).
  const Dataset ds = CorrelatedDataset(SmallSchema(), 4000, 7, 0.2);
  ChowLiuEstimator est(ds);
  Rng rng(8);
  for (int iter = 0; iter < 20; ++iter) {
    const RangeVec ranges = testing_util::RandomRanges(ds.schema(), rng);
    const double reach = est.ReachProbability(ranges);
    for (size_t a = 0; a < 4; ++a) {
      const Histogram h = est.Marginal(ranges, static_cast<AttrId>(a));
      ASSERT_NEAR(h.total(), reach, 1e-9) << "attr " << a;
    }
  }
}

TEST(ChowLiuTest, CapturesCorrelationsUnlikeIndependence) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 5000, 9, 0.1);
  ChowLiuEstimator est(ds);
  RangeVec cond = ds.schema().FullRanges();
  cond[0] = ValueRange{3, 3};
  const Predicate high_exp(2, 3, 3);
  const double p_cond = est.PredicateProbability(cond, high_exp);
  const double p_marg =
      est.PredicateProbability(ds.schema().FullRanges(), high_exp);
  EXPECT_GT(p_cond, p_marg + 0.3);
}

TEST(ChowLiuTest, SamplingApproximatesInference) {
  const Dataset ds = ChainDataset(4000, 10);
  ChowLiuEstimator::Options opts;
  opts.sample_count = 20000;
  ChowLiuEstimator est(ds, opts);
  RangeVec cond = ds.schema().FullRanges();
  cond[0] = ValueRange{1, 1};
  std::vector<Predicate> preds = {Predicate(2, 1, 1)};
  const MaskDistribution dist = est.PredicateMasks(cond, preds);
  const double sampled = dist.MassAllTrue(0b1) / dist.total();
  // Exact value from marginal inference.
  const Histogram h = est.Marginal(cond, 2);
  const double exact = h.Count(1) / h.total();
  EXPECT_NEAR(sampled, exact, 0.02);
}

TEST(ChowLiuTest, SamplingIsDeterministicPerEvidence) {
  const Dataset ds = ChainDataset(1000, 11);
  ChowLiuEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  std::vector<Predicate> preds = {Predicate(1, 1, 1)};
  const MaskDistribution a = est.PredicateMasks(root, preds);
  const MaskDistribution b = est.PredicateMasks(root, preds);
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i], b.entries()[i]);
  }
}

TEST(ChowLiuTest, PerValueMasksSumToParent) {
  const Dataset ds = ChainDataset(2000, 12);
  ChowLiuEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  std::vector<Predicate> preds = {Predicate(2, 1, 1)};
  const auto per_value = est.PerValuePredicateMasks(root, 0, preds);
  ASSERT_EQ(per_value.size(), 2u);
  double total = 0;
  for (const auto& d : per_value) total += d.total();
  EXPECT_DOUBLE_EQ(total, 8192.0);  // default sample_count
}

TEST(ChowLiuTest, PerValueMasksMatchConditionalInference) {
  // Bucketed samples of P(pred, X0 = v | evidence) must agree with exact
  // inference: the per-value totals approximate the X0 marginal, and the
  // per-bucket conditional pass rate approximates P(pred | X0 = v).
  const Dataset ds = ChainDataset(4000, 14);
  ChowLiuEstimator::Options opts;
  opts.sample_count = 40000;
  ChowLiuEstimator est(ds, opts);
  const RangeVec root = ds.schema().FullRanges();
  std::vector<Predicate> preds = {Predicate(2, 1, 1)};
  const auto per_value = est.PerValuePredicateMasks(root, 0, preds);
  const Histogram marginal0 = est.Marginal(root, 0);
  ASSERT_EQ(per_value.size(), 2u);
  double grand_total = 0;
  for (const auto& d : per_value) grand_total += d.total();
  for (Value v = 0; v < 2; ++v) {
    // Bucket mass ~ P(X0 = v).
    EXPECT_NEAR(per_value[v].total() / grand_total,
                marginal0.ValueProbability(v), 0.02);
    // Conditional pass rate ~ P(X2 = 1 | X0 = v), from exact inference.
    RangeVec cond = root;
    cond[0] = ValueRange{v, v};
    const Histogram h2 = est.Marginal(cond, 2);
    const double exact = h2.Count(1) / h2.total();
    const double sampled =
        per_value[v].MassAllTrue(0b1) / per_value[v].total();
    EXPECT_NEAR(sampled, exact, 0.03) << "v=" << static_cast<int>(v);
  }
}

TEST(ChowLiuTest, SmoothedEstimatesOnTinyData) {
  // Three rows only: direct counting would give extreme probabilities; the
  // smoothed model must stay strictly inside (0, 1).
  Schema s;
  s.AddAttribute("a", 2, 1.0);
  s.AddAttribute("b", 2, 1.0);
  Dataset ds(s);
  ds.Append({0, 0});
  ds.Append({0, 0});
  ds.Append({1, 1});
  ChowLiuEstimator est(ds);
  const RangeVec root = s.FullRanges();
  const double p = est.PredicateProbability(root, Predicate(1, 1, 1));
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(ChowLiuTest, LogLikelihoodHigherForTypicalTuples) {
  const Dataset ds = ChainDataset(3000, 13);
  ChowLiuEstimator est(ds);
  // All-agree tuples are typical; alternating tuples are not.
  EXPECT_GT(est.LogLikelihood({0, 0, 0}), est.LogLikelihood({0, 1, 0}));
  EXPECT_GT(est.LogLikelihood({1, 1, 1}), est.LogLikelihood({1, 0, 1}));
}

}  // namespace
}  // namespace caqp
