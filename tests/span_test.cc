// Tests for obs/span.h: request-scoped spans, the TraceRecorder, and the
// flight recorder, plus the Chrome trace-event export.

#include "obs/span.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/obs.h"

namespace caqp {
namespace obs {
namespace {

#if CAQP_OBS_ENABLED

const SpanEvent* FindByName(const std::vector<SpanEvent>& events,
                            std::string_view name) {
  for (const SpanEvent& ev : events) {
    if (std::string_view(ev.name) == name) return &ev;
  }
  return nullptr;
}

TEST(SpanTest, NestedSpansRecordParentage) {
  TraceRecorder recorder(2);
  const uint64_t trace_id = recorder.NewTraceId();
  {
    TraceRecorder::RequestScope scope(&recorder, /*worker=*/1, trace_id);
    ScopedSpan outer("outer");
    ASSERT_TRUE(outer.active());
    {
      ScopedSpan inner("inner");
      ASSERT_TRUE(inner.active());
      EXPECT_EQ(inner.context().parent_id, outer.context().span_id);
      EXPECT_EQ(inner.context().trace_id, trace_id);
    }
    // Sibling after `inner` closed: same parent, fresh span id.
    ScopedSpan sibling("sibling");
    EXPECT_EQ(sibling.context().parent_id, outer.context().span_id);
  }

  const std::vector<SpanEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  const SpanEvent* outer = FindByName(events, "outer");
  const SpanEvent* inner = FindByName(events, "inner");
  const SpanEvent* sibling = FindByName(events, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(sibling->parent_id, outer->span_id);
  EXPECT_NE(inner->span_id, sibling->span_id);
  for (const SpanEvent& ev : events) {
    EXPECT_EQ(ev.trace_id, trace_id);
    EXPECT_EQ(ev.worker, 1u);
    // Children are contained in the root span's interval.
    EXPECT_GE(ev.start_ns, outer->start_ns);
    EXPECT_LE(ev.start_ns + ev.dur_ns, outer->start_ns + outer->dur_ns);
  }
}

TEST(SpanTest, UnboundThreadIsNoOp) {
  EXPECT_FALSE(TracingBound());
  ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.context().trace_id, 0u);
  RecordSpan("orphan2", 1, 2);  // must not crash
}

TEST(SpanTest, RuntimeDisabledIsNoOp) {
  TraceRecorder recorder(1);
  TraceRecorder::RequestScope scope(&recorder, 0, recorder.NewTraceId());
  SetEnabled(false);
  {
    ScopedSpan span("dark");
    EXPECT_FALSE(span.active());
    RecordSpan("dark2", 1, 2);
  }
  SetEnabled(true);
  EXPECT_TRUE(recorder.Events().empty());
}

TEST(SpanTest, ExplicitStartBackdatesSpan) {
  TraceRecorder recorder(1);
  TraceRecorder::RequestScope scope(&recorder, 0, recorder.NewTraceId());
  const uint64_t backdated = MonotonicNowNs() - 5'000'000;  // 5ms ago
  { ScopedSpan span("root", backdated); }
  const std::vector<SpanEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, backdated);
  EXPECT_GE(events[0].dur_ns, 5'000'000u);
}

TEST(SpanTest, RecordSpanNestsUnderOpenSpan) {
  TraceRecorder recorder(1);
  TraceRecorder::RequestScope scope(&recorder, 0, recorder.NewTraceId());
  {
    ScopedSpan root("root");
    RecordSpan("closed", 10, 25);
  }
  const std::vector<SpanEvent> events = recorder.Events();
  const SpanEvent* root = FindByName(events, "root");
  const SpanEvent* closed = FindByName(events, "closed");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(closed, nullptr);
  EXPECT_EQ(closed->parent_id, root->span_id);
  EXPECT_EQ(closed->start_ns, 10u);
  EXPECT_EQ(closed->dur_ns, 15u);
}

TEST(SpanTest, EventsMergeSortedAcrossWorkers) {
  TraceRecorder recorder(3);
  SpanEvent ev;
  ev.trace_id = 1;
  ev.name = "e";
  ev.start_ns = 30;
  recorder.Record(2, ev);
  ev.start_ns = 10;
  recorder.Record(0, ev);
  ev.start_ns = 20;
  recorder.Record(1, ev);
  const std::vector<SpanEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].start_ns, 10u);
  EXPECT_EQ(events[1].start_ns, 20u);
  EXPECT_EQ(events[2].start_ns, 30u);
}

TEST(SpanTest, DropsEventsPastPerWorkerCap) {
  TraceRecorder::Options opts;
  opts.max_events_per_worker = 4;
  opts.flight_capacity = 2;
  TraceRecorder recorder(1, opts);
  SpanEvent ev;
  ev.name = "e";
  for (uint64_t i = 0; i < 6; ++i) {
    ev.start_ns = i;
    recorder.Record(0, ev);
  }
  EXPECT_EQ(recorder.Events().size(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 2u);
}

TEST(SpanTest, RequestScopeRestoresPreviousBinding) {
  TraceRecorder recorder(1);
  EXPECT_FALSE(TracingBound());
  {
    TraceRecorder::RequestScope scope(&recorder, 0, recorder.NewTraceId());
    EXPECT_TRUE(TracingBound());
  }
  EXPECT_FALSE(TracingBound());
}

TEST(SpanTest, NewTraceIdIsNeverZeroAndUnique) {
  TraceRecorder recorder(1);
  const uint64_t a = recorder.NewTraceId();
  const uint64_t b = recorder.NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(SpanTest, ConcurrentWorkersRecordIndependently) {
  constexpr size_t kWorkers = 4;
  constexpr size_t kSpansEach = 200;
  TraceRecorder recorder(kWorkers);
  std::atomic<bool> stop{false};
  // A reader thread polls merged views while writers record: exercises the
  // shard locking under TSan.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.Events();
      recorder.incident_count();
    }
  });
  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&recorder, w] {
      TraceRecorder::RequestScope scope(&recorder, w, recorder.NewTraceId());
      for (size_t i = 0; i < kSpansEach; ++i) {
        ScopedSpan span("work");
        if (i % 50 == 0) recorder.DumpFlight(w, 0, "probe");
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(recorder.Events().size(), kWorkers * kSpansEach);
  EXPECT_EQ(recorder.incident_count(), kWorkers * (kSpansEach / 50));
}

TEST(FlightRecorderTest, RingKeepsMostRecentEventsOldestFirst) {
  TraceRecorder::Options opts;
  opts.flight_capacity = 4;
  TraceRecorder recorder(1, opts);
  SpanEvent ev;
  ev.name = "e";
  for (uint64_t i = 0; i < 6; ++i) {
    ev.start_ns = i;
    recorder.Record(0, ev);
  }
  recorder.DumpFlight(0, /*trace_id=*/42, "deadline_exceeded");
  const std::vector<TraceRecorder::Incident> incidents = recorder.Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].trace_id, 42u);
  EXPECT_EQ(incidents[0].reason, "deadline_exceeded");
  ASSERT_EQ(incidents[0].events.size(), 4u);
  // Events 0 and 1 were evicted; the survivors come out oldest first.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(incidents[0].events[i].start_ns, i + 2);
  }
}

TEST(FlightRecorderTest, PartialRingDumpsInInsertionOrder) {
  TraceRecorder::Options opts;
  opts.flight_capacity = 8;
  TraceRecorder recorder(1, opts);
  SpanEvent ev;
  ev.name = "e";
  for (uint64_t i = 0; i < 3; ++i) {
    ev.start_ns = i;
    recorder.Record(0, ev);
  }
  recorder.DumpFlight(0, 7, "fallback");
  const std::vector<TraceRecorder::Incident> incidents = recorder.Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  ASSERT_EQ(incidents[0].events.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(incidents[0].events[i].start_ns, i);
  }
}

TEST(FlightRecorderTest, IncidentListDiscardsOldestPastCap) {
  TraceRecorder::Options opts;
  opts.max_incidents = 2;
  TraceRecorder recorder(1, opts);
  recorder.DumpFlight(0, 1, "a");
  recorder.DumpFlight(0, 2, "b");
  recorder.DumpFlight(0, 3, "c");
  const std::vector<TraceRecorder::Incident> incidents = recorder.Incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].trace_id, 2u);
  EXPECT_EQ(incidents[1].trace_id, 3u);
}

TEST(FlightRecorderTest, RecordIncidentCarriesNoEvents) {
  TraceRecorder recorder(1);
  recorder.RecordIncident(11, "load_shed");
  const std::vector<TraceRecorder::Incident> incidents = recorder.Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].trace_id, 11u);
  EXPECT_EQ(incidents[0].reason, "load_shed");
  EXPECT_TRUE(incidents[0].events.empty());
  EXPECT_GT(incidents[0].at_ns, 0u);
}

TEST(FlightRecorderTest, TraceEventsJsonContainsSpansAndIncidents) {
  TraceRecorder recorder(2);
  const uint64_t trace_id = recorder.NewTraceId();
  {
    TraceRecorder::RequestScope scope(&recorder, 1, trace_id);
    ScopedSpan root("request");
    { ScopedSpan child("plan"); }
  }
  recorder.DumpFlight(1, trace_id, "deadline_exceeded");

  const std::string json = TraceEventsToJson(recorder);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Complete ("X") events for both spans, on the bound worker's tid.
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  // Thread-name metadata and the flight-recorder sidecar.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"caqpFlightRecorder\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\""), std::string::npos);
  EXPECT_NE(json.find("\"caqpDroppedSpanEvents\""), std::string::npos);
}

#else  // !CAQP_OBS_ENABLED

TEST(SpanTest, CompiledOutSpansAreInert) {
  TraceRecorder recorder(1);
  TraceRecorder::RequestScope scope(&recorder, 0, recorder.NewTraceId());
  ScopedSpan span("noop");
  EXPECT_FALSE(span.active());
  EXPECT_TRUE(recorder.Events().empty());
}

#endif  // CAQP_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace caqp
